(* Cross-cutting property tests: backend agreement, semantic
   invariants of the figure mappings computed independently over random
   instances, and conformance modulo minimum-cardinality. *)

module S = Clip_scenarios
module Node = Clip_xml.Node
module Atom = Clip_xml.Atom
module Engine = Clip_core.Engine

(* Random instances of the running source schema. *)
let gen_instance =
  QCheck2.Gen.(
    map3
      (fun depts projs emps -> S.Deptdb.synthetic_instance ~depts ~projs ~emps)
      (1 -- 4) (0 -- 4) (0 -- 5))

(* Independent recomputations over a source instance. *)
let depts doc = Node.children_named (Node.as_element doc) "dept"

let sal e =
  match Node.children_named e "sal" with
  | s :: _ -> Node.text_value s
  | [] -> None

let ename e =
  match Node.children_named e "ename" with
  | s :: _ -> Node.text_value s
  | [] -> None

let pname p =
  match Node.children_named p "pname" with
  | s :: _ -> Node.text_value s
  | [] -> None

(* --- Backend agreement ---------------------------------------------------- *)

let agreement_props =
  List.filter_map
    (fun (sc : S.Figures.t) ->
      if not sc.minimum_cardinality then None
      else
        Some
          (QCheck2.Test.make ~count:25
             ~name:(sc.name ^ ": tgd and xquery backends agree")
             gen_instance
             (fun doc ->
               let a = Engine.run ~backend:`Tgd sc.mapping doc in
               let b = Engine.run ~backend:`Xquery sc.mapping doc in
               Node.equal a b)))
    S.Figures.all

(* --- Semantic invariants ---------------------------------------------------- *)

let fig3_count =
  QCheck2.Test.make ~count:40
    ~name:"fig3: one employee per regEmp with sal > 11000, one department"
    gen_instance
    (fun doc ->
      let expected =
        List.fold_left
          (fun n d ->
            n
            + List.length
                (List.filter
                   (fun r ->
                     match sal r with
                     | Some a -> Atom.compare a (Atom.Int 11000) > 0
                     | None -> false)
                   (Node.children_named d "regEmp")))
          0 (depts doc)
      in
      let out = Engine.run S.Figures.fig3.mapping doc in
      Node.count_elements out "employee" = expected
      && Node.count_elements out "department" = 1)

let fig4_shape =
  QCheck2.Test.make ~count:40
    ~name:"fig4: one department per dept, employees stay in their dept" gen_instance
    (fun doc ->
      let out = Engine.run S.Figures.fig4.mapping doc in
      let out_depts = Node.children_named (Node.as_element out) "department" in
      List.length out_depts = List.length (depts doc)
      && List.for_all2
           (fun d od ->
             let expected =
               List.filter
                 (fun r ->
                   match sal r with
                   | Some a -> Atom.compare a (Atom.Int 11000) > 0
                   | None -> false)
                 (Node.children_named d "regEmp")
             in
             List.length (Node.children_named od "employee") = List.length expected)
           (depts doc) out_depts)

let fig6_join_size =
  QCheck2.Test.make ~count:40 ~name:"fig6: output size equals the per-dept join size"
    gen_instance
    (fun doc ->
      let expected =
        List.fold_left
          (fun n d ->
            let projs = Node.children_named d "Proj" in
            let emps = Node.children_named d "regEmp" in
            n
            + List.fold_left
                (fun n p ->
                  let pid = Node.attr p "pid" in
                  n
                  + List.length
                      (List.filter (fun r -> Node.attr r "pid" = pid) emps))
                0 projs)
          0 (depts doc)
      in
      let out = Engine.run S.Figures.fig6.mapping doc in
      Node.count_elements out "project-emp" = expected)

let fig7_group_cardinality =
  QCheck2.Test.make ~count:40
    ~name:"fig7: one project per distinct pname (the grouping invariant)"
    gen_instance
    (fun doc ->
      let distinct =
        List.sort_uniq compare
          (List.concat_map
             (fun d -> List.filter_map pname (Node.children_named d "Proj"))
             (depts doc))
      in
      let out = Engine.run S.Figures.fig7.mapping doc in
      Node.count_elements out "project" = List.length distinct)

let fig8_inversion =
  QCheck2.Test.make ~count:40
    ~name:"fig8: each project lists the depts owning a Proj of that name"
    gen_instance
    (fun doc ->
      let out = Engine.run S.Figures.fig8.mapping doc in
      let projects = Node.children_named (Node.as_element out) "project" in
      List.for_all
        (fun proj ->
          match Node.attr proj "name" with
          | None -> false
          | Some name ->
            let expected =
              List.concat_map
                (fun d ->
                  let owns =
                    List.exists
                      (fun p -> pname p = Some name)
                      (Node.children_named d "Proj")
                  in
                  if owns then
                    List.filter_map Node.text_value (Node.children_named d "dname")
                  else [])
                (depts doc)
            in
            let got =
              List.filter_map
                (fun dep -> Node.attr dep "name")
                (Node.children_named proj "department")
            in
            got = expected)
        projects)

let fig9_aggregates =
  QCheck2.Test.make ~count:40 ~name:"fig9: counts and averages recomputed" gen_instance
    (fun doc ->
      let out = Engine.run S.Figures.fig9.mapping doc in
      let out_depts = Node.children_named (Node.as_element out) "department" in
      List.length out_depts = List.length (depts doc)
      && List.for_all2
           (fun d od ->
             let projs = List.length (Node.children_named d "Proj") in
             let emps = Node.children_named d "regEmp" in
             let ok_counts =
               Node.attr od "numProj" = Some (Atom.Int projs)
               && Node.attr od "numEmps" = Some (Atom.Int (List.length emps))
             in
             let sals = List.filter_map (fun r -> Option.bind (sal r) Atom.to_float) emps in
             let ok_avg =
               match sals, Node.attr od "avg-sal" with
               | [], None -> true
               | [], Some _ -> false
               | _, None -> false
               | _, Some got ->
                 let avg = List.fold_left ( +. ) 0. sals /. float_of_int (List.length sals) in
                 (match Atom.to_float got with
                  | Some f -> Float.abs (f -. avg) < 1e-6
                  | None -> false)
             in
             ok_counts && ok_avg)
           (depts doc) out_depts)

(* fig5 containment: every output department mirrors its source dept. *)
let fig5_containment =
  QCheck2.Test.make ~count:40
    ~name:"fig5: projects and employees stay inside their own department"
    gen_instance
    (fun doc ->
      let out = Engine.run S.Figures.fig5.mapping doc in
      let out_depts = Node.children_named (Node.as_element out) "department" in
      List.length out_depts = List.length (depts doc)
      && List.for_all2
           (fun d od ->
             let projs = List.filter_map pname (Node.children_named d "Proj") in
             let names = List.filter_map ename (Node.children_named d "regEmp") in
             List.filter_map (fun p -> Node.attr p "name") (Node.children_named od "project")
             = projs
             && List.filter_map (fun e -> Node.attr e "name") (Node.children_named od "employee")
               = names)
           (depts doc) out_depts)

(* --- The columnar document store ------------------------------------------ *)

module Doc = Clip_xml.Doc

(* [of_node]/[to_node] must be total and lossless on anything the
   schema generators can produce: [to_node] returns the original boxed
   node physically (which is what keeps identity-keyed caches and
   byte-identical printing intact), and [rebuild] — the genuinely
   reconstructing inverse — agrees structurally. *)
let doc_roundtrip =
  QCheck2.Test.make ~count:60
    ~name:"columnar round-trip: to_node is physical, rebuild is structural"
    gen_instance
    (fun doc ->
      let d = Doc.of_node doc in
      Doc.to_node d 0 == doc && Node.equal (Doc.rebuild d 0) doc)

let repr_agreement =
  List.map
    (fun (sc : S.Figures.t) ->
      QCheck2.Test.make ~count:15
        ~name:(sc.name ^ ": columnar representation agrees with the tree")
        gen_instance
        (fun doc ->
          Node.equal
            (Engine.run ~repr:`Tree sc.mapping doc)
            (Engine.run ~repr:`Columnar sc.mapping doc)))
    S.Figures.all

(* --- Conformance modulo minimum cardinality -------------------------------- *)

let conformance =
  List.map
    (fun (sc : S.Figures.t) ->
      QCheck2.Test.make ~count:25
        ~name:(sc.name ^ ": only cardinality-minimum violations possible")
        gen_instance
        (fun doc ->
          let out =
            Engine.run ~minimum_cardinality:sc.minimum_cardinality sc.mapping doc
          in
          List.for_all
            (fun (v : Clip_schema.Validate.violation) ->
              (* An empty result may miss a [1..*] element; nothing else
                 is tolerated. *)
              let has_card =
                let s = v.reason in
                let needle = "cardinality" in
                let n = String.length needle and m = String.length s in
                let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
                go 0
              in
              has_card)
            (Clip_schema.Validate.check sc.mapping.target out)))
    S.Figures.all

(* --- Clio generation invariants ----------------------------------------------- *)

let clio_extension_never_worse =
  QCheck2.Test.make ~count:25
    ~name:"clio: extension emits at most as many roots as the baseline"
    (QCheck2.Gen.pure ())
    (fun () ->
      List.for_all
        (fun (sc : S.Table1.scenario) ->
          List.length (Clip_clio.Generate.forest ~extension:true sc.mapping)
          <= List.length (Clip_clio.Generate.forest sc.mapping))
        S.Table1.all)

let compiled_alpha_reflexive =
  QCheck2.Test.make ~count:5 ~name:"compiled tgds are alpha-equal to themselves"
    (QCheck2.Gen.pure ())
    (fun () ->
      List.for_all
        (fun (sc : S.Figures.t) ->
          let tgd = Clip_core.Compile.to_tgd sc.mapping in
          Clip_tgd.Tgd.alpha_equal tgd tgd)
        S.Figures.all)

(* --- Whole-pipeline property over random schemas ------------------------------

   Generate a random nested source schema, mirror it into a target
   schema with renamed tags, couple every leaf, let Clio-with-extension
   generate the Clip mapping, and run it over random instances. *)

module Sch = Clip_schema.Schema
module Card = Clip_schema.Cardinality
module AT = Clip_schema.Atomic_type
module Path = Clip_schema.Path

type spec = {
  sname : string;
  sleaves : (string * AT.t) list;
  srepeating : bool;
  schildren : spec list;
}

let gen_spec =
  QCheck2.Gen.(
    let counter = ref 0 in
    let fresh_name prefix =
      incr counter;
      Printf.sprintf "%s%d" prefix !counter
    in
    let gen_ty = oneofl [ AT.T_string; AT.T_int ] in
    let gen_leaves =
      list_size (1 -- 3) (map (fun ty -> (fresh_name "leaf", ty)) gen_ty)
    in
    sized_size (0 -- 2) @@ fix (fun self depth ->
        let child =
          if depth <= 0 then pure []
          else list_size (0 -- 2) (self (depth - 1))
        in
        map3
          (fun leaves children repeating ->
            { sname = fresh_name "el"; sleaves = leaves; srepeating = repeating;
              schildren = children })
          gen_leaves child bool))

let rec source_of_spec sp =
  Sch.element
    ~card:(if sp.srepeating then Card.star else Card.required)
    ~attrs:[]
    sp.sname
    (List.map (fun (n, ty) -> Sch.element ~value:ty n []) sp.sleaves
     @ List.map source_of_spec sp.schildren)

(* The mirrored target renames every element and turns leaves into
   attributes. *)
let rec target_of_spec sp =
  Sch.element
    ~card:(if sp.srepeating then Card.star else Card.required)
    ~attrs:(List.map (fun (n, ty) -> Sch.attribute ~required:false ("m-" ^ n) ty) sp.sleaves)
    ("m-" ^ sp.sname)
    (List.map target_of_spec sp.schildren)

let rec couplings sp ~spath ~tpath =
  List.map
    (fun (n, _) ->
      Clip_core.Mapping.value
        [ Path.value (Path.child spath n) ]
        (Path.attr tpath ("m-" ^ n)))
    sp.sleaves
  @ List.concat_map
      (fun c ->
        couplings c ~spath:(Path.child spath c.sname)
          ~tpath:(Path.child tpath ("m-" ^ c.sname)))
      sp.schildren

let mapping_of_spec roots =
  (* A leaf whose whole chain is non-repeating has no possible driver
     builder (Sec. III rule (i) would reject its value mapping), so the
     top-level sets always repeat — as in every scenario of the paper. *)
  let roots = List.map (fun sp -> { sp with srepeating = true }) roots in
  let source = Sch.make (Sch.element "src" (List.map source_of_spec roots)) in
  let target = Sch.make (Sch.element "tgt" (List.map target_of_spec roots)) in
  let values =
    List.concat_map
      (fun sp ->
        couplings sp
          ~spath:(Path.child (Path.root "src") sp.sname)
          ~tpath:(Path.child (Path.root "tgt") ("m-" ^ sp.sname)))
      roots
  in
  Clip_core.Mapping.make ~source ~target values

let gen_pipeline_case =
  QCheck2.Gen.(
    map2
      (fun roots seed -> (mapping_of_spec roots, seed))
      (list_size (1 -- 3) gen_spec)
      (0 -- 10_000))

let pipeline_prop =
  QCheck2.Test.make ~count:60
    ~name:"random schemas: generate -> to_clip -> run on random instances"
    gen_pipeline_case
    (fun (m, seed) ->
      let forest = Clip_clio.Generate.forest ~extension:true m in
      let clip = Clip_clio.Generate.to_clip m forest in
      (* 1. the generated Clip mapping is valid *)
      Clip_core.Validity.is_valid clip
      &&
      let doc =
        Clip_schema.Generate.instance
          ~state:(Random.State.make [| seed |])
          ~fanout:3 m.source
      in
      (* 2. both backends agree on random instances *)
      let a = Engine.run ~backend:`Tgd clip doc in
      let b = Engine.run ~backend:`Xquery clip doc in
      Node.equal a b
      &&
      (* 3. the output validates modulo minimum-cardinality gaps *)
      List.for_all
        (fun (v : Clip_schema.Validate.violation) ->
          let needle = "cardinality" in
          let s = v.reason in
          let n = String.length needle and len = String.length s in
          let rec go i = i + n <= len && (String.sub s i n = needle || go (i + 1)) in
          go 0)
        (Clip_schema.Validate.check m.target a)
      &&
      (* 4. the generated tgd is equivalent to the Clip mapping *)
      let via_tgd =
        Clip_tgd.Eval.run ~source:doc ~target_root:"tgt"
          (Clip_clio.Generate.to_tgd m forest)
      in
      Node.equal_unordered via_tgd a)

let pipeline_dsl_prop =
  QCheck2.Test.make ~count:40
    ~name:"random schemas: the generated mapping round-trips through the DSL"
    gen_pipeline_case
    (fun (m, _) ->
      let clip = Clip_clio.Generate.to_clip m (Clip_clio.Generate.forest ~extension:true m) in
      let text = Clip_core.Dsl.to_string clip in
      let clip' = Clip_core.Dsl.parse text in
      Clip_tgd.Tgd.alpha_equal
        (Clip_core.Compile.to_tgd clip)
        (Clip_core.Compile.to_tgd clip'))

(* --- Relational encoding and the relational backend ----------------------- *)

module Rel = Clip_schema.Relational

(* Random relational databases: 1-4 tables of 1-4 columns (the first
   column of each table is always an int, so a single-column foreign
   key between the first two tables is always well-typed). *)
let gen_rel_db =
  QCheck2.Gen.(
    map2
      (fun tables_shape with_fk ->
        let tables =
          List.mapi
            (fun i cols ->
              Rel.table
                (Printf.sprintf "t%d" i)
                (List.mapi
                   (fun j is_int ->
                     Rel.column
                       (Printf.sprintf "c%d_%d" i j)
                       (if j = 0 || is_int then Clip_schema.Atomic_type.T_int
                        else Clip_schema.Atomic_type.T_string))
                   cols))
            tables_shape
        in
        let foreign_keys =
          if with_fk && List.length tables >= 2 then
            [
              {
                Rel.fk_table = "t1";
                fk_columns = [ "c1_0" ];
                pk_table = "t0";
                pk_columns = [ "c0_0" ];
              };
            ]
          else []
        in
        Rel.database ~foreign_keys "db" tables)
      (list_size (1 -- 4) (list_size (1 -- 4) bool))
      bool)

let rel_encoding_total =
  QCheck2.Test.make ~count:200
    ~name:"random databases: the canonical encoding is total and well-formed"
    gen_rel_db
    (fun db ->
      match Rel.to_schema_result db with
      | Error _ -> false
      | Ok s ->
        List.length s.Clip_schema.Schema.refs = List.length db.Rel.foreign_keys)

let rel_shape_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"random databases: encode -> shape-detect round-trips"
    gen_rel_db
    (fun db ->
      match Clip_rel.Shape.of_schema (Rel.to_schema db) with
      | Error _ -> false
      | Ok shape ->
        List.length shape.Clip_rel.Shape.tables = List.length db.Rel.tables
        && List.for_all2
             (fun (st : Clip_rel.Shape.table) (t : Rel.table) ->
               String.equal st.Clip_rel.Shape.t_name t.Rel.table_name
               && st.Clip_rel.Shape.t_attrs
                  = List.map (fun (c : Rel.column) -> c.Rel.col_name)
                      t.Rel.columns
               && st.Clip_rel.Shape.t_vals = [])
             shape.Clip_rel.Shape.tables db.Rel.tables)

(* The identity mapping over a schema: one driven builder per table,
   an identity value mapping per column (the same generator as the
   algebra differential harness). *)
let identity_mapping (s : Clip_schema.Schema.t) : Clip_core.Mapping.t =
  let module Sch = Clip_schema.Schema in
  let module Path = Clip_schema.Path in
  let module Mapping = Clip_core.Mapping in
  let n = ref 0 in
  let rec walk path (e : Sch.element) =
    let kids =
      List.concat_map
        (fun (c : Sch.element) -> walk (Path.child path c.Sch.name) c)
        e.Sch.children
    in
    if Sch.is_repeating s path then begin
      incr n;
      [
        Mapping.node
          ~id:(Printf.sprintf "id%d" !n)
          ~output:path ~children:kids
          [ Mapping.input ~var:(Printf.sprintf "x%d" !n) path ];
      ]
    end
    else kids
  in
  let roots = walk (Sch.root_path s) s.Sch.root in
  let values =
    List.filter_map
      (fun q ->
        if Sch.repeating_ancestors s q <> [] then Some (Mapping.value [ q ] q)
        else None)
      (Sch.leaf_paths s)
  in
  Mapping.make ~source:s ~target:s ~roots values

(* Random canonical instances of a random database: the relational
   backend must agree byte-for-byte with the tgd backend on the
   identity mapping over the encoded schema. *)
let rel_backend_identity =
  QCheck2.Test.make ~count:60
    ~name:"random databases: rel backend == tgd backend on canonical instances"
    QCheck2.Gen.(pair gen_rel_db (0 -- 10_000))
    (fun (db, seed) ->
      let st = Random.State.make [| seed |] in
      let rows =
        List.map
          (fun (t : Rel.table) ->
            ( t.Rel.table_name,
              List.init (Random.State.int st 5) (fun _ ->
                  List.map
                    (fun (c : Rel.column) ->
                      match c.Rel.col_type with
                      | Clip_schema.Atomic_type.T_int ->
                        Atom.Int (Random.State.int st 9)
                      | _ -> Atom.String "x")
                    t.Rel.columns) ))
          db.Rel.tables
      in
      let m = identity_mapping (Rel.to_schema db) in
      let doc = Rel.instance db rows in
      Node.equal
        (Engine.run ~backend:`Tgd m doc)
        (Engine.run ~backend:`Rel m doc))

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "properties"
    [
      ("backend-agreement", to_alcotest agreement_props);
      ( "semantic-invariants",
        to_alcotest
          [
            fig3_count;
            fig4_shape;
            fig6_join_size;
            fig7_group_cardinality;
            fig8_inversion;
            fig9_aggregates;
            fig5_containment;
          ] );
      ("columnar", to_alcotest (doc_roundtrip :: repr_agreement));
      ("conformance", to_alcotest conformance);
      ("clio", to_alcotest [ clio_extension_never_worse; compiled_alpha_reflexive ]);
      ("pipeline", to_alcotest [ pipeline_prop; pipeline_dsl_prop ]);
      ( "rel",
        to_alcotest
          [ rel_encoding_total; rel_shape_roundtrip; rel_backend_identity ] );
    ]
