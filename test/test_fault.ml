(* Fault-tolerance suite: deterministic fault injection (Clip_fault),
   deadlines and cooperative cancellation (Clip_run.Control), and
   graceful batch degradation (Clip_par.map_results).

   The site-walk harness sweeps {!Clip_fault.all_sites}, so a newly
   planted failure point is covered here automatically. For every site
   it asserts the three contract clauses: (a) the injected fault
   escapes the exception-free [*_result] entry points as a structured
   [Error] carrying the stable CLIP-FLT-* code; (b) no session or
   context memo is left poisoned — re-running with the same context
   after disarming yields exactly the fault-free output; (c) under
   {!Clip_par.map_results} a fault is isolated to its input slot and
   the survivors' merged counters equal the fault-free totals. *)

module D = Clip_diag
module F = Clip_fault
module R = Clip_run
module C = Clip_obs.Counters
module Engine = Clip_core.Engine
module Fig = Clip_scenarios.Figures
module Dept = Clip_scenarios.Deptdb
module Node = Clip_xml.Node

let codes ds = String.concat "," (List.map (fun d -> d.D.code) ds)
let has_code code ds = List.exists (fun d -> String.equal d.D.code code) ds

let with_armed ?kind ?from ?times site f =
  F.arm ?kind ?from ?times site;
  Fun.protect ~finally:F.disarm f

let sc = Fig.fig6
let doc = Dept.synthetic_instance ~depts:8 ~projs:8 ~emps:6
let doc_text = Clip_xml.Printer.to_string doc

let backend_of site =
  if String.equal site F.Site.xquery_execute then `Xquery else `Tgd

(* The whole stack through exception-free entry points only: parse,
   then an engine run under [`Indexed] (which forces both the planner
   and the tag-index build, so the plan.build and index.build sites
   fire regardless of document size). *)
let engine ?ctx ?limits ?steps_out ~backend source =
  let ctx = match ctx with Some c -> c | None -> R.create () in
  Engine.run_result ~ctx ?limits ~backend ~plan:`Indexed
    ~minimum_cardinality:sc.Fig.minimum_cardinality ?steps_out sc.Fig.mapping
    source

let pipeline ~backend () =
  match Clip_xml.Parser.parse_string_result doc_text with
  | Error _ as e -> e
  | Ok source -> engine ~backend source

(* One driver per site, all returning [(unit, D.t list) result]. *)
let driver site =
  if String.equal site F.Site.par_task then
    match Clip_par.map_results ~jobs:1 (fun ~obs:_ () -> Ok ()) [ () ] with
    | [ r ] -> r
    | _ -> assert false
  else Result.map ignore (pipeline ~backend:(backend_of site) ())

(* (a) every site: armed fault fires and escapes as Error CLIP-FLT-002. *)
let test_site_walk () =
  List.iter
    (fun site ->
      let r, nfired =
        with_armed ~kind:F.Permanent site (fun () ->
            let r = driver site in
            (r, F.fired ()))
      in
      (match r with
      | Error ds when has_code D.Codes.fault_permanent ds -> ()
      | Error ds ->
        Alcotest.failf "site %s: expected %s, got [%s]" site
          D.Codes.fault_permanent (codes ds)
      | Ok () -> Alcotest.failf "site %s: armed fault did not fire" site);
      if nfired < 1 then Alcotest.failf "site %s: fired() = %d" site nfired;
      (* disarmed, the same driver succeeds *)
      match driver site with
      | Ok () -> ()
      | Error ds ->
        Alcotest.failf "site %s: still failing after disarm: [%s]" site
          (codes ds))
    F.all_sites

(* (b) no poisoning: a fault mid-population must not leave the context's
   session memo (or the backends' index/stats memos) holding a partial
   artifact — the same context re-runs cleanly and agrees with a fresh
   one. *)
let test_no_poisoning () =
  let engine_sites =
    List.filter
      (fun s ->
        not
          (String.equal s F.Site.xml_parse || String.equal s F.Site.par_task))
      F.all_sites
  in
  List.iter
    (fun site ->
      let backend = backend_of site in
      let expected =
        match engine ~backend doc with
        | Ok n -> n
        | Error ds -> Alcotest.failf "fault-free baseline failed: %s" (codes ds)
      in
      let ctx = R.create () in
      with_armed ~kind:F.Permanent site (fun () ->
          match engine ~ctx ~backend doc with
          | Ok _ -> Alcotest.failf "site %s: armed fault did not fire" site
          | Error _ -> ());
      match engine ~ctx ~backend doc with
      | Error ds ->
        Alcotest.failf "site %s: context poisoned after fault: [%s]" site
          (codes ds)
      | Ok n ->
        if not (Node.equal expected n) then
          Alcotest.failf "site %s: post-fault rerun differs from baseline" site)
    engine_sites

(* (c) slot isolation + exact counter merge. All tasks are identical,
   so each contributes the same counter increments; survivors of a
   1-in-6 fault must sum to exactly the fault-free totals of 5 tasks,
   whatever the task-to-domain partition. *)
let eval_task ~obs () =
  let ctx = R.create ?counters:obs () in
  Result.map ignore (engine ~ctx ~backend:`Tgd doc)

let assoc c = C.to_assoc c

let test_batch_degradation () =
  let n = 6 in
  let units = List.init n (fun _ -> ()) in
  (* fault-free sequential totals for 6 and for 5 tasks *)
  let c6 = C.create () in
  List.iter
    (function
      | Ok () -> ()
      | Error ds -> Alcotest.failf "fault-free task failed: %s" (codes ds))
    (Clip_par.map_results ~jobs:1 ~obs:c6 eval_task units);
  let c5 = C.create () in
  ignore (Clip_par.map_results ~jobs:1 ~obs:c5 eval_task (List.init (n - 1) (fun _ -> ())));
  let check_run ~jobs ~from =
    let cf = C.create () in
    let rs =
      with_armed ~kind:F.Permanent ~from F.Site.par_task (fun () ->
          Clip_par.map_results ~jobs ~obs:cf eval_task units)
    in
    let failed =
      List.filteri (fun _ r -> Result.is_error r) rs |> List.length
    in
    Alcotest.(check int)
      (Printf.sprintf "jobs=%d: exactly one failing slot" jobs)
      1 failed;
    List.iter
      (function
        | Ok () -> ()
        | Error ds ->
          if not (has_code D.Codes.fault_permanent ds) then
            Alcotest.failf "failing slot carries [%s]" (codes ds))
      rs;
    Alcotest.(check (list (pair string int)))
      (Printf.sprintf "jobs=%d: survivors' counters = fault-free 5-task totals"
         jobs)
      (assoc c5) (assoc cf)
  in
  (* sequential: hit ordinal 4 is task index 3, deterministically *)
  check_run ~jobs:1 ~from:4;
  let rs =
    with_armed ~kind:F.Permanent ~from:4 F.Site.par_task (fun () ->
        Clip_par.map_results ~jobs:1 eval_task units)
  in
  List.iteri
    (fun i r ->
      match (i, r) with
      | 3, Error ds when has_code D.Codes.fault_permanent ds -> ()
      | 3, Error ds -> Alcotest.failf "slot 3: wrong codes [%s]" (codes ds)
      | 3, Ok () -> Alcotest.fail "slot 3: expected the injected fault"
      | _, Ok () -> ()
      | i, Error ds -> Alcotest.failf "slot %d: unexpected [%s]" i (codes ds))
    rs;
  (* parallel: which task claims the firing hit is scheduling-dependent,
     but slot isolation and counter exactness must hold regardless *)
  check_run ~jobs:4 ~from:1

(* Retry policy: transient faults are re-attempted (fresh attempt, same
   worker), permanent and exhausted ones are not. *)
let test_retry_policy () =
  let ok_task ~obs:_ () = Ok () in
  let run ?times ?(retries = 0) kind =
    with_armed ~kind ?times ~from:1 F.Site.par_task (fun () ->
        let rs = Clip_par.map_results ~jobs:1 ~retries ok_task [ () ] in
        (List.hd rs, F.fired ()))
  in
  (match run ~retries:1 F.Transient with
  | Ok (), 1 -> ()
  | Ok (), n -> Alcotest.failf "transient+retry: fired %d times" n
  | Error ds, _ -> Alcotest.failf "transient+retry: [%s]" (codes ds));
  (match run ~retries:0 F.Transient with
  | Error ds, 1 when has_code D.Codes.fault_transient ds -> ()
  | Error ds, _ -> Alcotest.failf "transient+no-retry: [%s]" (codes ds)
  | Ok (), _ -> Alcotest.fail "transient+no-retry: expected Error");
  (* retries exhausted: both attempts fire *)
  (match run ~times:3 ~retries:1 F.Transient with
  | Error ds, 2 when has_code D.Codes.fault_transient ds -> ()
  | Error ds, n -> Alcotest.failf "exhausted: fired %d, [%s]" n (codes ds)
  | Ok (), _ -> Alcotest.fail "exhausted: expected Error");
  (* permanent: never retried, fires exactly once despite retries *)
  match run ~times:3 ~retries:3 F.Permanent with
  | Error ds, 1 when has_code D.Codes.fault_permanent ds -> ()
  | Error ds, n -> Alcotest.failf "permanent: fired %d, [%s]" n (codes ds)
  | Ok (), _ -> Alcotest.fail "permanent: expected Error"

(* Seeded arming and the CLI spec parser. *)
let test_arming () =
  let a = F.arm_seeded ~seed:42 in
  F.disarm ();
  let b = F.arm_seeded ~seed:42 in
  F.disarm ();
  if a <> b then Alcotest.fail "arm_seeded not deterministic";
  let site, from, _ = a in
  if not (List.mem site F.all_sites) then
    Alcotest.failf "arm_seeded picked unregistered site %s" site;
  if from < 1 then Alcotest.failf "arm_seeded picked hit ordinal %d" from;
  (match F.arm_spec "tgd.execute:2:transient:3" with
  | Ok () ->
    Alcotest.(check (option string)) "spec arms site" (Some F.Site.tgd_execute)
      (F.armed_site ());
    F.disarm ()
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match F.arm_spec "no.such.site" with
  | Error _ -> ()
  | Ok () ->
    F.disarm ();
    Alcotest.fail "unknown site accepted");
  match F.arm_spec "tgd.execute:zero" with
  | Error _ -> ()
  | Ok () ->
    F.disarm ();
    Alcotest.fail "malformed ordinal accepted"

(* Deadlines against an injected clock: deterministic expiry, all three
   plan modes, both backends, clean structured CLIP-LIM-005. *)
let run_ctl ?steps_out ~plan ~backend ctx =
  Engine.run_result ~ctx ~backend ~plan
    ~minimum_cardinality:sc.Fig.minimum_cardinality ?steps_out sc.Fig.mapping
    doc

let test_deadline_expired () =
  let expired () = R.deadline ~now:(fun () -> 1.0) ~until:0.5 in
  List.iter
    (fun plan ->
      let ctx = R.create ~deadline:(expired ()) () in
      match run_ctl ~plan ~backend:`Tgd ctx with
      | Error ds when has_code D.Codes.limit_deadline ds -> ()
      | Error ds -> Alcotest.failf "expected CLIP-LIM-005, got [%s]" (codes ds)
      | Ok _ -> Alcotest.fail "expired deadline: run succeeded")
    [ `Naive; `Indexed; `Auto ];
  let ctx = R.create ~deadline:(expired ()) () in
  match run_ctl ~plan:`Auto ~backend:`Xquery ctx with
  | Error ds when has_code D.Codes.limit_deadline ds -> ()
  | Error ds -> Alcotest.failf "xquery: expected CLIP-LIM-005, got [%s]" (codes ds)
  | Ok _ -> Alcotest.fail "xquery: expired deadline: run succeeded"

let test_deadline_mid_run () =
  (* A counting clock: the deadline passes on its third reading, i.e.
     after the entry check and the first 64-tick poll — so expiry is
     observed mid-evaluation, deterministically. *)
  List.iter
    (fun plan ->
      let polls = ref 0 in
      let now () =
        incr polls;
        float_of_int !polls
      in
      let steps = ref 0 in
      let ctx = R.create ~deadline:(R.deadline ~now ~until:3.0) () in
      match run_ctl ~steps_out:steps ~plan ~backend:`Tgd ctx with
      | Error ds when has_code D.Codes.limit_deadline ds ->
        if !steps < 64 then
          Alcotest.failf "expired before any evaluation progress (%d steps)"
            !steps
      | Error ds -> Alcotest.failf "expected CLIP-LIM-005, got [%s]" (codes ds)
      | Ok _ -> Alcotest.fail "mid-run deadline never observed")
    [ `Naive; `Indexed; `Auto ]

let test_cancellation () =
  (* pre-set flag: reported at the entry check, before any work *)
  List.iter
    (fun backend ->
      let ctx = R.create () in
      R.cancel ctx;
      match run_ctl ~plan:`Auto ~backend ctx with
      | Error ds when has_code D.Codes.cancelled ds -> ()
      | Error ds -> Alcotest.failf "expected CLIP-LIM-006, got [%s]" (codes ds)
      | Ok _ -> Alcotest.fail "cancelled run succeeded")
    [ `Tgd; `Xquery ];
  (* mid-run: the clock read sets the flag as a side effect, so the
     next poll (which checks cancellation before the deadline) stops
     the run — deterministic, no domains or timing involved *)
  let c = R.Cancel.create () in
  let polls = ref 0 in
  let now () =
    incr polls;
    if !polls >= 2 then R.Cancel.set c;
    0.0
  in
  let ctx = R.create ~deadline:(R.deadline ~now ~until:1e9) ~cancel:c () in
  (match run_ctl ~plan:`Auto ~backend:`Tgd ctx with
  | Error ds when has_code D.Codes.cancelled ds -> ()
  | Error ds -> Alcotest.failf "expected CLIP-LIM-006, got [%s]" (codes ds)
  | Ok _ -> Alcotest.fail "mid-run cancellation never observed");
  (* an uncontrolled context is unaffected *)
  match run_ctl ~plan:`Auto ~backend:`Tgd (R.create ()) with
  | Ok _ -> ()
  | Error ds -> Alcotest.failf "uncontrolled run failed: [%s]" (codes ds)

(* The real-clock contract behind [clip run --timeout-ms]: a runaway
   cartesian join is terminated by the deadline with CLIP-LIM-005 well
   before it would finish (its step budget is lifted so only the
   deadline can stop it). *)
let test_runaway_join () =
  let sc = Fig.fig6_cartesian in
  let big = Dept.synthetic_instance ~depts:400 ~projs:400 ~emps:2 in
  let limits = { D.Limits.default with max_eval_steps = max_int } in
  let deadline = R.deadline_after ~now:Unix.gettimeofday ~seconds:0.05 in
  let ctx = R.create ~deadline () in
  let t0 = Unix.gettimeofday () in
  let r =
    Engine.run_result ~ctx ~limits ~backend:`Tgd ~plan:`Naive
      ~minimum_cardinality:sc.Fig.minimum_cardinality sc.Fig.mapping big
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r with
  | Error ds when has_code D.Codes.limit_deadline ds -> ()
  | Error ds -> Alcotest.failf "expected CLIP-LIM-005, got [%s]" (codes ds)
  | Ok _ -> Alcotest.fail "runaway join finished before its 50ms deadline");
  if elapsed > 10.0 then
    Alcotest.failf "deadline ignored for %.1fs (poll sites missing?)" elapsed

let () =
  Alcotest.run "fault"
    [
      ( "injection",
        [
          Alcotest.test_case "site walk: structured CLIP-FLT-002 escape" `Quick
            test_site_walk;
          Alcotest.test_case "no session/memo poisoning" `Quick
            test_no_poisoning;
          Alcotest.test_case "arming: seeded + CLIP_FAULT spec" `Quick
            test_arming;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "map_results: slot isolation, exact counters"
            `Quick test_batch_degradation;
          Alcotest.test_case "retry policy" `Quick test_retry_policy;
        ] );
      ( "control",
        [
          Alcotest.test_case "deadline expired at entry (3 plans, 2 backends)"
            `Quick test_deadline_expired;
          Alcotest.test_case "deadline expires mid-run (injected clock)" `Quick
            test_deadline_mid_run;
          Alcotest.test_case "cancellation: pre-set and mid-run" `Quick
            test_cancellation;
          Alcotest.test_case "runaway cartesian join vs real deadline" `Quick
            test_runaway_join;
        ] );
    ]
