(* Tests for Clip_clio: tableaux (Sec. V-A), skeletons, activation and
   subsumption, baseline generation (the Fig. 1 defect), the Sec. V-B
   extension (Fig. 10 and the Fig. 1 repair), and the Table I
   flexibility analysis. *)

module S = Clip_scenarios
module Path = Clip_schema.Path
module Tableau = Clip_clio.Tableau
module Skeleton = Clip_clio.Skeleton
module Generate = Clip_clio.Generate
module Enumerate = Clip_clio.Enumerate
module Node = Clip_xml.Node

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checksl = Alcotest.(check (list string))

let path s =
  match Path.of_string s with
  | Ok p -> p
  | Error m -> Alcotest.failf "bad path %S: %s" s m

(* --- Tableaux ---------------------------------------------------------------- *)

let tableau_tests =
  [
    Alcotest.test_case "the paper's three source tableaux (Sec. V-A)" `Quick
      (fun () ->
        checksl "tableaux"
          [ "{dept}"; "{dept-Proj}"; "{dept-Proj-regEmp, @pid=@pid}" ]
          (List.map Tableau.to_string (Tableau.compute S.Deptdb.source)));
    Alcotest.test_case "target tableaux of the Fig. 1 target" `Quick (fun () ->
        checksl "tableaux"
          [ "{department}"; "{department-project}"; "{department-employee}" ]
          (List.map Tableau.to_string (Tableau.compute S.Deptdb.target_dp)));
    Alcotest.test_case "fig10 source tableaux: A, AB, ABC, AD, ADE" `Quick (fun () ->
        checksl "tableaux"
          [ "{A}"; "{A-B}"; "{A-B-C}"; "{A-D}"; "{A-D-E}" ]
          (List.map Tableau.to_string (Tableau.compute S.Generic.source)));
    Alcotest.test_case "fig10 target tableaux: F, FG" `Quick (fun () ->
        checksl "tableaux" [ "{F}"; "{F-G}" ]
          (List.map Tableau.to_string (Tableau.compute S.Generic.target)));
    Alcotest.test_case "subset and equal" `Quick (fun () ->
        let a = Tableau.make [ path "s.A" ] in
        let ab = Tableau.make [ path "s.A"; path "s.A.B" ] in
        checkb "A <= AB" true (Tableau.subset a ab);
        checkb "AB !<= A" false (Tableau.subset ab a);
        checkb "A = A" true (Tableau.equal a (Tableau.make [ path "s.A" ])));
    Alcotest.test_case "covers respects repeating boundaries" `Quick (fun () ->
        let dp = Tableau.make [ path "source.dept"; path "source.dept.Proj" ] in
        checkb "pname" true (Tableau.covers S.Deptdb.source dp (path "source.dept.Proj.pname.value"));
        checkb "ename crosses regEmp" false
          (Tableau.covers S.Deptdb.source dp (path "source.dept.regEmp.ename.value"));
        checkb "dname" true (Tableau.covers S.Deptdb.source dp (path "source.dept.dname.value")));
    Alcotest.test_case "parents drop one maximal generator with its conditions"
      `Quick (fun () ->
        let chased =
          List.find
            (fun t -> Tableau.to_string t = "{dept-Proj-regEmp, @pid=@pid}")
            (Tableau.compute S.Deptdb.source)
        in
        let parents = List.map Tableau.to_string (Tableau.parents chased) in
        checkb "drops Proj (condition goes too)" true
          (List.mem "{dept-regEmp}" parents);
        checkb "drops regEmp" true (List.mem "{dept-Proj}" parents));
    Alcotest.test_case "singleton tableaux have no parents" `Quick (fun () ->
        checki "none" 0 (List.length (Tableau.parents (Tableau.make [ path "s.A" ]))));
    Alcotest.test_case "relational encodings: one tableau per table, chased over FKs"
      `Quick (fun () ->
        let db =
          Clip_schema.Relational.database "db"
            ~foreign_keys:
              [
                {
                  Clip_schema.Relational.fk_table = "grant";
                  fk_columns = [ "recipient" ];
                  pk_table = "company";
                  pk_columns = [ "cid" ];
                };
              ]
            [
              Clip_schema.Relational.table "company"
                [
                  Clip_schema.Relational.column "cid" Clip_schema.Atomic_type.T_int;
                ];
              Clip_schema.Relational.table "grant"
                [
                  Clip_schema.Relational.column "recipient"
                    Clip_schema.Atomic_type.T_int;
                ];
            ]
        in
        let s = Clip_schema.Relational.to_schema db in
        (* generators are depth-then-name ordered, so company sorts first *)
        checksl "tableaux"
          [ "{company}"; "{company-grant, @cid=@recipient}" ]
          (List.map Tableau.to_string (Tableau.compute s)));
    Alcotest.test_case "a chain of foreign keys chases transitively" `Quick
      (fun () ->
        let s =
          Clip_schema.Dsl.parse
            {|schema db {
                a [0..*] { @id: int }
                b [0..*] { @id: int @fa: int }
                c [0..*] { @fb: int }
                ref b.@fa -> a.@id
                ref c.@fb -> b.@id
              }|}
        in
        checkb "c chases through b to a" true
          (List.exists
             (fun t ->
               let s = Tableau.to_string t in
               let contains needle =
                 let n = String.length needle and m = String.length s in
                 let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
                 go 0
               in
               contains "c" && contains "b" && contains "a")
             (Tableau.compute s)));
  ]

(* --- Skeletons ----------------------------------------------------------------- *)

let skeleton_tests =
  [
    Alcotest.test_case "matrix size is |src| x |tgt|" `Quick (fun () ->
        checki "9" 9 (List.length (Skeleton.matrix S.Deptdb.source S.Deptdb.target_dp)));
    Alcotest.test_case "activation covers and prunes" `Quick (fun () ->
        let m = S.Figures.fig1_values in
        let actives = Skeleton.activate m (Skeleton.matrix m.source m.target) in
        checksl "active skeletons"
          [
            "{dept-Proj} -> {department-project}";
            "{dept-Proj-regEmp, @pid=@pid} -> {department-employee}";
          ]
          (List.map (fun (s, _) -> Skeleton.to_string s) actives));
    Alcotest.test_case "aligned parents walk both sides up" `Quick (fun () ->
        let s =
          {
            Skeleton.src = Tableau.make [ path "s.A"; path "s.A.B" ];
            tgt = Tableau.make [ path "t.F"; path "t.F.G" ];
          }
        in
        checksl "parents" [ "{A} -> {F}" ] (List.map Skeleton.to_string (Skeleton.parents s)));
    Alcotest.test_case "ancestors is the transitive closure" `Quick (fun () ->
        let s =
          {
            Skeleton.src = Tableau.make [ path "s.A"; path "s.A.B"; path "s.A.B.C" ];
            tgt = Tableau.make [ path "t.F"; path "t.F.G" ];
          }
        in
        checki "1 (deeper source has no matching target step after F)" 1
          (List.length (Skeleton.ancestors s)));
  ]

(* --- Baseline generation: the Fig. 1 defect --------------------------------------- *)

let run_tgd tgd =
  Clip_tgd.Eval.run ~source:S.Deptdb.instance ~target_root:"target" tgd

let baseline_tests =
  [
    Alcotest.test_case "baseline reproduces the Fig. 1 defective output" `Quick
      (fun () ->
        let out = run_tgd (Generate.generate S.Figures.fig1_values) in
        checkb "matches" true (Node.equal_unordered out S.Figures.fig1_clio_output));
    Alcotest.test_case "baseline wraps every value in its own department" `Quick
      (fun () ->
        let out = run_tgd (Generate.generate S.Figures.fig1_values) in
        checki "11 departments" 11 (Node.count_elements out "department"));
    Alcotest.test_case "baseline forest has two unnested roots" `Quick (fun () ->
        checki "2 roots" 2 (List.length (Generate.forest S.Figures.fig1_values)));
  ]

(* --- The extension ------------------------------------------------------------------ *)

let extension_tests =
  [
    Alcotest.test_case "extension activates {dept}->{department} and nests" `Quick
      (fun () ->
        let forest = Generate.forest ~extension:true S.Figures.fig1_values in
        checki "1 root" 1 (List.length forest);
        let root = List.hd forest in
        checkb "root skeleton" true
          (Skeleton.to_string root.skeleton = "{dept} -> {department}");
        checki "2 children" 2 (List.length root.children));
    Alcotest.test_case "extension output is the Sec. I desired instance" `Quick
      (fun () ->
        let out = run_tgd (Generate.generate ~extension:true S.Figures.fig1_values) in
        checkb "matches fig5 expected" true
          (Node.equal_unordered out (Option.get S.Figures.fig5.expected)));
    Alcotest.test_case "fig10: extension finds A -> F" `Quick (fun () ->
        let forest = Generate.forest ~extension:true S.Generic.mapping in
        checki "1 root" 1 (List.length forest);
        checkb "A -> F" true
          (Skeleton.to_string (List.hd forest).skeleton = "{A} -> {F}");
        checki "AB->FG and AD->FG below" 2 (List.length (List.hd forest).children));
    Alcotest.test_case "fig10 second example: A(BxD) nests under A -> F" `Quick
      (fun () ->
        let abd = Tableau.make S.Generic.abd_gens in
        let forest =
          Generate.forest ~extension:true ~extra_source_tableaux:[ abd ]
            S.Generic.mapping
        in
        checki "1 root" 1 (List.length forest);
        let root = List.hd forest in
        checkb "contains the Cartesian submapping" true
          (List.exists
             (fun (n : Generate.nested) ->
               Skeleton.to_string n.skeleton = "{A-B-D} -> {F-G}")
             root.children));
    Alcotest.test_case "extension on fig10 produces the paper's nested tgd" `Quick
      (fun () ->
        let tgd = Generate.generate ~extension:true S.Generic.mapping in
        let s = Clip_tgd.Pretty.to_string ~unicode:false tgd in
        let contains needle =
          let n = String.length needle and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
          go 0
        in
        checkb "root" true (contains "forall a in ROOT.A -> exists f' in ROOT2.F");
        checkb "B child" true (contains "forall b in a.B -> exists g' in f'.G");
        checkb "att2" true (contains "g'.@att2 = b.value");
        checkb "att3" true (contains ".@att3 = d.value"));
    Alcotest.test_case "extension without enough roots is a no-op" `Quick (fun () ->
        (* a single value mapping yields a single active mapping *)
        let m =
          Clip_core.Mapping.make ~source:S.Deptdb.source ~target:S.Deptdb.target_dp
            [
              Clip_core.Mapping.value
                [ path "source.dept.Proj.pname.value" ]
                (path "target.department.project.@name");
            ]
        in
        checki "same forests"
          (List.length (Generate.forest m))
          (List.length (Generate.forest ~extension:true m)));
  ]

(* --- to_clip round-trip --------------------------------------------------------------- *)

let to_clip_tests =
  [
    Alcotest.test_case "extension forest renders as a valid Clip mapping" `Quick
      (fun () ->
        let forest = Generate.forest ~extension:true S.Figures.fig1_values in
        let clip = Generate.to_clip S.Figures.fig1_values forest in
        checkb "valid" true (Clip_core.Validity.is_valid clip));
    Alcotest.test_case "rendered Clip mapping runs to the same output" `Quick
      (fun () ->
        let forest = Generate.forest ~extension:true S.Figures.fig1_values in
        let clip = Generate.to_clip S.Figures.fig1_values forest in
        let via_clip = Clip_core.Engine.run clip S.Deptdb.instance in
        let via_tgd = run_tgd (Generate.to_tgd S.Figures.fig1_values forest) in
        checkb "same result" true (Node.equal_unordered via_clip via_tgd));
    Alcotest.test_case "baseline forests with multi-element mappings are rejected"
      `Quick (fun () ->
        let forest = Generate.forest S.Figures.fig1_values in
        checkb "raises" true
          (match Generate.to_clip S.Figures.fig1_values forest with
           | exception Failure _ -> true
           | _ -> false));
  ]

(* --- Generated tgds are well-formed and produce conforming outputs -------------- *)

let wellformedness_tests =
  [
    Alcotest.test_case "generated tgds are well-formed (baseline and extension)"
      `Quick (fun () ->
        List.iter
          (fun (sc : S.Table1.scenario) ->
            List.iter
              (fun extension ->
                let tgd = Generate.generate ~extension sc.mapping in
                Alcotest.(check (list string))
                  (sc.label ^ if extension then " (ext)" else "")
                  []
                  (List.map Clip_tgd.Wellformed.error_to_string
                     (Clip_tgd.Wellformed.check
                        ~source_root:sc.mapping.source.root.name
                        ~target_root:sc.mapping.target.root.name tgd)))
              [ false; true ])
          S.Table1.all);
    Alcotest.test_case "extension outputs conform to the target schema" `Quick
      (fun () ->
        List.iter
          (fun (sc : S.Table1.scenario) ->
            let tgd = Generate.generate ~extension:true sc.mapping in
            let out =
              Clip_tgd.Eval.run ~source:sc.instance
                ~target_root:sc.mapping.target.root.name tgd
            in
            let non_card =
              List.filter
                (fun (v : Clip_schema.Validate.violation) ->
                  let s = v.reason in
                  let needle = "cardinality" in
                  let n = String.length needle and m = String.length s in
                  let rec go i =
                    i + n <= m && (String.sub s i n = needle || go (i + 1))
                  in
                  not (go 0))
                (Clip_schema.Validate.check sc.mapping.target out)
            in
            Alcotest.(check (list string))
              sc.label []
              (List.map Clip_schema.Validate.violation_to_string non_card))
          S.Table1.all);
  ]

(* --- End to end: generated mappings through the whole pipeline ------------------ *)

(* Random subsets of each Table I scenario's value mappings, pushed
   through the entire toolchain: Sec. V-B generation, the Clip
   rendering, Sec. III validity, Sec. IV compilation and
   well-formedness, then execution on both backends under a counter
   sink. Baseline forests with multi-element mappings cannot render as
   Clip (to_clip refuses); those subsets are skipped, not failed. *)
let end_to_end_property =
  QCheck.Test.make ~count:60
    ~name:"generated mappings: valid, well-formed, backend-identical, sane counters"
    QCheck.(pair (int_range 0 1000) (int_range 1 1000))
    (fun (pick, mask) ->
      let sc = List.nth S.Table1.all (pick mod List.length S.Table1.all) in
      let values =
        List.filteri
          (fun i _ -> (mask lsr (i mod 10)) land 1 = 1 || mask mod 7 = i mod 7)
          sc.S.Table1.mapping.Clip_core.Mapping.values
      in
      QCheck.assume (values <> []);
      let m =
        Clip_core.Mapping.make ~source:sc.S.Table1.mapping.source
          ~target:sc.S.Table1.mapping.target values
      in
      let forest = Generate.forest ~extension:true m in
      match Generate.to_clip m forest with
      | exception Failure _ -> QCheck.assume_fail ()
      | clip ->
        if not (Clip_core.Validity.is_valid clip) then
          QCheck.Test.fail_reportf "%s: generated mapping is invalid" sc.label;
        let tgd = Clip_core.Compile.to_tgd clip in
        if
          Clip_tgd.Wellformed.check ~source_root:m.source.root.name
            ~target_root:m.target.root.name tgd
          <> []
        then QCheck.Test.fail_reportf "%s: compiled tgd is ill-formed" sc.label;
        let counted backend =
          let c = Clip_obs.Counters.create () in
          let out =
            Clip_core.Engine.run
              ~ctx:(Clip_run.create ~counters:c ())
              ~backend clip sc.S.Table1.instance
          in
          (out, c)
        in
        let out_t, ct = counted `Tgd in
        let out_x, cx = counted `Xquery in
        if not (Node.equal_unordered out_t out_x) then
          QCheck.Test.fail_reportf "%s: backends disagree" sc.label;
        List.iter
          (fun (bname, (c : Clip_obs.Counters.t)) ->
            if c.lim_ticks <= 0 then
              QCheck.Test.fail_reportf "%s/%s: no budget ticks recorded"
                sc.label bname;
            if c.child_steps <= 0 then
              QCheck.Test.fail_reportf "%s/%s: no child steps recorded"
                sc.label bname;
            if c.index_hits > c.index_probes then
              QCheck.Test.fail_reportf "%s/%s: index hits %d > probes %d"
                sc.label bname c.index_hits c.index_probes)
          [ ("tgd", ct); ("xquery", cx) ];
        true)

(* --- Table I ----------------------------------------------------------------------------- *)

let table1_tests =
  List.map
    (fun (sc : S.Table1.scenario) ->
      Alcotest.test_case sc.label `Quick (fun () ->
          checki "value mappings" sc.value_mappings
            (List.length sc.mapping.values);
          let report = Enumerate.flexibility ~instance:sc.instance sc.mapping in
          checki
            (Printf.sprintf "extra meaningful mappings (paper: %d)" sc.paper_extra)
            sc.paper_extra
            (Enumerate.extra_count report)))
    S.Table1.all

let enumeration_detail_tests =
  [
    Alcotest.test_case "this-paper variants are the four expected classes" `Quick
      (fun () ->
        let report =
          Enumerate.flexibility ~instance:S.Deptdb.instance S.Figures.fig1_values
        in
        let accepted =
          List.filter_map
            (fun (v : Enumerate.variant) ->
              match v.outcome with
              | Enumerate.Accepted _ -> Some v.label
              | _ -> None)
            report.variants
        in
        checki "4 accepted" 4 (List.length accepted);
        checkb "two drop-arc" true
          (List.length (List.filter (fun l -> String.length l >= 8 && String.sub l 0 8 = "drop-arc") accepted) = 2);
        checkb "two group" true
          (List.length (List.filter (fun l -> String.length l >= 5 && String.sub l 0 5 = "group") accepted) = 2));
    Alcotest.test_case "accepted variants are pairwise distinct" `Quick (fun () ->
        let report =
          Enumerate.flexibility ~instance:S.Deptdb.instance S.Figures.fig1_values
        in
        let outputs =
          List.filter_map
            (fun (v : Enumerate.variant) ->
              match v.outcome with Enumerate.Accepted out -> Some out | _ -> None)
            report.variants
        in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if i < j then checkb "distinct" false (Node.equal_unordered a b))
              outputs)
          outputs);
    Alcotest.test_case "all accepted variants are valid mappings" `Quick (fun () ->
        let report =
          Enumerate.flexibility ~instance:S.Deptdb.instance S.Figures.fig1_values
        in
        List.iter
          (fun (v : Enumerate.variant) ->
            match v.outcome with
            | Enumerate.Accepted _ ->
              checkb v.label true (Clip_core.Validity.is_valid v.mapping)
            | _ -> ())
          report.variants);
  ]

let () =
  Alcotest.run "clio"
    [
      ("tableaux", tableau_tests);
      ("skeletons", skeleton_tests);
      ("baseline", baseline_tests);
      ("extension", extension_tests);
      ("to-clip", to_clip_tests);
      ("wellformedness", wellformedness_tests);
      ("table1", table1_tests);
      ("enumeration", enumeration_detail_tests);
      ("end-to-end", [ QCheck_alcotest.to_alcotest end_to_end_property ]);
    ]
