(* The relational backend, differentially tested against the tgd
   backend: on every relational-shaped mapping the two must produce
   byte-identical targets under every plan mode and document
   representation, and byte-identical dynamic error diagnostics.
   Nested sources must be rejected statically with CLIP-REL-003. *)

module S = Clip_scenarios
module Node = Clip_xml.Node
module Engine = Clip_core.Engine
module Shape = Clip_rel.Shape
module Program = Clip_rel.Program
module Sql = Clip_rel.Sql

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Table I scenarios carry only value mappings; route them through the
   Clio generator to obtain runnable mappings (same as the figures
   pipeline). *)
let runnable (sc : S.Table1.scenario) =
  let m = sc.S.Table1.mapping in
  Clip_clio.Generate.to_clip m (Clip_clio.Generate.forest ~extension:true m)

let plans = [ (`Naive, "naive"); (`Indexed, "indexed"); (`Auto, "auto") ]
let reprs = [ (`Tree, "tree"); (`Columnar, "columnar") ]

(* The cram scenario as a DSL text, for scaled instances: a proper
   join (company ⋈ grant) with attribute and value-child columns. *)
let grants_dsl =
  {|schema db {
  company [0..*] {
    @cid: int
    cname: string
  }
  grant [0..*] {
    @gid: int
    @recipient: int
    amount: int
  }
  ref grant.@recipient -> company.@cid
}
schema web {
  organization [0..*] {
    @name: string
    funding [0..*] {
      @fid: int
      @amount: int
    }
  }
}
mapping {
  node n2: db.company as $c -> web.organization {
    node n1: db.grant as $g -> web.organization.funding where $c.@cid = $g.@recipient
  }
  value db.company.cname.value -> web.organization.@name
  value db.grant.@gid -> web.organization.funding.@fid
  value db.grant.amount.value -> web.organization.funding.@amount
}|}

let grants_mapping =
  match Clip_core.Dsl.parse_result grants_dsl with
  | Ok m -> m
  | Error _ -> assert false

(* A scaled instance: [n] companies, [3n] grants hitting every company. *)
let grants_instance n =
  let b = Buffer.create 4096 in
  Buffer.add_string b "<db>";
  for i = 1 to n do
    Printf.bprintf b "<company cid=\"%d\"><cname>C%d</cname></company>" i i
  done;
  for j = 1 to 3 * n do
    Printf.bprintf b
      "<grant gid=\"%d\" recipient=\"%d\"><amount>%d</amount></grant>" j
      ((j mod n) + 1) (j * 10)
  done;
  Buffer.add_string b "</db>";
  Clip_xml.Parser.parse_string (Buffer.contents b)

let differential name mapping source =
  Alcotest.test_case name `Quick (fun () ->
      let expected = Engine.run ~backend:`Tgd mapping source in
      List.iter
        (fun (plan, pname) ->
          List.iter
            (fun (repr, rname) ->
              let out = Engine.run ~backend:`Rel ~plan ~repr mapping source in
              checkb
                (Printf.sprintf "%s/%s identical" pname rname)
                true (Node.equal expected out))
            reprs)
        plans)

let shape_tests =
  [
    Alcotest.test_case "accepts the relational Table I scenario" `Quick
      (fun () ->
        match
          Shape.of_schema S.Table1.translating_fig1.S.Table1.mapping.source
        with
        | Ok shape ->
          checki "2 tables" 2 (List.length shape.Shape.tables);
          Alcotest.(check (list string))
            "table names" [ "company"; "grant" ]
            (Shape.table_names shape)
        | Error reason -> Alcotest.failf "rejected: %s" reason);
    Alcotest.test_case "rejects the nested Table I scenarios" `Quick (fun () ->
        List.iter
          (fun (sc : S.Table1.scenario) ->
            checkb
              (Printf.sprintf "%s rejected" sc.S.Table1.label)
              true
              (match Shape.of_schema sc.S.Table1.mapping.source with
               | Error _ -> true
               | Ok _ -> false))
          [ S.Table1.nested_fig1; S.Table1.nested_fig3; S.Table1.this_paper_fig1 ]);
    Alcotest.test_case "compile rejects nested sources with CLIP-REL-003" `Quick
      (fun () ->
        let m = runnable S.Table1.nested_fig1 in
        match
          Clip_core.Compile.to_tgd_result m
        with
        | Error _ -> Alcotest.fail "scenario should compile to a tgd"
        | Ok tgd ->
          (match
             Program.compile_result ~source:m.source
               ~target_root:m.target.root.name tgd
           with
           | Ok _ -> Alcotest.fail "expected rejection"
           | Error ds ->
             checks "code" "CLIP-REL-003" (List.hd ds).Clip_diag.code));
  ]

let differential_tests =
  [
    differential "translating_fig1: rel == tgd on every plan x repr"
      (runnable S.Table1.translating_fig1)
      S.Table1.translating_fig1.S.Table1.instance;
    differential "grants join, scale 20: rel == tgd on every plan x repr"
      grants_mapping (grants_instance 20);
    Alcotest.test_case "sharded/auto modes agree too" `Quick (fun () ->
        let source = grants_instance 10 in
        let expected = Engine.run ~backend:`Tgd grants_mapping source in
        List.iter
          (fun mode ->
            checkb "identical" true
              (Node.equal expected
                 (Engine.run ~backend:`Rel ~mode ~jobs:2 grants_mapping source)))
          [ `Whole; `Sharded; `Auto ]);
    Alcotest.test_case "engine sessions reuse rel state across runs" `Quick
      (fun () ->
        let source = grants_instance 5 in
        let s = Engine.Session.create source in
        let expected = Engine.Session.run ~backend:`Tgd s grants_mapping in
        for _ = 1 to 3 do
          checkb "identical" true
            (Node.equal expected
               (Engine.Session.run ~backend:`Rel s grants_mapping))
        done);
  ]

let error_tests =
  [
    Alcotest.test_case "run_result reports CLIP-REL-003 on nested sources"
      `Quick (fun () ->
        let sc = S.Table1.nested_fig1 in
        match
          Engine.run_result ~backend:`Rel (runnable sc) sc.S.Table1.instance
        with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error ds ->
          checks "code" "CLIP-REL-003" (List.hd ds).Clip_diag.code);
    Alcotest.test_case "dynamic errors are byte-identical to the tgd backend"
      `Quick (fun () ->
        (* a wrong-rooted document: both backends must fail with the
           same CLIP-TGD-001 message *)
        let wrong = Clip_xml.Parser.parse_string "<notdb><company/></notdb>" in
        let diag backend =
          match Engine.run_result ~backend grants_mapping wrong with
          | Ok _ -> Alcotest.fail "expected a dynamic error"
          | Error ds ->
            let d = List.hd ds in
            (d.Clip_diag.code, d.Clip_diag.message)
        in
        let ct, mt = diag `Tgd in
        let cr, mr = diag `Rel in
        checks "code" ct cr;
        checks "message" mt mr);
    Alcotest.test_case "step budget still meters rel runs (CLIP-LIM-004)"
      `Quick (fun () ->
        let limits = { Clip_diag.Limits.default with max_eval_steps = 10 } in
        match
          Engine.run_result ~limits ~backend:`Rel grants_mapping
            (grants_instance 10)
        with
        | Ok _ -> Alcotest.fail "expected the budget to trip"
        | Error ds ->
          checks "code" "CLIP-LIM-004" (List.hd ds).Clip_diag.code);
    Alcotest.test_case "the universal-solution ablation stays tgd-only" `Quick
      (fun () ->
        checkb "raises" true
          (match
             Engine.run ~backend:`Rel ~minimum_cardinality:false grants_mapping
               (grants_instance 2)
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let sql_tests =
  [
    Alcotest.test_case "emitted SQL covers every rule" `Quick (fun () ->
        let m = grants_mapping in
        let tgd = Clip_core.Compile.to_tgd m in
        let prog =
          Program.compile ~source:m.source ~target_root:m.target.root.name tgd
        in
        let sql = Sql.of_program prog in
        let contains sub =
          let n = String.length sub and len = String.length sql in
          let rec go i =
            i + n <= len && (String.equal (String.sub sql i n) sub || go (i + 1))
          in
          go 0
        in
        List.iter
          (fun sub -> checkb sub true (contains sub))
          [
            "SELECT c.cname AS name";
            "FROM company AS c";
            "WHERE c.cid = g.recipient";
            "FROM company AS c, grant AS g";
          ]);
    Alcotest.test_case "explain is deterministic and names the backend" `Quick
      (fun () ->
        let source = grants_instance 3 in
        let e1 = Engine.explain ~backend:`Rel grants_mapping source in
        let e2 = Engine.explain ~backend:`Rel grants_mapping source in
        checks "stable" e1 e2;
        checkb "header" true
          (String.length e1 > 12 && String.equal (String.sub e1 0 12) "backend: rel"));
  ]

let () =
  Alcotest.run "rel"
    [
      ("shape", shape_tests);
      ("differential", differential_tests);
      ("errors", error_tests);
      ("sql", sql_tests);
    ]
