(* The physical-plan layer: planner decisions (pushdown, hash joins,
   segment joins), key normalisation, the lazy tag index, and the
   differential guarantee that `Indexed runs are output-identical to
   the `Naive oracles on every figure scenario. *)

module P = Clip_plan
module Node = Clip_xml.Node
module Atom = Clip_xml.Atom
module Printer = Clip_xml.Printer

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

(* --- A toy planner environment ---------------------------------------- *)

(* Environments are assoc lists of ints; generators enumerate integer
   lists. Enough to exercise every planner decision without either
   backend. *)
type env = (string * int) list

let lookup env x = List.assoc x env

let gen ?(deps = []) ?est var eval : (env, int) P.gen =
  { P.var; deps; est; eval; bind = (fun env v -> (var, v) :: env) }

let const ?est var items = gen ?est var (fun _ -> items)

let pred pvars test : env P.pred = { P.pvars; test }

let eq ~left ~lkeys ~right ~rkeys : env P.cond =
  P.Eq
    {
      left = { P.kvars = left; keys = (fun env -> [ lkeys env ]) };
      right = { P.kvars = right; keys = (fun env -> [ rkeys env ]) };
      orig =
        pred (left @ right) (fun env ->
            P.Key.equal (lkeys env) (rkeys env));
    }

let key1 x env = P.Key.of_atom (Atom.Int (lookup env x))

let run_plan p =
  let acc = ref [] in
  let ticks = ref 0 in
  P.execute p
    ~tick:(fun () -> incr ticks)
    ~env:[]
    ~emit:(fun env -> acc := env :: !acc);
  (List.rev !acc, !ticks)

(* The naive reference: full cross product, all conditions innermost. *)
let run_naive gens conds =
  let test env = function
    | P.Other p -> p.P.test env
    | P.Eq { orig; _ } -> orig.P.test env
  in
  let acc = ref [] in
  let rec go env = function
    | [] -> if List.for_all (test env) conds then acc := env :: !acc
    | g :: rest ->
      List.iter (fun v -> go (g.P.bind env v) rest) (g.P.eval env)
  in
  go [] gens;
  List.rev !acc

let planner_tests =
  [
    Alcotest.test_case "pushdown: a condition runs at its earliest stage" `Quick
      (fun () ->
        let gens = [ const "x" [ 1; 2; 3 ]; const "y" [ 1; 2; 3 ] ] in
        let conds = [ P.Other (pred [ "x" ] (fun env -> lookup env "x" > 1)) ] in
        let p = P.plan ~bound:[] ~gens ~conds () in
        checks "shape" "scan(x/1) scan(y)" (P.describe p);
        let got, ticks = run_plan p in
        checki "bindings" 6 (List.length got);
        (* x=1 is pruned before y enumerates: 3 (x) + 2*3 (y) ticks *)
        checki "ticks" 9 ticks);
    Alcotest.test_case "an equality between adjacent stages is a hash join" `Quick
      (fun () ->
        let gens = [ const "x" [ 1; 2; 2 ]; const "y" [ 2; 2; 3 ] ] in
        let conds = [ eq ~left:[ "x" ] ~lkeys:(key1 "x") ~right:[ "y" ] ~rkeys:(key1 "y") ] in
        let p = P.plan ~bound:[] ~gens ~conds () in
        checks "shape" "scan(x) probe(y@0)" (P.describe p);
        let got, _ = run_plan p in
        checkb "same bindings as naive" true (got = run_naive gens conds));
    Alcotest.test_case "probe hits come back in build-side order" `Quick (fun () ->
        let gens = [ const "x" [ 7 ]; const "y" [ 5; 7; 6; 7; 7; 1 ] ] in
        let conds = [ eq ~left:[ "x" ] ~lkeys:(key1 "x") ~right:[ "y" ] ~rkeys:(key1 "y") ] in
        let p = P.plan ~bound:[] ~gens ~conds () in
        let got, ticks = run_plan p in
        checkb "order preserved" true (got = run_naive gens conds);
        (* 1 (x) + 3 probe hits; the misses are never enumerated *)
        checki "ticks" 4 ticks);
    Alcotest.test_case "a feeder chain is absorbed into a segment join" `Quick
      (fun () ->
        (* r ranges over d's items, d over a constant — the paper's
           [d2 in source.dept, r in d2.regEmp] shape. The probe must
           cover both stages so the table outlives the x loop. *)
        let gens =
          [
            const "x" [ 1; 2; 3 ];
            const "d" [ 10; 20 ];
            gen ~deps:[ "d" ] "r" (fun env -> [ lookup env "d" + 1; lookup env "d" + 2 ]);
          ]
        in
        let conds =
          [ eq ~left:[ "x" ] ~lkeys:(key1 "x")
              ~right:[ "r" ]
              ~rkeys:(fun env -> P.Key.of_atom (Atom.Int (lookup env "r" mod 10))) ]
        in
        let p = P.plan ~bound:[] ~gens ~conds () in
        checks "shape" "scan(x) probe(d.r@0)" (P.describe p);
        let got, _ = run_plan p in
        checkb "same bindings as naive" true (got = run_naive gens conds));
    Alcotest.test_case "no join when the table would rebuild per probe" `Quick
      (fun () ->
        (* y depends on x (the probe side): the table cannot outlive
           any generator, so the equality stays a pushed-down filter. *)
        let gens =
          [ const "x" [ 1; 2 ]; gen ~deps:[ "x" ] "y" (fun env -> [ lookup env "x"; 9 ]) ]
        in
        let conds = [ eq ~left:[ "x" ] ~lkeys:(key1 "x") ~right:[ "y" ] ~rkeys:(key1 "y") ] in
        let p = P.plan ~bound:[] ~gens ~conds () in
        checks "shape" "scan(x) scan(y/1)" (P.describe p);
        let got, _ = run_plan p in
        checkb "same bindings as naive" true (got = run_naive gens conds));
    Alcotest.test_case "shadowed variables disable pushdown" `Quick (fun () ->
        let gens = [ const "x" [ 1; 2 ]; const "x" [ 3; 4 ] ] in
        let conds = [ P.Other (pred [ "x" ] (fun env -> lookup env "x" > 3)) ] in
        let p = P.plan ~bound:[] ~gens ~conds () in
        checks "shape" "scan(x) scan(x/1)" (P.describe p);
        let got, _ = run_plan p in
        checki "bindings" 2 (List.length got));
    Alcotest.test_case "outer-bound conditions run once, before any stage" `Quick
      (fun () ->
        let gens = [ const "x" [ 1; 2; 3 ] ] in
        let conds = [ P.Other (pred [ "b" ] (fun _ -> false)) ] in
        let p = P.plan ~bound:[ "b" ] ~gens ~conds () in
        let got, ticks = run_plan p in
        checki "bindings" 0 (List.length got);
        checki "ticks" 0 ticks);
  ]

(* --- The cost model and the [`Cost] policy ----------------------------- *)

let cost_tests =
  let join_conds =
    [ eq ~left:[ "x" ] ~lkeys:(key1 "x") ~right:[ "y" ] ~rkeys:(key1 "y") ]
  in
  [
    Alcotest.test_case "join_pays: tiny inputs scan, large inputs join" `Quick
      (fun () ->
        checkb "2x2 scans" false (P.join_pays ~outer:(Some 2) ~seg:(Some 2));
        checkb "100x100 joins" true (P.join_pays ~outer:(Some 100) ~seg:(Some 100));
        checkb "unknown outer joins" true (P.join_pays ~outer:None ~seg:(Some 2));
        checkb "unknown seg joins" true (P.join_pays ~outer:(Some 2) ~seg:None));
    Alcotest.test_case "`Cost keeps a tiny join as scans, `Force builds it" `Quick
      (fun () ->
        let gens = [ const ~est:2 "x" [ 1; 2 ]; const ~est:2 "y" [ 2; 3 ] ] in
        checks "forced" "scan(x) probe(y@0)"
          (P.describe (P.plan ~policy:`Force ~bound:[] ~gens ~conds:join_conds ()));
        let costed = P.plan ~policy:`Cost ~bound:[] ~gens ~conds:join_conds () in
        checks "costed" "scan(x) scan(y/1)" (P.describe costed);
        let got, _ = run_plan costed in
        checkb "same bindings as naive" true (got = run_naive gens join_conds));
    Alcotest.test_case "`Cost builds the table when the product is large" `Quick
      (fun () ->
        let xs = List.init 40 Fun.id in
        let gens = [ const ~est:40 "x" xs; const ~est:40 "y" xs ] in
        let costed = P.plan ~policy:`Cost ~bound:[] ~gens ~conds:join_conds () in
        checks "costed" "scan(x) probe(y@0)" (P.describe costed);
        let got, _ = run_plan costed in
        checkb "same bindings as naive" true (got = run_naive gens join_conds));
    Alcotest.test_case "`Cost prices unknown estimates as large (joins)" `Quick
      (fun () ->
        let gens = [ const "x" [ 1; 2 ]; const "y" [ 2; 3 ] ] in
        checks "costed" "scan(x) probe(y@0)"
          (P.describe (P.plan ~policy:`Cost ~bound:[] ~gens ~conds:join_conds ())));
    Alcotest.test_case "a key-less equality never becomes a join, any policy" `Quick
      (fun () ->
        (* the [y.a = 5] shape: one side is a constant, so there is no
           equi-join key between generators *)
        let gens = [ const "x" [ 1; 2; 5 ]; const "y" [ 5; 7 ] ] in
        let conds =
          [
            P.Eq
              {
                left = { P.kvars = [ "y" ]; keys = (fun env -> [ key1 "y" env ]) };
                right = { P.kvars = []; keys = (fun _ -> [ P.Key.of_atom (Atom.Int 5) ]) };
                orig = pred [ "y" ] (fun env -> lookup env "y" = 5);
              };
          ]
        in
        List.iter
          (fun policy ->
            let p = P.plan ~policy ~bound:[] ~gens ~conds () in
            checks "stays a filter" "scan(x) scan(y/1)" (P.describe p);
            let got, _ = run_plan p in
            checkb "same bindings as naive" true (got = run_naive gens conds))
          [ `Force; `Cost ]);
    Alcotest.test_case "revisit_prone: probes and independent rescans only" `Quick
      (fun () ->
        let straight =
          P.plan ~bound:[]
            ~gens:
              [ const "x" [ 1 ]; gen ~deps:[ "x" ] "y" (fun env -> [ lookup env "x" ]) ]
            ~conds:[] ()
        in
        checkb "straight-line chain" false (P.revisit_prone straight);
        let rescan =
          P.plan ~bound:[] ~gens:[ const "x" [ 1; 2 ]; const "y" [ 3 ] ] ~conds:[] ()
        in
        checkb "independent rescan" true (P.revisit_prone rescan);
        let joined =
          P.plan ~bound:[]
            ~gens:[ const "x" [ 1 ]; const "y" [ 1 ] ]
            ~conds:join_conds ()
        in
        checkb "probe" true (P.revisit_prone joined));
  ]

(* --- Key normalisation ------------------------------------------------- *)

let key_tests =
  [
    Alcotest.test_case "Int 3 and Float 3.0 are one key" `Quick (fun () ->
        checkb "equal" true
          (P.Key.equal (P.Key.of_atom (Atom.Int 3)) (P.Key.of_atom (Atom.Float 3.0)));
        checki "hash agrees" 0
          (compare
             (P.Key.hash (P.Key.of_atom (Atom.Int 3)))
             (P.Key.hash (P.Key.of_atom (Atom.Float 3.0)))));
    Alcotest.test_case "all NaNs collapse to one key" `Quick (fun () ->
        checkb "equal" true
          (P.Key.equal
             (P.Key.of_atom (Atom.Float Float.nan))
             (P.Key.of_atom (Atom.Float (Float.neg Float.nan)))));
    Alcotest.test_case "0. and -0. are one key (Atom.equal holds on them)" `Quick
      (fun () ->
        checkb "atoms equal" true (Atom.equal (Atom.Float 0.) (Atom.Float (-0.)));
        checkb "keys agree" true
          (P.Key.equal (P.Key.of_atom (Atom.Float 0.)) (P.Key.of_atom (Atom.Float (-0.)))));
    Alcotest.test_case "strings, bools and numbers never collide" `Quick (fun () ->
        let keys =
          [
            P.Key.of_atom (Atom.String "1");
            P.Key.of_atom (Atom.Int 1);
            P.Key.of_atom (Atom.Bool true);
          ]
        in
        List.iteri
          (fun i a ->
            List.iteri (fun j b -> if i <> j then checkb "distinct" false (P.Key.equal a b)) keys)
          keys);
    Alcotest.test_case "composite keys compare per position" `Quick (fun () ->
        checkb "equal" true
          (P.Key.equal
             (P.Key.of_atoms [ Atom.Int 1; Atom.String "a" ])
             (P.Key.of_atoms [ Atom.Float 1.; Atom.String "a" ]));
        checkb "length matters" false
          (P.Key.equal (P.Key.of_atoms [ Atom.Int 1 ]) (P.Key.of_atoms [ Atom.Int 1; Atom.Int 1 ])));
  ]

(* --- The lazy tag index ------------------------------------------------ *)

let index_tests =
  let wide n tag =
    (* [n] children alternating [tag] and <other>, with text noise *)
    Node.elem "root"
      (List.concat_map
         (fun i ->
           [
             Node.elem (if i mod 2 = 0 then tag else "other") [];
             Node.text (Atom.Int i);
           ])
         (List.init n Fun.id))
  in
  let elem_of = function Node.Element e -> e | Node.Text _ -> assert false in
  [
    Alcotest.test_case "children_by_tag matches a scan, in document order" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let doc = wide n "a" in
            let idx = Clip_xml.Index.build doc in
            let e = elem_of doc in
            let scan =
              List.filter
                (function Node.Element c -> String.equal c.Node.tag "a" | _ -> false)
                e.Node.children
            in
            (* twice: the second probe exercises the memoised path *)
            checkb "first probe" true (Clip_xml.Index.children_by_tag idx e (Clip_xml.Symbol.intern "a") = scan);
            checkb "memoised probe" true (Clip_xml.Index.children_by_tag idx e (Clip_xml.Symbol.intern "a") = scan);
            checkb "absent tag" true (Clip_xml.Index.children_by_tag idx e (Clip_xml.Symbol.intern "zzz") = []))
          (* below and above the small-children fast-path threshold *)
          [ 0; 3; 100 ]);
    Alcotest.test_case "the index answers for constructed elements too" `Quick
      (fun () ->
        let doc = Node.elem "doc" [] in
        let idx = Clip_xml.Index.build doc in
        let foreign = Node.elem "f" [ Node.elem "kid" []; Node.elem "kid" [] ] in
        checki "foreign children" 2
          (List.length (Clip_xml.Index.children_by_tag idx (elem_of foreign) (Clip_xml.Symbol.intern "kid"))));
    Alcotest.test_case "descendants_by_tag is preorder and memoised" `Quick (fun () ->
        let doc =
          Node.elem "r"
            [
              Node.elem "a" [ Node.elem "x" []; Node.elem "a" [ Node.elem "x" [] ] ];
              Node.elem "x" [];
            ]
        in
        let idx = Clip_xml.Index.build doc in
        let e = elem_of doc in
        checki "count" 3 (List.length (Clip_xml.Index.descendants_by_tag idx e (Clip_xml.Symbol.intern "x")));
        checkb "memoised" true
          (Clip_xml.Index.descendants_by_tag idx e (Clip_xml.Symbol.intern "x")
          == Clip_xml.Index.descendants_by_tag idx e (Clip_xml.Symbol.intern "x")));
  ]

(* --- The columnar document store and its id-vector index --------------- *)

let docidx_tests =
  let module Doc = Clip_xml.Doc in
  let module Index = Clip_xml.Index in
  let wide n tag =
    Node.elem "root"
      (List.concat_map
         (fun i ->
           [
             Node.elem (if i mod 2 = 0 then tag else "other") [];
             Node.text (Atom.Int i);
           ])
         (List.init n Fun.id))
  in
  [
    Alcotest.test_case "to_node returns the original node physically" `Quick
      (fun () ->
        let n = wide 10 "a" in
        let doc = Doc.of_node n in
        checkb "root" true (Doc.to_node doc 0 == n);
        (* every interior element round-trips to its own boxed node *)
        let e = match n with Node.Element e -> e | _ -> assert false in
        List.iter
          (fun c ->
            match c with
            | Node.Element ce ->
              (match Doc.id_of doc ce with
               | Some id -> checkb "child" true (Doc.to_node doc id == c)
               | None -> Alcotest.fail "child element missing from doc")
            | Node.Text _ -> ())
          e.Node.children);
    Alcotest.test_case "rebuild reconstructs the tree structurally" `Quick
      (fun () ->
        let n = wide 7 "a" in
        let doc = Doc.of_node n in
        let n' = Doc.rebuild doc 0 in
        checkb "fresh value" false (n' == n);
        checkb "equal" true (Node.equal n' n));
    Alcotest.test_case "doc_children_by_tag matches a scan, in document order"
      `Quick
      (fun () ->
        List.iter
          (fun n ->
            let node = wide n "a" in
            let doc = Doc.of_node node in
            let idx = Index.build_doc doc in
            let e = match node with Node.Element e -> e | _ -> assert false in
            let scan =
              List.filter
                (function Node.Element c -> String.equal c.Node.tag "a" | _ -> false)
                e.Node.children
            in
            let got = Index.doc_children_by_tag idx 0 (Clip_xml.Symbol.intern "a") in
            checki "count" (List.length scan) (List.length got);
            (* each answer is the boxed original, not a copy *)
            checkb "physical" true (List.for_all2 ( == ) got scan);
            let again = Index.doc_children_by_tag idx 0 (Clip_xml.Symbol.intern "a") in
            (* wide elements are memoised (the warm probe returns the
               same list); small ones are re-scanned, mirroring the
               boxed index's smallness threshold *)
            if n >= 8 then checkb "memoised probe is the same list" true (got == again)
            else checkb "re-scanned probe agrees" true (List.for_all2 ( == ) got again);
            checkb "absent tag" true
              (Index.doc_children_by_tag idx 0 (Clip_xml.Symbol.intern "zzz") = []))
          [ 0; 3; 100 ]);
    Alcotest.test_case "doc_children_ids agree with children_ids" `Quick
      (fun () ->
        let node = wide 20 "a" in
        let doc = Doc.of_node node in
        let idx = Index.build_doc doc in
        let ids = Index.doc_children_ids idx 0 (Clip_xml.Symbol.intern "a") in
        let all = Doc.children_ids doc 0 in
        let expect =
          List.filter
            (fun id -> Doc.is_element doc id && Doc.tag doc id = Clip_xml.Symbol.intern "a")
            all
        in
        checkb "same ids in order" true (Array.to_list ids = expect));
    Alcotest.test_case "doc_descendants_ids are preorder and memoised" `Quick
      (fun () ->
        let node =
          Node.elem "r"
            [
              Node.elem "a" [ Node.elem "x" []; Node.elem "a" [ Node.elem "x" [] ] ];
              Node.elem "x" [];
            ]
        in
        let doc = Doc.of_node node in
        let idx = Index.build_doc doc in
        let x = Clip_xml.Symbol.intern "x" in
        let ids = Index.doc_descendants_ids idx 0 x in
        checki "count" 3 (Array.length ids);
        checkb "preorder" true
          (Array.to_list ids = List.sort compare (Array.to_list ids));
        checkb "memoised" true
          (Index.doc_descendants_by_tag idx 0 x == Index.doc_descendants_by_tag idx 0 x));
    Alcotest.test_case "text_value_of agrees with Node.text_value" `Quick
      (fun () ->
        let node =
          Node.elem "r"
            [
              Node.elem "t" [ Node.text_string "hi" ];
              Node.elem "empty" [];
              Node.elem "nested" [ Node.elem "t" [ Node.text_string "deep" ] ];
            ]
        in
        let doc = Doc.of_node node in
        let rec walk id =
          (match Doc.to_node doc id with
           | Node.Element e ->
             checkb
               (Printf.sprintf "node %d" id)
               true
               (Doc.text_value_of doc id = Node.text_value e)
           | Node.Text _ -> ());
          List.iter walk (Doc.children_ids doc id)
        in
        walk 0);
  ]

(* --- Differential: `Indexed against the `Naive oracles ----------------- *)

module S = Clip_scenarios
module Engine = Clip_core.Engine

let run_mode ?(repr = (`Tree : Clip_xml.Doc.repr)) sc ~backend ~plan doc =
  match
    Engine.run_result ~limits:Clip_diag.Limits.unlimited ~backend
      ~minimum_cardinality:sc.S.Figures.minimum_cardinality ~plan ~repr
      sc.S.Figures.mapping doc
  with
  | Ok d -> d
  | Error ds ->
    Alcotest.failf "%s/%s did not run: %s" sc.S.Figures.name
      (match backend with `Tgd -> "tgd" | _ -> "xquery")
      (Clip_diag.render_list ds)

let differential_tests =
  let backends sc = if sc.S.Figures.minimum_cardinality then [ `Tgd; `Xquery ] else [ `Tgd ] in
  List.concat_map
    (fun (sc : S.Figures.t) ->
      List.map
        (fun backend ->
          let bname = match backend with `Tgd -> "tgd" | _ -> "xquery" in
          Alcotest.test_case
            (Printf.sprintf "%s/%s: indexed ≡ naive" sc.S.Figures.name bname)
            `Quick
            (fun () ->
              let doc = S.Deptdb.instance in
              let naive = run_mode sc ~backend ~plan:`Naive doc in
              (* byte-identical, not just unordered-equal: the plan
                 layer promises exact enumeration order *)
              List.iter
                (fun plan ->
                  checkb "identical documents" true
                    (Node.equal naive (run_mode sc ~backend ~plan doc)))
                [ `Indexed; `Auto ]))
        (backends sc))
    S.Figures.all

let scaled_differential_tests =
  [
    Alcotest.test_case "scaled synthetic instances agree on the join figures" `Quick
      (fun () ->
        let doc = S.Deptdb.synthetic_instance ~depts:6 ~projs:3 ~emps:5 in
        List.iter
          (fun (sc : S.Figures.t) ->
            List.iter
              (fun backend ->
                let naive = run_mode sc ~backend ~plan:`Naive doc in
                List.iter
                  (fun plan ->
                    checkb
                      (Printf.sprintf "%s identical" sc.S.Figures.name)
                      true
                      (Node.equal naive (run_mode sc ~backend ~plan doc)))
                  [ `Indexed; `Auto ])
              [ `Tgd; `Xquery ])
          S.Figures.[ fig5; fig6; fig6_join_global; fig7 ]);
  ]

(* --- Differential: columnar against the boxed-tree oracle -------------- *)

(* The boxed-tree interpreters are the oracle for the columnar path:
   every figure, backend, plan mode and scale must produce the same
   bytes under [`Tree], [`Columnar] and [`Auto] representations. The
   comparison is on serialized output — byte-identical, not just
   unordered-equal — because the vectorized executor promises exact
   enumeration order. *)
let repr_differential_tests =
  let backends (sc : S.Figures.t) =
    if sc.S.Figures.minimum_cardinality then [ `Tgd; `Xquery ] else [ `Tgd ]
  in
  let check_figure (sc : S.Figures.t) ~backend doc =
    List.iter
      (fun plan ->
        let tree = Printer.to_string (run_mode ~repr:`Tree sc ~backend ~plan doc) in
        List.iter
          (fun (rname, repr) ->
            checks
              (Printf.sprintf "%s/%s %s" sc.S.Figures.name rname
                 (match plan with `Naive -> "naive" | `Indexed -> "indexed" | `Auto -> "auto"))
              tree
              (Printer.to_string (run_mode ~repr sc ~backend ~plan doc)))
          [ ("columnar", `Columnar); ("auto-repr", `Auto) ])
      [ `Naive; `Indexed; `Auto ]
  in
  List.concat_map
    (fun (sc : S.Figures.t) ->
      List.map
        (fun backend ->
          let bname = match backend with `Tgd -> "tgd" | _ -> "xquery" in
          Alcotest.test_case
            (Printf.sprintf "%s/%s: columnar ≡ tree" sc.S.Figures.name bname)
            `Quick
            (fun () -> check_figure sc ~backend S.Deptdb.instance))
        (backends sc))
    S.Figures.all
  @ [
      Alcotest.test_case "scaled instances cross the columnar threshold" `Quick
        (fun () ->
          (* large enough that [`Auto] repr really goes columnar and
             [`Auto] plan really plans — the interesting quadrant *)
          let doc = S.Deptdb.synthetic_instance ~depts:40 ~projs:5 ~emps:10 in
          List.iter
            (fun (sc : S.Figures.t) ->
              List.iter
                (fun backend -> check_figure sc ~backend doc)
                [ `Tgd; `Xquery ])
            S.Figures.[ fig5; fig6; fig6_join_global; fig7 ]);
    ]

(* Random mapping programs would need a generator for the mapping DSL;
   random *data* under the deptdb schema is cheap and exercises the
   same decision points (empty generators, duplicate keys, missing
   referents), so fuzz the instance and keep the figure mappings. *)
let fuzz_differential =
  QCheck.Test.make ~count:60
    ~name:"indexed ≡ auto ≡ naive on random deptdb instances"
    QCheck.(triple (int_range 1 5) (int_range 0 4) (int_range 0 6))
    (fun (depts, projs, emps) ->
      let doc = S.Deptdb.synthetic_instance ~depts ~projs ~emps in
      List.for_all
        (fun (sc : S.Figures.t) ->
          List.for_all
            (fun backend ->
              let naive = run_mode sc ~backend ~plan:`Naive doc in
              List.for_all
                (fun plan -> Node.equal naive (run_mode sc ~backend ~plan doc))
                [ `Indexed; `Auto ])
            [ `Tgd; `Xquery ])
        S.Figures.[ fig6; fig6_join_global; fig7 ])

(* --- [`Auto] picks the join where it matters --------------------------- *)

let steps_of (sc : S.Figures.t) ~plan doc =
  let steps = ref 0 in
  match
    Engine.run_result ~limits:Clip_diag.Limits.unlimited
      ~minimum_cardinality:sc.S.Figures.minimum_cardinality ~plan ~steps_out:steps
      sc.S.Figures.mapping doc
  with
  | Ok _ -> !steps
  | Error ds ->
    Alcotest.failf "%s did not run: %s" sc.S.Figures.name (Clip_diag.render_list ds)

let auto_steps_tests =
  [
    Alcotest.test_case "`Auto hash-joins the scaled global join" `Quick (fun () ->
        let doc = S.Deptdb.synthetic_instance ~depts:40 ~projs:5 ~emps:10 in
        let naive = steps_of S.Figures.fig6_join_global ~plan:`Naive doc in
        let auto = steps_of S.Figures.fig6_join_global ~plan:`Auto doc in
        (* the probe enumerates only matches, so the quadratic naive
           step count collapses; a generous factor keeps this stable *)
        checkb
          (Printf.sprintf "auto steps %d < naive steps %d / 2" auto naive)
          true
          (auto < naive / 2));
    Alcotest.test_case "`Auto never enumerates more than the forced join" `Quick
      (fun () ->
        (* on the paper instances every figure is small — `Auto scans,
           and its step count stays within the naive oracle's ballpark
           (streaming adds at most one tick per stage item) *)
        let doc = S.Deptdb.instance in
        List.iter
          (fun (sc : S.Figures.t) ->
            let naive = steps_of sc ~plan:`Naive doc in
            let auto = steps_of sc ~plan:`Auto doc in
            checkb
              (Printf.sprintf "%s: auto %d <= 2 * naive %d" sc.S.Figures.name auto naive)
              true
              (auto <= 2 * naive))
          S.Figures.all);
  ]

(* --- Counters: the observability layer as a metamorphic oracle ---------- *)

module C = Clip_obs.Counters

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Counters of one run on a warm session: the warm-up run outside the
   sink pays compile/plan once, so the measured run's work counters
   describe execution alone and are deterministic. *)
let counted_run ?(repr = (`Tree : Clip_xml.Doc.repr)) (sc : S.Figures.t)
    ~backend ~plan doc =
  let session = Engine.Session.create doc in
  let run ?ctx () =
    Engine.Session.run ?ctx ~backend
      ~minimum_cardinality:sc.S.Figures.minimum_cardinality ~plan ~repr session
      sc.S.Figures.mapping
  in
  ignore (run ());
  let c = C.create () in
  let out = run ~ctx:(Clip_run.create ~counters:c ()) () in
  (out, c)

let counter_invariants (sc : S.Figures.t) ~backend doc =
  let _, cn = counted_run sc ~backend ~plan:`Naive doc in
  let _, ci = counted_run sc ~backend ~plan:`Indexed doc in
  let _, ca = counted_run sc ~backend ~plan:`Auto doc in
  checkb
    (Printf.sprintf "indexed scans %d <= naive scans %d" ci.C.nodes_scanned
       cn.C.nodes_scanned)
    true
    (ci.C.nodes_scanned <= cn.C.nodes_scanned);
  checki "naive never probes the index" 0 cn.C.index_probes;
  checki "naive never hits the index" 0 cn.C.index_hits;
  List.iter
    (fun (mode, (c : C.t)) ->
      checkb
        (Printf.sprintf "%s: hits %d <= probes %d" mode c.C.index_hits
           c.C.index_probes)
        true
        (c.C.index_hits <= c.C.index_probes))
    [ ("naive", cn); ("indexed", ci); ("auto", ca) ];
  (* The EXPLAIN claim for the same arguments must match the measured
     counters: a claimed direct interpreter does exactly the naive
     oracle's work, and a claimed plan without the tag index never
     probes it. *)
  let txt = Engine.explain ~backend ~plan:`Auto sc.S.Figures.mapping doc in
  if contains txt "direct interpreter" then
    checkb "auto claims direct: work counters equal naive's" true
      (C.work_assoc ca = C.work_assoc cn)
  else begin
    checkb "auto (planned) scans no more than naive" true
      (ca.C.nodes_scanned <= cn.C.nodes_scanned);
    if contains txt "tag index off" then
      checki "tag index off: no probes" 0 ca.C.index_probes
  end

let counter_tests =
  let backends (sc : S.Figures.t) =
    if sc.S.Figures.minimum_cardinality then [ `Tgd; `Xquery ] else [ `Tgd ]
  in
  List.concat_map
    (fun (sc : S.Figures.t) ->
      List.map
        (fun backend ->
          let bname = match backend with `Tgd -> "tgd" | _ -> "xquery" in
          Alcotest.test_case
            (Printf.sprintf "%s/%s: counter invariants" sc.S.Figures.name bname)
            `Quick
            (fun () -> counter_invariants sc ~backend S.Deptdb.instance))
        (backends sc))
    S.Figures.all
  @ [
      Alcotest.test_case "scaled join: auto leaves the direct interpreter"
        `Quick
        (fun () ->
          (* above the planning threshold the claim flips, and the
             invariants must keep holding on the planner path *)
          let doc = S.Deptdb.synthetic_instance ~depts:8 ~projs:5 ~emps:10 in
          let txt =
            Engine.explain ~backend:`Tgd ~plan:`Auto
              S.Figures.fig6.S.Figures.mapping doc
          in
          checkb "no direct-interpreter claim" false
            (contains txt "direct interpreter");
          List.iter
            (fun backend -> counter_invariants S.Figures.fig6 ~backend doc)
            [ `Tgd; `Xquery ]);
      Alcotest.test_case "explain output is deterministic" `Quick (fun () ->
          List.iter
            (fun plan ->
              let once () =
                Engine.explain ~backend:`Tgd ~plan
                  S.Figures.fig6.S.Figures.mapping S.Deptdb.instance
              in
              checks "two renders agree" (once ()) (once ()))
            [ `Naive; `Indexed; `Auto ]);
    ]

(* --- Counters across representations ------------------------------------ *)

(* The counters are the semantics oracle for the columnar path: a
   columnar run must do exactly the boxed-tree run's work — same
   scans, same probes, same joins, same budget ticks — and only the
   batch counters (which describe the iteration schedule, not the
   work) may differ. *)
let repr_counter_tests =
  let strip_batches =
    List.filter (fun (k, _) -> k <> "batches_executed" && k <> "batch_width")
  in
  let agree (sc : S.Figures.t) ~backend ~plan doc =
    let _, ct = counted_run ~repr:`Tree sc ~backend ~plan doc in
    let _, cc = counted_run ~repr:`Columnar sc ~backend ~plan doc in
    checkb
      (Printf.sprintf "%s work counters agree" sc.S.Figures.name)
      true
      (strip_batches (C.work_assoc ct) = strip_batches (C.work_assoc cc));
    checki "tree runs execute no batches" 0 ct.C.batches_executed;
    (ct, cc)
  in
  [
    Alcotest.test_case "columnar does the tree run's work, per figure" `Quick
      (fun () ->
        List.iter
          (fun (sc : S.Figures.t) ->
            List.iter
              (fun backend ->
                List.iter
                  (fun plan -> ignore (agree sc ~backend ~plan S.Deptdb.instance))
                  [ `Naive; `Indexed; `Auto ])
              (if sc.S.Figures.minimum_cardinality then [ `Tgd; `Xquery ]
               else [ `Tgd ]))
          S.Figures.all);
    Alcotest.test_case "scaled columnar runs are genuinely batched" `Quick
      (fun () ->
        let doc = S.Deptdb.synthetic_instance ~depts:40 ~projs:5 ~emps:10 in
        List.iter
          (fun backend ->
            let _, cc = agree S.Figures.fig6 ~backend ~plan:`Indexed doc in
            checkb
              (Printf.sprintf "batches executed (%d) > 0" cc.C.batches_executed)
              true (cc.C.batches_executed > 0);
            checkb
              (Printf.sprintf "batch width %d >= batches %d" cc.C.batch_width
                 cc.C.batches_executed)
              true
              (cc.C.batch_width >= cc.C.batches_executed))
          [ `Tgd; `Xquery ]);
    Alcotest.test_case "a session converts the document once" `Quick (fun () ->
        (* the second columnar run through one session must hit the
           cached [Doc.t] — and still agree with a cold tree run *)
        let doc = S.Deptdb.synthetic_instance ~depts:40 ~projs:5 ~emps:10 in
        let sc = S.Figures.fig6 in
        let session = Engine.Session.create doc in
        let cold = run_mode ~repr:`Tree sc ~backend:`Tgd ~plan:`Auto doc in
        List.iter
          (fun label ->
            let warm =
              Engine.Session.run ~plan:`Auto ~repr:`Columnar session
                sc.S.Figures.mapping
            in
            checkb label true (Node.equal cold warm))
          [ "first columnar run"; "second columnar run" ];
        (* reprs can be mixed freely on one session *)
        let tree_again =
          Engine.Session.run ~plan:`Auto ~repr:`Tree session sc.S.Figures.mapping
        in
        checkb "tree run on the same session" true (Node.equal cold tree_again));
  ]

(* --- Sessions ----------------------------------------------------------- *)

let session_tests =
  [
    Alcotest.test_case "warm session runs are identical to cold runs" `Quick
      (fun () ->
        let doc = S.Deptdb.synthetic_instance ~depts:6 ~projs:3 ~emps:5 in
        let session = Engine.Session.create doc in
        List.iter
          (fun (sc : S.Figures.t) ->
            let cold = run_mode sc ~backend:`Tgd ~plan:`Auto doc in
            (* twice: the second run exercises every cache hit *)
            List.iter
              (fun label ->
                let warm =
                  Engine.Session.run
                    ~minimum_cardinality:sc.S.Figures.minimum_cardinality
                    ~plan:`Auto session sc.S.Figures.mapping
                in
                checkb
                  (Printf.sprintf "%s %s run" sc.S.Figures.name label)
                  true (Node.equal cold warm))
              [ "first"; "second" ])
          S.Figures.[ fig5; fig6; fig6_join_global ]);
    Alcotest.test_case "sessions serve every backend and plan mode" `Quick
      (fun () ->
        let doc = S.Deptdb.instance in
        let session = Engine.Session.create doc in
        List.iter
          (fun plan ->
            List.iter
              (fun backend ->
                let direct = run_mode S.Figures.fig6 ~backend ~plan doc in
                let via =
                  Engine.Session.run ~backend ~plan session
                    S.Figures.fig6.S.Figures.mapping
                in
                checkb "session agrees with direct run" true (Node.equal direct via))
              [ `Tgd; `Xquery ])
          [ `Naive; `Indexed; `Auto ]);
    Alcotest.test_case "a session ignores a foreign document safely" `Quick
      (fun () ->
        (* the backend sessions key on physical equality; handing the
           session's caches a different document must not corrupt
           results (they are simply bypassed) *)
        let doc = S.Deptdb.instance in
        let other = S.Deptdb.synthetic_instance ~depts:2 ~projs:1 ~emps:1 in
        let tgd_session = Clip_tgd.Eval.Session.create other in
        let sc = S.Figures.fig6 in
        let tgd = Clip_core.Compile.to_tgd sc.S.Figures.mapping in
        let direct =
          Clip_tgd.Eval.run ~source:doc
            ~target_root:sc.S.Figures.mapping.Clip_core.Mapping.target.root.name tgd
        in
        let via =
          Clip_tgd.Eval.run ~session:tgd_session ~source:doc
            ~target_root:sc.S.Figures.mapping.Clip_core.Mapping.target.root.name tgd
        in
        checkb "identical" true (Node.equal direct via));
    Alcotest.test_case
      "a structurally-changed document never sees stale caches" `Quick
      (fun () ->
        (* Nodes are immutable, so "mutating" a document means building
           a new [Node.t] value. Every cache layer keys on physical
           identity: the engine's one-shot memo allocates a fresh
           session for the new value, and a backend session explicitly
           reused across documents bypasses its statistics and plans
           rather than serving the old document's. *)
        let sc = S.Figures.fig6 in
        let doc1 = S.Deptdb.synthetic_instance ~depts:6 ~projs:3 ~emps:5 in
        let out1 = Engine.run sc.S.Figures.mapping doc1 in
        (* the "edited" document: one more department *)
        let doc2 = S.Deptdb.synthetic_instance ~depts:7 ~projs:3 ~emps:5 in
        let out2 = Engine.run sc.S.Figures.mapping doc2 in
        let fresh =
          Engine.Session.run (Engine.Session.create doc2) sc.S.Figures.mapping
        in
        checkb "recomputed for the new value" true (Node.equal out2 fresh);
        checkb "output reflects the new data" false
          (Node.equal_unordered out1 out2);
        let target_root =
          sc.S.Figures.mapping.Clip_core.Mapping.target.root.name
        in
        let tgd = Clip_core.Compile.to_tgd sc.S.Figures.mapping in
        let s1 = Clip_tgd.Eval.Session.create doc1 in
        (* warm s1's statistics, index and plan memos on doc1 ... *)
        ignore (Clip_tgd.Eval.run ~session:s1 ~source:doc1 ~target_root tgd);
        (* ... then run the changed document through the same session *)
        let via = Clip_tgd.Eval.run ~session:s1 ~source:doc2 ~target_root tgd in
        checkb "no stale statistics or plans" true
          (Node.equal via (Clip_tgd.Eval.run ~source:doc2 ~target_root tgd)));
  ]

let () =
  Alcotest.run "plan"
    [
      ("planner", planner_tests);
      ("cost", cost_tests);
      ("keys", key_tests);
      ("index", index_tests);
      ("docidx", docidx_tests);
      ("differential", differential_tests);
      ("scaled-differential", scaled_differential_tests);
      ("repr-differential", repr_differential_tests);
      ("auto-steps", auto_steps_tests);
      ("counters", counter_tests);
      ("repr-counters", repr_counter_tests);
      ("sessions", session_tests);
      ("fuzz-differential", [ QCheck_alcotest.to_alcotest fuzz_differential ]);
    ]
