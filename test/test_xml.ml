(* Tests for the Clip_xml substrate: atoms, the parser, the printers
   and tree operations. *)

open Clip_xml

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

(* --- Atoms -------------------------------------------------------------- *)

let atom_tests =
  [
    Alcotest.test_case "of_string int" `Quick (fun () ->
        checkb "int" true (Atom.of_string "42" = Atom.Int 42));
    Alcotest.test_case "of_string float" `Quick (fun () ->
        checkb "float" true (Atom.of_string "4.5" = Atom.Float 4.5));
    Alcotest.test_case "of_string bool" `Quick (fun () ->
        checkb "bool" true (Atom.of_string "true" = Atom.Bool true));
    Alcotest.test_case "of_string string" `Quick (fun () ->
        checkb "string" true (Atom.of_string "John Smith" = Atom.String "John Smith"));
    Alcotest.test_case "to_string integral float has no decoration" `Quick (fun () ->
        checks "10875" "10875" (Atom.to_string (Atom.Float 10875.)));
    Alcotest.test_case "to_string fractional float" `Quick (fun () ->
        checks "2.5" "2.5" (Atom.to_string (Atom.Float 2.5)));
    Alcotest.test_case "numeric promotion in equal" `Quick (fun () ->
        checkb "3 = 3.0" true (Atom.equal (Atom.Int 3) (Atom.Float 3.)));
    Alcotest.test_case "string <> int" `Quick (fun () ->
        checkb "\"3\" <> 3" false (Atom.equal (Atom.String "3") (Atom.Int 3)));
    Alcotest.test_case "compare numeric cross-kind" `Quick (fun () ->
        checkb "2 < 2.5" true (Atom.compare (Atom.Int 2) (Atom.Float 2.5) < 0));
    Alcotest.test_case "compare is total and consistent" `Quick (fun () ->
        let atoms =
          [ Atom.Int 1; Atom.Float 1.5; Atom.String "a"; Atom.Bool true ]
        in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                checki "antisym" (compare (Atom.compare a b) 0)
                  (compare 0 (Atom.compare b a)))
              atoms)
          atoms);
    Alcotest.test_case "to_float" `Quick (fun () ->
        checkb "int" true (Atom.to_float (Atom.Int 2) = Some 2.);
        checkb "string" true (Atom.to_float (Atom.String "x") = None));
  ]

(* --- Join-key normalisation ------------------------------------------------

   [Atom.key] is the single normalisation behind the plan layer's hash
   joins and both backends' grouping/dedup keys; these cases pin its
   equality semantics so a drive-by "simplification" cannot silently
   change what joins. *)

let key_tests =
  [
    Alcotest.test_case "int and float promote to one key" `Quick (fun () ->
        checkb "3 / 3.0" true (Atom.key (Atom.Int 3) = Atom.key (Atom.Float 3.)));
    Alcotest.test_case "string never joins a number" `Quick (fun () ->
        checkb "\"3\" / 3" false (Atom.key (Atom.String "3") = Atom.key (Atom.Int 3)));
    Alcotest.test_case "0. and -0. are one key" `Quick (fun () ->
        (* [Float.equal] holds on signed zeros, so [Atom.equal] does,
           so the key must too — a finer key would make hash joins
           miss matches the naive oracle emits. *)
        checkb "signed zeros" true
          (Atom.key (Atom.Float 0.) = Atom.key (Atom.Float (-0.))));
    Alcotest.test_case "all NaNs are one key" `Quick (fun () ->
        checkb "nan payloads" true
          (Atom.key (Atom.Float Float.nan) = Atom.key (Atom.Float (0. /. 0.))));
    Alcotest.test_case "key equality coincides with Atom.equal" `Quick (fun () ->
        (* On atoms inside the exact float range the two notions must
           agree in both directions. *)
        let samples =
          [
            Atom.Int 0; Atom.Int 3; Atom.Int (-7); Atom.Float 3.; Atom.Float 2.5;
            Atom.Float 0.; Atom.Float (-0.); Atom.String ""; Atom.String "3";
            Atom.String "a"; Atom.Bool true; Atom.Bool false;
          ]
        in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                checkb
                  (Printf.sprintf "%s / %s" (Atom.to_string a) (Atom.to_string b))
                  (Atom.equal a b)
                  (Atom.key a = Atom.key b))
              samples)
          samples);
    Alcotest.test_case "beyond 2^53 keys coarsen but equal stays exact" `Quick
      (fun () ->
        (* 2^53 and 2^53 + 1 share a float image, hence a key; the
           atoms themselves stay distinct, which is why every hash
           consumer re-checks the original predicate per hit. *)
        let p53 = 9007199254740992 in
        checkb "keys collide" true
          (Atom.key (Atom.Int p53) = Atom.key (Atom.Int (p53 + 1)));
        checkb "equal distinguishes" false
          (Atom.equal (Atom.Int p53) (Atom.Int (p53 + 1))));
  ]

(* --- Parser -------------------------------------------------------------- *)

let parse = Parser.parse_string

let parser_tests =
  [
    Alcotest.test_case "element with attributes" `Quick (fun () ->
        let doc = parse {|<a x="1" y="hello"/>|} in
        let e = Node.as_element doc in
        checks "tag" "a" e.tag;
        checkb "x" true (Node.attr e "x" = Some (Atom.Int 1));
        checkb "y" true (Node.attr e "y" = Some (Atom.String "hello")));
    Alcotest.test_case "nested elements and text" `Quick (fun () ->
        let doc = parse "<a><b>hi</b><b>ho</b></a>" in
        let e = Node.as_element doc in
        checki "2 bs" 2 (List.length (Node.children_named e "b"));
        let b = List.hd (Node.children_named e "b") in
        checkb "text" true (Node.text_value b = Some (Atom.String "hi")));
    Alcotest.test_case "whitespace between elements is dropped" `Quick (fun () ->
        let doc = parse "<a>\n  <b/>\n  <c/>\n</a>" in
        checki "2 children" 2 (List.length (Node.child_elements (Node.as_element doc))));
    Alcotest.test_case "mixed text is trimmed" `Quick (fun () ->
        let doc = parse "<a>  hello  </a>" in
        checkb "trimmed" true
          (Node.text_value (Node.as_element doc) = Some (Atom.String "hello")));
    Alcotest.test_case "entities decode" `Quick (fun () ->
        let doc = parse "<a>R&amp;D &lt;3 &#65;</a>" in
        checkb "decoded" true
          (Node.text_value (Node.as_element doc) = Some (Atom.String "R&D <3 A")));
    Alcotest.test_case "entities in attributes" `Quick (fun () ->
        let doc = parse {|<a x="a&quot;b"/>|} in
        checkb "decoded" true
          (Node.attr (Node.as_element doc) "x" = Some (Atom.String "a\"b")));
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        let doc = parse "<!-- head --><a><!-- inner --><b/></a><!-- tail -->" in
        checki "1 child" 1 (List.length (Node.child_elements (Node.as_element doc))));
    Alcotest.test_case "xml declaration is skipped" `Quick (fun () ->
        let doc = parse "<?xml version=\"1.0\"?><a/>" in
        checks "tag" "a" (Node.tag doc));
    Alcotest.test_case "DOCTYPE (with internal subset) is skipped" `Quick (fun () ->
        let doc =
          parse
            "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>"
        in
        checki "1 child" 1 (List.length (Node.child_elements (Node.as_element doc))));
    Alcotest.test_case "CDATA is literal text" `Quick (fun () ->
        let doc = parse "<a><![CDATA[x < y & z]]></a>" in
        checkb "literal" true
          (Node.text_value (Node.as_element doc) = Some (Atom.String "x < y & z")));
    Alcotest.test_case "unterminated CDATA fails" `Quick (fun () ->
        checkb "error" true (Parser.parse_string_opt "<a><![CDATA[oops</a>" = None));
    Alcotest.test_case "single-quoted attributes" `Quick (fun () ->
        let doc = parse "<a x='1'/>" in
        checkb "x" true (Node.attr (Node.as_element doc) "x" = Some (Atom.Int 1)));
    Alcotest.test_case "mismatched closing tag fails" `Quick (fun () ->
        checkb "error" true (Parser.parse_string_opt "<a><b></a></b>" = None));
    Alcotest.test_case "unterminated element fails" `Quick (fun () ->
        checkb "error" true (Parser.parse_string_opt "<a><b>" = None));
    Alcotest.test_case "trailing content fails" `Quick (fun () ->
        checkb "error" true (Parser.parse_string_opt "<a/><b/>" = None));
    Alcotest.test_case "empty document fails" `Quick (fun () ->
        checkb "error" true (Parser.parse_string_opt "   " = None));
    Alcotest.test_case "error carries position" `Quick (fun () ->
        match Parser.parse_string "<a>\n<b x=></b></a>" with
        | exception Parser.Parse_error { line; _ } -> checki "line" 2 line
        | _ -> Alcotest.fail "expected a parse error");
  ]

(* --- Printers ------------------------------------------------------------ *)

let printer_tests =
  [
    Alcotest.test_case "compact roundtrip" `Quick (fun () ->
        let doc = parse {|<a x="1"><b>hi</b><c/></a>|} in
        let doc' = parse (Printer.to_string doc) in
        checkb "equal" true (Node.equal doc doc'));
    Alcotest.test_case "pretty roundtrip" `Quick (fun () ->
        let doc = parse {|<a x="1"><b>hi</b><c y="z &amp; w"/></a>|} in
        let doc' = parse (Printer.to_pretty_string doc) in
        checkb "equal" true (Node.equal doc doc'));
    Alcotest.test_case "escaping special characters" `Quick (fun () ->
        let doc = Node.elem "a" [ Node.text_string "x<y&z" ] in
        checks "escaped" "<a>x&lt;y&amp;z</a>" (Printer.to_string doc));
    Alcotest.test_case "attribute escaping" `Quick (fun () ->
        let doc = Node.elem ~attrs:[ ("q", Atom.String "a\"b") ] "a" [] in
        checks "escaped" {|<a q="a&quot;b"/>|} (Printer.to_string doc));
    Alcotest.test_case "tree rendering: leaf element" `Quick (fun () ->
        let doc = parse "<a><b>hi</b></a>" in
        checks "tree" "a---b = hi" (Printer.to_tree_string doc));
    Alcotest.test_case "tree rendering: attribute leaves and siblings" `Quick
      (fun () ->
        let doc = parse {|<t><d name="x"/><d name="y"/></t>|} in
        let s = Printer.to_tree_string doc in
        checkb "first inline" true
          (String.length s > 0 && String.sub s 0 6 = "t---d-");
        checkb "has last marker" true
          (String.length s > 0
          && String.index_opt s '`' <> None));
    (* Engine-generated instances have no depth bound, so every
       serializer must survive documents far deeper than any OCaml
       stack: these only pass because the printers run on explicit
       worklists. The compact and pretty printers run the full 100k
       levels (pretty with [indent:0] — per-level indentation makes
       its output quadratic in depth, ~20 GB at 100k); the ASCII-tree
       renderer builds each line by splicing, also quadratic, so it
       runs a shallower chain that still breaks naive recursion-per-
       level implementations long before it breaks the worklist. *)
    Alcotest.test_case "printers survive a 100k-deep chain" `Quick (fun () ->
        let chain depth =
          let rec build n acc =
            if n = 0 then acc else build (n - 1) (Node.elem "d" [ acc ])
          in
          build depth (Node.elem "leaf" [ Node.text_string "x" ])
        in
        let depth = 100_000 in
        let doc = chain depth in
        let compact = Printer.to_string doc in
        checki "compact length" ((depth * 7) + String.length "<leaf>x</leaf>")
          (String.length compact);
        checks "innermost" "<leaf>x</leaf>" (String.sub compact (depth * 3) 14);
        let pretty = Printer.to_pretty_string ~indent:0 doc in
        (* one open + one close line per chain level, one leaf line *)
        checki "pretty lines" ((2 * depth) + 1)
          (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 pretty);
        let tree = Printer.to_tree_string (chain 10_000) in
        checks "tree ends at the leaf" "leaf = x"
          (String.sub tree (String.length tree - 8) 8));
  ]

(* --- Node operations ------------------------------------------------------ *)

let node_tests =
  [
    Alcotest.test_case "size counts elements, attributes and text" `Quick (fun () ->
        let doc = parse {|<a x="1"><b>hi</b></a>|} in
        (* a + @x + b + text *)
        checki "size" 4 (Node.size doc));
    Alcotest.test_case "depth" `Quick (fun () ->
        checki "depth" 3 (Node.depth (parse "<a><b><c/></b></a>")));
    Alcotest.test_case "count_elements" `Quick (fun () ->
        let doc = parse "<a><b/><c><b/></c></a>" in
        checki "2 bs" 2 (Node.count_elements doc "b"));
    Alcotest.test_case "equal is order-sensitive" `Quick (fun () ->
        checkb "different order differs" false
          (Node.equal (parse "<a><b/><c/></a>") (parse "<a><c/><b/></a>")));
    Alcotest.test_case "equal_unordered ignores sibling order" `Quick (fun () ->
        checkb "same set" true
          (Node.equal_unordered (parse "<a><b/><c/></a>") (parse "<a><c/><b/></a>")));
    Alcotest.test_case "equal_unordered ignores attribute order" `Quick (fun () ->
        checkb "same attrs" true
          (Node.equal_unordered (parse {|<a x="1" y="2"/>|}) (parse {|<a y="2" x="1"/>|})));
    Alcotest.test_case "equal_unordered distinguishes multiplicity" `Quick (fun () ->
        checkb "counts matter" false
          (Node.equal_unordered (parse "<a><b/><b/></a>") (parse "<a><b/></a>")));
    Alcotest.test_case "equal_unordered is deep" `Quick (fun () ->
        checkb "nested sets" true
          (Node.equal_unordered
             (parse "<a><b><x/><y/></b></a>")
             (parse "<a><b><y/><x/></b></a>")));
    Alcotest.test_case "text_value concatenates" `Quick (fun () ->
        let e = Node.as_element (Node.elem "a" [ Node.text_string "x"; Node.text_string "y" ]) in
        checkb "xy" true (Node.text_value e = Some (Atom.String "xy")));
    Alcotest.test_case "as_element rejects text" `Quick (fun () ->
        checkb "raises" true
          (match Node.as_element (Node.text_string "t") with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* --- Property tests -------------------------------------------------------- *)

let gen_atom =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Atom.Int i) small_int;
        map (fun s -> Atom.String s) (string_size ~gen:(char_range 'a' 'z') (1 -- 8));
        map (fun b -> Atom.Bool b) bool;
      ])

let gen_node =
  QCheck2.Gen.(
    sized_size (1 -- 4) @@ fix (fun self n ->
        let leaf = map (fun a -> Node.leaf "leaf" a) gen_atom in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map2
                (fun attrs children ->
                  let attrs = List.mapi (fun i a -> (Printf.sprintf "a%d" i, a)) attrs in
                  Node.elem ~attrs "node" children)
                (list_size (0 -- 2) gen_atom)
                (list_size (0 -- 3) (self (n / 2)));
            ]))

let prop_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"parse (to_string n) is unchanged" gen_node
    (fun node ->
      match Parser.parse_string_opt (Printer.to_string node) with
      | Some node' -> Node.equal_unordered node node'
      | None -> false)

let prop_pretty_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"parse (to_pretty_string n) is unchanged" gen_node
    (fun node ->
      match Parser.parse_string_opt (Printer.to_pretty_string node) with
      | Some node' -> Node.equal_unordered node node'
      | None -> false)

let prop_canonical_reflexive =
  QCheck2.Test.make ~count:200 ~name:"equal_unordered is reflexive" gen_node
    (fun node -> Node.equal_unordered node node)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_pretty_roundtrip; prop_canonical_reflexive ]

let () =
  Alcotest.run "xml"
    [
      ("atom", atom_tests);
      ("key", key_tests);
      ("parser", parser_tests);
      ("printer", printer_tests);
      ("node", node_tests);
      ("properties", property_tests);
    ]
