(* Differential-oracle harness for the mapping algebra: composition is
   held to staged execution on every figure of the paper — compose-then-
   run must produce a [Node.equal]-identical instance to run-then-run,
   across every backend, plan mode and document representation; chains
   outside the composable fragment must degrade to staged execution
   byte-identically. Metamorphic laws pin the algebra itself. *)

module S = Clip_scenarios
module Node = Clip_xml.Node
module Printer = Clip_xml.Printer
module Schema = Clip_schema.Schema
module Path = Clip_schema.Path
module Mapping = Clip_core.Mapping
module Engine = Clip_core.Engine
module A = Clip_algebra

let checkb = Alcotest.(check bool)

(* The identity mapping over a schema: one driven builder per repeating
   element, nested as in the schema, and an identity value mapping for
   every leaf below a repeating element. Leaves above every repetition
   have no driver and are omitted — harmless for the oracle, which
   compares compose-then-run against run-then-run of the {e same}
   mapping. *)
let identity (s : Schema.t) : Mapping.t =
  let n = ref 0 in
  let rec walk path (e : Schema.element) =
    let kids =
      List.concat_map
        (fun (c : Schema.element) -> walk (Path.child path c.Schema.name) c)
        e.Schema.children
    in
    if Schema.is_repeating s path then begin
      incr n;
      [
        Mapping.node
          ~id:(Printf.sprintf "id%d" !n)
          ~output:path ~children:kids
          [ Mapping.input ~var:(Printf.sprintf "x%d" !n) path ];
      ]
    end
    else kids
  in
  let roots = walk (Schema.root_path s) s.Schema.root in
  let values =
    List.filter_map
      (fun q ->
        if Schema.repeating_ancestors s q <> [] then
          Some (Mapping.value [ q ] q)
        else None)
      (Schema.leaf_paths s)
  in
  Mapping.make ~source:s ~target:s ~roots values

let backends = [ `Tgd; `Xquery; `Xquery_text ]
let plans = [ `Naive; `Indexed; `Auto ]
let reprs = [ `Tree; `Columnar ]

let backend_name = function
  | `Tgd -> "tgd"
  | `Xquery -> "xquery"
  | `Xquery_text -> "xquery-text"
  | `Rel -> "rel"

let plan_name = function `Naive -> "naive" | `Indexed -> "indexed" | `Auto -> "auto"
let repr_name = function
  | `Tree -> "tree"
  | `Columnar -> "columnar"
  | `Auto -> "auto"

let combos ~mc =
  List.concat_map
    (fun b ->
      List.concat_map
        (fun p -> List.map (fun r -> (b, p, r)) reprs)
        plans)
    (if mc then backends else [ `Tgd ])

let run_mapping ~backend ~plan ~repr ~mc m doc =
  match
    Engine.run_result ~backend ~minimum_cardinality:mc ~plan ~repr m doc
  with
  | Ok out -> out
  | Error ds ->
    Alcotest.failf "run failed: %s"
      (String.concat "; " (List.map Clip_diag.to_string ds))

let run_staged ~backend ~plan ~repr ~mc ms doc =
  match
    Engine.run_staged_result ~backend ~minimum_cardinality:mc ~plan ~repr ms
      doc
  with
  | Ok out -> out
  | Error ds ->
    Alcotest.failf "staged run failed: %s"
      (String.concat "; " (List.map Clip_diag.to_string ds))

let diag_codes ds = List.map (fun d -> d.Clip_diag.code) ds

let is_alg_code c = String.length c >= 8 && String.sub c 0 8 = "CLIP-ALG"

(* --- compose-then-run vs run-then-run on every figure ----------------- *)

(* [identity_S ; fig] lies inside the composable fragment for every
   figure: the identity populates every intermediate leaf with a plain
   copy, so every read substitutes. *)
let differential_tests =
  List.map
    (fun (sc : S.Figures.t) ->
      Alcotest.test_case (sc.name ^ ": id;m == staged, all combos") `Quick
        (fun () ->
          let id_s = identity sc.mapping.Mapping.source in
          let composed =
            match A.compose_result id_s sc.mapping with
            | Ok m -> m
            | Error ds ->
              Alcotest.failf "compose (id; %s) rejected: %s" sc.name
                (String.concat "; " (diag_codes ds))
          in
          let mc = sc.minimum_cardinality in
          List.iter
            (fun (backend, plan, repr) ->
              let fused =
                run_mapping ~backend ~plan ~repr ~mc composed
                  S.Deptdb.instance
              in
              let staged =
                run_staged ~backend ~plan ~repr ~mc
                  [ id_s; sc.mapping ]
                  S.Deptdb.instance
              in
              if not (Node.equal fused staged) then
                Alcotest.failf "%s/%s/%s/%s: fused and staged disagree"
                  sc.name (backend_name backend) (plan_name plan)
                  (repr_name repr))
            (combos ~mc)))
    S.Figures.all

(* --- rejection degrades to staged, byte-identically ------------------- *)

let fallback_tests =
  let staged_count = ref 0 in
  let per_figure =
    List.map
      (fun (sc : S.Figures.t) ->
        Alcotest.test_case (sc.name ^ ": m;id falls back byte-identically")
          `Quick (fun () ->
            let id_t = identity sc.mapping.Mapping.target in
            let chain = [ sc.mapping; id_t ] in
            let mc = sc.minimum_cardinality in
            (match A.Pipeline.plan chain with
             | A.Pipeline.Staged ds ->
               incr staged_count;
               checkb "stable CLIP-ALG code" true
                 (ds <> [] && List.for_all is_alg_code (diag_codes ds));
               checkb "note names the code" true
                 (let note = A.Pipeline.decision_note (A.Pipeline.Staged ds) in
                  String.length note > 15
                  && String.sub note 0 15 = "fusion: staged ")
             | A.Pipeline.Fused _ -> ());
            let via_pipeline =
              match
                A.Pipeline.run_result ~minimum_cardinality:mc chain
                  S.Deptdb.instance
              with
              | Ok out -> out
              | Error ds ->
                Alcotest.failf "pipeline failed: %s"
                  (String.concat "; " (diag_codes ds))
            in
            let manual =
              run_staged ~backend:`Tgd ~plan:`Auto ~repr:`Tree ~mc chain
                S.Deptdb.instance
            in
            checkb "byte-identical to manual staging" true
              (String.equal
                 (Printer.to_string via_pipeline)
                 (Printer.to_string manual))))
      S.Figures.all
  in
  per_figure
  @ [
      Alcotest.test_case "at least one figure chain is outside the fragment"
        `Quick (fun () -> checkb "some staged" true (!staged_count > 0));
    ]

(* --- targeted rejections ---------------------------------------------- *)

let rejection_tests =
  [
    Alcotest.test_case "schema mismatch is CLIP-ALG-001" `Quick (fun () ->
        match A.compose_result S.Figures.fig4.mapping S.Figures.fig4.mapping with
        | Ok _ -> Alcotest.fail "composed across mismatched schemas"
        | Error ds ->
          checkb "ALG-001" true
            (List.mem Clip_diag.Codes.algebra_schema_mismatch (diag_codes ds)));
    Alcotest.test_case "unfolding a grouping producer is CLIP-ALG-002" `Quick
      (fun () ->
        (* fig7's project builder groups by name; iterating its output
           in a second stage cannot be unfolded *)
        let id_t = identity S.Figures.fig7.mapping.Mapping.target in
        match A.compose_result S.Figures.fig7.mapping id_t with
        | Ok _ -> Alcotest.fail "composed through a grouping producer"
        | Error ds ->
          checkb "ALG-002" true
            (List.mem Clip_diag.Codes.algebra_grouping (diag_codes ds)));
    Alcotest.test_case "reading an unpopulated leaf is CLIP-ALG-004" `Quick
      (fun () ->
        (* fig6 populates only @pname/@ename of its flat target; an
           identity second stage also reads nothing else — so build one
           that reads a leaf fig6 never writes. *)
        let t = S.Deptdb.target_fig6 in
        let pe = Path.child (Schema.root_path t) "project-emp" in
        let m2 =
          Mapping.make ~source:t ~target:t
            ~roots:
              [
                Mapping.node ~id:"n" ~output:pe
                  ~cond:
                    [
                      {
                        Mapping.p_left = Mapping.O_path ("x", []);
                        p_op = Clip_tgd.Tgd.Eq;
                        p_right = Mapping.O_const (Clip_xml.Atom.String "?");
                      };
                    ]
                  [ Mapping.input ~var:"x" pe ];
              ]
            [ Mapping.value [ Path.attr pe "pname" ] (Path.attr pe "pname") ]
        in
        (* condition compares the element itself, which no value mapping
           populates as a leaf — but first make sure m2 alone is valid *)
        match A.compose_result S.Figures.fig6.mapping m2 with
        | Ok _ -> Alcotest.fail "composed an unsubstitutable read"
        | Error ds ->
          checkb "some CLIP-ALG code" true
            (ds <> [] && List.exists is_alg_code (diag_codes ds)));
  ]

(* --- random chains: pipeline == staged, and compose is total ---------- *)

let figure_pool = Array.of_list S.Figures.all

let chain_of (sc : S.Figures.t) shape =
  let id_s () = identity sc.mapping.Mapping.source in
  let id_t () = identity sc.mapping.Mapping.target in
  match shape mod 4 with
  | 0 -> [ id_s (); sc.mapping ]
  | 1 -> [ id_s (); id_s (); sc.mapping ]
  | 2 -> [ sc.mapping; id_t () ]
  | _ -> [ id_s (); sc.mapping; id_t () ]

let gen_case =
  QCheck2.Gen.(
    tup4
      (int_bound (Array.length figure_pool - 1))
      (int_bound 3) (int_bound 2) (int_bound 1))

let prop_chain_differential =
  QCheck2.Test.make ~count:200
    ~name:"algebra: random chains — pipeline == staged on every combo"
    gen_case
    (fun (fi, shape, pi, ri) ->
      let sc = figure_pool.(fi) in
      let mc = sc.minimum_cardinality in
      let backend = if mc then List.nth backends (fi mod 3) else `Tgd in
      let plan = List.nth plans pi in
      let repr = List.nth reprs ri in
      let chain = chain_of sc shape in
      (* totality: compose_chain_result never raises *)
      (match A.compose_chain_result chain with Ok _ | Error _ -> ());
      let a =
        A.Pipeline.run_result ~backend ~minimum_cardinality:mc ~plan ~repr
          chain S.Deptdb.instance
      in
      let b =
        Engine.run_staged_result ~backend ~minimum_cardinality:mc ~plan ~repr
          chain S.Deptdb.instance
      in
      match a, b with
      | Ok a, Ok b -> Node.equal a b
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

(* --- metamorphic laws -------------------------------------------------- *)

let equiv_ok a b =
  match A.equiv_result a b with
  | Ok r -> r
  | Error ds -> Alcotest.failf "equiv failed: %s" (String.concat "; " (diag_codes ds))

let law_tests =
  let per_figure =
    List.concat_map
      (fun (sc : S.Figures.t) ->
        [
          Alcotest.test_case (sc.name ^ ": equiv is reflexive") `Quick
            (fun () -> checkb "m == m" true (equiv_ok sc.mapping sc.mapping));
          Alcotest.test_case (sc.name ^ ": id is a left identity up to equiv")
            `Quick (fun () ->
              let id_s = identity sc.mapping.Mapping.source in
              let c = A.compose id_s sc.mapping in
              checkb "id;m == m" true (equiv_ok c sc.mapping));
          Alcotest.test_case (sc.name ^ ": composition is associative") `Quick
            (fun () ->
              let id_s = identity sc.mapping.Mapping.source in
              let left = A.compose (A.compose id_s id_s) sc.mapping in
              let right = A.compose id_s (A.compose id_s sc.mapping) in
              checkb "(id;id);m == id;(id;m)" true (equiv_ok left right));
        ])
      S.Figures.all
  in
  per_figure
  @ [
      Alcotest.test_case "dropping a join condition strictly widens" `Quick
        (fun () ->
          let j = S.Figures.fig6.mapping in
          let c = S.Figures.fig6_cartesian.mapping in
          checkb "cartesian contains join" true (A.contains c j);
          checkb "join does not contain cartesian" false (A.contains j c);
          checkb "not equivalent" false (equiv_ok j c));
      Alcotest.test_case "equiv is symmetric on related pairs" `Quick
        (fun () ->
          let a = S.Figures.fig6.mapping and b = S.Figures.fig6_cartesian.mapping in
          checkb "equiv a b == equiv b a" true (equiv_ok a b = equiv_ok b a));
      Alcotest.test_case "mutual containment is equivalence" `Quick (fun () ->
          let m = S.Figures.fig4.mapping in
          let id_s = identity m.Mapping.source in
          let c = A.compose id_s m in
          checkb "contains both ways" true (A.contains c m && A.contains m c);
          checkb "hence equiv" true (equiv_ok c m));
    ]

(* --- a Clio-generated mapping composes too ---------------------------- *)

let clio_tests =
  [
    Alcotest.test_case "clio-generated fig1 mapping: id;m == staged" `Quick
      (fun () ->
        let m =
          Clip_clio.Generate.to_clip S.Figures.fig1_values
            (Clip_clio.Generate.forest ~extension:true S.Figures.fig1_values)
        in
        let id_s = identity m.Mapping.source in
        let composed =
          match A.compose_result id_s m with
          | Ok c -> c
          | Error ds ->
            Alcotest.failf "compose rejected: %s"
              (String.concat "; " (diag_codes ds))
        in
        let fused =
          run_mapping ~backend:`Tgd ~plan:`Auto ~repr:`Tree ~mc:true composed
            S.Deptdb.instance
        in
        let staged =
          run_staged ~backend:`Tgd ~plan:`Auto ~repr:`Tree ~mc:true
            [ id_s; m ] S.Deptdb.instance
        in
        checkb "identical" true (Node.equal fused staged));
  ]

let () =
  Alcotest.run "algebra"
    [
      ("differential", differential_tests);
      ("staged-fallback", fallback_tests);
      ("rejections", rejection_tests);
      ("laws", law_tests);
      ("clio", clio_tests);
      ("random-chains", [ QCheck_alcotest.to_alcotest prop_chain_differential ]);
    ]
