(* Tests for the streaming XML lexer (Clip_xml.Stream): chunk-boundary
   independence and diagnostic identity against the tree parser, the
   two contracts the shard cutter and the CLI's --stream path stand
   on. *)

open Clip_xml

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Render a parse outcome — document or diagnostics, spans included —
   to one comparable string. *)
let outcome = function
  | Ok node -> "ok: " ^ Printer.to_string node
  | Error ds -> "error: " ^ String.concat "\n" (List.map Clip_diag.render ds)

(* Feed [bytes] as chunks cut at the given (sorted, in-range)
   positions. *)
let chunked ?limits bytes cuts =
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < String.length bytes) cuts) in
  let pieces =
    let rec go start = function
      | [] -> [ String.sub bytes start (String.length bytes - start) ]
      | c :: rest -> String.sub bytes start (c - start) :: go c rest
    in
    if bytes = "" then [] else go 0 cuts
  in
  let remaining = ref pieces in
  Stream.of_chunks ?limits (fun () ->
      match !remaining with
      | [] -> None
      | p :: rest ->
        remaining := rest;
        Some p)

let byte_by_byte ?limits bytes =
  let i = ref 0 in
  Stream.of_chunks ?limits (fun () ->
      if !i >= String.length bytes then None
      else begin
        let c = String.sub bytes !i 1 in
        incr i;
        Some c
      end)

(* The three stream feeds and the tree parser must agree on [bytes] —
   same document, or same diagnostics (codes, messages, spans). *)
let assert_all_agree ?limits bytes =
  let reference = outcome (Parser.parse_string_result ?limits bytes) in
  checks "of_string" reference
    (outcome (Stream.parse_result (Stream.of_string ?limits bytes)));
  checks "byte-by-byte" reference
    (outcome (Stream.parse_result (byte_by_byte ?limits bytes)));
  checks "mid chunks" reference
    (outcome
       (Stream.parse_result
          (chunked ?limits bytes [ 1; 3; String.length bytes / 2 ])))

let well_formed =
  [
    "<a/>";
    "<a></a>";
    "<r><x>1</x><x>2.5</x><x>true</x><x>hello world</x></r>";
    "<r a=\"1\" b=\"two\"><c k=\"v\"/>text<d/>more</r>";
    "<r>&lt;&amp;&gt;&quot;&apos;&#65;&#x41;</r>";
    "<r><![CDATA[  raw <stuff> & more  ]]></r>";
    "<r>before<![CDATA[42]]></r>";
    "<?xml version=\"1.0\"?><!-- head --><!DOCTYPE r [<!ELEMENT r ANY>]><r/><!-- tail -->";
    "  <r>\n  <e>  spaced  text  </e>\n  </r>  ";
    "<r><a><b><c><d>deep</d></c></b></a></r>";
    "<source><dept deptno=\"d1\"><emp>ann</emp><emp>bob</emp></dept><dept \
     deptno=\"d2\"><emp>cat</emp></dept></source>";
  ]

let malformed =
  [
    "";
    "   ";
    "plain text";
    "<r>";
    "<r><a></b></r>";
    "<r attr=oops/>";
    "<r a=\"1\" a=\"2\"/>";
    "<r>&unknown;</r>";
    "<r>&#xZZ;</r>";
    "<r>&brokenentity</r>";
    "<r><![CDATA[never closed</r>";
    "<r/><r/>";
    "<r/>trailing";
    "<r></r";
    "<1bad/>";
    "<r><a/>";
    "<!-- only a comment -->";
  ]

let equivalence_tests =
  [
    Alcotest.test_case "well-formed documents" `Quick (fun () ->
        List.iter assert_all_agree well_formed);
    Alcotest.test_case "malformed documents: identical diagnostics" `Quick
      (fun () -> List.iter assert_all_agree malformed);
    Alcotest.test_case "depth limit: identical CLIP-LIM-002" `Quick (fun () ->
        let limits = { Clip_diag.Limits.default with max_xml_depth = 3 } in
        assert_all_agree ~limits "<a><b><c><d>too deep</d></c></b></a>";
        assert_all_agree ~limits "<a><b><c>just fits</c></b></a>");
    Alcotest.test_case "size limit: of_string matches CLIP-LIM-001" `Quick
      (fun () ->
        let limits = { Clip_diag.Limits.default with max_input_bytes = 10 } in
        let bytes = "<r>0123456789</r>" in
        (* The whole-string feed checks the limit up front, exactly as
           the tree parser does. *)
        checks "of_string"
          (outcome (Parser.parse_string_result ~limits bytes))
          (outcome (Stream.parse_result (Stream.of_string ~limits bytes)));
        (* A chunked feed discovers the total size incrementally but
           still reports the same code, message and span once the
           running count passes the limit on this well-formed input. *)
        checks "byte-by-byte"
          (outcome (Parser.parse_string_result ~limits bytes))
          (outcome (Stream.parse_result (byte_by_byte ~limits bytes))));
    Alcotest.test_case
      "size limit beats a later syntax error, chunking-independent" `Quick
      (fun () ->
        (* Oversized AND malformed: the tree parser's up-front size
           check reports CLIP-LIM-001 before it ever sees the broken
           markup. A chunked feed recognises the syntax error first —
           the unterminated root, the garbage prologue — while its
           running total is still under the limit; it must drain the
           rest of the feed and report the same CLIP-LIM-001 as the
           tree parser, wherever the chunks were cut. *)
        let limits = { Clip_diag.Limits.default with max_input_bytes = 10 } in
        List.iter
          (fun bytes -> assert_all_agree ~limits bytes)
          [
            "<r>0123456789";          (* truncated root, oversized *)
            "plain text 0123456789";  (* garbage from byte one *)
            "<r><a></b></r> padding"; (* mismatched tags, oversized *)
            "<r a=\"1\" a=\"1\"/> tail tail"; (* dup attr, oversized *)
          ];
        (* Under-limit malformed input keeps its syntax diagnostic:
           the precedence rule only fires when the whole feed is
           actually oversized. *)
        assert_all_agree ~limits "<r><a>");
    Alcotest.test_case "event stream shape" `Quick (fun () ->
        let st = Stream.of_string "<r a=\"1\">hi<e/></r>" in
        let next () =
          match Stream.next_result st with
          | Ok e -> e
          | Error _ -> Alcotest.fail "unexpected error"
        in
        (match next () with
         | Some (Stream.Start { tag = "r"; attrs = [ ("a", Atom.Int 1) ] }) -> ()
         | _ -> Alcotest.fail "expected <r> start");
        (match next () with
         | Some (Stream.Text (Atom.String "hi")) -> ()
         | _ -> Alcotest.fail "expected text");
        (match next () with
         | Some (Stream.Start { tag = "e"; attrs = [] }) -> ()
         | _ -> Alcotest.fail "expected <e> start");
        (match next () with
         | Some (Stream.End "e") -> ()
         | _ -> Alcotest.fail "expected </e>");
        (match next () with
         | Some (Stream.End "r") -> ()
         | _ -> Alcotest.fail "expected </r>");
        checkb "eof" true (next () = None);
        checkb "still eof" true (next () = None));
    Alcotest.test_case "failed source latches its error" `Quick (fun () ->
        let st = Stream.of_string "<r><oops</r>" in
        let rec drain last =
          match Stream.next_result st with
          | Ok (Some _) -> drain last
          | Ok None -> Alcotest.fail "expected a parse error"
          | Error ds -> ds
        in
        let first = drain [] in
        (match Stream.next_result st with
         | Error ds ->
           checks "same error"
             (String.concat "\n" (List.map Clip_diag.render first))
             (String.concat "\n" (List.map Clip_diag.render ds))
         | Ok _ -> Alcotest.fail "error did not latch"));
  ]

(* --- Chunk-boundary property ------------------------------------------- *)

(* Random documents (and random mutations of their bytes) fed whole,
   byte by byte, and in random chunks must produce identical outcomes —
   the same Node.t or the same diagnostics. *)

let gen_atom =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Atom.Int i) small_int;
        map (fun s -> Atom.String s) (string_size ~gen:(char_range 'a' 'z') (1 -- 8));
        map (fun b -> Atom.Bool b) bool;
      ])

let gen_node =
  QCheck2.Gen.(
    sized_size (1 -- 4) @@ fix (fun self n ->
        let leaf = map (fun a -> Node.leaf "leaf" a) gen_atom in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map2
                (fun attrs children ->
                  let attrs =
                    List.mapi (fun i a -> (Printf.sprintf "a%d" i, a)) attrs
                  in
                  Node.elem ~attrs "node" children)
                (list_size (0 -- 2) gen_atom)
                (list_size (0 -- 3) (self (n / 2)));
            ]))

(* A document's bytes, possibly mutated (one byte overwritten, a byte
   inserted, or a truncated tail), plus random cut positions. *)
let gen_case =
  QCheck2.Gen.(
    gen_node >>= fun node ->
    let bytes = Printer.to_string node in
    let n = String.length bytes in
    let mutated =
      oneof
        [
          return bytes;
          (int_bound (max 0 (n - 1)) >>= fun i ->
           printable >>= fun c ->
           return (String.mapi (fun j x -> if j = i then c else x) bytes));
          (int_bound n >>= fun i ->
           return (String.sub bytes 0 i));
          (int_bound n >>= fun i ->
           printable >>= fun c ->
           return
             (String.sub bytes 0 i ^ String.make 1 c
             ^ String.sub bytes i (n - i)));
        ]
    in
    mutated >>= fun bytes ->
    list_size (0 -- 6) (int_bound (max 1 (String.length bytes))) >>= fun cuts ->
    return (bytes, cuts))

let prop_chunk_boundaries =
  QCheck2.Test.make ~count:500
    ~name:"whole / byte-by-byte / random chunks agree (documents and mutations)"
    gen_case
    (fun (bytes, cuts) ->
      let reference = outcome (Parser.parse_string_result bytes) in
      outcome (Stream.parse_result (Stream.of_string bytes)) = reference
      && outcome (Stream.parse_result (byte_by_byte bytes)) = reference
      && outcome (Stream.parse_result (chunked bytes cuts)) = reference)

let property_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_chunk_boundaries ]

let () =
  Alcotest.run "stream"
    [
      ("equivalence", equivalence_tests);
      ("properties", property_tests);
    ]
