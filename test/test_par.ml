(* The parallel batch layer: Clip_par.map must be a deterministic
   drop-in for List.map — byte-identical, order-identical output and
   exactly-merged counters for any job count — and the layers below
   must be domain-safe (Symbol interning, per-context session memos).

   These tests exercise real domains; keep batch sizes small so the
   suite stays fast on single-core machines. *)

module S = Clip_scenarios
module Node = Clip_xml.Node
module Engine = Clip_core.Engine
module C = Clip_obs.Counters

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A batch of pairwise-different documents, so an ordering or
   task-mixup bug cannot hide behind identical outputs. *)
let batch seeds =
  List.map
    (fun seed ->
      S.Deptdb.synthetic_instance
        ~depts:(2 + (seed mod 7))
        ~projs:(1 + (seed mod 3))
        ~emps:(2 + (seed mod 5)))
    seeds

(* Render inside the task, as the CLI does: "byte-identical stdout" is
   literally what comparing these strings checks. *)
let eval (sc : S.Figures.t) ~backend ~obs doc =
  let ctx = Clip_run.create ?counters:obs () in
  Clip_xml.Printer.to_pretty_string
    (Engine.run ~ctx ~backend
       ~minimum_cardinality:sc.minimum_cardinality sc.mapping doc)

let backends_of (sc : S.Figures.t) =
  if sc.minimum_cardinality then [ ("tgd", `Tgd); ("xquery", `Xquery) ]
  else [ ("tgd", `Tgd) ]

(* --- Differential: parallel == sequential, every figure x backend --- *)

let test_differential () =
  List.iter
    (fun (sc : S.Figures.t) ->
      List.iter
        (fun (bname, backend) ->
          let docs = S.Deptdb.instance :: batch [ 0; 1; 2; 3; 4 ] in
          let seq =
            Clip_par.map ~jobs:1 (fun ~obs doc -> eval sc ~backend ~obs doc) docs
          in
          let par =
            Clip_par.map ~jobs:4 (fun ~obs doc -> eval sc ~backend ~obs doc) docs
          in
          checkb
            (Printf.sprintf "%s/%s: --jobs 4 byte- and order-identical"
               sc.name bname)
            true (seq = par))
        (backends_of sc))
    S.Figures.all

(* Randomised batches: any document multiset, any job count. *)
let prop_differential =
  QCheck.Test.make ~count:20 ~name:"par: map ~jobs:n == List.map, random batches"
    QCheck.(pair (list_of_size Gen.(1 -- 8) (int_bound 30)) (1 -- 6))
    (fun (seeds, jobs) ->
      let docs = batch seeds in
      let sc = S.Figures.fig6 in
      let seq = List.map (fun doc -> eval sc ~backend:`Tgd ~obs:None doc) docs in
      let par =
        Clip_par.map ~jobs (fun ~obs doc -> eval sc ~backend:`Tgd ~obs doc) docs
      in
      seq = par)

(* --- Counter merge: per-domain sinks sum to the sequential totals --- *)

let test_counter_merge () =
  List.iter
    (fun (sc : S.Figures.t) ->
      List.iter
        (fun (bname, backend) ->
          let docs = S.Deptdb.instance :: batch [ 1; 3; 5; 7 ] in
          let cs = C.create () in
          ignore
            (Clip_par.map ~jobs:1 ~obs:cs
               (fun ~obs doc -> eval sc ~backend ~obs doc)
               docs);
          let cp = C.create () in
          ignore
            (Clip_par.map ~jobs:4 ~obs:cp
               (fun ~obs doc -> eval sc ~backend ~obs doc)
               docs);
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s/%s: merged counters = sequential" sc.name bname)
            (C.to_assoc cs) (C.to_assoc cp))
        (backends_of sc))
    S.Figures.all

(* --- Failure determinism: lowest failing index wins ----------------- *)

exception Boom of int

let test_exception_determinism () =
  for _ = 1 to 5 do
    match
      Clip_par.map ~jobs:4
        (fun ~obs:_ i -> if i mod 2 = 1 then raise (Boom i) else i)
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    with
    | _ -> Alcotest.fail "expected an exception"
    | exception Boom i -> checki "lowest failing index raises" 1 i
  done

(* --- Edge cases pinned by the clip_par.mli contract ----------------- *)

let test_edge_cases () =
  let id ~obs:_ i = i * i in
  (* empty batch: [] back, no domain spawned (any jobs value) *)
  List.iter
    (fun jobs ->
      checkb
        (Printf.sprintf "empty batch, jobs=%d" jobs)
        true
        (Clip_par.map ~jobs id [] = []))
    [ -3; 0; 1; 4; 64 ];
  checkb "empty batch (map_results)" true
    (Clip_par.map_results ~jobs:4 (fun ~obs:_ () -> Ok ()) [] = []);
  (* jobs larger than the task count: clamped, output unchanged *)
  let items = [ 1; 2; 3 ] in
  let expected = List.map (fun i -> i * i) items in
  checkb "jobs=64 > 3 tasks" true (Clip_par.map ~jobs:64 id items = expected);
  (* jobs <= 0: clamped to 1, i.e. sequential on the calling domain *)
  List.iter
    (fun jobs ->
      checkb
        (Printf.sprintf "jobs=%d clamps to sequential" jobs)
        true
        (Clip_par.map ~jobs id items = expected))
    [ 0; -1; min_int ];
  (* single task: sequential even when jobs is large *)
  checkb "one task, jobs=8" true (Clip_par.map ~jobs:8 id [ 7 ] = [ 49 ]);
  (* map_results isolation on the same clamped paths: the Error slot
     stays in place, the survivors are untouched *)
  let part ~obs:_ i =
    if i = 2 then Error [ Clip_diag.error ~code:"CLIP-TEST-001" "nope" ]
    else Ok (i * 10)
  in
  List.iter
    (fun jobs ->
      match Clip_par.map_results ~jobs part [ 1; 2; 3 ] with
      | [ Ok 10; Error [ d ]; Ok 30 ] ->
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d: slot keeps its diagnostics" jobs)
          "CLIP-TEST-001" d.Clip_diag.code
      | _ -> Alcotest.failf "jobs=%d: slots misplaced" jobs)
    [ -1; 1; 64 ]

(* --- Symbol interning under concurrent domains ---------------------- *)

let test_symbol_concurrent () =
  let per_domain = 200 in
  let domains = 4 in
  let tags d i = Printf.sprintf "par-sym-%d" ((d * per_domain) + (i mod 50)) in
  let worker d () =
    Array.init per_domain (fun i ->
        let s = tags d i in
        (s, Clip_xml.Symbol.intern s))
  in
  let spawned = List.init domains (fun d -> Domain.spawn (worker d)) in
  let all = List.concat_map (fun h -> Array.to_list (Domain.join h)) spawned in
  (* Every returned id resolves back to the interned string... *)
  List.iter
    (fun (s, id) ->
      Alcotest.(check string) "id resolves to its string" s
        (Clip_xml.Symbol.name id))
    all;
  (* ...and interning is idempotent across the table that resulted. *)
  List.iter
    (fun (s, id) ->
      checkb ("re-intern " ^ s) true (Clip_xml.Symbol.intern s = id))
    all

(* --- Per-context session memo (no cross-document poisoning) --------- *)

let test_session_memo_per_ctx () =
  let sc = S.Figures.fig6 in
  let doc_a = S.Deptdb.instance in
  let doc_b = S.Deptdb.synthetic_instance ~depts:3 ~projs:2 ~emps:2 in
  (* Alternating documents through one context must stay correct: the
     memo is keyed on the document, re-created on change, never reused
     across documents. *)
  let ctx = Clip_run.create () in
  let direct doc = Engine.run ~backend:`Tgd sc.mapping doc in
  let via_ctx doc = Engine.run ~ctx ~backend:`Tgd sc.mapping doc in
  List.iter
    (fun doc ->
      checkb "alternating docs through one ctx stays correct" true
        (Node.equal (direct doc) (via_ctx doc)))
    [ doc_a; doc_b; doc_a; doc_b; doc_a ];
  (* Re-running the same document in the same context hits the session
     memo; a fresh context starts cold. *)
  let c = C.create () in
  let counting = Clip_run.create ~counters:c () in
  ignore (Engine.run ~ctx:counting ~backend:`Tgd sc.mapping doc_a);
  let cold_hits = c.C.session_hits in
  ignore (Engine.run ~ctx:counting ~backend:`Tgd sc.mapping doc_a);
  let warm_hits = c.C.session_hits - cold_hits in
  checkb
    (Printf.sprintf "warm ctx re-run hits the session memo (%d > %d)" warm_hits
       cold_hits)
    true (warm_hits > cold_hits);
  (* Contexts are isolated: warming one context never warms another. *)
  let c2 = C.create () in
  ignore
    (Engine.run ~ctx:(Clip_run.create ~counters:c2 ()) ~backend:`Tgd sc.mapping
       doc_a);
  checki "fresh ctx starts cold" cold_hits c2.C.session_hits

(* --- Ordered streaming pipeline (stream_results) -------------------- *)

(* A producer that hands out [0 .. n-1], optionally failing at
   [err_at]. *)
let counter_producer ?err_at n =
  let i = ref 0 in
  fun () ->
    if Some !i = err_at then
      Error [ Clip_diag.error ~code:"CLIP-TEST-002" "producer failed" ]
    else if !i >= n then Ok None
    else begin
      let v = !i in
      incr i;
      Ok (Some v)
    end

let test_stream_ordered () =
  List.iter
    (fun jobs ->
      let consumed = ref [] in
      let r =
        Clip_par.stream_results ~jobs
          ~produce:(counter_producer 25)
          ~consume:(fun v -> consumed := v :: !consumed)
          (fun ~obs:_ i -> Ok (i * i))
      in
      checkb (Printf.sprintf "jobs=%d returns Ok" jobs) true (r = Ok ());
      checkb
        (Printf.sprintf "jobs=%d consumes in production order" jobs)
        true
        (List.rev !consumed = List.init 25 (fun i -> i * i)))
    [ 1; 2; 4; 64 ]

let test_stream_counters () =
  (* Counters merged through the pipeline are a sum over items, so
     they cannot depend on the job count — same contract as map. *)
  let totals jobs =
    let c = C.create () in
    let r =
      Clip_par.stream_results ~jobs ~obs:c
        ~produce:(counter_producer 12)
        ~consume:ignore
        (fun ~obs i ->
          Clip_obs.Counters.(
            match obs with
            | Some o ->
              o.nodes_scanned <- o.nodes_scanned + i;
              o.child_steps <- o.child_steps + 1
            | None -> ());
          Ok i)
    in
    checkb "ok" true (r = Ok ());
    C.to_assoc c
  in
  checkb "counter totals independent of jobs" true (totals 1 = totals 4)

let test_stream_failures () =
  (* A task Error stops the pipeline: every item before it is consumed,
     nothing at or after it is, and its diagnostics come back. *)
  List.iter
    (fun jobs ->
      let consumed = ref [] in
      match
        Clip_par.stream_results ~jobs
          ~produce:(counter_producer 20)
          ~consume:(fun v -> consumed := v :: !consumed)
          (fun ~obs:_ i ->
            if i = 5 then
              Error [ Clip_diag.error ~code:"CLIP-TEST-001" "task 5" ]
            else Ok i)
      with
      | Ok () -> Alcotest.failf "jobs=%d: expected the task error" jobs
      | Error [ d ] ->
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d: task diagnostics" jobs)
          "CLIP-TEST-001" d.Clip_diag.code;
        checkb
          (Printf.sprintf "jobs=%d: exact prefix consumed" jobs)
          true
          (List.rev !consumed = [ 0; 1; 2; 3; 4 ])
      | Error _ -> Alcotest.failf "jobs=%d: unexpected diagnostics" jobs)
    [ 1; 4 ];
  (* A producer Error surfaces after the items before it. *)
  List.iter
    (fun jobs ->
      let consumed = ref [] in
      match
        Clip_par.stream_results ~jobs
          ~produce:(counter_producer ~err_at:3 20)
          ~consume:(fun v -> consumed := v :: !consumed)
          (fun ~obs:_ i -> Ok i)
      with
      | Ok () -> Alcotest.failf "jobs=%d: expected the producer error" jobs
      | Error [ d ] ->
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d: producer diagnostics" jobs)
          "CLIP-TEST-002" d.Clip_diag.code;
        checkb
          (Printf.sprintf "jobs=%d: items before the failure consumed" jobs)
          true
          (List.rev !consumed = [ 0; 1; 2 ])
      | Error _ -> Alcotest.failf "jobs=%d: unexpected diagnostics" jobs)
    [ 1; 4 ];
  (* A task exception re-raises on the caller. *)
  List.iter
    (fun jobs ->
      match
        Clip_par.stream_results ~jobs
          ~produce:(counter_producer 10)
          ~consume:ignore
          (fun ~obs:_ i -> if i = 4 then raise (Boom i) else Ok i)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i -> checki (Printf.sprintf "jobs=%d raises" jobs) 4 i)
    [ 1; 4 ];
  (* An empty stream is Ok without consuming anything. *)
  let consumed = ref [] in
  checkb "empty stream" true
    (Clip_par.stream_results ~jobs:4
       ~produce:(counter_producer 0)
       ~consume:(fun v -> consumed := v :: !consumed)
       (fun ~obs:_ i -> Ok i)
     = Ok ()
    && !consumed = [])

(* Randomised producer failure: for any stream length, failure point
   and job count, a producer error after N items surfaces as exactly
   that error, with exactly the N items before it consumed, in
   production order — no item at or past the failure leaks through,
   however the pool schedules the in-flight tasks. *)
let prop_stream_producer_error =
  QCheck.Test.make ~count:100
    ~name:"par: stream producer error after N items — exact ordered prefix"
    QCheck.(triple (0 -- 30) (0 -- 30) (1 -- 8))
    (fun (n, err, jobs) ->
      let err_at = min err n in
      let consumed = ref [] in
      match
        Clip_par.stream_results ~jobs
          ~produce:(counter_producer ~err_at (n + 5))
          ~consume:(fun v -> consumed := v :: !consumed)
          (fun ~obs:_ i -> Ok (i * 10))
      with
      | Ok () -> false
      | Error [ d ] ->
        String.equal d.Clip_diag.code "CLIP-TEST-002"
        && List.rev !consumed = List.init err_at (fun i -> i * 10)
      | Error _ -> false)

let () =
  Alcotest.run "par"
    [
      ( "differential",
        [
          Alcotest.test_case "figures x backends, jobs=4" `Quick
            test_differential;
          QCheck_alcotest.to_alcotest prop_differential;
        ] );
      ( "counters",
        [ Alcotest.test_case "merge = sequential" `Quick test_counter_merge ] );
      ( "failures",
        [
          Alcotest.test_case "lowest index raises" `Quick
            test_exception_determinism;
        ] );
      ( "edges",
        [ Alcotest.test_case "clamping and empty batches" `Quick test_edge_cases ] );
      ( "symbol",
        [
          Alcotest.test_case "concurrent interning" `Quick
            test_symbol_concurrent;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "per-context memo" `Quick
            test_session_memo_per_ctx;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "ordered consumption" `Quick test_stream_ordered;
          Alcotest.test_case "counter totals independent of jobs" `Quick
            test_stream_counters;
          Alcotest.test_case "failure propagation" `Quick test_stream_failures;
          QCheck_alcotest.to_alcotest prop_stream_producer_error;
        ] );
    ]
