(* Tests for single-document sharding (Clip_shard + the engine's
   sharded modes): the static cut decisions on every paper figure, and
   the central contract — sharded and streaming evaluation are
   byte-identical to the sequential whole-document oracle on every
   figure, backend and plan mode, with exactly merged counters. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let decision_of (sc : Clip_scenarios.Figures.t) =
  let m = sc.mapping in
  Clip_shard.plan ~source:m.source ~target:m.target
    ~minimum_cardinality:sc.minimum_cardinality
    (Clip_core.Compile.to_tgd m)

let note_of sc = Clip_shard.decision_note (decision_of sc)

let figure name =
  List.find
    (fun (sc : Clip_scenarios.Figures.t) -> sc.name = name)
    Clip_scenarios.Figures.all

(* --- Static decisions ---------------------------------------------------

   One pin per figure: which mappings shard, where the cut lands, and
   the exact fallback reason EXPLAIN reports for the rest. A change in
   the analysis that silently widens (unsound) or narrows (lost
   parallelism) the shardable set fails here first. *)

let sharded_note =
  "sharding: cut at source.dept (unit <dept>, shards carry the container \
   spine only)"

let fallback reason = "sharding: whole-document fallback - " ^ reason

let decision_tests =
  let pins =
    [
      ("fig3", sharded_note);
      ("fig4", sharded_note);
      ("fig5", sharded_note);
      ("fig6", sharded_note);
      ("fig6-cartesian", sharded_note);
      ("fig9", sharded_note);
      ( "fig3-universal",
        fallback
          "the universal-solution ablation creates one element per mapped \
           value, which only the whole-document evaluation orders correctly" );
      ("fig4-nocontext", fallback "source.dept reads the repeated region outside the shard loop");
      ("fig6-global", fallback "source.dept reads the repeated region outside the shard loop");
      ("fig6-join-global", fallback "source.dept reads the repeated region outside the shard loop");
      ("fig7", fallback "group-by under a shard-shared parent: its groups span shards");
      ("fig8", fallback "group-by under a shard-shared parent: its groups span shards");
    ]
  in
  [
    Alcotest.test_case "every figure's decision note" `Quick (fun () ->
        List.iter
          (fun (sc : Clip_scenarios.Figures.t) ->
            match List.assoc_opt sc.name pins with
            | Some note -> checks sc.name note (note_of sc)
            | None -> Alcotest.fail ("unpinned figure " ^ sc.name))
          Clip_scenarios.Figures.all);
    Alcotest.test_case "fig3 cut structure" `Quick (fun () ->
        match decision_of (figure "fig3") with
        | Clip_shard.Whole r -> Alcotest.fail ("unexpected fallback: " ^ r)
        | Clip_shard.Sharded cut ->
          checks "cut path" "source.dept"
            (Clip_schema.Path.to_string cut.cut_path);
          checks "unit" "dept" cut.unit_tag;
          checkb "containers" true (cut.containers = [ "source" ]);
          checkb "no prologue" false cut.needs_prologue;
          (* fig3's <department> is completion-created once per shard
             and must be unified at merge; fig4-style driven children
             concatenate instead. *)
          checkb "unify" true (cut.unify = [ "department" ]));
    Alcotest.test_case "fig4 concatenates, nothing unified" `Quick (fun () ->
        match decision_of (figure "fig4") with
        | Clip_shard.Whole r -> Alcotest.fail ("unexpected fallback: " ^ r)
        | Clip_shard.Sharded cut -> checkb "unify" true (cut.unify = []));
  ]

(* --- Tree cutting -------------------------------------------------------- *)

let cut_of name =
  match decision_of (figure name) with
  | Clip_shard.Sharded cut -> cut
  | Clip_shard.Whole r -> Alcotest.fail ("expected a cut: " ^ r)

let cutting_tests =
  [
    Alcotest.test_case "budget controls shard count" `Quick (fun () ->
        let cut = cut_of "fig4" in
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:8 ~projs:2 ~emps:3
        in
        checki "units" 8 (Clip_shard.count_units cut doc);
        let tiny = Clip_shard.shards_of_node cut ~budget_bytes:1 doc in
        checki "one unit per shard" 8 (List.length tiny);
        let huge =
          Clip_shard.shards_of_node cut ~budget_bytes:max_int doc
        in
        checki "everything in one shard" 1 (List.length huge));
    Alcotest.test_case "fewer than two units: the document itself" `Quick
      (fun () ->
        let cut = cut_of "fig4" in
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:1 ~projs:1 ~emps:1
        in
        match Clip_shard.shards_of_node cut ~budget_bytes:1 doc with
        | [ d ] -> checkb "same document" true (d == doc)
        | l -> Alcotest.fail (Printf.sprintf "%d shards" (List.length l)));
    Alcotest.test_case "merge conflict is a CLIP-TGD-001" `Quick (fun () ->
        let out text =
          Clip_xml.Node.elem "target"
            [ Clip_xml.Node.leaf "department" (Clip_xml.Atom.String text) ]
        in
        (match Clip_shard.merge ~unify:[ "department" ] [ out "a"; out "b" ] with
         | Ok _ -> Alcotest.fail "conflicting text must not merge"
         | Error ds ->
           checkb "code" true
             (List.exists
                (fun (d : Clip_diag.t) -> d.code = Clip_diag.Codes.tgd_eval)
                ds));
        match Clip_shard.merge ~unify:[ "department" ] [ out "a"; out "a" ] with
        | Ok merged ->
          checks "unified" "<target><department>a</department></target>"
            (Clip_xml.Printer.to_string merged)
        | Error _ -> Alcotest.fail "agreeing shards must merge");
  ]

(* --- Differential: sharded == whole, everywhere -------------------------- *)

let backends = [ (`Tgd, "tgd"); (`Xquery, "xquery"); (`Xquery_text, "xquery-text") ]
let plans = [ (`Auto, "auto"); (`Indexed, "indexed"); (`Naive, "naive") ]

let run_string ?ctx ?mode ?shard_bytes ?jobs ~backend ~plan
    (sc : Clip_scenarios.Figures.t) doc =
  match
    Clip_core.Engine.run_result ?ctx ~backend
      ~minimum_cardinality:sc.minimum_cardinality ~plan ?mode ?shard_bytes
      ?jobs sc.mapping doc
  with
  | Ok out -> Clip_xml.Printer.to_string out
  | Error ds ->
    Alcotest.fail
      (sc.name ^ ": " ^ String.concat "; " (List.map Clip_diag.to_string ds))

let differential_tests =
  [
    Alcotest.test_case
      "every figure x backend x plan: sharded output is byte-identical"
      `Quick (fun () ->
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:7 ~projs:3 ~emps:4
        in
        List.iter
          (fun (sc : Clip_scenarios.Figures.t) ->
            let backends =
              (* The universal-solution ablation only exists on the tgd
                 backend. *)
              if sc.minimum_cardinality then backends else [ (`Tgd, "tgd") ]
            in
            List.iter
              (fun (backend, bname) ->
                List.iter
                  (fun (plan, pname) ->
                    let label =
                      Printf.sprintf "%s/%s/%s" sc.name bname pname
                    in
                    let whole = run_string ~backend ~plan sc doc in
                    let sharded =
                      run_string ~mode:`Sharded ~shard_bytes:256 ~jobs:3
                        ~backend ~plan sc doc
                    in
                    checks label whole sharded)
                  plans)
              backends)
          Clip_scenarios.Figures.all);
    Alcotest.test_case "paper instance, per-unit shards" `Quick (fun () ->
        let doc = Clip_scenarios.Deptdb.instance in
        List.iter
          (fun name ->
            let sc = figure name in
            let whole = run_string ~backend:`Tgd ~plan:`Auto sc doc in
            let sharded =
              run_string ~mode:`Sharded ~shard_bytes:1 ~jobs:2 ~backend:`Tgd
                ~plan:`Auto sc doc
            in
            checks name whole sharded)
          [ "fig3"; "fig4"; "fig5"; "fig6"; "fig9" ]);
    Alcotest.test_case "columnar representation shards identically" `Quick
      (fun () ->
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:6 ~projs:2 ~emps:3
        in
        let sc = figure "fig4" in
        let whole =
          match
            Clip_core.Engine.run_result ~backend:`Tgd ~repr:`Columnar
              ~plan:`Auto sc.mapping doc
          with
          | Ok out -> Clip_xml.Printer.to_string out
          | Error _ -> Alcotest.fail "whole columnar run failed"
        in
        match
          Clip_core.Engine.run_result ~backend:`Tgd ~repr:`Columnar
            ~plan:`Auto ~mode:`Sharded ~shard_bytes:256 ~jobs:3 sc.mapping doc
        with
        | Ok out -> checks "columnar" whole (Clip_xml.Printer.to_string out)
        | Error _ -> Alcotest.fail "sharded columnar run failed");
    Alcotest.test_case "no-safe-cut mappings fall back byte-identically"
      `Quick (fun () ->
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:5 ~projs:2 ~emps:3
        in
        List.iter
          (fun name ->
            let sc = figure name in
            let whole = run_string ~backend:`Tgd ~plan:`Auto sc doc in
            let sharded =
              run_string ~mode:`Sharded ~shard_bytes:64 ~jobs:3 ~backend:`Tgd
                ~plan:`Auto sc doc
            in
            checks name whole sharded)
          [ "fig7"; "fig8"; "fig6-join-global"; "fig3-universal" ]);
    Alcotest.test_case "auto mode: small documents stay whole" `Quick
      (fun () ->
        let sc = figure "fig4" in
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:3 ~projs:1 ~emps:1
        in
        (* Under the default 1 MiB budget this document is one shard's
           worth, so `Auto must not cut it ... *)
        let whole = run_string ~backend:`Tgd ~plan:`Auto sc doc in
        checks "auto = whole" whole
          (run_string ~mode:`Auto ~backend:`Tgd ~plan:`Auto sc doc);
        (* ... and with a budget it overflows, `Auto shards — output
           unchanged. *)
        checks "auto sharded" whole
          (run_string ~mode:`Auto ~shard_bytes:64 ~jobs:2 ~backend:`Tgd
             ~plan:`Auto sc doc));
  ]

(* --- Streaming ----------------------------------------------------------- *)

let feed_in_chunks ?(chunk = 41) bytes =
  let pos = ref 0 in
  Clip_xml.Stream.of_chunks (fun () ->
      if !pos >= String.length bytes then None
      else begin
        let n = min chunk (String.length bytes - !pos) in
        let c = String.sub bytes !pos n in
        pos := !pos + n;
        Some c
      end)

let stream_tests =
  [
    Alcotest.test_case "streamed run is byte-identical on every figure"
      `Quick (fun () ->
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:7 ~projs:2 ~emps:3
        in
        let bytes = Clip_xml.Printer.to_string doc in
        List.iter
          (fun (sc : Clip_scenarios.Figures.t) ->
            let backend = `Tgd in
            let whole = run_string ~backend ~plan:`Auto sc doc in
            match
              Clip_core.Engine.run_stream_result ~backend
                ~minimum_cardinality:sc.minimum_cardinality ~mode:`Sharded
                ~shard_bytes:256 ~jobs:3 sc.mapping (feed_in_chunks bytes)
            with
            | Ok out -> checks sc.name whole (Clip_xml.Printer.to_string out)
            | Error ds ->
              Alcotest.fail
                (sc.name ^ ": "
                ^ String.concat "; " (List.map Clip_diag.to_string ds)))
          Clip_scenarios.Figures.all);
    Alcotest.test_case "stream parse errors match the tree parser" `Quick
      (fun () ->
        let sc = figure "fig4" in
        let bad = "<source><dept><dname>A</dname></dept><oops</source>" in
        let whole =
          match Clip_xml.Parser.parse_string_result bad with
          | Ok _ -> Alcotest.fail "expected a parse error"
          | Error ds -> List.map Clip_diag.render ds
        in
        match
          Clip_core.Engine.run_stream_result ~mode:`Sharded ~shard_bytes:64
            sc.mapping (feed_in_chunks bad)
        with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error ds ->
          checks "diagnostics" (String.concat "\n" whole)
            (String.concat "\n" (List.map Clip_diag.render ds)));
    Alcotest.test_case "root mismatch falls back to whole-document" `Quick
      (fun () ->
        (* The mapping expects <source>; feed a document rooted
           elsewhere — the cutter materialises it and the run proceeds
           unsharded, reporting whatever the whole run would. *)
        let sc = figure "fig4" in
        let bytes = "<elsewhere><x>1</x></elsewhere>" in
        let whole =
          Clip_core.Engine.run_result sc.mapping
            (Result.get_ok (Clip_xml.Parser.parse_string_result bytes))
        in
        let streamed =
          Clip_core.Engine.run_stream_result ~mode:`Sharded ~shard_bytes:64
            sc.mapping (feed_in_chunks bytes)
        in
        match (whole, streamed) with
        | Ok a, Ok b ->
          checks "output" (Clip_xml.Printer.to_string a)
            (Clip_xml.Printer.to_string b)
        | Error a, Error b ->
          checks "diagnostics"
            (String.concat "\n" (List.map Clip_diag.render a))
            (String.concat "\n" (List.map Clip_diag.render b))
        | _ -> Alcotest.fail "whole and streamed disagree on success");
  ]

(* --- Counters ------------------------------------------------------------ *)

(* Work counters are deterministic per shard, so the parallel sharded
   run must sum to exactly the sequential sharded run's totals — the
   task-to-domain partition must not show. (batches_executed and
   batch_width stay exempt, as in the batch-execution suite: batching
   is a physical detail the scheduler may legitimately change.) *)
let strip_batches =
  List.filter (fun (k, _) -> k <> "batches_executed" && k <> "batch_width")

let counter_assoc ~jobs ~mode (sc : Clip_scenarios.Figures.t) doc =
  let counters = Clip_obs.Counters.create () in
  let ctx = Clip_run.create ~counters () in
  (match
     Clip_core.Engine.run_result ~ctx ~mode ~shard_bytes:256 ~jobs sc.mapping
       doc
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail (sc.name ^ ": run failed"));
  strip_batches (Clip_obs.Counters.work_assoc counters)

let counter_tests =
  [
    Alcotest.test_case "sharded-parallel counters equal sharded-sequential"
      `Quick (fun () ->
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:9 ~projs:3 ~emps:4
        in
        List.iter
          (fun name ->
            let sc = figure name in
            let seq = counter_assoc ~jobs:1 ~mode:`Sharded sc doc in
            let par = counter_assoc ~jobs:4 ~mode:`Sharded sc doc in
            checkb (name ^ " nonempty") true (seq <> []);
            List.iter
              (fun (k, v) ->
                checki
                  (Printf.sprintf "%s %s" name k)
                  v
                  (match List.assoc_opt k par with Some v -> v | None -> 0))
              seq;
            checki (name ^ " same keys") (List.length seq) (List.length par))
          [ "fig3"; "fig4"; "fig6"; "fig9" ]);
    Alcotest.test_case "streaming counters equal tree-sharded counters"
      `Quick (fun () ->
        let sc = figure "fig4" in
        let doc =
          Clip_scenarios.Deptdb.synthetic_instance ~depts:9 ~projs:3 ~emps:4
        in
        let tree = counter_assoc ~jobs:1 ~mode:`Sharded sc doc in
        let counters = Clip_obs.Counters.create () in
        let ctx = Clip_run.create ~counters () in
        let bytes = Clip_xml.Printer.to_string doc in
        (match
           Clip_core.Engine.run_stream_result ~ctx ~mode:`Sharded
             ~shard_bytes:256 ~jobs:4 sc.mapping (feed_in_chunks bytes)
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "stream run failed");
        let streamed = strip_batches (Clip_obs.Counters.work_assoc counters) in
        List.iter
          (fun (k, v) ->
            checki k v
              (match List.assoc_opt k streamed with Some v -> v | None -> 0))
          tree);
  ]

let () =
  Alcotest.run "shard"
    [
      ("decisions", decision_tests);
      ("cutting", cutting_tests);
      ("differential", differential_tests);
      ("streaming", stream_tests);
      ("counters", counter_tests);
    ]
