(* Source lint: forbid [failwith] and [Obj.magic] in [lib/].

   Library code reports failures as [Clip_diag] diagnostics (or typed
   exceptions); [failwith] erases the code, span and hints. The only
   permitted sites are the legacy-compat wrappers that reconstruct
   [Failure] from the first diagnostic, listed in [allowlist] below
   with the number of occurrences each may contain. [Obj.magic] is
   never allowed.

   Run as [lint.exe LIBDIR]; wired into [dune runtest]. *)

let allowlist = [ ("clio/generate.ml", 1); ("clio/enumerate.ml", 1); ("core/compile.ml", 1) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let count = ref 0 in
  for i = 0 to nh - nn do
    if String.equal (String.sub hay i nn) needle then incr count
  done;
  !count

let rec ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun f ->
         let p = Filename.concat dir f in
         if Sys.is_directory p then ml_files p
         else if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
         then [ p ]
         else [])

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  let errors = ref 0 in
  let complain fmt = Printf.ksprintf (fun s -> incr errors; prerr_endline s) fmt in
  List.iter
    (fun path ->
      let src = read_file path in
      (* Path relative to the lib root, for allowlist matching. *)
      let rel =
        let prefix = root ^ Filename.dir_sep in
        if String.length path > String.length prefix
           && String.equal (String.sub path 0 (String.length prefix)) prefix
        then String.sub path (String.length prefix) (String.length path - String.length prefix)
        else path
      in
      let magic = count_substring src "Obj.magic" in
      if magic > 0 then
        complain "lint: %s: %d use(s) of Obj.magic (never allowed in lib/)" rel magic;
      let fw = count_substring src "failwith" in
      let allowed = match List.assoc_opt rel allowlist with Some n -> n | None -> 0 in
      if fw > allowed then
        complain
          "lint: %s: %d use(s) of failwith, %d allowed — report a Clip_diag \
           diagnostic instead (see lib/diag)"
          rel fw allowed)
    (ml_files root);
  if !errors > 0 then exit 1 else print_endline "lint: lib/ is clean"
