(* Source lint: forbid [failwith], [Obj.magic] and ambient mutable
   globals in [lib/].

   Library code reports failures as [Clip_diag] diagnostics (or typed
   exceptions); [failwith] erases the code, span and hints. The only
   permitted sites are the legacy-compat wrappers that reconstruct
   [Failure] from the first diagnostic, listed in [allowlist] below
   with the number of occurrences each may contain. [Obj.magic] is
   never allowed.

   Top-level [ref] / [Hashtbl.create] value bindings are ambient
   mutable state: invisible to callers, shared across runs, and racy
   across domains. Run-scoped state belongs in a [Clip_run] context
   (counters, tracers, session memos); cross-domain state must be
   [Atomic] or mutex-guarded with an explicit allowlist entry.

   Every [.ml] under [lib/] must have a matching [.mli]: the interface
   is where invariants live (Doc's array layout, the index's
   memoisation contract, symbol interning), and an uninterfaced
   module leaks every helper as public API.

   Every [dune] under [lib/] must declare
   [(instrumentation (backend bisect_ppx))]: the stanza is inert in
   normal builds (bisect_ppx is not a build dependency) but lets CI's
   coverage job instrument the whole library surface with
   [--instrument-with bisect_ppx] — a library missing the stanza
   silently vanishes from the coverage report.

   Run as [lint.exe LIBDIR]; wired into [dune runtest]. *)

let allowlist = [ ("clio/generate.ml", 1); ("clio/enumerate.ml", 1); ("core/compile.ml", 1) ]

(* Files allowed N top-level mutable bindings. xml/symbol.ml's one is
   the empty initial intern table, published through an [Atomic]
   snapshot and only ever replaced under its mutex. *)
let mutable_allowlist = [ ("xml/symbol.ml", 1) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let count = ref 0 in
  for i = 0 to nh - nn do
    if String.equal (String.sub hay i nn) needle then incr count
  done;
  !count

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Occurrences of [needle] as a standalone token (no identifier
   character or '.' on either side, so [deref], [prefs] and
   [M.ref_like] don't count). *)
let count_token hay needle =
  let nh = String.length hay and nn = String.length needle in
  let count = ref 0 in
  for i = 0 to nh - nn do
    if
      String.equal (String.sub hay i nn) needle
      && (i = 0 || (not (is_ident_char hay.[i - 1]) && hay.[i - 1] <> '.'))
      && (i + nn >= nh || not (is_ident_char hay.[i + nn]))
    then incr count
  done;
  !count

(* Blank out string literals ("…" with escapes, {tag|…|tag}) and
   comments, so a [ref] inside an embedded schema text or a doc
   comment is not mistaken for the allocator. Replacement preserves
   offsets and newlines. *)
let strip_literals src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
     | '"' ->
       blank !i;
       incr i;
       let fin = ref false in
       while (not !fin) && !i < n do
         (match src.[!i] with
          | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            incr i
          | '"' -> fin := true
          | _ -> blank !i);
         incr i
       done
     | '{' ->
       (* {tag|…|tag} quoted string: scan the tag (lowercase/_ only). *)
       let j = ref (!i + 1) in
       while !j < n && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z')) do
         incr j
       done;
       if !j < n && src.[!j] = '|' then begin
         let close = "|" ^ String.sub src (!i + 1) (!j - !i - 1) ^ "}" in
         let nc = String.length close in
         let k = ref (!j + 1) in
         while
           !k + nc <= n && not (String.equal (String.sub src !k nc) close)
         do
           incr k
         done;
         let stop = min n (!k + nc) in
         for p = !i to stop - 1 do
           blank p
         done;
         i := stop
       end
       else incr i
     | '(' when !i + 1 < n && src.[!i + 1] = '*' ->
       let depth = ref 0 in
       let fin = ref false in
       while (not !fin) && !i < n do
         if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
           incr depth;
           blank !i;
           blank (!i + 1);
           i := !i + 2
         end
         else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
           decr depth;
           blank !i;
           blank (!i + 1);
           i := !i + 2;
           if !depth = 0 then fin := true
         end
         else begin
           blank !i;
           incr i
         end
       done
     | _ -> incr i)
  done;
  Bytes.to_string out

(* Top-level mutable globals: a column-0 [let] (or [let rec]) binding
   a plain identifier — a value, not a function — whose body (up to
   the next column-0 line) creates a [ref] or a [Hashtbl]. Function
   bindings are fine: their state is per-call. *)
let count_mutable_globals src =
  let src = strip_literals src in
  let lines = String.split_on_char '\n' src in
  let starts_at_col0 l = String.length l > 0 && l.[0] <> ' ' && l.[0] <> '\t' in
  let binding_of l =
    (* "let x = ..." / "let rec x = ..." / "let x : t = ..." — value
       iff the pattern before '=' is one identifier (plus optional
       type annotation). *)
    if not (String.length l > 4 && String.sub l 0 4 = "let ") then None
    else
      match String.index_opt l '=' with
      | None -> None
      | Some eq ->
        let pat = String.trim (String.sub l 4 (eq - 4)) in
        let pat =
          if String.length pat > 4 && String.sub pat 0 4 = "rec " then
            String.trim (String.sub pat 4 (String.length pat - 4))
          else pat
        in
        let pat =
          match String.index_opt pat ':' with
          | Some c -> String.trim (String.sub pat 0 c)
          | None -> pat
        in
        if pat <> "" && String.for_all is_ident_char pat then Some pat else None
  in
  let count = ref 0 in
  let rec go = function
    | [] -> ()
    | line :: rest ->
      (match binding_of line with
       | None -> go rest
       | Some _name ->
         let body, rest' =
           let rec take acc = function
             | l :: ls when not (starts_at_col0 l) -> take (l :: acc) ls
             | ls -> (List.rev acc, ls)
           in
           take [ line ] rest
         in
         let text = String.concat "\n" body in
         if count_token text "ref" > 0 || count_substring text "Hashtbl.create" > 0
         then incr count;
         go rest')
  in
  go lines;
  !count

let rec ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun f ->
         let p = Filename.concat dir f in
         if Sys.is_directory p then ml_files p
         else if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
         then [ p ]
         else [])

let rec dune_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun f ->
         let p = Filename.concat dir f in
         if Sys.is_directory p then dune_files p
         else if String.equal f "dune" then [ p ]
         else [])

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  let errors = ref 0 in
  let complain fmt = Printf.ksprintf (fun s -> incr errors; prerr_endline s) fmt in
  List.iter
    (fun path ->
      let src = read_file path in
      (* Path relative to the lib root, for allowlist matching. *)
      let rel =
        let prefix = root ^ Filename.dir_sep in
        if String.length path > String.length prefix
           && String.equal (String.sub path 0 (String.length prefix)) prefix
        then String.sub path (String.length prefix) (String.length path - String.length prefix)
        else path
      in
      if Filename.check_suffix path ".ml" && not (Sys.file_exists (path ^ "i"))
      then
        complain
          "lint: %s: no interface — every lib/ module needs a .mli (the \
           interface carries the invariants; see lib/xml for the pattern)"
          rel;
      let magic = count_substring src "Obj.magic" in
      if magic > 0 then
        complain "lint: %s: %d use(s) of Obj.magic (never allowed in lib/)" rel magic;
      let fw = count_substring src "failwith" in
      let allowed = match List.assoc_opt rel allowlist with Some n -> n | None -> 0 in
      if fw > allowed then
        complain
          "lint: %s: %d use(s) of failwith, %d allowed — report a Clip_diag \
           diagnostic instead (see lib/diag)"
          rel fw allowed;
      if Filename.check_suffix path ".ml" then begin
        let globals = count_mutable_globals src in
        let allowed =
          match List.assoc_opt rel mutable_allowlist with Some n -> n | None -> 0
        in
        if globals > allowed then
          complain
            "lint: %s: %d top-level ref/Hashtbl value binding(s), %d allowed — \
             run-scoped state belongs in a Clip_run context; cross-domain \
             state must be Atomic or mutex-guarded (then allowlist it here)"
            rel globals allowed
      end)
    (ml_files root);
  List.iter
    (fun path ->
      let src = read_file path in
      if
        count_substring src "(library" > 0
        && not
             (count_substring src "(instrumentation" > 0
             && count_substring src "bisect_ppx" > 0)
      then
        complain
          "lint: %s: library stanza without (instrumentation (backend \
           bisect_ppx)) — the coverage job cannot see this library"
          path)
    (dune_files root);
  if !errors > 0 then exit 1 else print_endline "lint: lib/ is clean"
