(* Deterministic mutation fuzzer for every parser and the end-to-end
   engine.

   The harness asserts TOTALITY: each [*_result] entry point must
   return [Ok _] or [Error diagnostics] on arbitrary bytes — any other
   exception (including [Stack_overflow] and [Invalid_argument]) is a
   bug and fails the run. The engine target is additionally
   DIFFERENTIAL: every mapping that runs is evaluated under both the
   [`Naive] and [`Indexed] physical plans on a random valid instance
   of its own source schema, and the outputs must agree. A fixed
   pre-pass additionally checks the resource guards: a 100k-deep XML
   document (and equally deep schema DSL, mapping DSL and XQuery
   nestings) must come back as CLIP-LIM-* diagnostics, never a crash.

   Three optional seeded sweeps ride along: [--faults N] replays the
   engine under injected faults, [--algebra N] draws random
   compose chains over the Table-I figures and checks the mapping
   algebra's differential oracle — pipeline (fused or degraded) vs
   manual staged execution, with CLIP-ALG-* codes on every rejection —
   and [--rel N] draws random relational databases and checks the
   relational backend against the tgd backend: byte-identical outputs
   when both succeed, identical diagnostic codes when both fail.

   Runs are reproducible: the PRNG is our own (no [Random]), seeded
   from [--seed], so a failing input can be replayed by seed +
   iteration number. No external dependencies.

     dune exec test/fuzz/fuzz.exe -- --iterations 2000 --seed 42 *)

let iterations = ref 2000
let seed = ref 42
let verbose = ref false
let corpus_dir = ref ""

(* --- PRNG: 63-bit LCG, deterministic across platforms ---------------- *)

let rng = ref 1

let init_rng s = rng := (s lxor 0x5DEECE66D) land max_int

let next () =
  rng := ((!rng * 25214903917) + 11) land max_int;
  !rng lsr 17

let rand n = if n <= 0 then 0 else next () mod n

let pick xs = List.nth xs (rand (List.length xs))

(* --- Corpus ----------------------------------------------------------- *)

let builtin_corpus =
  [
    (* mapping file *)
    "schema source {\n\
    \  dept [1..*] { dname: string regEmp [0..*] { ename: string sal: int } }\n\
     }\n\
     schema target {\n\
    \  department [1..*] { employee [0..*] { @name: string } }\n\
     }\n\
     mapping {\n\
    \  node d: source.dept as $d -> target.department {\n\
    \    node e: source.dept.regEmp as $r -> target.department.employee\n\
    \      where $r.sal.value > 11000\n\
    \  }\n\
    \  value source.dept.regEmp.ename.value -> target.department.employee.@name\n\
     }\n";
    (* schema DSL *)
    "schema db { item [0..*] { @id: int name: string } ref item.@id -> item.@id }\n";
    (* XSD *)
    "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n\
     <xs:element name=\"db\"><xs:complexType><xs:sequence>\n\
     <xs:element name=\"item\" minOccurs=\"0\" maxOccurs=\"unbounded\" \
     type=\"xs:string\"/>\n\
     </xs:sequence></xs:complexType></xs:element></xs:schema>\n";
    (* XML instance *)
    "<source><dept><dname>ICT</dname><regEmp pid=\"1\"><ename>John</ename>\
     <sal>10000</sal></regEmp></dept></source>";
    (* XQuery *)
    "<target>{ for $d in source/dept where $d/sal/text() > 100 return \
     <department name={ $d/dname/text() }/> }</target>";
    "for $x in doc/a let $y := count($x/b) return if ($y > 2) then $x else ()";
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let dir_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun f ->
           let p = Filename.concat dir f in
           if Sys.is_directory p then None
           else match read_file p with s -> Some s | exception _ -> None)
  | exception Sys_error _ -> []

let load_corpus () =
  let roots =
    if !corpus_dir <> "" then [ !corpus_dir ]
    else [ "examples"; Filename.concat ".." (Filename.concat ".." "examples") ]
  in
  let from_disk =
    List.concat_map
      (fun root ->
        dir_files (Filename.concat root "mappings")
        @ dir_files (Filename.concat root "xsd"))
      roots
  in
  builtin_corpus @ from_disk

(* --- Mutations -------------------------------------------------------- *)

let dictionary =
  [
    "<"; ">"; "</"; "/>"; "<!--"; "-->"; "<![CDATA["; "]]>"; "&lt;"; "&#x41;";
    "schema"; "mapping"; "node"; "value"; "group"; "where"; "as"; "ref";
    "[0..*]"; "[1..1]"; "[5..2]"; "{"; "}"; "$"; "@"; ".."; "->"; ":";
    "for"; "let"; "in"; "return"; "if"; "then"; "else"; "count"; "avg";
    "<<sum>>"; "string"; "int"; "\""; "'"; "9999999999999999999999";
    "xs:element"; "xs:choice"; "minOccurs=\"-1\""; "maxOccurs=\"x\"";
  ]

let mutate s =
  let s = Bytes.of_string s in
  let n = Bytes.length s in
  let sub off len = Bytes.sub_string s off len in
  if n = 0 then pick dictionary
  else
    match rand 7 with
    | 0 ->
      (* flip one byte *)
      let i = rand n in
      Bytes.set s i (Char.chr (rand 256));
      Bytes.to_string s
    | 1 ->
      (* insert a random byte *)
      let i = rand (n + 1) in
      sub 0 i ^ String.make 1 (Char.chr (rand 256)) ^ sub i (n - i)
    | 2 ->
      (* delete a span *)
      let i = rand n in
      let len = min (n - i) (1 + rand 16) in
      sub 0 i ^ sub (i + len) (n - i - len)
    | 3 ->
      (* duplicate a span *)
      let i = rand n in
      let len = min (n - i) (1 + rand 32) in
      sub 0 (i + len) ^ sub i (n - i)
    | 4 ->
      (* truncate *)
      sub 0 (rand n)
    | 5 ->
      (* insert a dictionary token *)
      let i = rand (n + 1) in
      sub 0 i ^ pick dictionary ^ sub i (n - i)
    | _ ->
      (* swap two spans (self-splice) *)
      let i = rand n and j = rand n in
      let i, j = (min i j, max i j) in
      let len = min (1 + rand 24) (min (n - j) (j - i)) in
      if len <= 0 || i = j then Bytes.to_string s
      else sub 0 i ^ sub j len ^ sub (i + len) (j - i - len) ^ sub i len
        ^ sub (j + len) (n - j - len)

let splice a b =
  let na = String.length a and nb = String.length b in
  if na = 0 || nb = 0 then a ^ b
  else
    let i = rand na and j = rand nb in
    String.sub a 0 i ^ String.sub b j (nb - j)

(* --- Targets ---------------------------------------------------------- *)

(* Tight limits keep iterations fast and exercise the guards. *)
let limits =
  {
    Clip_diag.Limits.max_input_bytes = 1 lsl 20;
    max_xml_depth = 120;
    max_parser_recursion = 100;
    max_eval_steps = 50_000;
  }

let failures = ref 0

let report_failure name input exn =
  incr failures;
  let prefix = String.sub input 0 (min 160 (String.length input)) in
  Printf.eprintf "FAILURE [%s]: raised %s\n  input prefix: %S\n" name
    (Printexc.to_string exn) prefix

let targets : (string * (string -> unit)) list =
  [
    ("xml", fun s -> ignore (Clip_xml.Parser.parse_string_result ~limits s));
    ("schema-lexer", fun s -> ignore (Clip_schema.Lexer.tokenize_result s));
    ("schema-dsl", fun s -> ignore (Clip_schema.Dsl.parse_result ~limits s));
    ("xsd", fun s -> ignore (Clip_schema.Xsd.of_string_result ~limits s));
    ("mapping-dsl", fun s -> ignore (Clip_core.Dsl.parse_result ~limits s));
    ("xquery", fun s -> ignore (Clip_xquery.Parser.parse_string_result ~limits s));
    ( "engine",
      (* Beyond totality, the engine target is differential on two
         axes. Across plans: the same run under [`Naive], [`Indexed]
         and [`Auto] must agree (unordered node equality — target
         sibling order is pinned separately by the plan test suite)
         whenever both succeed. Across representations: for each plan,
         the [`Columnar] run must be {e exactly} equal to the [`Tree]
         run — the vectorized executor promises byte-identical
         enumeration order. The source document is a random valid
         instance of the parsed mapping's own source schema, so
         generators actually enumerate. *)
      fun s ->
        match Clip_core.Dsl.parse_result ~limits s with
        | Error _ -> ()
        | Ok m ->
          let doc =
            match
              Clip_schema.Generate.instance_with_refs
                ~state:(Random.State.make [| next () |])
                ~fanout:3 m.source
            with
            | doc -> doc
            | exception _ -> Clip_xml.Node.elem m.source.root.name []
          in
          let run ?(repr = (`Tree : Clip_xml.Doc.repr)) plan =
            Clip_core.Engine.run_result ~limits ~plan ~repr m doc
          in
          (match run `Naive with
           | Error _ -> ()
           | Ok a ->
             List.iter
               (fun (name, plan) ->
                 match run plan with
                 | Error _ -> ()
                 | Ok b ->
                   if not (Clip_xml.Node.equal_unordered a b) then begin
                     incr failures;
                     Printf.eprintf
                       "FAILURE [engine]: naive and %s plans disagree\n\
                       \  mapping prefix: %S\n"
                       name
                       (String.sub s 0 (min 160 (String.length s)))
                   end)
               [ ("indexed", `Indexed); ("auto", `Auto) ]);
          List.iter
            (fun (name, plan) ->
              match (run plan, run ~repr:`Columnar plan) with
              | Ok t, Ok c ->
                if not (Clip_xml.Node.equal t c) then begin
                  incr failures;
                  Printf.eprintf
                    "FAILURE [engine]: tree and columnar reprs disagree under \
                     %s plan\n\
                    \  mapping prefix: %S\n"
                    name
                    (String.sub s 0 (min 160 (String.length s)))
                end
              | (Ok _ | Error _), _ -> ())
            [ ("naive", `Naive); ("indexed", `Indexed); ("auto", `Auto) ] );
  ]

let run_target name f input =
  match f input with () -> () | exception e -> report_failure name input e

(* --- Fixed regression pre-pass: resource guards ----------------------- *)

let has_code code ds = List.exists (fun d -> String.equal d.Clip_diag.code code) ds

let expect_limit name code result =
  match result with
  | Error ds when has_code code ds -> ()
  | Ok _ ->
    incr failures;
    Printf.eprintf "FAILURE [%s]: deep input accepted instead of %s\n" name code
  | Error ds ->
    incr failures;
    Printf.eprintf "FAILURE [%s]: expected %s, got %s\n" name code
      (String.concat ", " (List.map (fun d -> d.Clip_diag.code) ds))

let guard_checks () =
  let n = 100_000 in
  (* 100k-deep XML: must report CLIP-LIM-002, not Stack_overflow. *)
  let buf = Buffer.create (n * 8) in
  for _ = 1 to n do
    Buffer.add_string buf "<a>"
  done;
  Buffer.add_string buf "x";
  for _ = 1 to n do
    Buffer.add_string buf "</a>"
  done;
  (match Clip_xml.Parser.parse_string_result (Buffer.contents buf) with
   | r -> expect_limit "deep-xml" Clip_diag.Codes.limit_xml_depth r
   | exception e -> report_failure "deep-xml" "<a><a>..." e);
  (* 100k-deep schema DSL nesting. *)
  let buf = Buffer.create (n * 4) in
  Buffer.add_string buf "schema s ";
  for _ = 1 to n do
    Buffer.add_string buf "{ a "
  done;
  Buffer.add_string buf "{ x: string ";
  for _ = 0 to n do
    Buffer.add_string buf "}"
  done;
  (match Clip_schema.Dsl.parse_result (Buffer.contents buf) with
   | r -> expect_limit "deep-schema" Clip_diag.Codes.limit_recursion r
   | exception e -> report_failure "deep-schema" "schema s { a { a ..." e);
  (* 100k-deep XQuery parentheses. *)
  let q = String.concat "" [ String.make n '('; "1"; String.make n ')' ] in
  (match Clip_xquery.Parser.parse_string_result q with
   | r -> expect_limit "deep-xquery" Clip_diag.Codes.limit_recursion r
   | exception e -> report_failure "deep-xquery" "(((..." e);
  (* Step budget: a mapping whose cross product exceeds max_eval_steps. *)
  let mapping_src =
    "schema source { a [0..*] { v: int } }\n\
     schema target { t [0..*] { u [0..*] { @x: int } } }\n\
     mapping {\n\
    \  node n: source.a as $p, source.a as $q, source.a as $r -> target.t\n\
     }\n"
  in
  (match Clip_core.Dsl.parse_result mapping_src with
   | Error ds ->
     incr failures;
     Printf.eprintf "FAILURE [step-budget]: fixture does not parse: %s\n"
       (String.concat "; " (List.map (fun d -> d.Clip_diag.message) ds))
   | Ok m ->
     let items =
       List.init 60 (fun i ->
           Clip_xml.Node.elem "a"
             [ Clip_xml.Node.elem "v" [ Clip_xml.Node.text (Clip_xml.Atom.Int i) ] ])
     in
     let doc = Clip_xml.Node.elem "source" items in
     let tight = { limits with Clip_diag.Limits.max_eval_steps = 10_000 } in
     (match Clip_core.Engine.run_result ~limits:tight m doc with
      | r ->
        expect_limit "step-budget" Clip_diag.Codes.limit_eval_steps
          (match r with Ok _ -> Ok () | Error ds -> Error ds)
      | exception e -> report_failure "step-budget" mapping_src e))

(* --- Seeded fault-injection sweep (--faults N) ------------------------ *)

let fault_iterations = ref 0

(* Each iteration arms one seeded (site, hit ordinal, kind) fault and
   drives a fixed, valid end-to-end pipeline that crosses every
   registered site: re-parsing the printed instance (xml.parse), an
   [`Indexed] engine run on both backends (plan.build, index.build,
   session.populate, tgd.execute, xquery.execute) under the
   {!Clip_par.map_results} wrapper (par.task). Totality plus fault
   hygiene: a fired fault must surface as [Error] carrying a CLIP-FLT-*
   code — never an exception, never a silent [Ok] — and after
   disarming the very same pipeline must run clean (nothing poisoned). *)
let fault_sweep () =
  let m =
    match Clip_core.Dsl.parse_result (List.hd builtin_corpus) with
    | Ok m -> m
    | Error _ -> failwith "fault sweep: fixture mapping does not parse"
  in
  let doc =
    Clip_schema.Generate.instance_with_refs
      ~state:(Random.State.make [| 0xC11F |])
      ~fanout:3 m.source
  in
  let doc_text = Clip_xml.Printer.to_string doc in
  let task ~obs:_ backend =
    match Clip_xml.Parser.parse_string_result ~limits doc_text with
    | Error _ as e -> Result.map ignore e
    | Ok source ->
      let ctx = Clip_run.create () in
      Result.map ignore
        (Clip_core.Engine.run_result ~ctx ~limits ~backend ~plan:`Indexed m
           source)
  in
  let pipeline () =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | Error _, _ -> acc
        | _, (Error _ as e) -> e
        | Ok (), Ok () -> acc)
      (Ok ())
      (Clip_par.map_results ~jobs:1 task [ `Tgd; `Xquery ])
  in
  let is_fault d =
    String.equal d.Clip_diag.code Clip_diag.Codes.fault_transient
    || String.equal d.Clip_diag.code Clip_diag.Codes.fault_permanent
  in
  let show ds = String.concat "," (List.map (fun d -> d.Clip_diag.code) ds) in
  for i = 1 to !fault_iterations do
    let site, from, kind = Clip_fault.arm_seeded ~seed:(!seed + (i * 7919)) in
    let armed_desc =
      Printf.sprintf "%s hit %d (%s)" site from
        (match kind with
        | Clip_fault.Transient -> "transient"
        | Clip_fault.Permanent -> "permanent")
    in
    if !verbose then Printf.eprintf "fault iter %d: %s\n" i armed_desc;
    let r = match pipeline () with r -> Ok r | exception e -> Error e in
    let fired = Clip_fault.fired () in
    Clip_fault.disarm ();
    (match r with
    | Error e ->
      incr failures;
      Printf.eprintf "FAILURE [fault]: %s escaped as exception %s\n" armed_desc
        (Printexc.to_string e)
    | Ok (Error ds) when fired > 0 && List.exists is_fault ds -> ()
    | Ok (Ok ()) when fired = 0 -> ()
    | Ok (Ok ()) ->
      incr failures;
      Printf.eprintf "FAILURE [fault]: %s fired %d time(s) yet run was Ok\n"
        armed_desc fired
    | Ok (Error ds) when fired = 0 ->
      incr failures;
      Printf.eprintf "FAILURE [fault]: unfired %s, run failed [%s]\n" armed_desc
        (show ds)
    | Ok (Error ds) ->
      incr failures;
      Printf.eprintf "FAILURE [fault]: %s surfaced without CLIP-FLT code [%s]\n"
        armed_desc (show ds));
    match pipeline () with
    | Ok () -> ()
    | Error ds ->
      incr failures;
      Printf.eprintf "FAILURE [fault]: state poisoned after %s: [%s]\n"
        armed_desc (show ds)
    | exception e ->
      incr failures;
      Printf.eprintf "FAILURE [fault]: post-disarm exception after %s: %s\n"
        armed_desc (Printexc.to_string e)
  done;
  if !fault_iterations > 0 then
    Printf.printf "fault sweep: %d seeded site iterations\n%!" !fault_iterations

(* --- Algebra differential sweep (--algebra N) ------------------------- *)

let algebra_iterations = ref 0

(* The identity mapping over a schema: one driven builder per repeating
   element, an identity value mapping per leaf below a repetition —
   the same generator as the differential harness
   (test/test_algebra.ml). *)
let identity_mapping (s : Clip_schema.Schema.t) : Clip_core.Mapping.t =
  let module Schema = Clip_schema.Schema in
  let module Path = Clip_schema.Path in
  let module Mapping = Clip_core.Mapping in
  let n = ref 0 in
  let rec walk path (e : Schema.element) =
    let kids =
      List.concat_map
        (fun (c : Schema.element) -> walk (Path.child path c.Schema.name) c)
        e.Schema.children
    in
    if Schema.is_repeating s path then begin
      incr n;
      [
        Mapping.node
          ~id:(Printf.sprintf "id%d" !n)
          ~output:path ~children:kids
          [ Mapping.input ~var:(Printf.sprintf "x%d" !n) path ];
      ]
    end
    else kids
  in
  let roots = walk (Schema.root_path s) s.Schema.root in
  let values =
    List.filter_map
      (fun q ->
        if Schema.repeating_ancestors s q <> [] then
          Some (Mapping.value [ q ] q)
        else None)
      (Schema.leaf_paths s)
  in
  Mapping.make ~source:s ~target:s ~roots values

(* Each iteration draws a random compose chain over the Table-I figure
   pool — the figure mapping bracketed by identity mappings over its
   endpoint schemas — a random plan mode and document representation,
   and checks the algebra's differential oracle on the paper instance:
   [Clip_algebra.Pipeline.run_result] (fused when the chain composes,
   staged otherwise) must agree with manual staged execution, both
   must be total (Ok or Error diagnostics, never an exception), and a
   rejected composition must carry only CLIP-ALG-* codes. *)
let algebra_sweep () =
  if !algebra_iterations > 0 then begin
    let module SF = Clip_scenarios.Figures in
    let instance = Clip_scenarios.Deptdb.instance in
    let show ds = String.concat "," (List.map (fun d -> d.Clip_diag.code) ds) in
    for i = 1 to !algebra_iterations do
      let sc = pick SF.all in
      let m = sc.SF.mapping in
      let id_s = identity_mapping m.Clip_core.Mapping.source in
      let id_t = identity_mapping m.Clip_core.Mapping.target in
      let chain =
        match rand 5 with
        | 0 -> [ m ]
        | 1 -> [ id_s; m ]
        | 2 -> [ id_s; id_s; m ]
        | 3 -> [ m; id_t ]
        | _ -> [ id_s; m; id_t ]
      in
      let plan = pick [ `Naive; `Indexed; `Auto ] in
      let repr = pick [ (`Tree : Clip_xml.Doc.repr); `Columnar ] in
      let mc = sc.SF.minimum_cardinality in
      if !verbose then
        Printf.eprintf "algebra iter %d: %s, %d stages\n" i sc.SF.name
          (List.length chain);
      (match Clip_algebra.Pipeline.plan chain with
       | Clip_algebra.Pipeline.Fused _ -> ()
       | Clip_algebra.Pipeline.Staged ds ->
         let alg d =
           String.length d.Clip_diag.code >= 8
           && String.equal (String.sub d.Clip_diag.code 0 8) "CLIP-ALG"
         in
         if ds = [] || not (List.for_all alg ds) then begin
           incr failures;
           Printf.eprintf
             "FAILURE [algebra]: iter %d (%s): rejection without CLIP-ALG \
              codes [%s]\n"
             i sc.SF.name (show ds)
         end
       | exception e ->
         incr failures;
         Printf.eprintf "FAILURE [algebra]: iter %d (%s): plan raised %s\n" i
           sc.SF.name (Printexc.to_string e));
      let piped =
        match
          Clip_algebra.Pipeline.run_result ~minimum_cardinality:mc ~plan ~repr
            chain instance
        with
        | r -> Ok r
        | exception e -> Error e
      in
      let staged =
        match
          Clip_core.Engine.run_staged_result ~minimum_cardinality:mc ~plan
            ~repr chain instance
        with
        | r -> Ok r
        | exception e -> Error e
      in
      match (piped, staged) with
      | Error e, _ | _, Error e ->
        incr failures;
        Printf.eprintf "FAILURE [algebra]: iter %d (%s): raised %s\n" i
          sc.SF.name (Printexc.to_string e)
      | Ok (Ok a), Ok (Ok b) ->
        if not (Clip_xml.Node.equal a b) then begin
          incr failures;
          Printf.eprintf
            "FAILURE [algebra]: iter %d (%s): pipeline and staged outputs \
             differ\n"
            i sc.SF.name
        end
      | Ok (Error _), Ok (Error _) -> ()
      | Ok (Ok _), Ok (Error ds) | Ok (Error ds), Ok (Ok _) ->
        incr failures;
        Printf.eprintf
          "FAILURE [algebra]: iter %d (%s): one execution path failed [%s]\n" i
          sc.SF.name (show ds)
    done;
    Printf.printf "algebra sweep: %d random chain iterations\n%!"
      !algebra_iterations
  end

(* --- Relational backend differential sweep (--rel N) ------------------ *)

let rel_iterations = ref 0

(* The fixed join workload: a proper company ⋈ grant join with both
   attribute and value-child columns, scaled with random (and
   deliberately colliding or dangling) keys per iteration. *)
let rel_join_dsl =
  {|schema db {
  company [0..*] {
    @cid: int
    cname: string
  }
  grant [0..*] {
    @gid: int
    @recipient: int
    amount: int
  }
  ref grant.@recipient -> company.@cid
}
schema web {
  organization [0..*] {
    @name: string
    funding [0..*] {
      @fid: int
      @amount: int
    }
  }
}
mapping {
  node n2: db.company as $c -> web.organization {
    node n1: db.grant as $g -> web.organization.funding where $c.@cid = $g.@recipient
  }
  value db.company.cname.value -> web.organization.@name
  value db.grant.@gid -> web.organization.funding.@fid
  value db.grant.amount.value -> web.organization.funding.@amount
}|}

(* Each iteration draws a random relational database (1-3 tables, 1-4
   columns, an optional foreign key), random row contents with
   deliberately colliding keys, and runs the identity mapping over the
   canonical XML encoding on both the [`Tgd] and [`Rel] backends under
   a random plan mode and document representation. Every third
   iteration instead scales the fixed join mapping above with random
   row counts and dangling references, exercising the hash-join path
   and the value-child columns. Oracle: the relational backend must be
   byte-identical to the tgd backend whenever both succeed, must carry
   the same diagnostic codes whenever both fail, and both must be
   total. The canonical encoding itself must round-trip:
   [Relational.to_schema_result] is [Ok] on every generated database
   and [Clip_rel.Shape.of_schema] accepts the result. *)
let rel_sweep () =
  if !rel_iterations > 0 then begin
    let module R = Clip_schema.Relational in
    let join_mapping =
      match Clip_core.Dsl.parse_result rel_join_dsl with
      | Ok m -> m
      | Error _ -> failwith "rel sweep: fixture mapping does not parse"
    in
    let random_db () =
      let ntab = 1 + rand 3 in
      let tables =
        List.init ntab (fun i ->
            let ncol = 1 + rand 3 in
            R.table
              (Printf.sprintf "t%d" i)
              (List.init ncol (fun j ->
                   R.column
                     (Printf.sprintf "c%d_%d" i j)
                     (if j = 0 || rand 2 = 0 then Clip_schema.Atomic_type.T_int
                      else Clip_schema.Atomic_type.T_string))))
      in
      let foreign_keys =
        if ntab >= 2 && rand 2 = 0 then
          [
            {
              R.fk_table = "t1";
              fk_columns = [ "c1_0" ];
              pk_table = "t0";
              pk_columns = [ "c0_0" ];
            };
          ]
        else []
      in
      R.database ~foreign_keys "db" tables
    in
    let random_rows (db : R.database) =
      List.map
        (fun (t : R.table) ->
          ( t.R.table_name,
            List.init (rand 6) (fun _ ->
                List.map
                  (fun (c : R.column) ->
                    match c.R.col_type with
                    | Clip_schema.Atomic_type.T_int ->
                      Clip_xml.Atom.Int (rand 9)
                    | _ -> Clip_xml.Atom.String (pick [ "a"; "b"; "cd"; "" ]))
                  t.R.columns) ))
        db.R.tables
    in
    let random_join_instance () =
      let n = 1 + rand 6 in
      let b = Buffer.create 512 in
      Buffer.add_string b "<db>";
      for _ = 1 to n do
        Printf.bprintf b "<company cid=\"%d\"><cname>%s</cname></company>"
          (rand (n + 2))
          (pick [ "Acme"; "Globex"; "Initech" ])
      done;
      for j = 1 to rand ((3 * n) + 1) do
        Printf.bprintf b
          "<grant gid=\"%d\" recipient=\"%d\"><amount>%d</amount></grant>" j
          (rand (n + 3))
          (j * 10)
      done;
      Buffer.add_string b "</db>";
      Clip_xml.Parser.parse_string (Buffer.contents b)
    in
    let codes ds = List.map (fun d -> d.Clip_diag.code) ds in
    let show ds = String.concat "," (codes ds) in
    let differential i label m doc =
      let plan = pick [ `Naive; `Indexed; `Auto ] in
      let repr = pick [ (`Tree : Clip_xml.Doc.repr); `Columnar ] in
      let run backend =
        match Clip_core.Engine.run_result ~limits ~backend ~plan ~repr m doc with
        | r -> Ok r
        | exception e -> Error e
      in
      match (run `Tgd, run `Rel) with
      | Error e, _ | _, Error e ->
        incr failures;
        Printf.eprintf "FAILURE [rel]: iter %d (%s): raised %s\n" i label
          (Printexc.to_string e)
      | Ok (Ok a), Ok (Ok b) ->
        if not (Clip_xml.Node.equal a b) then begin
          incr failures;
          Printf.eprintf
            "FAILURE [rel]: iter %d (%s): backend outputs differ\n" i label
        end
      | Ok (Error da), Ok (Error db) ->
        if codes da <> codes db then begin
          incr failures;
          Printf.eprintf
            "FAILURE [rel]: iter %d (%s): diagnostics differ: tgd [%s] vs rel \
             [%s]\n"
            i label (show da) (show db)
        end
      | Ok (Ok _), Ok (Error ds) | Ok (Error ds), Ok (Ok _) ->
        incr failures;
        Printf.eprintf "FAILURE [rel]: iter %d (%s): one backend failed [%s]\n"
          i label (show ds)
    in
    for i = 1 to !rel_iterations do
      if i mod 3 = 0 then begin
        if !verbose then Printf.eprintf "rel iter %d: join workload\n" i;
        differential i "join" join_mapping (random_join_instance ())
      end
      else begin
        let db = random_db () in
        if !verbose then
          Printf.eprintf "rel iter %d: %d random table(s)\n" i
            (List.length db.R.tables);
        match R.to_schema_result db with
        | Error ds ->
          incr failures;
          Printf.eprintf
            "FAILURE [rel]: iter %d: canonical encoding rejected [%s]\n" i
            (show ds)
        | Ok s ->
          (match Clip_rel.Shape.of_schema s with
           | Error reason ->
             incr failures;
             Printf.eprintf
               "FAILURE [rel]: iter %d: encoded schema not relational-shaped: \
                %s\n"
               i reason
           | Ok _ ->
             differential i "identity" (identity_mapping s)
               (R.instance db (random_rows db)))
      end
    done;
    Printf.printf "rel sweep: %d backend differential iterations\n%!"
      !rel_iterations
  end

(* --- Main loop -------------------------------------------------------- *)

let () =
  let args =
    [
      ("--iterations", Arg.Set_int iterations, "N  number of fuzz iterations");
      ("--seed", Arg.Set_int seed, "S  PRNG seed");
      ("--corpus", Arg.Set_string corpus_dir, "DIR  corpus directory (default: examples)");
      ( "--faults",
        Arg.Set_int fault_iterations,
        "N  seeded fault-injection sweep iterations (default: 0)" );
      ( "--algebra",
        Arg.Set_int algebra_iterations,
        "N  random compose-chain differential sweep iterations (default: 0)" );
      ( "--rel",
        Arg.Set_int rel_iterations,
        "N  rel-vs-tgd backend differential sweep iterations (default: 0)" );
      ("--verbose", Arg.Set verbose, "  print each iteration");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [--iterations N] [--seed S]";
  init_rng !seed;
  guard_checks ();
  let corpus = load_corpus () in
  Printf.printf "corpus: %d entries; %d iterations, seed %d\n%!"
    (List.length corpus) !iterations !seed;
  for i = 1 to !iterations do
    let base = pick corpus in
    let input =
      match rand 10 with
      | 0 -> splice (pick corpus) (pick corpus)
      | _ ->
        let rounds = 1 + rand 8 in
        let rec go s k = if k = 0 then s else go (mutate s) (k - 1) in
        go base rounds
    in
    let name, f = pick targets in
    if !verbose then Printf.eprintf "iter %d: %s (%d bytes)\n" i name (String.length input);
    run_target name f input
  done;
  fault_sweep ();
  algebra_sweep ();
  rel_sweep ();
  if !failures > 0 then begin
    Printf.eprintf "fuzz: %d failure(s) after %d iterations\n" !failures !iterations;
    exit 1
  end
  else Printf.printf "fuzz: ok — %d iterations, 0 failures\n" !iterations
