The relational backend. A mapping whose source schema is
relational-shaped — flat tables under a bare root — can run as
columnar relational algebra (--backend rel) and print as SQL
(clip sql). Write the join mapping over a company/grant database:

  $ cat > grants.clip <<'EOF'
  > schema db {
  >   company [0..*] {
  >     @cid: int
  >     cname: string
  >   }
  >   grant [0..*] {
  >     @gid: int
  >     @recipient: int
  >     amount: int
  >   }
  >   ref grant.@recipient -> company.@cid
  > }
  > schema web {
  >   organization [0..*] {
  >     @name: string
  >     funding [0..*] {
  >       @fid: int
  >       @amount: int
  >     }
  >   }
  > }
  > mapping {
  >   node n2: db.company as $c -> web.organization {
  >     node n1: db.grant as $g -> web.organization.funding where $c.@cid = $g.@recipient
  >   }
  >   value db.company.cname.value -> web.organization.@name
  >   value db.grant.@gid -> web.organization.funding.@fid
  >   value db.grant.amount.value -> web.organization.funding.@amount
  > }
  > EOF

  $ cat > db.xml <<'EOF'
  > <db><company cid="1"><cname>Acme</cname></company><company cid="2"><cname>Globex</cname></company><grant gid="7" recipient="1"><amount>100</amount></grant><grant gid="7" recipient="2"><amount>250</amount></grant><grant gid="9" recipient="2"><amount>50</amount></grant></db>
  > EOF

The emitted SQL: one SELECT per flattened tgd rule.

  $ clip sql grants.clip
  -- mapping over relational source db (company, grant)
  
  -- rule 0: populates o'
  SELECT c.cname AS name
  FROM company AS c
  ;
  
  -- rule 1: populates o'/f'
  SELECT g.gid AS fid, g.amount AS amount
  FROM company AS c, grant AS g
  WHERE c.cid = g.recipient
  ;

Running on the rel backend is byte-identical to the tgd backend:

  $ clip run grants.clip -i db.xml --backend rel > out-rel.xml
  $ clip run grants.clip -i db.xml --backend tgd > out-tgd.xml
  $ cmp out-rel.xml out-tgd.xml && cat out-rel.xml
  <web>
    <organization name="Acme">
      <funding fid="7" amount="100"/>
    </organization>
    <organization name="Globex">
      <funding fid="7" amount="250"/>
      <funding fid="9" amount="50"/>
    </organization>
  </web>

Same under every plan mode:

  $ clip run grants.clip -i db.xml --backend rel --plan naive | cmp - out-tgd.xml
  $ clip run grants.clip -i db.xml --backend rel --plan indexed | cmp - out-tgd.xml

EXPLAIN shows the store statistics and the per-rule physical plans:

  $ clip explain grants.clip -i db.xml --backend rel
  backend: rel
  plan: auto
  store: 2 table(s), 5 row(s)
  strategy: physical plans over the column store, cost-based joins (exact row counts)
  rule /: for c in db.company
    plan: scan(c)
    stage 0: scan c (est 2)
  rule /0: for g in db.grant where c.@cid = g.@recipient
    plan: scan(g/1)
    stage 0: scan g (est 3) [1 filter]
    note: eq(c,g): probe side reads no chain generator, kept as pushed-down filter

A nested (non-relational) source is rejected statically with
CLIP-REL-003 — both by clip sql and by the rel backend itself:

  $ cat > nested.clip <<'EOF'
  > schema source {
  >   dept [1..*] {
  >     dname: string
  >     regEmp [0..*] { ename: string }
  >   }
  > }
  > schema target {
  >   department [1..*] { employee [0..*] { @name: string } }
  > }
  > mapping {
  >   node d: source.dept as $d -> target.department {
  >     node e: source.dept.regEmp as $r -> target.department.employee
  >   }
  >   value source.dept.regEmp.ename.value -> target.department.employee.@name
  > }
  > EOF

  $ cat > nested.xml <<'EOF'
  > <source><dept><dname>ICT</dname><regEmp><ename>John</ename></regEmp></dept></source>
  > EOF

  $ clip sql nested.clip
  error[CLIP-REL-003]: the source schema is not relational-shaped: column <regEmp> of table <dept> repeats
    hint: the rel backend needs a relational-shaped source (tables under a bare root); use --backend tgd for nested sources
  [1]

  $ clip run nested.clip -i nested.xml --backend rel
  error[CLIP-REL-003]: the source schema is not relational-shaped: column <regEmp> of table <dept> repeats
    hint: the rel backend needs a relational-shaped source (tables under a bare root); use --backend tgd for nested sources
  [1]

An unknown backend name is a usage error (exit 124), caught by the
registry-derived parser:

  $ clip run grants.clip -i db.xml --backend nosuch 2>/dev/null
  [124]
