Streaming ingestion and single-document sharding. Write the paper's
Fig. 4 mapping and a source instance with three departments (three
shard units):

  $ cat > fig4.clip <<'EOF'
  > schema source {
  >   dept [1..*] {
  >     dname: string
  >     regEmp [0..*] { ename: string  sal: int }
  >   }
  > }
  > schema target {
  >   department [1..*] {
  >     employee [0..*] { @name: string }
  >   }
  > }
  > mapping {
  >   node d: source.dept as $d -> target.department {
  >     node e: source.dept.regEmp as $r -> target.department.employee
  >       where $r.sal.value > 11000
  >   }
  >   value source.dept.regEmp.ename.value -> target.department.employee.@name
  > }
  > EOF

  $ cat > source.xml <<'EOF'
  > <source>
  >   <dept><dname>ICT</dname>
  >     <regEmp><ename>John Smith</ename><sal>10000</sal></regEmp>
  >     <regEmp><ename>Andrew Clarence</ename><sal>12000</sal></regEmp>
  >   </dept>
  >   <dept><dname>Sales</dname>
  >     <regEmp><ename>Richard Dawson</ename><sal>13000</sal></regEmp>
  >   </dept>
  >   <dept><dname>Legal</dname>
  >     <regEmp><ename>Steven Aiking</ename><sal>9000</sal></regEmp>
  >   </dept>
  > </source>
  > EOF

The whole-document run is the oracle:

  $ clip run fig4.clip -i source.xml
  <target>
    <department>
      <employee name="Andrew Clarence"/>
    </department>
    <department>
      <employee name="Richard Dawson"/>
    </department>
    <department/>
  </target>

--stream feeds the file through the incremental lexer and shards the
document at the mapping's shard unit; the output is byte-identical:

  $ clip run fig4.clip -i source.xml --stream
  <target>
    <department>
      <employee name="Andrew Clarence"/>
    </department>
    <department>
      <employee name="Richard Dawson"/>
    </department>
    <department/>
  </target>

--shard-bytes bounds each shard (here: one department per shard) and
--jobs evaluates shards on parallel domains — still byte-identical:

  $ clip run fig4.clip -i source.xml --stream --shard-bytes 64 -j 2
  <target>
    <department>
      <employee name="Andrew Clarence"/>
    </department>
    <department>
      <employee name="Richard Dawson"/>
    </department>
    <department/>
  </target>

EXPLAIN with a sharding flag appends the resolved decision — here the
designated cut:

  $ clip explain fig4.clip -i source.xml --stream | tail -n 1
  sharding: cut at source.dept (unit <dept>, shards carry the container spine only)

A mapping that reads the repeated region outside its shard loop (the
employee node sits at top level, not inside the department node) is
not safely shardable; EXPLAIN says why:

  $ cat > nocontext.clip <<'EOF'
  > schema source {
  >   dept [1..*] {
  >     dname: string
  >     regEmp [0..*] { ename: string  sal: int }
  >   }
  > }
  > schema target {
  >   department [1..*] {
  >     employee [0..*] { @name: string }
  >   }
  > }
  > mapping {
  >   node d: source.dept as $d -> target.department
  >   node e: source.dept.regEmp as $r -> target.department.employee
  >     where $r.sal.value > 11000
  >   value source.dept.regEmp.ename.value -> target.department.employee.@name
  > }
  > EOF

  $ clip explain nocontext.clip -i source.xml --stream | tail -n 1
  sharding: whole-document fallback - source.dept reads the repeated region outside the shard loop

The sharding decision is a property of the mapping and the document,
not of the execution backend: every backend resolves the same cut for
the shardable mapping and the same fallback (with the same reason) for
the unshardable one.

  $ clip explain fig4.clip -i source.xml --stream --backend tgd | tail -n 1
  sharding: cut at source.dept (unit <dept>, shards carry the container spine only)

  $ clip explain nocontext.clip -i source.xml --stream --backend tgd | tail -n 1
  sharding: whole-document fallback - source.dept reads the repeated region outside the shard loop

  $ clip explain fig4.clip -i source.xml --stream --backend xquery | tail -n 1
  sharding: cut at source.dept (unit <dept>, shards carry the container spine only)

  $ clip explain nocontext.clip -i source.xml --stream --backend xquery | tail -n 1
  sharding: whole-document fallback - source.dept reads the repeated region outside the shard loop

  $ clip explain fig4.clip -i source.xml --stream --backend xquery-text | tail -n 1
  sharding: cut at source.dept (unit <dept>, shards carry the container spine only)

  $ clip explain nocontext.clip -i source.xml --stream --backend xquery-text | tail -n 1
  sharding: whole-document fallback - source.dept reads the repeated region outside the shard loop

--stream still runs such a mapping — it materialises the document and
falls back to the whole-document evaluation:

  $ clip run nocontext.clip -i source.xml --stream
  <target>
    <department>
      <employee name="Andrew Clarence"/>
      <employee name="Richard Dawson"/>
    </department>
    <department>
      <employee name="Andrew Clarence"/>
      <employee name="Richard Dawson"/>
    </department>
    <department>
      <employee name="Andrew Clarence"/>
      <employee name="Richard Dawson"/>
    </department>
  </target>
