The mapping algebra at the CLI: compose, pipelines (--then) and
equivalence checking (--equiv). An identity mapping over a small
source schema, and a rename into a different target schema:

  $ cat > id.clip <<'EOF'
  > schema src { dept [1..*] { dname: string } }
  > schema src { dept [1..*] { dname: string } }
  > mapping {
  >   node d: src.dept as $d -> src.dept
  >   value src.dept.dname.value -> src.dept.dname.value
  > }
  > EOF

  $ cat > m.clip <<'EOF'
  > schema src { dept [1..*] { dname: string } }
  > schema tgt { department [1..*] { @name: string } }
  > mapping {
  >   node d: src.dept as $d -> tgt.department
  >   value src.dept.dname.value -> tgt.department.@name
  > }
  > EOF

  $ cat > src.xml <<'EOF'
  > <src><dept><dname>ICT</dname></dept><dept><dname>HR</dname></dept></src>
  > EOF

clip compose unfolds the intermediate schema away and prints one
mapping straight from source to target:

  $ clip compose id.clip m.clip
  schema src {
    dept [1..*] {
      dname: string
    }
  }
  
  schema tgt {
    department [1..*] {
      @name: string
    }
  }
  
  mapping {
    node a1: src.dept as $c1 -> tgt.department
    value src.dept.dname.value -> tgt.department.@name
  }



clip run --then executes the chain; here it composes, so one fused
mapping runs with no intermediate instance:

  $ clip run id.clip -i src.xml --then m.clip
  <tgt>
    <department name="ICT"/>
    <department name="HR"/>
  </tgt>

EXPLAIN with --then ends with the fusion decision:

  $ clip explain id.clip -i src.xml --then m.clip | tail -n 1
  fusion: fused into one composed mapping

A grouping (Skolem) producer is outside the composable fragment: the
group node memoises one project per name across departments, and
unfolding it under the next stage would lose that memoisation. The
composition is rejected with a stable code:

  $ cat > group.clip <<'EOF'
  > schema source {
  >   dept [1..*] {
  >     dname: string
  >     Proj [0..*] { @pid: int  pname: string }
  >     regEmp [0..*] { @pid: int  ename: string  sal: int }
  >   }
  >   ref dept.regEmp.@pid -> dept.Proj.@pid
  > }
  > schema t {
  >   project [1..*] { @name: string  employee [0..*] { @name: string } }
  > }
  > mapping {
  >   group g: source.dept.Proj as $pj by $pj.pname.value -> t.project {
  >     node e: source.dept.Proj as $p2, source.dept.regEmp as $r
  >       -> t.project.employee
  >       where $p2.@pid = $r.@pid
  >   }
  >   value source.dept.Proj.pname.value -> t.project.@name
  >   value source.dept.regEmp.ename.value -> t.project.employee.@name
  > }
  > EOF

  $ cat > id_t.clip <<'EOF'
  > schema t {
  >   project [1..*] { @name: string  employee [0..*] { @name: string } }
  > }
  > schema t {
  >   project [1..*] { @name: string  employee [0..*] { @name: string } }
  > }
  > mapping {
  >   node p: t.project as $p -> t.project {
  >     node e: t.project.employee as $e -> t.project.employee
  >   }
  >   value t.project.@name -> t.project.@name
  >   value t.project.employee.@name -> t.project.employee.@name
  > }
  > EOF

  $ clip compose group.clip id_t.clip
  error[CLIP-ALG-002]: compose: intermediate element t.project is produced by a grouping node; unfolding would lose its memoisation
  [1]

Rejection is not failure: run --then degrades to staged execution
(each stage's output feeding the next) and still produces the chain's
result:

  $ cat > depts.xml <<'EOF'
  > <source>
  >   <dept><dname>ICT</dname>
  >     <Proj pid="1"><pname>Appliances</pname></Proj>
  >     <regEmp pid="1"><ename>John Smith</ename><sal>10000</sal></regEmp>
  >   </dept>
  >   <dept><dname>Sales</dname>
  >     <Proj pid="2"><pname>Appliances</pname></Proj>
  >     <regEmp pid="2"><ename>Richard Dawson</ename><sal>13000</sal></regEmp>
  >   </dept>
  > </source>
  > EOF

  $ clip run group.clip -i depts.xml --then id_t.clip
  <t>
    <project name="Appliances">
      <employee name="John Smith"/>
      <employee name="Richard Dawson"/>
    </project>
  </t>

  $ clip explain group.clip -i depts.xml --then id_t.clip | tail -n 1
  fusion: staged (CLIP-ALG-002: compose: intermediate element t.project is produced by a grouping node; unfolding would lose its memoisation)

check --equiv compares two mappings logically, by mutual containment
of their compiled tgd rules:

  $ clip check m.clip --equiv m.clip
  equivalent

Dropping a filter strictly widens a mapping — containment holds one
way only, and the verdict says which:

  $ cat > f_all.clip <<'EOF'
  > schema src { dept [1..*] { dname: string  sal: int } }
  > schema tgt { department [1..*] { @name: string } }
  > mapping {
  >   node d: src.dept as $d -> tgt.department
  >   value src.dept.dname.value -> tgt.department.@name
  > }
  > EOF

  $ cat > f_some.clip <<'EOF'
  > schema src { dept [1..*] { dname: string  sal: int } }
  > schema tgt { department [1..*] { @name: string } }
  > mapping {
  >   node d: src.dept as $d -> tgt.department
  >     where $d.sal.value > 10000
  >   value src.dept.dname.value -> tgt.department.@name
  > }
  > EOF

  $ clip check f_all.clip --equiv f_some.clip
  not provably equivalent: the first mapping contains the second, but not vice versa
  [1]
