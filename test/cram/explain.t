EXPLAIN is static: it prints the resolved strategy and the per-rule
physical plan without executing anything, so its output is pinned here
verbatim. Write the paper's Fig. 7-style join mapping and a source
instance:

  $ cat > join.clip <<'EOF'
  > schema source {
  >   dept [1..*] {
  >     dname: string
  >     Proj [0..*] { @pid: int  pname: string }
  >     regEmp [0..*] { @pid: int  ename: string  sal: int }
  >   }
  >   ref dept.regEmp.@pid -> dept.Proj.@pid
  > }
  > schema target {
  >   department [1..*] {
  >     project [0..*] { @name: string }
  >     employee [0..*] { @name: string }
  >   }
  > }
  > mapping {
  >   node d: source.dept as $d -> target.department {
  >     node e: source.dept.Proj as $p, source.dept.regEmp as $r -> target.department.employee
  >       where $p.@pid = $r.@pid
  >   }
  >   value source.dept.regEmp.ename.value -> target.department.employee.@name
  > }
  > EOF

  $ cat > source.xml <<'EOF'
  > <source>
  >   <dept><dname>ICT</dname>
  >     <Proj pid="1"><pname>Appliances</pname></Proj>
  >     <regEmp pid="1"><ename>John Smith</ename><sal>10000</sal></regEmp>
  >     <regEmp pid="1"><ename>Andrew Clarence</ename><sal>12000</sal></regEmp>
  >   </dept>
  > </source>
  > EOF

The default [auto] mode sees a paper-sized document and claims the
direct interpreter:

  $ clip explain join.clip -i source.xml
  backend: tgd
  plan: auto
  document: 20 nodes
  strategy: direct interpreter (20 nodes, below the 128-node planning threshold)
  rule /: for d in source.dept
    every generator: nested-loop scan; conditions checked innermost
  rule /0: for p in d.Proj, r in d.regEmp where p.@pid = r.@pid
    every generator: nested-loop scan; conditions checked innermost

Forcing the physical plans surfaces the hash join with the planner's
note on why it was chosen:

  $ clip explain join.clip -i source.xml --plan indexed
  backend: tgd
  plan: indexed
  document: 20 nodes
  strategy: physical plans, forced hash joins, tag index on
  rule /: for d in source.dept
    plan: scan(d)
    stage 0: scan d (est ?)
  rule /0: for p in d.Proj, r in d.regEmp where p.@pid = r.@pid
    plan: scan(p) probe(r@0)
    stage 0: scan p (est ?)
    stage 1: hash probe r (built at step 0, est ?) [1 residual filter]
    note: eq(p,r): hash join over r (forced)

The naive oracle never plans:

  $ clip explain join.clip -i source.xml --plan naive
  backend: tgd
  plan: naive
  document: 20 nodes
  strategy: naive interpreter (forced)
  rule /: for d in source.dept
    every generator: nested-loop scan; conditions checked innermost
  rule /0: for p in d.Proj, r in d.regEmp where p.@pid = r.@pid
    every generator: nested-loop scan; conditions checked innermost

The generated-XQuery backend explains its FLWOR blocks with the same
plan layer underneath:

  $ clip explain join.clip -i source.xml --backend xquery --plan indexed
  backend: xquery
  plan: indexed
  document: 20 nodes
  strategy: physical plans, forced hash joins, tag index on
  flwor #1: for $d in source/dept
    plan: scan(d)
    stage 0: scan d (est ?)
  flwor #2: for $p in $d/Proj, for $r in $d/regEmp where $p/@pid = $r/@pid
    plan: scan(p) probe(r@0)
    stage 0: scan p (est ?)
    stage 1: hash probe r (built at step 0, est ?) [1 residual filter]
    note: eq(p,r): hash join over r (forced)

[run --trace] keeps stdout clean (instance plus lineage only); phase
timings and counters go to stderr. The counters are deterministic,
the timings are not, so only the counter block is pinned:

  $ clip run join.clip -i source.xml --trace 2>/dev/null
  <target>
    <department>
      <employee name="John Smith"/>
      <employee name="Andrew Clarence"/>
    </department>
  </target>
  
  /0 <- <dept>
  /0/0 <- <dept>, <Proj>, <regEmp>
  /0/1 <- <dept>, <Proj>, <regEmp>


  $ clip run join.clip -i source.xml --trace 2>&1 >/dev/null | sed -n '/counters:/,$p'
  counters:
    nodes_scanned    = 13
    child_steps      = 5
    lim_ticks        = 29
    ctl_checks       = 1
