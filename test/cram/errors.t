Failure modes: every error is a diagnostic with a stable CLIP-* code,
rendered with a source span and caret where one exists. Exit code 1
means "input read but rejected"; cmdliner usage errors are 124.

A mapping file with a syntax error — the diagnostic points at the line:

  $ cat > syntax.clip <<'EOF'
  > schema source { a [0..*] { v: int } }
  > schema target { t [0..*] { @x: int } }
  > mapping {
  >   node n: source.a as -> target.t
  > }
  > EOF
  $ clip compile syntax.clip
  error[CLIP-MAP-001]: expected "$", found ->
    --> line 4, column 23
     |
   4 |   node n: source.a as -> target.t
     |                       ^^
  [1]

A schema error inside the mapping file keeps its own code:

  $ cat > badcard.clip <<'EOF'
  > schema source { a [9..1] { v: int } }
  > schema target { t [0..*] { @x: int } }
  > mapping {
  >   node n: source.a as $p -> target.t
  > }
  > EOF
  $ clip validate badcard.clip
  error[CLIP-SCH-002]: invalid cardinality [9..1]
    --> line 1, column 23
     |
   1 | schema source { a [9..1] { v: int } }
     |                       ^
  [1]

`check FILE` prints every diagnostic without stopping at the first:

  $ cat > multi.clip <<'EOF'
  > schema s { a [0..*] { x: string  b [0..*] { y: string } } }
  > schema t { c [0..*] { @y: string  @z: string } }
  > mapping {
  >   node n: s.a as $a -> t.c
  >   value s.a.b.y.value -> t.c.@y
  >   value s.a.b.y.value -> t.c.@z
  > }
  > EOF
  $ clip check multi.clip
  error[CLIP-VAL-unanchored-source]: value mapping to t.c.@y: source s.a.b.y.value sits inside a repeating element not bounded by a builder
  
  error[CLIP-VAL-unanchored-source]: value mapping to t.c.@z: source s.a.b.y.value sits inside a repeating element not bounded by a builder
  [1]

A clean mapping reports success and exits 0:

  $ cat > ok.clip <<'EOF'
  > schema s { a [0..*] { x: string } }
  > schema t { c [0..*] { @x: string } }
  > mapping {
  >   node n: s.a as $a -> t.c
  >   value s.a.x.value -> t.c.@x
  > }
  > EOF
  $ clip check ok.clip
  ok: no diagnostics

Malformed XML input to `run` is a spanned CLIP-XML-001:

  $ cat > broken.xml <<'EOF'
  > <s><a><x>hello</x></a>
  > EOF
  $ clip run ok.clip -i broken.xml
  error[CLIP-XML-001]: unterminated element <s>
    --> line 2, column 1
     |
   2 | 
     | ^
  [1]

A source instance whose root does not match the mapping is caught at
execution time with a tgd-engine diagnostic:

  $ printf '<wrong/>' > wrong.xml
  $ clip run ok.clip -i wrong.xml
  error[CLIP-TGD-001]: source root is <wrong>, the mapping expects <s>
  [1]

A missing file is caught by cmdliner's argument validation, so it is a
usage error (124), not a diagnostic:

  $ clip validate does-not-exist.clip
  clip: MAPPING argument: no 'does-not-exist.clip' file or directory
  Usage: clip validate [OPTION]… MAPPING
  Try 'clip validate --help' or 'clip --help' for more information.
  [124]

An unsupported XSD construct:

  $ cat > bad.xsd <<'EOF'
  > <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  >   <xs:element name="r" maxOccurs="lots" type="xs:string"/>
  > </xs:schema>
  > EOF
  $ clip schema bad.xsd --to dsl
  error[CLIP-SCH-003]: bad maxOccurs "lots"
  [1]

Usage errors (unknown subcommand) exit 124:

  $ clip frobnicate 2>/dev/null
  [124]
