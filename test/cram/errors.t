Failure modes: every error is a diagnostic with a stable CLIP-* code,
rendered with a source span and caret where one exists. Exit code 1
means "input read but rejected"; cmdliner usage errors are 124.

A mapping file with a syntax error — the diagnostic points at the line:

  $ cat > syntax.clip <<'EOF'
  > schema source { a [0..*] { v: int } }
  > schema target { t [0..*] { @x: int } }
  > mapping {
  >   node n: source.a as -> target.t
  > }
  > EOF
  $ clip compile syntax.clip
  error[CLIP-MAP-001]: expected "$", found ->
    --> line 4, column 23
     |
   4 |   node n: source.a as -> target.t
     |                       ^^
  [1]

A schema error inside the mapping file keeps its own code:

  $ cat > badcard.clip <<'EOF'
  > schema source { a [9..1] { v: int } }
  > schema target { t [0..*] { @x: int } }
  > mapping {
  >   node n: source.a as $p -> target.t
  > }
  > EOF
  $ clip validate badcard.clip
  error[CLIP-SCH-002]: invalid cardinality [9..1]
    --> line 1, column 23
     |
   1 | schema source { a [9..1] { v: int } }
     |                       ^
  [1]

`check FILE` prints every diagnostic without stopping at the first:

  $ cat > multi.clip <<'EOF'
  > schema s { a [0..*] { x: string  b [0..*] { y: string } } }
  > schema t { c [0..*] { @y: string  @z: string } }
  > mapping {
  >   node n: s.a as $a -> t.c
  >   value s.a.b.y.value -> t.c.@y
  >   value s.a.b.y.value -> t.c.@z
  > }
  > EOF
  $ clip check multi.clip
  error[CLIP-VAL-unanchored-source]: value mapping to t.c.@y: source s.a.b.y.value sits inside a repeating element not bounded by a builder
  
  error[CLIP-VAL-unanchored-source]: value mapping to t.c.@z: source s.a.b.y.value sits inside a repeating element not bounded by a builder
  [1]

A clean mapping reports success and exits 0:

  $ cat > ok.clip <<'EOF'
  > schema s { a [0..*] { x: string } }
  > schema t { c [0..*] { @x: string } }
  > mapping {
  >   node n: s.a as $a -> t.c
  >   value s.a.x.value -> t.c.@x
  > }
  > EOF
  $ clip check ok.clip
  ok: no diagnostics

Malformed XML input to `run` is a spanned CLIP-XML-001:

  $ cat > broken.xml <<'EOF'
  > <s><a><x>hello</x></a>
  > EOF
  $ clip run ok.clip -i broken.xml
  error[CLIP-XML-001]: unterminated element <s>
    --> line 2, column 1
     |
   2 | 
     | ^
  [1]

A source instance whose root does not match the mapping is caught at
execution time with a tgd-engine diagnostic:

  $ printf '<wrong/>' > wrong.xml
  $ clip run ok.clip -i wrong.xml
  error[CLIP-TGD-001]: source root is <wrong>, the mapping expects <s>
  [1]

A missing file is caught by cmdliner's argument validation, so it is a
usage error (124), not a diagnostic:

  $ clip validate does-not-exist.clip
  clip: MAPPING argument: no 'does-not-exist.clip' file or directory
  Usage: clip validate [OPTION]… MAPPING
  Try 'clip validate --help' or 'clip --help' for more information.
  [124]

An unsupported XSD construct:

  $ cat > bad.xsd <<'EOF'
  > <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  >   <xs:element name="r" maxOccurs="lots" type="xs:string"/>
  > </xs:schema>
  > EOF
  $ clip schema bad.xsd --to dsl
  error[CLIP-SCH-003]: bad maxOccurs "lots"
  [1]

Usage errors (unknown subcommand) exit 124:

  $ clip frobnicate 2>/dev/null
  [124]

Batch semantics of repeated -i. Without --keep-going the run is
fail-fast: outputs stream in input order up to the first failing
input, only that failure is reported, and the exit code is 1:

  $ printf '<s><a><x>hello</x></a></s>' > good.xml
  $ clip run ok.clip -i good.xml -i wrong.xml -i good.xml
  <t>
    <c x="hello"/>
  </t>
  error[CLIP-TGD-001]: source root is <wrong>, the mapping expects <s>
  [1]

With --keep-going one poisoned input never aborts the batch: every
success prints in input order, each failure is reported under a
per-input header, and a summary line gives the tally. Exit code is 1
when anything failed:

  $ clip run ok.clip --keep-going -i good.xml -i wrong.xml -i good.xml
  <t>
    <c x="hello"/>
  </t>
  <t>
    <c x="hello"/>
  </t>
  clip: input wrong.xml: failed
  error[CLIP-TGD-001]: source root is <wrong>, the mapping expects <s>
  clip: 1 of 3 input(s) failed
  [1]

...and 0 when nothing did:

  $ clip run ok.clip --keep-going -i good.xml -i good.xml
  <t>
    <c x="hello"/>
  </t>
  <t>
    <c x="hello"/>
  </t>

Inputs that fail to parse participate in the same accounting:

  $ printf '<s><a><x>bye</x></a>' > truncated.xml
  $ clip run ok.clip --keep-going -i truncated.xml -i good.xml
  <t>
    <c x="hello"/>
  </t>
  clip: input truncated.xml: failed
  error[CLIP-XML-001]: unterminated element <s>
    --> line 1, column 21
     |
   1 | <s><a><x>bye</x></a>
     |                     ^
  clip: 1 of 2 input(s) failed
  [1]

An already-expired deadline surfaces as CLIP-LIM-005 before any work:

  $ clip run ok.clip -i good.xml --timeout-ms 0
  error[CLIP-LIM-005]: evaluation exceeded its deadline
    hint: raise the deadline (e.g. clip run --timeout-ms) if the evaluation is expected to take this long
  [1]

CLIP_FAULT arms one deterministic injected fault (site[:FROM[:KIND[:TIMES]]]):

  $ CLIP_FAULT=tgd.execute clip run ok.clip -i good.xml
  error[CLIP-FLT-002]: injected permanent fault at tgd.execute (hit 1)
    hint: permanent: retrying cannot help
  [1]

Under --keep-going the fault costs exactly its slot — here hit 2 is
the second input, and the other two still print:

  $ CLIP_FAULT=tgd.execute:2 clip run ok.clip --keep-going -i good.xml -i good.xml -i good.xml
  <t>
    <c x="hello"/>
  </t>
  <t>
    <c x="hello"/>
  </t>
  clip: input good.xml: failed
  error[CLIP-FLT-002]: injected permanent fault at tgd.execute (hit 2)
    hint: permanent: retrying cannot help
  clip: 1 of 3 input(s) failed
  [1]

A transient fault (CLIP-FLT-001) is recovered by --retries — the
re-attempt runs fault-free and the batch exits 0:

  $ CLIP_FAULT=tgd.execute:1:transient clip run ok.clip -i good.xml --retries 2
  <t>
    <c x="hello"/>
  </t>

A malformed CLIP_FAULT spec is a usage error (124), reported before
anything runs:

  $ CLIP_FAULT=nope clip run ok.clip -i good.xml
  clip: CLIP_FAULT: unknown fault site "nope" (known: xml.parse, plan.build, index.build, session.populate, tgd.execute, xquery.execute, par.task)
  [124]
