(* Error-path tests: every parser and evaluator must report failures
   as [Clip_diag] diagnostics with the documented stable code and, for
   parsers, an accurate source span. These pin the exact codes so a
   refactor cannot silently reshuffle them. *)

module D = Clip_diag
module Node = Clip_xml.Node
module Atom = Clip_xml.Atom

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* [expect_code code result] — the result is an [Error] whose first
   diagnostic carries [code]; returns that diagnostic. *)
let expect_code ?(msg = "diagnostic code") code = function
  | Ok _ -> Alcotest.failf "%s: expected Error [%s], got Ok" msg code
  | Error [] -> Alcotest.failf "%s: Error with no diagnostics" msg
  | Error (d : D.t list) ->
    checks msg code (List.hd d).code;
    List.hd d

let expect_span ?(msg = "span") ~line ~col (d : D.t) =
  match d.span with
  | None -> Alcotest.failf "%s: diagnostic %s has no span" msg d.code
  | Some s ->
    checki (msg ^ ": line") line s.line;
    checki (msg ^ ": col") col s.col

(* --- Parsers: codes and spans ----------------------------------------- *)

let xml_tests =
  [
    Alcotest.test_case "mismatched tag is CLIP-XML-001 with a span" `Quick (fun () ->
        let d =
          expect_code D.Codes.xml_syntax
            (Clip_xml.Parser.parse_string_result "<a>\n  <b>x</c>\n</a>")
        in
        expect_span ~line:2 ~col:11 d);
    Alcotest.test_case "truncated document is CLIP-XML-001" `Quick (fun () ->
        ignore (expect_code D.Codes.xml_syntax (Clip_xml.Parser.parse_string_result "<a><b>")));
    Alcotest.test_case "legacy wrapper still raises Parse_error" `Quick (fun () ->
        match Clip_xml.Parser.parse_string "<a" with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception Clip_xml.Parser.Parse_error _ -> ());
  ]

let schema_tests =
  [
    Alcotest.test_case "lexer error is CLIP-SCH-001 with a span" `Quick (fun () ->
        let d =
          expect_code D.Codes.schema_lexical
            (Clip_schema.Lexer.tokenize_result "schema s {\n  a ~ string\n}")
        in
        expect_span ~line:2 ~col:5 d);
    Alcotest.test_case "syntax error is CLIP-SCH-002" `Quick (fun () ->
        ignore
          (expect_code D.Codes.schema_syntax
             (Clip_schema.Dsl.parse_result "schema s { a: }")));
    Alcotest.test_case "unsupported XSD construct is CLIP-SCH-003" `Quick (fun () ->
        let xsd =
          "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\
           <xs:element name=\"r\" maxOccurs=\"lots\" type=\"xs:string\"/>\
           </xs:schema>"
        in
        ignore (expect_code D.Codes.xsd_unsupported (Clip_schema.Xsd.of_string_result xsd)));
    Alcotest.test_case "malformed XSD XML keeps the XML code" `Quick (fun () ->
        ignore (expect_code D.Codes.xml_syntax (Clip_schema.Xsd.of_string_result "<xs:schema>")));
  ]

let mapping_tests =
  [
    Alcotest.test_case "mapping syntax error is CLIP-MAP-001 with line" `Quick (fun () ->
        let src =
          "schema source { a [0..*] { v: int } }\n\
           schema target { t [0..*] { @x: int } }\n\
           mapping {\n\
          \  node n: source.a as -> target.t\n\
           }\n"
        in
        let d = expect_code D.Codes.mapping_syntax (Clip_core.Dsl.parse_result src) in
        (match d.span with
         | Some s -> checki "error on the node line" 4 s.line
         | None -> Alcotest.fail "mapping diagnostic has no span"));
    Alcotest.test_case "schema error inside a mapping file keeps CLIP-SCH code" `Quick
      (fun () ->
        let src = "schema source { a [9..1] { v: int } }" in
        match Clip_core.Dsl.parse_result src with
        | Ok _ -> Alcotest.fail "expected Error"
        | Error (d :: _) ->
          checkb "is a CLIP-SCH-* code" true
            (String.length d.D.code >= 8 && String.sub d.D.code 0 8 = "CLIP-SCH")
        | Error [] -> Alcotest.fail "no diagnostics");
  ]

let xquery_tests =
  [
    Alcotest.test_case "syntax error is CLIP-XQ-001 with a span" `Quick (fun () ->
        let d =
          expect_code D.Codes.xquery_syntax
            (Clip_xquery.Parser.parse_string_result "for $x in")
        in
        (match d.D.span with
         | Some _ -> ()
         | None -> Alcotest.fail "xquery diagnostic has no span"));
    Alcotest.test_case "huge integer literal is rejected, not crashed" `Quick (fun () ->
        ignore
          (expect_code D.Codes.xquery_syntax
             (Clip_xquery.Parser.parse_string_result "99999999999999999999999999")));
    Alcotest.test_case "unbound variable at eval is CLIP-XQ-002" `Quick (fun () ->
        match Clip_xquery.Parser.parse_string_result "$nope" with
        | Error ds -> Alcotest.failf "parse failed: %s" (D.render_list ds)
        | Ok e ->
          ignore
            (expect_code D.Codes.xquery_eval
               (Clip_xquery.Eval.run_result ~input:(Node.elem "doc" []) e)));
  ]

(* --- Compile and validity --------------------------------------------- *)

let compile_tests =
  [
    Alcotest.test_case "invalid mapping reports CLIP-VAL-* from to_tgd_result" `Quick
      (fun () ->
        (* The cram suite's bad.clip: a value mapping whose source sits
           inside a repeating element no builder iterates. *)
        let src =
          "schema s { a [0..*] { x: string  b [0..*] { y: string } } }\n\
           schema t { c [0..*] { @y: string } }\n\
           mapping {\n\
          \  node n: s.a as $a -> t.c\n\
          \  value s.a.b.y.value -> t.c.@y\n\
           }\n"
        in
        let m =
          match Clip_core.Dsl.parse_result src with
          | Ok m -> m
          | Error ds -> Alcotest.failf "fixture does not parse: %s" (D.render_list ds)
        in
        let d =
          expect_code
            (D.Codes.validity "unanchored-source")
            (Clip_core.Compile.to_tgd_result m)
        in
        checkb "validity diagnostic is an error" true (D.is_error d);
        (* diagnose collects the same issues without raising. *)
        checkb "diagnose reports errors" true (D.has_errors (Clip_core.Engine.diagnose m)));
    Alcotest.test_case "driverless value mapping compiles to CLIP-CMP-007" `Quick
      (fun () ->
        let src =
          "schema source { a [0..*] { v: int } }\n\
           schema target { t [1..1] { @x: int } }\n\
           mapping {\n\
          \  value source.a.v.value -> target.t.@x\n\
           }\n"
        in
        match Clip_core.Dsl.parse_result src with
        | Error ds -> Alcotest.failf "fixture does not parse: %s" (D.render_list ds)
        | Ok m ->
          ignore
            (expect_code D.Codes.compile_no_driver
               (Clip_core.Compile.to_tgd_unchecked_result m)));
    Alcotest.test_case "diagnose on a valid mapping is warning-free or warnings only"
      `Quick (fun () ->
        let src =
          "schema source { a [0..*] { v: int } }\n\
           schema target { t [0..*] { @x: int } }\n\
           mapping {\n\
          \  node n: source.a as $p -> target.t\n\
          \  value source.a.v.value -> target.t.@x\n\
           }\n"
        in
        match Clip_core.Dsl.parse_result src with
        | Error ds -> Alcotest.failf "fixture does not parse: %s" (D.render_list ds)
        | Ok m -> checkb "no errors" false (D.has_errors (Clip_core.Engine.diagnose m)));
  ]

(* --- Resource limits --------------------------------------------------- *)

let deep_xml depth =
  let buf = Buffer.create (depth * 8) in
  for _ = 1 to depth do
    Buffer.add_string buf "<a>"
  done;
  Buffer.add_char buf 'x';
  for _ = 1 to depth do
    Buffer.add_string buf "</a>"
  done;
  Buffer.contents buf

let limit_tests =
  [
    Alcotest.test_case "oversized input is CLIP-LIM-001" `Quick (fun () ->
        let limits = { D.Limits.default with D.Limits.max_input_bytes = 8 } in
        ignore
          (expect_code D.Codes.limit_input_bytes
             (Clip_xml.Parser.parse_string_result ~limits "<a>hello world</a>")));
    Alcotest.test_case "deep XML is CLIP-LIM-002, not Stack_overflow" `Quick (fun () ->
        ignore
          (expect_code D.Codes.limit_xml_depth
             (Clip_xml.Parser.parse_string_result (deep_xml 100_000))));
    Alcotest.test_case "XML within the depth limit still parses" `Quick (fun () ->
        match Clip_xml.Parser.parse_string_result (deep_xml 50) with
        | Ok _ -> ()
        | Error ds -> Alcotest.failf "unexpected: %s" (D.render_list ds));
    Alcotest.test_case "deep XQuery parens are CLIP-LIM-003" `Quick (fun () ->
        let q = String.make 100_000 '(' ^ "1" ^ String.make 100_000 ')' in
        ignore
          (expect_code D.Codes.limit_recursion (Clip_xquery.Parser.parse_string_result q)));
    Alcotest.test_case "deep schema nesting is CLIP-LIM-003" `Quick (fun () ->
        let buf = Buffer.create (1 lsl 20) in
        Buffer.add_string buf "schema s ";
        for _ = 1 to 100_000 do
          Buffer.add_string buf "{ a "
        done;
        Buffer.add_string buf "{ x: string ";
        for _ = 0 to 100_000 do
          Buffer.add_char buf '}'
        done;
        ignore
          (expect_code D.Codes.limit_recursion
             (Clip_schema.Dsl.parse_result (Buffer.contents buf))));
    Alcotest.test_case "tgd engine step budget is CLIP-LIM-004" `Quick (fun () ->
        let src =
          "schema source { a [0..*] { v: int } }\n\
           schema target { t [0..*] { u [0..*] { @x: int } } }\n\
           mapping {\n\
          \  node n: source.a as $p, source.a as $q, source.a as $r -> target.t\n\
           }\n"
        in
        let m =
          match Clip_core.Dsl.parse_result src with
          | Ok m -> m
          | Error ds -> Alcotest.failf "fixture does not parse: %s" (D.render_list ds)
        in
        let items =
          List.init 60 (fun i -> Node.elem "a" [ Node.elem "v" [ Node.text (Atom.Int i) ] ])
        in
        let doc = Node.elem "source" items in
        let limits = { D.Limits.default with D.Limits.max_eval_steps = 10_000 } in
        let d =
          expect_code D.Codes.limit_eval_steps
            (Clip_core.Engine.run_result ~limits m doc)
        in
        checkb "limit diagnostics carry a hint" true (d.D.hints <> []);
        checkb "is_resource_limit recognises it" true (D.is_resource_limit d));
    Alcotest.test_case "step budget meters both plan modes (CLIP-LIM-004)" `Quick
      (fun () ->
        (* The indexed streaming executor must keep ticking the step
           budget per enumerated binding, exactly like the naive
           interpreter — a hash join may *lower* the count (skipped
           bindings are never enumerated), never disable metering. *)
        let src =
          "schema source { a [0..*] { v: int } }\n\
           schema target { t [0..*] { u [0..*] { @x: int } } }\n\
           mapping {\n\
          \  node n: source.a as $p, source.a as $q, source.a as $r -> target.t\n\
           }\n"
        in
        let m =
          match Clip_core.Dsl.parse_result src with
          | Ok m -> m
          | Error ds -> Alcotest.failf "fixture does not parse: %s" (D.render_list ds)
        in
        let items =
          List.init 60 (fun i -> Node.elem "a" [ Node.elem "v" [ Node.text (Atom.Int i) ] ])
        in
        let doc = Node.elem "source" items in
        let limits = { D.Limits.default with D.Limits.max_eval_steps = 10_000 } in
        List.iter
          (fun plan ->
            let steps = ref 0 in
            let d =
              expect_code D.Codes.limit_eval_steps
                (Clip_core.Engine.run_result ~limits ~plan ~steps_out:steps m doc)
            in
            checkb "budget diagnostics carry a hint" true (d.D.hints <> []);
            checkb "steps_out reports the enumerated bindings" true (!steps >= 10_000))
          [ `Naive; `Indexed; `Auto ]);
    Alcotest.test_case "xquery eval step budget is CLIP-LIM-004" `Quick (fun () ->
        let q =
          "for $a in d/x for $b in d/x for $c in d/x for $e in d/x return 1"
        in
        let e =
          match Clip_xquery.Parser.parse_string_result q with
          | Ok e -> e
          | Error ds -> Alcotest.failf "fixture does not parse: %s" (D.render_list ds)
        in
        let input = Node.elem "d" (List.init 40 (fun _ -> Node.elem "x" [])) in
        let limits = { D.Limits.default with D.Limits.max_eval_steps = 5_000 } in
        ignore
          (expect_code D.Codes.limit_eval_steps
             (Clip_xquery.Eval.run_result ~limits ~input e)));
  ]

(* --- Rendering --------------------------------------------------------- *)

let render_tests =
  [
    Alcotest.test_case "to_string carries severity, code and position" `Quick (fun () ->
        let d =
          D.error ~span:(D.span ~line:3 ~col:7 ()) ~code:"CLIP-XML-001" "boom"
        in
        checks "to_string" "error[CLIP-XML-001] at line 3, column 7: boom"
          (D.to_string d));
    Alcotest.test_case "render points a caret at the offending column" `Quick (fun () ->
        let src = "line one\nline two oops\nline three" in
        let d =
          D.error
            ~span:(D.span ~line:2 ~col:10 ~end_col:14 ())
            ~hints:[ "try deleting it" ] ~code:"CLIP-TEST-001" "unexpected word"
        in
        let out = D.render ~src d in
        checkb "shows the source line" true
          (String.length out > 0
          && (let re = "line two oops" in
              let rec find i =
                i + String.length re <= String.length out
                && (String.sub out i (String.length re) = re || find (i + 1))
              in
              find 0));
        let caret_line = " 2 | line two oops" in
        let expect_caret = "   |          ^^^^" in
        let lines = String.split_on_char '\n' out in
        checkb "caret under the span" true
          (List.exists (String.equal caret_line) lines
          && List.exists (String.equal expect_caret) lines);
        checkb "hint is printed" true
          (List.exists (fun l -> l = "  hint: try deleting it") lines);
        checkb "render ends with a newline" true (out.[String.length out - 1] = '\n'));
    Alcotest.test_case "span_of_offset computes line and column" `Quick (fun () ->
        let src = "ab\ncde\nf" in
        let s = D.span_of_offset src 5 in
        checki "line" 2 s.D.line;
        checki "col" 3 s.D.col;
        checki "offset survives" 5 s.D.offset);
    Alcotest.test_case "render_list separates diagnostics with blank lines" `Quick
      (fun () ->
        let mk c = D.error ~code:c "m" in
        let out = D.render_list [ mk "CLIP-A"; mk "CLIP-B" ] in
        checks "joined" "error[CLIP-A]: m\n\nerror[CLIP-B]: m\n" out);
  ]

let () =
  Alcotest.run "diag"
    [
      ("xml-errors", xml_tests);
      ("schema-errors", schema_tests);
      ("mapping-errors", mapping_tests);
      ("xquery-errors", xquery_tests);
      ("compile-errors", compile_tests);
      ("limits", limit_tests);
      ("render", render_tests);
    ]
