(* Tests for the Clip_schema substrate: cardinalities, paths, schema
   trees, instance validation, the schema DSL, the relational encoding
   and the random instance generator. *)

open Clip_schema
module Atom = Clip_xml.Atom

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let path s =
  match Path.of_string s with
  | Ok p -> p
  | Error m -> Alcotest.failf "bad path %S: %s" s m

(* --- Cardinality ---------------------------------------------------------- *)

let cardinality_tests =
  [
    Alcotest.test_case "standard shorthands" `Quick (fun () ->
        checks "req" "[1..1]" (Cardinality.to_string Cardinality.required);
        checks "opt" "[0..1]" (Cardinality.to_string Cardinality.optional);
        checks "star" "[0..*]" (Cardinality.to_string Cardinality.star);
        checks "plus" "[1..*]" (Cardinality.to_string Cardinality.plus));
    Alcotest.test_case "is_repeating" `Quick (fun () ->
        checkb "star" true (Cardinality.is_repeating Cardinality.star);
        checkb "plus" true (Cardinality.is_repeating Cardinality.plus);
        checkb "req" false (Cardinality.is_repeating Cardinality.required);
        checkb "opt" false (Cardinality.is_repeating Cardinality.optional);
        checkb "bounded 2" true
          (Cardinality.is_repeating (Cardinality.make 0 (Cardinality.Bounded 2))));
    Alcotest.test_case "admits respects both bounds" `Quick (fun () ->
        let c = Cardinality.make 1 (Cardinality.Bounded 3) in
        checkb "0" false (Cardinality.admits c 0);
        checkb "1" true (Cardinality.admits c 1);
        checkb "3" true (Cardinality.admits c 3);
        checkb "4" false (Cardinality.admits c 4));
    Alcotest.test_case "admits unbounded" `Quick (fun () ->
        checkb "many" true (Cardinality.admits Cardinality.star 1000));
    Alcotest.test_case "subsumes" `Quick (fun () ->
        checkb "star >= req" true (Cardinality.subsumes Cardinality.star Cardinality.required);
        checkb "req !>= star" false
          (Cardinality.subsumes Cardinality.required Cardinality.star);
        checkb "opt >= req" true
          (Cardinality.subsumes Cardinality.optional Cardinality.required));
    Alcotest.test_case "make rejects bad bounds" `Quick (fun () ->
        checkb "neg min" true
          (match Cardinality.make (-1) Cardinality.Unbounded with
           | exception Invalid_argument _ -> true
           | _ -> false);
        checkb "max < min" true
          (match Cardinality.make 3 (Cardinality.Bounded 2) with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* --- Path ------------------------------------------------------------------ *)

let path_tests =
  [
    Alcotest.test_case "of_string / to_string roundtrip" `Quick (fun () ->
        List.iter
          (fun s -> checks s s (Path.to_string (path s)))
          [
            "source";
            "source.dept";
            "source.dept.regEmp.@pid";
            "source.dept.Proj.pname.value";
          ]);
    Alcotest.test_case "of_string rejects interior leaf steps" `Quick (fun () ->
        checkb "attr" true (Result.is_error (Path.of_string "s.@a.b"));
        checkb "value" true (Result.is_error (Path.of_string "s.value.b")));
    Alcotest.test_case "of_string rejects empty" `Quick (fun () ->
        checkb "empty" true (Result.is_error (Path.of_string ""));
        checkb "empty step" true (Result.is_error (Path.of_string "a..b")));
    Alcotest.test_case "element_of strips leaves" `Quick (fun () ->
        checks "attr" "s.a" (Path.to_string (Path.element_of (path "s.a.@x")));
        checks "value" "s.a" (Path.to_string (Path.element_of (path "s.a.value")));
        checks "element" "s.a" (Path.to_string (Path.element_of (path "s.a"))));
    Alcotest.test_case "parent" `Quick (fun () ->
        checkb "root has none" true (Path.parent (path "s") = None);
        checks "drop" "s.a" (Path.to_string (Option.get (Path.parent (path "s.a.b")))));
    Alcotest.test_case "element_prefixes walks root-first" `Quick (fun () ->
        let ps = Path.element_prefixes (path "s.a.b.@x") in
        Alcotest.(check (list string))
          "prefixes"
          [ "s"; "s.a"; "s.a.b" ]
          (List.map Path.to_string ps));
    Alcotest.test_case "is_prefix" `Quick (fun () ->
        checkb "proper" true (Path.is_prefix (path "s.a") (path "s.a.b"));
        checkb "self" true (Path.is_prefix (path "s.a") (path "s.a"));
        checkb "not" false (Path.is_prefix (path "s.a.b") (path "s.a"));
        checkb "other root" false (Path.is_prefix (path "t.a") (path "s.a.b")));
    Alcotest.test_case "strip_prefix" `Quick (fun () ->
        checkb "steps" true
          (Path.strip_prefix ~prefix:(path "s.a") (path "s.a.b.@x")
           = Some [ Path.Child "b"; Path.Attr "x" ]);
        checkb "none" true (Path.strip_prefix ~prefix:(path "s.b") (path "s.a") = None));
    Alcotest.test_case "cannot extend past a leaf" `Quick (fun () ->
        checkb "raises" true
          (match Path.child (path "s.a.@x") "b" with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* --- Schema ------------------------------------------------------------------ *)

let dept_schema =
  Dsl.parse
    {|
    schema source {
      dept [1..*] {
        dname: string
        Proj [0..*] { @pid: int  pname: string }
        regEmp [0..*] { @pid: int  ename: string  sal: int }
      }
      ref dept.regEmp.@pid -> dept.Proj.@pid
    }
    |}

let schema_tests =
  [
    Alcotest.test_case "find resolves elements, attributes, values" `Quick (fun () ->
        checkb "element" true
          (match Schema.find dept_schema (path "source.dept.Proj") with
           | Some (Schema.Element_ref e) -> e.name = "Proj"
           | _ -> false);
        checkb "attr" true
          (match Schema.find dept_schema (path "source.dept.Proj.@pid") with
           | Some (Schema.Attr_ref (_, a)) -> a.attr_type = Atomic_type.T_int
           | _ -> false);
        checkb "value" true
          (match Schema.find dept_schema (path "source.dept.dname.value") with
           | Some (Schema.Value_ref (_, ty)) -> ty = Atomic_type.T_string
           | _ -> false);
        checkb "missing" true (Schema.find dept_schema (path "source.dept.foo") = None);
        checkb "wrong root" true (Schema.find dept_schema (path "bogus.dept") = None));
    Alcotest.test_case "leaf_type" `Quick (fun () ->
        checkb "sal" true
          (Schema.leaf_type dept_schema (path "source.dept.regEmp.sal.value")
           = Some Atomic_type.T_int);
        checkb "element is not a leaf" true
          (Schema.leaf_type dept_schema (path "source.dept") = None));
    Alcotest.test_case "element_paths preorder" `Quick (fun () ->
        Alcotest.(check (list string))
          "paths"
          [
            "source";
            "source.dept";
            "source.dept.dname";
            "source.dept.Proj";
            "source.dept.Proj.pname";
            "source.dept.regEmp";
            "source.dept.regEmp.ename";
            "source.dept.regEmp.sal";
          ]
          (List.map Path.to_string (Schema.element_paths dept_schema)));
    Alcotest.test_case "leaf_paths" `Quick (fun () ->
        (* dname.value, Proj.@pid, Proj.pname.value, regEmp.@pid,
           regEmp.ename.value, regEmp.sal.value *)
        checki "6 leaves" 6 (List.length (Schema.leaf_paths dept_schema)));
    Alcotest.test_case "repeating_paths" `Quick (fun () ->
        Alcotest.(check (list string))
          "repeating"
          [ "source.dept"; "source.dept.Proj"; "source.dept.regEmp" ]
          (List.map Path.to_string (Schema.repeating_paths dept_schema)));
    Alcotest.test_case "root is never repeating" `Quick (fun () ->
        checkb "root" false (Schema.is_repeating dept_schema (path "source")));
    Alcotest.test_case "repeating_ancestors" `Quick (fun () ->
        Alcotest.(check (list string))
          "chain"
          [ "source.dept"; "source.dept.regEmp" ]
          (List.map Path.to_string
             (Schema.repeating_ancestors dept_schema (path "source.dept.regEmp.@pid"))));
    Alcotest.test_case "repeating_strictly_between" `Quick (fun () ->
        Alcotest.(check (list string))
          "regEmp below dept"
          [ "source.dept.regEmp" ]
          (List.map Path.to_string
             (Schema.repeating_strictly_between dept_schema ~above:(path "source.dept")
                ~below:(path "source.dept.regEmp.ename.value")));
        Alcotest.(check (list string))
          "nothing between regEmp and its leaf" []
          (List.map Path.to_string
             (Schema.repeating_strictly_between dept_schema
                ~above:(path "source.dept.regEmp")
                ~below:(path "source.dept.regEmp.ename.value"))));
    Alcotest.test_case "reference_between" `Quick (fun () ->
        checkb "found" true
          (Schema.reference_between dept_schema (path "source.dept.Proj")
             (path "source.dept.regEmp")
           <> None);
        checkb "none" true
          (Schema.reference_between dept_schema (path "source.dept")
             (path "source.dept.dname")
           = None));
    Alcotest.test_case "make rejects duplicate siblings" `Quick (fun () ->
        checkb "dup" true
          (match
             Schema.make
               (Schema.element "r" [ Schema.element "a" []; Schema.element "a" [] ])
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "make rejects dangling references" `Quick (fun () ->
        checkb "dangling" true
          (match
             Schema.make
               ~refs:
                 [ { Schema.ref_from = path "r.a.@x"; ref_to = path "r.b.@y" } ]
               (Schema.element "r" [ Schema.element "a" [] ])
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* --- Validation ---------------------------------------------------------------- *)

let xml = Clip_xml.Parser.parse_string

let good_instance =
  xml
    {|<source><dept><dname>ICT</dname>
        <Proj pid="1"><pname>P</pname></Proj>
        <regEmp pid="1"><ename>A</ename><sal>10</sal></regEmp>
      </dept></source>|}

let validate_tests =
  [
    Alcotest.test_case "valid instance" `Quick (fun () ->
        Alcotest.(check (list string))
          "no violations" []
          (List.map Validate.violation_to_string (Validate.check dept_schema good_instance)));
    Alcotest.test_case "missing required element" `Quick (fun () ->
        let doc = xml "<source/>" in
        checkb "invalid" false (Validate.is_valid dept_schema doc));
    Alcotest.test_case "missing required attribute" `Quick (fun () ->
        let doc =
          xml
            {|<source><dept><dname>x</dname><Proj><pname>P</pname></Proj></dept></source>|}
        in
        checkb "invalid" false (Validate.is_valid dept_schema doc));
    Alcotest.test_case "type violation" `Quick (fun () ->
        let doc =
          xml
            {|<source><dept><dname>x</dname>
               <regEmp pid="1"><ename>A</ename><sal>lots</sal></regEmp></dept></source>|}
        in
        checkb "invalid" false (Validate.is_valid ~check_refs:false dept_schema doc));
    Alcotest.test_case "unexpected element" `Quick (fun () ->
        let doc = xml {|<source><dept><dname>x</dname><bogus/></dept></source>|} in
        checkb "invalid" false (Validate.is_valid dept_schema doc));
    Alcotest.test_case "unexpected attribute" `Quick (fun () ->
        let doc = xml {|<source><dept bogus="1"><dname>x</dname></dept></source>|} in
        checkb "invalid" false (Validate.is_valid dept_schema doc));
    Alcotest.test_case "int accepted where float expected" `Quick (fun () ->
        let s = Dsl.parse "schema r { x: float }" in
        checkb "valid" true (Validate.is_valid s (xml "<r><x>3</x></r>")));
    Alcotest.test_case "dangling reference detected" `Quick (fun () ->
        let doc =
          xml
            {|<source><dept><dname>x</dname>
               <Proj pid="1"><pname>P</pname></Proj>
               <regEmp pid="9"><ename>A</ename><sal>10</sal></regEmp></dept></source>|}
        in
        checkb "refs checked" false (Validate.is_valid dept_schema doc);
        checkb "refs skipped" true (Validate.is_valid ~check_refs:false dept_schema doc));
    Alcotest.test_case "cardinality upper bound" `Quick (fun () ->
        let s = Dsl.parse "schema r { a [0..2] }" in
        checkb "3 as" false (Validate.is_valid s (xml "<r><a/><a/><a/></r>"));
        checkb "2 as" true (Validate.is_valid s (xml "<r><a/><a/></r>")));
    Alcotest.test_case "text where none expected" `Quick (fun () ->
        let s = Dsl.parse "schema r { a }" in
        checkb "invalid" false (Validate.is_valid s (xml "<r><a>text</a></r>")));
  ]

(* --- Schema DSL --------------------------------------------------------------- *)

let dsl_tests =
  [
    Alcotest.test_case "cardinality shorthands" `Quick (fun () ->
        let s = Dsl.parse "schema r { a?  b*  c+  d [2..5] }" in
        let card p' =
          match Schema.find_element s (path p') with
          | Some e -> Cardinality.to_string e.card
          | None -> "?"
        in
        checks "a" "[0..1]" (card "r.a");
        checks "b" "[0..*]" (card "r.b");
        checks "c" "[1..*]" (card "r.c");
        checks "d" "[2..5]" (card "r.d"));
    Alcotest.test_case "optional attribute" `Quick (fun () ->
        let s = Dsl.parse "schema r { a { @x ?: int @y: string } }" in
        match Schema.find s (path "r.a.@x"), Schema.find s (path "r.a.@y") with
        | Some (Schema.Attr_ref (_, x)), Some (Schema.Attr_ref (_, y)) ->
          checkb "x optional" false x.attr_required;
          checkb "y required" true y.attr_required
        | _ -> Alcotest.fail "attributes not found");
    Alcotest.test_case "value declarations" `Quick (fun () ->
        let s = Dsl.parse "schema r { a: int  b { value: string  c: bool } }" in
        checkb "a" true (Schema.leaf_type s (path "r.a.value") = Some Atomic_type.T_int);
        checkb "b" true (Schema.leaf_type s (path "r.b.value") = Some Atomic_type.T_string);
        checkb "c" true (Schema.leaf_type s (path "r.b.c.value") = Some Atomic_type.T_bool));
    Alcotest.test_case "comments and semicolons" `Quick (fun () ->
        let s = Dsl.parse "schema r { # comment\n a; b; }" in
        checki "2 children" 2 (List.length s.root.children));
    Alcotest.test_case "dashed identifiers" `Quick (fun () ->
        let s = Dsl.parse "schema r { project-emp [1..*] { @avg-sal: int } }" in
        checkb "found" true (Schema.mem s (path "r.project-emp.@avg-sal")));
    Alcotest.test_case "parse_many" `Quick (fun () ->
        checki "2 schemas" 2
          (List.length (Dsl.parse_many "schema a { x } schema b { y }")));
    Alcotest.test_case "to_string roundtrips" `Quick (fun () ->
        let s' = Dsl.parse (Dsl.to_string dept_schema) in
        checkb "equal" true (s' = dept_schema));
    Alcotest.test_case "syntax errors carry positions" `Quick (fun () ->
        match Dsl.parse "schema r {\n  a [x..*]\n}" with
        | exception Dsl.Syntax_error { line; _ } -> checki "line" 2 line
        | _ -> Alcotest.fail "expected a syntax error");
    Alcotest.test_case "unknown type is rejected" `Quick (fun () ->
        checkb "raises" true
          (match Dsl.parse "schema r { a: blob }" with
           | exception Dsl.Syntax_error _ -> true
           | _ -> false));
    Alcotest.test_case "ref only at top level" `Quick (fun () ->
        checkb "raises" true
          (match Dsl.parse "schema r { a { ref x -> y } }" with
           | exception Dsl.Syntax_error _ -> true
           | _ -> false));
  ]

(* --- Relational encoding --------------------------------------------------------- *)

let relational_tests =
  let db =
    Relational.database "db"
      ~foreign_keys:
        [
          {
            Relational.fk_table = "grant";
            fk_columns = [ "recipient" ];
            pk_table = "company";
            pk_columns = [ "cid" ];
          };
        ]
      [
        Relational.table ~primary_key:[ "cid" ] "company"
          [ Relational.column "cid" Atomic_type.T_int;
            Relational.column "cname" Atomic_type.T_string ];
        Relational.table "grant"
          [ Relational.column "gid" Atomic_type.T_int;
            Relational.column "recipient" Atomic_type.T_int ];
      ]
  in
  [
    Alcotest.test_case "tables become repeating elements with attributes" `Quick
      (fun () ->
        let s = Relational.to_schema db in
        checkb "company" true (Schema.is_repeating s (path "db.company"));
        checkb "cname attr" true (Schema.mem s (path "db.company.@cname")));
    Alcotest.test_case "foreign keys become references" `Quick (fun () ->
        let s = Relational.to_schema db in
        checki "1 ref" 1 (List.length s.refs);
        checkb "ends" true
          (Path.equal (List.hd s.refs).ref_from (path "db.grant.@recipient")));
    Alcotest.test_case "instances validate" `Quick (fun () ->
        let s = Relational.to_schema db in
        let doc =
          Relational.instance db
            [
              ("company", [ [ Atom.Int 1; Atom.String "Acme" ] ]);
              ("grant", [ [ Atom.Int 7; Atom.Int 1 ] ]);
            ]
        in
        Alcotest.(check (list string))
          "valid" []
          (List.map Validate.violation_to_string (Validate.check s doc)));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        checkb "raises" true
          (match Relational.instance db [ ("company", [ [ Atom.Int 1 ] ]) ] with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "unknown table rejected" `Quick (fun () ->
        checkb "raises" true
          (match Relational.instance db [ ("bogus", []) ] with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "bad key column rejected" `Quick (fun () ->
        checkb "raises" true
          (match
             Relational.table ~primary_key:[ "nope" ] "t"
               [ Relational.column "a" Atomic_type.T_int ]
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
    (* The exception-free encoding: to_schema_result reports every
       foreign-key defect as a diagnostic with a stable CLIP-REL code
       instead of raising on the first. *)
    Alcotest.test_case "to_schema_result: ok on a well-formed database" `Quick
      (fun () ->
        match Relational.to_schema_result db with
        | Ok s -> checki "1 ref" 1 (List.length s.refs)
        | Error _ -> Alcotest.fail "expected Ok");
    Alcotest.test_case "to_schema_result: fk arity is CLIP-REL-001" `Quick
      (fun () ->
        let bad =
          Relational.database "db"
            ~foreign_keys:
              [
                {
                  Relational.fk_table = "grant";
                  fk_columns = [ "recipient" ];
                  pk_table = "company";
                  pk_columns = [ "cid"; "cname" ];
                };
              ]
            [
              Relational.table "company"
                [ Relational.column "cid" Atomic_type.T_int;
                  Relational.column "cname" Atomic_type.T_string ];
              Relational.table "grant"
                [ Relational.column "recipient" Atomic_type.T_int ];
            ]
        in
        match Relational.to_schema_result bad with
        | Ok _ -> Alcotest.fail "expected Error"
        | Error ds ->
          checki "1 diagnostic" 1 (List.length ds);
          Alcotest.(check string)
            "code" "CLIP-REL-001" (List.hd ds).Clip_diag.code);
    Alcotest.test_case
      "to_schema_result: unknown fk table/column is CLIP-REL-002, all collected"
      `Quick (fun () ->
        let bad =
          Relational.database "db"
            ~foreign_keys:
              [
                {
                  Relational.fk_table = "grant";
                  fk_columns = [ "recipient" ];
                  pk_table = "nosuch";
                  pk_columns = [ "cid" ];
                };
                {
                  Relational.fk_table = "grant";
                  fk_columns = [ "nocol" ];
                  pk_table = "grant";
                  pk_columns = [ "recipient" ];
                };
              ]
            [
              Relational.table "grant"
                [ Relational.column "recipient" Atomic_type.T_int ];
            ]
        in
        match Relational.to_schema_result bad with
        | Ok _ -> Alcotest.fail "expected Error"
        | Error ds ->
          checki "2 diagnostics" 2 (List.length ds);
          List.iter
            (fun d ->
              Alcotest.(check string) "code" "CLIP-REL-002" d.Clip_diag.code)
            ds);
    Alcotest.test_case "to_schema raises Invalid_argument as before" `Quick
      (fun () ->
        let bad =
          Relational.database "db"
            ~foreign_keys:
              [
                {
                  Relational.fk_table = "t";
                  fk_columns = [ "a" ];
                  pk_table = "nosuch";
                  pk_columns = [ "a" ];
                };
              ]
            [ Relational.table "t" [ Relational.column "a" Atomic_type.T_int ] ]
        in
        checkb "raises" true
          (match Relational.to_schema bad with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* --- Random instance generation ---------------------------------------------------- *)

let generate_tests =
  [
    Alcotest.test_case "generated instances validate (modulo refs)" `Quick (fun () ->
        let state = Random.State.make [| 1 |] in
        for _ = 1 to 20 do
          let doc = Generate.instance ~state ~fanout:4 dept_schema in
          Alcotest.(check (list string))
            "valid" []
            (List.map Validate.violation_to_string
               (Validate.check ~check_refs:false dept_schema doc))
        done);
    Alcotest.test_case "instance_with_refs also satisfies references" `Quick (fun () ->
        let state = Random.State.make [| 2 |] in
        for _ = 1 to 20 do
          let doc = Generate.instance_with_refs ~state ~fanout:4 dept_schema in
          (* When no Proj was generated at all there is no value to
             patch the references with; skip the referential check. *)
          let check_refs = Clip_xml.Node.count_elements doc "Proj" > 0 in
          Alcotest.(check (list string))
            "valid" []
            (List.map Validate.violation_to_string
               (Validate.check ~check_refs dept_schema doc))
        done);
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let d1 = Generate.instance ~state:(Random.State.make [| 9 |]) dept_schema in
        let d2 = Generate.instance ~state:(Random.State.make [| 9 |]) dept_schema in
        checkb "equal" true (Clip_xml.Node.equal d1 d2));
    Alcotest.test_case "fanout bounds repetition" `Quick (fun () ->
        let doc = Generate.instance ~state:(Random.State.make [| 3 |]) ~fanout:2 dept_schema in
        let root = Clip_xml.Node.as_element doc in
        List.iter
          (fun dept ->
            checkb "at most 2 Projs" true
              (List.length (Clip_xml.Node.children_named dept "Proj") <= 2))
          (Clip_xml.Node.children_named root "dept"));
  ]

let () =
  Alcotest.run "schema"
    [
      ("cardinality", cardinality_tests);
      ("path", path_tests);
      ("schema", schema_tests);
      ("validate", validate_tests);
      ("dsl", dsl_tests);
      ("relational", relational_tests);
      ("generate", generate_tests);
    ]
