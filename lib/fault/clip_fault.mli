(** Deterministic, site-named fault injection.

    Failure points ({!hit}) are compiled into the stack at its trust
    boundaries — parser entry, planner, session population, tag-index
    build, both executors, the {!Clip_par} task wrapper — and are
    inert (one atomic load, one branch) until a harness {!arm}s
    exactly one of them. The armed hit raises through
    {!Clip_diag.Fail} with a stable code — [CLIP-FLT-001] for
    {!Transient} faults (retryable, see {!Clip_diag.is_transient}),
    [CLIP-FLT-002] for {!Permanent} ones — so an injected fault
    travels the same error path a real failure would and escapes every
    [*_result] entry point as a structured [Error].

    The armed state is process-wide and test-only: production code
    never arms anything, and the obs bench gates the disarmed
    overhead. Arming is deterministic (explicit site + hit ordinal, or
    {!arm_seeded} from a seed); with a single domain, which invocation
    fails replays exactly. See DESIGN.md "Fault tolerance". *)

(** Transient faults model recoverable environment hiccups and are the
    class {!Clip_par.map_results}' retry policy re-attempts; permanent
    faults are never retried. *)
type kind = Transient | Permanent

(** The stable diagnostic code of each kind. *)
val code : kind -> string

(** The registered site names (compile-time constants, one per planted
    boundary). *)
module Site : sig
  val xml_parse : string (** {!Clip_xml.Parser} document entry *)

  val plan_build : string (** {!Clip_plan.plan} compilation *)

  val index_build : string (** {!Clip_xml.Index.build} *)

  val session_populate : string (** {!Clip_core.Engine.Session} cache population *)

  val tgd_execute : string (** tgd backend run entry *)

  val xquery_execute : string (** XQuery backend run entry *)

  val par_task : string (** {!Clip_par} per-task wrapper *)
end

(** Every registered site, in registration order — harnesses sweep
    this list so newly planted sites are covered automatically. *)
val all_sites : string list

(** [arm site] — arm one fault: the [from]-th hit of [site] (1-based,
    default 1) and the [times - 1] hits after it (default [times = 1])
    raise; every other hit is a no-op. Replaces any previously armed
    fault and resets hit counting.
    @raise Invalid_argument on an unregistered site. *)
val arm : ?kind:kind -> ?from:int -> ?times:int -> string -> unit

(** [arm_seeded ~seed] — derive (site, firing hit, kind)
    deterministically from [seed] and arm it; returns the choice. For
    seed-sweep harnesses (test/fuzz). *)
val arm_seeded : seed:int -> string * int * kind

(** Disarm whatever is armed (idempotent). *)
val disarm : unit -> unit

val active : unit -> bool
val armed_site : unit -> string option

(** Times the currently armed fault has fired (0 when disarmed). *)
val fired : unit -> int

(** [hit site] — the failure point. No-op unless [site] is armed and
    this is a firing hit, in which case it raises {!Clip_diag.Fail}
    with the armed kind's code (and counts into [?obs] as
    [faults_injected]). *)
val hit : ?obs:Clip_obs.sink -> string -> unit

(** [arm_spec "site[:FROM[:KIND[:TIMES]]]"] — parse and arm the CLI's
    [CLIP_FAULT] environment format (e.g. ["tgd.execute:2:transient"]).
    [Error reason] on a malformed spec or unknown site. *)
val arm_spec : string -> (unit, string) result
