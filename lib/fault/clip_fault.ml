(* Deterministic fault injection.

   A fixed registry of site-named failure points is compiled into the
   stack at its trust boundaries (parser entry, planner, session
   population, index build, both executors, the parallel pool's task
   wrapper). In production nothing is armed and every [hit] is one
   atomic load and a branch. A test harness arms exactly one fault —
   site, first firing hit, firing count, transient/permanent class —
   and the chosen hit raises a [Clip_diag.Fail] carrying a stable
   [CLIP-FLT-*] code, so the fault travels the exact error path a real
   failure would and escapes the [*_result] entry points as an [Error].

   Determinism: arming is explicit (by site and hit ordinal, or
   derived from a seed by [arm_seeded]) and hit counting is a
   process-wide atomic, so a single-domain run replays identically
   from (armed state, inputs). Under a multi-domain pool the hit that
   fires is scheduling-dependent; harnesses that need a specific task
   to fail run the pool with [jobs = 1] (see test/test_fault.ml).

   The armed state is deliberately ambient — the whole point of fault
   injection is to perturb deep call sites without threading a config
   value through every API — and is a single [Atomic] so arming from
   one domain is visible to workers on others. This is test-only
   tooling: library semantics are unchanged while disarmed, which the
   obs bench's disabled-path overhead gate (< 5%) covers. *)

type kind = Transient | Permanent

let code = function
  | Transient -> Clip_diag.Codes.fault_transient
  | Permanent -> Clip_diag.Codes.fault_permanent

module Site = struct
  let xml_parse = "xml.parse"
  let plan_build = "plan.build"
  let index_build = "index.build"
  let session_populate = "session.populate"
  let tgd_execute = "tgd.execute"
  let xquery_execute = "xquery.execute"
  let par_task = "par.task"
end

(* Keep in registration order: harnesses sweep this list and a new
   site added below is automatically covered. *)
let all_sites =
  [
    Site.xml_parse;
    Site.plan_build;
    Site.index_build;
    Site.session_populate;
    Site.tgd_execute;
    Site.xquery_execute;
    Site.par_task;
  ]

type armed = {
  asite : string;
  akind : kind;
  afrom : int; (* first firing hit, 1-based *)
  atimes : int; (* consecutive firing hits *)
  ahits : int Atomic.t; (* hits of [asite] so far *)
  afired : int Atomic.t;
}

let state : armed option Atomic.t = Atomic.make None

let disarm () = Atomic.set state None

let arm ?(kind = Permanent) ?(from = 1) ?(times = 1) site =
  if not (List.mem site all_sites) then
    invalid_arg (Printf.sprintf "Clip_fault.arm: unknown site %S" site);
  Atomic.set state
    (Some
       {
         asite = site;
         akind = kind;
         afrom = max 1 from;
         atimes = max 1 times;
         ahits = Atomic.make 0;
         afired = Atomic.make 0;
       })

(* A tiny splitmix-style mix so consecutive seeds pick well-spread
   (site, ordinal, kind) triples; no [Random] involved, so harness
   runs replay from the seed alone. *)
let arm_seeded ~seed =
  let z = (seed * 0x9E3779B1) lxor (seed lsr 13) in
  let z = z land max_int in
  let n = List.length all_sites in
  let site = List.nth all_sites (z mod n) in
  let from = 1 + (z / n mod 3) in
  let kind = if z / (n * 3) mod 2 = 0 then Transient else Permanent in
  arm ~kind ~from site;
  (site, from, kind)

let armed_site () =
  match Atomic.get state with None -> None | Some a -> Some a.asite

let active () = Atomic.get state <> None

let fired () =
  match Atomic.get state with None -> 0 | Some a -> Atomic.get a.afired

let fire ?(obs = Clip_obs.none) a site hit =
  Atomic.incr a.afired;
  Clip_obs.fault_injected obs;
  Clip_diag.fail
    (Clip_diag.error ~code:(code a.akind)
       ~hints:
         [
           (match a.akind with
            | Transient -> "transient: a fresh attempt may succeed (retryable)"
            | Permanent -> "permanent: retrying cannot help");
         ]
       (Printf.sprintf "injected %s fault at %s (hit %d)"
          (match a.akind with Transient -> "transient" | Permanent -> "permanent")
          site hit))

let hit ?obs site =
  match Atomic.get state with
  | None -> ()
  | Some a ->
    if String.equal a.asite site then begin
      let n = 1 + Atomic.fetch_and_add a.ahits 1 in
      if n >= a.afrom && n < a.afrom + a.atimes then fire ?obs a site n
    end

(* "site[:FROM[:KIND[:TIMES]]]" — the CLI's CLIP_FAULT format. *)
let arm_spec spec =
  match String.split_on_char ':' spec with
  | [] | [ "" ] -> Error "empty fault spec"
  | site :: rest ->
    let parse_int what s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (Printf.sprintf "bad %s %S in fault spec" what s)
    in
    let kind_of = function
      | "transient" -> Ok Transient
      | "permanent" -> Ok Permanent
      | s -> Error (Printf.sprintf "bad kind %S in fault spec (transient|permanent)" s)
    in
    let ( let* ) r f = Result.bind r f in
    let* from, kind, times =
      match rest with
      | [] -> Ok (1, Permanent, 1)
      | [ f ] ->
        let* f = parse_int "hit" f in
        Ok (f, Permanent, 1)
      | [ f; k ] ->
        let* f = parse_int "hit" f in
        let* k = kind_of k in
        Ok (f, k, 1)
      | [ f; k; t ] ->
        let* f = parse_int "hit" f in
        let* k = kind_of k in
        let* t = parse_int "times" t in
        Ok (f, k, t)
      | _ -> Error (Printf.sprintf "bad fault spec %S" spec)
    in
    if List.mem site all_sites then begin
      arm ~kind ~from ~times site;
      Ok ()
    end
    else
      Error
        (Printf.sprintf "unknown fault site %S (known: %s)" site
           (String.concat ", " all_sites))
