module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term
module Path = Clip_schema.Path

type t = {
  source_root : string;
  target_root : string;
  shape : Shape.t;
  tgd : Tgd.t;
}

let diag fmt =
  Printf.ksprintf
    (fun m ->
      Clip_diag.error ~code:Clip_diag.Codes.rel_not_relational
        ~hints:
          [
            "the rel backend needs a relational-shaped source (tables under \
             a bare root); use --backend tgd for nested sources";
          ]
        m)
    fmt

(* Every source generator must range over one whole table —
   [root.table] — for the plan's scans to be row-vector sweeps. The
   compiled tgd of a mapping over a relational-shaped schema always
   has this form (tables are the only repeating elements); a
   hand-built tgd that navigates differently is rejected here, before
   any evaluation. *)
let check_gens shape (m : Tgd.t) =
  let rec walk (m : Tgd.t) =
    let rec gens = function
      | [] -> Ok ()
      | (g : Tgd.source_gen) :: rest ->
        (match g.Tgd.sexpr with
         | Term.Proj (Term.Root r, Path.Child t)
           when String.equal r shape.Shape.root
                && List.mem t (Shape.table_names shape) ->
           gens rest
         | e ->
           Error
             [
               diag "generator %s ranges over %s, which is not a table of %s"
                 g.Tgd.svar (Term.expr_to_string e) shape.Shape.root;
             ])
    in
    match gens m.Tgd.foralls with
    | Error _ as e -> e
    | Ok () ->
      List.fold_left
        (fun acc c -> match acc with Error _ -> acc | Ok () -> walk c)
        (Ok ()) m.Tgd.children
  in
  walk m

let compile_result ~source ~target_root (tgd : Tgd.t) =
  match Shape.of_schema source with
  | Error reason ->
    Error [ diag "the source schema is not relational-shaped: %s" reason ]
  | Ok shape ->
    (match check_gens shape tgd with
     | Error _ as e -> e
     | Ok () ->
       Ok { source_root = shape.Shape.root; target_root; shape; tgd })

let compile ~source ~target_root tgd =
  match compile_result ~source ~target_root tgd with
  | Ok p -> p
  | Error ds -> Clip_diag.fail_all ds
