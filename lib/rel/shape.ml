module Schema = Clip_schema.Schema
module Cardinality = Clip_schema.Cardinality

type table = {
  t_name : string;
  t_attrs : string list;
  t_vals : string list;
}

type t = { root : string; tables : table list }

(* The shape test mirrors the canonical relational encoding
   ({!Clip_schema.Relational.to_schema}): a bare root whose children
   are all repeating "table" elements, each carrying attribute columns
   and, at most, non-repeating leaf child elements read through their
   text value. Anything else — nested repetition, a valued root, a
   structured column — is a reason the columnar store cannot represent
   the instance, reported verbatim in the CLIP-REL-003 diagnostic. *)
let of_schema (s : Schema.t) : (t, string) result =
  let root = s.Schema.root in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if root.Schema.attrs <> [] then
    err "the root <%s> carries attributes" root.Schema.name
  else if root.Schema.value <> None then
    err "the root <%s> has a text value" root.Schema.name
  else
    let rec tables acc = function
      | [] -> Ok (List.rev acc)
      | (tbl : Schema.element) :: rest ->
        if not (Cardinality.is_repeating tbl.Schema.card) then
          err "element <%s> does not repeat, so it is not a table"
            tbl.Schema.name
        else if tbl.Schema.value <> None then
          err "table <%s> has a text value of its own" tbl.Schema.name
        else
          let rec cols acc = function
            | [] -> Ok (List.rev acc)
            | (col : Schema.element) :: rest ->
              if Cardinality.is_repeating col.Schema.card then
                err "column <%s> of table <%s> repeats" col.Schema.name
                  tbl.Schema.name
              else if col.Schema.attrs <> [] || col.Schema.children <> [] then
                err "column <%s> of table <%s> is structured" col.Schema.name
                  tbl.Schema.name
              else if col.Schema.value = None then
                err "column <%s> of table <%s> has no value type"
                  col.Schema.name tbl.Schema.name
              else cols (col.Schema.name :: acc) rest
          in
          (match cols [] tbl.Schema.children with
           | Error _ as e -> e
           | Ok vals ->
             let attrs =
               List.map
                 (fun (a : Schema.attribute) -> a.Schema.attr_name)
                 tbl.Schema.attrs
             in
             tables
               ({ t_name = tbl.Schema.name; t_attrs = attrs; t_vals = vals }
                :: acc)
               rest)
    in
    match tables [] root.Schema.children with
    | Error _ as e -> e
    | Ok ts -> Ok { root = root.Schema.name; tables = ts }

let table_names t = List.map (fun tbl -> tbl.t_name) t.tables
