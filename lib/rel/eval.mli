(** The relational executor: runs a compiled {!Program} over the
    column {!Store}.

    Generators are row-ordinal sweeps over the store's row vectors;
    equality conditions become {!Clip_plan} hash joins keyed by single
    column loads; target construction and the scalar kernel are the
    shared {!Clip_tgd.Builder} core. Because {!Clip_plan.execute}
    preserves naive enumeration order and the row vectors are in
    document order, every run is output-identical — byte for byte,
    including dynamic error messages — to the tgd backend on the same
    mapping and document. Step counts and counters are this backend's
    own. *)

(** Legacy wrapper for {!run}; prefer {!run_result}. *)
exception Error of string

(** A rel evaluation session: pins a source document and caches its
    columnar conversion, the per-shape {!Store} and compiled physical
    plans across runs. *)
module Session : sig
  type t

  val create : Clip_xml.Node.t -> t
  val source : t -> Clip_xml.Node.t
end

type session = Session.t

val run_result :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:session ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  source:Clip_xml.Node.t ->
  Program.t ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** Like {!run_result}.
    @raise Error on any failure. *)
val run :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:session ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  source:Clip_xml.Node.t ->
  Program.t ->
  Clip_xml.Node.t

(** Static EXPLAIN: the store statistics and, per rule, the
    {!Clip_plan} stage rendering under the given mode. Nothing is
    evaluated. *)
val explain :
  ?plan:Clip_plan.mode ->
  ?session:session ->
  source:Clip_xml.Node.t ->
  Program.t ->
  string
