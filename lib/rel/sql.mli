(** SQL text generation from a compiled relational {!Program}.

    Each flattened rule of the tgd ({!Clip_tgd.Tgd.rules}) becomes one
    SELECT statement: the rule's accumulated generator chain is the
    FROM clause (every generator ranges over a whole table, by
    {!Program.compile}), its comparisons the WHERE clause, its leaf
    assignments the select list, and grouped target generators
    contribute GROUP BY keys. Target-side conditions and the target
    chain survive as comments. The output is deterministic text for
    inspection and golden tests ([clip sql]); it is not executed
    against any database. *)

val of_program : Program.t -> string
