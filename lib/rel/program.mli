(** A compiled relational program: the shard-ready artifact of the rel
    backend. Compilation is purely static — it checks that the
    mapping's source schema is relational-shaped ({!Shape.of_schema})
    and that every source generator of the tgd ranges over a whole
    table, and rejects everything else with a [CLIP-REL-003]
    diagnostic before any evaluation. *)

type t = {
  source_root : string;  (** the database root element *)
  target_root : string;
  shape : Shape.t;
  tgd : Clip_tgd.Tgd.t;
}

val compile_result :
  source:Clip_schema.Schema.t ->
  target_root:string ->
  Clip_tgd.Tgd.t ->
  (t, Clip_diag.t list) result

(** Like {!compile_result}.
    @raise Clip_diag.Fail on rejection. *)
val compile :
  source:Clip_schema.Schema.t -> target_root:string -> Clip_tgd.Tgd.t -> t
