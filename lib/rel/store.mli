(** The in-memory columnar store behind the relational backend.

    Built once per document from the struct-of-arrays
    {!Clip_xml.Doc.t}: each table of the {!Shape} becomes a row vector
    of node ids (document order — exactly the order the tree-walk
    backend enumerates) plus one int column per attribute and per value
    child, every cell an index into the document's deduplicated atom
    table. Scalar reads and join-key extraction are then single array
    loads instead of tree walks, while {!row_node} still hands back the
    {e physically identical} boxed source element, so target
    construction and provenance agree byte-for-byte with the tgd
    backend. *)

(** Cell sentinel: the projection is empty (missing attribute, missing
    child, child without text). *)
val absent : int

(** Cell sentinel: the flat encoding cannot represent the cell (a
    repeated value child) — readers must take the generic tree walk. *)
val fallback : int

type table = {
  t_name : string;
  t_sym : Clip_xml.Symbol.t;
  t_rows : int array;  (** node ids, document order *)
  t_attrs : (string * int array) list;  (** per attribute column: atom index *)
  t_vals : (string * int array) list;  (** per value-child column: atom index *)
}

type t = {
  doc : Clip_xml.Doc.t;
  root_tag : string option;  (** [None] when the document root is a text node *)
  tables : (string * table) list;
}

val build : Shape.t -> Clip_xml.Doc.t -> t
val table : t -> string -> table option
val atom : t -> int -> Clip_xml.Atom.t

(** [row_node tbl t i] — the original boxed element of row [i]. *)
val row_node : table -> t -> int -> Clip_xml.Node.t

(** Total rows across all tables (the EXPLAIN header statistic). *)
val row_count : t -> int
