module Xml = Clip_xml
module Path = Clip_schema.Path
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term

(* SQL text generation from a compiled relational program: one SELECT
   per flattened tgd rule ({!Tgd.rules}). Every source generator of a
   rule ranges over a whole table (enforced by {!Program.compile}), so
   the FROM clause is exactly the rule's generator chain; the nesting
   of the target side survives only as the rule comments and GROUP BY
   keys. Output is deterministic text — golden-tested by
   [test/cram/rel.t] — not fed to any database. *)

let quote_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
    s;
  Buffer.add_char b '\'';
  Buffer.contents b

let atom_sql (a : Xml.Atom.t) =
  match a with
  | Xml.Atom.String s -> quote_string s
  | Xml.Atom.Int i -> string_of_int i
  | Xml.Atom.Float f -> Printf.sprintf "%g" f
  | Xml.Atom.Bool b -> if b then "TRUE" else "FALSE"

(* Row variables name their binding directly, so [g.@cid] is [g.cid]
   and [c.cname/value] is [c.cname]: attribute and value-child columns
   live in one SQL namespace (the {!Shape} translation guarantees the
   names cannot collide with nested structure). *)
let rec expr_sql (e : Term.expr) =
  match e with
  | Term.Root r -> r
  | Term.Var v -> v
  | Term.Proj (inner, Path.Attr a) -> Printf.sprintf "%s.%s" (expr_sql inner) a
  | Term.Proj (inner, Path.Child c) -> Printf.sprintf "%s.%s" (expr_sql inner) c
  | Term.Proj (inner, Path.Value) -> expr_sql inner

let rec scalar_sql (s : Term.scalar) =
  match s with
  | Term.E e -> expr_sql e
  | Term.Const a -> atom_sql a
  | Term.Fn (name, args) ->
    let args_sql = List.map scalar_sql args in
    (match (name, args_sql) with
     | "concat", _ -> "(" ^ String.concat " || " args_sql ^ ")"
     | "add", [ a; b ] -> Printf.sprintf "(%s + %s)" a b
     | "sub", [ a; b ] -> Printf.sprintf "(%s - %s)" a b
     | "mul", [ a; b ] -> Printf.sprintf "(%s * %s)" a b
     | "div", [ a; b ] -> Printf.sprintf "(%s / %s)" a b
     | "upper", [ a ] -> Printf.sprintf "UPPER(%s)" a
     | "lower", [ a ] -> Printf.sprintf "LOWER(%s)" a
     | _ -> Printf.sprintf "%s(%s)" name (String.concat ", " args_sql))

let op_sql (op : Tgd.cmp_op) =
  match op with
  | Tgd.Eq -> "="
  | Tgd.Ne -> "<>"
  | Tgd.Lt -> "<"
  | Tgd.Le -> "<="
  | Tgd.Gt -> ">"
  | Tgd.Ge -> ">="
  | Tgd.In -> "IN"

let comparison_sql (c : Tgd.comparison) =
  match c.Tgd.op with
  | Tgd.In ->
    Printf.sprintf "%s IN (%s)" (scalar_sql c.Tgd.left) (scalar_sql c.Tgd.right)
  | op ->
    Printf.sprintf "%s %s %s" (scalar_sql c.Tgd.left) (op_sql op)
      (scalar_sql c.Tgd.right)

let agg_sql (k : Tgd.agg_kind) =
  match k with
  | Tgd.Count -> "COUNT"
  | Tgd.Sum -> "SUM"
  | Tgd.Avg -> "AVG"
  | Tgd.Min -> "MIN"
  | Tgd.Max -> "MAX"

(* The leaf an assertion assigns, as the output-column alias. *)
let leaf_alias (e : Term.expr) =
  match e with
  | Term.Proj (_, Path.Attr a) -> a
  | Term.Proj (_, Path.Child c) -> c
  | Term.Proj (_, Path.Value) | Term.Root _ | Term.Var _ ->
    (match e with
     | Term.Proj (Term.Proj (_, Path.Child c), Path.Value) -> c
     | _ -> "value")

let rule_sql i (r : Tgd.rule) =
  let b = Buffer.create 256 in
  let chain =
    match r.Tgd.r_chain with
    | [] -> "(constant target)"
    | gens ->
      String.concat "/"
        (List.map (fun (g : Tgd.target_gen) -> g.Tgd.tvar) gens)
  in
  Printf.bprintf b "-- rule %d: populates %s\n" i chain;
  let selects, checks =
    List.fold_left
      (fun (sel, chk) (a : Tgd.assertion) ->
        match a with
        | Tgd.St_eq (tgt, src) ->
          ( sel @ [ Printf.sprintf "%s AS %s" (scalar_sql src) (leaf_alias tgt) ],
            chk )
        | Tgd.Agg (tgt, kind, arg) ->
          ( sel
            @ [
                Printf.sprintf "%s(%s) AS %s" (agg_sql kind) (expr_sql arg)
                  (leaf_alias tgt);
              ],
            chk )
        | Tgd.Target_cond (tgt, op, atom) ->
          ( sel,
            chk
            @ [
                Printf.sprintf "-- check: %s %s %s" (expr_sql tgt)
                  (op_sql op) (atom_sql atom);
              ] ))
      ([], []) r.Tgd.r_assertions
  in
  List.iter (fun c -> Printf.bprintf b "%s\n" c) checks;
  Printf.bprintf b "SELECT %s\n"
    (match selects with [] -> "*" | _ -> String.concat ", " selects);
  (match r.Tgd.r_foralls with
   | [] -> ()
   | gens ->
     Printf.bprintf b "FROM %s\n"
       (String.concat ", "
          (List.map
             (fun (g : Tgd.source_gen) ->
               match g.Tgd.sexpr with
               | Term.Proj (Term.Root _, Path.Child t) ->
                 Printf.sprintf "%s AS %s" t g.Tgd.svar
               | e -> Printf.sprintf "(%s) AS %s" (Term.expr_to_string e) g.Tgd.svar)
             gens)));
  (match r.Tgd.r_cond with
   | [] -> ()
   | cs ->
     Printf.bprintf b "WHERE %s\n"
       (String.concat "\n  AND " (List.map comparison_sql cs)));
  let group_keys =
    List.concat_map
      (fun (g : Tgd.target_gen) ->
        match g.Tgd.mode with
        | Tgd.Grouped { keys } -> List.map scalar_sql keys
        | Tgd.Driven | Tgd.Completion -> [])
      r.Tgd.r_chain
  in
  let group_keys = List.sort_uniq String.compare group_keys in
  (match group_keys with
   | [] -> ()
   | ks -> Printf.bprintf b "GROUP BY %s\n" (String.concat ", " ks));
  Buffer.add_string b ";\n";
  Buffer.contents b

let of_program (p : Program.t) =
  let rules = Tgd.rules p.Program.tgd in
  let b = Buffer.create 1024 in
  Printf.bprintf b "-- mapping over relational source %s (%s)\n"
    p.Program.source_root
    (String.concat ", " (Shape.table_names p.Program.shape));
  List.iteri (fun i r -> Buffer.add_char b '\n'; Buffer.add_string b (rule_sql i r)) rules;
  Buffer.contents b
