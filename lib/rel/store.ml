module Xml = Clip_xml
module Doc = Clip_xml.Doc

(* Column cells are atom indices into the document's deduplicated atom
   table. Two negative sentinels keep the arrays total: [absent] for an
   empty projection (missing attribute, missing child, child without
   text) and [fallback] for a cell the flat encoding cannot represent
   (a repeated value child) — readers route those through the generic
   tree walk, which is the semantics oracle. *)
let absent = -1
let fallback = -2

type table = {
  t_name : string;
  t_sym : Xml.Symbol.t;
  t_rows : int array; (* node ids, document order *)
  t_attrs : (string * int array) list;
  t_vals : (string * int array) list;
}

type t = {
  doc : Doc.t;
  root_tag : string option; (* [None] when the document root is a text node *)
  tables : (string * table) list;
}

let atom t i = t.doc.Doc.atoms.(i)

let row_node (tbl : table) t i = t.doc.Doc.nodes.(tbl.t_rows.(i))

let table t name = List.assoc_opt name t.tables

(* Attribute slot lookup straight off the flat attribute-range arrays:
   the atom index, not the boxed atom, is what columns store. *)
let attr_index (doc : Doc.t) id name =
  let start = doc.Doc.attr_start.(id) and n = doc.Doc.attr_len.(id) in
  let rec go k =
    if k >= n then absent
    else if String.equal doc.Doc.attr_names.(start + k) name then
      doc.Doc.attr_value.(start + k)
    else go (k + 1)
  in
  go 0

(* The unique child with tag [sym], read through its precomputed text
   value: [absent] for zero matching children or a textless child,
   [fallback] for two or more (the generic walk yields one atom per
   child there, which no single cell can say). *)
let val_index (doc : Doc.t) id sym =
  let tagi = (sym : Xml.Symbol.t :> int) in
  let found = ref absent and count = ref 0 in
  let c = ref doc.Doc.first_child.(id) in
  while !c >= 0 && !count < 2 do
    if doc.Doc.tags.(!c) = tagi then begin
      incr count;
      let tv = doc.Doc.text_value.(!c) in
      found := (if tv >= 0 then tv else absent)
    end;
    c := doc.Doc.next_sibling.(!c)
  done;
  if !count >= 2 then fallback else !found

let build (shape : Shape.t) (doc : Doc.t) : t =
  let root_tag =
    if Doc.length doc > 0 && Doc.is_element doc 0 then
      Some (Xml.Symbol.name (Doc.tag doc 0))
    else None
  in
  let rows_of sym =
    match root_tag with
    | None -> [||]
    | Some _ ->
      let tagi = (sym : Xml.Symbol.t :> int) in
      let ids = ref [] and n = ref 0 in
      let c = ref doc.Doc.first_child.(0) in
      while !c >= 0 do
        if doc.Doc.tags.(!c) = tagi then begin
          ids := !c :: !ids;
          incr n
        end;
        c := doc.Doc.next_sibling.(!c)
      done;
      let a = Array.make !n 0 in
      List.iteri (fun k id -> a.(!n - 1 - k) <- id) !ids;
      a
  in
  let tables =
    List.map
      (fun (ts : Shape.table) ->
        let sym = Xml.Symbol.intern ts.Shape.t_name in
        let rows = rows_of sym in
        let column f name = (name, Array.map (fun id -> f id name) rows) in
        let attrs =
          List.map (column (fun id name -> attr_index doc id name))
            ts.Shape.t_attrs
        in
        let vals =
          List.map
            (column (fun id name -> val_index doc id (Xml.Symbol.intern name)))
            ts.Shape.t_vals
        in
        ( ts.Shape.t_name,
          { t_name = ts.Shape.t_name; t_sym = sym; t_rows = rows;
            t_attrs = attrs; t_vals = vals } ))
      shape.Shape.tables
  in
  { doc; root_tag; tables }

let row_count t =
  List.fold_left (fun acc (_, tbl) -> acc + Array.length tbl.t_rows) 0 t.tables
