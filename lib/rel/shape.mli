(** Relational-shape detection (the flip side of
    {!Clip_schema.Relational.to_schema}).

    A schema is {e relational-shaped} when it matches the canonical
    relational → XML encoding: a bare root element whose children are
    all repeating {e table} elements, each table carrying attribute
    columns and at most flat, non-repeating leaf child elements (value
    columns read through their text node). Exactly these schemas admit
    the columnar store of {!Store} and the relational backend. *)

type table = {
  t_name : string;  (** the table element's tag *)
  t_attrs : string list;  (** attribute columns, schema order *)
  t_vals : string list;  (** leaf child-element value columns, schema order *)
}

type t = { root : string; tables : table list }

(** [of_schema s] — the relational shape of [s], or a human-readable
    reason it has none (surfaced in the [CLIP-REL-003] diagnostic). *)
val of_schema : Clip_schema.Schema.t -> (t, string) result

val table_names : t -> string list
