module Xml = Clip_xml
module Doc = Clip_xml.Doc
module Path = Clip_schema.Path
module Value = Clip_xquery.Value
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term
module Builder = Clip_tgd.Builder

exception Error of string

(* Evaluation context: the pinned source document, its converted
   columnar form and per-shape store (both memo slots, so a session
   amortises them across runs), and the per-run budget/observability
   state — reset by [execute] exactly like the tgd context. *)
type rctx = {
  source : Xml.Node.t;
  mutable xdoc : Doc.t option;
  mutable store : (Shape.t * Store.t) option;
  steps : int ref;
  mutable max_steps : int;
  mutable obs : Clip_obs.sink;
  mutable ctl : Clip_run.Control.t;
}

let make_ctx source =
  {
    source;
    xdoc = None;
    store = None;
    steps = ref 0;
    max_steps = max_int;
    obs = Clip_obs.none;
    ctl = Clip_run.Control.none;
  }

let force_doc ctx =
  match ctx.xdoc with
  | Some d -> d
  | None ->
    let d = Doc.of_node ctx.source in
    ctx.xdoc <- Some d;
    d

(* The store depends on the program's shape; one slot suffices because
   an engine session replays the same mapping against its document, and
   a shape change simply rebuilds (old plans keep their own store
   reference — same document, still sound). *)
let force_store ctx (shape : Shape.t) =
  match ctx.store with
  | Some (sh, st) when sh = shape -> st
  | _ ->
    let st = Store.build shape (force_doc ctx) in
    ctx.store <- Some (shape, st);
    st

let check_control ctx =
  Clip_obs.ctl_check ctx.obs;
  match Clip_run.Control.check ctx.ctl with
  | None -> ()
  | Some d -> Clip_diag.fail d

(* Same budget discipline as the tgd engine: every generator item and
   scalar evaluation is a step against [limits.max_eval_steps]
   (CLIP-LIM-004), with the deadline/cancellation poll amortised to one
   clock read per 64 steps. Step totals are the rel backend's own — the
   backends agree on documents, not on step counts. *)
let tick ctx =
  incr ctx.steps;
  Clip_obs.lim_tick ctx.obs;
  if !(ctx.steps) > ctx.max_steps then
    Clip_diag.fail
      (Clip_diag.error ~code:Clip_diag.Codes.limit_eval_steps
         ~hints:
           [ "raise [limits.max_eval_steps] if the mapping is expected to be this large" ]
         (Printf.sprintf "evaluation exceeded the budget of %d steps" ctx.max_steps));
  if !(ctx.steps) land 63 = 0 && not (Clip_run.Control.is_none ctx.ctl) then
    check_control ctx

(* Environments bind source variables to table rows and target
   variables to build nodes of the shared {!Clip_tgd.Builder} core. *)
type binding = Brow of Store.table * int | Btgt of Builder.bnode

module Env = Map.Make (String)

(* --- Source-side evaluation ------------------------------------------ *)

(* The generic item walk — the semantics oracle the columnar fast paths
   must agree with. It mirrors the tgd backend's [eval_src]/[step_items]
   over the boxed tree (same matches, same order, same dynamic error
   messages), which is what makes the two backends' dynamic errors
   byte-identical. Only the rare shapes reach it: aggregate arguments,
   scalars outside the two column forms, and [Store.fallback] cells. *)
let step_item (item : Value.item) (step : Path.step) : Value.item list =
  match (item, step) with
  | Value.Node (Xml.Node.Element e), Path.Child tag ->
    let sym = Xml.Symbol.intern tag in
    List.filter_map
      (function
        | Xml.Node.Element c when Xml.Symbol.equal c.Xml.Node.sym sym ->
          Some (Value.Node (Xml.Node.Element c))
        | Xml.Node.Element _ | Xml.Node.Text _ -> None)
      e.Xml.Node.children
  | Value.Node (Xml.Node.Element e), Path.Attr name ->
    (match Xml.Node.attr e name with Some a -> [ Value.Atomic a ] | None -> [])
  | Value.Node (Xml.Node.Element e), Path.Value ->
    (match Xml.Node.text_value e with Some a -> [ Value.Atomic a ] | None -> [])
  | (Value.Node (Xml.Node.Text _) | Value.Atomic _), _ -> []

let rec items_of ctx (store : Store.t) env (e : Term.expr) : Value.item list =
  tick ctx;
  match e with
  | Term.Root s ->
    (match store.Store.root_tag with
     | Some r when String.equal r s ->
       [ Value.Node store.Store.doc.Doc.nodes.(0) ]
     | Some r -> Builder.error "source root is <%s>, the mapping expects <%s>" r s
     | None -> Builder.error "source document root is a text node")
  | Term.Var x ->
    (match Env.find_opt x env with
     | Some (Brow (tbl, i)) -> [ Value.Node (Store.row_node tbl store i) ]
     | Some (Btgt _) ->
       Builder.error "variable %s is a target variable in a source position" x
     | None -> Builder.error "unbound source variable %s" x)
  | Term.Proj (inner, step) ->
    List.concat_map (fun item -> step_item item step) (items_of ctx store env inner)

(* Scalar evaluation with the two columnar fast paths — an attribute
   column read and a value-child column read, both single array loads
   verified equivalent to the generic walk (cells fall back on the
   [Store.fallback] sentinel). Everything else — constants, functions,
   arbitrary projections — runs the shared scalar kernel over the
   generic walk, so results and error messages match the tgd backend
   exactly. *)
let rec eval_scalar ctx store env (s : Term.scalar) : Xml.Atom.t list =
  tick ctx;
  match s with
  | Term.Const a -> [ a ]
  | Term.E (Term.Proj (Term.Var x, Path.Attr a) as e) ->
    (match Env.find_opt x env with
     | Some (Brow (tbl, i)) ->
       (match List.assoc_opt a tbl.Store.t_attrs with
        | Some col ->
          let cell = col.(i) in
          if cell >= 0 then [ Store.atom store cell ] else []
        | None -> Builder.atomize_items (items_of ctx store env e))
     | _ -> Builder.atomize_items (items_of ctx store env e))
  | Term.E (Term.Proj (Term.Proj (Term.Var x, Path.Child c), Path.Value) as e)
    ->
    (match Env.find_opt x env with
     | Some (Brow (tbl, i)) ->
       (match List.assoc_opt c tbl.Store.t_vals with
        | Some col ->
          let cell = col.(i) in
          if cell >= 0 then [ Store.atom store cell ]
          else if cell = Store.absent then []
          else Builder.atomize_items (items_of ctx store env e)
        | None -> Builder.atomize_items (items_of ctx store env e))
     | _ -> Builder.atomize_items (items_of ctx store env e))
  | Term.E e -> Builder.atomize_items (items_of ctx store env e)
  | Term.Fn (name, args) ->
    let arg_atoms =
      List.map
        (fun arg ->
          match eval_scalar ctx store env arg with
          | [ a ] -> a
          | [] -> Builder.error "%s: an argument evaluates to the empty sequence" name
          | _ -> Builder.error "%s: an argument evaluates to multiple values" name)
        args
    in
    [ Builder.apply_fn name arg_atoms ]

let holds ctx store env (c : Tgd.comparison) =
  let ls = eval_scalar ctx store env c.Tgd.left in
  let rs = eval_scalar ctx store env c.Tgd.right in
  List.exists (fun a -> List.exists (Builder.compare_atoms c.Tgd.op a) rs) ls

(* --- Planning ---------------------------------------------------------- *)

let gen_table (store : Store.t) (g : Tgd.source_gen) =
  match g.Tgd.sexpr with
  | Term.Proj (Term.Root _, Path.Child t) ->
    (match Store.table store t with
     | Some tbl -> tbl
     | None -> invalid_arg "Clip_rel.Eval: generator outside the compiled shape")
  | _ -> invalid_arg "Clip_rel.Eval: generator outside the compiled shape"

(* Enumerating a table is enumerating its row ordinals — the row vector
   is already in document order. The root sanity check runs lazily, on
   the first actual enumeration, so a mapping that never evaluates a
   source expression succeeds on a mismatched document exactly like the
   tree-walk backend. *)
let check_root (store : Store.t) root =
  match store.Store.root_tag with
  | Some r when String.equal r root -> ()
  | Some r -> Builder.error "source root is <%s>, the mapping expects <%s>" r root
  | None -> Builder.error "source document root is a text node"

let cond_of ctx store (c : Tgd.comparison) =
  let pvars = Term.scalar_vars c.Tgd.left @ Term.scalar_vars c.Tgd.right in
  let orig = { Clip_plan.pvars; test = (fun env -> holds ctx store env c) } in
  match c.Tgd.op with
  | Tgd.Eq | Tgd.In ->
    let keyed s =
      {
        Clip_plan.kvars = Term.scalar_vars s;
        keys =
          (fun env -> List.map Clip_plan.Key.of_atom (eval_scalar ctx store env s));
      }
    in
    Clip_plan.Eq { left = keyed c.Tgd.left; right = keyed c.Tgd.right; orig }
  | Tgd.Ne | Tgd.Lt | Tgd.Le | Tgd.Gt | Tgd.Ge -> Clip_plan.Other orig

type planned = {
  rm : Tgd.t;
  rplan : (binding Env.t, int) Clip_plan.t;
  rchildren : planned list;
}

(* Compile a mapping tree to physical plans over the column store:
   scans are row-ordinal sweeps, equality conditions hash-join over
   column-extracted keys. Row counts are exact, so the [`Cost] policy
   prices joins with true cardinalities instead of estimates. *)
let rec plan_mapping ctx store policy ~root bound (m : Tgd.t) =
  let gens =
    List.map
      (fun (g : Tgd.source_gen) ->
        let tbl = gen_table store g in
        let items = List.init (Array.length tbl.Store.t_rows) Fun.id in
        {
          Clip_plan.var = g.Tgd.svar;
          deps = Term.expr_vars g.Tgd.sexpr;
          est = Some (Array.length tbl.Store.t_rows);
          eval =
            (fun _env ->
              check_root store root;
              items);
          bind = (fun env i -> Env.add g.Tgd.svar (Brow (tbl, i)) env);
        })
      m.Tgd.foralls
  in
  let rplan =
    Clip_plan.plan ~policy ~bound ~gens
      ~conds:(List.map (cond_of ctx store) m.Tgd.cond)
      ()
  in
  let bound' =
    bound
    @ List.map (fun (g : Tgd.source_gen) -> g.Tgd.svar) m.Tgd.foralls
    @ List.map (fun (g : Tgd.target_gen) -> g.Tgd.tvar) m.Tgd.exists
  in
  {
    rm = m;
    rplan;
    rchildren = List.map (plan_mapping ctx store policy ~root bound') m.Tgd.children;
  }

(* --- Sessions ---------------------------------------------------------- *)

type session = {
  sctx : rctx;
  splans : (bool * Tgd.t, planned) Hashtbl.t; (* key: (cost-policy?, tgd) *)
  mutable slast : (bool * Tgd.t * planned) option;
}

module Session = struct
  type t = session

  let create source =
    { sctx = make_ctx source; splans = Hashtbl.create 8; slast = None }

  let source s = s.sctx.source
end

(* --- Execution --------------------------------------------------------- *)

let execute ?(limits = Clip_diag.Limits.default) ?(plan = `Auto)
    ?repr:(_ : Doc.repr option) ?(ctl = Clip_run.Control.none) ?session
    ?steps_out ?obs ~source (prog : Program.t) =
  let ctx =
    match session with
    | Some s when s.sctx.source == source -> s.sctx
    | _ -> make_ctx source
  in
  ctx.steps := 0;
  ctx.max_steps <- limits.Clip_diag.Limits.max_eval_steps;
  ctx.obs <- obs;
  ctx.ctl <- ctl;
  let record_steps () =
    match steps_out with Some r -> r := !(ctx.steps) | None -> ()
  in
  Fun.protect ~finally:record_steps @@ fun () ->
  if not (Clip_run.Control.is_none ctx.ctl) then check_control ctx;
  let store = force_store ctx prog.Program.shape in
  let target_root = prog.Program.target_root in
  let bld = Builder.create ~min_card:true ~target_root in
  let ops =
    {
      Builder.lookup_tgt =
        (fun env x ->
          match Env.find_opt x env with
          | Some (Btgt b) -> Some b
          | Some (Brow _) ->
            Builder.error "variable %s is a source variable in a target position" x
          | None -> None);
      bind_tgt = (fun env x b -> Env.add x (Btgt b) env);
      eval_scalar = (fun env s -> eval_scalar ctx store env s);
      eval_items = (fun env e -> items_of ctx store env e);
      (* Instance-level lineage is served by the tgd backend only
         ([Eval.run_traced]); recording here would be dead weight. *)
      record_provenance = (fun _env _node -> ());
    }
  in
  let pre_instantiate env m = Builder.pre_instantiate bld ~ops ~target_root env m in
  let emit_binding children env m =
    Builder.emit_binding bld ~ops ~target_root children env m
  in
  (* The naive nested-loop interpreter over the column store — the
     oracle for the plan path, mirroring the tgd backend's shape. *)
  let rec eval_mapping env (m : Tgd.t) =
    pre_instantiate env m;
    let rec cartesian env = function
      | [] -> [ env ]
      | (g : Tgd.source_gen) :: rest ->
        tick ctx;
        check_root store prog.Program.source_root;
        let tbl = gen_table store g in
        List.concat_map
          (fun i -> cartesian (Env.add g.Tgd.svar (Brow (tbl, i)) env) rest)
          (List.init (Array.length tbl.Store.t_rows) Fun.id)
    in
    List.iter
      (fun env ->
        tick ctx;
        if List.for_all (holds ctx store env) m.Tgd.cond then
          emit_binding (fun env -> List.iter (eval_mapping env) m.Tgd.children) env m)
      (cartesian env m.Tgd.foralls)
  in
  let planned_for policy =
    let build () =
      plan_mapping ctx store policy ~root:prog.Program.source_root []
        prog.Program.tgd
    in
    match session with
    | Some s when s.sctx == ctx ->
      let cost = match policy with `Cost -> true | `Force -> false in
      (match s.slast with
       | Some (c, m', p) when c = cost && m' == prog.Program.tgd ->
         Clip_obs.memo_hit ctx.obs;
         p
       | _ ->
         let p =
           let key = (cost, prog.Program.tgd) in
           match Hashtbl.find_opt s.splans key with
           | Some p ->
             Clip_obs.memo_hit ctx.obs;
             p
           | None ->
             let p = build () in
             Hashtbl.add s.splans key p;
             p
         in
         s.slast <- Some (cost, prog.Program.tgd, p);
         p)
    | _ -> build ()
  in
  let rec eval_planned env (p : planned) =
    pre_instantiate env p.rm;
    Clip_plan.execute ?obs:ctx.obs p.rplan
      ~tick:(fun () -> tick ctx)
      ~env
      ~emit:(fun env ->
        emit_binding
          (fun env -> List.iter (eval_planned env) p.rchildren)
          env p.rm)
  in
  (match plan with
   | `Naive -> eval_mapping Env.empty prog.Program.tgd
   | `Indexed -> eval_planned Env.empty (planned_for `Force)
   | `Auto -> eval_planned Env.empty (planned_for `Cost));
  Builder.root bld

let reraise_legacy ds =
  let d = match ds with d :: _ -> d | [] -> assert false in
  raise (Error d.Clip_diag.message)

let run_result ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~source prog =
  Clip_diag.guard (fun () ->
    Builder.bnode_to_node
      (execute ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~source prog))

let run ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~source prog =
  match run_result ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~source prog with
  | Ok n -> n
  | Error ds -> reraise_legacy ds

(* --- EXPLAIN ----------------------------------------------------------- *)

(* Static plan rendering, mirroring the tgd backend's renderer: the
   same rule layout and the same {!Clip_plan} stage lines, under a
   [backend: rel] header that states the store statistics. Nothing is
   evaluated, so the output is stable for golden tests. *)
let explain ?(plan = `Auto) ?session ~source (prog : Program.t) : string =
  let ctx =
    match session with
    | Some s when s.sctx.source == source -> s.sctx
    | _ -> make_ctx source
  in
  let store = force_store ctx prog.Program.shape in
  let b = Buffer.create 512 in
  Printf.bprintf b "backend: rel\nplan: %s\nstore: %d table(s), %d row(s)\n"
    (match plan with `Naive -> "naive" | `Indexed -> "indexed" | `Auto -> "auto")
    (List.length store.Store.tables)
    (Store.row_count store);
  let chain (m : Tgd.t) =
    match m.Tgd.foralls with
    | [] -> "(no source generators)"
    | gens ->
      "for "
      ^ String.concat ", "
          (List.map
             (fun (g : Tgd.source_gen) ->
               Printf.sprintf "%s in %s" g.Tgd.svar
                 (Term.expr_to_string g.Tgd.sexpr))
             gens)
  in
  let conds (m : Tgd.t) =
    match m.Tgd.cond with
    | [] -> ""
    | cs ->
      " where "
      ^ String.concat " and "
          (List.map
             (fun (c : Tgd.comparison) ->
               Printf.sprintf "%s %s %s"
                 (Term.scalar_to_string c.Tgd.left)
                 (Tgd.cmp_op_to_string c.Tgd.op)
                 (Term.scalar_to_string c.Tgd.right))
             cs)
  in
  let rule_header path m =
    Printf.bprintf b "rule %s: %s%s\n"
      (if String.equal path "" then "/" else path)
      (chain m) (conds m)
  in
  let rec naive_rules path (m : Tgd.t) =
    rule_header path m;
    if m.Tgd.foralls <> [] then
      Buffer.add_string b
        "  every generator: row-vector scan; conditions checked innermost\n";
    List.iteri
      (fun i c -> naive_rules (Printf.sprintf "%s/%d" path i) c)
      m.Tgd.children
  in
  let rec planned_rules path (p : planned) =
    rule_header path p.rm;
    if p.rm.Tgd.foralls <> [] then
      Printf.bprintf b "  plan: %s\n" (Clip_plan.describe p.rplan);
    Buffer.add_string b (Clip_plan.explain p.rplan);
    List.iteri
      (fun i c -> planned_rules (Printf.sprintf "%s/%d" path i) c)
      p.rchildren
  in
  (match plan with
   | `Naive ->
     Buffer.add_string b
       "strategy: nested-loop interpreter over the column store (forced)\n";
     naive_rules "" prog.Program.tgd
   | `Indexed ->
     Buffer.add_string b
       "strategy: physical plans over the column store, forced hash joins\n";
     planned_rules ""
       (plan_mapping ctx store `Force ~root:prog.Program.source_root []
          prog.Program.tgd)
   | `Auto ->
     Buffer.add_string b
       "strategy: physical plans over the column store, cost-based joins \
        (exact row counts)\n";
     planned_rules ""
       (plan_mapping ctx store `Cost ~root:prog.Program.source_root []
          prog.Program.tgd));
  Buffer.contents b
