(** Shared diagnostics for every Clip layer.

    A diagnostic is a severity, a stable error code (e.g.
    [CLIP-XML-001]), a human message, an optional source span and
    optional hints. Parsers, the compiler, the query generator and both
    evaluation engines report structured diagnostics through the
    [('a, t list) result] APIs of their modules; the legacy exceptions
    remain as thin wrappers over these.

    Internally, library code raises {!Fail} and the public entry points
    convert it with {!guard}; [Fail] should never escape a [_result]
    function — the fuzz harness ([test/fuzz]) asserts exactly that
    totality property. *)

type severity = Error | Warning | Info

(** A half-open source region. Lines and columns are 1-based;
    [end_col] points one past the last column. [offset] is the byte
    offset of the start of the span, or [-1] when unknown. *)
type span = {
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  offset : int;
}

(** [span ~line ~col ()] — a one-character span; widen it with
    [?end_line]/[?end_col], record the byte offset with [?offset]. *)
val span : ?end_line:int -> ?end_col:int -> ?offset:int -> line:int -> col:int -> unit -> span

(** [span_of_offset src off] — the span of the character at byte
    offset [off] in [src] (clamped to the text). *)
val span_of_offset : string -> int -> span

type t = {
  severity : severity;
  code : string;
  message : string;
  span : span option;
  hints : string list;
}

val make : ?severity:severity -> ?span:span -> ?hints:string list -> code:string -> string -> t
val error : ?span:span -> ?hints:string list -> code:string -> string -> t
val errorf :
  ?span:span -> ?hints:string list -> code:string -> ('a, unit, string, t) format4 -> 'a
val warning : ?span:span -> ?hints:string list -> code:string -> string -> t

val severity_to_string : severity -> string

(** One line: ["error[CLIP-XML-001] at line 3, column 5: ..."]. *)
val to_string : t -> string

(** Multi-line rendering; when [src] is given, includes the offending
    source line with a caret marker under the span. *)
val render : ?src:string -> t -> string

(** {!render} for each diagnostic, blank-line separated. *)
val render_list : ?src:string -> t list -> string

val is_error : t -> bool
val has_errors : t list -> bool

(** True for resource-guard diagnostics (codes [CLIP-LIM-*]). *)
val is_resource_limit : t -> bool

(** True for diagnostics a {e fresh attempt} could plausibly clear:
    I/O errors and injected transient faults ([CLIP-FLT-001]).
    Deterministic failures (syntax, dynamic errors, exceeded limits,
    cancellation) are never transient — retrying them is wasted work.
    {!Clip_par.map_results} consults this for its bounded-retry
    policy. *)
val is_transient : t -> bool

(** [has_transient ds] — any diagnostic in [ds] {!is_transient}. *)
val has_transient : t list -> bool

(** The internal carrier. Raise through {!fail}; catch with {!guard}. *)
exception Fail of t list

val fail : t -> 'a
val fail_all : t list -> 'a

(** [failf ~code fmt ...] — build an error diagnostic and raise it. *)
val failf :
  ?span:span -> ?hints:string list -> code:string -> ('a, unit, string, 'b) format4 -> 'a

(** [guard f] is [Ok (f ())], or [Error ds] when [f] raises [Fail ds]. *)
val guard : (unit -> 'a) -> ('a, t list) result

(** Stable error codes. Keep the list in sync with README.md. *)
module Codes : sig
  val xml_syntax : string (** [CLIP-XML-001] malformed XML *)

  val schema_lexical : string (** [CLIP-SCH-001] schema DSL lexical error *)

  val schema_syntax : string (** [CLIP-SCH-002] schema DSL syntax error *)

  val xsd_unsupported : string (** [CLIP-SCH-003] unsupported XSD construct *)

  val schema_invalid : string (** [CLIP-SCH-004] ill-formed schema (duplicates, bad refs) *)

  val mapping_syntax : string (** [CLIP-MAP-001] mapping DSL syntax error *)

  val xquery_syntax : string (** [CLIP-XQ-001] XQuery syntax error *)

  val xquery_eval : string (** [CLIP-XQ-002] XQuery dynamic error *)

  val tgd_eval : string (** [CLIP-TGD-001] tgd engine dynamic error *)

  val compile_unbound_var : string (** [CLIP-CMP-001] unbound variable *)

  val compile_unanchored_input : string (** [CLIP-CMP-002] input not under the source root *)

  val compile_unanchored_leaf : string (** [CLIP-CMP-003] source leaf has no anchor binding *)

  val compile_bad_target : string (** [CLIP-CMP-004] value-mapping target outside its builder *)

  val compile_identity_arity : string (** [CLIP-CMP-005] identity value mapping arity *)

  val compile_aggregate_arity : string (** [CLIP-CMP-006] aggregate value mapping arity *)

  val compile_no_driver : string (** [CLIP-CMP-007] non-aggregate value mapping without driver *)

  val compile_bad_nesting : string (** [CLIP-CMP-008] output not nested under context output *)

  val xquery_gen_unsupported : string (** [CLIP-XQG-001] tgd feature without XQuery translation *)

  val clio_vm_arity : string (** [CLIP-GEN-001] Clio value-mapping arity *)

  val clio_not_expressible : string (** [CLIP-GEN-002] forest not expressible as builders *)

  val io_error : string (** [CLIP-IO-001] file system error (CLI) *)

  val limit_input_bytes : string (** [CLIP-LIM-001] input larger than [max_input_bytes] *)

  val limit_xml_depth : string (** [CLIP-LIM-002] XML nesting deeper than [max_xml_depth] *)

  val limit_recursion : string (** [CLIP-LIM-003] parser recursion limit *)

  val limit_eval_steps : string (** [CLIP-LIM-004] evaluation step budget exhausted *)

  val limit_deadline : string (** [CLIP-LIM-005] evaluation deadline exceeded *)

  val cancelled : string (** [CLIP-LIM-006] evaluation cancelled cooperatively *)

  val fault_transient : string (** [CLIP-FLT-001] injected transient fault ({!Clip_fault}) *)

  val fault_permanent : string (** [CLIP-FLT-002] injected permanent fault ({!Clip_fault}) *)

  val algebra_schema_mismatch : string
  (** [CLIP-ALG-001] composition: m1's target is not m2's source *)

  val algebra_grouping : string
  (** [CLIP-ALG-002] composition: a grouping/Skolem pattern escapes the
      composable fragment *)

  val algebra_ambiguous : string
  (** [CLIP-ALG-003] composition: no unique producer for an
      intermediate element, or the unfolded iterations would alias *)

  val algebra_leaf : string
  (** [CLIP-ALG-004] composition: an intermediate leaf is read but not
      populated, or its value expression is not substitutable *)

  val algebra_multiplicity : string
  (** [CLIP-ALG-005] composition: unfolding would change multiplicity
      (e.g. a non-repeating intermediate created once per binding) *)

  val rel_fk_arity : string
  (** [CLIP-REL-001] relational encoding: foreign key column-count
      mismatch *)

  val rel_fk_unknown : string
  (** [CLIP-REL-002] relational encoding: foreign key names an unknown
      table or column *)

  val rel_not_relational : string
  (** [CLIP-REL-003] relational backend: the mapping's source is not
      relational-shaped *)

  (** [CLIP-VAL-<kind>] for a validity issue kind (Sec. III), e.g.
      [CLIP-VAL-unanchored-source]. *)
  val validity : string -> string
end

(** Resource guards. Parsers and engines take [?limits] and degrade to
    a [CLIP-LIM-*] diagnostic instead of a stack overflow or hang. *)
module Limits : sig
  type t = {
    max_input_bytes : int; (** largest accepted input, in bytes *)
    max_xml_depth : int; (** deepest accepted XML element nesting *)
    max_parser_recursion : int; (** deepest accepted DSL/XQuery nesting *)
    max_eval_steps : int; (** evaluation step budget for both engines *)
  }

  val default : t
  val unlimited : t
end
