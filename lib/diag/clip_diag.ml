type severity = Error | Warning | Info

type span = {
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  offset : int;
}

let span ?end_line ?end_col ?(offset = -1) ~line ~col () =
  let end_line = Option.value end_line ~default:line in
  let end_col =
    match end_col with
    | Some c -> c
    | None -> if end_line = line then col + 1 else col
  in
  { line; col; end_line; end_col; offset }

let span_of_offset src off =
  let off = max 0 (min off (String.length src)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  span ~offset:off ~line:!line ~col:(off - !bol + 1) ()

type t = {
  severity : severity;
  code : string;
  message : string;
  span : span option;
  hints : string list;
}

let make ?(severity = Error) ?span ?(hints = []) ~code message =
  { severity; code; message; span; hints }

let error ?span ?hints ~code message = make ?span ?hints ~code message

let errorf ?span ?hints ~code fmt =
  Printf.ksprintf (fun message -> error ?span ?hints ~code message) fmt

let warning ?span ?hints ~code message =
  make ~severity:Warning ?span ?hints ~code message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string d =
  let where =
    match d.span with
    | Some s -> Printf.sprintf " at line %d, column %d" s.line s.col
    | None -> ""
  in
  Printf.sprintf "%s[%s]%s: %s" (severity_to_string d.severity) d.code where d.message

let nth_line src n =
  (* 1-based; [None] when the text has fewer lines. *)
  let len = String.length src in
  let rec start_of k i =
    if k <= 1 then Some i
    else
      match String.index_from_opt src i '\n' with
      | Some j when j + 1 <= len -> start_of (k - 1) (j + 1)
      | Some _ | None -> None
  in
  match start_of n 0 with
  | None -> None
  | Some i when i > len -> None
  | Some i ->
    let stop =
      match String.index_from_opt src i '\n' with Some j -> j | None -> len
    in
    Some (String.sub src i (stop - i))

let render ?src d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s[%s]: %s" (severity_to_string d.severity) d.code d.message);
  (match d.span with
   | None -> ()
   | Some s ->
     Buffer.add_string buf (Printf.sprintf "\n  --> line %d, column %d" s.line s.col);
     (match src with
      | None -> ()
      | Some src ->
        (match nth_line src s.line with
         | None -> ()
         | Some text ->
           let gutter = string_of_int s.line in
           let pad = String.make (String.length gutter) ' ' in
           (* Tabs would misalign the caret; render them as one space. *)
           let text = String.map (fun c -> if c = '\t' then ' ' else c) text in
           let width =
             if s.end_line = s.line && s.end_col > s.col then s.end_col - s.col else 1
           in
           let col = max 1 (min s.col (String.length text + 1)) in
           (* Window very long lines (minified XML, generated input)
              around the caret so one diagnostic cannot dump the whole
              line to the terminal. *)
           let max_width = 120 in
           let text, col =
             if String.length text <= max_width then (text, col)
             else begin
               let start = max 0 (min (col - 1 - (max_width / 3)) (String.length text - max_width)) in
               let chunk = String.sub text start (min max_width (String.length text - start)) in
               let pre = if start > 0 then "..." else "" in
               let post = if start + max_width < String.length text then "..." else "" in
               (pre ^ chunk ^ post, col - start + String.length pre)
             end
           in
           let width = min width (String.length text - col + 2) in
           let width = max 1 width in
           Buffer.add_string buf (Printf.sprintf "\n %s |\n %s | %s" pad gutter text);
           Buffer.add_string buf
             (Printf.sprintf "\n %s | %s%s" pad
                (String.make (col - 1) ' ')
                (String.make width '^')))));
  List.iter (fun h -> Buffer.add_string buf (Printf.sprintf "\n  hint: %s" h)) d.hints;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_list ?src ds = String.concat "\n" (List.map (render ?src) ds)
let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let is_resource_limit d =
  String.length d.code >= 8 && String.equal (String.sub d.code 0 8) "CLIP-LIM"

exception Fail of t list

let fail d = raise (Fail [ d ])
let fail_all ds = raise (Fail ds)

let failf ?span ?hints ~code fmt =
  Printf.ksprintf (fun message -> fail (error ?span ?hints ~code message)) fmt

let guard f = match f () with v -> Ok v | exception Fail ds -> Error ds

module Codes = struct
  let xml_syntax = "CLIP-XML-001"
  let schema_lexical = "CLIP-SCH-001"
  let schema_syntax = "CLIP-SCH-002"
  let xsd_unsupported = "CLIP-SCH-003"
  let schema_invalid = "CLIP-SCH-004"
  let mapping_syntax = "CLIP-MAP-001"
  let xquery_syntax = "CLIP-XQ-001"
  let xquery_eval = "CLIP-XQ-002"
  let tgd_eval = "CLIP-TGD-001"
  let compile_unbound_var = "CLIP-CMP-001"
  let compile_unanchored_input = "CLIP-CMP-002"
  let compile_unanchored_leaf = "CLIP-CMP-003"
  let compile_bad_target = "CLIP-CMP-004"
  let compile_identity_arity = "CLIP-CMP-005"
  let compile_aggregate_arity = "CLIP-CMP-006"
  let compile_no_driver = "CLIP-CMP-007"
  let compile_bad_nesting = "CLIP-CMP-008"
  let xquery_gen_unsupported = "CLIP-XQG-001"
  let clio_vm_arity = "CLIP-GEN-001"
  let clio_not_expressible = "CLIP-GEN-002"
  let io_error = "CLIP-IO-001"
  let limit_input_bytes = "CLIP-LIM-001"
  let limit_xml_depth = "CLIP-LIM-002"
  let limit_recursion = "CLIP-LIM-003"
  let limit_eval_steps = "CLIP-LIM-004"
  let limit_deadline = "CLIP-LIM-005"
  let cancelled = "CLIP-LIM-006"
  let fault_transient = "CLIP-FLT-001"
  let fault_permanent = "CLIP-FLT-002"
  let algebra_schema_mismatch = "CLIP-ALG-001"
  let algebra_grouping = "CLIP-ALG-002"
  let algebra_ambiguous = "CLIP-ALG-003"
  let algebra_leaf = "CLIP-ALG-004"
  let algebra_multiplicity = "CLIP-ALG-005"
  let rel_fk_arity = "CLIP-REL-001"
  let rel_fk_unknown = "CLIP-REL-002"
  let rel_not_relational = "CLIP-REL-003"
  let validity kind = "CLIP-VAL-" ^ kind
end

(* Retry classification. Deterministic failures — syntax errors, type
   errors, exceeded limits, cancellation — will fail identically on a
   fresh attempt, so retrying them is wasted work (and, for deadlines,
   actively harmful: it doubles the latency of an already-late
   request). Only faults that stem from the environment rather than
   the input are worth a retry: I/O errors and injected transient
   faults ({!Codes.fault_transient}, the class {!Clip_fault} uses to
   model recoverable infrastructure hiccups). *)
let is_transient d =
  String.equal d.code Codes.fault_transient || String.equal d.code Codes.io_error

let has_transient ds = List.exists is_transient ds

module Limits = struct
  type t = {
    max_input_bytes : int;
    max_xml_depth : int;
    max_parser_recursion : int;
    max_eval_steps : int;
  }

  let default =
    {
      max_input_bytes = 16 * 1024 * 1024;
      max_xml_depth = 800;
      max_parser_recursion = 400;
      max_eval_steps = 100_000_000;
    }

  let unlimited =
    {
      max_input_bytes = max_int;
      max_xml_depth = max_int;
      max_parser_recursion = max_int;
      max_eval_steps = max_int;
    }
end
