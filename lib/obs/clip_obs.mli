(** Zero-dependency observability: execution counters and trace spans.

    Every execution layer — the tgd engine, the XQuery evaluator, the
    shared physical-plan executor, the tag index and the engine's
    session caches — reports cheap monotonic counters through an
    ambient {e sink}. The sink is off by default: every increment is a
    single mutable-ref load plus a branch, and the disabled path
    allocates nothing (call {!enabled} before computing an expensive
    increment argument such as a list length). Install a sink with
    {!with_counters} around a run to collect its counters.

    Trace spans time coarse phases (compile / plan / execute / render)
    against an injected wall clock, so this library needs neither
    [unix] nor any other dependency. Both facilities are ambient
    single-slot state, matching the engine's documented
    non-thread-safety.

    Nothing here affects semantics: the same bindings flow whether or
    not a sink is installed — which is exactly what makes the counters
    usable as a cross-backend test oracle (e.g. an [`Indexed] run must
    never scan more nodes than the [`Naive] oracle on the same
    input). *)

(** {1 Counters} *)

module Counters : sig
  (** One set of monotonic execution counters. All counts are
      per-sink: install a fresh value around each measured run. *)
  type t = {
    mutable nodes_scanned : int;
        (** child nodes visited (naive [Child] steps) or matches
            enumerated (indexed steps and probe hits) *)
    mutable child_steps : int;  (** [Child]-step evaluations, both backends *)
    mutable index_probes : int;  (** {!Clip_xml.Index} lookups *)
    mutable index_hits : int;  (** lookups answered by a memoised grouping *)
    mutable hash_join_builds : int;  (** hash-join tables built *)
    mutable hash_join_probes : int;  (** hash-join table lookups *)
    mutable memo_hits : int;  (** compiled-plan memo hits (per-document) *)
    mutable session_hits : int;
        (** engine session-cache hits (compiled tgds, generated
            queries, reused sessions) *)
    mutable lim_ticks : int;
        (** CLIP-LIM-004 budget ticks; equals the [?steps_out] count *)
  }

  val create : unit -> t
  val reset : t -> unit
  val copy : t -> t

  (** Stable field order, for reports and tests. *)
  val to_assoc : t -> (string * int) list

  (** The counters that describe {e execution work} (everything except
      the cache-warming [memo_hits]/[session_hits]) — the subset two
      runs must agree on to be "the same physical execution". *)
  val work_assoc : t -> (string * int) list

  (** One line per non-zero counter, ["  <name> = <n>"]. *)
  val to_string : t -> string

  (** A flat JSON object with every counter. *)
  val to_json : t -> string
end

(** [enabled ()] — is a counter sink installed? Check before computing
    a non-constant increment (keeps the disabled path allocation- and
    traversal-free). *)
val enabled : unit -> bool

(** The installed sink, if any. *)
val counters : unit -> Counters.t option

(** [with_counters c f] — install [c] as the ambient sink for the
    duration of [f], restoring the previous sink afterwards (also on
    exceptions). *)
val with_counters : Counters.t -> (unit -> 'a) -> 'a

(** {2 Increment points} (no-ops when no sink is installed) *)

val scanned : int -> unit
val child_step : unit -> unit
val index_probe : unit -> unit
val index_hit : unit -> unit
val hash_join_build : unit -> unit
val hash_join_probe : unit -> unit
val memo_hit : unit -> unit
val session_hit : unit -> unit
val lim_tick : unit -> unit

(** {1 Trace spans} *)

module Trace : sig
  (** A completed phase timing. [depth] is the nesting level at entry
      (0 = outermost); spans are listed in completion order and
      re-ordered to start order by {!render}. *)
  type span = {
    sname : string;
    sstart : float;  (** clock value at entry *)
    sdur : float;  (** seconds spent inside the span *)
    sdepth : int;
  }

  type t

  (** [create ~now ()] — a tracer reading the injected clock (pass
      [Unix.gettimeofday]; the default [Sys.time] only measures CPU
      seconds). *)
  val create : ?now:(unit -> float) -> unit -> t

  (** [with_tracer t f] — install [t] as the ambient tracer for the
      duration of [f] (restores the previous tracer, also on
      exceptions). *)
  val with_tracer : t -> (unit -> 'a) -> 'a

  (** [span name f] — run [f], timing it as a span of the ambient
      tracer; calls [f] directly when tracing is off. Exceptions
      propagate; the span is still recorded. *)
  val span : string -> (unit -> 'a) -> 'a

  (** Completed spans, in start order. *)
  val spans : t -> span list

  (** An indented tree, one line per span:
      ["execute              12.345 ms"]. *)
  val render : t -> string

  (** A JSON array of [{"name", "start_ms", "dur_ms", "depth"}]. *)
  val to_json : t -> string
end
