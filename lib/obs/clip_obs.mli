(** Zero-dependency observability: execution counters and trace spans.

    Every execution layer — the tgd engine, the XQuery evaluator, the
    shared physical-plan executor, the tag index and the engine's
    session caches — reports cheap monotonic counters through an
    explicit {e sink} ([Counters.t option]) threaded down from the
    execution context ({!Clip_run}). There is no ambient global slot:
    a sink is owned by exactly one run, so concurrent runs — including
    runs on different domains ({!Clip_par}) — can never share or
    clobber each other's counters. The disabled path ([None]) is a
    match and a branch and allocates nothing; call {!enabled} before
    computing an expensive increment argument such as a list length.

    Trace spans time coarse phases (compile / translate / parse /
    execute) against an injected wall clock, so this library needs
    neither [unix] nor any other dependency. Like sinks, a tracer is
    passed explicitly ([Trace.t option]); {!Trace.span} with [None]
    calls the thunk directly.

    Nothing here affects semantics: the same bindings flow whether or
    not a sink is supplied — which is exactly what makes the counters
    usable as a cross-backend test oracle (e.g. an [`Indexed] run must
    never scan more nodes than the [`Naive] oracle on the same
    input). *)

(** {1 Counters} *)

module Counters : sig
  (** One set of monotonic execution counters. All counts are
      per-sink: supply a fresh value to each measured run. *)
  type t = {
    mutable nodes_scanned : int;
        (** child nodes visited (naive [Child] steps) or matches
            enumerated (indexed steps and probe hits) *)
    mutable child_steps : int;  (** [Child]-step evaluations, both backends *)
    mutable index_probes : int;  (** {!Clip_xml.Index} lookups *)
    mutable index_hits : int;  (** lookups answered by a memoised grouping *)
    mutable hash_join_builds : int;  (** hash-join tables built *)
    mutable hash_join_probes : int;  (** hash-join table lookups *)
    mutable batches_executed : int;
        (** frontier chunks processed by the vectorized plan executor
            (zero on the boxed-tree interpreters) *)
    mutable batch_width : int;
        (** summed widths of those chunks;
            [batch_width / batches_executed] is the mean batch width *)
    mutable memo_hits : int;  (** compiled-plan memo hits (per-document) *)
    mutable session_hits : int;
        (** engine session-cache hits (compiled tgds, generated
            queries, reused sessions) *)
    mutable lim_ticks : int;
        (** CLIP-LIM-004 budget ticks; equals the [?steps_out] count *)
    mutable ctl_checks : int;
        (** deadline/cancellation polls actually performed at tick
            sites (zero when the run carries no {!Clip_run.Control}) *)
    mutable faults_injected : int;
        (** {!Clip_fault} faults fired into this run (zero outside
            fault-injection harnesses) *)
  }

  val create : unit -> t
  val reset : t -> unit
  val copy : t -> t

  (** [add ~into c] — add every counter of [c] into [into]. This is
      the parallel merge: {!Clip_par} gives each worker domain a fresh
      sink and folds them into the parent's sink with [add]. Every
      counter is a sum over per-task increments, so the merged totals
      are independent of how tasks were partitioned across domains. *)
  val add : into:t -> t -> unit

  (** Stable field order, for reports and tests. *)
  val to_assoc : t -> (string * int) list

  (** The counters that describe {e execution work} (everything except
      the cache-warming [memo_hits]/[session_hits]) — the subset two
      runs must agree on to be "the same physical execution". *)
  val work_assoc : t -> (string * int) list

  (** One line per non-zero counter, ["  <name> = <n>"]. *)
  val to_string : t -> string

  (** A flat JSON object with every counter. *)
  val to_json : t -> string
end

(** A counter sink: [Some c] collects into [c], [None] is off. *)
type sink = Counters.t option

(** The disabled sink. *)
val none : sink

(** [enabled s] — is [s] collecting? Check before computing a
    non-constant increment (keeps the disabled path allocation- and
    traversal-free). *)
val enabled : sink -> bool

(** {2 Increment points} (no-ops on [None]) *)

val scanned : sink -> int -> unit
val child_step : sink -> unit
val index_probe : sink -> unit
val index_hit : sink -> unit
val hash_join_build : sink -> unit
val hash_join_probe : sink -> unit

(** [batch_executed s] / [batch_width s n] — one frontier chunk of [n]
    environments processed by the vectorized plan executor. *)
val batch_executed : sink -> unit

val batch_width : sink -> int -> unit
val memo_hit : sink -> unit
val session_hit : sink -> unit
val lim_tick : sink -> unit
val ctl_check : sink -> unit
val fault_injected : sink -> unit

(** {1 Trace spans} *)

module Trace : sig
  (** A completed phase timing. [depth] is the nesting level at entry
      (0 = outermost); spans are listed in completion order and
      re-ordered to start order by {!render}. *)
  type span = {
    sname : string;
    sstart : float;  (** clock value at entry *)
    sdur : float;  (** seconds spent inside the span *)
    sdepth : int;
  }

  type t

  (** [create ~now ()] — a tracer reading the injected clock (pass
      [Unix.gettimeofday]; the default [Sys.time] only measures CPU
      seconds). A tracer is single-domain state: give each domain its
      own. *)
  val create : ?now:(unit -> float) -> unit -> t

  (** [span tracer name f] — run [f], timing it as a span of [tracer];
      calls [f] directly when [tracer] is [None]. Exceptions
      propagate; the span is still recorded. *)
  val span : t option -> string -> (unit -> 'a) -> 'a

  (** Completed spans, in start order. *)
  val spans : t -> span list

  (** An indented tree, one line per span:
      ["execute              12.345 ms"]. *)
  val render : t -> string

  (** A JSON array of [{"name", "start_ms", "dur_ms", "depth"}]. *)
  val to_json : t -> string
end
