(* Explicit observability sinks. A sink is a plain value threaded
   through every layer as part of the execution context — there is no
   ambient global slot, so independent runs (including runs on
   different domains) never share or clobber each other's counters.
   The disabled path is a [None] match and a branch: no closure, no
   allocation, nothing the GC ever sees. *)

module Counters = struct
  type t = {
    mutable nodes_scanned : int;
    mutable child_steps : int;
    mutable index_probes : int;
    mutable index_hits : int;
    mutable hash_join_builds : int;
    mutable hash_join_probes : int;
    mutable batches_executed : int;
    mutable batch_width : int;
    mutable memo_hits : int;
    mutable session_hits : int;
    mutable lim_ticks : int;
    mutable ctl_checks : int;
    mutable faults_injected : int;
  }

  let create () =
    {
      nodes_scanned = 0;
      child_steps = 0;
      index_probes = 0;
      index_hits = 0;
      hash_join_builds = 0;
      hash_join_probes = 0;
      batches_executed = 0;
      batch_width = 0;
      memo_hits = 0;
      session_hits = 0;
      lim_ticks = 0;
      ctl_checks = 0;
      faults_injected = 0;
    }

  let reset c =
    c.nodes_scanned <- 0;
    c.child_steps <- 0;
    c.index_probes <- 0;
    c.index_hits <- 0;
    c.hash_join_builds <- 0;
    c.hash_join_probes <- 0;
    c.batches_executed <- 0;
    c.batch_width <- 0;
    c.memo_hits <- 0;
    c.session_hits <- 0;
    c.lim_ticks <- 0;
    c.ctl_checks <- 0;
    c.faults_injected <- 0

  let copy c = { c with nodes_scanned = c.nodes_scanned }

  let add ~into c =
    into.nodes_scanned <- into.nodes_scanned + c.nodes_scanned;
    into.child_steps <- into.child_steps + c.child_steps;
    into.index_probes <- into.index_probes + c.index_probes;
    into.index_hits <- into.index_hits + c.index_hits;
    into.hash_join_builds <- into.hash_join_builds + c.hash_join_builds;
    into.hash_join_probes <- into.hash_join_probes + c.hash_join_probes;
    into.batches_executed <- into.batches_executed + c.batches_executed;
    into.batch_width <- into.batch_width + c.batch_width;
    into.memo_hits <- into.memo_hits + c.memo_hits;
    into.session_hits <- into.session_hits + c.session_hits;
    into.lim_ticks <- into.lim_ticks + c.lim_ticks;
    into.ctl_checks <- into.ctl_checks + c.ctl_checks;
    into.faults_injected <- into.faults_injected + c.faults_injected

  let work_assoc c =
    [
      ("nodes_scanned", c.nodes_scanned);
      ("child_steps", c.child_steps);
      ("index_probes", c.index_probes);
      ("index_hits", c.index_hits);
      ("hash_join_builds", c.hash_join_builds);
      ("hash_join_probes", c.hash_join_probes);
      ("batches_executed", c.batches_executed);
      ("batch_width", c.batch_width);
      ("lim_ticks", c.lim_ticks);
    ]

  let to_assoc c =
    work_assoc c
    @ [
        ("memo_hits", c.memo_hits);
        ("session_hits", c.session_hits);
        ("ctl_checks", c.ctl_checks);
        ("faults_injected", c.faults_injected);
      ]

  let to_string c =
    String.concat ""
      (List.filter_map
         (fun (name, v) ->
           if v = 0 then None else Some (Printf.sprintf "  %-16s = %d\n" name v))
         (to_assoc c))

  let to_json c =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map
            (fun (name, v) -> Printf.sprintf "\"%s\": %d" name v)
            (to_assoc c)))
end

type sink = Counters.t option

let none : sink = None
let enabled (s : sink) = s <> None

let scanned (s : sink) n =
  match s with
  | None -> ()
  | Some c -> c.Counters.nodes_scanned <- c.Counters.nodes_scanned + n

let child_step (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.child_steps <- c.Counters.child_steps + 1

let index_probe (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.index_probes <- c.Counters.index_probes + 1

let index_hit (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.index_hits <- c.Counters.index_hits + 1

let hash_join_build (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.hash_join_builds <- c.Counters.hash_join_builds + 1

let hash_join_probe (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.hash_join_probes <- c.Counters.hash_join_probes + 1

(* One call per (stage, frontier chunk) the vectorized executor
   processes; [batch_width] accumulates the chunk widths, so
   [batch_width / batches_executed] is the mean id-vector width. *)
let batch_executed (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.batches_executed <- c.Counters.batches_executed + 1

let batch_width (s : sink) n =
  match s with
  | None -> ()
  | Some c -> c.Counters.batch_width <- c.Counters.batch_width + n

let memo_hit (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.memo_hits <- c.Counters.memo_hits + 1

let session_hit (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.session_hits <- c.Counters.session_hits + 1

let lim_tick (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.lim_ticks <- c.Counters.lim_ticks + 1

let ctl_check (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.ctl_checks <- c.Counters.ctl_checks + 1

let fault_injected (s : sink) =
  match s with
  | None -> ()
  | Some c -> c.Counters.faults_injected <- c.Counters.faults_injected + 1

module Trace = struct
  type span = { sname : string; sstart : float; sdur : float; sdepth : int }

  type t = {
    now : unit -> float;
    t0 : float;
    mutable depth : int;
    mutable done_rev : span list; (* completion order, reversed *)
  }

  let create ?(now = Sys.time) () = { now; t0 = now (); depth = 0; done_rev = [] }

  let span tracer name f =
    match tracer with
    | None -> f ()
    | Some t ->
      let depth = t.depth in
      let start = t.now () in
      t.depth <- depth + 1;
      let finish () =
        t.depth <- depth;
        t.done_rev <-
          { sname = name; sstart = start -. t.t0; sdur = t.now () -. start; sdepth = depth }
          :: t.done_rev
      in
      Fun.protect ~finally:finish f

  let spans t =
    List.sort
      (fun a b ->
        (* start order; a parent starting with its first child sorts
           before it (smaller depth first) *)
        match compare a.sstart b.sstart with
        | 0 -> compare a.sdepth b.sdepth
        | c -> c)
      (List.rev t.done_rev)

  let render t =
    String.concat ""
      (List.map
         (fun s ->
           Printf.sprintf "  %-*s%-*s %8.3f ms\n" (2 * s.sdepth) "" (24 - (2 * s.sdepth))
             s.sname (1000. *. s.sdur))
         (spans t))

  let to_json t =
    Printf.sprintf "[%s]"
      (String.concat ", "
         (List.map
            (fun s ->
              Printf.sprintf
                "{\"name\": \"%s\", \"start_ms\": %.3f, \"dur_ms\": %.3f, \"depth\": %d}"
                s.sname (1000. *. s.sstart) (1000. *. s.sdur) s.sdepth)
            (spans t)))
end
