(* A backend-agnostic physical-plan layer.

   Both execution backends (the nested-tgd engine and the XQuery
   evaluator) share the same inner loop: a chain of generators binding
   variables to items, a conjunction of filter conditions, and a
   per-binding action. The naive interpreters enumerate the full
   Cartesian product of the generators and only then filter; this
   module separates that logical shape from a physical evaluation plan:

   - condition pushdown: each condition is checked at the earliest
     generator position at which all its variables are bound;
   - hash joins: an equality condition between earlier-bound variables
     and a later generator turns that generator — together with the
     contiguous chain of generators feeding it, when that chain is
     independent of the probe side — into a hash-table probe, built
     once per environment in which the segment's inputs are fixed;
   - streaming execution: bindings are folded into an [emit] callback
     instead of being materialised as a list.

   The planner works on an abstract description — variable-dependency
   sets plus evaluation closures — so it does not depend on either
   backend's expression language. Enumeration order is preserved
   exactly: pushdown never reorders generators, and a hash probe
   yields its matches in build-side (document) order, so a plan-based
   run is byte-identical to the naive interpreter on every input whose
   evaluation does not raise. (Error behaviour may differ: pushdown
   can evaluate a failing condition that the naive interpreter would
   never reach because a later generator is empty, and vice versa.) *)

module Key = struct
  (* Hashable join/dedup keys over atoms. The per-atom normalisation —
     the one spot where "which atoms are the same join key" is decided
     — lives in [Clip_xml.Atom.key], shared with both backend
     evaluators; this module only lifts it to composite (tuple) keys. *)
  type norm = Clip_xml.Atom.key

  type t = norm list

  let norm_atom = Clip_xml.Atom.key
  let of_atom a = [ norm_atom a ]
  let of_atoms atoms = List.map norm_atom atoms
  let equal (a : t) (b : t) = a = b
  let hash (k : t) = Hashtbl.hash k
end

type mode = [ `Naive | `Indexed | `Auto ]
type policy = [ `Force | `Cost ]

(* --- Planner input ----------------------------------------------------- *)

type ('env, 'item) gen = {
  var : string;  (** the variable this generator binds *)
  deps : string list;  (** variables its expression reads *)
  est : int option;
      (** estimated items per evaluation (from {!Clip_xml.Stats});
          [None] = unknown, priced as large *)
  eval : 'env -> 'item list;  (** enumerate the items, in order *)
  bind : 'env -> 'item -> 'env;
}

type 'env pred = {
  pvars : string list;  (** variables the predicate reads *)
  test : 'env -> bool;
}

(* One side of an equality condition, as hashable keys. [keys] returns
   one key per atom of the (possibly multi-valued) side; the condition
   holds when the two sides share at least one key. *)
type 'env keyed = {
  kvars : string list;
  keys : 'env -> Key.t list;
}

type 'env cond =
  | Eq of { left : 'env keyed; right : 'env keyed; orig : 'env pred }
  | Other of 'env pred

(* --- Physical plan ----------------------------------------------------- *)

(* A step covers one generator (Scan) or a contiguous run of
   generators (Probe) replaced wholesale by a hash-table lookup: the
   table enumerates the whole segment once per build environment and
   stores the bound item tuples, so probing restores every segment
   variable at once. A single-generator hash join is the segment of
   length one. *)
type ('env, 'item) stage =
  | Scan of { gen : ('env, 'item) gen; preds : 'env pred list }
  | Probe of {
      gens : ('env, 'item) gen array;
          (** the segment's generators, in enumeration order *)
      slot : int;  (** table slot, unique per probe *)
      build_at : int;  (** step index at whose entry the table is built *)
      build_keys : 'env -> Key.t list;
          (** keys of one build-side tuple (evaluated with the whole
              segment bound) *)
      probe_keys : 'env -> Key.t list;
      preds : 'env pred list;
          (** residual predicates, including the original equality —
              re-checked so key coarsening can never widen the join —
              and every condition pushdown placed inside the segment *)
    }

type ('env, 'item) t = {
  pre : 'env pred list;  (** conditions decided by the outer environment *)
  stages : ('env, 'item) stage array;  (** steps, in enumeration order *)
  builds : int list array;
      (** [builds.(i)]: probe steps whose table is built on entry to
          step [i] (once per binding of the steps [< i]) *)
  nslots : int;
  notes : string list;
      (** planner decisions, one line per equality condition: the
          chosen strategy plus the cost-model inputs that justified it *)
}

let stage_gens = function Scan { gen; _ } -> [| gen |] | Probe { gens; _ } -> gens
let est_str = function Some e -> string_of_int e | None -> "?"

let describe t =
  String.concat " "
    (Array.to_list
       (Array.map
          (function
            | Scan { gen; preds } ->
              Printf.sprintf "scan(%s%s)" gen.var
                (if preds = [] then "" else Printf.sprintf "/%d" (List.length preds))
            | Probe { gens; build_at; _ } ->
              Printf.sprintf "probe(%s@%d)"
                (String.concat "." (Array.to_list (Array.map (fun g -> g.var) gens)))
                build_at)
          t.stages))

(* --- Cost model --------------------------------------------------------- *)

(* Estimates are capped so products cannot overflow; the cap is far
   above any threshold the model compares against. *)
let est_cap = 1_000_000

(* [join_pays ~outer ~seg] — is a hash join over a segment of
   estimated cardinality [seg], probed once per binding of the
   [outer] estimated prefix, cheaper than re-enumerating the segment
   per prefix binding? Naive cost ~ outer*seg enumerations; join cost
   ~ seg (build) + outer (probes), with a constant-factor tax for
   hashing and tuple allocation. [None] (unknown) is priced as large:
   unknown inputs are exactly the ones a quadratic blow-up hurts. *)
let join_pays ~outer ~seg =
  match outer, seg with
  | Some o, Some s -> o * s >= (2 * (o + s)) + 16
  | None, _ | _, None -> true

(* Saturating product of a segment's per-generator estimates; [None]
   when any member is unknown — mirrors the planner's [est_range]. *)
let est_product gens =
  Array.fold_left
    (fun acc g ->
      match acc, g.est with
      | Some a, Some e -> Some (min est_cap (a * min (max e 0) est_cap))
      | None, _ | _, None -> None)
    (Some 1) gens

let explain t =
  let b = Buffer.create 256 in
  if t.pre <> [] then
    Printf.bprintf b "  pre: %d condition(s) decided by the outer environment\n"
      (List.length t.pre);
  let filters label = function
    | 0 -> ""
    | 1 -> Printf.sprintf " [1 %s]" label
    | k -> Printf.sprintf " [%d %ss]" k label
  in
  Array.iteri
    (fun i stage ->
      match stage with
      | Scan { gen; preds } ->
        Printf.bprintf b "  stage %d: scan %s (est %s)%s\n" i gen.var
          (est_str gen.est)
          (filters "filter" (List.length preds))
      | Probe { gens; build_at; preds; _ } ->
        Printf.bprintf b "  stage %d: hash probe %s (built at step %d, est %s)%s\n"
          i
          (String.concat "." (Array.to_list (Array.map (fun g -> g.var) gens)))
          build_at
          (est_str (est_product gens))
          (filters "residual filter" (List.length preds)))
    t.stages;
  List.iter (fun line -> Printf.bprintf b "  note: %s\n" line) t.notes;
  Buffer.contents b

(* --- Planning ---------------------------------------------------------- *)

let plan ?(policy = `Force) ~bound ~gens ~conds () =
  (* Fault boundary: planning happens inside the backends' guarded
     entry points, so an injected planner fault escapes as a
     structured [Error]. *)
  Clip_fault.hit Clip_fault.Site.plan_build;
  let gens = Array.of_list gens in
  let n = Array.length gens in
  (* Pushdown and joins rely on each variable having exactly one
     binding site; if a generator shadows an outer variable or a
     sibling generator, fall back to checking every condition at the
     innermost position, exactly like the naive interpreters. *)
  let shadowed =
    let seen = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace seen v ()) bound;
    Array.exists
      (fun g ->
        Hashtbl.mem seen g.var
        ||
        (Hashtbl.replace seen g.var ();
         false))
      gens
  in
  (* [level vars] — the smallest stage count [i] such that every
     variable is bound by the outer environment or by generators
     [0..i-1]; [n] when some variable is never bound (the predicate
     then fails or errors at the innermost position, as it would
     naively). *)
  let level vars =
    let rec go i remaining =
      match remaining with
      | [] -> i
      | _ when i >= n -> n
      | _ ->
        go (i + 1)
          (List.filter (fun v -> not (String.equal v gens.(i).var)) remaining)
    in
    go 0 (List.filter (fun v -> not (List.mem v bound)) vars)
  in
  let preds_at = Array.make (n + 1) [] in
  let attach j p = preds_at.(j) <- p :: preds_at.(j) in
  (* A chosen join claims the contiguous generator range [g..s]; the
     probe replaces the whole segment. [seg_start.(g)] records the
     segment's extent and sides; [claimed.(t)] marks every covered
     stage so segments never overlap. *)
  let claimed = Array.make (max 1 n) false in
  let seg_start = Array.make (max 1 n) None in
  let nslots = ref 0 in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  if shadowed && n > 0 then
    note "variable shadowing: every condition is checked at the innermost position";
  List.iter
    (fun cond ->
      match cond with
      | Other p -> attach (if shadowed then n else min (level p.pvars) n) p
      | Eq { left; right; orig } ->
        let j = if shadowed then n else level orig.pvars in
        attach j orig;
        let vars = String.concat "," (List.sort_uniq compare orig.pvars) in
        if (not shadowed) && j = 0 then
          note "eq(%s): decided by the outer environment, checked before any enumeration"
            vars;
        if (not shadowed) && j >= 1 && j <= n && claimed.(j - 1) then
          note "eq(%s): generator already covered by a join, kept as filter" vars;
        if (not shadowed) && j >= 1 && j <= n && not claimed.(j - 1) then begin
          let s = j - 1 in
          let ll = level left.kvars and lr = level right.kvars in
          (* The build side is the one that reads the stage-[s]
             variable; the probe side must be decided earlier. *)
          let sides =
            if ll = j && lr < j then Some (left, right)
            else if lr = j && ll < j then Some (right, left)
            else None
          in
          match sides with
          | None ->
            note "eq(%s): no build/probe orientation, kept as pushed-down filter" vars
          | Some (build, probe) ->
            (* Try segments [g..s], shortest first. [ext g] is what
               the segment reads from outside itself — the generators'
               dependencies plus the build keys, minus the segment's
               own variables — and [bp] the level at which all of that
               is bound. The join pays off only when the table
               survives at least one generator outside the segment
               ([bp < g]; [bp = g] would rebuild it per probe), and is
               only possible when the probe keys are decided by then
               ([level probe.kvars <= g]). Growing the segment
               downward absorbs feeder generators (e.g. [d2] in
               [d2 in source.dept, r in d2.regEmp]) whose presence
               would otherwise pin [bp] to [s]. *)
            let lp = level probe.kvars in
            (* Structural guard, independent of the cost model: the
               probe side must read at least one variable bound by a
               generator of this chain ([lp >= 1]). An equality whose
               probe side is decided entirely by the outer environment
               or by constants (e.g. [y.a = 5]) carries no equi-join
               key between generators — turning it into a table build
               would trade a pushed-down filter for allocation. *)
            if lp >= 1 then begin
              let ext g =
                let seg_var v =
                  let rec mem t = t <= s && (String.equal gens.(t).var v || mem (t + 1)) in
                  mem g
                in
                let vars = ref (List.filter (fun v -> not (seg_var v)) build.kvars) in
                for t = g to s do
                  vars := List.filter (fun v -> not (seg_var v)) gens.(t).deps @ !vars
                done;
                !vars
              in
              (* Estimated bindings of generators [lo..hi]; [None]
                 when any member is unknown. *)
              let est_range lo hi =
                let rec go i acc =
                  if i > hi then Some acc
                  else
                    match gens.(i).est with
                    | None -> None
                    | Some e -> go (i + 1) (min est_cap (acc * min (max e 0) est_cap))
                in
                go lo 1
              in
              let cost_rejected = ref None in
              let cost_ok g =
                match policy with
                | `Force -> true
                | `Cost ->
                  let outer = est_range 0 (g - 1) and seg = est_range g s in
                  join_pays ~outer ~seg
                  ||
                  (if !cost_rejected = None then cost_rejected := Some (outer, seg);
                   false)
              in
              let rec pick g =
                if g < 1 || g < lp || claimed.(g) then None
                else if level (ext g) < g && cost_ok g then Some g
                else pick (g - 1)
              in
              match pick s with
              | None ->
                (match !cost_rejected with
                 | Some (outer, seg) ->
                   note
                     "eq(%s): hash join rejected by cost model (outer~%s, seg~%s: join does not pay)"
                     vars (est_str outer) (est_str seg)
                 | None ->
                   note "eq(%s): no independent feeder segment, kept as pushed-down filter"
                     vars)
              | Some g ->
                let seg_vars =
                  String.concat "."
                    (List.init (s - g + 1) (fun t -> gens.(g + t).var))
                in
                (match policy with
                 | `Force -> note "eq(%s): hash join over %s (forced)" vars seg_vars
                 | `Cost ->
                   let outer = est_range 0 (g - 1) and seg = est_range g s in
                   note "eq(%s): hash join over %s (outer~%s, seg~%s: join pays)" vars
                     seg_vars (est_str outer) (est_str seg));
                let slot = !nslots in
                incr nslots;
                for t = g to s do
                  claimed.(t) <- true
                done;
                seg_start.(g) <- Some (s, slot, level (ext g), build, probe)
            end
            else
              note "eq(%s): probe side reads no chain generator, kept as pushed-down filter"
                vars
        end)
    conds;
  (* Lay out the steps: each segment collapses to one probe step whose
     residual predicates are every condition pushdown placed inside it
     (they run after the whole segment binds — same surviving
     bindings, though a failing predicate may be evaluated on tuples
     the naive order would have pruned, and vice versa). *)
  let steps_rev = ref [] in
  let starts_rev = ref [] in
  let i = ref 0 in
  while !i < n do
    starts_rev := !i :: !starts_rev;
    (match seg_start.(!i) with
    | Some (s, slot, bp, build, probe) ->
      let preds = ref [] in
      for t = s + 1 downto !i + 1 do
        preds := List.rev_append preds_at.(t) !preds
      done;
      steps_rev :=
        Probe
          {
            gens = Array.sub gens !i (s - !i + 1);
            slot;
            build_at = bp (* a generator level for now; mapped below *);
            build_keys = build.keys;
            probe_keys = probe.keys;
            preds = !preds;
          }
        :: !steps_rev;
      i := s + 1
    | None ->
      steps_rev := Scan { gen = gens.(!i); preds = List.rev preds_at.(!i + 1) } :: !steps_rev;
      incr i)
  done;
  let stages = Array.of_list (List.rev !steps_rev) in
  let starts = Array.of_list (List.rev !starts_rev) in
  (* Map each probe's build point — a generator level — onto the first
     step boundary that binds at least that many generators. (A build
     point inside another segment rounds up past it: the segment binds
     atomically, so the earliest usable entry is the next step.) *)
  let step_of_level lvl =
    let k = ref (Array.length starts) in
    for idx = Array.length starts - 1 downto 0 do
      if starts.(idx) >= lvl then k := idx
    done;
    !k
  in
  Array.iteri
    (fun idx step ->
      match step with
      | Probe p -> stages.(idx) <- Probe { p with build_at = step_of_level p.build_at }
      | Scan _ -> ())
    stages;
  let builds = Array.make (Array.length stages + 1) [] in
  Array.iteri
    (fun idx stage ->
      match stage with
      | Probe { build_at; _ } -> builds.(build_at) <- idx :: builds.(build_at)
      | Scan _ -> ())
    stages;
  Array.iteri (fun idx l -> builds.(idx) <- List.rev l) builds;
  { pre = List.rev preds_at.(0); stages; builds; nslots = !nslots; notes = List.rev !notes }

(* [revisit_prone t] — can executing [t] enumerate the same parent
   element more than once? This is what decides whether the lazy tag
   index ({!Clip_xml.Index}) can pay for itself: a grouping is only
   reused when some element's children are listed at least twice.
   That happens when a probe table is rebuilt per outer binding, or
   when a scan at stage [i >= 1] does not depend on the variable bound
   immediately before it — its expression then re-enumerates the same
   elements once per binding of that variable. A straight-line chain
   (every scan reads the previous stage's variable) never revisits, so
   indexing it only adds memoisation overhead. *)
let revisit_prone t =
  let n = Array.length t.stages in
  let last_var i =
    let gens = stage_gens t.stages.(i) in
    gens.(Array.length gens - 1).var
  in
  let rec go i =
    i < n
    &&
    match t.stages.(i) with
    | Probe _ -> true
    | Scan { gen; _ } ->
      (i >= 1 && not (List.mem (last_var (i - 1)) gen.deps)) || go (i + 1)
  in
  go 0

(* --- Execution --------------------------------------------------------- *)

module KeyTbl = Hashtbl.Make (Key)

(* Build probe stage [k]'s hash table into [tables]. Shared by the
   depth-first interpreter and the vectorized executor — builds depend
   on the environment they run under, so each caller decides which
   tables array (shared vs per-frontier-cell snapshot) receives the
   result. *)
let build_into ?obs (t : ('env, 'item) t)
    (tables : (int * 'item list) KeyTbl.t option array) ~(env : 'env) k =
  match t.stages.(k) with
  | Scan _ -> ()
  | Probe { gens; slot; build_keys; _ } ->
    Clip_obs.hash_join_build obs;
    (* Enumerate the whole segment once, collecting each bound tuple
       with its keys (reversed enumeration order). *)
    let m = Array.length gens in
    let entries = ref [] in
    let rec enum d env tuple_rev =
      if d = m then
        entries :=
          (List.sort_uniq compare (build_keys env), List.rev tuple_rev) :: !entries
      else
        List.iter
          (fun item -> enum (d + 1) (gens.(d).bind env item) (item :: tuple_rev))
          (gens.(d).eval env)
    in
    enum 0 env [];
    let tbl = KeyTbl.create (2 * List.length !entries + 1) in
    (* [Hashtbl.add] stacks, so insert back-to-front: [find_all]
       then yields enumeration (document) order. Sequence numbers
       recover a global order for multi-key probes. Keys are deduped
       per tuple so a multi-valued build side never yields the same
       tuple twice. *)
    let seq = ref (List.length !entries) in
    List.iter
      (fun (keys, tuple) ->
        decr seq;
        List.iter (fun key -> KeyTbl.add tbl key (!seq, tuple)) keys)
      !entries;
    tables.(slot) <- Some tbl

(* Tuples of [tbl] matching any of [keys] (sorted, deduped), in
   enumeration (document) order. *)
let probe_tuples tbl keys =
  match keys with
  | [] -> []
  | [ k ] -> List.map snd (KeyTbl.find_all tbl k)
  | ks ->
    (* Multi-valued side: union the per-key hits, dedup by
       sequence number, restore document order. *)
    let hits = List.concat_map (fun k -> KeyTbl.find_all tbl k) ks in
    let seen = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun (s, _) ->
          if Hashtbl.mem seen s then false
          else begin
            Hashtbl.add seen s ();
            true
          end)
        hits
    in
    List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) uniq)

let execute ?obs (t : ('env, 'item) t) ~(tick : unit -> unit) ~(env : 'env)
    ~(emit : 'env -> unit) : unit =
  let n = Array.length t.stages in
  let tables : (int * 'item list) KeyTbl.t option array =
    Array.make (max 1 t.nslots) None
  in
  let rec go i env =
    if i = n then emit env
    else begin
      List.iter (build_into ?obs t tables ~env) t.builds.(i);
      match t.stages.(i) with
      | Scan { gen; preds } ->
        List.iter
          (fun item ->
            tick ();
            let env' = gen.bind env item in
            if List.for_all (fun p -> p.test env') preds then go (i + 1) env')
          (gen.eval env)
      | Probe { gens; slot; probe_keys; preds; _ } ->
        Clip_obs.hash_join_probe obs;
        let tbl = match tables.(slot) with Some tbl -> tbl | None -> assert false in
        let tuples = probe_tuples tbl (List.sort_uniq compare (probe_keys env)) in
        List.iter
          (fun tuple ->
            tick ();
            let env' =
              List.fold_left
                (fun (d, env) item -> (d + 1, gens.(d).bind env item))
                (0, env) tuple
              |> snd
            in
            if List.for_all (fun p -> p.test env') preds then go (i + 1) env')
          tuples
    end
  in
  if List.for_all (fun p -> p.test env) t.pre then go 0 env

(* --- Vectorized execution ---------------------------------------------- *)

(* Frontier chunk bound: a single stage expansion widens a chunk by at
   most its fan-out before the split in [execute_batch] re-bounds it,
   so frontier memory never exceeds chunk x fan-out cells. *)
let batch_chunk = 4096

let rec take_chunk k acc l =
  match l with
  | rest when k = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: tl -> take_chunk (k - 1) (x :: acc) tl

(* Specialisation of {!execute_batch} for plans whose builds all fire
   before the first stage (the build sides depend only on the outer
   environment — the overwhelmingly common shape): every frontier cell
   sees the same tables, so the per-item [(env, tables)] pairing of the
   general executor — two extra words per item per stage, right in the
   hot loop — disappears, and the frontier itself is a flat growable
   ['env array] swept in place: one doubling buffer per stage
   expansion instead of a cons cell plus a reversal cell per surviving
   binding. Counter traces are identical to the general executor: same
   expansions, same widths, same per-cell probe counts. *)
let execute_batch_shared ?obs (t : ('env, 'item) t) ~(tick : unit -> unit)
    ~(env : 'env) ~(emit : 'env -> unit) : unit =
  let n = Array.length t.stages in
  let tables : (int * 'item list) KeyTbl.t option array =
    Array.make (max 1 t.nslots) None
  in
  let expand i (src : 'env array) lo hi (sink : 'env -> unit) =
    Clip_obs.batch_executed obs;
    if Clip_obs.enabled obs then Clip_obs.batch_width obs (hi - lo);
    match t.stages.(i) with
    | Scan { gen; preds } ->
      for j = lo to hi - 1 do
        let env = src.(j) in
        List.iter
          (fun item ->
            tick ();
            let env' = gen.bind env item in
            if List.for_all (fun p -> p.test env') preds then sink env')
          (gen.eval env)
      done
    | Probe { gens; slot; probe_keys; preds; _ } ->
      let tbl = match tables.(slot) with Some tbl -> tbl | None -> assert false in
      for j = lo to hi - 1 do
        let env = src.(j) in
        Clip_obs.hash_join_probe obs;
        let tuples = probe_tuples tbl (List.sort_uniq compare (probe_keys env)) in
        List.iter
          (fun tuple ->
            tick ();
            let env' =
              List.fold_left
                (fun (d, env) item -> (d + 1, gens.(d).bind env item))
                (0, env) tuple
              |> snd
            in
            if List.for_all (fun p -> p.test env') preds then sink env')
          tuples
      done
  in
  let rec run i (src : 'env array) lo hi =
    if hi > lo then begin
      if i = n then
        for j = lo to hi - 1 do
          emit src.(j)
        done
      else if i = n - 1 then
        (* Last stage: fuse expansion with emission — survivors stream
           into [emit] while their environments are hot instead of
           parking in a frontier first. Order, ticks and counters are
           those of materialise-then-emit, verbatim. *)
        expand i src lo hi emit
      else begin
        (* [env] doubles as the (never-read) fill element of fresh
           buffers, so frontiers need no option boxing. *)
        let buf = ref (Array.make 64 env) and len = ref 0 in
        let push e =
          if !len = Array.length !buf then begin
            let nb = Array.make (2 * !len) env in
            Array.blit !buf 0 nb 0 !len;
            buf := nb
          end;
          !buf.(!len) <- e;
          incr len
        in
        expand i src lo hi push;
        let dst = !buf and m = !len in
        let j = ref 0 in
        while !j < m do
          let hi' = min m (!j + batch_chunk) in
          run (i + 1) dst !j hi';
          j := hi'
        done
      end
    end
  in
  if List.for_all (fun p -> p.test env) t.pre then begin
    if n > 0 then List.iter (build_into ?obs t tables ~env) t.builds.(0);
    run 0 [| env |] 0 1
  end

let batchable (t : ('env, 'item) t) =
  let n = Array.length t.stages in
  let ok = ref true in
  for i = 1 to n - 1 do
    if t.builds.(i) <> [] then ok := false
  done;
  !ok

let scan_only (t : ('env, 'item) t) =
  Array.for_all (function Scan _ -> true | Probe _ -> false) t.stages

let execute_batch ?obs (t : ('env, 'item) t) ~(tick : unit -> unit)
    ~(env : 'env) ~(emit : 'env -> unit) : unit =
  if batchable t then execute_batch_shared ?obs t ~tick ~env ~emit
  else begin
  let n = Array.length t.stages in
  (* One frontier cell: an environment plus its private view of the
     probe tables. Builds depend on the environment they run under, so
     a breadth-first frontier cannot share the single mutable tables
     array the depth-first executor uses — a cell snapshots the array
     ([nslots] is tiny) whenever a stage triggers builds for it; cells
     that trigger no builds share their parent's snapshot. *)
  let expand i cells =
    Clip_obs.batch_executed obs;
    if Clip_obs.enabled obs then Clip_obs.batch_width obs (List.length cells);
    let out = ref [] in
    List.iter
      (fun (env, tables) ->
        let tables =
          match t.builds.(i) with
          | [] -> tables
          | builds ->
            let tables = Array.copy tables in
            List.iter (build_into ?obs t tables ~env) builds;
            tables
        in
        match t.stages.(i) with
        | Scan { gen; preds } ->
          List.iter
            (fun item ->
              tick ();
              let env' = gen.bind env item in
              if List.for_all (fun p -> p.test env') preds then
                out := (env', tables) :: !out)
            (gen.eval env)
        | Probe { gens; slot; probe_keys; preds; _ } ->
          Clip_obs.hash_join_probe obs;
          let tbl =
            match tables.(slot) with Some tbl -> tbl | None -> assert false
          in
          let tuples = probe_tuples tbl (List.sort_uniq compare (probe_keys env)) in
          List.iter
            (fun tuple ->
              tick ();
              let env' =
                List.fold_left
                  (fun (d, env) item -> (d + 1, gens.(d).bind env item))
                  (0, env) tuple
                |> snd
              in
              if List.for_all (fun p -> p.test env') preds then
                out := (env', tables) :: !out)
            tuples)
      cells;
    List.rev !out
  in
  (* Run a chunk of frontier cells through stages [i..n): expand one
     stage as an array sweep over the whole chunk, split the result,
     and run each piece to completion before the next. Pieces stay in
     frontier order and every cell's descendants are emitted before
     its successor's, so emission order is exactly the depth-first
     lexicographic order of {!execute}; [tick] still fires once per
     item enumerated at every stage, so step budgets, cancellation
     polls and fault windows land on the same counts — at batch
     granularity rather than per recursive call. *)
  let rec run i cells =
    match cells with
    | [] -> ()
    | _ ->
      if i = n then List.iter (fun (env, _) -> emit env) cells
      else begin
        let rec pieces l =
          match l with
          | [] -> ()
          | l ->
            let chunk, rest = take_chunk batch_chunk [] l in
            run (i + 1) chunk;
            pieces rest
        in
        pieces (expand i cells)
      end
  in
    if List.for_all (fun p -> p.test env) t.pre then
      run 0 [ (env, Array.make (max 1 t.nslots) None) ]
  end
