(** A backend-agnostic physical-plan layer shared by the nested-tgd
    engine and the XQuery evaluator.

    Both backends' inner loop is a chain of generators (variables bound
    to items enumerated by an expression), a conjunction of filter
    conditions, and a per-binding action. The planner turns that
    logical shape into a physical plan:

    - {b condition pushdown} — each condition is checked at the
      earliest generator position at which all its variables are bound
      (conditions decided by the outer environment are checked once,
      before any enumeration);
    - {b hash joins} — an equality condition linking earlier-bound
      variables to a later generator turns that generator — together
      with the contiguous chain of feeder generators it depends on,
      when that chain is independent of the probe side — into a
      hash-table probe; the table enumerates the segment once per
      environment in which its inputs are fixed and is probed with the
      earlier side's key;
    - {b streaming execution} — bindings are folded into an [emit]
      callback; the full Cartesian product is never materialised.

    The planner is language-agnostic: it sees only variable-dependency
    sets and evaluation closures, so both backends plug their own
    expression evaluators in. Enumeration order is preserved exactly
    (probes yield matches in build-side document order), so plan-based
    runs are output-identical to the naive interpreters. *)

(** Hashable join/dedup keys over XML atoms: composite (tuple) keys
    over the per-atom normalisation {!Clip_xml.Atom.key}, the single
    definition shared with both backends, so key equality coincides
    with {!Clip_xml.Atom.equal} ([Int 3] and [Float 3.] are one key;
    all NaNs are one key; [0.] and [-0.] are one key). Integers
    beyond the 2^53 float range coarsen onto their nearest float —
    exact consumers re-check the original condition per hit. *)
module Key : sig
  type norm = Clip_xml.Atom.key

  type t = norm list

  val norm_atom : Clip_xml.Atom.t -> norm

  (** Singleton key of one atom. *)
  val of_atom : Clip_xml.Atom.t -> t

  (** Composite key of an atom tuple (grouping keys). *)
  val of_atoms : Clip_xml.Atom.t list -> t

  val equal : t -> t -> bool
  val hash : t -> int
end

(** The engine switch threaded from {!Clip_core.Engine.run} down to
    both backends: [`Naive] runs the legacy interpreters (kept as
    differential-testing oracles), [`Indexed] forces the plan layer —
    every eligible equality becomes a hash join and the
    {!Clip_xml.Index} tag index is always on, [`Auto] (the default)
    also runs through the plan layer but lets the cost model decide
    per chain, from {!Clip_xml.Stats} cardinalities, whether each join
    and the tag index pay for themselves. All three modes are
    output-identical on every input whose evaluation does not raise. *)
type mode = [ `Naive | `Indexed | `Auto ]

(** Join policy given to {!val-plan}: [`Force] turns every eligible
    equality into a hash join (the [`Indexed] behaviour, and the
    strongest differential oracle); [`Cost] builds a table only when
    {!join_pays} says the estimated work saved beats the build. *)
type policy = [ `Force | `Cost ]

(** {1 Planner input} *)

type ('env, 'item) gen = {
  var : string;  (** the variable this generator binds *)
  deps : string list;  (** variables its expression reads *)
  est : int option;
      (** estimated items per evaluation, from {!Clip_xml.Stats}
          cardinalities; [None] = unknown, priced as large by the cost
          model (unknown inputs are the ones a quadratic blow-up
          hurts) *)
  eval : 'env -> 'item list;  (** enumerate the items, in order *)
  bind : 'env -> 'item -> 'env;
}

type 'env pred = {
  pvars : string list;  (** variables the predicate reads *)
  test : 'env -> bool;
}

(** One side of an equality condition as hashable keys: one key per
    atom of the (possibly multi-valued) side. The condition holds when
    the sides share at least one key. *)
type 'env keyed = {
  kvars : string list;
  keys : 'env -> Key.t list;
}

type 'env cond =
  | Eq of { left : 'env keyed; right : 'env keyed; orig : 'env pred }
      (** an equality the planner may turn into a hash join; [orig] is
          the exact original test, re-checked on every probe hit *)
  | Other of 'env pred

(** {1 Physical plans} *)

(** A step covers one generator ([Scan]) or a contiguous segment of
    generators ([Probe]) replaced wholesale by a hash-table lookup
    storing bound item tuples; a plain single-generator hash join is
    the segment of length one. [build_at] is the step index at whose
    entry the table is built; [preds] are re-checked on every hit
    (they include the original equality, so key coarsening can never
    widen the join). *)
type ('env, 'item) stage =
  | Scan of { gen : ('env, 'item) gen; preds : 'env pred list }
  | Probe of {
      gens : ('env, 'item) gen array;
      slot : int;
      build_at : int;
      build_keys : 'env -> Key.t list;
      probe_keys : 'env -> Key.t list;
      preds : 'env pred list;
    }

type ('env, 'item) t = {
  pre : 'env pred list;
  stages : ('env, 'item) stage array;
  builds : int list array;
  nslots : int;
  notes : string list;
      (** planner decisions, one line per equality condition: the
          chosen strategy (hash join / pushed-down filter) plus the
          cost-model inputs that justified it (estimated outer/inner
          cardinalities, {!join_pays} verdict, structural guards) *)
}

val stage_gens : ('env, 'item) stage -> ('env, 'item) gen array

(** One-line plan rendering, e.g. ["scan(p) probe(d.e@0)"] — for tests
    and debugging. *)
val describe : ('env, 'item) t -> string

(** Multi-line EXPLAIN rendering: one line per stage (strategy,
    cardinality estimate, pushed-down filter count) followed by the
    planner's decision {!field-notes}. Purely static — no timings, no
    execution — so the output is stable for golden tests. Every line
    is indented two spaces and newline-terminated. *)
val explain : ('env, 'item) t -> string

(** {1 Cost model} *)

(** Estimate cap; products of per-generator estimates saturate here so
    they cannot overflow. *)
val est_cap : int

(** [join_pays ~outer ~seg] — is a hash join over a segment of
    estimated cardinality [seg], probed once per binding of the
    estimated [outer] prefix, cheaper than re-enumerating the segment
    per prefix binding? Compares [outer * seg] (naive enumerations)
    against [seg + outer] builds/probes with a constant-factor tax for
    hashing and tuple allocation. [None] (unknown) is priced as large,
    i.e. the join is taken. *)
val join_pays : outer:int option -> seg:int option -> bool

(** [plan ?policy ~bound ~gens ~conds] — the physical plan for one
    generator chain. [bound] lists the variables already bound by the
    outer environment. [policy] (default [`Force]) selects between
    forced and cost-based join selection; condition pushdown is free
    and happens under both. Regardless of policy, an equality whose
    probe side reads no chain generator variable (a constant or
    outer-bound key) is never turned into a join — it stays a
    pushed-down filter. If a generator shadows an outer variable or a
    sibling generator, the planner degrades to checking every
    condition at the innermost position (naive semantics are always
    preserved). *)
val plan :
  ?policy:policy ->
  bound:string list ->
  gens:('env, 'item) gen list ->
  conds:'env cond list ->
  unit ->
  ('env, 'item) t

(** [revisit_prone t] — can executing [t] enumerate the same parent
    element more than once? True when some stage is a probe (its table
    may be rebuilt per outer binding) or some later scan is
    independent of the variable bound immediately before it. The lazy
    tag index only pays on such plans; straight-line chains never
    reuse a grouping. *)
val revisit_prone : ('env, 'item) t -> bool

(** [execute ?obs t ~tick ~env ~emit] streams every surviving binding
    of the chain into [emit], in exactly the naive enumeration order.
    [tick] is called once per item enumerated at every stage, so step
    budgets keep metering enumerated bindings (CLIP-LIM-004). [?obs]
    counts hash-join builds and probes. *)
val execute :
  ?obs:Clip_obs.Counters.t ->
  ('env, 'item) t ->
  tick:(unit -> unit) ->
  env:'env ->
  emit:('env -> unit) ->
  unit

(** [batchable t] — true when every hash-join build of [t] fires
    before stage 0, so a breadth-first frontier can share one table
    set and {!execute_batch} runs its allocation-free sweep.
    Correlated (later-stage) builds force the batch executor onto a
    per-cell table-snapshot path that costs more than the depth-first
    {!execute}; evaluators use this predicate to batch exactly the
    plans where batching pays. *)
val batchable : ('env, 'item) t -> bool

(** [scan_only t] — true when [t] has no hash-probe stages at all: the
    plan is a pure navigation sweep. Implies {!batchable} (builds
    exist only for probes). The strictest batching criterion an
    evaluator can pick when probe-stage frontiers don't pay on its
    workloads. *)
val scan_only : ('env, 'item) t -> bool

(** [execute_batch ?obs t ~tick ~env ~emit] — the vectorized executor:
    instead of one recursive descent per binding, each stage runs as
    one sweep over a frontier chunk of environments (id vectors, on
    the columnar document path). Emission order, survivors and the
    per-item [tick] count are exactly those of {!execute} — only the
    iteration schedule changes: ticks, cancellation polls and fault
    windows land stage-by-stage at batch granularity. Frontier chunks
    are bounded (a few thousand cells) and each chunk runs to
    completion before the next, so memory stays proportional to chunk
    width x stage fan-out, not to the full cross product. [?obs]
    additionally counts [batches_executed] / [batch_width]. *)
val execute_batch :
  ?obs:Clip_obs.Counters.t ->
  ('env, 'item) t ->
  tick:(unit -> unit) ->
  env:'env ->
  emit:('env -> unit) ->
  unit
