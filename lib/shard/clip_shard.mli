(** Single-document sharding: cut one large source instance at the
    topmost repeated element the mapping actually quantifies over,
    evaluate the resulting shard documents independently (in parallel,
    with bounded memory when cutting a byte stream), and merge the
    per-shard targets back into {e exactly} the sequential
    whole-document output.

    {!plan} is the static safety analysis over the compiled tgd and
    the two schemas; it either designates a cut — with everything the
    cutter and merger need — or falls back to whole-document
    evaluation with a reason (surfaced by EXPLAIN). The analysis is
    conservative: [Sharded] is returned only when shard evaluation
    plus {!merge} provably reproduces the whole-document result byte
    for byte (see DESIGN.md "Streaming ingestion and sharding" for the
    argument; test/test_shard.ml pins the equivalence differentially
    on every figure, backend and plan mode). *)

(** A designated cut.

    [cut_path] is the absolute source-schema path of the shard unit —
    the topmost repeating element on the outermost universal
    generator's chain. [containers] are the element tags above it
    (document root first) and [unit_tag] the unit's own tag.

    [needs_prologue] is true when the mapping reads any root-rooted
    source path outside the cut subtree: each shard must then carry
    the full document prologue (everything but the other shards'
    units), and streaming cutting degrades to materialise-then-cut.
    When false, shards carry only the container spine (attributes
    included) around their units.

    [unify] is the set of absolute target element paths (["a/b"] tag
    chains below the target root) that completion semantics creates
    once per parent context: every shard re-creates them, and the
    merger collapses them. All other target children are per-binding
    and concatenate in shard order. *)
type cut = {
  cut_path : Clip_schema.Path.t;
  containers : string list;
  unit_tag : string;
  needs_prologue : bool;
  unify : string list;
}

type decision = Sharded of cut | Whole of string

(** [plan ~source ~target tgd] — decide whether (and where) documents
    under [source] may be sharded for evaluating [tgd]. Pure analysis:
    no document is touched. [minimum_cardinality:false] (the
    universal-solution ablation) always falls back. *)
val plan :
  source:Clip_schema.Schema.t ->
  target:Clip_schema.Schema.t ->
  ?minimum_cardinality:bool ->
  Clip_tgd.Tgd.t ->
  decision

(** One EXPLAIN-able line describing the decision. *)
val decision_note : decision -> string

(** {1 Cutting a materialised tree} *)

(** [approx_bytes doc] — the serialisation-size estimate the cutter
    sizes tree shards by ([16 * Node.size]); exposed so callers (the
    engine's [`Auto] mode) can compare documents against a shard
    budget on the same scale. *)
val approx_bytes : Clip_xml.Node.t -> int

(** [count_units cut doc] — occurrences of the unit element under the
    container chain (the first matching chain, as in a schema-valid
    document). *)
val count_units : cut -> Clip_xml.Node.t -> int

(** [shards_of_node cut ~budget_bytes doc] — shard documents, each the
    container spine around a run of consecutive units sized (by a
    serialisation estimate) to [budget_bytes]. Unit subtrees are
    shared with [doc], never copied. Fewer than two units yield
    [[doc]] itself. *)
val shards_of_node :
  cut -> budget_bytes:int -> Clip_xml.Node.t -> Clip_xml.Node.t list

(** {1 Cutting a byte stream} *)

type cutter

(** What one {!next_shard} pull produced: the next shard document; the
    whole document materialised because its root did not open the
    container chain (the caller should evaluate it unsharded); or the
    end of the stream. *)
type step =
  | Shard of Clip_xml.Node.t
  | Fallback_doc of Clip_xml.Node.t
  | Exhausted

(** [cutter cut ~budget_bytes src] — an incremental cutter over a
    byte stream. Only one unit group plus the container spine is ever
    resident; non-unit content is skipped without being built (callers
    should only stream-cut when [cut.needs_prologue] is false —
    otherwise materialise and use {!shards_of_node}). Shard byte sizes
    use true stream offsets ({!Clip_xml.Stream.pos} deltas). *)
val cutter : cut -> budget_bytes:int -> Clip_xml.Stream.source -> cutter

(** Pull the next shard. After [Error] or [Exhausted] every further
    call returns [Exhausted]; [Fallback_doc] can only be the first
    result. *)
val next_shard : cutter -> (step, Clip_diag.t list) result

(** {1 Merging shard outputs} *)

type merger

(** [merger ~unify] — an incremental left-fold merger (used by the
    streaming pipeline, which consumes shard outputs strictly in shard
    order). *)
val merger : unify:string list -> merger

(** [merge_into m output] — fold one shard output (in shard order)
    into the merger. Disagreement on a unified element's attributes or
    text — which would have been a conflicting-assignment error in the
    whole-document run — raises {!Clip_diag.Fail} with a [CLIP-TGD-001]
    diagnostic. *)
val merge_into : merger -> Clip_xml.Node.t -> unit

(** The merged document; [None] when nothing was folded in. *)
val merged : merger -> Clip_xml.Node.t option

(** [merge ~unify outputs] — fold all outputs, exception-free. *)
val merge :
  unify:string list ->
  Clip_xml.Node.t list ->
  (Clip_xml.Node.t, Clip_diag.t list) result
