(* Single-document sharding: decide from the compiled tgd and the two
   schemas where a source instance may be cut into independently
   evaluable shard documents, cut it (from a materialised tree or
   straight off a byte stream), and merge the per-shard target
   instances back into exactly the whole-document result.

   The analysis is deliberately conservative: {!plan} returns
   [Sharded] only when it can prove, from static structure alone, that
   per-shard evaluation + {!merge} reproduces the sequential
   whole-document output byte for byte; every doubt is a [Whole]
   fallback carrying a human-readable reason (surfaced by EXPLAIN).

   Safety argument, in brief (DESIGN.md "Streaming ingestion and
   sharding" carries the long form):

   - the {e cut} is the topmost repeating element (source schema
     cardinality) on the path of the {e first} universal generator of
     the unique quantified subtree root. Shards partition the cut
     element's occurrences in document order, so the outermost binding
     loop enumerates exactly the whole-document bindings, in order,
     shard by shard;
   - every other source-side path is either rooted in a bound variable
     (evaluated inside one binding, hence inside one shard) or a
     root-rooted path that stays outside the cut subtree — {e
     prologue} context, which every shard carries a copy of, so it
     evaluates identically everywhere. A root-rooted path that
     re-enters the cut subtree anywhere else would see only the
     shard's slice, so it forces [Whole];
   - on the target side, elements created per binding ([Driven] mode)
     are disjoint across shards and concatenate in binding order,
     while completion-created elements (one per parent context) are
     re-created by every shard and must be {e unified} by the merge.
     The analysis computes the set of absolute target paths the merge
     must unify; a [group-by] attached to a shard-shared parent (its
     groups span shards) and a path both driven and completed force
     [Whole]. *)

module Path = Clip_schema.Path
module Schema = Clip_schema.Schema
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term
module Node = Clip_xml.Node
module Atom = Clip_xml.Atom
module Stream = Clip_xml.Stream

type cut = {
  cut_path : Path.t;
  containers : string list;
  unit_tag : string;
  needs_prologue : bool;
  unify : string list;
}

type decision = Sharded of cut | Whole of string

exception Unsafe of string

let fallback fmt = Printf.ksprintf (fun s -> raise (Unsafe s)) fmt

(* --- Shardability analysis --------------------------------------------- *)

let rec scalar_exprs = function
  | Term.E e -> [ e ]
  | Term.Const _ -> []
  | Term.Fn (_, args) -> List.concat_map scalar_exprs args

(* The absolute schema path of a root-rooted expression; [None] for
   variable-rooted ones. *)
let expr_path e =
  match Term.head e with
  | Term.Root r ->
    (try Some (r, Path.make r (Term.steps e))
     with Invalid_argument _ -> None)
  | _ -> None

let split_last l =
  match List.rev l with
  | [] -> None
  | last :: rev_init -> Some (List.rev rev_init, last)

(* Resolution status of a target path: [Anchored] means it hangs at or
   below a per-binding ([Driven]) element — such subtrees are disjoint
   across shards and the merge never descends into them; [Spine rev]
   is an absolute element-tag chain below the target root (innermost
   first), shared across shards and subject to unification. *)
type tstatus = Anchored | Spine of string list

let join rev = String.concat "/" (List.rev rev)

let plan ~source ~target ?(minimum_cardinality = true) (tgd : Tgd.t) =
  try
    if not minimum_cardinality then
      fallback
        "the universal-solution ablation creates one element per mapped \
         value, which only the whole-document evaluation orders correctly";
    let sroot = (Schema.root_path source).Path.root in
    let troot = (Schema.root_path target).Path.root in
    (* 1. The unique quantified subtree root, reached through
       unquantified ancestors (which may only complete elements). *)
    let rec binding_root (n : Tgd.t) =
      if n.foralls <> [] then n
      else begin
        List.iter
          (fun (g : Tgd.target_gen) ->
            match g.mode with
            | Tgd.Completion -> ()
            | Tgd.Driven | Tgd.Grouped _ ->
              fallback
                "an unquantified mapping creates a fresh element per \
                 evaluation, which would duplicate per shard")
          n.exists;
        match n.children with
        | [ c ] -> binding_root c
        | [] -> fallback "the mapping quantifies over no repeated element"
        | _ :: _ :: _ ->
          fallback
            "multiple independent quantified submappings would interleave \
             their outputs across shards"
      end
    in
    let broot = binding_root tgd in
    (* 2. The cut: the first universal generator of the binding root
       must be a source-rooted path through a repeating element; the
       topmost repeating element on its chain is the shard unit. *)
    let first =
      match broot.foralls with g :: _ -> g | [] -> assert false
    in
    let cut_path =
      match expr_path first.sexpr with
      | Some (r, p) when String.equal r sroot ->
        let ep = Path.element_of p in
        (match
           List.find_opt
             (fun pre -> Schema.is_repeating source pre)
             (Path.element_prefixes ep)
         with
         | Some c -> c
         | None ->
           fallback
             "the outermost source loop (%s) iterates no repeated element"
             (Term.expr_to_string first.sexpr))
      | _ ->
        fallback "the outermost source loop is not rooted at the source schema"
    in
    (* 3. Source-side scan: no other path may enter the cut subtree;
       any surviving root-rooted path is prologue the shards must
       carry. *)
    let needs_prologue = ref false in
    let check_source ~allow_cut e =
      match expr_path e with
      | None -> ()
      | Some (r, p) ->
        if String.equal r sroot then begin
          let ep = Path.element_of p in
          if Path.is_prefix cut_path ep then begin
            if not allow_cut then
              fallback
                "%s reads the repeated region outside the shard loop"
                (Term.expr_to_string e)
          end
          else needs_prologue := true
        end
    in
    let check_scalar s = List.iter (check_source ~allow_cut:false) (scalar_exprs s) in
    (* 4. Target-side scan: compute the unify set and reject shapes
       whose creation order or grouping spans shards. *)
    let unify = ref [] in
    let add_unify p = if not (List.mem p !unify) then unify := p :: !unify in
    let driven = ref [] in
    let add_driven p rank =
      match List.assoc_opt p !driven with
      | Some r when r <> rank ->
        fallback
          "two submappings both create <%s> elements; their creation order \
           interleaves across shards"
          p
      | Some _ -> ()
      | None -> driven := (p, rank) :: !driven
    in
    let child_tags steps =
      List.map
        (function
          | Path.Child t -> t
          | Path.Attr _ | Path.Value ->
            fallback "a target generator path ends in a leaf step")
        steps
    in
    let resolve env e =
      match Term.head e with
      | Term.Root r when String.equal r troot -> Spine []
      | Term.Root r -> fallback "a target path is rooted at %s, not the target schema" r
      | Term.Var v ->
        (match List.assoc_opt v env with
         | Some st -> st
         | None -> fallback "a target path is rooted in an unbound variable %s" v)
      | Term.Proj _ -> assert false
    in
    let process_gen rank env (g : Tgd.target_gen) =
      let base = resolve env g.texpr in
      match base with
      | Anchored -> (g.tvar, Anchored) :: env
      | Spine rev ->
        (match split_last (child_tags (Term.steps g.texpr)) with
         | None ->
           fallback "target generator %s binds the target root itself" g.tvar
         | Some (inter, last) ->
           (* Intermediate steps materialise as completion singletons. *)
           let rev =
             List.fold_left
               (fun rev t ->
                 let rev = t :: rev in
                 add_unify (join rev);
                 rev)
               rev inter
           in
           (match g.mode with
            | Tgd.Driven ->
              add_driven (join (last :: rev)) rank;
              (g.tvar, Anchored) :: env
            | Tgd.Completion ->
              let rev = last :: rev in
              add_unify (join rev);
              (g.tvar, Spine rev) :: env
            | Tgd.Grouped _ ->
              fallback
                "group-by under a shard-shared parent: its groups span shards"))
    in
    let process_write env e =
      match resolve env e with
      | Anchored -> ()
      | Spine rev ->
        (* Leading element steps of a leaf write are completion
           singletons; trailing leaf steps merge as attributes/text. *)
        let rec elements rev = function
          | Path.Child t :: rest ->
            let rev = t :: rev in
            add_unify (join rev);
            elements rev rest
          | (Path.Attr _ | Path.Value) :: _ | [] -> ()
        in
        elements rev (Term.steps e)
    in
    let rank = ref 0 in
    let rec walk env (n : Tgd.t) =
      incr rank;
      let r = !rank in
      List.iteri
        (fun i (g : Tgd.source_gen) ->
          check_source ~allow_cut:(n == broot && i = 0) g.sexpr)
        n.foralls;
      List.iter
        (fun (c : Tgd.comparison) ->
          check_scalar c.left;
          check_scalar c.right)
        n.cond;
      List.iter
        (fun (g : Tgd.target_gen) ->
          match g.mode with
          | Tgd.Grouped { keys } -> List.iter check_scalar keys
          | Tgd.Driven | Tgd.Completion -> ())
        n.exists;
      List.iter
        (function
          | Tgd.St_eq (_, s) -> check_scalar s
          | Tgd.Agg (_, _, arg) -> check_source ~allow_cut:false arg
          | Tgd.Target_cond _ -> ())
        n.assertions;
      let env = List.fold_left (process_gen r) env n.exists in
      List.iter
        (function
          | Tgd.St_eq (e, _) | Tgd.Target_cond (e, _, _) | Tgd.Agg (e, _, _) ->
            process_write env e)
        n.assertions;
      List.iter (walk env) n.children
    in
    walk [] tgd;
    List.iter
      (fun (p, _) ->
        if List.mem p !unify then
          fallback "<%s> is both completion-merged and created per binding" p)
      !driven;
    (* 5. The container chain above the unit. *)
    let prefixes = Path.element_prefixes cut_path in
    let tag_of p =
      match Path.last_step p with
      | Some (Path.Child t) -> t
      | Some (Path.Attr _ | Path.Value) | None -> p.Path.root
    in
    let tags = List.map tag_of prefixes in
    (match split_last tags with
     | Some (containers, unit_tag) ->
       Sharded
         {
           cut_path;
           containers;
           unit_tag;
           needs_prologue = !needs_prologue;
           unify = List.sort_uniq compare !unify;
         }
     | None -> Whole "the cut path is empty")
  with Unsafe reason -> Whole reason

let decision_note = function
  | Sharded c ->
    Printf.sprintf "sharding: cut at %s (unit <%s>%s)"
      (Path.to_string c.cut_path) c.unit_tag
      (if c.needs_prologue then ", shards carry the document prologue"
       else ", shards carry the container spine only")
  | Whole reason -> Printf.sprintf "sharding: whole-document fallback - %s" reason

(* --- Cutting a materialised tree --------------------------------------- *)

(* A crude serialised-size estimate (bytes per node) used only to pick
   how many units land in each shard; correctness never depends on it. *)
let approx_bytes n = 16 * Node.size n

(* The active container chain is the *first* child matching each
   container tag, root first — the shape schema-valid documents have
   (the chain above the topmost repeating element is all singleton
   cardinalities). *)
let rec chain_units unit_tag (e : Node.element) = function
  | [] ->
    List.filter_map
      (function
        | Node.Element u when String.equal u.Node.tag unit_tag -> Some u
        | Node.Element _ | Node.Text _ -> None)
      e.Node.children
  | next :: rest ->
    (match
       List.find_opt
         (function
           | Node.Element c -> String.equal c.Node.tag next
           | Node.Text _ -> false)
         e.Node.children
     with
     | Some (Node.Element c) -> chain_units unit_tag c rest
     | Some (Node.Text _) | None -> [])

let units_of_node cut (root : Node.t) =
  match root, cut.containers with
  | Node.Element e, c0 :: rest when String.equal e.Node.tag c0 ->
    chain_units cut.unit_tag e rest
  | _ -> []

let count_units cut root = List.length (units_of_node cut root)

let group_units ~budget_bytes units =
  let budget = max 1 budget_bytes in
  let close groups cur =
    match cur with [] -> groups | _ -> List.rev cur :: groups
  in
  let groups, cur, _ =
    List.fold_left
      (fun (groups, cur, bytes) u ->
        let b = approx_bytes (Node.Element u) in
        if cur <> [] && bytes + b > budget then (close groups cur, [ u ], b)
        else (groups, u :: cur, bytes + b))
      ([], [], 0) units
  in
  List.rev (close groups cur)

(* Rebuild the container spine around one unit group. With
   [needs_prologue] every non-unit subtree is kept (shared, not
   copied); otherwise only container attributes survive — nothing else
   of the document is read by the mapping. *)
let build_shard cut ~group (root : Node.t) =
  let in_group =
    let tbl = Hashtbl.create (List.length group * 2) in
    List.iter (fun (u : Node.element) -> Hashtbl.replace tbl u.Node.id ()) group;
    fun (u : Node.element) -> Hashtbl.mem tbl u.Node.id
  in
  let rec rebuild (e : Node.element) chain =
    match chain with
    | [] ->
      let children =
        List.filter
          (function
            | Node.Element u when String.equal u.Node.tag cut.unit_tag ->
              in_group u
            | Node.Element _ | Node.Text _ -> cut.needs_prologue)
          e.Node.children
      in
      Node.elem ~attrs:e.Node.attrs e.Node.tag children
    | next :: rest ->
      let descended = ref false in
      let children =
        List.filter_map
          (fun c ->
            match c with
            | Node.Element ce
              when (not !descended) && String.equal ce.Node.tag next ->
              descended := true;
              Some (rebuild ce rest)
            | Node.Element _ | Node.Text _ ->
              if cut.needs_prologue then Some c else None)
          e.Node.children
      in
      Node.elem ~attrs:e.Node.attrs e.Node.tag children
  in
  match root, cut.containers with
  | Node.Element e, _ :: below -> rebuild e below
  | (Node.Element _ | Node.Text _), _ -> root

let shards_of_node cut ~budget_bytes (root : Node.t) =
  let units = units_of_node cut root in
  match units with
  | [] | [ _ ] -> [ root ]
  | _ ->
    List.map
      (fun group -> build_shard cut ~group root)
      (group_units ~budget_bytes units)

(* --- Cutting a byte stream --------------------------------------------- *)

type step = Shard of Node.t | Fallback_doc of Node.t | Exhausted

type cutter = {
  csrc : Stream.source;
  ccut : cut;
  cbudget : int;
  (* one slot per container level: has the first match been entered /
     what were its attributes *)
  cmatched : bool array;
  cattrs : (string * Atom.t) list array;
  mutable clevel : int; (* matched-chain prefix currently open *)
  mutable copen : int; (* total open elements *)
  mutable cacc : Node.t list; (* current group, reversed *)
  mutable cacc_bytes : int;
  mutable cemitted : bool;
  mutable cdone : bool;
}

let cutter cut ~budget_bytes src =
  let n = List.length cut.containers in
  {
    csrc = src;
    ccut = cut;
    cbudget = max 1 budget_bytes;
    cmatched = Array.make (max 1 n) false;
    cattrs = Array.make (max 1 n) [];
    clevel = 0;
    copen = 0;
    cacc = [];
    cacc_bytes = 0;
    cemitted = false;
    cdone = false;
  }

let ncontainers c = List.length c.ccut.containers

(* The shard document: the matched container spine (attributes kept)
   wrapped around the group. Unmatched deeper containers simply yield
   a spine that stops early — the mapping then binds nothing, exactly
   like the whole document would. *)
let emit c group =
  let n = ncontainers c in
  let deepest =
    let rec go i = if i < n && c.cmatched.(i) then go (i + 1) else i in
    go 0
  in
  let rec wrap i =
    let tag = List.nth c.ccut.containers i in
    if i = deepest - 1 then
      Node.elem ~attrs:c.cattrs.(i) tag (if deepest = n then group else [])
    else Node.elem ~attrs:c.cattrs.(i) tag [ wrap (i + 1) ]
  in
  if deepest = 0 then Node.elem (List.hd c.ccut.containers) []
  else wrap 0

(* Skip a whole subtree (events balanced Start/End). The Start has
   already been consumed. *)
let skip_subtree c =
  let rec go depth =
    if depth = 0 then Ok ()
    else
      match Stream.next_result c.csrc with
      | Error ds -> Error ds
      | Ok None -> Ok () (* unreachable: the lexer errors first *)
      | Ok (Some (Stream.Start _)) -> go (depth + 1)
      | Ok (Some (Stream.End _)) -> go (depth - 1)
      | Ok (Some (Stream.Text _)) -> go depth
  in
  go 1

let rec next_shard c =
  if c.cdone then Ok Exhausted
  else
    match Stream.next_result c.csrc with
    | Error ds ->
      c.cdone <- true;
      Error ds
    | Ok None ->
      c.cdone <- true;
      if c.cacc <> [] || not c.cemitted then begin
        let shard = emit c (List.rev c.cacc) in
        c.cacc <- [];
        c.cacc_bytes <- 0;
        c.cemitted <- true;
        Ok (Shard shard)
      end
      else Ok Exhausted
    | Ok (Some (Stream.Text _)) -> next_shard c
    | Ok (Some (Stream.End _)) ->
      c.copen <- c.copen - 1;
      if c.clevel > c.copen then c.clevel <- c.copen;
      next_shard c
    | Ok (Some (Stream.Start { tag; attrs })) ->
      let n = ncontainers c in
      if
        c.copen = c.clevel && c.clevel < n
        && (not c.cmatched.(c.clevel))
        && String.equal tag (List.nth c.ccut.containers c.clevel)
      then begin
        c.cmatched.(c.clevel) <- true;
        c.cattrs.(c.clevel) <- attrs;
        c.clevel <- c.clevel + 1;
        c.copen <- c.copen + 1;
        next_shard c
      end
      else if
        c.copen = c.clevel && c.clevel = n && String.equal tag c.ccut.unit_tag
      then begin
        let p0 = Stream.pos c.csrc in
        match Stream.subtree_result c.csrc ~tag ~attrs with
        | Error ds ->
          c.cdone <- true;
          Error ds
        | Ok u ->
          let bytes =
            Stream.pos c.csrc - p0 + String.length tag + 2
          in
          c.cacc <- u :: c.cacc;
          c.cacc_bytes <- c.cacc_bytes + bytes;
          if c.cacc_bytes >= c.cbudget then begin
            let shard = emit c (List.rev c.cacc) in
            c.cacc <- [];
            c.cacc_bytes <- 0;
            c.cemitted <- true;
            Ok (Shard shard)
          end
          else next_shard c
      end
      else if c.copen = 0 then begin
        (* Root tag does not open the container chain: materialise the
           whole document and let the caller run it unsharded. *)
        match Stream.subtree_result c.csrc ~tag ~attrs with
        | Error ds ->
          c.cdone <- true;
          Error ds
        | Ok doc ->
          c.cdone <- true;
          (match Stream.next_result c.csrc with
           | Error ds -> Error ds
           | Ok (Some _) -> assert false
           | Ok None -> Ok (Fallback_doc doc))
      end
      else begin
        match skip_subtree c with
        | Error ds ->
          c.cdone <- true;
          Error ds
        | Ok () -> next_shard c
      end

(* --- Merging shard outputs --------------------------------------------- *)

(* Shard outputs concatenate on the unified spine: an element whose
   absolute path is in the unify set is created once per shard by
   completion semantics and must collapse to one element (attributes
   and text must agree — a disagreement means the whole-document run
   would have raised the same conflicting-assignment error); all other
   children are per-binding and append in shard order, which is
   document order of the bindings. First-occurrence positions
   reproduce the whole-document creation order because completion
   elements are created at their first contributing binding. *)
type mnode = {
  mtag : string;
  mutable mattrs : (string * Atom.t) list; (* reversed *)
  mutable mtext : Atom.t option;
  mutable mkids : mkid list; (* reversed *)
  mutable msingles : (string * mnode) list;
}

and mkid = Munified of mnode | Mleaf of Node.t

type merger = {
  munify : string list;
  mutable mroot : mnode option;
}

let merger ~unify = { munify = unify; mroot = None }

let merge_error fmt =
  Printf.ksprintf
    (fun s ->
      Clip_diag.fail
        (Clip_diag.error ~code:Clip_diag.Codes.tgd_eval
           ("shard merge: " ^ s)))
    fmt

let fresh_mnode tag = { mtag = tag; mattrs = []; mtext = None; mkids = []; msingles = [] }

let atom_eq (a : Atom.t) (b : Atom.t) = a = b

let rec merge_elem mg path (m : mnode) (e : Node.element) =
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name m.mattrs with
      | Some v0 ->
        if not (atom_eq v0 v) then
          merge_error "shards disagree on @%s of <%s>" name m.mtag
      | None -> m.mattrs <- (name, v) :: m.mattrs)
    e.Node.attrs;
  List.iter
    (fun child ->
      match child with
      | Node.Text a ->
        (match m.mtext with
         | None -> m.mtext <- Some a
         | Some a0 ->
           if not (atom_eq a0 a) then
             merge_error "shards disagree on the text of <%s>" m.mtag)
      | Node.Element ce ->
        let cpath =
          if String.equal path "" then ce.Node.tag
          else path ^ "/" ^ ce.Node.tag
        in
        if List.mem cpath mg.munify then begin
          match List.assoc_opt ce.Node.tag m.msingles with
          | Some cm -> merge_elem mg cpath cm ce
          | None ->
            let cm = fresh_mnode ce.Node.tag in
            m.msingles <- (ce.Node.tag, cm) :: m.msingles;
            m.mkids <- Munified cm :: m.mkids;
            merge_elem mg cpath cm ce
        end
        else m.mkids <- Mleaf child :: m.mkids)
    e.Node.children

let merge_into mg (shard_output : Node.t) =
  match shard_output with
  | Node.Text _ -> merge_error "a shard produced a bare text node"
  | Node.Element e ->
    let m =
      match mg.mroot with
      | Some m ->
        if not (String.equal m.mtag e.Node.tag) then
          merge_error "shards disagree on the target root tag";
        m
      | None ->
        let m = fresh_mnode e.Node.tag in
        mg.mroot <- Some m;
        m
    in
    merge_elem mg "" m e

let rec mnode_to_node (m : mnode) =
  let kids =
    List.rev_map
      (function Munified cm -> mnode_to_node cm | Mleaf n -> n)
      m.mkids
  in
  let kids = match m.mtext with None -> kids | Some a -> Node.text a :: kids in
  Node.elem ~attrs:(List.rev m.mattrs) m.mtag kids

let merged mg = Option.map mnode_to_node mg.mroot

let merge ~unify outputs =
  Clip_diag.guard (fun () ->
      let mg = merger ~unify in
      List.iter (merge_into mg) outputs;
      match merged mg with
      | Some n -> n
      | None -> merge_error "no shard produced an output")
