module Path = Clip_schema.Path
module Schema = Clip_schema.Schema
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term
module Mapping = Clip_core.Mapping
module Validity = Clip_core.Validity
module Compile = Clip_core.Compile
module Engine = Clip_core.Engine
module Codes = Clip_diag.Codes

let aerror code fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code ("compose: " ^ s)))
    fmt

(* === Binding simulation ================================================

   Composition instantiates [m1] builder chains inside a new mapping and
   must know, {e exactly}, which source binding the compiler will anchor
   every input and every value-mapping leaf against — a wrong anchor
   silently changes multiplicity (a self-join collapsing into a
   correlated scan, an iteration re-crossing a repetition). This module
   mirrors [Compile.compile_input] / [source_leaf_expr]: same
   deepest-prefix fold, same first-wins tie-break, same
   sibling-independent input anchoring. Every binding gets a stable
   address ([occ]) so the instantiation can state which binding it
   {e intended} and a verification pass can check the compiler agrees. *)

(* [Root] is the schema-root pseudo-binding; [B (node, input, pos)] is
   the [pos]-th generator of the builder chain compiled for the
   [input]-th incoming builder (0-based) of build node [node]. *)
type occ = Root | B of string * int * int

type binding = { o : occ; bpath : Path.t; bvar : string option }

type input_info = {
  ii_anchor : occ;
  ii_chain : (Path.t * occ) list; (* outermost first; last element = the input *)
}

type sim = {
  s_schema : Schema.t;
  s_root : binding;
  s_inputs : (string * int, input_info) Hashtbl.t;
  s_scope : (string, binding list) Hashtbl.t; (* ctx @ own, root excluded *)
}

(* Mirror of [Compile.deepest_binding]: deepest prefix wins, first wins
   on equal depth (the fold keeps [best] when depths tie). *)
let deepest_binding bindings ~ok p =
  List.fold_left
    (fun best b ->
      if Path.is_prefix b.bpath p && ok b then
        match best with
        | Some prev
          when List.length prev.bpath.Path.steps
               >= List.length b.bpath.Path.steps ->
          best
        | Some _ | None -> Some b
      else best)
    None bindings

let analyze (m : Mapping.t) =
  let sim =
    {
      s_schema = m.source;
      s_root = { o = Root; bpath = Schema.root_path m.source; bvar = None };
      s_inputs = Hashtbl.create 16;
      s_scope = Hashtbl.create 16;
    }
  in
  let rec node ctx (n : Mapping.build_node) =
    let own =
      List.concat
        (List.mapi
           (fun idx (i : Mapping.input) ->
             let anchor =
               match
                 deepest_binding (sim.s_root :: ctx) ~ok:(fun _ -> true)
                   i.in_source
               with
               | Some b -> b
               | None ->
                 aerror Codes.algebra_ambiguous
                   "input %s of node %s is not under the source root"
                   (Path.to_string i.in_source) n.bn_id
             in
             let reps =
               Schema.repeating_strictly_between m.source ~above:anchor.bpath
                 ~below:i.in_source
             in
             let chain =
               if List.exists (Path.equal i.in_source) reps then reps
               else reps @ [ i.in_source ]
             in
             let k = List.length chain in
             let bs =
               List.mapi
                 (fun pos p ->
                   {
                     o = B (n.bn_id, idx, pos);
                     bpath = p;
                     bvar = (if pos = k - 1 then i.in_var else None);
                   })
                 chain
             in
             Hashtbl.replace sim.s_inputs (n.bn_id, idx)
               { ii_anchor = anchor.o; ii_chain = List.map (fun b -> (b.bpath, b.o)) bs };
             bs)
           n.bn_inputs)
    in
    let scope = ctx @ own in
    Hashtbl.replace sim.s_scope n.bn_id scope;
    List.iter (node scope) n.bn_children
  in
  List.iter (node []) m.roots;
  sim

(* Mirror of [Compile.source_leaf_expr]'s anchor choice. *)
let anchor_leaf sim scope ~require_unrepeated leaf =
  let ok b =
    (not require_unrepeated)
    || Schema.repeating_strictly_between sim.s_schema ~above:b.bpath ~below:leaf
       = []
  in
  deepest_binding (sim.s_root :: scope) ~ok (Path.element_of leaf)

(* === Composition ====================================================== *)

(* Composed-side construction node: mutable so the walk can graft the
   principal output, conditions and children onto the innermost
   instantiated node after all chains of an [m2] node are in place. *)
type cnode = {
  c_id : string;
  c_inputs : Mapping.input list;
  mutable c_cond : Mapping.predicate list;
  mutable c_group : Mapping.group_key list;
  mutable c_output : Path.t option;
  mutable c_children : cnode list;
}

(* One instantiated [m1] context reachable from an [m2] binding: the
   producer node it copies and the environment mapping every [m1]
   binding occurrence on the copy's chain (and its inherited ancestors)
   to the composed occurrence and composed variable. Innermost entries
   last; lookups take the last match so re-instantiated self-join
   copies shadow outer ones. *)
type inst = {
  i_node : Mapping.build_node option; (* None = the document root *)
  i_env : (occ * (occ * string option)) list;
}

let lookup_env env o =
  List.fold_left (fun acc (o', v) -> if o' = o then Some v else acc) None env

type vm_expect = { ve_driver : string; ve_leaf : Path.t; ve_ru : bool; ve_occ : occ }

(* Tail of [full] strictly after the physically-equal node [p]. *)
let rec tail_after p = function
  | [] -> None
  | x :: rest -> if x == p then Some rest else tail_after p rest

let last xs = List.nth xs (List.length xs - 1)

let compose_exn (m1 : Mapping.t) (m2 : Mapping.t) =
  (* Operands must be valid, compilable mappings. *)
  (match Compile.to_tgd_result m1 with
   | Ok _ -> ()
   | Error ds -> Clip_diag.fail_all ds);
  (match Compile.to_tgd_result m2 with
   | Ok _ -> ()
   | Error ds -> Clip_diag.fail_all ds);
  if not (Schema.equal m1.target m2.source) then
    aerror Codes.algebra_schema_mismatch
      "the first mapping's target schema is not the second's source schema";
  let inter = m1.target in
  (* Unique producers: at most one builder output per intermediate
     element, in both operands (composition and driver resolution rely
     on it). *)
  let check_unique_outputs which (m : Mapping.t) =
    let outs =
      List.filter_map (fun (n : Mapping.build_node) -> n.bn_output)
        (Mapping.all_nodes m)
    in
    let rec dup = function
      | [] -> ()
      | p :: rest ->
        if List.exists (Path.equal p) rest then
          aerror Codes.algebra_ambiguous
            "%s mapping: two build nodes produce %s" which (Path.to_string p)
        else dup rest
    in
    dup outs
  in
  check_unique_outputs "first" m1;
  check_unique_outputs "second" m2;
  let producer q =
    List.find_opt
      (fun (n : Mapping.build_node) ->
        match n.bn_output with Some o -> Path.equal o q | None -> false)
      (Mapping.all_nodes m1)
  in
  let unique_vm q =
    match
      List.filter
        (fun (vm : Mapping.value_mapping) -> Path.equal vm.vm_target q)
        m1.values
    with
    | [ vm ] -> vm
    | [] ->
      aerror Codes.algebra_leaf
        "intermediate leaf %s is read but populated by no value mapping"
        (Path.to_string q)
    | _ :: _ ->
      aerror Codes.algebra_ambiguous
        "intermediate leaf %s is populated by more than one value mapping"
        (Path.to_string q)
  in
  let sim1 = analyze m1 in
  let sim2 = analyze m2 in
  let scope1 (n : Mapping.build_node) = Hashtbl.find sim1.s_scope n.bn_id in
  let scope2 (n : Mapping.build_node) = Hashtbl.find sim2.s_scope n.bn_id in
  (* Composed-side supplies and the expectation ledger the verification
     pass checks against the compiler's own choices. *)
  let next_node = ref 0 and next_var = ref 0 in
  let fresh_node () = incr next_node; Printf.sprintf "a%d" !next_node in
  let fresh_var () = incr next_var; Printf.sprintf "c%d" !next_var in
  let croots = ref [] in
  let expect_anchor : (string * int, occ) Hashtbl.t = Hashtbl.create 16 in
  let expect_vm : vm_expect list ref = ref [] in
  let root_inst = { i_node = None; i_env = [ (Root, (Root, None)) ] } in
  (* Info recorded per [m2] node once its chains are instantiated: the
     innermost composed node and the [m2]-binding environment in scope
     there. *)
  let node_info : (string, string * (occ * inst) list) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Translate one [m1] predicate of node [x] under environment [env]. *)
  let translate_pred_m1 env (x : Mapping.build_node) (p : Mapping.predicate) =
    let tr = function
      | Mapping.O_const a -> Mapping.O_const a
      | Mapping.O_path (v, steps) ->
        (match
           List.find_opt
             (fun b -> b.bvar = Some v)
             (List.rev (scope1 x))
         with
         | None ->
           aerror Codes.algebra_ambiguous
             "variable $%s of node %s is not bound on its builder chain" v
             x.bn_id
         | Some b ->
           (match lookup_env env b.o with
            | Some (_, Some cv) -> Mapping.O_path (cv, steps)
            | Some (_, None) | None ->
              aerror Codes.algebra_ambiguous
                "no composed binding for $%s of node %s" v x.bn_id))
    in
    { Mapping.p_left = tr p.p_left; p_op = p.p_op; p_right = tr p.p_right }
  in
  let occ_path1 = function
    | Root -> sim1.s_root.bpath
    | B (nid, idx, pos) ->
      fst (List.nth (Hashtbl.find sim1.s_inputs (nid, idx)).ii_chain pos)
  in
  let occ_path2 = function
    | Root -> sim2.s_root.bpath
    | B (nid, idx, pos) ->
      fst (List.nth (Hashtbl.find sim2.s_inputs (nid, idx)).ii_chain pos)
  in
  (* The producers of one [m2] input chain, with the fragment checks:
     every iterated intermediate element must have a unique, grouping-
     free producer. *)
  let chain_producers chain =
    List.map
      (fun (q, m2occ) ->
        match producer q with
        | None ->
          if Schema.is_repeating inter q then
            aerror Codes.algebra_ambiguous
              "intermediate element %s has no producing build node"
              (Path.to_string q)
          else
            aerror Codes.algebra_multiplicity
              "the second mapping iterates %s, which no builder produces \
               (completion elements have no per-binding multiplicity)"
              (Path.to_string q)
        | Some p ->
          if p.bn_group_by <> [] then
            aerror Codes.algebra_grouping
              "intermediate element %s is produced by a grouping node; \
               unfolding would lose its memoisation"
              (Path.to_string q);
          (q, m2occ, p))
      chain
  in
  (* How one [m2] input unfolds.

     - [`Alias]: the generator re-binds the anchor's own element — a
       singleton. The composed input re-binds the producing iteration's
       innermost source binding instead; reads resolve through the
       anchor's existing instantiation.
     - [`Collapse]: the producing [m1] segment is a pure telescope
       (single-input, condition-free, grouping-free) whose combined
       generator chain is exactly what the compiler derives for its
       deepest source path. The whole segment becomes ONE composed
       input — crucially preserving the sibling-independence of [m2]'s
       inputs (sibling inputs must not anchor against each other).
     - [`Nested]: general segments (joins, filters) are instantiated as
       a nested spine of composed context nodes, one per [m1] node. *)
  let plan_input (ii : input_info) cenv =
    let anchor_inst =
      match List.assoc_opt ii.ii_anchor cenv with
      | Some i -> i
      | None -> assert false
    in
    match ii.ii_chain with
    | [ (q, m2occ) ]
      when ii.ii_anchor <> Root && Path.equal q (occ_path2 ii.ii_anchor) ->
      let x =
        match anchor_inst.i_node with
        | Some x -> x
        | None ->
          aerror Codes.algebra_ambiguous
            "re-binding %s: its instantiation has no producing builder"
            (Path.to_string q)
      in
      let m1occ =
        snd (last (Hashtbl.find sim1.s_inputs (x.bn_id, 0)).ii_chain)
      in
      let sp = occ_path1 m1occ in
      (match lookup_env anchor_inst.i_env m1occ with
       | Some (cocc, _) -> `Alias (m2occ, sp, cocc, m1occ, anchor_inst)
       | None ->
         aerror Codes.algebra_ambiguous
           "re-binding %s: no composed binding for its instantiation"
           (Path.to_string q))
    | chain ->
      let chain_prods = chain_producers chain in
      let _, _, pk = last chain_prods in
      let full = Validity.parent_chain m1 pk @ [ pk ] in
      let xs =
        match anchor_inst.i_node with
        | None -> full
        | Some p0 ->
          (match tail_after p0 full with
           | Some (_ :: _ as l) -> l
           | Some [] | None ->
             aerror Codes.algebra_ambiguous
               "builder chains for %s do not nest inside the binding context"
               (Path.to_string (fst (List.hd chain))))
      in
      (* every chain element's producer must lie on [xs], in order *)
      let rec order ns = function
        | [] -> ()
        | (q, _, p) :: rest ->
          (match tail_after p ns with
           | Some ns' -> order ns' rest
           | None ->
             aerror Codes.algebra_ambiguous
               "the builder producing %s is not on the unfolded chain"
               (Path.to_string q))
      in
      order xs chain_prods;
      List.iter
        (fun (x : Mapping.build_node) ->
          if x.bn_group_by <> [] then
            aerror Codes.algebra_grouping
              "build node %s groups its iteration; unfolding would lose \
               the memoisation"
              x.bn_id)
        xs;
      let telescope =
        List.for_all
          (fun (x : Mapping.build_node) ->
            List.length x.bn_inputs = 1 && x.bn_cond = [])
          xs
      in
      if telescope then begin
        let concat =
          List.concat_map
            (fun (x : Mapping.build_node) ->
              (Hashtbl.find sim1.s_inputs (x.bn_id, 0)).ii_chain)
            xs
        in
        let x1 = List.hd xs in
        let a1occ = (Hashtbl.find sim1.s_inputs (x1.bn_id, 0)).ii_anchor in
        let above = occ_path1 a1occ in
        let sp = fst (last concat) in
        let reps =
          Schema.repeating_strictly_between sim1.s_schema ~above ~below:sp
        in
        let auto =
          if List.exists (Path.equal sp) reps then reps else reps @ [ sp ]
        in
        let matches =
          List.length auto = List.length concat
          && List.for_all2 (fun a (p, _) -> Path.equal a p) auto concat
        in
        match lookup_env anchor_inst.i_env a1occ with
        | Some (cocc, _) when matches ->
          `Collapse (chain_prods, xs, anchor_inst, cocc, sp)
        | Some _ | None -> `Nested (chain_prods, xs, anchor_inst)
      end
      else `Nested (chain_prods, xs, anchor_inst)
  in
  (* One collapsed input of composed node [cid]: record the expected
     anchor, extend the instantiation environment along the combined
     chain, and register one instantiation per produced element. *)
  let apply_collapse ~cid ~idx ~var (chain_prods, xs, anchor_inst, cocc, sp) =
    Hashtbl.replace expect_anchor (cid, idx) cocc;
    let k =
      List.fold_left
        (fun acc (x : Mapping.build_node) ->
          acc + List.length (Hashtbl.find sim1.s_inputs (x.bn_id, 0)).ii_chain)
        0 xs
    in
    let env = ref anchor_inst.i_env in
    let adds = ref [] in
    let pos = ref 0 in
    List.iter
      (fun (x : Mapping.build_node) ->
        List.iter
          (fun (_, m1occ) ->
            let v = if !pos = k - 1 then Some var else None in
            env := !env @ [ (m1occ, (B (cid, idx, !pos), v)) ];
            incr pos)
          (Hashtbl.find sim1.s_inputs (x.bn_id, 0)).ii_chain;
        match
          List.find_opt
            (fun (q, _, _) ->
              match x.bn_output with Some o -> Path.equal o q | None -> false)
            chain_prods
        with
        | Some (_, m2occ, _) ->
          adds := (m2occ, { i_node = Some x; i_env = !env }) :: !adds
        | None -> ())
      xs;
    (Mapping.input ~var sp, List.rev !adds)
  in
  (* General instantiation: one composed context node per [m1] node of
     the segment, nested under [parent]. *)
  let instantiate_nested ~parent (chain_prods, xs, anchor_inst) =
    let env = ref anchor_inst.i_env in
    let parent = ref parent in
    let adds = ref [] in
    List.iter
      (fun (x : Mapping.build_node) ->
        let cid = fresh_node () in
        let cinputs =
          List.map
            (fun (i : Mapping.input) ->
              Mapping.input ~var:(fresh_var ()) i.in_source)
            x.bn_inputs
        in
        List.iteri
          (fun idx (ci : Mapping.input) ->
            let ii = Hashtbl.find sim1.s_inputs (x.bn_id, idx) in
            (match lookup_env !env ii.ii_anchor with
             | Some (cocc, _) -> Hashtbl.replace expect_anchor (cid, idx) cocc
             | None ->
               aerror Codes.algebra_ambiguous
                 "no composed binding for the anchor of node %s" x.bn_id);
            let k = List.length ii.ii_chain in
            List.iteri
              (fun pos (_, m1occ) ->
                let v = if pos = k - 1 then ci.in_var else None in
                env := !env @ [ (m1occ, (B (cid, idx, pos), v)) ])
              ii.ii_chain)
          cinputs;
        let cond = List.map (translate_pred_m1 !env x) x.bn_cond in
        let cn =
          {
            c_id = cid;
            c_inputs = cinputs;
            c_cond = cond;
            c_group = [];
            c_output = None;
            c_children = [];
          }
        in
        (match !parent with
         | Some p -> p.c_children <- p.c_children @ [ cn ]
         | None -> croots := !croots @ [ cn ]);
        parent := Some cn;
        match
          List.find_opt
            (fun (q, _, _) ->
              match x.bn_output with Some o -> Path.equal o q | None -> false)
            chain_prods
        with
        | Some (_, m2occ, _) ->
          adds := (m2occ, { i_node = Some x; i_env = !env }) :: !adds
        | None -> ())
      xs;
    (Option.get !parent, List.rev !adds)
  in
  (* Resolve a read of intermediate leaf [q_abs] whose binding
     instantiation is [inst]: the composed operand denoting the same
     value, expressible only when [m1] populates the leaf with a
     constant or an identity copy anchored at a named binding. *)
  let resolve_read_at inst q_abs =
    let vm1 = unique_vm q_abs in
    match vm1.vm_fn with
    | Mapping.Constant a -> Mapping.O_const a
    | Mapping.Identity ->
      let s = List.hd vm1.vm_sources in
      let pd =
        match Validity.driver_of m1 vm1 with
        | Some d -> d
        | None ->
          aerror Codes.algebra_leaf
            "intermediate leaf %s has no driving builder in the first mapping"
            (Path.to_string q_abs)
      in
      (match inst.i_node with
       | Some p when p == pd -> ()
       | Some _ | None ->
         aerror Codes.algebra_leaf
           "the value of %s is not written by the iteration that binds it"
           (Path.to_string q_abs));
      (match anchor_leaf sim1 (scope1 pd) ~require_unrepeated:true s with
       | None ->
         aerror Codes.algebra_leaf "source %s has no anchor in the first mapping"
           (Path.to_string s)
       | Some bs ->
         (match lookup_env inst.i_env bs.o with
          | Some (_, Some cv) ->
            (match Path.strip_prefix ~prefix:bs.bpath s with
             | Some steps -> Mapping.O_path (cv, steps)
             | None -> assert false)
          | Some (_, None) | None ->
            aerror Codes.algebra_leaf
              "the value of %s is anchored at an unnamed binding and cannot \
               be referenced in a condition"
              (Path.to_string q_abs)))
    | Mapping.Scalar _ | Mapping.Aggregate _ ->
      aerror Codes.algebra_leaf
        "the value of %s is computed by a function; conditions and grouping \
         keys cannot apply functions"
        (Path.to_string q_abs)
  in
  (* Resolve a condition / grouping-key read [$v.steps] of [m2] node [n]
     under binding environment [cenv]. *)
  let resolve_read cenv (n : Mapping.build_node) v steps =
    match List.find_opt (fun b -> b.bvar = Some v) (List.rev (scope2 n)) with
    | None ->
      aerror Codes.algebra_ambiguous
        "variable $%s of node %s is not bound on its builder chain" v n.bn_id
    | Some b ->
      let q_abs = Path.append b.bpath steps in
      (match Schema.find inter q_abs with
       | Some (Schema.Attr_ref _ | Schema.Value_ref _) -> ()
       | Some (Schema.Element_ref _) | None ->
         aerror Codes.algebra_leaf
           "condition operand %s is not an intermediate leaf"
           (Path.to_string q_abs));
      if
        Schema.repeating_strictly_between inter ~above:b.bpath ~below:q_abs
        <> []
      then
        aerror Codes.algebra_leaf
          "condition operand %s crosses a repetition below its binding"
          (Path.to_string q_abs);
      let inst =
        match List.assoc_opt b.o cenv with
        | Some i -> i
        | None -> assert false
      in
      resolve_read_at inst q_abs
  in
  let translate_pred_m2 cenv (n : Mapping.build_node) (p : Mapping.predicate) =
    let tr = function
      | Mapping.O_const a -> Mapping.O_const a
      | Mapping.O_path (v, steps) -> resolve_read cenv n v steps
    in
    { Mapping.p_left = tr p.p_left; p_op = p.p_op; p_right = tr p.p_right }
  in
  let translate_group_key cenv (n : Mapping.build_node)
      ((v, steps) : Mapping.group_key) =
    match resolve_read cenv n v steps with
    | Mapping.O_path (cv, st) -> (cv, st)
    | Mapping.O_const _ ->
      aerror Codes.algebra_leaf
        "grouping key $%s of node %s resolves to a constant, which a \
         grouping attribute cannot express"
        v n.bn_id
  in
  (* Walk [m2]'s CPT. When every input of a node unfolds as an alias or
     a collapsed telescope, the node maps to ONE composed node whose
     inputs mirror [m2]'s — preserving their sibling independence.
     Otherwise each input's segment is instantiated in sequence as a
     nested spine, and the innermost node carries the [m2] node's
     output, conditions and grouping. *)
  let rec walk parent cenv (n : Mapping.build_node) =
    let plans =
      List.mapi
        (fun idx _ -> plan_input (Hashtbl.find sim2.s_inputs (n.bn_id, idx)) cenv)
        n.bn_inputs
    in
    let mirrors =
      List.for_all
        (function `Alias _ | `Collapse _ -> true | `Nested _ -> false)
        plans
    in
    let inner, cenv' =
      if mirrors then begin
        let cid = fresh_node () in
        let adds = ref [] in
        let cinputs =
          List.mapi
            (fun idx plan ->
              let var = fresh_var () in
              match plan with
              | `Alias (m2occ, sp, cocc, m1occ, inst) ->
                Hashtbl.replace expect_anchor (cid, idx) cocc;
                (* reads anchored at the re-bound element use the alias
                   variable — the singleton denotes the same element *)
                let inst' =
                  {
                    inst with
                    i_env =
                      inst.i_env @ [ (m1occ, (B (cid, idx, 0), Some var)) ];
                  }
                in
                adds := !adds @ [ (m2occ, inst') ];
                Mapping.input ~var sp
              | `Collapse c ->
                let input, a = apply_collapse ~cid ~idx ~var c in
                adds := !adds @ a;
                input
              | `Nested _ -> assert false)
            plans
        in
        let cn =
          {
            c_id = cid;
            c_inputs = cinputs;
            c_cond = [];
            c_group = [];
            c_output = None;
            c_children = [];
          }
        in
        (match parent with
         | Some p -> p.c_children <- p.c_children @ [ cn ]
         | None -> croots := !croots @ [ cn ]);
        (cn, cenv @ !adds)
      end
      else begin
        let cur_parent = ref parent and cur_cenv = ref cenv in
        List.iter
          (fun plan ->
            match plan with
            | `Alias (m2occ, sp, cocc, m1occ, inst) ->
              let cid = fresh_node () in
              let var = fresh_var () in
              Hashtbl.replace expect_anchor (cid, 0) cocc;
              let inst' =
                {
                  inst with
                  i_env = inst.i_env @ [ (m1occ, (B (cid, 0, 0), Some var)) ];
                }
              in
              let cn =
                {
                  c_id = cid;
                  c_inputs = [ Mapping.input ~var sp ];
                  c_cond = [];
                  c_group = [];
                  c_output = None;
                  c_children = [];
                }
              in
              (match !cur_parent with
               | Some p -> p.c_children <- p.c_children @ [ cn ]
               | None -> croots := !croots @ [ cn ]);
              cur_parent := Some cn;
              cur_cenv := !cur_cenv @ [ (m2occ, inst') ]
            | `Collapse c ->
              let cid = fresh_node () in
              let input, adds = apply_collapse ~cid ~idx:0 ~var:(fresh_var ()) c in
              let cn =
                {
                  c_id = cid;
                  c_inputs = [ input ];
                  c_cond = [];
                  c_group = [];
                  c_output = None;
                  c_children = [];
                }
              in
              (match !cur_parent with
               | Some p -> p.c_children <- p.c_children @ [ cn ]
               | None -> croots := !croots @ [ cn ]);
              cur_parent := Some cn;
              cur_cenv := !cur_cenv @ adds
            | `Nested seg ->
              let inner, adds = instantiate_nested ~parent:!cur_parent seg in
              cur_parent := Some inner;
              cur_cenv := !cur_cenv @ adds)
          plans;
        (Option.get !cur_parent, !cur_cenv)
      end
    in
    inner.c_output <- n.bn_output;
    inner.c_cond <- inner.c_cond @ List.map (translate_pred_m2 cenv' n) n.bn_cond;
    inner.c_group <- List.map (translate_group_key cenv' n) n.bn_group_by;
    Hashtbl.replace node_info n.bn_id (inner.c_id, cenv');
    List.iter (walk (Some inner) cenv') n.bn_children
  in
  List.iter (walk None [ (Root, root_inst) ]) m2.roots;
  (* --- Value mappings -------------------------------------------------- *)
  (* Resolve intermediate leaf [q] read by a value mapping whose driver
     context is [m2] node [nd]: the substituted source function. *)
  let resolve_vm_leaf (nd : Mapping.build_node) cenv q =
    match anchor_leaf sim2 (scope2 nd) ~require_unrepeated:true q with
    | None ->
      aerror Codes.algebra_leaf "intermediate leaf %s has no anchor"
        (Path.to_string q)
    | Some bq ->
      let vm1 = unique_vm q in
      (match vm1.vm_fn with
       | Mapping.Constant a -> `Const a
       | Mapping.Aggregate _ ->
         aerror Codes.algebra_leaf
           "intermediate leaf %s is an aggregate in the first mapping; \
            aggregates do not substitute into value mappings"
           (Path.to_string q)
       | Mapping.Identity | Mapping.Scalar _ ->
         let pd =
           match Validity.driver_of m1 vm1 with
           | Some d -> d
           | None ->
             aerror Codes.algebra_leaf
               "intermediate leaf %s has no driving builder in the first \
                mapping"
               (Path.to_string q)
         in
         let inst =
           match List.assoc_opt bq.o cenv with
           | Some i -> i
           | None -> assert false
         in
         (match inst.i_node with
          | Some p when p == pd -> ()
          | Some _ | None ->
            aerror Codes.algebra_leaf
              "the value of %s is not written by the iteration that binds it"
              (Path.to_string q));
         let resolve_source s =
           match anchor_leaf sim1 (scope1 pd) ~require_unrepeated:true s with
           | None ->
             aerror Codes.algebra_leaf
               "source %s has no anchor in the first mapping" (Path.to_string s)
           | Some bs ->
             (match lookup_env inst.i_env bs.o with
              | Some (cocc, _) -> (s, cocc)
              | None ->
                aerror Codes.algebra_ambiguous
                  "no composed binding for the anchor of source %s"
                  (Path.to_string s))
         in
         (match vm1.vm_fn with
          | Mapping.Identity -> `Ident (resolve_source (List.hd vm1.vm_sources))
          | Mapping.Scalar f -> `Scalar (f, List.map resolve_source vm1.vm_sources)
          | Mapping.Constant _ | Mapping.Aggregate _ -> assert false))
  in
  let driver2 vm2 = Validity.driver_of m2 vm2 in
  let push_expects driver_cid srcs =
    List.iter
      (fun (s, cocc) ->
        expect_vm :=
          { ve_driver = driver_cid; ve_leaf = s; ve_ru = true; ve_occ = cocc }
          :: !expect_vm)
      srcs
  in
  (* Aggregate gate: the [m1] builder segment from the aggregation
     anchor's producer [a] down to [pd] must be a pure telescope —
     single-input, condition-free, grouping-free nodes, each anchored at
     the innermost binding of its predecessor — so that its combined
     iteration is exactly the repetitions a composed aggregate over the
     source schema crosses. Returns the composed occurrence the
     aggregate's source must anchor at. *)
  let telescope ~(anchor_inst : inst) (pd : Mapping.build_node) =
    let full = Validity.parent_chain m1 pd @ [ pd ] in
    let seg =
      match anchor_inst.i_node with
      | None -> full
      | Some a ->
        (match tail_after a full with
         | Some l -> l
         | None ->
           aerror Codes.algebra_ambiguous
             "aggregated builders do not nest inside the aggregation context")
    in
    if seg = [] then
      aerror Codes.algebra_leaf
        "aggregation over a leaf of the binding element itself does not \
         unfold";
    List.iter
      (fun (x : Mapping.build_node) ->
        if List.length x.bn_inputs <> 1 then
          aerror Codes.algebra_leaf
            "aggregated builder %s joins several inputs; unfolding would \
             change the aggregated multiset"
            x.bn_id;
        if x.bn_cond <> [] then
          aerror Codes.algebra_leaf
            "aggregated builder %s filters its iteration; a composed \
             aggregate cannot reproduce the filter"
            x.bn_id;
        if x.bn_group_by <> [] then
          aerror Codes.algebra_grouping
            "aggregated builder %s groups its iteration" x.bn_id)
      seg;
    let innermost_occ (x : Mapping.build_node) =
      let ii = Hashtbl.find sim1.s_inputs (x.bn_id, 0) in
      snd (List.nth ii.ii_chain (List.length ii.ii_chain - 1))
    in
    let rec check prev = function
      | [] -> ()
      | (x : Mapping.build_node) :: rest ->
        let ii = Hashtbl.find sim1.s_inputs (x.bn_id, 0) in
        (match prev, ii.ii_anchor with
         | None, Root -> ()
         | None, B _ ->
           aerror Codes.algebra_leaf
             "aggregated builder %s is not anchored at the aggregation \
              context"
             x.bn_id
         | Some (p : Mapping.build_node), B (nid, inp, pos) ->
           let last_of_input =
             let ii_p = Hashtbl.find sim1.s_inputs (p.bn_id, inp) in
             pos = List.length ii_p.ii_chain - 1
           in
           if not (String.equal nid p.bn_id && last_of_input) then
             aerror Codes.algebra_leaf
               "aggregated builder %s skips or re-crosses an iteration of %s"
               x.bn_id p.bn_id
         | Some _, Root ->
           aerror Codes.algebra_leaf
             "aggregated builder %s re-anchors at the document root" x.bn_id)
      ;
        check (Some x) rest
    in
    check anchor_inst.i_node seg;
    let x1 = List.hd seg in
    let e_occ =
      let ii = Hashtbl.find sim1.s_inputs (x1.bn_id, 0) in
      match lookup_env anchor_inst.i_env ii.ii_anchor with
      | Some (cocc, _) -> cocc
      | None ->
        aerror Codes.algebra_ambiguous
          "no composed binding for the aggregation context"
    in
    (seg, e_occ, innermost_occ)
  in
  let translate_vm (vm2 : Mapping.value_mapping) =
    match vm2.vm_fn with
    | Mapping.Constant a ->
      Mapping.value ~fn:(Mapping.Constant a) [] vm2.vm_target
    | Mapping.Identity ->
      let nd =
        match driver2 vm2 with Some d -> d | None -> assert false
      in
      let cid, cenv = Hashtbl.find node_info nd.bn_id in
      (match resolve_vm_leaf nd cenv (List.hd vm2.vm_sources) with
       | `Const a -> Mapping.value ~fn:(Mapping.Constant a) [] vm2.vm_target
       | `Ident (s, cocc) ->
         push_expects cid [ (s, cocc) ];
         Mapping.value ~fn:Mapping.Identity [ s ] vm2.vm_target
       | `Scalar (f, srcs) ->
         push_expects cid srcs;
         Mapping.value ~fn:(Mapping.Scalar f) (List.map fst srcs) vm2.vm_target)
    | Mapping.Scalar f2 ->
      let nd =
        match driver2 vm2 with Some d -> d | None -> assert false
      in
      let cid, cenv = Hashtbl.find node_info nd.bn_id in
      let srcs =
        List.map
          (fun q ->
            match resolve_vm_leaf nd cenv q with
            | `Ident (s, cocc) -> (s, cocc)
            | `Const _ | `Scalar _ ->
              aerror Codes.algebra_leaf
                "argument %s of %s is not an identity copy; nested value \
                 functions do not substitute"
                (Path.to_string q) f2)
          vm2.vm_sources
      in
      push_expects cid srcs;
      Mapping.value ~fn:(Mapping.Scalar f2) (List.map fst srcs) vm2.vm_target
    | Mapping.Aggregate k ->
      let q = List.hd vm2.vm_sources in
      let nd_opt = driver2 vm2 in
      let cid_opt, cenv, scope =
        match nd_opt with
        | Some nd ->
          let cid, cenv = Hashtbl.find node_info nd.bn_id in
          (Some cid, cenv, scope2 nd)
        | None -> (None, [ (Root, root_inst) ], [])
      in
      let a_q =
        match anchor_leaf sim2 scope ~require_unrepeated:false q with
        | Some b -> b
        | None -> assert false (* the root always prefixes *)
      in
      let anchor_inst =
        match List.assoc_opt a_q.o cenv with
        | Some i -> i
        | None -> assert false
      in
      (match Schema.find inter q with
       | Some (Schema.Element_ref _) ->
         (* count of produced elements: one per producer binding *)
         let pq =
           match producer q with
           | Some p -> p
           | None ->
             aerror Codes.algebra_multiplicity
               "counted element %s is produced by no builder"
               (Path.to_string q)
         in
         let seg, e_occ, _ = telescope ~anchor_inst pq in
         ignore seg;
         let src = (List.hd pq.bn_inputs).in_source in
         (match cid_opt with
          | Some cid ->
            expect_vm :=
              { ve_driver = cid; ve_leaf = src; ve_ru = false; ve_occ = e_occ }
              :: !expect_vm
          | None -> ());
         Mapping.value ~fn:(Mapping.Aggregate k) [ src ] vm2.vm_target
       | Some (Schema.Attr_ref _ | Schema.Value_ref _) ->
         let vm1 = unique_vm q in
         (match vm1.vm_fn with
          | Mapping.Identity ->
            let s = List.hd vm1.vm_sources in
            let pd =
              match Validity.driver_of m1 vm1 with
              | Some d -> d
              | None ->
                aerror Codes.algebra_leaf
                  "aggregated leaf %s has no driving builder"
                  (Path.to_string q)
            in
            let _, e_occ, innermost_occ = telescope ~anchor_inst pd in
            (* the copied source must vary with [pd]'s own iteration,
               or the aggregate would see deduplicated values *)
            (match anchor_leaf sim1 (scope1 pd) ~require_unrepeated:true s with
             | Some bs when bs.o = innermost_occ pd -> ()
             | Some _ | None ->
               aerror Codes.algebra_leaf
                 "aggregated leaf %s copies a value bound above its \
                  producing iteration"
                 (Path.to_string q));
            (match cid_opt with
             | Some cid ->
               expect_vm :=
                 { ve_driver = cid; ve_leaf = s; ve_ru = false; ve_occ = e_occ }
                 :: !expect_vm
             | None -> ());
            Mapping.value ~fn:(Mapping.Aggregate k) [ s ] vm2.vm_target
          | Mapping.Constant _ | Mapping.Scalar _ | Mapping.Aggregate _ ->
            aerror Codes.algebra_leaf
              "aggregated leaf %s is not an identity copy in the first \
               mapping"
              (Path.to_string q))
       | None -> assert false (* valid m2: vm sources resolve *))
  in
  let values = List.map translate_vm m2.values in
  (* --- Assembly and verification --------------------------------------- *)
  let rec build (c : cnode) =
    Mapping.node ~id:c.c_id ?output:c.c_output ~cond:c.c_cond
      ~group_by:c.c_group
      ~children:(List.map build c.c_children)
      c.c_inputs
  in
  (* Compile adopts a CPT root under the producer of a strict prefix of
     its output — but only keyed on the root's OWN output. A composed
     root that became a context spine (nested instantiation) with its
     output deeper down would silently lose that adoption, changing the
     target nesting; reject such shapes instead. *)
  let all_cnodes =
    let rec go c = c :: List.concat_map go c.c_children in
    List.concat_map go !croots
  in
  List.iter
    (fun r ->
      if r.c_output = None then begin
        let rec sub c = c :: List.concat_map sub c.c_children in
        let mine = sub r in
        let outs = List.filter_map (fun c -> c.c_output) mine in
        let adopter o =
          List.exists
            (fun c ->
              (not (List.memq c mine))
              &&
              match c.c_output with
              | Some o' -> Path.is_prefix o' o && not (Path.equal o' o)
              | None -> false)
            all_cnodes
        in
        if List.exists adopter outs then
          aerror Codes.algebra_ambiguous
            "an unfolded submapping would need adoption under another \
             builder's output, which composition cannot express"
      end)
    !croots;
  let composed =
    Mapping.make ~source:m1.source ~target:m2.target
      ~roots:(List.map build !croots) values
  in
  (* The compiler must agree with every anchoring the instantiation
     intended; a divergence means the unfolding changed multiplicity
     (e.g. a self-join aliasing an outer binding) and the pair is
     outside the fragment. *)
  let simc = analyze composed in
  Hashtbl.iter
    (fun key expected ->
      match Hashtbl.find_opt simc.s_inputs key with
      | Some ii when ii.ii_anchor = expected -> ()
      | Some _ | None ->
        aerror Codes.algebra_ambiguous
          "unfolded iterations alias: the compiler anchors an instantiated \
           input differently from the original mapping")
    expect_anchor;
  List.iter
    (fun ve ->
      let scope = Hashtbl.find simc.s_scope ve.ve_driver in
      match anchor_leaf simc scope ~require_unrepeated:ve.ve_ru ve.ve_leaf with
      | Some b when b.o = ve.ve_occ -> ()
      | Some _ | None ->
        aerror Codes.algebra_ambiguous
          "unfolded iterations alias: source %s anchors differently in the \
           composed mapping"
          (Path.to_string ve.ve_leaf))
    !expect_vm;
  (match Compile.to_tgd_result composed with
   | Ok _ -> ()
   | Error ds ->
     let first =
       match ds with d :: _ -> d.Clip_diag.message | [] -> "unknown"
     in
     aerror Codes.algebra_ambiguous
       "composed mapping failed validity re-check: %s" first);
  composed

let compose_result m1 m2 = Clip_diag.guard (fun () -> compose_exn m1 m2)

let compose m1 m2 =
  match compose_result m1 m2 with
  | Ok m -> m
  | Error ds -> Clip_diag.fail_all ds

let compose_chain_result = function
  | [] -> invalid_arg "Clip_algebra.compose_chain_result: empty chain"
  | first :: rest ->
    List.fold_left
      (fun acc m -> Result.bind acc (fun a -> compose_result a m))
      (Ok first) rest

(* === Containment ====================================================== *)

module SM = Map.Make (String)

let rec subst_expr th = function
  | Term.Root s -> Some (Term.Root s)
  | Term.Var x ->
    (match SM.find_opt x th with Some y -> Some (Term.Var y) | None -> None)
  | Term.Proj (e, s) ->
    Option.map (fun e -> Term.Proj (e, s)) (subst_expr th e)

let rec subst_scalar th = function
  | Term.E e -> Option.map (fun e -> Term.E e) (subst_expr th e)
  | Term.Const a -> Some (Term.Const a)
  | Term.Fn (f, args) ->
    let args = List.map (subst_scalar th) args in
    if List.for_all Option.is_some args then
      Some (Term.Fn (f, List.map Option.get args))
    else None

let subst_assertion th = function
  | Tgd.St_eq (e, s) ->
    (match subst_expr th e, subst_scalar th s with
     | Some e, Some s -> Some (Tgd.St_eq (e, s))
     | _ -> None)
  | Tgd.Target_cond (e, op, a) ->
    Option.map (fun e -> Tgd.Target_cond (e, op, a)) (subst_expr th e)
  | Tgd.Agg (e, k, arg) ->
    (match subst_expr th e, subst_expr th arg with
     | Some e, Some arg -> Some (Tgd.Agg (e, k, arg))
     | _ -> None)

(* Does rule [ra] cover rule [rb] — a variable mapping from [ra] into
   [rb] under which [ra]'s universal part is among [rb]'s, its
   conditions are among [rb]'s, the target chains coincide and its
   assertions include [rb]'s? Backtracks over generator matches. *)
let covers (ra : Tgd.rule) (rb : Tgd.rule) =
  let rec match_chain th = function
    | [], [] -> Some th
    | (ga : Tgd.target_gen) :: ras, (gb : Tgd.target_gen) :: rbs ->
      (match subst_expr th ga.texpr with
       | Some te when te = gb.texpr ->
         let mode_ok =
           match ga.mode, gb.mode with
           | Tgd.Driven, Tgd.Driven | Tgd.Completion, Tgd.Completion -> true
           | Tgd.Grouped { keys = ka }, Tgd.Grouped { keys = kb } ->
             List.length ka = List.length kb
             && List.for_all2
                  (fun x y ->
                    match subst_scalar th x with
                    | Some x -> x = y
                    | None -> false)
                  ka kb
           | (Tgd.Driven | Tgd.Completion | Tgd.Grouped _), _ -> false
         in
         if mode_ok then match_chain (SM.add ga.tvar gb.tvar th) (ras, rbs)
         else None
       | Some _ | None -> None)
    | _, _ -> None
  in
  let check_rest th =
    match match_chain th (ra.r_chain, rb.r_chain) with
    | None -> false
    | Some th ->
      List.for_all
        (fun (c : Tgd.comparison) ->
          match subst_scalar th c.left, subst_scalar th c.right with
          | Some l, Some r ->
            List.exists
              (fun (d : Tgd.comparison) ->
                d.op = c.op && d.left = l && d.right = r)
              rb.r_cond
          | _ -> false)
        ra.r_cond
      && List.for_all
           (fun ab ->
             List.exists
               (fun aa ->
                 match subst_assertion th aa with
                 | Some aa -> aa = ab
                 | None -> false)
               ra.r_assertions)
           rb.r_assertions
  in
  let rec match_gens th = function
    | [] -> check_rest th
    | (g : Tgd.source_gen) :: rest ->
      (match subst_expr th g.sexpr with
       | None -> false
       | Some se ->
         List.exists
           (fun (h : Tgd.source_gen) ->
             se = h.sexpr && match_gens (SM.add g.svar h.svar th) rest)
           rb.r_foralls)
  in
  List.length ra.r_chain = List.length rb.r_chain
  && match_gens SM.empty ra.r_foralls

let compile_rules m =
  match Compile.to_tgd_result m with
  | Ok t -> Tgd.rules t
  | Error ds -> Clip_diag.fail_all ds

let contains_exn (a : Mapping.t) (b : Mapping.t) =
  if
    not
      (Schema.equal a.source b.source && Schema.equal a.target b.target)
  then
    aerror Codes.algebra_schema_mismatch
      "containment compares mappings over the same schemas";
  let ra = compile_rules a and rb = compile_rules b in
  List.for_all (fun r_b -> List.exists (fun r_a -> covers r_a r_b) ra) rb

let contains_result a b = Clip_diag.guard (fun () -> contains_exn a b)

let equiv_result a b =
  match contains_result a b with
  | Ok false -> Ok false
  | Ok true -> contains_result b a
  | Error _ as e -> e

let contains a b =
  match contains_result a b with
  | Ok r -> r
  | Error ds -> Clip_diag.fail_all ds

let equiv a b =
  match equiv_result a b with
  | Ok r -> r
  | Error ds -> Clip_diag.fail_all ds

(* === Fused pipelines ================================================== *)

module Pipeline = struct
  type decision = Fused of Mapping.t | Staged of Clip_diag.t list

  let plan = function
    | [] -> invalid_arg "Clip_algebra.Pipeline.plan: empty chain"
    | [ m ] -> Fused m
    | first :: rest ->
      let rec go acc = function
        | [] -> Fused acc
        | m :: tl ->
          (match compose_result acc m with
           | Ok c -> go c tl
           | Error ds -> Staged ds)
      in
      go first rest

  let decision_note = function
    | Fused _ -> "fusion: fused into one composed mapping"
    | Staged ds ->
      let reason =
        match ds with
        | d :: _ -> Printf.sprintf "%s: %s" d.Clip_diag.code d.Clip_diag.message
        | [] -> "no diagnostics"
      in
      Printf.sprintf "fusion: staged (%s)" reason

  let run_result ?ctx ?limits ?backend ?minimum_cardinality ?plan:plan_mode
      ?repr ?steps_out ?mode ?shard_bytes ?jobs ms source =
    match ms with
    | [] -> invalid_arg "Clip_algebra.Pipeline.run_result: empty chain"
    | _ ->
      (match plan ms with
       | Fused m ->
         Engine.run_result ?ctx ?limits ?backend ?minimum_cardinality
           ?plan:plan_mode ?repr ?steps_out ?mode ?shard_bytes ?jobs m source
       | Staged _ ->
         Engine.run_staged_result ?ctx ?limits ?backend ?minimum_cardinality
           ?plan:plan_mode ?repr ?steps_out ?mode ?shard_bytes ?jobs ms source)

  let run ?ctx ?limits ?backend ?minimum_cardinality ?plan ?repr ?steps_out
      ?mode ?shard_bytes ?jobs ms source =
    match
      run_result ?ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
        ?steps_out ?mode ?shard_bytes ?jobs ms source
    with
    | Ok n -> n
    | Error ds -> Clip_diag.fail_all ds
end
