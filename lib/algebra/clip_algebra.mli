(** Mapping algebra — composition, containment and fused pipelines.

    Mappings form an algebra under sequential composition: for
    [m1 : S -> I] and [m2 : I -> T] with [m1]'s target schema equal to
    [m2]'s source schema, [compose m1 m2 : S -> T] is a single mapping
    whose result on every source document equals running [m1] and then
    [m2]. Composition works by {e unfolding} the intermediate schema:
    each iteration of [m2] over an intermediate element is replaced by
    an instantiated copy of the [m1] builder chain that produces that
    element, and every read of an intermediate leaf is substituted with
    the [m1] value expression that populates it.

    Not every pair composes. Composition is restricted to a
    {e composable fragment} and rejects the rest with a stable
    [CLIP-ALG-*] diagnostic:

    - [CLIP-ALG-001] — [m1]'s target schema is not [m2]'s source schema;
    - [CLIP-ALG-002] — a grouping (Skolem) producer in [m1] would have
      to be unfolded, losing its memoisation;
    - [CLIP-ALG-003] — an intermediate element has no unique producer,
      or the unfolded iterations would alias (overlapping builder
      chains, self-join hijacking of an anchor);
    - [CLIP-ALG-004] — an intermediate leaf is read but not populated,
      or its value expression is not substitutable at the Clip level;
    - [CLIP-ALG-005] — unfolding would change multiplicity (e.g. [m2]
      iterates an intermediate element no builder produces).

    Rejection is not failure: {!Pipeline} degrades to staged execution
    ({!Clip_core.Engine.run_staged_result}), which is always available
    and byte-identical. The differential test harness
    ([test/test_algebra.ml]) holds composition to exactly that oracle:
    compose-then-run must equal run-then-run on every accepted pair. *)

module Mapping = Clip_core.Mapping

(** {1 Composition} *)

(** [compose_result m1 m2] — the composed mapping, or the [CLIP-ALG-*]
    diagnostics explaining why the pair is outside the composable
    fragment. Both mappings must be valid ([Compile.to_tgd_result]
    succeeds); an invalid operand is reported with its own validity /
    compile diagnostics. *)
val compose_result :
  Mapping.t -> Mapping.t -> (Mapping.t, Clip_diag.t list) result

(** [compose m1 m2] — {!compose_result}, raising {!Clip_diag.Fail} on
    rejection. *)
val compose : Mapping.t -> Mapping.t -> Mapping.t

(** [compose_chain_result ms] — fold {!compose_result} over a non-empty
    chain, left to right.
    @raise Invalid_argument on an empty chain. *)
val compose_chain_result :
  Mapping.t list -> (Mapping.t, Clip_diag.t list) result

(** {1 Containment and equivalence}

    Logical comparison of two mappings over the same source and target
    schemas, via a homomorphism check between their flattened tgd rules
    ({!Clip_tgd.Tgd.rules}). [contains a b] holds when every rule of
    [b] is covered by some rule of [a] — a variable mapping under which
    [a]'s premises are among [b]'s, the target chains agree and [a]
    asserts at least [b]'s values — so [a] produces everything [b]
    produces. The check is {e sound but incomplete}: [true] is a
    guarantee, [false] may be a false negative (rule flattening forgets
    sharing of target elements between sibling submappings, and no
    condition implication beyond syntactic matching is attempted). *)

(** [contains_result a b] — [Ok true] when [a] provably contains [b].
    [Error] when either mapping fails to compile or the schemas
    differ. *)
val contains_result : Mapping.t -> Mapping.t -> (bool, Clip_diag.t list) result

(** [equiv_result a b] — containment both ways. *)
val equiv_result : Mapping.t -> Mapping.t -> (bool, Clip_diag.t list) result

(** [contains a b] — {!contains_result}, raising {!Clip_diag.Fail}. *)
val contains : Mapping.t -> Mapping.t -> bool

(** [equiv a b] — {!equiv_result}, raising {!Clip_diag.Fail}. *)
val equiv : Mapping.t -> Mapping.t -> bool

(** {1 Fused pipelines} *)

module Pipeline : sig
  (** How a chain of mappings will execute: fused into one composed
      mapping when the whole chain composes, staged otherwise (with the
      diagnostics of the first rejected composition as the reason). *)
  type decision =
    | Fused of Mapping.t
    | Staged of Clip_diag.t list

  (** [plan ms] — compose-first planning over a non-empty chain.
      @raise Invalid_argument on an empty chain. *)
  val plan : Mapping.t list -> decision

  (** One EXPLAIN-able line, e.g.
      ["fusion: fused into one composed mapping"] or
      ["fusion: staged (CLIP-ALG-004: ...)"]. *)
  val decision_note : decision -> string

  (** [run_result ms source] — execute the chain over [source]: the
      fused mapping through {!Clip_core.Engine.run_result} when the
      chain composes, otherwise stage by stage through
      {!Clip_core.Engine.run_staged_result}. Both paths share the
      execution context's session cache, counters, tracer, deadline and
      cancellation hooks.
      @raise Invalid_argument on an empty chain. *)
  val run_result :
    ?ctx:Clip_run.t ->
    ?limits:Clip_diag.Limits.t ->
    ?backend:Clip_core.Engine.backend ->
    ?minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    ?mode:Clip_core.Engine.mode ->
    ?shard_bytes:int ->
    ?jobs:int ->
    Mapping.t list ->
    Clip_xml.Node.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result

  (** [run ms source] — {!run_result}, raising {!Clip_diag.Fail}. *)
  val run :
    ?ctx:Clip_run.t ->
    ?limits:Clip_diag.Limits.t ->
    ?backend:Clip_core.Engine.backend ->
    ?minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    ?mode:Clip_core.Engine.mode ->
    ?shard_bytes:int ->
    ?jobs:int ->
    Mapping.t list ->
    Clip_xml.Node.t ->
    Clip_xml.Node.t
end
