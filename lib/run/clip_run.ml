(* Explicit execution contexts.

   A context owns every piece of run-scoped mutable state that used to
   live in ambient globals: the observability counter sink, the trace
   tracer, and a memo slot for engine-level caches (the one-shot
   session memo). Threading the context as a value is what makes the
   stack domain-safe — two contexts never share state, so two domains
   evaluating with their own contexts cannot race or poison each
   other's caches.

   The memo slot is an extensible variant so this library does not
   depend on the engine's session type; {!Clip_core.Engine} declares
   its own constructor and stores its weak session memo here.

   [ambient] is the one deliberate compatibility shim: a per-domain
   default context (held in domain-local storage) used by entry points
   called without an explicit context — the CLI and legacy callers.
   Domain-local means even the shim cannot race across domains. *)

(* --- Cooperative cancellation ----------------------------------------- *)

module Cancel = struct
  (* An [Atomic] so the whole point of the flag works: one domain (a
     signal handler, a server's admission controller) sets it while
     the domains evaluating under it poll at their tick sites. *)
  type t = bool Atomic.t

  let create () = Atomic.make false
  let set t = Atomic.set t true
  let is_set t = Atomic.get t
end

(* --- Deadlines and the control view ------------------------------------ *)

type deadline = { dnow : unit -> float; duntil : float }

let deadline ~now ~until = { dnow = now; duntil = until }
let deadline_after ~now ~seconds = { dnow = now; duntil = now () +. seconds }

module Control = struct
  (* The read-only view the evaluators poll at their CLIP-LIM-004 tick
     sites. [none] is a shared constant with no deadline and a flag
     nobody holds, so the common uncontrolled run checks one physical
     equality and moves on. *)
  type t = { deadline : deadline option; cancel : Cancel.t }

  let none = { deadline = None; cancel = Atomic.make false }
  let make ?deadline ?(cancel = Cancel.create ()) () = { deadline; cancel }
  let is_none t = t == none

  let cancelled t = Cancel.is_set t.cancel

  let expired t =
    match t.deadline with None -> false | Some d -> d.dnow () >= d.duntil

  (* Cancellation is checked first: an explicit cancel is more
     specific than a deadline that may also have lapsed by the time
     the evaluator polls. *)
  let check t =
    if Cancel.is_set t.cancel then
      Some
        (Clip_diag.error ~code:Clip_diag.Codes.cancelled
           "evaluation cancelled cooperatively")
    else
      match t.deadline with
      | Some d when d.dnow () >= d.duntil ->
        Some
          (Clip_diag.error ~code:Clip_diag.Codes.limit_deadline
             ~hints:
               [
                 "raise the deadline (e.g. clip run --timeout-ms) if the \
                  evaluation is expected to take this long";
               ]
             "evaluation exceeded its deadline")
      | Some _ | None -> None
end

type memo = ..

type t = {
  counters : Clip_obs.Counters.t option;
  tracer : Clip_obs.Trace.t option;
  control : Control.t;
  mutable memo : memo option;
}

(* Every context owns a fresh control (unless handed a shared cancel
   flag): [cancel ctx] must never mutate the shared [Control.none]
   constant, which is only the default for evaluator entry points
   called without any control at all. *)
let create ?counters ?tracer ?deadline ?cancel () =
  { counters; tracer; control = Control.make ?deadline ?cancel (); memo = None }

let counters ctx = ctx.counters
let tracer ctx = ctx.tracer
let span ctx name f = Clip_obs.Trace.span ctx.tracer name f
let control ctx = ctx.control
let cancel ctx = Cancel.set ctx.control.Control.cancel
let cancelled ctx = Control.cancelled ctx.control
let memo ctx = ctx.memo
let set_memo ctx m = ctx.memo <- Some m

let ambient_key = Domain.DLS.new_key (fun () -> create ())
let ambient () = Domain.DLS.get ambient_key
