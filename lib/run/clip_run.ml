(* Explicit execution contexts.

   A context owns every piece of run-scoped mutable state that used to
   live in ambient globals: the observability counter sink, the trace
   tracer, and a memo slot for engine-level caches (the one-shot
   session memo). Threading the context as a value is what makes the
   stack domain-safe — two contexts never share state, so two domains
   evaluating with their own contexts cannot race or poison each
   other's caches.

   The memo slot is an extensible variant so this library does not
   depend on the engine's session type; {!Clip_core.Engine} declares
   its own constructor and stores its weak session memo here.

   [ambient] is the one deliberate compatibility shim: a per-domain
   default context (held in domain-local storage) used by entry points
   called without an explicit context — the CLI and legacy callers.
   Domain-local means even the shim cannot race across domains. *)

type memo = ..

type t = {
  counters : Clip_obs.Counters.t option;
  tracer : Clip_obs.Trace.t option;
  mutable memo : memo option;
}

let create ?counters ?tracer () = { counters; tracer; memo = None }

let counters ctx = ctx.counters
let tracer ctx = ctx.tracer
let span ctx name f = Clip_obs.Trace.span ctx.tracer name f
let memo ctx = ctx.memo
let set_memo ctx m = ctx.memo <- Some m

let ambient_key = Domain.DLS.new_key (fun () -> create ())
let ambient () = Domain.DLS.get ambient_key
