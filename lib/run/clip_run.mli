(** Explicit execution contexts.

    A context carries every piece of run-scoped mutable state the
    engine stack needs — the {!Clip_obs} counter sink, the trace
    tracer, and a memo slot for engine-level caches — as one explicit
    value. Nothing in the evaluation stack reaches for ambient
    globals: state is owned by whoever created the context, which is
    what makes concurrent evaluation ({!Clip_par}) sound — contexts on
    different domains share nothing.

    {b Ownership rules.} A context (and any counter sink or tracer
    inside it) belongs to a single domain at a time; create one
    context per concurrent evaluation. Cross-domain aggregation is by
    {e merging}, not sharing: give each worker its own sink and fold
    the results with {!Clip_obs.Counters.add}. *)

(** Extensible engine-cache slot: layers above declare their own
    constructor (e.g. the engine's weak one-shot session memo) so this
    library stays independent of their types. *)
type memo = ..

type t

(** [create ?counters ?tracer ()] — a fresh context. Omitted counters
    or tracer mean that facility is off (zero-cost increments). *)
val create :
  ?counters:Clip_obs.Counters.t -> ?tracer:Clip_obs.Trace.t -> unit -> t

(** The context's counter sink (to pass to [?obs] parameters). *)
val counters : t -> Clip_obs.Counters.t option

val tracer : t -> Clip_obs.Trace.t option

(** [span ctx name f] — time [f] as a span of the context's tracer;
    calls [f] directly when the context has none. *)
val span : t -> string -> (unit -> 'a) -> 'a

val memo : t -> memo option
val set_memo : t -> memo -> unit

(** The per-domain default context — the single deliberate ambient
    shim, for entry points called without an explicit context (the CLI
    boundary, legacy callers). Held in domain-local storage, so even
    this shim is domain-safe: each domain gets its own. Its counters
    and tracer are off; its memo slot gives no-context callers the
    cross-run session reuse they had before contexts existed. *)
val ambient : unit -> t
