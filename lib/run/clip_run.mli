(** Explicit execution contexts.

    A context carries every piece of run-scoped mutable state the
    engine stack needs — the {!Clip_obs} counter sink, the trace
    tracer, the fault-tolerance {!Control} (deadline + cooperative
    cancellation), and a memo slot for engine-level caches — as one
    explicit value. Nothing in the evaluation stack reaches for
    ambient globals: state is owned by whoever created the context,
    which is what makes concurrent evaluation ({!Clip_par}) sound —
    contexts on different domains share nothing.

    {b Ownership rules.} A context (and any counter sink or tracer
    inside it) belongs to a single domain at a time; create one
    context per concurrent evaluation. Cross-domain aggregation is by
    {e merging}, not sharing: give each worker its own sink and fold
    the results with {!Clip_obs.Counters.add}. The one deliberately
    cross-domain piece is the {!Cancel} flag: it is an atomic set-only
    bit, made to be shared (a signal handler or admission controller
    on one domain cancelling evaluations on others). *)

(** {1 Cooperative cancellation} *)

(** A set-once cancellation flag, safe to share across domains: one
    holder {!Cancel.set}s it, every evaluation polling it (at the
    CLIP-LIM-004 tick sites) stops with a [CLIP-LIM-006] diagnostic at
    its next poll. Cancellation is cooperative — nothing is killed;
    the evaluator unwinds through the ordinary [*_result] error path,
    leaving sessions and caches in a reusable state. *)
module Cancel : sig
  type t

  val create : unit -> t
  val set : t -> unit
  val is_set : t -> bool
end

(** {1 Deadlines} *)

(** A wall-clock bound on one evaluation, against an {e injected}
    clock — pass a monotonic source where available ([Unix.gettimeofday]
    at the CLI boundary; a counter in tests, which makes deadline
    expiry deterministic). Expired means [now () >= until]. *)
type deadline = { dnow : unit -> float; duntil : float }

val deadline : now:(unit -> float) -> until:float -> deadline

(** [deadline_after ~now ~seconds] — a deadline [seconds] from now. *)
val deadline_after : now:(unit -> float) -> seconds:float -> deadline

(** {1 Control: the evaluators' poll view} *)

(** What the evaluators poll at their tick sites: an optional deadline
    plus a cancellation flag. Deadline expiry surfaces as
    [CLIP-LIM-005], cancellation as [CLIP-LIM-006] — both through the
    usual exception-free [*_result] APIs, like every other
    [CLIP-LIM-*] guard. *)
module Control : sig
  type t

  (** The inert control: no deadline, a flag nobody holds. This is the
      default for evaluator entry points called without a context;
      {!is_none} lets their tick sites skip the poll entirely. *)
  val none : t

  val make : ?deadline:deadline -> ?cancel:Cancel.t -> unit -> t

  (** Physical-equality test against {!none} (the poll fast path). *)
  val is_none : t -> bool

  val cancelled : t -> bool
  val expired : t -> bool

  (** [check t] — [Some diag] when cancelled ([CLIP-LIM-006], checked
      first) or past the deadline ([CLIP-LIM-005]); [None] otherwise.
      Reads the clock, so callers amortise it (the evaluators poll
      every 64 ticks). *)
  val check : t -> Clip_diag.t option
end

(** Extensible engine-cache slot: layers above declare their own
    constructor (e.g. the engine's weak one-shot session memo) so this
    library stays independent of their types. *)
type memo = ..

type t

(** [create ?counters ?tracer ?deadline ?cancel ()] — a fresh context.
    Omitted counters or tracer mean that facility is off (zero-cost
    increments). The context always owns a fresh {!Control} built from
    [?deadline]/[?cancel]; pass a shared {!Cancel.t} to let an outside
    holder cancel this context's evaluations. *)
val create :
  ?counters:Clip_obs.Counters.t ->
  ?tracer:Clip_obs.Trace.t ->
  ?deadline:deadline ->
  ?cancel:Cancel.t ->
  unit ->
  t

(** The context's counter sink (to pass to [?obs] parameters). *)
val counters : t -> Clip_obs.Counters.t option

val tracer : t -> Clip_obs.Trace.t option

(** [span ctx name f] — time [f] as a span of the context's tracer;
    calls [f] directly when the context has none. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** The context's control view (to pass to [?ctl] parameters). *)
val control : t -> Control.t

(** [cancel ctx] — set the context's cancellation flag: evaluations
    running under it report [CLIP-LIM-006] at their next poll. *)
val cancel : t -> unit

val cancelled : t -> bool
val memo : t -> memo option
val set_memo : t -> memo -> unit

(** The per-domain default context — the single deliberate ambient
    shim, for entry points called without an explicit context (the CLI
    boundary, legacy callers). Held in domain-local storage, so even
    this shim is domain-safe: each domain gets its own. Its counters
    and tracer are off; its memo slot gives no-context callers the
    cross-run session reuse they had before contexts existed. *)
val ambient : unit -> t
