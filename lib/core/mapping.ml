module Path = Clip_schema.Path
module Tgd = Clip_tgd.Tgd

type variable = string

type operand =
  | O_path of variable * Path.step list
  | O_const of Clip_xml.Atom.t

type predicate = { p_left : operand; p_op : Tgd.cmp_op; p_right : operand }

type input = { in_source : Path.t; in_var : variable option }

type group_key = variable * Path.step list

type build_node = {
  bn_id : string;
  bn_inputs : input list;
  bn_output : Path.t option;
  bn_cond : predicate list;
  bn_group_by : group_key list;
  bn_children : build_node list;
}

type value_fn =
  | Identity
  | Constant of Clip_xml.Atom.t
  | Scalar of string
  | Aggregate of Tgd.agg_kind

type value_mapping = {
  vm_sources : Path.t list;
  vm_target : Path.t;
  vm_fn : value_fn;
}

type t = {
  source : Clip_schema.Schema.t;
  target : Clip_schema.Schema.t;
  roots : build_node list;
  values : value_mapping list;
}

let input ?var in_source = { in_source; in_var = var }

(* Fresh-name supply for anonymous builder nodes. Atomic so mappings
   can be constructed from any domain (ids only need to be unique). *)
let node_counter = Atomic.make 0

let node ?id ?output ?(cond = []) ?(group_by = []) ?(children = []) inputs =
  let bn_id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "n%d" (1 + Atomic.fetch_and_add node_counter 1)
  in
  {
    bn_id;
    bn_inputs = inputs;
    bn_output = output;
    bn_cond = cond;
    bn_group_by = group_by;
    bn_children = children;
  }

let value ?(fn = Identity) vm_sources vm_target =
  { vm_sources; vm_target; vm_fn = fn }

let make ~source ~target ?(roots = []) values = { source; target; roots; values }

let all_nodes m =
  let rec go acc n = List.fold_left go (n :: acc) n.bn_children in
  List.rev (List.fold_left go [] m.roots)

let node_by_id m id =
  List.find_opt (fun n -> String.equal n.bn_id id) (all_nodes m)

let node_variables n = List.filter_map (fun i -> i.in_var) n.bn_inputs

let builder_count m =
  List.fold_left
    (fun acc n ->
      acc + List.length n.bn_inputs
      + (match n.bn_output with Some _ -> 1 | None -> 0))
    0 (all_nodes m)

let operand_to_string = function
  | O_path (v, steps) ->
    String.concat "." (("$" ^ v) :: List.map Path.step_to_string steps)
  | O_const a ->
    (match a with
     | Clip_xml.Atom.String s -> Printf.sprintf "%S" s
     | a -> Clip_xml.Atom.to_string a)

let predicate_to_string p =
  Printf.sprintf "%s %s %s" (operand_to_string p.p_left)
    (Tgd.cmp_op_to_string p.p_op)
    (operand_to_string p.p_right)

let value_fn_to_string = function
  | Identity -> "identity"
  | Constant a -> Printf.sprintf "constant %s" (Clip_xml.Atom.to_string a)
  | Scalar name -> name
  | Aggregate kind -> Printf.sprintf "<<%s>>" (Tgd.agg_kind_to_string kind)

let pp fmt m =
  let rec pp_node ind (n : build_node) =
    let pad = String.make ind ' ' in
    let inputs =
      String.concat ", "
        (List.map
           (fun i ->
             match i.in_var with
             | Some v -> Printf.sprintf "$%s: %s" v (Path.to_string i.in_source)
             | None -> Path.to_string i.in_source)
           n.bn_inputs)
    in
    let output =
      match n.bn_output with
      | Some p -> " -> " ^ Path.to_string p
      | None -> ""
    in
    let cond =
      match n.bn_cond with
      | [] -> ""
      | cs -> " when " ^ String.concat ", " (List.map predicate_to_string cs)
    in
    let group =
      match n.bn_group_by with
      | [] -> ""
      | ks ->
        " group-by "
        ^ String.concat ", "
            (List.map
               (fun (v, steps) ->
                 String.concat "." (("$" ^ v) :: List.map Path.step_to_string steps))
               ks)
    in
    Format.fprintf fmt "%s%s: {%s}%s%s%s\n" pad n.bn_id inputs output group cond;
    List.iter (pp_node (ind + 2)) n.bn_children
  in
  Format.fprintf fmt "mapping %s => %s\n" m.source.root.name m.target.root.name;
  List.iter (pp_node 2) m.roots;
  List.iter
    (fun vm ->
      Format.fprintf fmt "  value [%s] -> %s (%s)\n"
        (String.concat ", " (List.map Path.to_string vm.vm_sources))
        (Path.to_string vm.vm_target)
        (value_fn_to_string vm.vm_fn))
    m.values
