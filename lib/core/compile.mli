(** Compilation of Clip mappings into nested tgds (Sec. IV).

    Each build node becomes one (sub)mapping:
    - every incoming builder yields a chain of source generators — the
      input element rooted at the deepest enclosing builder variable
      whose element is an ancestor, with one implicit generator per
      repeating element crossed on the way (this is how Fig. 3's lone
      [regEmp] builder compiles to [∀ d ∈ source.dept, r ∈ d.regEmp]);
      when the input element {e is} an enclosing binding the generator
      ranges over that single member (Fig. 7's [p2 ∈ p]);
    - the node label's conditions become the [C1] conjuncts;
    - the outgoing builder yields the principal target generator
      ([Driven], or [Grouped] with the node's grouping attributes),
      preceded by [Completion] generators for repeating target elements
      crossed between the context's output and this node's output (the
      minimum-cardinality [department] of Fig. 3's tgd);
    - each value mapping becomes a [C2] assertion in the mapping of its
      driver node, its sources rewritten against their anchor
      variables; aggregates become function equalities whose context of
      aggregation is the anchor variable (Sec. IV-B);
    - context arcs become submapping nesting.

    Aggregate value mappings with no driver attach to the synthetic
    top-level mapping (whole-document scope, Sec. III-B). *)

exception Invalid of Validity.issue list

(** [issue_to_diag i] — a {!Validity.issue} as a [CLIP-VAL-<code>]
    diagnostic (severity preserved). *)
val issue_to_diag : Validity.issue -> Clip_diag.t

(** [to_tgd_result m] compiles a mapping. Validity errors are reported
    as [CLIP-VAL-*] diagnostics (warnings included when any error is
    present); compile-time failures as [CLIP-CMP-*] diagnostics. *)
val to_tgd_result : Mapping.t -> (Clip_tgd.Tgd.t, Clip_diag.t list) result

(** [to_tgd m] compiles a valid mapping.
    @raise Invalid when {!Validity.check} reports errors. *)
val to_tgd : Mapping.t -> Clip_tgd.Tgd.t

(** [to_tgd_unchecked_result m] compiles without the validity gate
    (used to show what an invalid mapping would mean); failures are
    [CLIP-CMP-*] diagnostics. *)
val to_tgd_unchecked_result :
  Mapping.t -> (Clip_tgd.Tgd.t, Clip_diag.t list) result

(** [to_tgd_unchecked m] compiles without the validity gate. May raise
    [Failure] on mappings that cannot be compiled at all. *)
val to_tgd_unchecked : Mapping.t -> Clip_tgd.Tgd.t
