module Path = Clip_schema.Path
module Schema = Clip_schema.Schema
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term

exception Invalid of Validity.issue list

(* Compile-time errors carry a stable CLIP-CMP-* code; the legacy
   [to_tgd]/[to_tgd_unchecked] entry points re-raise them as [Failure]
   (their historical behaviour). *)
let cerror code fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code ("compile: " ^ s)))
    fmt

let issue_to_diag (i : Validity.issue) =
  let severity =
    match i.severity with
    | Validity.Error -> Clip_diag.Error
    | Validity.Warning -> Clip_diag.Warning
  in
  Clip_diag.make ~severity ~code:(Clip_diag.Codes.validity i.code) i.message

(* A source binding in scope: the variable (None = the schema root
   itself) and the element path it ranges over. *)
type sbinding = { sb_var : string option; sb_path : Path.t }

type ctx = {
  sbindings : sbinding list; (* outermost first *)
  tvar : string option; (* innermost principal target variable *)
  tpath : Path.t; (* its target element path (root path when [tvar] is None) *)
}

type state = {
  mutable used : string list; (* variable names already taken *)
  source : Schema.t;
  target : Schema.t;
}

let fresh st hint =
  let base = if String.equal hint "" then "x" else hint in
  let rec try_name i =
    let name = if i = 0 then base else Printf.sprintf "%s%d" base (i + 1) in
    if List.exists (String.equal name) st.used then try_name (i + 1)
    else begin
      st.used <- name :: st.used;
      name
    end
  in
  try_name 0

let hint_of_path (p : Path.t) =
  match Path.last_step p with
  | Some (Path.Child name) when String.length name > 0 ->
    String.make 1 (Char.lowercase_ascii name.[0])
  | Some (Path.Child _ | Path.Attr _ | Path.Value) | None -> "x"

let target_hint (p : Path.t) =
  match Path.last_step p with
  | Some (Path.Child name) when String.length name > 0 ->
    String.make 1 (Char.lowercase_ascii name.[0]) ^ "'"
  | Some (Path.Child _ | Path.Attr _ | Path.Value) | None -> "y'"

(* The expression denoting [p] from binding [b]. *)
let expr_from (b : sbinding) (p : Path.t) =
  match b.sb_var with
  | None -> Some (Term.of_path p)
  | Some var -> Term.reroot ~var ~prefix:b.sb_path p

(* Deepest binding whose path prefixes [p] and satisfies [ok]. *)
let deepest_binding bindings ~ok p =
  List.fold_left
    (fun best b ->
      if Path.is_prefix b.sb_path p && ok b then
        match best with
        | Some prev
          when List.length prev.sb_path.Path.steps
               >= List.length b.sb_path.Path.steps ->
          best
        | Some _ | None -> Some b
      else best)
    None bindings

let operand_to_scalar st bindings (o : Mapping.operand) =
  match o with
  | Mapping.O_const a -> Term.Const a
  | Mapping.O_path (v, steps) ->
    if
      not
        (List.exists
           (fun b -> match b.sb_var with Some x -> String.equal x v | None -> false)
           bindings)
    then cerror Clip_diag.Codes.compile_unbound_var "unbound variable $%s" v;
    ignore st;
    Term.E (Term.proj (Term.Var v) steps)

(* Source generators for one incoming builder. Anchors only against the
   enclosing context's bindings (sibling inputs iterate independently —
   the "overall Cartesian product" reading of Sec. II-A), then emits one
   generator per repeating element crossed, ending with the input's own
   variable. Returns the generators and the bindings they introduce. *)
let compile_input st ~ctx_bindings (i : Mapping.input) =
  let root_binding = { sb_var = None; sb_path = Schema.root_path st.source } in
  let anchor =
    match deepest_binding (root_binding :: ctx_bindings) ~ok:(fun _ -> true) i.in_source with
    | Some b -> b
    | None ->
      cerror Clip_diag.Codes.compile_unanchored_input
        "input %s is not under the source root"
        (Path.to_string i.in_source)
  in
  let reps =
    Schema.repeating_strictly_between st.source ~above:anchor.sb_path
      ~below:i.in_source
  in
  let chain =
    if List.exists (Path.equal i.in_source) reps then reps else reps @ [ i.in_source ]
  in
  let n = List.length chain in
  let _, gens, bindings =
    List.fold_left
      (fun (prev, gens, bindings) p ->
        let is_last = List.length gens = n - 1 in
        let var =
          match i.in_var, is_last with
          | Some v, true ->
            st.used <- v :: st.used;
            v
          | (Some _ | None), _ -> fresh st (hint_of_path p)
        in
        let sexpr =
          match expr_from prev p with
          | Some e -> e
          | None -> assert false (* [prev] prefixes [p] along the chain *)
        in
        let b = { sb_var = Some var; sb_path = p } in
        (b, Tgd.source_gen var sexpr :: gens, b :: bindings))
      (anchor, [], []) chain
  in
  (List.rev gens, List.rev bindings)

(* Rewrite a value-mapping source leaf against its anchor binding. *)
let source_leaf_expr st bindings ~require_unrepeated leaf =
  let root_binding = { sb_var = None; sb_path = Schema.root_path st.source } in
  let ok b =
    (not require_unrepeated)
    || Schema.repeating_strictly_between st.source ~above:b.sb_path ~below:leaf = []
  in
  match
    deepest_binding (root_binding :: bindings) ~ok (Path.element_of leaf)
  with
  | Some b ->
    (match expr_from b leaf with
     | Some e -> e
     | None -> assert false)
  | None ->
    cerror Clip_diag.Codes.compile_unanchored_leaf
      "source %s has no anchor binding" (Path.to_string leaf)

let compile_value_mapping st bindings (vm : Mapping.value_mapping) ~tvar ~tpath =
  let target_expr =
    match Term.reroot ~var:tvar ~prefix:tpath vm.vm_target with
    | Some e -> e
    | None ->
      cerror Clip_diag.Codes.compile_bad_target
        "value-mapping target %s is not under %s"
        (Path.to_string vm.vm_target) (Path.to_string tpath)
  in
  match vm.vm_fn with
  | Mapping.Identity ->
    (match vm.vm_sources with
     | [ src ] ->
       Tgd.St_eq
         (target_expr, Term.E (source_leaf_expr st bindings ~require_unrepeated:true src))
     | _ ->
       cerror Clip_diag.Codes.compile_identity_arity
         "identity value mapping needs exactly one source")
  | Mapping.Constant a -> Tgd.St_eq (target_expr, Term.Const a)
  | Mapping.Scalar name ->
    let args =
      List.map
        (fun src -> Term.E (source_leaf_expr st bindings ~require_unrepeated:true src))
        vm.vm_sources
    in
    Tgd.St_eq (target_expr, Term.Fn (name, args))
  | Mapping.Aggregate kind ->
    (match vm.vm_sources with
     | [ src ] ->
       Tgd.Agg
         (target_expr, kind, source_leaf_expr st bindings ~require_unrepeated:false src)
     | _ ->
       cerror Clip_diag.Codes.compile_aggregate_arity
         "aggregate value mapping needs exactly one source")

(* Assertion for a driverless aggregate, scoped to the whole document. *)
let compile_root_aggregate (vm : Mapping.value_mapping) =
  match vm.vm_fn, vm.vm_sources with
  | Mapping.Aggregate kind, [ src ] ->
    Tgd.Agg (Term.of_path vm.vm_target, kind, Term.of_path src)
  | _ ->
    cerror Clip_diag.Codes.compile_no_driver "only aggregates may lack a driver"

(* CPT roots whose output nests strictly below another node's output
   compile as {e uncorrelated} submappings of that node: the paper's
   no-context-arc semantics ("all employees appear, repeated, within
   all departments"). [adopted] maps adopter node ids to such roots. *)
let adoption_map (m : Mapping.t) =
  let nodes = Mapping.all_nodes m in
  let rec subtree (n : Mapping.build_node) =
    n :: List.concat_map subtree n.bn_children
  in
  List.filter_map
    (fun (r : Mapping.build_node) ->
      match r.bn_output with
      | None -> None
      | Some out ->
        let in_subtree = subtree r in
        let candidates =
          List.filter
            (fun (n : Mapping.build_node) ->
              (not (List.memq n in_subtree))
              &&
              match n.bn_output with
              | Some o -> Path.is_prefix o out && not (Path.equal o out)
              | None -> false)
            nodes
        in
        let deepest =
          List.fold_left
            (fun best (n : Mapping.build_node) ->
              match best with
              | Some (b : Mapping.build_node) ->
                let depth x =
                  List.length (Option.get x.Mapping.bn_output).Path.steps
                in
                if depth n > depth b then Some n else best
              | None -> Some n)
            None candidates
        in
        (match deepest with
         | Some adopter -> Some (adopter.bn_id, r)
         | None -> None))
    m.roots

let rec compile_node st ctx ~vm_driver ~adopted (n : Mapping.build_node) : Tgd.t =
  (* 1. Source generators from the incoming builders. *)
  let gen_lists =
    List.map (compile_input st ~ctx_bindings:ctx.sbindings) n.bn_inputs
  in
  let foralls = List.concat_map fst gen_lists in
  let own_bindings = List.concat_map snd gen_lists in
  let bindings = ctx.sbindings @ own_bindings in
  (* 2. Filtering conditions. *)
  let cond =
    List.map
      (fun (p : Mapping.predicate) ->
        Tgd.cmp (operand_to_scalar st bindings p.p_left) p.p_op
          (operand_to_scalar st bindings p.p_right))
      n.bn_cond
  in
  (* 3. Target generators: completion wrappers for repeating target
     elements crossed on the way, then the principal generator. *)
  let exists, inner_tvar, inner_tpath =
    match n.bn_output with
    | None -> ([], ctx.tvar, ctx.tpath)
    | Some out ->
      let prefixes = Path.element_prefixes out in
      let intermediates =
        List.filter
          (fun p ->
            Path.is_prefix ctx.tpath p
            && (not (Path.equal ctx.tpath p))
            && (not (Path.equal out p))
            && Schema.is_repeating st.target p)
          prefixes
      in
      let completions, (tvar, tpath) =
        List.fold_left
          (fun (acc, (tvar, tpath)) p ->
            let texpr =
              match tvar with
              | None -> Term.of_path p
              | Some var ->
                (match Term.reroot ~var ~prefix:tpath p with
                 | Some e -> e
                 | None -> assert false)
            in
            let var = fresh st (target_hint p) in
            (Tgd.completion var texpr :: acc, (Some var, p)))
          ([], (ctx.tvar, ctx.tpath))
          intermediates
      in
      let completions = List.rev completions in
      let texpr =
        match tvar with
        | None -> Term.of_path out
        | Some var ->
          (match Term.reroot ~var ~prefix:tpath out with
           | Some e -> e
           | None ->
             cerror Clip_diag.Codes.compile_bad_nesting
               "output %s is not nested under context output %s"
               (Path.to_string out) (Path.to_string tpath))
      in
      let pvar = fresh st (target_hint out) in
      let principal =
        match n.bn_group_by with
        | [] -> Tgd.driven pvar texpr
        | keys ->
          let keys =
            List.map
              (fun ((v, steps) : Mapping.group_key) ->
                Term.E (Term.proj (Term.Var v) steps))
              keys
          in
          Tgd.grouped pvar texpr ~keys
      in
      (completions @ [ principal ], Some pvar, out)
  in
  (* 4. Value mappings driven by this node. *)
  let assertions =
    match inner_tvar, n.bn_output with
    | Some tvar, Some _ ->
      List.filter_map
        (fun (vm, driver) ->
          if driver == n then
            Some (compile_value_mapping st bindings vm ~tvar ~tpath:inner_tpath)
          else None)
        vm_driver
    | _ -> []
  in
  (* 5. Context arcs become submappings; adopted roots become
     uncorrelated submappings (fresh source scope, shared target). *)
  let child_ctx = { sbindings = bindings; tvar = inner_tvar; tpath = inner_tpath } in
  let children =
    List.map (compile_node st child_ctx ~vm_driver ~adopted) n.bn_children
  in
  let adoptees =
    List.filter_map
      (fun (id, r) -> if String.equal id n.bn_id then Some r else None)
      adopted
  in
  let adopted_children =
    List.map
      (fun r ->
        let ctx = { sbindings = []; tvar = inner_tvar; tpath = inner_tpath } in
        compile_node st ctx ~vm_driver ~adopted r)
      adoptees
  in
  Tgd.make ~foralls ~cond ~exists ~assertions
    ~children:(children @ adopted_children) ()

let compile_unchecked (m : Mapping.t) =
  let st =
    {
      used =
        List.concat_map Mapping.node_variables (Mapping.all_nodes m);
      source = m.source;
      target = m.target;
    }
  in
  let vm_driver =
    List.filter_map
      (fun vm ->
        match Validity.driver_of m vm with
        | Some d -> Some (vm, d)
        | None ->
          (match vm.Mapping.vm_fn with
           | Mapping.Aggregate _ -> None (* whole-document scope *)
           | Mapping.Identity | Mapping.Constant _ | Mapping.Scalar _ ->
             cerror Clip_diag.Codes.compile_no_driver
               "value mapping to %s has no driver builder"
               (Path.to_string vm.Mapping.vm_target)))
      m.values
  in
  let root_aggs =
    List.filter
      (fun (vm : Mapping.value_mapping) ->
        (match vm.vm_fn with Mapping.Aggregate _ -> true | _ -> false)
        && Option.is_none (Validity.driver_of m vm))
      m.values
  in
  let ctx =
    {
      sbindings = [];
      tvar = None;
      tpath = Schema.root_path m.target;
    }
  in
  let adopted = adoption_map m in
  let adopted_roots = List.map snd adopted in
  let top_roots =
    List.filter (fun r -> not (List.memq r adopted_roots)) m.roots
  in
  let children =
    List.map (compile_node st ctx ~vm_driver ~adopted) top_roots
  in
  let assertions = List.map compile_root_aggregate root_aggs in
  match children, assertions with
  | [ only ], [] -> only
  | children, assertions -> Tgd.make ~assertions ~children ()

let to_tgd_unchecked_result m = Clip_diag.guard (fun () -> compile_unchecked m)

let to_tgd_unchecked m =
  match to_tgd_unchecked_result m with
  | Ok t -> t
  | Error ds ->
    let d = match ds with d :: _ -> d | [] -> assert false in
    failwith d.Clip_diag.message

let to_tgd_result m =
  let issues = Validity.check m in
  if List.exists (fun (i : Validity.issue) -> i.severity = Validity.Error) issues
  then Error (List.map issue_to_diag issues)
  else to_tgd_unchecked_result m

let to_tgd m =
  let issues = Validity.check m in
  if List.exists (fun (i : Validity.issue) -> i.severity = Validity.Error) issues then
    raise (Invalid issues);
  to_tgd_unchecked m
