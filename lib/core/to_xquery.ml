module Path = Clip_schema.Path
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term
module Ast = Clip_xquery.Ast

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let step_to_ast = function
  | Path.Child tag -> Ast.Child_step tag
  | Path.Attr name -> Ast.Attr_step name
  | Path.Value -> Ast.Text_step

let expr_to_ast (e : Term.expr) : Ast.expr =
  let steps = List.map step_to_ast (Term.steps e) in
  let base =
    match Term.head e with
    | Term.Root s -> Ast.Doc s
    | Term.Var x -> Ast.Var x
    | Term.Proj _ -> assert false
  in
  if steps = [] then base else Ast.path base steps

(* Rewrite a source expression so that variable [v] reads from
   [replacement v] instead (used by the grouping template to reroot
   member variables into tuple elements). *)
let rec rewrite_expr replace (e : Term.expr) : Ast.expr =
  match e with
  | Term.Root s -> Ast.Doc s
  | Term.Var x -> replace x
  | Term.Proj (b, s) -> Ast.path (rewrite_expr replace b) [ step_to_ast s ]

let rec scalar_to_ast ?(replace = fun x -> Ast.Var x) (s : Term.scalar) : Ast.expr =
  match s with
  | Term.E e -> rewrite_expr replace e
  | Term.Const a -> Ast.Literal a
  | Term.Fn (name, args) ->
    let args = List.map (scalar_to_ast ~replace) args in
    (match name, args with
     | "concat", args -> Ast.call "concat" args
     | "add", [ a; b ] -> Ast.Arith (Ast.Add, a, b)
     | "sub", [ a; b ] -> Ast.Arith (Ast.Sub, a, b)
     | "mul", [ a; b ] -> Ast.Arith (Ast.Mul, a, b)
     | "div", [ a; b ] -> Ast.Arith (Ast.Div, a, b)
     | "upper", [ a ] -> Ast.call "upper-case" [ a ]
     | "lower", [ a ] -> Ast.call "lower-case" [ a ]
     | name, args -> Ast.call name args)

let cmp_to_ast (op : Tgd.cmp_op) : Ast.cmp_op =
  match op with
  | Tgd.Eq | Tgd.In -> Ast.Eq
  | Tgd.Ne -> Ast.Ne
  | Tgd.Lt -> Ast.Lt
  | Tgd.Le -> Ast.Le
  | Tgd.Gt -> Ast.Gt
  | Tgd.Ge -> Ast.Ge

let where_of ?replace (cond : Tgd.comparison list) =
  let conjuncts =
    List.map
      (fun (c : Tgd.comparison) ->
        Ast.Cmp (cmp_to_ast c.op, scalar_to_ast ?replace c.left, scalar_to_ast ?replace c.right))
      cond
  in
  match conjuncts with
  | [] -> None
  | first :: rest -> Some (List.fold_left (fun acc c -> Ast.And (acc, c)) first rest)

(* --- Target templates --------------------------------------------------

   Attribute / text / constant-child structure accumulated from the
   assertions rooted at one target variable. *)

type template = {
  mutable tattrs : (string * Ast.expr) list; (* reversed *)
  mutable ttext : Ast.expr option;
  mutable tchildren : (string * template) list; (* constant singleton tags, reversed *)
  mutable tcontent : Ast.expr list; (* dynamic content (submapping FLWORs), reversed *)
}

let fresh_template () = { tattrs = []; ttext = None; tchildren = []; tcontent = [] }

let rec template_at tpl = function
  | [] -> tpl
  | Path.Child tag :: rest ->
    let child =
      match List.assoc_opt tag tpl.tchildren with
      | Some c -> c
      | None ->
        let c = fresh_template () in
        tpl.tchildren <- (tag, c) :: tpl.tchildren;
        c
    in
    template_at child rest
  | (Path.Attr _ | Path.Value) :: _ ->
    unsupported "a target path traverses a leaf step"

let template_set tpl steps value =
  match List.rev steps with
  | [] -> unsupported "a leaf assignment targets an element directly"
  | last :: rev_prefix ->
    let parent = template_at tpl (List.rev rev_prefix) in
    (match last with
     | Path.Attr name -> parent.tattrs <- (name, value) :: parent.tattrs
     | Path.Value -> parent.ttext <- Some value
     | Path.Child _ -> unsupported "a leaf assignment ends on an element step")

let rec template_to_content tpl : (string * Ast.expr) list * Ast.expr list =
  let attrs = List.rev tpl.tattrs in
  let text = match tpl.ttext with Some e -> [ e ] | None -> [] in
  let const_children =
    List.rev_map
      (fun (tag, child) ->
        let cattrs, ccontent = template_to_content child in
        Ast.elem ~attrs:cattrs tag ccontent)
      tpl.tchildren
  in
  (attrs, text @ const_children @ List.rev tpl.tcontent)

(* ------------------------------------------------------------------------ *)

type state = { mutable counter : int; var_tag : (string, string) Hashtbl.t }

let fresh_name st base =
  st.counter <- st.counter + 1;
  Printf.sprintf "%s_%d" base st.counter

(* The element tag a source generator ranges over (following variable
   aliases like [p2 ∈ p]). *)
let record_var_tag st (g : Tgd.source_gen) =
  let tag =
    match List.rev (Term.steps g.sexpr) with
    | Path.Child tag :: _ -> Some tag
    | (Path.Attr _ | Path.Value) :: _ -> None
    | [] ->
      (match Term.head g.sexpr with
       | Term.Var x -> Hashtbl.find_opt st.var_tag x
       | Term.Root _ | Term.Proj _ -> None)
  in
  match tag with
  | Some tag -> Hashtbl.replace st.var_tag g.svar tag
  | None -> unsupported "cannot determine the element tag of generator %s" g.svar

(* Split compiled exists lists: completion wrappers, then at most one
   principal generator. *)
let split_exists (m : Tgd.t) =
  let rec go completions = function
    | [] -> (List.rev completions, None)
    | ({ Tgd.mode = Tgd.Completion; _ } as g) :: rest -> go (g :: completions) rest
    | ({ Tgd.mode = Tgd.Driven | Tgd.Grouped _; _ } as g) :: rest ->
      if rest <> [] then
        unsupported "a principal target generator is not last in its mapping";
      (List.rev completions, Some g)
  in
  go [] m.exists

let last_child_tag (g : Tgd.target_gen) =
  match List.rev (Term.steps g.texpr) with
  | Path.Child tag :: _ -> tag
  | _ -> unsupported "target generator %s does not end on an element step" g.tvar

(* Assertions are distributed to the target variable they are rooted
   at; each contributes to that variable's template. *)
let distribute_assertions ?replace (m : Tgd.t) (templates : (string * template) list)
    ~root_template =
  List.iter
    (fun (a : Tgd.assertion) ->
      let target_expr, value =
        match a with
        | Tgd.St_eq (e, s) -> (e, scalar_to_ast ?replace s)
        | Tgd.Target_cond (e, Tgd.Eq, atom) -> (e, Ast.Literal atom)
        | Tgd.Target_cond (_, op, _) ->
          unsupported "non-equality target condition (%s)" (Tgd.cmp_op_to_string op)
        | Tgd.Agg (e, kind, arg) ->
          (e, Ast.call (Tgd.agg_kind_to_string kind) [ rewrite_expr
                (match replace with Some r -> r | None -> fun x -> Ast.Var x)
                arg ])
      in
      let tpl =
        match Term.head target_expr with
        | Term.Var x ->
          (match List.assoc_opt x templates with
           | Some tpl -> tpl
           | None -> unsupported "assertion rooted at foreign target variable %s" x)
        | Term.Root _ ->
          (match root_template with
           | Some tpl -> tpl
           | None -> unsupported "assertion rooted at the target root in a nested mapping")
        | Term.Proj _ -> assert false
      in
      template_set tpl (Term.steps target_expr) value)
    m.assertions

(* --- Placements -----------------------------------------------------------

   A mapping translates to {e placements}: pairs of (constant-tag steps
   relative to the enclosing target context, expression). The parent
   splices each placement into its template tree, so singleton
   intermediate tags and completion wrappers are shared — one constant
   tag per parent context, exactly the tgd engine's (and the paper's
   minimum-cardinality) semantics, even when several submappings or
   bindings contribute below the same tag. *)

let child_steps_of where steps =
  List.map
    (function
      | Path.Child _ as s -> s
      | Path.Attr _ | Path.Value -> unsupported "%s traverses a leaf step" where)
    steps

(* The constant-tag chain contributed by leading completion generators
   (each is rooted at the previous one, so their steps concatenate). *)
let completion_chain completions =
  List.concat_map
    (fun (g : Tgd.target_gen) ->
      child_steps_of "a completion generator" (Term.steps g.texpr))
    completions

let principal_prefix (g : Tgd.target_gen) =
  match List.rev (Term.steps g.texpr) with
  | _ :: rev -> child_steps_of "a principal generator" (List.rev rev)
  | [] -> []

let splice tpl placements =
  List.iter
    (fun (steps, expr) ->
      let node = template_at tpl steps in
      node.tcontent <- expr :: node.tcontent)
    placements

let rec translate_mapping st (m : Tgd.t) : (Path.step list * Ast.expr) list =
  let completions, principal = split_exists m in
  List.iter (record_var_tag st) m.foralls;
  let comp_steps = completion_chain completions in
  let clauses =
    List.map (fun (g : Tgd.source_gen) -> Ast.For (g.svar, expr_to_ast g.sexpr)) m.foralls
  in
  match principal with
  | Some ({ Tgd.mode = Tgd.Grouped { keys }; _ } as g) ->
    [ (comp_steps @ principal_prefix g, translate_grouped st m g keys) ]
  | Some ({ Tgd.mode = Tgd.Driven | Tgd.Completion; _ } as g) ->
    (* The principal element, carrying this mapping's assertions and
       its children's placements. *)
    let tpl = fresh_template () in
    distribute_assertions m [ (g.tvar, tpl) ] ~root_template:None;
    splice tpl (List.concat_map (translate_mapping st) m.children);
    let attrs, content = template_to_content tpl in
    let return = Ast.elem ~attrs (last_child_tag g) content in
    let expr =
      if clauses = [] && m.cond = [] then return
      else Ast.flwor ?where:(where_of m.cond) clauses return
    in
    [ (comp_steps @ principal_prefix g, expr) ]
  | None ->
    (* No element of its own: bubble the children's placements upward,
       wrapping each in this mapping's iteration (the constant tags
       stay outside the FLWOR — they are shared singletons). *)
    if m.assertions <> [] then
      unsupported
        "assertions in a mapping without a principal target generator are only \
         supported at the top level";
    let child_placements = List.concat_map (translate_mapping st) m.children in
    if clauses = [] && m.cond = [] then
      List.map (fun (steps, expr) -> (comp_steps @ steps, expr)) child_placements
    else
      List.map
        (fun (steps, expr) ->
          (comp_steps @ steps, Ast.flwor ?where:(where_of m.cond) clauses expr))
        child_placements

(* The paper's grouping template (Sec. VI). *)
and translate_grouped st (m : Tgd.t) (g : Tgd.target_gen) keys : Ast.expr =
  let ctx_var = fresh_name st "context" in
  let member = fresh_name st "m" in
  (* One tuple element per binding, wrapping every bound variable. *)
  let tuple =
    Ast.elem "tuple"
      (List.map
         (fun (sg : Tgd.source_gen) ->
           Ast.elem ("v-" ^ sg.svar) [ Ast.Var sg.svar ])
         m.foralls)
  in
  let ctx_flwor =
    Ast.flwor ?where:(where_of m.cond)
      (List.map (fun (sg : Tgd.source_gen) -> Ast.For (sg.svar, expr_to_ast sg.sexpr)) m.foralls)
      tuple
  in
  (* Reading a bound variable back out of a tuple element. *)
  let from_tuple base v =
    match Hashtbl.find_opt st.var_tag v with
    | Some tag -> Ast.path base [ Ast.Child_step ("v-" ^ v); Ast.Child_step tag ]
    | None -> Ast.Var v (* an outer-scope variable: still directly visible *)
  in
  let bound_here v =
    List.exists (fun (sg : Tgd.source_gen) -> String.equal sg.svar v) m.foralls
  in
  let replace_with base v = if bound_here v then from_tuple base v else Ast.Var v in
  (* Dimensions: one distinct-values per grouping attribute. *)
  let dims =
    List.mapi
      (fun i key ->
        let dim_var = fresh_name st (Printf.sprintf "dim%d" (i + 1)) in
        let key_var = fresh_name st (Printf.sprintf "key%d" (i + 1)) in
        let over_ctx =
          scalar_to_ast ~replace:(replace_with (Ast.Var ctx_var)) key
        in
        (dim_var, key_var, key, Ast.call "distinct-values" [ over_ctx ]))
      keys
  in
  let group_var = fresh_name st "group" in
  let group_where =
    match
      List.map
        (fun (_, key_var, key, _) ->
          Ast.Cmp
            ( Ast.Eq,
              scalar_to_ast ~replace:(replace_with (Ast.Var member)) key,
              Ast.Var key_var ))
        dims
    with
    | [] -> None
    | first :: rest -> Some (List.fold_left (fun acc c -> Ast.And (acc, c)) first rest)
  in
  let group_flwor =
    Ast.flwor ?where:group_where [ Ast.For (member, Ast.Var ctx_var) ] (Ast.Var member)
  in
  (* The group element: key-matching assertions read the key variable;
     aggregates and other scalars read through the group. *)
  let tpl = fresh_template () in
  let replace_in_group v =
    if bound_here v then from_tuple (Ast.Var group_var) v else Ast.Var v
  in
  let key_match s =
    List.find_map
      (fun (_, key_var, key, _) -> if key = s then Some (Ast.Var key_var) else None)
      dims
  in
  List.iter
    (fun (a : Tgd.assertion) ->
      let target_expr, value =
        match a with
        | Tgd.St_eq (e, s) ->
          let v =
            match key_match s with
            | Some kv -> kv
            | None ->
              Ast.call "distinct-values" [ scalar_to_ast ~replace:replace_in_group s ]
          in
          (e, v)
        | Tgd.Target_cond (e, Tgd.Eq, atom) -> (e, Ast.Literal atom)
        | Tgd.Target_cond (_, op, _) ->
          unsupported "non-equality target condition (%s)" (Tgd.cmp_op_to_string op)
        | Tgd.Agg (e, kind, arg) ->
          (e, Ast.call (Tgd.agg_kind_to_string kind) [ rewrite_expr replace_in_group arg ])
      in
      (match Term.head target_expr with
       | Term.Var x when String.equal x g.tvar -> ()
       | _ -> unsupported "group assertion rooted outside the group element");
      template_set tpl (Term.steps target_expr) value)
    m.assertions;
  (* Submappings run once per member, with the bound variables rebound
     from the tuple; their placements splice into the group template so
     intermediate singleton tags are shared per group. *)
  let lets =
    List.map
      (fun (sg : Tgd.source_gen) -> Ast.Let (sg.svar, from_tuple (Ast.Var member) sg.svar))
      m.foralls
  in
  splice tpl
    (List.map
       (fun (steps, expr) ->
         (steps, Ast.flwor (Ast.For (member, Ast.Var group_var) :: lets) expr))
       (List.concat_map (translate_mapping st) m.children));
  let attrs, content = template_to_content tpl in
  let return = Ast.elem ~attrs (last_child_tag g) content in
  (* With several grouping attributes the dimension loops enumerate the
     Cartesian product of key values; only combinations that actually
     occur form groups. *)
  Ast.flwor
    ~where:(Ast.call "exists" [ Ast.Var group_var ])
    (Ast.Let (ctx_var, ctx_flwor)
     :: List.map (fun (dim_var, _, _, d) -> Ast.Let (dim_var, d)) dims
     @ List.map (fun (dim_var, key_var, _, _) -> Ast.For (key_var, Ast.Var dim_var)) dims
     @ [ Ast.Let (group_var, group_flwor) ])
    return

let translate_unguarded ~target_root (m : Tgd.t) =
  let st = { counter = 0; var_tag = Hashtbl.create 16 } in
  let root_tpl = fresh_template () in
  (* The synthetic top mapping may carry whole-document assertions
     (driverless aggregates) rooted at the target root. *)
  let placements =
    if m.foralls = [] && m.exists = [] then begin
      distribute_assertions m [] ~root_template:(Some root_tpl);
      List.concat_map (translate_mapping st) m.children
    end
    else
      translate_mapping st { m with assertions = m.assertions }
  in
  splice root_tpl placements;
  let attrs, content = template_to_content root_tpl in
  if attrs <> [] then unsupported "attributes on the target root are not expressible";
  Ast.elem target_root content

let translate_result ~target_root m =
  match translate_unguarded ~target_root m with
  | q -> Ok q
  | exception Unsupported msg ->
    Error [ Clip_diag.error ~code:Clip_diag.Codes.xquery_gen_unsupported msg ]

let translate ~target_root m = translate_unguarded ~target_root m
