(** Textual surface syntax for complete Clip mappings — the stand-in
    for the GUI. A mapping file declares the two schemas and the
    mapping:

    {v
    schema source { dept [1..*] { dname: string ... } }
    schema target { department [1..*] { employee [0..*] { @name: string } } }

    mapping {
      node d: source.dept as $d -> target.department {
        node e: source.dept.regEmp as $r -> target.department.employee
          where $r.sal.value > 11000
      }
      value source.dept.regEmp.ename.value -> target.department.employee.@name
    }
    v}

    Syntax summary (mirrors Fig. 2):
    - [node id: input, input -> output { children }] — a build node;
      each input is a source element path, optionally tagged
      [as $var]; the output target element is optional (context-only
      nodes); [where] adds filtering conditions over tagged variables;
    - [group id: input by $v.path, ... -> output { ... }] — a group
      node with its grouping attributes;
    - [value src -> tgt] — a value mapping; [src] is a source leaf
      path, [fn(p1, p2, ...)] for scalar functions, [<<count>> p] (or
      [avg], [sum], [min], [max]) for aggregates, or a literal for
      constants. *)

exception Syntax_error of { line : int; column : int; message : string }

(** [parse_result s] — a complete mapping file (two schemas + mapping),
    or spanned diagnostics: [CLIP-MAP-001] for mapping syntax errors,
    [CLIP-SCH-*] for errors inside the schema declarations,
    [CLIP-LIM-003] when nesting exceeds
    [limits.max_parser_recursion]. *)
val parse_result :
  ?limits:Clip_diag.Limits.t -> string -> (Mapping.t, Clip_diag.t list) result

(** [parse s] — a complete mapping file (two schemas + mapping).
    The first declared schema is the source, the second the target.
    @raise Syntax_error on malformed input (thin wrapper over
    {!parse_result}; schema errors raise the [Clip_schema] exceptions
    as before). *)
val parse : ?limits:Clip_diag.Limits.t -> string -> Mapping.t

(** [parse_mapping ~source ~target s] — just a [mapping { ... }] block
    against existing schemas. *)
val parse_mapping :
  ?limits:Clip_diag.Limits.t ->
  source:Clip_schema.Schema.t ->
  target:Clip_schema.Schema.t ->
  string ->
  Mapping.t

val parse_mapping_result :
  ?limits:Clip_diag.Limits.t ->
  source:Clip_schema.Schema.t ->
  target:Clip_schema.Schema.t ->
  string ->
  (Mapping.t, Clip_diag.t list) result

val error_to_string : exn -> string

(** [to_string m] — render a mapping back to the surface syntax
    (schemas included); [parse (to_string m)] round-trips. *)
val to_string : Mapping.t -> string
