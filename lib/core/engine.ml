type backend = [ `Tgd | `Xquery | `Xquery_text ]

let run ?(backend = `Tgd) ?(minimum_cardinality = true) ?plan ?steps_out
    (m : Mapping.t) source =
  let tgd = Compile.to_tgd m in
  let target_root = m.target.root.name in
  match backend with
  | `Tgd ->
    Clip_tgd.Eval.run ~minimum_cardinality ?plan ?steps_out ~source ~target_root tgd
  | (`Xquery | `Xquery_text) as backend ->
    if not minimum_cardinality then
      invalid_arg
        "Engine.run: the universal-solution ablation is only available on the \
         tgd backend";
    let query = To_xquery.translate ~target_root tgd in
    let query =
      match backend with
      | `Xquery -> query
      | `Xquery_text ->
        (* Round-trip through the concrete syntax: what an external
           XQuery processor would receive. *)
        Clip_xquery.Parser.parse_string (Clip_xquery.Pretty.query_to_string query)
    in
    Clip_xquery.Eval.run_document ?plan ?steps_out ~input:source query

let run_result ?limits ?(backend = `Tgd) ?(minimum_cardinality = true) ?plan
    ?steps_out (m : Mapping.t) source =
  match Compile.to_tgd_result m with
  | Error ds -> Error ds
  | Ok tgd ->
    let target_root = m.target.root.name in
    (match backend with
     | `Tgd ->
       Clip_tgd.Eval.run_result ?limits ~minimum_cardinality ?plan ?steps_out
         ~source ~target_root tgd
     | (`Xquery | `Xquery_text) as backend ->
       if not minimum_cardinality then
         invalid_arg
           "Engine.run_result: the universal-solution ablation is only \
            available on the tgd backend";
       (match To_xquery.translate_result ~target_root tgd with
        | Error ds -> Error ds
        | Ok query ->
          let query =
            match backend with
            | `Xquery -> Ok query
            | `Xquery_text ->
              Clip_xquery.Parser.parse_string_result ?limits
                (Clip_xquery.Pretty.query_to_string query)
          in
          (match query with
           | Error ds -> Error ds
           | Ok query ->
             Clip_xquery.Eval.run_document_result ?limits ?plan ?steps_out
               ~input:source query)))

(* Every diagnostic for a mapping, in one pass: all validity issues
   (warnings included), then — when validity allows compiling — any
   compile- or XQuery-translation-stage errors. *)
let diagnose (m : Mapping.t) =
  let issues = List.map Compile.issue_to_diag (Validity.check m) in
  let later =
    if Clip_diag.has_errors issues then []
    else
      match Compile.to_tgd_unchecked_result m with
      | Error ds -> ds
      | Ok tgd ->
        (match To_xquery.translate_result ~target_root:m.target.root.name tgd with
         | Error ds -> ds
         | Ok _ -> [])
  in
  issues @ later

let run_traced ?(minimum_cardinality = true) ?plan (m : Mapping.t) source =
  let tgd = Compile.to_tgd m in
  Clip_tgd.Eval.run_traced ~minimum_cardinality ?plan ~source
    ~target_root:m.target.root.name tgd

let xquery_text (m : Mapping.t) =
  let tgd = Compile.to_tgd m in
  Clip_xquery.Pretty.query_to_string
    (To_xquery.translate ~target_root:m.target.root.name tgd)

let tgd_text ?unicode (m : Mapping.t) =
  Clip_tgd.Pretty.to_string ?unicode (Compile.to_tgd m)
