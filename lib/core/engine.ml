type backend = [ `Tgd | `Xquery | `Xquery_text | `Rel ]
type mode = [ `Whole | `Sharded | `Auto ]

(* --- Single-document sharding ------------------------------------------ *)

(* The sharded paths below cut one large source document at the unit
   designated by {!Clip_shard.plan}, evaluate the shard documents
   through the unchanged per-backend executors — one fresh backend
   session per shard, the compiled tgd (and translated query) shared —
   and merge the per-shard targets into exactly the whole-document
   output. The whole-document path stays the oracle: [`Whole] touches
   none of this. *)

let default_shard_bytes = 1 lsl 20

(* Resolve the three-way mode against the static analysis and the
   concrete document. [`Sharded] shards whenever the analysis
   designates a safe cut and the document holds at least two units;
   [`Auto] additionally requires the document to overflow one shard
   budget, so small documents keep the zero-overhead whole path. *)
let decide ~mode ~minimum_cardinality ~shard_bytes (m : Mapping.t) tgd source =
  match mode with
  | `Whole -> Clip_shard.Whole "disabled, whole-document evaluation"
  | (`Sharded | `Auto) as mode -> (
      match
        Clip_shard.plan ~source:m.source ~target:m.target ~minimum_cardinality
          tgd
      with
      | Clip_shard.Whole _ as w -> w
      | Clip_shard.Sharded cut as d ->
          if Clip_shard.count_units cut source < 2 then
            Clip_shard.Whole "the document holds fewer than two shard units"
          else if mode = `Auto && Clip_shard.approx_bytes source <= shard_bytes
          then Clip_shard.Whole "the document fits within one shard budget"
          else d)

(* --- Sessions: the per-document cache state ---------------------------- *)

(* A session pins one source document and amortises everything that is
   per-document or per-mapping rather than per-run: the backends'
   sessions (tag index, instance statistics, compiled physical plans)
   and this layer's own compile caches (mapping -> tgd, tgd -> XQuery).
   Mapping and tgd values are pure data, so structural hashing is
   sound; a NaN-bearing mapping never hits its cache entry and is
   simply recompiled. *)
type session = {
  ssource : Clip_xml.Node.t;
  stgd : Clip_tgd.Eval.Session.t;
  sxq : Clip_xquery.Eval.Session.t;
  srel : Clip_rel.Eval.Session.t;
  scompiled : (Mapping.t, Clip_tgd.Tgd.t) Hashtbl.t;
  stranslated : (string * Clip_tgd.Tgd.t, Clip_xquery.Ast.expr) Hashtbl.t;
  (* One-slot physical-identity fast paths in front of the structural
     tables: re-running the same mapping value skips the deep hash and
     equality, which on small documents costs as much as the run. *)
  mutable slast_tgd : (Mapping.t * Clip_tgd.Tgd.t) option;
  mutable slast_xq : (string * Clip_tgd.Tgd.t * Clip_xquery.Ast.expr) option;
}

let create_session source =
  {
    ssource = source;
    stgd = Clip_tgd.Eval.Session.create source;
    sxq = Clip_xquery.Eval.Session.create source;
    srel = Clip_rel.Eval.Session.create source;
    scompiled = Hashtbl.create 8;
    stranslated = Hashtbl.create 8;
    slast_tgd = None;
    slast_xq = None;
  }

(* Population is fault-safe by construction: the table gains its
   entry only after [compute] returns, so a failure mid-population
   (e.g. an injected [session.populate] fault) leaves the cache
   exactly as it was — never a poisoned entry. *)
let session_memo ?obs tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v ->
    Clip_obs.session_hit obs;
    v
  | None ->
    Clip_fault.hit ~obs Clip_fault.Site.session_populate;
    let v = compute () in
    Hashtbl.add tbl key v;
    v

let session_tgd ?obs s m =
  match s.slast_tgd with
  | Some (m', tgd) when m' == m ->
    Clip_obs.session_hit obs;
    tgd
  | _ ->
    let tgd = session_memo ?obs s.scompiled m (fun () -> Compile.to_tgd m) in
    s.slast_tgd <- Some (m, tgd);
    tgd

let session_tgd_result ?obs s m =
  match s.slast_tgd with
  | Some (m', tgd) when m' == m ->
    Clip_obs.session_hit obs;
    Ok tgd
  | _ ->
    (match Hashtbl.find_opt s.scompiled m with
     | Some tgd ->
       Clip_obs.session_hit obs;
       s.slast_tgd <- Some (m, tgd);
       Ok tgd
     | None ->
       (match
          Clip_diag.guard (fun () ->
              Clip_fault.hit ~obs Clip_fault.Site.session_populate)
        with
        | Error _ as e -> e
        | Ok () ->
          (match Compile.to_tgd_result m with
           | Error _ as e -> e
           | Ok tgd ->
             Hashtbl.add s.scompiled m tgd;
             s.slast_tgd <- Some (m, tgd);
             Ok tgd)))

let session_xquery ?obs s ~target_root tgd =
  match s.slast_xq with
  | Some (r, tgd', q) when r = target_root && tgd' == tgd ->
    Clip_obs.session_hit obs;
    q
  | _ ->
    let q =
      session_memo ?obs s.stranslated (target_root, tgd) (fun () ->
        To_xquery.translate ~target_root tgd)
    in
    s.slast_xq <- Some (target_root, tgd, q);
    q

let session_xquery_result ?obs s ~target_root tgd =
  match s.slast_xq with
  | Some (r, tgd', q) when r = target_root && tgd' == tgd ->
    Clip_obs.session_hit obs;
    Ok q
  | _ ->
    (match Hashtbl.find_opt s.stranslated (target_root, tgd) with
     | Some q ->
       Clip_obs.session_hit obs;
       s.slast_xq <- Some (target_root, tgd, q);
       Ok q
     | None ->
       (match
          Clip_diag.guard (fun () ->
              Clip_fault.hit ~obs Clip_fault.Site.session_populate)
        with
        | Error _ as e -> e
        | Ok () ->
          (match To_xquery.translate_result ~target_root tgd with
           | Error _ as e -> e
           | Ok q ->
             Hashtbl.add s.stranslated (target_root, tgd) q;
             s.slast_xq <- Some (target_root, tgd, q);
             Ok q)))

(* --- The backend contract ---------------------------------------------- *)

(* What every execution backend must provide, made explicit: a
   shard-ready compiled form ([query]), whole-document evaluation
   through the session caches, per-shard evaluation against fresh
   backend state, and a static EXPLAIN. Dispatch everywhere below is a
   lookup in {!backends} — a table of first-class modules — so a new
   backend is one module plus one table row, not another arm in every
   match. *)
module type BACKEND = sig
  (* Whatever per-run artifact shard evaluation needs beyond the shard
     document itself (the compiled tgd, a translated query, a compiled
     relational program). Prepared once per run, shared by every
     shard. *)
  type query

  val id : backend
  val name : string
  val doc : string

  (* Compile the shard-ready [query]. With [?session] the translation
     goes through the session caches (emitting session-hit counters
     and the [session.populate] fault site); without — the streaming
     path, where no document-pinned session exists yet — it translates
     directly. Phase spans are recorded against [ctx]. *)
  val prepare :
    ?obs:Clip_obs.Counters.t ->
    ctx:Clip_run.t ->
    ?session:session ->
    mapping:Mapping.t ->
    Clip_tgd.Tgd.t ->
    query

  val prepare_result :
    ?limits:Clip_diag.Limits.t ->
    ?obs:Clip_obs.Counters.t ->
    ctx:Clip_run.t ->
    ?session:session ->
    mapping:Mapping.t ->
    Clip_tgd.Tgd.t ->
    (query, Clip_diag.t list) result

  (* Whole-document evaluation over the session's pinned source,
     reusing the session's backend state. Phase spans ("translate",
     "parse", "execute") and counters flow through [ctx]. Raises the
     backend's dynamic-error exceptions; [eval_result] reports them as
     diagnostics instead. *)
  val eval :
    ctx:Clip_run.t ->
    minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    session ->
    Mapping.t ->
    Clip_tgd.Tgd.t ->
    Clip_xml.Node.t

  val eval_result :
    ?limits:Clip_diag.Limits.t ->
    ctx:Clip_run.t ->
    minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    session ->
    Mapping.t ->
    Clip_tgd.Tgd.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result

  (* One shard through the backend executor, against fresh per-shard
     backend state (sessions are single-domain values, so every shard
     gets its own); cancellation and the deadline clock flow through
     the parent context's domain-safe [ctl]; the scratch sink [obs] is
     supplied by {!Clip_par}, which merges it so totals are exact. *)
  val eval_shard :
    ?limits:Clip_diag.Limits.t ->
    minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ctl:Clip_run.Control.t ->
    obs:Clip_obs.Counters.t option ->
    steps_out:int ref ->
    query ->
    Clip_xml.Node.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result

  (* The static, deterministic plan renderer behind [clip explain]. *)
  val explain :
    ?obs:Clip_obs.Counters.t ->
    ?plan:Clip_plan.mode ->
    session ->
    Mapping.t ->
    Clip_tgd.Tgd.t ->
    string
end

module Tgd_backend : BACKEND = struct
  (* The tgd engine evaluates the compiled tgd directly; its
     shard-ready form is just the tgd plus the target root. *)
  type query = string * Clip_tgd.Tgd.t

  let id = `Tgd
  let name = "tgd"
  let doc = "direct evaluation of the compiled tgd"

  let prepare ?obs:_ ~ctx:_ ?session:_ ~mapping:(m : Mapping.t) tgd =
    (m.target.root.name, tgd)

  let prepare_result ?limits:_ ?obs:_ ~ctx:_ ?session:_
      ~mapping:(m : Mapping.t) tgd =
    Ok (m.target.root.name, tgd)

  let eval ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s (m : Mapping.t)
      tgd =
    let obs = Clip_run.counters ctx in
    Clip_run.span ctx "execute" (fun () ->
      Clip_tgd.Eval.run ~minimum_cardinality ?plan ?repr
        ~ctl:(Clip_run.control ctx) ~session:s.stgd ?steps_out ?obs
        ~source:s.ssource ~target_root:m.target.root.name tgd)

  let eval_result ?limits ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s
      (m : Mapping.t) tgd =
    let obs = Clip_run.counters ctx in
    Clip_run.span ctx "execute" (fun () ->
      Clip_tgd.Eval.run_result ?limits ~minimum_cardinality ?plan ?repr
        ~ctl:(Clip_run.control ctx) ~session:s.stgd ?steps_out ?obs
        ~source:s.ssource ~target_root:m.target.root.name tgd)

  let eval_shard ?limits ~minimum_cardinality ?plan ?repr ~ctl ~obs ~steps_out
      (target_root, tgd) shard =
    Clip_tgd.Eval.run_result ?limits ~minimum_cardinality ?plan ?repr ~ctl
      ~session:(Clip_tgd.Eval.Session.create shard) ~steps_out ?obs
      ~source:shard ~target_root tgd

  let explain ?obs:_ ?plan s (_m : Mapping.t) tgd =
    Clip_tgd.Eval.explain ?plan ~session:s.stgd ~source:s.ssource tgd
end

(* The two XQuery backends differ only in the round-trip through the
   concrete syntax — parsing is deliberately not cached; it stands in
   for what an external processor would do per request. *)
module Make_xquery (C : sig
  val id : backend
  val name : string
  val doc : string
  val text : bool
end) : BACKEND = struct
  type query = Clip_xquery.Ast.expr

  let id = C.id
  let name = C.name
  let doc = C.doc

  let translated ?obs ~ctx ?session ~target_root tgd =
    Clip_run.span ctx "translate" (fun () ->
        match session with
        | Some s -> session_xquery ?obs s ~target_root tgd
        | None -> To_xquery.translate ~target_root tgd)

  let reparse ~ctx q =
    if not C.text then q
    else
      Clip_run.span ctx "parse" (fun () ->
          Clip_xquery.Parser.parse_string
            (Clip_xquery.Pretty.query_to_string q))

  let prepare ?obs ~ctx ?session ~mapping:(m : Mapping.t) tgd =
    reparse ~ctx
      (translated ?obs ~ctx ?session ~target_root:m.target.root.name tgd)

  let prepare_result ?limits ?obs ~ctx ?session ~mapping:(m : Mapping.t) tgd =
    let target_root = m.target.root.name in
    match
      Clip_run.span ctx "translate" (fun () ->
          match session with
          | Some s -> session_xquery_result ?obs s ~target_root tgd
          | None -> To_xquery.translate_result ~target_root tgd)
    with
    | Error ds -> Error ds
    | Ok q ->
      if not C.text then Ok q
      else
        Clip_run.span ctx "parse" (fun () ->
            Clip_xquery.Parser.parse_string_result ?limits
              (Clip_xquery.Pretty.query_to_string q))

  let eval ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s (m : Mapping.t)
      tgd =
    if not minimum_cardinality then
      invalid_arg
        "Engine.Session.run: the universal-solution ablation is only \
         available on the tgd backend";
    let obs = Clip_run.counters ctx in
    let query =
      reparse ~ctx
        (translated ?obs ~ctx ~session:s ~target_root:m.target.root.name tgd)
    in
    Clip_run.span ctx "execute" (fun () ->
      Clip_xquery.Eval.run_document ?plan ?repr ~ctl:(Clip_run.control ctx)
        ~session:s.sxq ?steps_out ?obs ~input:s.ssource query)

  let eval_result ?limits ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s
      (m : Mapping.t) tgd =
    if not minimum_cardinality then
      invalid_arg
        "Engine.Session.run_result: the universal-solution ablation is \
         only available on the tgd backend";
    let obs = Clip_run.counters ctx in
    match
      prepare_result ?limits ?obs ~ctx ~session:s ~mapping:m tgd
    with
    | Error ds -> Error ds
    | Ok query ->
      Clip_run.span ctx "execute" (fun () ->
        Clip_xquery.Eval.run_document_result ?limits ?plan ?repr
          ~ctl:(Clip_run.control ctx) ~session:s.sxq ?steps_out ?obs
          ~input:s.ssource query)

  let eval_shard ?limits ~minimum_cardinality:_ ?plan ?repr ~ctl ~obs
      ~steps_out query shard =
    Clip_xquery.Eval.run_document_result ?limits ?plan ?repr ~ctl
      ~session:(Clip_xquery.Eval.Session.create shard) ~steps_out ?obs
      ~input:shard query

  let explain ?obs ?plan s (m : Mapping.t) tgd =
    let query =
      session_xquery ?obs s ~target_root:m.target.root.name tgd
    in
    Clip_xquery.Eval.explain ?plan ~session:s.sxq ~input:s.ssource query
end

(* The relational backend: for mappings whose source is
   relational-shaped, the shared tgd compiles to a static {!Clip_rel}
   program (a CLIP-REL-003 rejection otherwise) evaluated over an
   in-memory column store. Compilation is a schema walk — cheap enough
   not to need the session caches; the expensive per-document state
   (the store, compiled physical plans) lives in the rel session. *)
module Rel_backend : BACKEND = struct
  type query = Clip_rel.Program.t

  let id = `Rel
  let name = "rel"
  let doc = "columnar relational-algebra execution of relational-shaped sources"

  let prepare ?obs:_ ~ctx ?session:_ ~mapping:(m : Mapping.t) tgd =
    Clip_run.span ctx "translate" (fun () ->
        Clip_rel.Program.compile ~source:m.source
          ~target_root:m.target.root.name tgd)

  let prepare_result ?limits:_ ?obs:_ ~ctx ?session:_ ~mapping:(m : Mapping.t)
      tgd =
    Clip_run.span ctx "translate" (fun () ->
        Clip_rel.Program.compile_result ~source:m.source
          ~target_root:m.target.root.name tgd)

  let eval ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s (m : Mapping.t)
      tgd =
    if not minimum_cardinality then
      invalid_arg
        "Engine.Session.run: the universal-solution ablation is only \
         available on the tgd backend";
    let obs = Clip_run.counters ctx in
    let query = prepare ?obs ~ctx ~session:s ~mapping:m tgd in
    Clip_run.span ctx "execute" (fun () ->
      Clip_rel.Eval.run ?plan ?repr ~ctl:(Clip_run.control ctx)
        ~session:s.srel ?steps_out ?obs ~source:s.ssource query)

  let eval_result ?limits ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s
      (m : Mapping.t) tgd =
    if not minimum_cardinality then
      invalid_arg
        "Engine.Session.run_result: the universal-solution ablation is \
         only available on the tgd backend";
    let obs = Clip_run.counters ctx in
    match prepare_result ?limits ?obs ~ctx ~session:s ~mapping:m tgd with
    | Error ds -> Error ds
    | Ok query ->
      Clip_run.span ctx "execute" (fun () ->
        Clip_rel.Eval.run_result ?limits ?plan ?repr
          ~ctl:(Clip_run.control ctx) ~session:s.srel ?steps_out ?obs
          ~source:s.ssource query)

  let eval_shard ?limits ~minimum_cardinality:_ ?plan ?repr ~ctl ~obs
      ~steps_out query shard =
    Clip_rel.Eval.run_result ?limits ?plan ?repr ~ctl
      ~session:(Clip_rel.Eval.Session.create shard) ~steps_out ?obs
      ~source:shard query

  let explain ?obs:_ ?plan s (m : Mapping.t) tgd =
    let query =
      Clip_rel.Program.compile ~source:m.source
        ~target_root:m.target.root.name tgd
    in
    Clip_rel.Eval.explain ?plan ~session:s.srel ~source:s.ssource query
end

module Xquery_backend = Make_xquery (struct
  let id = `Xquery
  let name = "xquery"
  let doc = "generated query (Sec. VI), evaluated as an AST"
  let text = false
end)

module Xquery_text_backend = Make_xquery (struct
  let id = `Xquery_text
  let name = "xquery-text"
  let doc = "generated query round-tripped through its concrete syntax"
  let text = true
end)

(* --- The backend registry ---------------------------------------------- *)

type packed = Backend : (module BACKEND with type query = 'q) -> packed

let backends =
  [
    Backend (module Tgd_backend);
    Backend (module Rel_backend);
    Backend (module Xquery_backend);
    Backend (module Xquery_text_backend);
  ]

let backend_module (id : backend) =
  List.find (fun (Backend (module B)) -> B.id = id) backends

let backend_of_name name =
  List.find_opt (fun (Backend (module B)) -> B.name = name) backends

let backend_names =
  List.map (fun (Backend (module B)) -> (B.name, B.id)) backends

(* --- Shard orchestration ------------------------------------------------ *)

(* One shard through its backend module. Each shard runs under its own
   full step budget — the budget bounds any single evaluation, not
   their sum. *)
let eval_shard (type q) (module B : BACKEND with type query = q) ?limits
    ~minimum_cardinality ?plan ?repr ~ctl ~obs ~(query : q) shard =
  let steps = ref 0 in
  let r =
    B.eval_shard ?limits ~minimum_cardinality ?plan ?repr ~ctl ~obs
      ~steps_out:steps query shard
  in
  Result.map (fun out -> (out, !steps)) r

(* Cut a materialised document, evaluate the shards in parallel, merge.
   [Clip_par.map_results] lands every result in its input slot, so the
   error reported is the lowest shard index's — the one the sequential
   whole-document run would have hit first. *)
let sharded_run_result (type q) (module B : BACKEND with type query = q)
    ?limits ~ctx ~minimum_cardinality ?plan ?repr ?steps_out ?jobs
    ~shard_bytes ~cut ~(query : q) source =
  let obs = Clip_run.counters ctx in
  let ctl = Clip_run.control ctx in
  let shards = Clip_shard.shards_of_node cut ~budget_bytes:shard_bytes source in
  let rs =
    Clip_run.span ctx "execute" (fun () ->
        Clip_par.map_results ?jobs ?obs
          (fun ~obs shard ->
            eval_shard
              (module B)
              ?limits ~minimum_cardinality ?plan ?repr ~ctl ~obs ~query shard)
          shards)
  in
  let rec split outs = function
    | [] -> Ok (List.rev outs)
    | Ok o :: rest -> split (o :: outs) rest
    | Error ds :: _ -> Error ds
  in
  match split [] rs with
  | Error ds -> Error ds
  | Ok outs ->
      (match steps_out with
       | Some r -> r := List.fold_left (fun a (_, s) -> a + s) 0 outs
       | None -> ());
      Clip_shard.merge ~unify:cut.Clip_shard.unify (List.map fst outs)

(* --- Sessions: the public handle --------------------------------------- *)

module Session = struct
  type t = session

  let create = create_session
  let source s = s.ssource

  let run ?ctx ?(backend = `Tgd) ?(minimum_cardinality = true) ?plan ?repr
      ?steps_out ?(mode = `Whole) ?(shard_bytes = default_shard_bytes) ?jobs s
      (m : Mapping.t) =
    let ctx = match ctx with Some c -> c | None -> Clip_run.create () in
    let obs = Clip_run.counters ctx in
    let tgd = Clip_run.span ctx "compile" (fun () -> session_tgd ?obs s m) in
    match backend_module backend with
    | Backend (module B) -> (
        match
          decide ~mode ~minimum_cardinality ~shard_bytes m tgd s.ssource
        with
        | Clip_shard.Whole _ ->
          B.eval ~ctx ~minimum_cardinality ?plan ?repr ?steps_out s m tgd
        | Clip_shard.Sharded cut ->
          let query = B.prepare ?obs ~ctx ~session:s ~mapping:m tgd in
          (match
             sharded_run_result
               (module B)
               ~ctx ~minimum_cardinality ?plan ?repr ?steps_out ?jobs
               ~shard_bytes ~cut ~query s.ssource
           with
           | Ok out -> out
           | Error ds -> raise (Clip_diag.Fail ds)))

  let run_result ?ctx ?limits ?(backend = `Tgd) ?(minimum_cardinality = true)
      ?plan ?repr ?steps_out ?(mode = `Whole)
      ?(shard_bytes = default_shard_bytes) ?jobs s (m : Mapping.t) =
    let ctx = match ctx with Some c -> c | None -> Clip_run.create () in
    let obs = Clip_run.counters ctx in
    match
      Clip_run.span ctx "compile" (fun () -> session_tgd_result ?obs s m)
    with
    | Error ds -> Error ds
    | Ok tgd -> (
        match backend_module backend with
        | Backend (module B) -> (
            match
              decide ~mode ~minimum_cardinality ~shard_bytes m tgd s.ssource
            with
            | Clip_shard.Whole _ ->
              B.eval_result ?limits ~ctx ~minimum_cardinality ?plan ?repr
                ?steps_out s m tgd
            | Clip_shard.Sharded cut -> (
                match
                  B.prepare_result ?limits ?obs ~ctx ~session:s ~mapping:m tgd
                with
                | Error ds -> Error ds
                | Ok query ->
                  sharded_run_result
                    (module B)
                    ?limits ~ctx ~minimum_cardinality ?plan ?repr ?steps_out
                    ?jobs ~shard_bytes ~cut ~query s.ssource)))
end

(* --- One-shot entry points --------------------------------------------- *)

(* A one-slot weak memo holding the most recent source document's
   session, scoped per execution context (stored in the context's memo
   slot through the extensible {!Clip_run.memo}). Repeated one-shot
   runs over the same document under one context — the common CLI and
   benchmark pattern — reuse its statistics, tag index, compiled tgds
   and physical plans without the caller managing a {!Session}. Keyed
   by physical identity; the ephemeron lets the document (and with it
   the session) be collected once the caller drops it, even though the
   session itself retains the document.

   Per-context scoping (rather than the former process-global slot)
   removes two hazards at once: domains running with their own
   contexts cannot race on the slot, and two callers alternating
   different documents cannot evict each other's session every run —
   each context keeps its own last document. Callers without a context
   fall back to the per-domain {!Clip_run.ambient} shim and so keep
   the old single-slot behaviour, now domain-local. *)
type Clip_run.memo += Session_memo of (Clip_xml.Node.t, session) Ephemeron.K1.t

let session_for ctx source =
  let hit =
    match Clip_run.memo ctx with
    | Some (Session_memo e) -> Ephemeron.K1.query e source
    | _ -> None
  in
  match hit with
  | Some s ->
    Clip_obs.session_hit (Clip_run.counters ctx);
    s
  | None ->
    let s = Session.create source in
    Clip_run.set_memo ctx (Session_memo (Ephemeron.K1.make source s));
    s

let resolve_ctx = function Some c -> c | None -> Clip_run.ambient ()

let run ?ctx ?backend ?minimum_cardinality ?plan ?repr ?steps_out ?mode
    ?shard_bytes ?jobs (m : Mapping.t) source =
  let ctx = resolve_ctx ctx in
  Session.run ~ctx ?backend ?minimum_cardinality ?plan ?repr ?steps_out ?mode
    ?shard_bytes ?jobs (session_for ctx source) m

let run_result ?ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
    ?steps_out ?mode ?shard_bytes ?jobs (m : Mapping.t) source =
  let ctx = resolve_ctx ctx in
  Session.run_result ~ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
    ?steps_out ?mode ?shard_bytes ?jobs (session_for ctx source) m

(* --- Staged pipelines -------------------------------------------------- *)

(* Run a chain of mappings stage by stage, the output document of each
   stage feeding the next, under one execution context — counters,
   tracer, deadline and cancellation are shared, and each stage's
   session is memoised per intermediate document as usual. The first
   failing stage aborts the chain. *)
let run_staged_result ?ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
    ?steps_out ?mode ?shard_bytes ?jobs (ms : Mapping.t list) source =
  if ms = [] then invalid_arg "Engine.run_staged_result: empty chain";
  let ctx = resolve_ctx ctx in
  let total = ref 0 in
  let stage_steps = ref 0 in
  let rec go doc = function
    | [] -> Ok doc
    | m :: rest ->
      stage_steps := 0;
      (match
         run_result ~ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
           ~steps_out:stage_steps ?mode ?shard_bytes ?jobs m doc
       with
       | Ok out ->
         total := !total + !stage_steps;
         go out rest
       | Error _ as e -> e)
  in
  let r = go source ms in
  (match steps_out with Some out -> out := !total | None -> ());
  r

(* --- Streaming ingestion ----------------------------------------------- *)

(* Run a mapping over a byte stream. The fully streaming path — cutter
   feeding the ordered {!Clip_par.stream_results} pipeline feeding the
   merger — engages when sharding is designated and the shards carry no
   prologue, so only one in-flight window of shard documents is ever
   resident; every other case materialises the document first (the
   memory win is impossible anyway: the whole path needs the tree, and
   prologue-bearing shards need the whole prologue before the first
   unit can be cut loose). *)
let run_stream_result ?ctx ?limits ?(backend = `Tgd)
    ?(minimum_cardinality = true) ?plan ?repr ?steps_out ?(mode = `Auto)
    ?(shard_bytes = default_shard_bytes) ?jobs (m : Mapping.t) src =
  let ctx = resolve_ctx ctx in
  let obs = Clip_run.counters ctx in
  let materialise_then mode =
    match
      Clip_run.span ctx "parse" (fun () -> Clip_xml.Stream.parse_result src)
    with
    | Error ds -> Error ds
    | Ok doc ->
      run_result ~ctx ?limits ~backend ~minimum_cardinality ?plan ?repr
        ?steps_out ~mode ~shard_bytes ?jobs m doc
  in
  match mode with
  | `Whole -> materialise_then `Whole
  | (`Sharded | `Auto) as mode -> (
      match Clip_run.span ctx "compile" (fun () -> Compile.to_tgd_result m) with
      | Error ds -> Error ds
      | Ok tgd -> (
          match
            Clip_shard.plan ~source:m.source ~target:m.target
              ~minimum_cardinality tgd
          with
          | Clip_shard.Whole _ -> materialise_then `Whole
          | Clip_shard.Sharded cut when cut.Clip_shard.needs_prologue ->
            (* Every shard carries the prologue, which is only complete
               once the whole document has been seen — materialise and
               let the tree cutter share subtrees instead. *)
            materialise_then (mode :> mode)
          | Clip_shard.Sharded cut -> (
              match backend_module backend with
              | Backend (module B) -> (
                  (* No document-pinned session exists yet, so the
                     query is prepared sessionless — translation runs
                     directly, emitting no session-hit counters. *)
                  match B.prepare_result ?limits ~ctx ~mapping:m tgd with
                  | Error ds -> Error ds
                  | Ok query -> (
                      let ctl = Clip_run.control ctx in
                      let cutter =
                        Clip_shard.cutter cut ~budget_bytes:shard_bytes src
                      in
                      (* The first pull decides between streaming and the
                         root-mismatch fallback; [Fallback_doc] can only be
                         the first result, and a cutter never starts with
                         [Exhausted] — end of input without a root element
                         is a parse error. *)
                      match Clip_shard.next_shard cutter with
                      | Error ds -> Error ds
                      | Ok Clip_shard.Exhausted -> assert false
                      | Ok (Clip_shard.Fallback_doc doc) ->
                        run_result ~ctx ?limits ~backend ~minimum_cardinality
                          ?plan ?repr ?steps_out ~mode:`Whole m doc
                      | Ok (Clip_shard.Shard first) -> (
                          let pending = ref (Some first) in
                          let produce () =
                            match !pending with
                            | Some n ->
                              pending := None;
                              Ok (Some n)
                            | None -> (
                                match Clip_shard.next_shard cutter with
                                | Error ds -> Error ds
                                | Ok (Clip_shard.Shard n) -> Ok (Some n)
                                | Ok Clip_shard.Exhausted -> Ok None
                                | Ok (Clip_shard.Fallback_doc _) ->
                                  assert false)
                          in
                          let merger =
                            Clip_shard.merger ~unify:cut.Clip_shard.unify
                          in
                          let steps = ref 0 in
                          let consume (out, s) =
                            steps := !steps + s;
                            Clip_shard.merge_into merger out
                          in
                          match
                            Clip_run.span ctx "execute" (fun () ->
                                Clip_par.stream_results ?jobs ?obs ~produce
                                  ~consume (fun ~obs shard ->
                                    eval_shard
                                      (module B)
                                      ?limits ~minimum_cardinality ?plan ?repr
                                      ~ctl ~obs ~query shard))
                          with
                          | Error ds -> Error ds
                          | Ok () -> (
                              (match steps_out with
                               | Some r -> r := !steps
                               | None -> ());
                              match Clip_shard.merged merger with
                              | Some doc -> Ok doc
                              | None -> assert false)))))))

let run_stream ?ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
    ?steps_out ?mode ?shard_bytes ?jobs m src =
  match
    run_stream_result ?ctx ?limits ?backend ?minimum_cardinality ?plan ?repr
      ?steps_out ?mode ?shard_bytes ?jobs m src
  with
  | Ok doc -> doc
  | Error ds -> raise (Clip_diag.Fail ds)

(* Every diagnostic for a mapping, in one pass: all validity issues
   (warnings included), then — when validity allows compiling — any
   compile- or XQuery-translation-stage errors. *)
let diagnose (m : Mapping.t) =
  let issues = List.map Compile.issue_to_diag (Validity.check m) in
  let later =
    if Clip_diag.has_errors issues then []
    else
      match Compile.to_tgd_unchecked_result m with
      | Error ds -> ds
      | Ok tgd ->
        (match To_xquery.translate_result ~target_root:m.target.root.name tgd with
         | Error ds -> ds
         | Ok _ -> [])
  in
  issues @ later

let run_traced ?ctx ?(minimum_cardinality = true) ?plan (m : Mapping.t) source =
  let ctx = resolve_ctx ctx in
  let s = session_for ctx source in
  let obs = Clip_run.counters ctx in
  let tgd = Clip_run.span ctx "compile" (fun () -> session_tgd ?obs s m) in
  Clip_run.span ctx "execute" (fun () ->
    Clip_tgd.Eval.run_traced ~minimum_cardinality ?plan
      ~ctl:(Clip_run.control ctx) ~session:s.stgd ?obs ~source
      ~target_root:m.target.root.name tgd)

(* EXPLAIN: compile (or translate) like a run would, then hand off to
   the backend's static plan renderer. Uses the same one-shot session
   memo as [run], so an explain right before or after a run over the
   same document shares its statistics instead of re-walking it. *)
let explain ?ctx ?(backend = `Tgd) ?plan ?mode
    ?(shard_bytes = default_shard_bytes) (m : Mapping.t) source =
  let ctx = resolve_ctx ctx in
  let s = session_for ctx source in
  let obs = Clip_run.counters ctx in
  let tgd = session_tgd ?obs s m in
  let base =
    match backend_module backend with
    | Backend (module B) -> B.explain ?obs ?plan s m tgd
  in
  (* The sharding note only appears when a mode was asked for, keeping
     the default EXPLAIN output (and its goldens) untouched. *)
  match mode with
  | None -> base
  | Some mode ->
    let d =
      decide ~mode ~minimum_cardinality:true ~shard_bytes m tgd source
    in
    let base =
      if base = "" || base.[String.length base - 1] = '\n' then base
      else base ^ "\n"
    in
    base ^ Clip_shard.decision_note d ^ "\n"

let explain_result ?ctx ?backend ?plan ?mode ?shard_bytes (m : Mapping.t)
    source =
  Clip_diag.guard (fun () -> explain ?ctx ?backend ?plan ?mode ?shard_bytes m source)

let xquery_text (m : Mapping.t) =
  let tgd = Compile.to_tgd m in
  Clip_xquery.Pretty.query_to_string
    (To_xquery.translate ~target_root:m.target.root.name tgd)

let tgd_text ?unicode (m : Mapping.t) =
  Clip_tgd.Pretty.to_string ?unicode (Compile.to_tgd m)
