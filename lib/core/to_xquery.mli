(** Translation of compiled nested tgds into XQuery (Sec. VI).

    Each (sub)mapping becomes one nested FLWOR expression: [for]
    clauses from the universal generators, a [where] clause from [C1],
    and a [return] clause constructing the principal target element
    with its value mappings. Minimum cardinality is realised by
    emitting [Completion] generators as constant tags {e wrapping} the
    FLWOR instead of inside its return (the paper's "for clauses pushed
    as far down as possible").

    Group nodes expand to the paper's grouping template: a [let]
    binding the filtered context as a sequence of tuple elements, one
    [distinct-values] dimension per grouping attribute, a [for] over
    the dimension values, a [let] re-selecting the current group, and a
    per-member re-binding of the outer variables for the submappings.

    Aggregates map to the native XQuery functions, their path argument
    rooted at the context variable (the context of aggregation). *)

exception Unsupported of string

(** [translate_result ~target_root tgd] — the full query: an element
    constructor for the target root enclosing the top mapping. Tgd
    shapes the fragment cannot express (e.g. non-equality target
    conditions) are reported as [CLIP-XQG-001] diagnostics. *)
val translate_result :
  target_root:string ->
  Clip_tgd.Tgd.t ->
  (Clip_xquery.Ast.expr, Clip_diag.t list) result

(** [translate ~target_root tgd] — like {!translate_result}.
    @raise Unsupported on tgd shapes the fragment cannot express. *)
val translate : target_root:string -> Clip_tgd.Tgd.t -> Clip_xquery.Ast.expr
