module Lexer = Clip_schema.Lexer
module Sdsl = Clip_schema.Dsl
module Path = Clip_schema.Path
module Tgd = Clip_tgd.Tgd

exception Syntax_error of { line : int; column : int; message : string }

let error_to_string = function
  | Syntax_error { line; column; message } ->
    Printf.sprintf "mapping syntax error at line %d, column %d: %s" line column message
  | e -> Sdsl.error_to_string e

type state = { mutable toks : Lexer.spanned list; mutable depth : int; max_depth : int }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false

let next st =
  let t = peek st in
  (match st.toks with
   | _ :: rest when t.token <> Lexer.Eof -> st.toks <- rest
   | _ -> ());
  t

let span_of_token (t : Lexer.spanned) =
  let width = max 1 (String.length (Lexer.token_to_string t.token)) in
  Clip_diag.span ~line:t.line ~col:t.column ~end_col:(t.column + width) ()

let fail_code code (t : Lexer.spanned) message =
  Clip_diag.fail (Clip_diag.error ~code ~span:(span_of_token t) message)

let fail t message = fail_code Clip_diag.Codes.mapping_syntax t message

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    fail_code Clip_diag.Codes.limit_recursion (peek st)
      (Printf.sprintf "mapping nesting exceeds the limit of %d" st.max_depth)

let leave st = st.depth <- st.depth - 1

let state_of ?(limits = Clip_diag.Limits.default) toks =
  { toks; depth = 0; max_depth = limits.Clip_diag.Limits.max_parser_recursion }

(* Raise the pre-diagnostics exceptions for the compatibility wrappers. *)
let raise_legacy (ds : Clip_diag.t list) =
  let d = List.hd ds in
  let line, column =
    match d.Clip_diag.span with
    | Some sp -> (sp.Clip_diag.line, sp.Clip_diag.col)
    | None -> (1, 1)
  in
  let message = d.Clip_diag.message in
  if String.equal d.Clip_diag.code Clip_diag.Codes.schema_lexical then
    raise (Lexer.Lex_error { line; column; message })
  else if
    String.equal d.Clip_diag.code Clip_diag.Codes.schema_syntax
    || String.equal d.Clip_diag.code Clip_diag.Codes.schema_invalid
  then raise (Sdsl.Syntax_error { line; column; message })
  else raise (Syntax_error { line; column; message })

let expect_sym st s =
  let t = next st in
  match t.token with
  | Lexer.Sym x when String.equal x s -> ()
  | tok -> fail t (Printf.sprintf "expected %S, found %s" s (Lexer.token_to_string tok))

let expect_ident st =
  let t = next st in
  match t.token with
  | Lexer.Ident s -> s
  | tok ->
    fail t (Printf.sprintf "expected an identifier, found %s" (Lexer.token_to_string tok))

let skip_semis st =
  while (peek st).token = Lexer.Sym ";" do
    ignore (next st)
  done

(* An absolute path: root.step.step... *)
let parse_path st =
  let t = peek st in
  let root = expect_ident st in
  let rec go acc =
    match (peek st).token with
    | Lexer.Sym "." ->
      ignore (next st);
      (match (peek st).token with
       | Lexer.Sym "@" ->
         ignore (next st);
         let name = expect_ident st in
         List.rev (Path.Attr name :: acc)
       | Lexer.Ident "value" ->
         ignore (next st);
         List.rev (Path.Value :: acc)
       | Lexer.Ident name ->
         ignore (next st);
         go (Path.Child name :: acc)
       | tok ->
         fail (peek st)
           (Printf.sprintf "expected a path step, found %s" (Lexer.token_to_string tok)))
    | _ -> List.rev acc
  in
  let steps = go [] in
  ignore t;
  Path.make root steps

(* Relative steps after a variable: $v.a.@b *)
let parse_var_steps st =
  expect_sym st "$";
  let var = expect_ident st in
  let rec go acc =
    match (peek st).token with
    | Lexer.Sym "." ->
      ignore (next st);
      (match (peek st).token with
       | Lexer.Sym "@" ->
         ignore (next st);
         let name = expect_ident st in
         List.rev (Path.Attr name :: acc)
       | Lexer.Ident "value" ->
         ignore (next st);
         List.rev (Path.Value :: acc)
       | Lexer.Ident name ->
         ignore (next st);
         go (Path.Child name :: acc)
       | tok ->
         fail (peek st)
           (Printf.sprintf "expected a path step, found %s" (Lexer.token_to_string tok)))
    | _ -> List.rev acc
  in
  (var, go [])

let parse_operand st =
  match (peek st).token with
  | Lexer.Sym "$" ->
    let var, steps = parse_var_steps st in
    Mapping.O_path (var, steps)
  | Lexer.Int_lit i ->
    ignore (next st);
    Mapping.O_const (Clip_xml.Atom.Int i)
  | Lexer.Float_lit f ->
    ignore (next st);
    Mapping.O_const (Clip_xml.Atom.Float f)
  | Lexer.String_lit s ->
    ignore (next st);
    Mapping.O_const (Clip_xml.Atom.String s)
  | Lexer.Ident ("true" | "false") ->
    let t = next st in
    (match t.token with
     | Lexer.Ident b -> Mapping.O_const (Clip_xml.Atom.Bool (bool_of_string b))
     | _ -> assert false)
  | tok ->
    fail (peek st)
      (Printf.sprintf "expected $var.path or a literal, found %s"
         (Lexer.token_to_string tok))

let parse_cmp_op st =
  let t = next st in
  match t.token with
  | Lexer.Sym "=" | Lexer.Sym "==" -> Tgd.Eq
  | Lexer.Sym "<>" | Lexer.Sym "!=" -> Tgd.Ne
  | Lexer.Sym "<" -> Tgd.Lt
  | Lexer.Sym "<=" -> Tgd.Le
  | Lexer.Sym ">" -> Tgd.Gt
  | Lexer.Sym ">=" -> Tgd.Ge
  | Lexer.Ident "in" -> Tgd.In
  | tok ->
    fail t (Printf.sprintf "expected a comparison operator, found %s"
              (Lexer.token_to_string tok))

let parse_predicates st =
  let rec go acc =
    let left = parse_operand st in
    let op = parse_cmp_op st in
    let right = parse_operand st in
    let acc = { Mapping.p_left = left; p_op = op; p_right = right } :: acc in
    match (peek st).token with
    | Lexer.Sym "," ->
      ignore (next st);
      go acc
    | _ -> List.rev acc
  in
  go []

let parse_inputs st =
  let rec go acc =
    let path = parse_path st in
    let var =
      match (peek st).token with
      | Lexer.Ident "as" ->
        ignore (next st);
        expect_sym st "$";
        Some (expect_ident st)
      | _ -> None
    in
    let acc = { Mapping.in_source = path; in_var = var } :: acc in
    match (peek st).token with
    | Lexer.Sym "," ->
      ignore (next st);
      go acc
    | _ -> List.rev acc
  in
  go []

let parse_group_keys st =
  let rec go acc =
    let var, steps = parse_var_steps st in
    let acc = (var, steps) :: acc in
    match (peek st).token with
    | Lexer.Sym "," ->
      ignore (next st);
      go acc
    | _ -> List.rev acc
  in
  go []

let agg_of_ident = Tgd.agg_kind_of_string

let rec parse_nodes st =
  skip_semis st;
  match (peek st).token with
  | Lexer.Ident (("node" | "group") as kw) ->
    ignore (next st);
    let is_group = String.equal kw "group" in
    (* optional label *)
    let id =
      match st.toks with
      | { token = Lexer.Ident id; _ } :: { token = Lexer.Sym ":"; _ } :: _ ->
        ignore (next st);
        ignore (next st);
        Some id
      | _ -> None
    in
    let inputs = parse_inputs st in
    let group_by =
      match (peek st).token with
      | Lexer.Ident "by" ->
        ignore (next st);
        parse_group_keys st
      | _ -> []
    in
    if is_group && group_by = [] then
      fail (peek st) "a group node needs a 'by' clause";
    let output =
      match (peek st).token with
      | Lexer.Sym "->" ->
        ignore (next st);
        Some (parse_path st)
      | _ -> None
    in
    let cond =
      match (peek st).token with
      | Lexer.Ident "where" ->
        ignore (next st);
        parse_predicates st
      | _ -> []
    in
    let children =
      match (peek st).token with
      | Lexer.Sym "{" ->
        enter st;
        ignore (next st);
        let children = parse_nodes st in
        expect_sym st "}";
        leave st;
        children
      | _ -> []
    in
    let node = Mapping.node ?id ?output ~cond ~group_by ~children inputs in
    node :: parse_nodes st
  | _ -> []

type mitem = M_node of Mapping.build_node | M_value of Mapping.value_mapping

let rec parse_mitems st =
  skip_semis st;
  match (peek st).token with
  | Lexer.Sym "}" -> []
  | Lexer.Ident ("node" | "group") ->
    let nodes = parse_nodes st in
    List.map (fun n -> M_node n) nodes @ parse_mitems st
  | Lexer.Ident "value" ->
    ignore (next st);
    let vm = parse_value_tail st in
    M_value vm :: parse_mitems st
  | tok ->
    fail (peek st)
      (Printf.sprintf "expected 'node', 'group' or 'value', found %s"
         (Lexer.token_to_string tok))

and parse_value_tail st =
  let fn, sources =
    match (peek st).token with
    | Lexer.Sym "<" ->
      (* <<agg>> path *)
      expect_sym st "<";
      expect_sym st "<";
      let name = expect_ident st in
      let kind =
        match agg_of_ident name with
        | Some k -> k
        | None -> fail (peek st) (Printf.sprintf "unknown aggregate %S" name)
      in
      expect_sym st ">";
      expect_sym st ">";
      let src = parse_path st in
      (Mapping.Aggregate kind, [ src ])
    | Lexer.Int_lit i ->
      ignore (next st);
      (Mapping.Constant (Clip_xml.Atom.Int i), [])
    | Lexer.Float_lit f ->
      ignore (next st);
      (Mapping.Constant (Clip_xml.Atom.Float f), [])
    | Lexer.String_lit s ->
      ignore (next st);
      (Mapping.Constant (Clip_xml.Atom.String s), [])
    | Lexer.Ident name when (match st.toks with
                             | _ :: { token = Lexer.Sym "("; _ } :: _ -> true
                             | _ -> false) ->
      (* scalar function application *)
      ignore (next st);
      expect_sym st "(";
      let rec args acc =
        let p = parse_path st in
        match (peek st).token with
        | Lexer.Sym "," ->
          ignore (next st);
          args (p :: acc)
        | _ -> List.rev (p :: acc)
      in
      let sources = args [] in
      expect_sym st ")";
      (Mapping.Scalar name, sources)
    | _ ->
      let src = parse_path st in
      (Mapping.Identity, [ src ])
  in
  expect_sym st "->";
  let target = parse_path st in
  Mapping.value ~fn sources target

let parse_mapping_block st ~source ~target =
  let t = next st in
  (match t.token with
   | Lexer.Ident "mapping" -> ()
   | tok ->
     fail t (Printf.sprintf "expected 'mapping', found %s" (Lexer.token_to_string tok)));
  expect_sym st "{";
  let items = parse_mitems st in
  expect_sym st "}";
  let roots = List.filter_map (function M_node n -> Some n | M_value _ -> None) items in
  let values =
    List.filter_map (function M_value v -> Some v | M_node _ -> None) items
  in
  Mapping.make ~source ~target ~roots values

let tokens_exn src =
  match Lexer.tokenize_result src with
  | Ok toks -> toks
  | Error ds -> Clip_diag.fail_all ds

let parse_result ?limits src =
  Clip_diag.guard (fun () ->
      let toks = tokens_exn src in
      let source, toks = Sdsl.parse_tokens ?limits toks in
      let target, toks = Sdsl.parse_tokens ?limits toks in
      let st = state_of ?limits toks in
      let m = parse_mapping_block st ~source ~target in
      skip_semis st;
      (match (peek st).token with
       | Lexer.Eof -> ()
       | tok ->
         fail (peek st)
           (Printf.sprintf "trailing input after the mapping: %s"
              (Lexer.token_to_string tok)));
      m)

let parse ?limits src =
  match parse_result ?limits src with Ok m -> m | Error ds -> raise_legacy ds

let parse_mapping_result ?limits ~source ~target src =
  Clip_diag.guard (fun () ->
      let st = state_of ?limits (tokens_exn src) in
      let m = parse_mapping_block st ~source ~target in
      (match (peek st).token with
       | Lexer.Eof -> ()
       | tok ->
         fail (peek st)
           (Printf.sprintf "trailing input after the mapping: %s"
              (Lexer.token_to_string tok)));
      m)

let parse_mapping ?limits ~source ~target src =
  match parse_mapping_result ?limits ~source ~target src with
  | Ok m -> m
  | Error ds -> raise_legacy ds

(* --- Rendering ----------------------------------------------------------- *)

let atom_literal (a : Clip_xml.Atom.t) =
  match a with
  | Clip_xml.Atom.String s -> Printf.sprintf "%S" s
  | a -> Clip_xml.Atom.to_string a

let operand_to_string = function
  | Mapping.O_path (v, steps) ->
    String.concat "." (("$" ^ v) :: List.map Path.step_to_string steps)
  | Mapping.O_const a -> atom_literal a

let to_string (m : Mapping.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (Sdsl.to_string m.source);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Sdsl.to_string m.target);
  Buffer.add_string buf "\nmapping {\n";
  let rec node ind (n : Mapping.build_node) =
    let pad = String.make ind ' ' in
    let kw = if n.bn_group_by = [] then "node" else "group" in
    let inputs =
      String.concat ", "
        (List.map
           (fun (i : Mapping.input) ->
             Path.to_string i.in_source
             ^ match i.in_var with Some v -> " as $" ^ v | None -> "")
           n.bn_inputs)
    in
    let by =
      match n.bn_group_by with
      | [] -> ""
      | keys ->
        " by "
        ^ String.concat ", "
            (List.map
               (fun (v, steps) ->
                 String.concat "." (("$" ^ v) :: List.map Path.step_to_string steps))
               keys)
    in
    let out =
      match n.bn_output with
      | Some p -> " -> " ^ Path.to_string p
      | None -> ""
    in
    let where =
      match n.bn_cond with
      | [] -> ""
      | ps ->
        " where "
        ^ String.concat ", "
            (List.map
               (fun (p : Mapping.predicate) ->
                 Printf.sprintf "%s %s %s" (operand_to_string p.p_left)
                   (Tgd.cmp_op_to_string p.p_op)
                   (operand_to_string p.p_right))
               ps)
    in
    add "%s%s %s: %s%s%s%s" pad kw n.bn_id inputs by out where;
    if n.bn_children = [] then add "\n"
    else begin
      add " {\n";
      List.iter (node (ind + 2)) n.bn_children;
      add "%s}\n" pad
    end
  in
  List.iter (node 2) m.roots;
  List.iter
    (fun (vm : Mapping.value_mapping) ->
      let src =
        match vm.vm_fn, vm.vm_sources with
        | Mapping.Identity, [ p ] -> Path.to_string p
        | Mapping.Constant a, [] -> atom_literal a
        | Mapping.Scalar name, ps ->
          Printf.sprintf "%s(%s)" name (String.concat ", " (List.map Path.to_string ps))
        | Mapping.Aggregate kind, [ p ] ->
          Printf.sprintf "<<%s>> %s" (Tgd.agg_kind_to_string kind) (Path.to_string p)
        | _ -> "<malformed>"
      in
      add "  value %s -> %s\n" src (Path.to_string vm.vm_target))
    m.values;
  add "}\n";
  Buffer.contents buf
