(** End-to-end execution of a Clip mapping over a source instance.

    Four backends implement the same semantics:
    - [`Tgd] — compile to a nested tgd and run the {!Clip_tgd.Eval}
      data-exchange engine directly;
    - [`Rel] — when the mapping's source schema is relational-shaped
      (the {!Clip_schema.Relational} encoding: tables under a bare
      root), compile the same tgd to a {!Clip_rel} program and run it
      over an in-memory column store with hash joins; rejects nested
      sources statically with [CLIP-REL-003];
    - [`Xquery] — compile to a tgd, generate the XQuery of Sec. VI with
      {!To_xquery}, and evaluate it with {!Clip_xquery.Eval};
    - [`Xquery_text] — like [`Xquery], but round-tripping the query
      through its concrete syntax ({!Clip_xquery.Pretty} then
      {!Clip_xquery.Parser}): exactly what an external XQuery processor
      would receive.

    The test suite asserts all backends agree on every scenario; the
    benchmark harness compares their cost.

    Orthogonally to the backend, [?plan] selects the physical
    evaluation strategy: [`Auto] (the default) runs through the shared
    {!Clip_plan} layer with cost-based join selection (from
    {!Clip_xml.Stats} cardinalities) and adaptive tag indexing;
    [`Indexed] forces every eligible hash join and the index
    unconditionally; [`Naive] runs the original interpreters, kept as
    differential-testing oracles. All three produce identical target
    instances. [?steps_out], when given, receives the number of
    evaluation-budget steps consumed.

    Also orthogonally, [?repr] selects the document representation
    ({!Clip_xml.Doc.repr}, default [`Tree]): [`Columnar] converts the
    source to the struct-of-arrays {!Clip_xml.Doc} — cached per
    document by a {!Session} — and both backends then run child steps
    as id-vector probes and physical plans through the vectorized
    {!Clip_plan.execute_batch}; [`Auto] picks columnar when the
    document is large enough to repay conversion. Every representation
    produces byte-identical target instances.

    For repeated runs against one source instance, a {!Session}
    amortises the per-document and per-mapping analysis — compile,
    translation, statistics, tag index, physical plans — across
    runs. *)

type backend = [ `Tgd | `Xquery | `Xquery_text | `Rel ]

(** How one (large) source document is executed:
    - [`Whole] (the default everywhere except {!run_stream_result}) —
      the sequential whole-document evaluation, unchanged; the oracle
      every other mode must match byte for byte;
    - [`Sharded] — when {!Clip_shard.plan} designates a safe cut and
      the document holds at least two shard units, cut the document at
      the topmost repeated element the mapping quantifies over,
      evaluate the shards on [?jobs] domains through the unchanged
      backend executors (one backend session per shard, tgd and query
      compiled once), and merge the per-shard targets into exactly the
      whole-document output. Join-bearing and otherwise unsafe mappings
      fall back to [`Whole] (EXPLAIN says why, see {!explain});
    - [`Auto] — [`Sharded], but only when the document overflows one
      [?shard_bytes] budget, so small documents keep the zero-overhead
      whole path.

    Sharded runs preserve outputs, diagnostics (the lowest shard's
    failure, i.e. the first the sequential run would hit) and counter
    totals; only the per-shard step budget differs ([?limits] bounds
    each shard evaluation, not their sum). *)
type mode = [ `Whole | `Sharded | `Auto ]

(** The default shard byte budget (1 MiB of estimated serialisation
    per shard). *)
val default_shard_bytes : int

(** A per-source-document cache: the backends' sessions (tag index,
    instance statistics, compiled physical plans) plus this layer's
    compile caches (mapping to tgd, tgd to XQuery). Create one per
    document and hand every run to it; repeated runs of the same
    mapping pay analysis once and only re-execute. Sessions are not
    thread-safe.

    {b Document identity and mutation.} A session pins the exact
    document {e value} passed to {!create}: every cached artifact
    (statistics, tag index, plan cardinality estimates) describes that
    value, and reuse is keyed by {e physical} identity ([==]).
    {!Clip_xml.Node.t} values are immutable, so a document can never
    change under a live session — "mutating" a document means building
    a new [Node.t], and the correct move is a {b new session} for it.
    Both safety nets are automatic: a session handed a run against a
    different (even structurally equal) document simply bypasses its
    per-document caches, and a rebuilt document is a new allocation,
    so it can never be mistaken for the pinned one and served stale
    statistics or plans. What a session does {e not} do is notice that
    the new document is "the same file, edited" — cross-document cache
    reuse is deliberately out of scope.

    Sessions are single-domain values: for parallel evaluation give
    each task its own session (see {!Clip_par}); never share one
    across domains. *)
module Session : sig
  type t

  val create : Clip_xml.Node.t -> t
  val source : t -> Clip_xml.Node.t

  (** [run session mapping] — like {!val-run} over the session's
      document, reusing every cached artifact. [?ctx] supplies the
      execution context whose counter sink and tracer observe the run
      (default: a fresh silent context). *)
  val run :
    ?ctx:Clip_run.t ->
    ?backend:backend ->
    ?minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    ?mode:mode ->
    ?shard_bytes:int ->
    ?jobs:int ->
    t ->
    Mapping.t ->
    Clip_xml.Node.t

  (** [run_result session mapping] — like {!val-run_result} over the
      session's document. *)
  val run_result :
    ?ctx:Clip_run.t ->
    ?limits:Clip_diag.Limits.t ->
    ?backend:backend ->
    ?minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    ?mode:mode ->
    ?shard_bytes:int ->
    ?jobs:int ->
    t ->
    Mapping.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result
end

(** The backend contract, made explicit: everything the engine needs
    from an execution backend in one signature. A backend provides a
    shard-ready compiled form ([query], prepared once per run and
    shared by every shard), whole-document evaluation through the
    {!Session} caches ([eval]/[eval_result] — phase spans, counters,
    cancellation and the step budget flow through the [ctx]), per-shard
    evaluation against fresh backend state ([eval_shard]), and the
    static plan renderer behind [clip explain] ([explain]).

    Engine dispatch is a lookup in the {!backends} table of first-class
    modules, so adding a backend means writing one module satisfying
    this signature and appending one row — no new match arms. The
    existing differential suites pin that the tgd and XQuery backends
    behave byte-identically through this interface to the former
    hard-wired dispatch. *)
module type BACKEND = sig
  type query

  val id : backend
  val name : string

  (** One clause for the [--backend] option's documentation. *)
  val doc : string

  val prepare :
    ?obs:Clip_obs.Counters.t ->
    ctx:Clip_run.t ->
    ?session:Session.t ->
    mapping:Mapping.t ->
    Clip_tgd.Tgd.t ->
    query

  val prepare_result :
    ?limits:Clip_diag.Limits.t ->
    ?obs:Clip_obs.Counters.t ->
    ctx:Clip_run.t ->
    ?session:Session.t ->
    mapping:Mapping.t ->
    Clip_tgd.Tgd.t ->
    (query, Clip_diag.t list) result

  val eval :
    ctx:Clip_run.t ->
    minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    Session.t ->
    Mapping.t ->
    Clip_tgd.Tgd.t ->
    Clip_xml.Node.t

  val eval_result :
    ?limits:Clip_diag.Limits.t ->
    ctx:Clip_run.t ->
    minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ?steps_out:int ref ->
    Session.t ->
    Mapping.t ->
    Clip_tgd.Tgd.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result

  val eval_shard :
    ?limits:Clip_diag.Limits.t ->
    minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?repr:Clip_xml.Doc.repr ->
    ctl:Clip_run.Control.t ->
    obs:Clip_obs.Counters.t option ->
    steps_out:int ref ->
    query ->
    Clip_xml.Node.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result

  val explain :
    ?obs:Clip_obs.Counters.t ->
    ?plan:Clip_plan.mode ->
    Session.t ->
    Mapping.t ->
    Clip_tgd.Tgd.t ->
    string
end

(** A backend packed with its (existential) query type — the row type
    of the registry. *)
type packed = Backend : (module BACKEND with type query = 'q) -> packed

(** The registry: every execution backend, in the order the CLI lists
    them. *)
val backends : packed list

(** [backend_module id] — the registry row implementing [id]. *)
val backend_module : backend -> packed

(** [backend_of_name name] — the backend whose CLI name is [name]
    ([None] for unknown names; the CLI derives its [--backend] parser
    from this registry). *)
val backend_of_name : string -> packed option

(** The CLI name of every registered backend, paired with its
    identifier — the alternatives of the [--backend] option. *)
val backend_names : (string * backend) list

(** [run ?backend ?minimum_cardinality mapping source] — the target
    instance. Default backend [`Tgd]; default minimum-cardinality on;
    default plan [`Auto]. [?ctx] supplies the execution context —
    counter sink, tracer, and the one-shot session memo that lets
    repeated runs over the same document under one context reuse its
    analysis; without it, the per-domain {!Clip_run.ambient} shim is
    used (silent, domain-local).
    @raise Compile.Invalid when the mapping is invalid
    @raise Clip_tgd.Eval.Error / Clip_xquery.Eval.Error on dynamic
    failures. *)
val run :
  ?ctx:Clip_run.t ->
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?steps_out:int ref ->
  ?mode:mode ->
  ?shard_bytes:int ->
  ?jobs:int ->
  Mapping.t ->
  Clip_xml.Node.t ->
  Clip_xml.Node.t

(** [run_result mapping source] — like {!run}, reporting every failure
    stage as diagnostics instead of exceptions: [CLIP-VAL-*] validity
    errors, [CLIP-CMP-*] compile errors, [CLIP-XQG-001] translation
    gaps, [CLIP-TGD-001]/[CLIP-XQ-*] dynamic errors and [CLIP-LIM-004]
    exhausted step budgets. *)
val run_result :
  ?ctx:Clip_run.t ->
  ?limits:Clip_diag.Limits.t ->
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?steps_out:int ref ->
  ?mode:mode ->
  ?shard_bytes:int ->
  ?jobs:int ->
  Mapping.t ->
  Clip_xml.Node.t ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run_staged_result mappings source] — run a non-empty chain of
    mappings stage by stage, the output document of each stage feeding
    the next. All stages share one execution context (counters, tracer,
    deadline, cancellation) and the same engine options; [?steps_out]
    receives the total across stages. The first failing stage aborts
    the chain with its diagnostics. This is the fallback execution
    strategy of {!Clip_algebra.Pipeline} when composition is rejected.
    @raise Invalid_argument on an empty chain. *)
val run_staged_result :
  ?ctx:Clip_run.t ->
  ?limits:Clip_diag.Limits.t ->
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?steps_out:int ref ->
  ?mode:mode ->
  ?shard_bytes:int ->
  ?jobs:int ->
  Mapping.t list ->
  Clip_xml.Node.t ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run_stream_result mapping stream] — run a mapping over a byte
    stream ({!Clip_xml.Stream.source}, e.g. {!Clip_xml.Stream.of_channel})
    instead of a materialised document.

    Default [?mode] is [`Auto]. When the resolved decision is a safe
    cut whose shards need no document prologue, the run is {e fully
    streaming}: the {!Clip_shard.cutter} materialises one shard at a
    time straight off the byte feed, [?jobs] domains evaluate shards
    through {!Clip_par.stream_results}, and the merger folds outputs
    strictly in document order — peak residency is the in-flight
    window of shards plus the merged target, never the source tree.
    Every other case (mode [`Whole], unsafe mapping, prologue-bearing
    shards, a root that does not open the expected container chain)
    materialises the document first and proceeds exactly as
    {!run_result} on it.

    Output, diagnostics and counters are identical to parsing the same
    bytes and calling {!run_result} — the input-size limit included:
    as documented in {!Clip_xml.Stream}, an oversized feed reports
    [CLIP-LIM-001] even when an early chunk is syntactically broken,
    exactly as the up-front check of the whole-string parse would. *)
val run_stream_result :
  ?ctx:Clip_run.t ->
  ?limits:Clip_diag.Limits.t ->
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?steps_out:int ref ->
  ?mode:mode ->
  ?shard_bytes:int ->
  ?jobs:int ->
  Mapping.t ->
  Clip_xml.Stream.source ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run_stream mapping stream] — {!run_stream_result}, raising
    {!Clip_diag.Fail} on any failure. *)
val run_stream :
  ?ctx:Clip_run.t ->
  ?limits:Clip_diag.Limits.t ->
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?steps_out:int ref ->
  ?mode:mode ->
  ?shard_bytes:int ->
  ?jobs:int ->
  Mapping.t ->
  Clip_xml.Stream.source ->
  Clip_xml.Node.t

(** [explain ?backend ?plan mapping source] — a static, deterministic
    EXPLAIN of how a run with the same arguments would execute: the
    resolved strategy (e.g. [`Auto] dropping to the direct interpreter
    below the planning threshold), then per source clause the chosen
    physical step (nested-loop scan, pushed-down filter, hash join)
    with the cost-model inputs that justified it — estimated
    outer/inner cardinalities, {!Clip_plan.join_pays} verdicts,
    threshold triggers. Nothing is executed and no timings appear, so
    output is golden-testable.

    When [?mode] is given, a final [sharding: ...] line states the
    resolved sharding decision for this document — the designated cut,
    or the whole-document fallback with its reason. Without [?mode]
    the output is unchanged.
    @raise Compile.Invalid when the mapping is invalid. *)
val explain :
  ?ctx:Clip_run.t ->
  ?backend:backend ->
  ?plan:Clip_plan.mode ->
  ?mode:mode ->
  ?shard_bytes:int ->
  Mapping.t ->
  Clip_xml.Node.t ->
  string

(** [explain_result mapping source] — like {!explain}, reporting
    failures as diagnostics. *)
val explain_result :
  ?ctx:Clip_run.t ->
  ?backend:backend ->
  ?plan:Clip_plan.mode ->
  ?mode:mode ->
  ?shard_bytes:int ->
  Mapping.t ->
  Clip_xml.Node.t ->
  (string, Clip_diag.t list) result

(** [diagnose mapping] — every diagnostic for a mapping in one pass:
    all validity issues (warnings included) and, when the mapping is
    valid enough to compile, any compile- or translation-stage
    errors. Empty means clean. *)
val diagnose : Mapping.t -> Clip_diag.t list

(** [run_traced mapping source] — run on the tgd backend and also
    return instance-level lineage: which source elements each created
    target element came from (see {!Clip_tgd.Eval.run_traced}). *)
val run_traced :
  ?ctx:Clip_run.t ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  Mapping.t ->
  Clip_xml.Node.t ->
  Clip_xml.Node.t * Clip_tgd.Eval.trace_entry list

(** The generated XQuery text for a mapping (Sec. VI output). *)
val xquery_text : Mapping.t -> string

(** The compiled nested tgd in the paper's notation (Sec. IV output). *)
val tgd_text : ?unicode:bool -> Mapping.t -> string
