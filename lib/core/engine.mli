(** End-to-end execution of a Clip mapping over a source instance.

    Three backends implement the same semantics:
    - [`Tgd] — compile to a nested tgd and run the {!Clip_tgd.Eval}
      data-exchange engine directly;
    - [`Xquery] — compile to a tgd, generate the XQuery of Sec. VI with
      {!To_xquery}, and evaluate it with {!Clip_xquery.Eval};
    - [`Xquery_text] — like [`Xquery], but round-tripping the query
      through its concrete syntax ({!Clip_xquery.Pretty} then
      {!Clip_xquery.Parser}): exactly what an external XQuery processor
      would receive.

    The test suite asserts all backends agree on every scenario; the
    benchmark harness compares their cost.

    Orthogonally to the backend, [?plan] selects the physical
    evaluation strategy: [`Auto] (the default) runs through the shared
    {!Clip_plan} layer with cost-based join selection (from
    {!Clip_xml.Stats} cardinalities) and adaptive tag indexing;
    [`Indexed] forces every eligible hash join and the index
    unconditionally; [`Naive] runs the original interpreters, kept as
    differential-testing oracles. All three produce identical target
    instances. [?steps_out], when given, receives the number of
    evaluation-budget steps consumed.

    For repeated runs against one source instance, a {!Session}
    amortises the per-document and per-mapping analysis — compile,
    translation, statistics, tag index, physical plans — across
    runs. *)

type backend = [ `Tgd | `Xquery | `Xquery_text ]

(** A per-source-document cache: the backends' sessions (tag index,
    instance statistics, compiled physical plans) plus this layer's
    compile caches (mapping to tgd, tgd to XQuery). Create one per
    document and hand every run to it; repeated runs of the same
    mapping pay analysis once and only re-execute. Sessions are not
    thread-safe. *)
module Session : sig
  type t

  val create : Clip_xml.Node.t -> t
  val source : t -> Clip_xml.Node.t

  (** [run session mapping] — like {!val-run} over the session's
      document, reusing every cached artifact. *)
  val run :
    ?backend:backend ->
    ?minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?steps_out:int ref ->
    t ->
    Mapping.t ->
    Clip_xml.Node.t

  (** [run_result session mapping] — like {!val-run_result} over the
      session's document. *)
  val run_result :
    ?limits:Clip_diag.Limits.t ->
    ?backend:backend ->
    ?minimum_cardinality:bool ->
    ?plan:Clip_plan.mode ->
    ?steps_out:int ref ->
    t ->
    Mapping.t ->
    (Clip_xml.Node.t, Clip_diag.t list) result
end

(** [run ?backend ?minimum_cardinality mapping source] — the target
    instance. Default backend [`Tgd]; default minimum-cardinality on;
    default plan [`Auto].
    @raise Compile.Invalid when the mapping is invalid
    @raise Clip_tgd.Eval.Error / Clip_xquery.Eval.Error on dynamic
    failures. *)
val run :
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?steps_out:int ref ->
  Mapping.t ->
  Clip_xml.Node.t ->
  Clip_xml.Node.t

(** [run_result mapping source] — like {!run}, reporting every failure
    stage as diagnostics instead of exceptions: [CLIP-VAL-*] validity
    errors, [CLIP-CMP-*] compile errors, [CLIP-XQG-001] translation
    gaps, [CLIP-TGD-001]/[CLIP-XQ-*] dynamic errors and [CLIP-LIM-004]
    exhausted step budgets. *)
val run_result :
  ?limits:Clip_diag.Limits.t ->
  ?backend:backend ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?steps_out:int ref ->
  Mapping.t ->
  Clip_xml.Node.t ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [diagnose mapping] — every diagnostic for a mapping in one pass:
    all validity issues (warnings included) and, when the mapping is
    valid enough to compile, any compile- or translation-stage
    errors. Empty means clean. *)
val diagnose : Mapping.t -> Clip_diag.t list

(** [run_traced mapping source] — run on the tgd backend and also
    return instance-level lineage: which source elements each created
    target element came from (see {!Clip_tgd.Eval.run_traced}). *)
val run_traced :
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  Mapping.t ->
  Clip_xml.Node.t ->
  Clip_xml.Node.t * Clip_tgd.Eval.trace_entry list

(** The generated XQuery text for a mapping (Sec. VI output). *)
val xquery_text : Mapping.t -> string

(** The compiled nested tgd in the paper's notation (Sec. IV output). *)
val tgd_text : ?unicode:bool -> Mapping.t -> string
