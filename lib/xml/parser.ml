exception Parse_error of { line : int; column : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
  mutable depth : int; (* current element-nesting depth *)
  limits : Clip_diag.Limits.t;
}

let here st =
  Clip_diag.span ~offset:st.pos ~line:st.line ~col:(st.pos - st.bol + 1) ()

let error_at ?(code = Clip_diag.Codes.xml_syntax) ?hints st message =
  Clip_diag.fail (Clip_diag.error ~span:(here st) ?hints ~code message)

let error st message = error_at st message

let error_to_string = function
  | Parse_error { line; column; message } ->
    Printf.sprintf "XML parse error at line %d, column %d: %s" line column message
  | e -> Printexc.to_string e

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if peek st = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else error st (Printf.sprintf "expected %S" s)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let decode_entities st s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> error st "unterminated entity reference"
      | Some j ->
        let ent = String.sub s (!i + 1) (j - !i - 1) in
        let repl =
          match ent with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ ->
            if String.length ent > 1 && ent.[0] = '#' then
              let code =
                if ent.[1] = 'x' || ent.[1] = 'X' then
                  int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
                else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
              in
              match code with
              | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
              | Some _ | None -> error st ("unsupported character reference &" ^ ent ^ ";")
            else error st ("unknown entity &" ^ ent ^ ";")
        in
        Buffer.add_string buf repl;
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let parse_quoted st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected a quoted value";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    advance st
  done;
  if eof st then error st "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  decode_entities st raw

let skip_comment st =
  expect st "<!--";
  let rec loop () =
    if eof st then error st "unterminated comment"
    else if looking_at st "-->" then expect st "-->"
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let rec skip_misc st =
  skip_spaces st;
  if looking_at st "<!--" then begin
    skip_comment st;
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    (* skip to the matching '>' (internal subsets in brackets included) *)
    let depth = ref 0 in
    let rec loop () =
      if eof st then error st "unterminated DOCTYPE"
      else begin
        (match peek st with
         | '[' -> incr depth
         | ']' -> decr depth
         | '>' when !depth = 0 ->
           advance st;
           raise Exit
         | _ -> ());
        advance st;
        loop ()
      end
    in
    (try loop () with Exit -> ());
    skip_misc st
  end
  else if looking_at st "<?" then begin
    let rec loop () =
      if eof st then error st "unterminated processing instruction"
      else if looking_at st "?>" then expect st "?>"
      else begin
        advance st;
        loop ()
      end
    in
    loop ();
    skip_misc st
  end

let parse_attrs st =
  let rec loop acc =
    skip_spaces st;
    let c = peek st in
    if c = '>' || c = '/' || eof st then List.rev acc
    else
      let name = parse_name st in
      skip_spaces st;
      expect st "=";
      skip_spaces st;
      let value = parse_quoted st in
      loop ((name, Atom.of_string value) :: acc)
  in
  loop []

let rec parse_element st =
  st.depth <- st.depth + 1;
  if st.depth > st.limits.Clip_diag.Limits.max_xml_depth then
    error_at st ~code:Clip_diag.Codes.limit_xml_depth
      ~hints:[ "raise Limits.max_xml_depth to accept deeper documents" ]
      (Printf.sprintf "element nesting exceeds the limit of %d"
         st.limits.Clip_diag.Limits.max_xml_depth);
  let node = parse_element_guarded st in
  st.depth <- st.depth - 1;
  node

and parse_element_guarded st =
  expect st "<";
  let tagname = parse_name st in
  let attrs = parse_attrs st in
  skip_spaces st;
  if looking_at st "/>" then begin
    expect st "/>";
    Node.elem ~attrs tagname []
  end
  else begin
    expect st ">";
    let children = parse_content st tagname in
    Node.elem ~attrs tagname children
  end

and parse_content st tagname =
  let buf = Buffer.create 16 in
  let flush_text acc =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if String.for_all is_space s then acc
    else Node.text (Atom.of_string (decode_entities st (String.trim s))) :: acc
  in
  let rec loop acc =
    if eof st then error st ("unterminated element <" ^ tagname ^ ">")
    else if looking_at st "</" then begin
      let acc = flush_text acc in
      expect st "</";
      let closing = parse_name st in
      skip_spaces st;
      expect st ">";
      if not (String.equal closing tagname) then
        error st
          (Printf.sprintf "mismatched closing tag: expected </%s>, found </%s>"
             tagname closing);
      List.rev acc
    end
    else if looking_at st "<!--" then begin
      let acc = flush_text acc in
      skip_comment st;
      loop acc
    end
    else if looking_at st "<![CDATA[" then begin
      (* CDATA contributes literal text, no entity decoding *)
      expect st "<![CDATA[";
      let start = st.pos in
      while (not (eof st)) && not (looking_at st "]]>") do
        advance st
      done;
      if eof st then error st "unterminated CDATA section";
      let raw = String.sub st.src start (st.pos - start) in
      expect st "]]>";
      loop (Node.text (Atom.String raw) :: flush_text acc)
    end
    else if peek st = '<' then begin
      let acc = flush_text acc in
      loop (parse_element st :: acc)
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop acc
    end
  in
  loop []

let parse_string_result ?(limits = Clip_diag.Limits.default) s =
  Clip_diag.guard (fun () ->
      (* Fault boundary: inside the guard, so an injected parser fault
         escapes as a structured [Error] like any syntax error. *)
      Clip_fault.hit Clip_fault.Site.xml_parse;
      let st = { src = s; pos = 0; line = 1; bol = 0; depth = 0; limits } in
      if String.length s > limits.Clip_diag.Limits.max_input_bytes then
        error_at st ~code:Clip_diag.Codes.limit_input_bytes
          ~hints:[ "raise Limits.max_input_bytes to accept larger documents" ]
          (Printf.sprintf "input is %d bytes, larger than the limit of %d"
             (String.length s) limits.Clip_diag.Limits.max_input_bytes);
      skip_misc st;
      if eof st then error st "empty document";
      let root = parse_element st in
      skip_misc st;
      if not (eof st) then error st "trailing content after the root element";
      root)

let parse_string ?limits s =
  match parse_string_result ?limits s with
  | Ok root -> root
  | Error ds ->
    let d = List.hd ds in
    let line, column =
      match d.Clip_diag.span with
      | Some sp -> (sp.Clip_diag.line, sp.Clip_diag.col)
      | None -> (1, 1)
    in
    raise (Parse_error { line; column; message = d.Clip_diag.message })

let parse_string_opt ?limits s =
  match parse_string_result ?limits s with Ok root -> Some root | Error _ -> None
