(** One-pass instance statistics: node/element counts, per-tag
    cardinalities, depth and maximum fan-out.

    The adaptive planner prices generator chains with these numbers —
    the estimated cardinality of a [Child] step is the step tag's
    count divided by its parent tag's count. Collect once per document
    (a session caches the result across runs). *)

type t

(** [collect doc] — one preorder walk over [doc]. *)
val collect : Node.t -> t

(** [collect_doc doc] — the columnar variant: one forward array sweep
    over a converted {!Doc} (preorder ids resolve depth and fan-out in
    the same pass). Agrees exactly with {!collect} on the boxed tree
    the doc was converted from. *)
val collect_doc : Doc.t -> t

(** [tag_count t sym] — number of elements tagged [sym]; 0 when the
    tag does not occur. *)
val tag_count : t -> Symbol.t -> int

(** Total nodes, counted like {!Node.size} (elements + attributes +
    texts). *)
val node_count : t -> int

val element_count : t -> int
val depth : t -> int

(** Most element children under any single element. *)
val max_fanout : t -> int

val pp : Format.formatter -> t -> unit
