(** A global element-tag symbol table: tags interned into dense ints.

    Hot paths (child scans, the tag index, statistics, plan keys)
    compare interned symbols with an int equality instead of hashing
    or walking strings. The table is process-wide and append-only — a
    symbol never changes meaning — so symbols may be stored inside
    immutable nodes and inside caches that outlive a single run.

    The table is domain-safe: the current contents are one immutable
    snapshot published atomically, so lookups and interning hits are
    lock-free from any domain; only the first sight of a fresh tag
    takes a mutex to publish a new snapshot. Symbols interned on one
    domain are valid on every other. *)

type t = private int

(** [intern s] — the symbol of tag [s]; assigns the next dense id on
    first sight. *)
val intern : string -> t

(** [name sym] — the tag string the symbol was interned from.
    @raise Invalid_argument on an id that was never assigned. *)
val name : t -> string

(** Number of symbols interned so far (also the next fresh id —
    usable as the size of a dense per-symbol array). *)
val interned : unit -> int

(** [of_int i] — the symbol with dense id [i], for columnar stores
    ({!Doc}) that keep symbols in plain int arrays alongside non-symbol
    sentinels. Inverse of the [(sym :> int)] coercion.
    @raise Invalid_argument on an id that was never assigned. *)
val of_int : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
