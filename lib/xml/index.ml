(* A per-document tag index.

   Makes [Child tag] path steps O(matches) instead of O(children) by
   memoising a children-by-tag grouping per element, keyed by the
   element's hash-consed allocation id ([Node.element.id], an O(1)
   exact hash under physical equality). Descendant tables are memoised
   the same way. Tags are interned symbols ({!Symbol}), so every
   grouping and lookup compares ints, never strings.

   The index is entirely lazy: creation is O(1), and an element's
   children are grouped the first time it is probed. Laziness matters
   because the index lives for one engine run — or, held in a session,
   for many runs — and many runs (pure value mappings, small
   documents) never probe the same element twice; an eager
   whole-document build would cost more than it saves. It also means
   the index answers for {e any} element — nodes of the source
   document and nodes constructed during evaluation alike — so callers
   need no foreign-element fallback. Memoisation is sound because
   nodes are immutable, allocation ids are never reused, and symbols
   never change meaning. *)

module Tbl = Hashtbl.Make (struct
  type t = Node.element

  let equal = ( == )
  let hash (e : Node.element) = e.Node.id
end)

type t = {
  children : (Symbol.t * Node.t list) list Tbl.t; (* document order per tag *)
  descendants : (int * Symbol.t, Node.t list) Hashtbl.t;
}

let build _doc =
  (* Fault boundary: callers hold the index in resettable memo slots,
     so a failed build is retried cleanly (never a poisoned lazy). *)
  Clip_fault.hit Clip_fault.Site.index_build;
  { children = Tbl.create 256; descendants = Hashtbl.create 16 }

(* Elements with few children are scanned directly, unmemoised: the
   scan is bounded by the threshold, and skipping the grouping keeps
   single-visit runs from paying for an index they never reuse. Only
   wide elements (large fan-out, where O(children) per probe hurts)
   are grouped. *)
let small = 8

let rec shorter_than l n =
  n > 0 && match l with [] -> true | _ :: tl -> shorter_than tl (n - 1)

let scan_children e sym =
  List.filter
    (function
      | Node.Element ce -> Symbol.equal ce.Node.sym sym
      | Node.Text _ -> false)
    e.Node.children

(* Symbols are immediate ints, so [assq] physical equality coincides
   with symbol equality — assoc hits are pointer compares. *)
let rec assq_opt sym = function
  | [] -> None
  | (s, nodes) :: rest -> if Symbol.equal s sym then Some nodes else assq_opt sym rest

let children_by_tag ?obs t e sym =
  Clip_obs.index_probe obs;
  match Tbl.find_opt t.children e with
  | Some groups ->
    Clip_obs.index_hit obs;
    (match assq_opt sym groups with Some nodes -> nodes | None -> [])
  | None when shorter_than e.Node.children small -> scan_children e sym
  | None ->
    (* Group the element's children by tag, document order, in one
       pass; the per-element tag variety is small in schema-shaped
       documents, so assoc lists beat per-element hash tables. *)
    let by_tag = ref [] in
    List.iter
      (fun c ->
        match c with
        | Node.Element ce ->
          (match assq_opt ce.Node.sym !by_tag with
           | Some cur -> cur := c :: !cur
           | None -> by_tag := (ce.Node.sym, ref [ c ]) :: !by_tag)
        | Node.Text _ -> ())
      e.Node.children;
    let groups = List.rev_map (fun (sym, cur) -> (sym, List.rev !cur)) !by_tag in
    Tbl.add t.children e groups;
    (match assq_opt sym groups with Some nodes -> nodes | None -> [])

let descendants_by_tag ?obs t e sym =
  Clip_obs.index_probe obs;
  match Hashtbl.find_opt t.descendants (e.Node.id, sym) with
  | Some nodes ->
    Clip_obs.index_hit obs;
    nodes
  | None ->
    let acc = ref [] in
    let rec walk = function
      | Node.Text _ -> ()
      | Node.Element ce ->
        if Symbol.equal ce.Node.sym sym then acc := Node.Element ce :: !acc;
        List.iter walk ce.Node.children
    in
    List.iter walk e.Node.children;
    let nodes = List.rev !acc in
    Hashtbl.replace t.descendants (e.Node.id, sym) nodes;
    nodes
