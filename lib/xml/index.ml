(* A per-document tag index.

   Makes [Child tag] path steps O(matches) instead of O(children) by
   memoising a children-by-tag grouping per element, keyed by the
   element's hash-consed allocation id ([Node.element.id], an O(1)
   exact hash under physical equality). Descendant tables are memoised
   the same way. Tags are interned symbols ({!Symbol}), so every
   grouping and lookup compares ints, never strings.

   The index is entirely lazy: creation is O(1), and an element's
   children are grouped the first time it is probed. Laziness matters
   because the index lives for one engine run — or, held in a session,
   for many runs — and many runs (pure value mappings, small
   documents) never probe the same element twice; an eager
   whole-document build would cost more than it saves. It also means
   the index answers for {e any} element — nodes of the source
   document and nodes constructed during evaluation alike — so callers
   need no foreign-element fallback. Memoisation is sound because
   nodes are immutable, allocation ids are never reused, and symbols
   never change meaning. *)

module Tbl = Hashtbl.Make (struct
  type t = Node.element

  let equal = ( == )
  let hash (e : Node.element) = e.Node.id
end)

type t = {
  children : (Symbol.t * Node.t list) list Tbl.t; (* document order per tag *)
  descendants : (int * Symbol.t, Node.t list) Hashtbl.t;
}

let build _doc =
  (* Fault boundary: callers hold the index in resettable memo slots,
     so a failed build is retried cleanly (never a poisoned lazy). *)
  Clip_fault.hit Clip_fault.Site.index_build;
  { children = Tbl.create 256; descendants = Hashtbl.create 16 }

(* Elements with few children are scanned directly, unmemoised: the
   scan is bounded by the threshold, and skipping the grouping keeps
   single-visit runs from paying for an index they never reuse. Only
   wide elements (large fan-out, where O(children) per probe hurts)
   are grouped. *)
let small = 8

let rec shorter_than l n =
  n > 0 && match l with [] -> true | _ :: tl -> shorter_than tl (n - 1)

let scan_children e sym =
  List.filter
    (function
      | Node.Element ce -> Symbol.equal ce.Node.sym sym
      | Node.Text _ -> false)
    e.Node.children

(* Symbols are immediate ints, so [assq] physical equality coincides
   with symbol equality — assoc hits are pointer compares. *)
let rec assq_opt sym = function
  | [] -> None
  | (s, nodes) :: rest -> if Symbol.equal s sym then Some nodes else assq_opt sym rest

let children_by_tag ?obs t e sym =
  Clip_obs.index_probe obs;
  match Tbl.find_opt t.children e with
  | Some groups ->
    Clip_obs.index_hit obs;
    (match assq_opt sym groups with Some nodes -> nodes | None -> [])
  | None when shorter_than e.Node.children small -> scan_children e sym
  | None ->
    (* Group the element's children by tag, document order, in one
       pass; the per-element tag variety is small in schema-shaped
       documents, so assoc lists beat per-element hash tables. *)
    let by_tag = ref [] in
    List.iter
      (fun c ->
        match c with
        | Node.Element ce ->
          (match assq_opt ce.Node.sym !by_tag with
           | Some cur -> cur := c :: !cur
           | None -> by_tag := (ce.Node.sym, ref [ c ]) :: !by_tag)
        | Node.Text _ -> ())
      e.Node.children;
    let groups = List.rev_map (fun (sym, cur) -> (sym, List.rev !cur)) !by_tag in
    Tbl.add t.children e groups;
    (match assq_opt sym groups with Some nodes -> nodes | None -> [])

(* --- Columnar (Doc) variants ------------------------------------------- *)

(* The id-vector face of the same index, over a converted {!Doc}: a
   probe answers with a flat [int array] of preorder node ids instead
   of a boxed node list. Child vectors come off the sibling-chain
   arrays, descendant vectors off the contiguous preorder range of the
   subtree — both are pure int sweeps. The boxed views ([*_by_tag])
   are memoised per (parent id, tag) on top of the id vectors, so a
   warm probe returns the exact same list (zero allocation), which is
   what makes the columnar path cheaper than re-walking children lists
   run after run. *)

type docidx = {
  didx_doc : Doc.t;
  dchildren : (int * Symbol.t, int array) Hashtbl.t;
  dchild_nodes : (int * Symbol.t, Node.t list) Hashtbl.t;
  ddescendants : (int * Symbol.t, int array) Hashtbl.t;
  ddesc_nodes : (int * Symbol.t, Node.t list) Hashtbl.t;
}

let build_doc doc =
  (* Same fault boundary as {!build}: held in resettable memo slots. *)
  Clip_fault.hit Clip_fault.Site.index_build;
  {
    didx_doc = doc;
    dchildren = Hashtbl.create 256;
    dchild_nodes = Hashtbl.create 256;
    ddescendants = Hashtbl.create 16;
    ddesc_nodes = Hashtbl.create 16;
  }

let doc_of_index d = d.didx_doc

(* Mirror of [shorter_than e.children small] on the sibling chain, so
   the columnar index memoises exactly the elements the boxed index
   memoises — which keeps the probe/hit counters byte-identical across
   representations (the counters are the cross-representation
   semantics oracle). *)
let doc_small (doc : Doc.t) id = doc.Doc.nchildren.(id) < small

(* Both child probes test [doc_small] {e first}: a narrow element is
   never in the memo tables, so probing them would be a guaranteed
   miss — two wasted tuple allocations and generic hashes on the
   hottest path. The narrow case is instead one fused sweep down the
   sibling chain (bounded by the scan itself), exactly the work the
   boxed index does for the same element, with the same single
   probe-no-hit counter trace. *)

let doc_collect_child_ids (doc : Doc.t) id tag =
  let count = ref 0 in
  let c = ref doc.Doc.first_child.(id) in
  while !c >= 0 do
    if doc.Doc.tags.(!c) = tag then incr count;
    c := doc.Doc.next_sibling.(!c)
  done;
  let ids = Array.make !count 0 in
  let k = ref 0 in
  let c = ref doc.Doc.first_child.(id) in
  while !c >= 0 do
    if doc.Doc.tags.(!c) = tag then begin
      ids.(!k) <- !c;
      incr k
    end;
    c := doc.Doc.next_sibling.(!c)
  done;
  ids

let doc_children_ids ?obs d id sym =
  Clip_obs.index_probe obs;
  let doc = d.didx_doc in
  if doc_small doc id then doc_collect_child_ids doc id (sym : Symbol.t :> int)
  else
    match Hashtbl.find_opt d.dchildren (id, sym) with
    | Some ids ->
      Clip_obs.index_hit obs;
      ids
    | None ->
      let ids = doc_collect_child_ids doc id (sym : Symbol.t :> int) in
      Hashtbl.replace d.dchildren (id, sym) ids;
      ids

let doc_children_by_tag ?obs d id sym =
  let doc = d.didx_doc in
  if doc_small doc id then begin
    Clip_obs.index_probe obs;
    (* Narrow: build the boxed list in one sweep — no id vector, no
       memo tables, one allocation. The recursion depth is bounded by
       [small], so the non-tail cons is safe. *)
    let tag = (sym : Symbol.t :> int) in
    let rec go c =
      if c < 0 then []
      else if doc.Doc.tags.(c) = tag then
        doc.Doc.nodes.(c) :: go doc.Doc.next_sibling.(c)
      else go doc.Doc.next_sibling.(c)
    in
    go doc.Doc.first_child.(id)
  end
  else
    match Hashtbl.find_opt d.dchild_nodes (id, sym) with
    | Some nodes ->
      Clip_obs.index_probe obs;
      Clip_obs.index_hit obs;
      nodes
    | None ->
      let ids = doc_children_ids ?obs d id sym in
      let nodes = Array.to_list (Array.map (fun i -> doc.Doc.nodes.(i)) ids) in
      Hashtbl.replace d.dchild_nodes (id, sym) nodes;
      nodes

(* One-pass mapped view of {!doc_children_by_tag}: narrow elements
   build the [f]-mapped list directly (one list, no boxed
   intermediate); wide ones map over the memoised grouping. Counter
   trace identical to {!doc_children_by_tag} — this is the columnar
   evaluators' child step, where the extra intermediate list per step
   is measurable across a run. *)
let doc_children_map ?obs d id sym ~f =
  let doc = d.didx_doc in
  if doc_small doc id then begin
    Clip_obs.index_probe obs;
    let tag = (sym : Symbol.t :> int) in
    let rec go c =
      if c < 0 then []
      else if doc.Doc.tags.(c) = tag then
        f doc.Doc.nodes.(c) :: go doc.Doc.next_sibling.(c)
      else go doc.Doc.next_sibling.(c)
    in
    go doc.Doc.first_child.(id)
  end
  else List.map f (doc_children_by_tag ?obs d id sym)

(* --- Fused level expansion --------------------------------------------- *)

(* A growable id buffer: the fused projection path of both evaluators
   expands a whole level of parent ids into one of these instead of
   boxing an intermediate node list per parent. *)
type idbuf = { mutable ids : int array; mutable len : int }

let idbuf_make () = { ids = Array.make 32 0; len = 0 }

let idbuf_reserve b extra =
  let need = b.len + extra in
  if need > Array.length b.ids then begin
    let cap = ref (2 * Array.length b.ids) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let nb = Array.make !cap 0 in
    Array.blit b.ids 0 nb 0 b.len;
    b.ids <- nb
  end

let idbuf_push b v =
  if b.len = Array.length b.ids then idbuf_reserve b 1;
  b.ids.(b.len) <- v;
  b.len <- b.len + 1

(* Append the [sym]-tagged children of [id] to [b], with exactly the
   counter trace of the per-item probes: [~naive:false] mirrors
   {!doc_children_ids} (narrow elements sweep under a single probe,
   wide ones consult the memoised id vector — probe plus hit when
   warm), [~naive:true] mirrors the naive scan (no probes, every child
   counts as scanned). The fused projection path of the evaluators is
   built on this, so the cross-representation counter oracle keeps
   holding without each caller re-deriving the rules. *)
let doc_append_children ?obs d ~naive b id sym =
  let doc = d.didx_doc in
  let tag = (sym : Symbol.t :> int) in
  if naive then begin
    let c = ref doc.Doc.first_child.(id) in
    while !c >= 0 do
      if doc.Doc.tags.(!c) = tag then idbuf_push b !c;
      c := doc.Doc.next_sibling.(!c)
    done;
    Clip_obs.scanned obs doc.Doc.nchildren.(id)
  end
  else if doc_small doc id then begin
    Clip_obs.index_probe obs;
    let m = ref 0 in
    let c = ref doc.Doc.first_child.(id) in
    while !c >= 0 do
      if doc.Doc.tags.(!c) = tag then begin
        idbuf_push b !c;
        incr m
      end;
      c := doc.Doc.next_sibling.(!c)
    done;
    Clip_obs.scanned obs !m
  end
  else begin
    let ids = doc_children_ids ?obs d id sym in
    let n = Array.length ids in
    idbuf_reserve b n;
    Array.blit ids 0 b.ids b.len n;
    b.len <- b.len + n;
    Clip_obs.scanned obs n
  end

(* First preorder id past the subtree of [id]: the next sibling of the
   nearest ancestor (or [id] itself) that has one. *)
let subtree_stop (doc : Doc.t) id =
  let rec climb i =
    if i < 0 then Array.length doc.Doc.tags
    else if doc.Doc.next_sibling.(i) >= 0 then doc.Doc.next_sibling.(i)
    else climb doc.Doc.parent.(i)
  in
  climb id

let doc_descendants_ids ?obs d id sym =
  Clip_obs.index_probe obs;
  match Hashtbl.find_opt d.ddescendants (id, sym) with
  | Some ids ->
    Clip_obs.index_hit obs;
    ids
  | None ->
    let doc = d.didx_doc in
    let tag = (sym : Symbol.t :> int) in
    let stop = subtree_stop doc id in
    let count = ref 0 in
    for c = id + 1 to stop - 1 do
      if doc.Doc.tags.(c) = tag then incr count
    done;
    let ids = Array.make !count 0 in
    let k = ref 0 in
    for c = id + 1 to stop - 1 do
      if doc.Doc.tags.(c) = tag then begin
        ids.(!k) <- c;
        incr k
      end
    done;
    Hashtbl.replace d.ddescendants (id, sym) ids;
    ids

let doc_descendants_by_tag ?obs d id sym =
  match Hashtbl.find_opt d.ddesc_nodes (id, sym) with
  | Some nodes ->
    Clip_obs.index_probe obs;
    Clip_obs.index_hit obs;
    nodes
  | None ->
    let ids = doc_descendants_ids ?obs d id sym in
    let nodes =
      Array.to_list (Array.map (fun i -> d.didx_doc.Doc.nodes.(i)) ids)
    in
    Hashtbl.replace d.ddesc_nodes (id, sym) nodes;
    nodes

let descendants_by_tag ?obs t e sym =
  Clip_obs.index_probe obs;
  match Hashtbl.find_opt t.descendants (e.Node.id, sym) with
  | Some nodes ->
    Clip_obs.index_hit obs;
    nodes
  | None ->
    let acc = ref [] in
    let rec walk = function
      | Node.Text _ -> ()
      | Node.Element ce ->
        if Symbol.equal ce.Node.sym sym then acc := Node.Element ce :: !acc;
        List.iter walk ce.Node.children
    in
    List.iter walk e.Node.children;
    let nodes = List.rev !acc in
    Hashtbl.replace t.descendants (e.Node.id, sym) nodes;
    nodes
