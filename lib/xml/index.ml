(* A per-document tag index.

   Makes [Child tag] path steps O(matches) instead of O(children) by
   memoising a children-by-tag grouping per element, keyed by the
   element's hash-consed allocation id ([Node.element.id], an O(1)
   exact hash under physical equality). Descendant tables are memoised
   the same way.

   The index is entirely lazy: creation is O(1), and an element's
   children are grouped the first time it is probed. Laziness matters
   because the index lives for one engine run and many runs (pure
   value mappings, small documents) never probe the same element
   twice — an eager whole-document build would cost more than it
   saves. It also means the index answers for {e any} element — nodes
   of the source document and nodes constructed during evaluation
   alike — so callers need no foreign-element fallback. Memoisation is
   sound because nodes are immutable and allocation ids are never
   reused. *)

module Tbl = Hashtbl.Make (struct
  type t = Node.element

  let equal = ( == )
  let hash (e : Node.element) = e.Node.id
end)

type t = {
  children : (string * Node.t list) list Tbl.t; (* document order per tag *)
  descendants : (int * string, Node.t list) Hashtbl.t;
}

let build _doc = { children = Tbl.create 256; descendants = Hashtbl.create 16 }

(* Elements with few children are scanned directly, unmemoised: the
   scan is bounded by the threshold, and skipping the grouping keeps
   single-visit runs from paying for an index they never reuse. Only
   wide elements (large fan-out, where O(children) per probe hurts)
   are grouped. *)
let small = 8

let rec shorter_than l n =
  n > 0 && match l with [] -> true | _ :: tl -> shorter_than tl (n - 1)

let scan_children e tag =
  List.filter
    (function
      | Node.Element ce -> String.equal ce.Node.tag tag
      | Node.Text _ -> false)
    e.Node.children

let children_by_tag t e tag =
  match Tbl.find_opt t.children e with
  | Some groups ->
    (match List.assoc_opt tag groups with Some nodes -> nodes | None -> [])
  | None when shorter_than e.Node.children small -> scan_children e tag
  | None ->
      (* Group the element's children by tag, document order, in one
         pass; the per-element tag variety is small in schema-shaped
         documents, so assoc lists beat per-element hash tables. *)
      let by_tag = ref [] in
      List.iter
        (fun c ->
          match c with
          | Node.Element ce ->
            (match List.assoc_opt ce.Node.tag !by_tag with
             | Some cur -> cur := c :: !cur
             | None -> by_tag := (ce.Node.tag, ref [ c ]) :: !by_tag)
          | Node.Text _ -> ())
        e.Node.children;
    let groups = List.rev_map (fun (tag, cur) -> (tag, List.rev !cur)) !by_tag in
    Tbl.add t.children e groups;
    (match List.assoc_opt tag groups with Some nodes -> nodes | None -> [])

let descendants_by_tag t e tag =
  match Hashtbl.find_opt t.descendants (e.Node.id, tag) with
  | Some nodes -> nodes
  | None ->
    let acc = ref [] in
    let rec walk = function
      | Node.Text _ -> ()
      | Node.Element ce ->
        if String.equal ce.Node.tag tag then acc := Node.Element ce :: !acc;
        List.iter walk ce.Node.children
    in
    List.iter walk e.Node.children;
    let nodes = List.rev !acc in
    Hashtbl.replace t.descendants (e.Node.id, tag) nodes;
    nodes
