(* Serializers for instance documents.

   Every traversal here runs on an explicit worklist, never on OCaml
   recursion: the parser bounds the depth of *parsed* documents, but
   engine-*generated* target instances have no such bound, and a
   serializer must not be the one place a deep (but legal) result can
   blow the stack. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string attrs =
  String.concat ""
    (List.map
       (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape_attr (Atom.to_string v)))
       attrs)

(* Compact rendering: a worklist of nodes still to open and closing
   tags to emit once their subtree is done. *)
type ctok = CNode of Node.t | CClose of string

let add_compact buf node =
  let stack = ref [ CNode node ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | CClose tag :: rest ->
      stack := rest;
      Buffer.add_string buf (Printf.sprintf "</%s>" tag)
    | CNode (Node.Text a) :: rest ->
      stack := rest;
      Buffer.add_string buf (escape_text (Atom.to_string a))
    | CNode (Node.Element e) :: rest ->
      if e.children = [] then begin
        stack := rest;
        Buffer.add_string buf (Printf.sprintf "<%s%s/>" e.tag (attrs_to_string e.attrs))
      end
      else begin
        Buffer.add_string buf (Printf.sprintf "<%s%s>" e.tag (attrs_to_string e.attrs));
        stack := List.map (fun c -> CNode c) e.children @ (CClose e.tag :: rest)
      end
  done

let to_string node =
  let buf = Buffer.create 256 in
  add_compact buf node;
  Buffer.contents buf

type ptok = PNode of Node.t | PClose of string

let to_pretty_string ?(indent = 2) node =
  let buf = Buffer.create 256 in
  let pad level = String.make (level * indent) ' ' in
  let stack = ref [ (0, PNode node) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (level, PClose tag) :: rest ->
      stack := rest;
      Buffer.add_string buf (Printf.sprintf "%s</%s>\n" (pad level) tag)
    | (level, PNode (Node.Text a)) :: rest ->
      stack := rest;
      Buffer.add_string buf (pad level);
      Buffer.add_string buf (escape_text (Atom.to_string a));
      Buffer.add_char buf '\n'
    | (level, PNode (Node.Element e)) :: rest ->
      let open_tag = Printf.sprintf "<%s%s" e.tag (attrs_to_string e.attrs) in
      (match e.children with
       | [] ->
         stack := rest;
         Buffer.add_string buf (pad level ^ open_tag ^ "/>\n")
       | [ Node.Text a ] ->
         stack := rest;
         Buffer.add_string buf
           (Printf.sprintf "%s%s>%s</%s>\n" (pad level) open_tag
              (escape_text (Atom.to_string a))
              e.tag)
       | children ->
         Buffer.add_string buf (pad level ^ open_tag ^ ">\n");
         stack :=
           List.map (fun c -> (level + 1, PNode c)) children
           @ ((level, PClose e.tag) :: rest))
  done;
  Buffer.contents buf

(* --- The paper's ASCII-tree rendering --------------------------------- *)

(* Each node renders to a non-empty list of lines; the parent splices the
   first line after "label---" and prefixes the rest with margin columns. *)

type item = string list (* rendered lines of one child item *)

let splice label items : item =
  match items with
  | [] -> [ label ]
  | first :: rest ->
    let margin = String.make (String.length label) ' ' in
    let lines = ref [] in
    let emit s = lines := s :: !lines in
    (* First item: inline after "label---". *)
    (match first with
     | [] -> ()
     | fl :: fls ->
       emit (label ^ "---" ^ fl);
       let cont_prefix = margin ^ (if rest = [] then "   " else "  |") in
       List.iter (fun l -> emit (cont_prefix ^ l)) fls);
    (* Later items on their own lines with |--- / `--- markers. *)
    let rec emit_rest = function
      | [] -> ()
      | item :: tl ->
        let last = tl = [] in
        let marker = if last then "  `---" else "  |---" in
        (match item with
         | [] -> ()
         | fl :: fls ->
           emit (margin ^ marker ^ fl);
           let cont = margin ^ (if last then "      " else "  |   ") in
           List.iter (fun l -> emit (cont ^ l)) fls);
        emit_rest tl
    in
    emit_rest rest;
    List.rev !lines

(* Bottom-up assembly over an explicit frame stack: a frame renders its
   element children one by one; when none remain the element splices
   and hands its lines to the parent frame. *)
type tframe = {
  label : string;
  pre : item list; (* attribute and text items, already rendered *)
  mutable pending : Node.element list;
  mutable done_rev : item list;
}

let render_element (e0 : Node.element) : item =
  let leaf (e : Node.element) =
    match Node.text_value e, e.attrs, Node.child_elements e with
    | Some v, [], [] -> Some [ Printf.sprintf "%s = %s" e.tag (Atom.to_string v) ]
    | _ -> None
  in
  let frame (e : Node.element) =
    let attr_items =
      List.map (fun (k, v) -> [ Printf.sprintf "@%s = %s" k (Atom.to_string v) ]) e.attrs
    in
    let text_items =
      match Node.text_value e with
      | Some v -> [ [ Printf.sprintf "value = %s" (Atom.to_string v) ] ]
      | None -> []
    in
    {
      label = e.tag;
      pre = attr_items @ text_items;
      pending = Node.child_elements e;
      done_rev = [];
    }
  in
  match leaf e0 with
  | Some lines -> lines
  | None ->
    let stack = ref [ frame e0 ] in
    let result = ref None in
    while !result = None do
      match !stack with
      | [] -> assert false
      | f :: rest ->
        (match f.pending with
         | e :: tl ->
           f.pending <- tl;
           (match leaf e with
            | Some lines -> f.done_rev <- lines :: f.done_rev
            | None -> stack := frame e :: !stack)
         | [] ->
           let lines = splice f.label (f.pre @ List.rev f.done_rev) in
           stack := rest;
           (match rest with
            | [] -> result := Some lines
            | parent :: _ -> parent.done_rev <- lines :: parent.done_rev))
    done;
    (match !result with Some lines -> lines | None -> assert false)

let to_tree_string node =
  let lines =
    match node with
    | Node.Element e -> render_element e
    | Node.Text a -> [ Atom.to_string a ]
  in
  String.concat "\n" lines
