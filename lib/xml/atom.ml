type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

let string s = String s
let int i = Int i
let float f = Float f
let bool b = Bool b

let to_string = function
  | String s -> s
  | Int i -> string_of_int i
  | Float f ->
    (* Avoid the "3." OCaml spelling: print integral floats as integers. *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let of_string s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Float f
     | None ->
       (match bool_of_string_opt s with
        | Some b -> Bool b
        | None -> String s))

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String _ | Bool _ -> None

let equal a b =
  match a, b with
  | String x, String y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | (String _ | Bool _ | Int _ | Float _), _ -> false

let kind_rank = function
  | String _ -> 0
  | Int _ | Float _ -> 1
  | Bool _ -> 2

let compare a b =
  match a, b with
  | String x, String y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | a, b ->
    let r = Int.compare (kind_rank a) (kind_rank b) in
    if r <> 0 then r else String.compare (to_string a) (to_string b)

(* --- Join-key normalisation -------------------------------------------- *)

(* One hashable shape per {!equal}-equivalence class, shared by the
   plan layer's hash joins and both backends' grouping/dedup keys so
   every consumer agrees on what "the same value" means. [Int i] and
   [Float f] normalise to the same key when [float_of_int i = f], all
   NaNs collapse to one key, and [0.] / [-0.] collapse to one key
   ([Float.equal] holds on signed zeros, hence {!equal} does).
   Integers beyond the 2^53 float range coarsen onto their nearest
   float — consumers that must be exact re-check the original
   predicate on each hash hit. *)
type key =
  | KString of string
  | KNum of int64 (* IEEE bits; NaNs and -0. canonicalised *)
  | KBool of bool

let key = function
  | String s -> KString s
  | Bool b -> KBool b
  | Int i -> KNum (Int64.bits_of_float (float_of_int i))
  | Float f ->
    (* [+. 0.] maps [-0.] onto [0.] and is the identity elsewhere, so
       the two zeros — equal under IEEE, hence under {!equal} — share
       IEEE bits; a raw [bits_of_float] would put them in different
       hash buckets and make a join miss matches the naive
       interpreter emits. *)
    KNum (Int64.bits_of_float (if Float.is_nan f then Float.nan else f +. 0.))

let pp fmt a = Format.pp_print_string fmt (to_string a)
