(** A per-document tag index: children-by-tag and descendants-by-tag
    groupings memoised per element over hash-consed element ids
    ({!Node.element.id}), so repeated [Child tag] path steps cost
    O(matches) instead of O(children). Tags are interned {!Symbol}s —
    every grouping and lookup is an int compare.

    The index is entirely lazy — {!build} is O(1) and an element's
    grouping is computed on its first probe — so runs that never
    revisit an element pay (almost) nothing. It answers for any
    element, including nodes constructed during evaluation;
    memoisation is sound because nodes are immutable, allocation ids
    are never reused, and symbols never change meaning — which also
    makes it sound for one index to serve {e many} runs over the same
    document (a session holds one and amortises the grouping across
    requests). *)

type t

(** An identity-keyed element table ([==], hashed by the allocation
    id) — also used for provenance seen-sets. *)
module Tbl : Hashtbl.S with type key = Node.element

(** [build doc] — a fresh (empty, lazy) index for a run over [doc].
    O(1); the argument documents intent and keeps room for eager
    pre-indexing later. *)
val build : Node.t -> t

(** [children_by_tag ?obs t e sym] — the child elements of [e] tagged
    [sym], in document order; memoised per element. [?obs] counts the
    probe (and hit, when answered from a memoised grouping). *)
val children_by_tag :
  ?obs:Clip_obs.Counters.t -> t -> Node.element -> Symbol.t -> Node.t list

(** [descendants_by_tag ?obs t e sym] — proper descendant elements of
    [e] tagged [sym], preorder; memoised per [(element, tag)]. *)
val descendants_by_tag :
  ?obs:Clip_obs.Counters.t -> t -> Node.element -> Symbol.t -> Node.t list

(** {1 Columnar (id-vector) variants}

    The same index over a converted {!Doc}: probes answer with flat
    [int array]s of preorder node ids (child vectors off the
    sibling-chain arrays, descendant vectors off the contiguous
    preorder subtree range). The [*_by_tag] boxed views are memoised
    on top of the id vectors, so a warm probe returns the physically
    same list — zero allocation per step on the columnar path.
    Memoisation mirrors the boxed index's smallness threshold exactly
    (narrow elements are re-scanned, wide ones grouped), which keeps
    the probe/hit counters byte-identical across representations. *)

type docidx

(** [build_doc doc] — a fresh lazy columnar index; same fault boundary
    as {!build} (hold it in a resettable memo slot). *)
val build_doc : Doc.t -> docidx

val doc_of_index : docidx -> Doc.t

(** [doc_children_ids ?obs d id sym] — ids of the child elements of
    node [id] tagged [sym], document order; memoised. *)
val doc_children_ids :
  ?obs:Clip_obs.Counters.t -> docidx -> int -> Symbol.t -> int array

(** [doc_children_by_tag ?obs d id sym] — boxed view of
    {!doc_children_ids} (the original child nodes); memoised. *)
val doc_children_by_tag :
  ?obs:Clip_obs.Counters.t -> docidx -> int -> Symbol.t -> Node.t list

(** [doc_children_map ?obs d id sym ~f] — [List.map f] of
    {!doc_children_by_tag}, fused: narrow elements build the mapped
    list in one sweep with no intermediate. Same counter trace. *)
val doc_children_map :
  ?obs:Clip_obs.Counters.t ->
  docidx ->
  int ->
  Symbol.t ->
  f:(Node.t -> 'a) ->
  'a list

(** {2 Fused level expansion}

    The id-space primitives behind the evaluators' fused projection
    path: a whole level of parent ids expands into one growable id
    buffer instead of an intermediate boxed list per parent, boxing
    only the final level. *)

type idbuf = { mutable ids : int array; mutable len : int }

val idbuf_make : unit -> idbuf
val idbuf_push : idbuf -> int -> unit

(** [doc_append_children ?obs d ~naive b id sym] appends the ids of
    the [sym]-tagged children of [id] to [b], with exactly the counter
    trace of the per-item probes: [~naive:false] mirrors
    {!doc_children_ids} (probe per element, hit on warm wide
    elements), [~naive:true] the unindexed scan (no probes, every
    child scanned). *)
val doc_append_children :
  ?obs:Clip_obs.Counters.t ->
  docidx ->
  naive:bool ->
  idbuf ->
  int ->
  Symbol.t ->
  unit

(** [doc_descendants_ids ?obs d id sym] — ids of proper descendant
    elements of [id] tagged [sym], preorder; memoised. *)
val doc_descendants_ids :
  ?obs:Clip_obs.Counters.t -> docidx -> int -> Symbol.t -> int array

(** [doc_descendants_by_tag ?obs d id sym] — boxed view of
    {!doc_descendants_ids}; memoised. *)
val doc_descendants_by_tag :
  ?obs:Clip_obs.Counters.t -> docidx -> int -> Symbol.t -> Node.t list
