(** A per-document tag index: children-by-tag and descendants-by-tag
    groupings memoised per element over hash-consed element ids
    ({!Node.element.id}), so repeated [Child tag] path steps cost
    O(matches) instead of O(children). Tags are interned {!Symbol}s —
    every grouping and lookup is an int compare.

    The index is entirely lazy — {!build} is O(1) and an element's
    grouping is computed on its first probe — so runs that never
    revisit an element pay (almost) nothing. It answers for any
    element, including nodes constructed during evaluation;
    memoisation is sound because nodes are immutable, allocation ids
    are never reused, and symbols never change meaning — which also
    makes it sound for one index to serve {e many} runs over the same
    document (a session holds one and amortises the grouping across
    requests). *)

type t

(** An identity-keyed element table ([==], hashed by the allocation
    id) — also used for provenance seen-sets. *)
module Tbl : Hashtbl.S with type key = Node.element

(** [build doc] — a fresh (empty, lazy) index for a run over [doc].
    O(1); the argument documents intent and keeps room for eager
    pre-indexing later. *)
val build : Node.t -> t

(** [children_by_tag ?obs t e sym] — the child elements of [e] tagged
    [sym], in document order; memoised per element. [?obs] counts the
    probe (and hit, when answered from a memoised grouping). *)
val children_by_tag :
  ?obs:Clip_obs.Counters.t -> t -> Node.element -> Symbol.t -> Node.t list

(** [descendants_by_tag ?obs t e sym] — proper descendant elements of
    [e] tagged [sym], preorder; memoised per [(element, tag)]. *)
val descendants_by_tag :
  ?obs:Clip_obs.Counters.t -> t -> Node.element -> Symbol.t -> Node.t list
