(** A per-document tag index: children-by-tag and descendants-by-tag
    groupings memoised per element over hash-consed element ids
    ({!Node.element.id}), so repeated [Child tag] path steps cost
    O(matches) instead of O(children).

    The index is entirely lazy — {!build} is O(1) and an element's
    grouping is computed on its first probe — so runs that never
    revisit an element pay (almost) nothing. It answers for any
    element, including nodes constructed during evaluation;
    memoisation is sound because nodes are immutable and allocation
    ids are never reused. One index should live for exactly one engine
    run. *)

type t

(** An identity-keyed element table ([==], hashed by the allocation
    id) — also used for provenance seen-sets. *)
module Tbl : Hashtbl.S with type key = Node.element

(** [build doc] — a fresh (empty, lazy) index for a run over [doc].
    O(1); the argument documents intent and keeps room for eager
    pre-indexing later. *)
val build : Node.t -> t

(** [children_by_tag t e tag] — the child elements of [e] tagged
    [tag], in document order; memoised per element. *)
val children_by_tag : t -> Node.element -> string -> Node.t list

(** [descendants_by_tag t e tag] — proper descendant elements of [e]
    tagged [tag], preorder; memoised per [(element, tag)]. *)
val descendants_by_tag : t -> Node.element -> string -> Node.t list
