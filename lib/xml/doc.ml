(* A struct-of-arrays (columnar) document representation.

   Nodes are numbered in preorder (document order): the root is id 0
   and every parent precedes its descendants. Each per-node property
   lives in its own flat array — interned tag symbols, parent /
   first-child / next-sibling links, attribute ranges — and every
   atomic value (text payloads, attribute values, precomputed element
   text values) is an index into one shared, deduplicated atom table.
   Traversals become int-array sweeps with no pointer chasing and no
   per-step allocation, which is what the vectorized execution path
   ({!Clip_plan}, both backend evaluators under [`Columnar]) runs on.

   [of_node] additionally records the original boxed node of every id,
   so [to_node] is an O(1) array read returning the {e physically
   identical} subtree. That choice is load-bearing: identity-keyed
   caches ({!Index}, provenance seen-sets) and byte-identical output
   guarantees keep holding when columnar and tree execution mix in one
   run. [rebuild] is the genuine array-to-tree reconstruction — used
   by round-trip tests and, later, by cross-domain document shipping —
   and shares nothing with the input.

   Atom deduplication is by exact representation ([Float] payloads
   compared as IEEE bits), never by the looser [Atom.equal] classes:
   [Int 3] and [Float 3.] stay separate atoms, so a value read through
   the columnar path prints and compares exactly like the boxed
   original and outputs cannot drift across representations. *)

type t = {
  tags : int array;
      (* per node: [(Node.element.sym :> int)]; [-1] for text nodes *)
  parent : int array; (* [-1] for the root *)
  first_child : int array; (* [-1] when childless *)
  next_sibling : int array; (* [-1] for a last sibling *)
  nchildren : int array;
      (* per node: child count (elements and texts); the smallness
         test of {!Index} reads it instead of re-walking the sibling
         chain on every probe *)
  attr_start : int array; (* per node: first slot in [attr_names] *)
  attr_len : int array; (* per node: attribute count; 0 for text *)
  attr_names : string array; (* per attribute slot *)
  attr_value : int array; (* per attribute slot: index into [atoms] *)
  text_atom : int array; (* per text node: index into [atoms]; else -1 *)
  text_value : int array;
      (* per element: precomputed {!Node.text_value} as an index into
         [atoms]; [-1] = no text children. Makes value/predicate reads
         an O(1) array load on the columnar path. *)
  atoms : Atom.t array; (* shared deduplicated atom table *)
  nodes : Node.t array; (* per node: the original boxed subtree *)
  by_elem : (int, int) Hashtbl.t; (* Node.element.id -> node id *)
  elem_lo : int;
  elem_map : int array;
      (* dense element-id -> node-id map: slot [e.id - elem_lo] holds
         the node id, [-1] when no element of the document has that
         allocation id. Built when the document's allocation ids are
         near-contiguous (a tree parsed or built in one go), which
         makes the per-step element lookup three instructions instead
         of a generic hash; empty when the ids are too sparse, and
         [find_id] falls back to [by_elem]. *)
  elements : int;
}

(* The document representation switch threaded from the engine down to
   both backends: [`Tree] runs the boxed interpreters (the oracle),
   [`Columnar] the array path, [`Auto] picks columnar for documents
   large enough that conversion pays for itself. *)
type repr = [ `Tree | `Columnar | `Auto ]

let length t = Array.length t.tags
let element_count t = t.elements

(* --- Conversion: tree -> arrays ---------------------------------------- *)

(* Dedup key preserving the exact atom representation: floats by IEEE
   bits (so [0.] / [-0.] and distinct NaN payloads never merge), ints
   and floats in separate namespaces (so [Int 3] never aliases
   [Float 3.]). *)
type akey = AString of string | AInt of int | AFloat of int64 | ABool of bool

let akey = function
  | Atom.String s -> AString s
  | Atom.Int i -> AInt i
  | Atom.Float f -> AFloat (Int64.bits_of_float f)
  | Atom.Bool b -> ABool b

let of_node root =
  (* Pass 1: size everything (stack-safe worklist). *)
  let n = ref 0 and nattrs = ref 0 and nelems = ref 0 in
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
      incr n;
      (match node with
       | Node.Text _ -> stack := rest
       | Node.Element e ->
         incr nelems;
         nattrs := !nattrs + List.length e.Node.attrs;
         stack := List.rev_append (List.rev e.Node.children) rest)
  done;
  let n = !n in
  let tags = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let first_child = Array.make n (-1) in
  let next_sibling = Array.make n (-1) in
  let attr_start = Array.make n 0 in
  let attr_len = Array.make n 0 in
  let nchildren = Array.make n 0 in
  let attr_names = Array.make !nattrs "" in
  let attr_value = Array.make !nattrs (-1) in
  let text_atom = Array.make n (-1) in
  let text_value = Array.make n (-1) in
  let nodes = Array.make n root in
  let by_elem = Hashtbl.create (2 * !nelems) in
  (* Atom table: deduplicated, in first-seen order. *)
  let atom_ids : (akey, int) Hashtbl.t = Hashtbl.create 64 in
  let atoms_rev = ref [] and natoms = ref 0 in
  let atom_id a =
    let k = akey a in
    match Hashtbl.find_opt atom_ids k with
    | Some i -> i
    | None ->
      let i = !natoms in
      incr natoms;
      Hashtbl.add atom_ids k i;
      atoms_rev := a :: !atoms_rev;
      i
  in
  (* Pass 2: preorder numbering. Popping a node assigns the next id;
     its children are pushed front-first so the whole subtree is
     numbered before any following sibling. *)
  let next = ref 0 in
  let anext = ref 0 in
  let elem_lo = ref max_int and elem_hi = ref min_int in
  let stack = ref [ (root, -1) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (node, p) :: rest ->
      stack := rest;
      let id = !next in
      incr next;
      nodes.(id) <- node;
      parent.(id) <- p;
      (match node with
       | Node.Text a -> text_atom.(id) <- atom_id a
       | Node.Element e ->
         tags.(id) <- (e.Node.sym :> int);
         nchildren.(id) <- List.length e.Node.children;
         elem_lo := min !elem_lo e.Node.id;
         elem_hi := max !elem_hi e.Node.id;
         Hashtbl.replace by_elem e.Node.id id;
         (match Node.text_value e with
          | Some a -> text_value.(id) <- atom_id a
          | None -> ());
         attr_start.(id) <- !anext;
         List.iter
           (fun (name, v) ->
             attr_names.(!anext) <- name;
             attr_value.(!anext) <- atom_id v;
             incr anext)
           e.Node.attrs;
         attr_len.(id) <- !anext - attr_start.(id);
         stack :=
           List.fold_left (fun acc c -> (c, id) :: acc) !stack
             (List.rev e.Node.children))
  done;
  (* Sibling links: sweep ids in reverse — siblings carry increasing
     preorder ids, so each id pushes itself in front of the current
     first child of its parent. *)
  for id = n - 1 downto 1 do
    let p = parent.(id) in
    next_sibling.(id) <- first_child.(p);
    first_child.(p) <- id
  done;
  (* Dense lookup only when the id range is close to the element
     count: hash-consing allocates ids monotonically, so a tree built
     in one go is contiguous; a document assembled from widely-spaced
     builds keeps the hashtable instead of a mostly-empty array. *)
  let elem_lo, elem_map =
    let range = !elem_hi - !elem_lo + 1 in
    if !nelems > 0 && range <= 4 * !nelems then begin
      let map = Array.make range (-1) in
      Hashtbl.iter (fun eid id -> map.(eid - !elem_lo) <- id) by_elem;
      (!elem_lo, map)
    end
    else (0, [||])
  in
  {
    tags;
    parent;
    first_child;
    next_sibling;
    attr_start;
    attr_len;
    nchildren;
    attr_names;
    attr_value;
    text_atom;
    text_value;
    atoms = Array.of_list (List.rev !atoms_rev);
    nodes;
    by_elem;
    elem_lo;
    elem_map;
    elements = !nelems;
  }

(* --- Reads -------------------------------------------------------------- *)

let check t id fn =
  if id < 0 || id >= Array.length t.tags then
    invalid_arg (Printf.sprintf "Doc.%s: node id %d out of range" fn id)

let to_node t id =
  check t id "to_node";
  t.nodes.(id)

let id_of t (e : Node.element) = Hashtbl.find_opt t.by_elem e.Node.id

(* The non-allocating twin of [id_of] for per-step hot paths: an
   option cell — and a generic hash — per child step is measurable
   across a whole run. With the dense map, a document element costs an
   offset and a bounds test, and a foreign (evaluator-built) element
   falls off the range immediately: allocation ids only grow, so
   nothing built after conversion can land inside it. *)
let find_id t (e : Node.element) =
  let off = e.Node.id - t.elem_lo in
  if off >= 0 && off < Array.length t.elem_map then Array.unsafe_get t.elem_map off
  else if Array.length t.elem_map > 0 then -1
  else
    match Hashtbl.find t.by_elem e.Node.id with
    | id -> id
    | exception Not_found -> -1
let is_element t id = t.tags.(id) >= 0

let tag t id =
  check t id "tag";
  Symbol.of_int t.tags.(id)

let text_value_of t id =
  check t id "text_value_of";
  let v = t.text_value.(id) in
  if v < 0 then None else Some t.atoms.(v)

let attr t id name =
  check t id "attr";
  let stop = t.attr_start.(id) + t.attr_len.(id) in
  let rec go i =
    if i >= stop then None
    else if String.equal t.attr_names.(i) name then Some t.atoms.(t.attr_value.(i))
    else go (i + 1)
  in
  go t.attr_start.(id)

let children_ids t id =
  check t id "children_ids";
  let rec go acc c = if c < 0 then List.rev acc else go (c :: acc) t.next_sibling.(c) in
  go [] t.first_child.(id)

(* --- Reconstruction: arrays -> tree ------------------------------------- *)

type frame = { id : int; mutable next : int; mutable kids_rev : Node.t list }

let rebuild t id0 =
  check t id0 "rebuild";
  let text id = Node.text t.atoms.(t.text_atom.(id)) in
  let mk_elem id kids_rev =
    let tag = Symbol.name (Symbol.of_int t.tags.(id)) in
    let attrs =
      List.init t.attr_len.(id) (fun k ->
          let a = t.attr_start.(id) + k in
          (t.attr_names.(a), t.atoms.(t.attr_value.(a))))
    in
    Node.elem ~attrs tag (List.rev kids_rev)
  in
  if t.tags.(id0) < 0 then text id0
  else begin
    (* Post-order assembly over an explicit frame stack: a frame walks
       its sibling chain, descending into element children; when the
       chain is exhausted the element is built and handed to its
       parent frame. Depth-proportional heap, constant OCaml stack. *)
    let stack = ref [ { id = id0; next = t.first_child.(id0); kids_rev = [] } ] in
    let result = ref None in
    while !result = None do
      match !stack with
      | [] -> assert false
      | f :: rest ->
        if f.next >= 0 then begin
          let c = f.next in
          f.next <- t.next_sibling.(c);
          if t.tags.(c) < 0 then f.kids_rev <- text c :: f.kids_rev
          else stack := { id = c; next = t.first_child.(c); kids_rev = [] } :: !stack
        end
        else begin
          let node = mk_elem f.id f.kids_rev in
          stack := rest;
          match rest with
          | [] -> result := Some node
          | parentf :: _ -> parentf.kids_rev <- node :: parentf.kids_rev
        end
    done;
    match !result with Some node -> node | None -> assert false
  end
