(** XML instance trees.

    The model mirrors the paper's notation: elements carry a tag, a list
    of attributes (black circles, [@name]) and an ordered list of
    children; text content (white circles, [value]) is a child node
    holding an atom. Sibling order is significant — the paper's expected
    outputs are printed as ordered trees — but an order-insensitive
    comparison is also provided for testing set-like results. *)

type t =
  | Element of element
  | Text of Atom.t

and element = {
  id : int;
      (** allocation-unique element identity (assigned by {!elem}),
          used by {!Index} and provenance seen-sets; ignored by
          {!equal}/{!compare} *)
  tag : string;
  sym : Symbol.t;
      (** the interned [tag] (cached at construction): tag tests on
          hot paths are int compares, see {!Symbol} *)
  attrs : (string * Atom.t) list;
  children : t list;
}

(** {1 Construction} *)

val elem : ?attrs:(string * Atom.t) list -> string -> t list -> t
val text : Atom.t -> t
val text_string : string -> t

(** [leaf tag atom] is an element whose only child is a text node —
    the paper's [ename = John Smith] shape. *)
val leaf : ?attrs:(string * Atom.t) list -> string -> Atom.t -> t

(** {1 Access} *)

(** [as_element n] is the element payload of [n].
    @raise Invalid_argument on a text node. *)
val as_element : t -> element

val tag : t -> string

(** [children_named e name] is the sub-elements of [e] tagged [name],
    in document order. *)
val children_named : element -> string -> element list

val child_elements : element -> element list

(** [attr e name] is the value of attribute [name], if present. *)
val attr : element -> string -> Atom.t option

(** [text_value e] is the concatenated text content directly under [e],
    or [None] when [e] has no text child. *)
val text_value : element -> Atom.t option

(** {1 Comparison} *)

val equal : t -> t -> bool

(** Equality up to reordering of attributes and of sibling elements. *)
val equal_unordered : t -> t -> bool

val compare : t -> t -> int

(** {1 Measures} *)

(** [size n] is the number of nodes (elements + attributes + texts). *)
val size : t -> int

val depth : t -> int

(** [count_elements n tagname] counts descendant-or-self elements with
    the given tag. *)
val count_elements : t -> string -> int

val pp : Format.formatter -> t -> unit
