(** A struct-of-arrays (columnar) document representation.

    Nodes carry preorder ids (the root is 0; every parent precedes its
    descendants; sibling ids increase in document order). Per-node
    properties live in flat arrays — interned tag symbols, parent /
    first-child / next-sibling links, attribute ranges — and every
    atomic value is an index into one shared, deduplicated atom table,
    so traversals are int-array sweeps instead of pointer chases. This
    is the substrate of the vectorized execution path (the [`Columnar]
    representation of {!Clip_core.Engine.run}).

    {!of_node} keeps a back-pointer to the original boxed node of each
    id, so {!to_node} is O(1) and returns the {e physically identical}
    subtree — identity-keyed caches ({!Index}, provenance) and
    byte-identical outputs keep working when columnar and tree
    execution mix. {!rebuild} is the genuine array-to-tree
    reconstruction, sharing nothing with the input; [rebuild d 0] is
    {!Node.equal} to the converted document.

    Atoms are deduplicated by {e exact representation} (floats as IEEE
    bits), never by the looser {!Atom.equal} classes, so values read
    through the columnar path print and compare exactly like the boxed
    originals. Both conversions are total and stack-safe (explicit
    worklists — depth-proportional heap, constant OCaml stack). *)

type t = private {
  tags : int array;  (** per node: [(element.sym :> int)]; [-1] = text *)
  parent : int array;  (** [-1] for the root *)
  first_child : int array;  (** [-1] when childless *)
  next_sibling : int array;  (** [-1] for a last sibling *)
  nchildren : int array;  (** per node: child count (elements and texts) *)
  attr_start : int array;  (** per node: first slot in [attr_names] *)
  attr_len : int array;  (** per node: attribute count *)
  attr_names : string array;  (** per attribute slot *)
  attr_value : int array;  (** per attribute slot: index into [atoms] *)
  text_atom : int array;  (** per text node: index into [atoms]; else [-1] *)
  text_value : int array;
      (** per element: precomputed {!Node.text_value} atom; [-1] = none *)
  atoms : Atom.t array;  (** shared deduplicated atom table *)
  nodes : Node.t array;  (** per node: the original boxed subtree *)
  by_elem : (int, int) Hashtbl.t;  (** [Node.element.id] -> node id *)
  elem_lo : int;  (** base of [elem_map] *)
  elem_map : int array;
      (** dense [Node.element.id - elem_lo] -> node id map ([-1] =
          absent); empty when the document's allocation ids are too
          sparse, and lookups fall back to [by_elem] *)
  elements : int;
}

(** The document-representation switch threaded from
    {!Clip_core.Engine.run} down to both backends: [`Tree] runs the
    boxed-tree interpreters (the differential oracle), [`Columnar] the
    array path, [`Auto] picks columnar when the document is large
    enough that conversion pays for itself. All representations are
    output-identical. *)
type repr = [ `Tree | `Columnar | `Auto ]

(** [of_node root] — one conversion pass: preorder numbering, sibling
    links, attribute ranges, atom interning. Total and stack-safe on
    documents of any depth. *)
val of_node : Node.t -> t

(** [to_node t id] — the original boxed subtree rooted at [id]; O(1)
    and physically identical to the corresponding subtree of the
    converted document.
    @raise Invalid_argument when [id] is out of range. *)
val to_node : t -> int -> Node.t

(** [rebuild t id] — reconstruct the subtree at [id] purely from the
    arrays (fresh nodes, nothing shared with the input). Stack-safe.
    [rebuild t 0] is {!Node.equal} to the document [t] was built from.
    @raise Invalid_argument when [id] is out of range. *)
val rebuild : t -> int -> Node.t

(** [id_of t e] — the preorder id of (the first occurrence of) element
    [e] in [t], keyed by its allocation id; [None] for elements not
    part of the converted document (e.g. nodes constructed during
    evaluation — callers fall back to the tree path). *)
val id_of : t -> Node.element -> int option

(** [find_id t e] — like {!id_of} but non-allocating: the preorder id,
    or [-1] for elements not part of the converted document. The
    per-step lookup of the columnar evaluators. *)
val find_id : t -> Node.element -> int

(** Total number of nodes (elements + texts). *)
val length : t -> int

val element_count : t -> int
val is_element : t -> int -> bool

(** [tag t id] — the interned tag of element [id].
    @raise Invalid_argument on a text node or an out-of-range id. *)
val tag : t -> int -> Symbol.t

(** [text_value_of t id] — the precomputed {!Node.text_value} of
    element [id]: an O(1) array read on the columnar path. *)
val text_value_of : t -> int -> Atom.t option

(** [attr t id name] — attribute lookup through the attribute-range
    arrays; same semantics as {!Node.attr}. *)
val attr : t -> int -> string -> Atom.t option

(** [children_ids t id] — child ids of [id] (elements and texts), in
    document order, off the sibling chain. *)
val children_ids : t -> int -> int list
