type t =
  | Element of element
  | Text of Atom.t

and element = {
  id : int;
  tag : string;
  sym : Symbol.t;
  attrs : (string * Atom.t) list;
  children : t list;
}

(* Element ids are allocation-unique (the hash-consed identity behind
   {!Index} and provenance seen-sets); they carry no document meaning
   and are ignored by comparison. [sym] is the interned [tag] —
   cached at construction so every downstream tag test is an int
   compare. The counter is atomic: a plain [incr] under Domain.spawn
   can lose updates and hand two elements the same id, which would
   alias them in every id-keyed cache. *)
let next_id = Atomic.make 0

let elem ?(attrs = []) tag children =
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  Element { id; tag; sym = Symbol.intern tag; attrs; children }
let text a = Text a
let text_string s = Text (Atom.String s)
let leaf ?attrs tag a = elem ?attrs tag [ Text a ]

let as_element = function
  | Element e -> e
  | Text a -> invalid_arg ("Node.as_element: text node " ^ Atom.to_string a)

let tag = function
  | Element e -> e.tag
  | Text _ -> invalid_arg "Node.tag: text node"

let child_elements e =
  List.filter_map (function Element c -> Some c | Text _ -> None) e.children

let children_named e name =
  let sym = Symbol.intern name in
  List.filter (fun c -> Symbol.equal c.sym sym) (child_elements e)

let attr e name = List.assoc_opt name e.attrs

let text_value e =
  let texts =
    List.filter_map (function Text a -> Some a | Element _ -> None) e.children
  in
  match texts with
  | [] -> None
  | [ a ] -> Some a
  | many -> Some (Atom.String (String.concat "" (List.map Atom.to_string many)))

let rec compare a b =
  match a, b with
  | Text x, Text y -> Atom.compare x y
  | Text _, Element _ -> -1
  | Element _, Text _ -> 1
  | Element x, Element y ->
    let r = if Symbol.equal x.sym y.sym then 0 else String.compare x.tag y.tag in
    if r <> 0 then r
    else
      let r = compare_attrs x.attrs y.attrs in
      if r <> 0 then r else compare_list x.children y.children

and compare_attrs xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (k1, v1) :: xs, (k2, v2) :: ys ->
    let r = String.compare k1 k2 in
    if r <> 0 then r
    else
      let r = Atom.compare v1 v2 in
      if r <> 0 then r else compare_attrs xs ys

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let r = compare x y in
    if r <> 0 then r else compare_list xs ys

let equal a b = compare a b = 0

(* Canonical form for order-insensitive comparison: sort attributes by
   name and siblings by their own canonical rendering. *)
let rec canonical = function
  | Text a -> Text a
  | Element e ->
    let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) e.attrs in
    let children = List.map canonical e.children in
    let children = List.sort compare children in
    Element { e with attrs; children }

let equal_unordered a b = equal (canonical a) (canonical b)

let rec size = function
  | Text _ -> 1
  | Element e -> 1 + List.length e.attrs + List.fold_left (fun n c -> n + size c) 0 e.children

let rec depth = function
  | Text _ -> 1
  | Element e -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 e.children

let count_elements n tagname =
  let sym = Symbol.intern tagname in
  let rec go n =
    match n with
    | Text _ -> 0
    | Element e ->
      let self = if Symbol.equal e.sym sym then 1 else 0 in
      List.fold_left (fun n c -> n + go c) self e.children
  in
  go n

let rec pp fmt = function
  | Text a -> Atom.pp fmt a
  | Element e ->
    let pp_attr fmt (k, v) = Format.fprintf fmt " %s=%S" k (Atom.to_string v) in
    if e.children = [] then
      Format.fprintf fmt "<%s%a/>" e.tag (Format.pp_print_list pp_attr) e.attrs
    else
      Format.fprintf fmt "<%s%a>%a</%s>" e.tag
        (Format.pp_print_list pp_attr)
        e.attrs
        (Format.pp_print_list pp)
        e.children e.tag
