(* A one-pass statistics summary of an instance document.

   The adaptive planner ({!Clip_plan} with the [`Cost] policy) prices
   generator chains with per-tag cardinalities: the estimated size of
   [source.dept.Proj] is the Proj count, the estimated per-department
   fan-out of [d.Proj] is Proj count / dept count, and so on. One
   preorder walk collects everything; with a session cache the walk
   runs once per document, not once per run. *)

type t = {
  nodes : int; (* elements + attributes + texts, like Node.size *)
  elements : int;
  depth : int;
  max_fanout : int; (* most element children under one element *)
  counts : (Symbol.t, int) Hashtbl.t; (* elements per tag *)
}

let collect doc =
  let counts = Hashtbl.create 64 in
  let nodes = ref 0 and elements = ref 0 and max_fanout = ref 0 in
  let bump sym =
    Hashtbl.replace counts sym (1 + Option.value ~default:0 (Hashtbl.find_opt counts sym))
  in
  let rec walk depth n =
    match n with
    | Node.Text _ ->
      incr nodes;
      depth
    | Node.Element e ->
      incr nodes;
      incr elements;
      nodes := !nodes + List.length e.Node.attrs;
      bump e.Node.sym;
      let fanout = ref 0 in
      let deepest =
        List.fold_left
          (fun acc c ->
            (match c with Node.Element _ -> incr fanout | Node.Text _ -> ());
            max acc (walk (depth + 1) c))
          depth e.Node.children
      in
      if !fanout > !max_fanout then max_fanout := !fanout;
      deepest
  in
  let depth = walk 1 doc in
  {
    nodes = !nodes;
    elements = !elements;
    depth;
    max_fanout = !max_fanout;
    counts;
  }

(* The columnar variant: one forward sweep over the {!Doc} arrays.
   Preorder ids guarantee a parent precedes its children, so per-node
   depth and per-parent fan-out resolve in the same pass — no walk,
   no pointer chasing. Produces exactly what {!collect} produces on
   the boxed tree the doc was converted from. *)
let collect_doc (doc : Doc.t) =
  let n = Doc.length doc in
  let counts = Hashtbl.create 64 in
  let bump sym =
    Hashtbl.replace counts sym (1 + Option.value ~default:0 (Hashtbl.find_opt counts sym))
  in
  let nodes = ref 0 and elements = ref 0 and max_fanout = ref 0 and depth = ref 0 in
  let depths = Array.make (max n 1) 1 in
  let fanout = Array.make (max n 1) 0 in
  for id = 0 to n - 1 do
    let p = doc.Doc.parent.(id) in
    let d = if p < 0 then 1 else depths.(p) + 1 in
    depths.(id) <- d;
    if d > !depth then depth := d;
    if Doc.is_element doc id then begin
      incr elements;
      nodes := !nodes + 1 + doc.Doc.attr_len.(id);
      bump (Doc.tag doc id);
      if p >= 0 then begin
        fanout.(p) <- fanout.(p) + 1;
        if fanout.(p) > !max_fanout then max_fanout := fanout.(p)
      end
    end
    else incr nodes
  done;
  {
    nodes = !nodes;
    elements = !elements;
    depth = !depth;
    max_fanout = !max_fanout;
    counts;
  }

let tag_count t sym = Option.value ~default:0 (Hashtbl.find_opt t.counts sym)
let node_count t = t.nodes
let element_count t = t.elements
let depth t = t.depth
let max_fanout t = t.max_fanout

let pp fmt t =
  Format.fprintf fmt "@[<v>nodes %d, elements %d, depth %d, max fan-out %d"
    t.nodes t.elements t.depth t.max_fanout;
  let tags =
    Hashtbl.fold (fun sym n acc -> (Symbol.name sym, n) :: acc) t.counts []
  in
  List.iter
    (fun (tag, n) -> Format.fprintf fmt "@,  %s: %d" tag n)
    (List.sort compare tags);
  Format.fprintf fmt "@]"
