(** A streaming (SAX-style, pull-based) XML event lexer over an
    incremental byte feed.

    Where {!Parser} materialises a whole {!Node.t} from one resident
    string, this module recognises the same grammar over chunks pulled
    on demand from a producer ({!of_channel}, {!of_chunks}) through a
    sliding window whose residency is one chunk plus the longest
    pending lookahead — the substrate of bounded-memory ingestion and
    the shard cutter ({!Clip_shard}).

    Two contracts tie it to {!Parser} (pinned by test/test_stream.ml):

    - {b chunk-boundary independence} — the event sequence (and the
      document {!parse_result} builds from it) is the same whether the
      bytes arrive one at a time, in arbitrary chunks, or as a single
      string;
    - {b diagnostic identity} — malformed input produces the same
      [CLIP-XML-001] / [CLIP-LIM-001] / [CLIP-LIM-002] codes, messages
      and (absolute) spans as [Parser.parse_string_result] on the same
      bytes. The input-size limit included: [Parser] checks it up
      front against the whole string, so on an oversized document that
      is {e also} syntactically broken early, before surfacing any
      other failure a chunked feed drains and sizes the rest of the
      feed and reports [CLIP-LIM-001] exactly as [Parser] would —
      diagnostics never depend on where the feed was cut. *)

(** One markup event. Text is delivered exactly as {!Parser} would
    store it: whitespace-only runs dropped, surrounding space trimmed,
    entities decoded ([Atom.of_string] typed); CDATA kept raw as
    [Atom.String]. [End] carries the (already match-checked) tag. *)
type event =
  | Start of { tag : string; attrs : (string * Atom.t) list }
  | Text of Atom.t
  | End of string

type source

(** [of_chunks refill] — a source pulling bytes from [refill]: [Some
    chunk] to append bytes (empty chunks are skipped), [None] once the
    feed is exhausted. [refill] is called lazily, only when the lexer
    needs more bytes. *)
val of_chunks : ?limits:Clip_diag.Limits.t -> (unit -> string option) -> source

(** [of_string s] — the whole string as one chunk; event-for-event and
    diagnostic-for-diagnostic equivalent to {!Parser.parse_string_result}
    on [s]. *)
val of_string : ?limits:Clip_diag.Limits.t -> string -> source

(** [of_channel ic] — read [ic] in [chunk_bytes]-sized chunks (default
    64 KiB). The channel is not closed. *)
val of_channel :
  ?limits:Clip_diag.Limits.t -> ?chunk_bytes:int -> in_channel -> source

(** [next_result src] — the next event, [Ok None] once the document
    (root element plus trailing misc) has been fully consumed, or the
    diagnostics of the first failure. A failed source latches: every
    subsequent call returns the same error. The [xml.parse]
    {!Clip_fault} site fires once, before the first byte is
    consumed — same boundary as the tree parser. *)
val next_result : source -> (event option, Clip_diag.t list) result

(** [pos src] — the absolute byte offset of the next unconsumed byte;
    after an [End] event this is the end of the closing tag. The shard
    cutter uses deltas of this as true per-subtree byte sizes. *)
val pos : source -> int

(** [subtree_result src ~tag ~attrs] — having just received
    [Start {tag; attrs}], consume events up to (and including) the
    matching [End] and build that subtree. The shard cutter uses this
    to materialise one repeated element at a time while skipping the
    rest of the document. *)
val subtree_result :
  source ->
  tag:string ->
  attrs:(string * Atom.t) list ->
  (Node.t, Clip_diag.t list) result

(** [parse_result src] — drive the source to completion and build the
    document; [Node.equal]-identical (same text typing, same attribute
    order) to [Parser.parse_string_result] of the same bytes, with
    identical diagnostics on failure. *)
val parse_result : source -> (Node.t, Clip_diag.t list) result
