(* A pull-based (SAX-style) event lexer over an incremental byte feed.

   This is [Parser] re-cut as a state machine: every recognising
   function below is a line-for-line port of its recursive-descent
   counterpart, reading through a sliding byte window that is refilled
   from a caller-supplied chunk producer instead of indexing one
   resident string. Two invariants tie the two parsers together and
   are pinned by test/test_stream.ml:

   - {e chunk-boundary independence} — the produced events (and hence
     the document built by {!parse_result}) do not depend on where the
     feed is cut: byte-by-byte, random chunks and one whole-string
     chunk all yield identical results, because every lookahead
     ([looking_at], up to the 9 bytes of ["<![CDATA["]) first ensures
     the window holds enough bytes;
   - {e diagnostic identity} — errors carry the same CLIP-XML-* /
     CLIP-LIM-* codes, messages and spans as [Parser.parse_string_result]
     on the same bytes. Spans are global: the window keeps absolute
     offset / line / beginning-of-line positions across refills.

   Diagnostic identity holds for the input-size limit too: [Parser]
   checks it up front against the whole string, so an oversized
   document always reports CLIP-LIM-001 even when its first byte is
   garbage. A chunked feed only discovers the total size as it reads,
   so before latching any other failure it drains and sizes the rest
   of the feed ([size_precedence]) and lets the limit verdict win —
   the reported diagnostic does not depend on where the feed was cut. *)

type event =
  | Start of { tag : string; attrs : (string * Atom.t) list }
  | Text of Atom.t
  | End of string

type phase = Prolog | Content | Epilog | Finished

type source = {
  refill : unit -> string option;
  mutable win : string; (* bytes [wpos, length win) are unconsumed *)
  mutable wpos : int;
  mutable base : int; (* global offset of win.[0] *)
  mutable at_eof : bool; (* the producer is exhausted *)
  mutable fed : int; (* total bytes accepted from the producer *)
  mutable line : int;
  mutable bol : int; (* global offset of the current line start *)
  mutable depth : int; (* current element-nesting depth *)
  limits : Clip_diag.Limits.t;
  mutable phase : phase;
  mutable stack : string list; (* open elements, innermost first *)
  tbuf : Buffer.t; (* pending character data *)
  mutable pending : event list; (* recognised but undelivered events *)
  mutable started : bool; (* the xml.parse fault point has fired *)
  mutable failed : Clip_diag.t list option; (* latched first failure *)
}

let pos st = st.base + st.wpos

let here st =
  Clip_diag.span ~offset:(pos st) ~line:st.line ~col:(pos st - st.bol + 1) ()

let error_at ?(code = Clip_diag.Codes.xml_syntax) ?hints st message =
  Clip_diag.fail (Clip_diag.error ~span:(here st) ?hints ~code message)

let error st message = error_at st message

(* [Parser] checks the size limit before touching a byte, at position
   0; a feed reproduces the identical diagnostic (total size included)
   by draining the producer once the running total exceeds the limit. *)
let oversized_error ~total st =
  Clip_diag.error
    ~span:(Clip_diag.span ~offset:0 ~line:1 ~col:1 ())
    ~hints:[ "raise Limits.max_input_bytes to accept larger documents" ]
    ~code:Clip_diag.Codes.limit_input_bytes
    (Printf.sprintf "input is %d bytes, larger than the limit of %d" total
       st.limits.Clip_diag.Limits.max_input_bytes)

(* Consume the rest of the producer and return the total byte count of
   the whole feed. A producer failure while draining just ends the
   count early: the drain runs on paths that already hold a verdict. *)
let drain_total st =
  let total = ref st.fed in
  (try
     let rec drain () =
       match st.refill () with
       | None -> ()
       | Some chunk ->
         total := !total + String.length chunk;
         drain ()
     in
     drain ()
   with _ -> ());
  st.at_eof <- true;
  !total

let oversized st = Clip_diag.fail (oversized_error ~total:(drain_total st) st)

(* Pull the next non-empty chunk, compacting the consumed prefix of
   the window away so memory is bounded by one chunk plus the longest
   unconsumed lookahead, not the document. *)
let rec pull st =
  if not st.at_eof then
    match st.refill () with
    | None -> st.at_eof <- true
    | Some "" -> pull st
    | Some chunk ->
      st.fed <- st.fed + String.length chunk;
      if st.fed > st.limits.Clip_diag.Limits.max_input_bytes then oversized st;
      let keep = String.length st.win - st.wpos in
      let b = Bytes.create (keep + String.length chunk) in
      Bytes.blit_string st.win st.wpos b 0 keep;
      Bytes.blit_string chunk 0 b keep (String.length chunk);
      st.base <- st.base + st.wpos;
      st.wpos <- 0;
      st.win <- Bytes.unsafe_to_string b

let avail st = String.length st.win - st.wpos

let ensure st n =
  while avail st < n && not st.at_eof do
    pull st
  done

let eof st =
  ensure st 1;
  avail st = 0

let peek st = if eof st then '\000' else st.win.[st.wpos]

let advance st =
  if not (eof st) then begin
    if peek st = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- pos st + 1
    end;
    st.wpos <- st.wpos + 1
  end

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  ensure st n;
  avail st >= n && String.sub st.win st.wpos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else error st (Printf.sprintf "expected %S" s)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let buf = Buffer.create 16 in
  while (not (eof st)) && is_name_char (peek st) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  Buffer.contents buf

(* Verbatim from [Parser]: called at the same points (after the
   closing quote, at the text-flush boundary), so error positions
   agree. *)
let decode_entities st s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> error st "unterminated entity reference"
      | Some j ->
        let ent = String.sub s (!i + 1) (j - !i - 1) in
        let repl =
          match ent with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ ->
            if String.length ent > 1 && ent.[0] = '#' then
              let code =
                if ent.[1] = 'x' || ent.[1] = 'X' then
                  int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
                else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
              in
              match code with
              | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
              | Some _ | None -> error st ("unsupported character reference &" ^ ent ^ ";")
            else error st ("unknown entity &" ^ ent ^ ";")
        in
        Buffer.add_string buf repl;
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let parse_quoted st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected a quoted value";
  advance st;
  let buf = Buffer.create 16 in
  while (not (eof st)) && peek st <> quote do
    Buffer.add_char buf (peek st);
    advance st
  done;
  if eof st then error st "unterminated attribute value";
  let raw = Buffer.contents buf in
  advance st;
  decode_entities st raw

let skip_comment st =
  expect st "<!--";
  let rec loop () =
    if eof st then error st "unterminated comment"
    else if looking_at st "-->" then expect st "-->"
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let rec skip_misc st =
  skip_spaces st;
  if looking_at st "<!--" then begin
    skip_comment st;
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    let depth = ref 0 in
    let rec loop () =
      if eof st then error st "unterminated DOCTYPE"
      else begin
        (match peek st with
         | '[' -> incr depth
         | ']' -> decr depth
         | '>' when !depth = 0 ->
           advance st;
           raise Exit
         | _ -> ());
        advance st;
        loop ()
      end
    in
    (try loop () with Exit -> ());
    skip_misc st
  end
  else if looking_at st "<?" then begin
    let rec loop () =
      if eof st then error st "unterminated processing instruction"
      else if looking_at st "?>" then expect st "?>"
      else begin
        advance st;
        loop ()
      end
    in
    loop ();
    skip_misc st
  end

let parse_attrs st =
  let rec loop acc =
    skip_spaces st;
    let c = peek st in
    if c = '>' || c = '/' || eof st then List.rev acc
    else
      let name = parse_name st in
      skip_spaces st;
      expect st "=";
      skip_spaces st;
      let value = parse_quoted st in
      loop ((name, Atom.of_string value) :: acc)
  in
  loop []

(* The cursor is on a '<' opening an element. Mirrors [parse_element]:
   depth is incremented (and bounds-checked, same code and hints)
   before the tag is read, decremented when the element closes. *)
let start_element st =
  st.depth <- st.depth + 1;
  if st.depth > st.limits.Clip_diag.Limits.max_xml_depth then
    error_at st ~code:Clip_diag.Codes.limit_xml_depth
      ~hints:[ "raise Limits.max_xml_depth to accept deeper documents" ]
      (Printf.sprintf "element nesting exceeds the limit of %d"
         st.limits.Clip_diag.Limits.max_xml_depth);
  expect st "<";
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_spaces st;
  if looking_at st "/>" then begin
    expect st "/>";
    st.depth <- st.depth - 1;
    if st.stack = [] then st.phase <- Epilog;
    [ Start { tag; attrs }; End tag ]
  end
  else begin
    expect st ">";
    st.stack <- tag :: st.stack;
    st.phase <- Content;
    [ Start { tag; attrs } ]
  end

let flush_text st =
  let s = Buffer.contents st.tbuf in
  Buffer.clear st.tbuf;
  if String.for_all is_space s then []
  else [ Text (Atom.of_string (decode_entities st (String.trim s))) ]

(* One step inside element [tagname] (the innermost open element);
   returns any events recognised — possibly none, e.g. after a
   comment — and the driver loops. Branches and their order mirror
   [parse_content]. *)
let content_step st tagname =
  if eof st then error st ("unterminated element <" ^ tagname ^ ">")
  else if looking_at st "</" then begin
    let flushed = flush_text st in
    expect st "</";
    let closing = parse_name st in
    skip_spaces st;
    expect st ">";
    if not (String.equal closing tagname) then
      error st
        (Printf.sprintf "mismatched closing tag: expected </%s>, found </%s>"
           tagname closing);
    st.stack <- List.tl st.stack;
    st.depth <- st.depth - 1;
    if st.stack = [] then st.phase <- Epilog;
    flushed @ [ End tagname ]
  end
  else if looking_at st "<!--" then begin
    let flushed = flush_text st in
    skip_comment st;
    flushed
  end
  else if looking_at st "<![CDATA[" then begin
    let flushed = flush_text st in
    expect st "<![CDATA[";
    let buf = Buffer.create 16 in
    while (not (eof st)) && not (looking_at st "]]>") do
      Buffer.add_char buf (peek st);
      advance st
    done;
    if eof st then error st "unterminated CDATA section";
    expect st "]]>";
    (* CDATA contributes literal text, no entity decoding; the flushed
       text precedes it, as in [parse_content]. *)
    flushed @ [ Text (Atom.String (Buffer.contents buf)) ]
  end
  else if peek st = '<' then flush_text st @ start_element st
  else begin
    (* Character data: consume the whole run up to the next markup. *)
    while (not (eof st)) && peek st <> '<' do
      Buffer.add_char st.tbuf (peek st);
      advance st
    done;
    []
  end

let rec next_ev st =
  match st.pending with
  | e :: rest ->
    st.pending <- rest;
    Some e
  | [] ->
    (match st.phase with
     | Finished -> None
     | Prolog ->
       skip_misc st;
       if eof st then error st "empty document";
       st.pending <- start_element st;
       next_ev st
     | Content ->
       (match st.stack with
        | tag :: _ ->
          st.pending <- content_step st tag;
          next_ev st
        | [] -> assert false)
     | Epilog ->
       skip_misc st;
       if not (eof st) then error st "trailing content after the root element";
       st.phase <- Finished;
       None)

(* Keep diagnostics chunking-independent: [Parser] checks the size
   limit up front against the whole string, so on an oversized document
   it reports CLIP-LIM-001 even when an early byte is garbage. A
   chunked feed may recognise the garbage before the running total
   reaches the limit — so before latching any other failure, drain and
   size the rest of the feed and let the limit verdict take precedence.
   Injected faults escape unchanged: their boundary is before any byte
   is consumed, on both parsers. *)
let size_precedence st ds =
  let keeps d =
    let code = d.Clip_diag.code in
    String.equal code Clip_diag.Codes.limit_input_bytes
    || (String.length code >= 8 && String.equal (String.sub code 0 8) "CLIP-FLT")
  in
  if List.exists keeps ds then ds
  else
    let total = drain_total st in
    if total > st.limits.Clip_diag.Limits.max_input_bytes then
      [ oversized_error ~total st ]
    else ds

let next_result st =
  match st.failed with
  | Some ds -> Error ds
  | None ->
    (match
       Clip_diag.guard (fun () ->
           if not st.started then begin
             st.started <- true;
             (* Same fault boundary as [Parser.parse_string_result]:
                an injected xml.parse fault escapes as a structured
                [Error] before any byte is consumed. *)
             Clip_fault.hit Clip_fault.Site.xml_parse
           end;
           next_ev st)
     with
     | Ok _ as ok -> ok
     | Error ds ->
       let ds = size_precedence st ds in
       st.failed <- Some ds;
       Error ds)

let make ?(limits = Clip_diag.Limits.default) refill =
  {
    refill;
    win = "";
    wpos = 0;
    base = 0;
    at_eof = false;
    fed = 0;
    line = 1;
    bol = 0;
    depth = 0;
    limits;
    phase = Prolog;
    stack = [];
    tbuf = Buffer.create 64;
    pending = [];
    started = false;
    failed = None;
  }

let of_chunks ?limits refill = make ?limits refill

let of_string ?limits s =
  (* One whole-string chunk: the first refill sees the full length, so
     the size limit behaves exactly like [Parser]'s up-front check. *)
  let sent = ref false in
  make ?limits (fun () ->
      if !sent then None
      else begin
        sent := true;
        Some s
      end)

let of_channel ?limits ?(chunk_bytes = 65536) ic =
  let chunk_bytes = max 1 chunk_bytes in
  let buf = Bytes.create chunk_bytes in
  make ?limits (fun () ->
      let n = input ic buf 0 chunk_bytes in
      if n = 0 then None else Some (Bytes.sub_string buf 0 n))

let next_must st =
  match next_result st with
  | Ok (Some e) -> e
  | Ok None -> error st "empty document"
  | Error ds -> raise (Clip_diag.Fail ds)

let rec build_subtree st tag attrs acc =
  match next_must st with
  | Text a -> build_subtree st tag attrs (Node.text a :: acc)
  | Start { tag = t; attrs = a } ->
    let child = build_subtree st t a [] in
    build_subtree st tag attrs (child :: acc)
  | End _ -> Node.elem ~attrs tag (List.rev acc)

let subtree_result st ~tag ~attrs =
  Clip_diag.guard (fun () -> build_subtree st tag attrs [])

let parse_result st =
  Clip_diag.guard (fun () ->
      match next_must st with
      | Start { tag; attrs } ->
        let root = build_subtree st tag attrs [] in
        (match next_result st with
         | Ok None -> root
         | Ok (Some _) -> assert false
         | Error ds -> raise (Clip_diag.Fail ds))
      | Text _ | End _ -> assert false)
