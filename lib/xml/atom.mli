(** Atomic values carried by XML attributes and text nodes.

    Clip schemas type their leaves with the atomic types of the paper
    ([String], [int], ...); instances carry the corresponding values. *)

type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

val string : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t

(** [to_string a] renders the value the way the paper prints instance
    leaves (integers without decoration, floats trimmed). *)
val to_string : t -> string

(** [of_string s] guesses the tightest atomic type for a lexical value:
    int, then float, then bool, then string. Used by the XML parser,
    which has no schema at hand. *)
val of_string : string -> t

(** Structural equality with numeric promotion: [Int 3 = Float 3.0]. *)
val equal : t -> t -> bool

(** Total order consistent with {!equal}; numerics compare numerically,
    cross-kind comparisons fall back to kind rank then lexical value. *)
val compare : t -> t -> int

(** Numeric view, if any. *)
val to_float : t -> float option

(** One hashable shape per {!equal}-equivalence class — the single
    normalisation shared by the plan layer's hash joins and both
    backends' grouping and dedup keys. [key (Int 3) = key (Float 3.)],
    all NaNs collapse to one key, and [0.] and [-0.] collapse to one
    key ([Float.equal], hence {!equal}, holds on signed zeros).
    Integers beyond the 2^53 float range coarsen onto their nearest
    float, so exact consumers re-check the original predicate on each
    hash hit. *)
type key =
  | KString of string
  | KNum of int64  (** IEEE bits; NaNs and [-0.] canonicalised *)
  | KBool of bool

val key : t -> key

val pp : Format.formatter -> t -> unit
