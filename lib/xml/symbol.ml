(* A global element-tag symbol table.

   Tags are interned into dense non-negative ints so that the hot
   paths of both backends — child scans, the tag index, statistics —
   compare tags with an int equality instead of hashing or walking a
   string. Interning is append-only: a symbol, once assigned, never
   changes meaning, which is what makes it sound to store symbols
   inside immutable nodes ({!Node.element.sym}) and inside caches that
   outlive a single run ({!Index}, {!Stats}, session plan caches).

   The table is global and grows monotonically. That is deliberate:
   tag vocabularies are schema-sized (dozens of names, not millions),
   so a process-wide table costs nothing and lets symbols flow between
   documents, sessions and plans without translation. *)

type t = int

let names : string array ref = ref (Array.make 64 "")
let count = ref 0
let ids : (string, int) Hashtbl.t = Hashtbl.create 64

let intern s =
  match Hashtbl.find_opt ids s with
  | Some i -> i
  | None ->
    let i = !count in
    if i = Array.length !names then begin
      let bigger = Array.make (2 * i) "" in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) <- s;
    incr count;
    Hashtbl.add ids s i;
    i

let name i =
  if i < 0 || i >= !count then invalid_arg "Symbol.name: unknown symbol";
  !names.(i)

let interned () = !count
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i
