(* A global element-tag symbol table, safe under Domain.spawn.

   Tags are interned into dense non-negative ints so that the hot
   paths of both backends — child scans, the tag index, statistics —
   compare tags with an int equality instead of hashing or walking a
   string. Interning is append-only: a symbol, once assigned, never
   changes meaning, which is what makes it sound to store symbols
   inside immutable nodes ({!Node.element.sym}) and inside caches that
   outlive a single run ({!Index}, {!Stats}, session plan caches).

   The table is global and grows monotonically. That is deliberate:
   tag vocabularies are schema-sized (dozens of names, not millions),
   so a process-wide table costs nothing and lets symbols flow between
   documents, sessions, plans and worker domains without translation.

   Concurrency design: the whole table is one immutable snapshot
   ({!state}: a frozen id→name array and a frozen name→id hashtable)
   published through an [Atomic.t]. Readers — [intern] hits, [name],
   [interned] — load the snapshot and read frozen data, lock-free.
   A miss takes [mu], re-checks under the lock, builds a NEW array and
   a NEW hashtable (copy + one insert) and publishes them atomically;
   the old snapshot is never mutated, so a concurrent reader sees
   either the old complete table or the new complete table, never a
   half-resized one. The copy-per-miss cost is O(vocabulary), paid
   once per fresh tag — fine for schema-sized vocabularies.

   This also closes a latent single-domain race the old grow-and-blit
   table had: [names]/[count] were observable mid-resize by a
   reentrant intern (finaliser, signal handler), which could read a
   stale array or a slot not yet written. A frozen snapshot can never
   be observed in a partial state. *)

type t = int

type state = {
  names : string array;  (* frozen; length = number of symbols *)
  ids : (string, int) Hashtbl.t;  (* frozen after publication *)
}

let state = Atomic.make { names = [||]; ids = Hashtbl.create 1 }
let mu = Mutex.create ()

let intern s =
  let st = Atomic.get state in
  match Hashtbl.find_opt st.ids s with
  | Some i -> i
  | None ->
    Mutex.protect mu (fun () ->
        (* re-check: another domain may have published [s] since *)
        let st = Atomic.get state in
        match Hashtbl.find_opt st.ids s with
        | Some i -> i
        | None ->
          let i = Array.length st.names in
          let names = Array.append st.names [| s |] in
          let ids = Hashtbl.copy st.ids in
          Hashtbl.add ids s i;
          Atomic.set state { names; ids };
          i)

let name i =
  let st = Atomic.get state in
  if i < 0 || i >= Array.length st.names then
    invalid_arg "Symbol.name: unknown symbol";
  st.names.(i)

let interned () = Array.length (Atomic.get state).names

let of_int i =
  if i < 0 || i >= interned () then invalid_arg "Symbol.of_int: unknown symbol";
  i
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i
