(** A parser for the XML subset Clip needs: elements, attributes, text,
    comments, CDATA sections, and prolog misc (XML declaration,
    processing instructions and DOCTYPE are skipped). No namespaces,
    DTD validation, or entities beyond the five predefined ones and
    character references — the paper's schemas never use them.

    The parser is total under {!parse_string_result}: every input
    either parses or yields spanned diagnostics ([CLIP-XML-001] for
    syntax errors, [CLIP-LIM-001]/[CLIP-LIM-002] when a resource guard
    trips). Element nesting is depth-guarded, so a pathologically deep
    document degrades to a diagnostic instead of a stack overflow. *)

exception Parse_error of { line : int; column : int; message : string }

(** [parse_string_result s] parses one document.
    [limits] defaults to {!Clip_diag.Limits.default}. *)
val parse_string_result :
  ?limits:Clip_diag.Limits.t -> string -> (Node.t, Clip_diag.t list) result

(** [parse_string s] parses one document and returns its root.
    @raise Parse_error on malformed input (a thin wrapper over
    {!parse_string_result}). *)
val parse_string : ?limits:Clip_diag.Limits.t -> string -> Node.t

(** [parse_string_opt s] is [Some root] or [None] on malformed input. *)
val parse_string_opt : ?limits:Clip_diag.Limits.t -> string -> Node.t option

(** Render a parse error for diagnostics. *)
val error_to_string : exn -> string
