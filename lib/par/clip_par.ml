(* A Domain.spawn work-pool for evaluating independent tasks in
   parallel with deterministic results.

   Design:
   - tasks are fixed in an array up front; workers claim indices from
     one atomic counter, so scheduling is dynamic (no static striping
     that would let one slow task idle a domain) while results land in
     their input slot — output order is input order, always;
   - every attempt at a task runs against a fresh scratch counter
     sink, merged into the worker's per-domain sink only when the
     attempt succeeds; the per-domain sinks are merged into the
     caller's sink with {!Clip_obs.Counters.add} after the join. Every
     counter is thus a sum of per-successful-task increments, so the
     merged totals are independent of the task-to-domain partition
     {e and} of how many tasks failed — survivors always sum to
     exactly the fault-free sequential totals;
   - {!map_results} isolates failure to its slot: a task that reports
     diagnostics (or raises {!Clip_diag.Fail}) yields [Error ds] in
     its input position and the rest of the batch completes; a bounded
     retry policy ([?retries]) re-attempts {e transient} failures
     ({!Clip_diag.is_transient}) immediately on the same worker, each
     attempt from a fresh scratch sink, so retried-then-successful
     tasks also count exactly once;
   - {!map} keeps the strict contract as a thin wrapper: any
     [Error ds] slot re-raises {!Clip_diag.Fail} for the lowest
     failing input index after every task has run. Exceptions other
     than [Clip_diag.Fail] are never converted to diagnostics — they
     are programming errors, captured with their backtrace and
     re-raised in the caller (again lowest index first);
   - with one job (or one task) the pool degenerates to a plain
     sequential loop on the calling domain — the parallel path is
     byte-identical to this baseline by construction of the layers
     below (evaluation state is fully explicit, see {!Clip_run}). *)

let default_jobs () = Domain.recommended_domain_count ()

type 'b slot =
  | Done of ('b, Clip_diag.t list) result
  | Raised of exn * Printexc.raw_backtrace
  | Pending

(* One task under the retry policy. [into] is the sink the successful
   attempt's scratch counters merge into (the worker's per-domain sink,
   or the caller's own in sequential mode). The [par.task] fault point
   sits inside the attempt, so an injected task fault is subject to
   exactly the retry/isolation treatment a real one gets. *)
let attempt ~retries ~into f x =
  let once () =
    let scratch =
      match into with
      | None -> None
      | Some _ -> Some (Clip_obs.Counters.create ())
    in
    let r =
      match
        Clip_fault.hit ~obs:scratch Clip_fault.Site.par_task;
        f ~obs:scratch x
      with
      | r -> r
      | exception Clip_diag.Fail ds -> Error ds
    in
    (match r, into, scratch with
     | Ok _, Some into, Some c -> Clip_obs.Counters.add ~into c
     | (Ok _ | Error _), _, _ -> ());
    r
  in
  let rec go left =
    match once () with
    | Ok _ as ok -> ok
    | Error ds when left > 0 && Clip_diag.has_transient ds -> go (left - 1)
    | Error _ as e -> e
  in
  go (max 0 retries)

let map_results ?jobs ?(retries = 0) ?obs f items =
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then
    (* Sequential degenerate case: same attempt machinery (scratch
       sinks, retries, fault point), caller's sink as the merge
       target, tasks in order on the calling domain. *)
    List.map (fun x -> attempt ~retries ~into:obs f x) items
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let c = Clip_obs.Counters.create () in
      let sink = match obs with None -> None | Some _ -> Some c in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match attempt ~retries ~into:sink f tasks.(i) with
              | r -> Done r
              | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ();
      c
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is worker number [jobs]. *)
    let mine = worker () in
    let per_domain = mine :: List.map Domain.join helpers in
    (match obs with
     | Some into -> List.iter (fun c -> Clip_obs.Counters.add ~into c) per_domain
     | None -> ());
    (* [Array.iter] is specified left-to-right, so a captured
       exception re-raises for the lowest failing input index,
       independent of scheduling. *)
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ | Pending -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Done r -> r
        | Raised _ | Pending -> assert false)
  end

(* Streaming pipeline. Unlike {!map_results} the task list is not known
   up front: a sequential producer yields items one at a time (the shard
   cutter holds one window of the input stream), workers evaluate them
   in parallel, and a sequential consumer folds the results strictly in
   production order (the shard merger). The producer is shared
   sequential state, so workers pull it under the pipeline mutex — the
   item index is assigned under the same lock, which is what makes the
   reorder buffer's order the production order. Scratch counters ride
   along with each result and merge into [?obs] only when the consumer
   accepts the [Ok] — a speculative task completed after the pipeline
   stopped contributes nothing, keeping totals identical to the
   sequential pipeline's. *)

type 'b stream_slot =
  | Sdone of ('b, Clip_diag.t list) result * Clip_obs.Counters.t option
  | Sraised of exn * Printexc.raw_backtrace

let stream_results ?jobs ?window ?(retries = 0) ?obs ~produce ~consume f =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs <= 1 then
    (* Sequential degenerate case: produce, evaluate, consume, repeat —
       the reference order the parallel pipeline must reproduce. *)
    let rec loop () =
      match produce () with
      | Error _ as e -> e
      | Ok None -> Ok ()
      | Ok (Some x) -> (
          let scratch =
            match obs with
            | None -> None
            | Some _ -> Some (Clip_obs.Counters.create ())
          in
          match attempt ~retries ~into:scratch f x with
          | Error _ as e -> e
          | Ok v -> (
              (match obs, scratch with
               | Some into, Some c -> Clip_obs.Counters.add ~into c
               | _ -> ());
              match consume v with
              | () -> loop ()
              | exception Clip_diag.Fail ds -> Error ds))
    in
    loop ()
  else begin
    let window = match window with Some w -> max jobs w | None -> 2 * jobs in
    let m = Mutex.create () in
    let cv = Condition.create () in
    let buffer : (int, 'b stream_slot) Hashtbl.t = Hashtbl.create 16 in
    let next = ref 0 and consumed = ref 0 in
    let prod_done = ref false and stop = ref false in
    let perror = ref None in
    let worker () =
      let rec loop () =
        Mutex.lock m;
        let rec wait () =
          if !stop || !prod_done then `Exit
          else if !next - !consumed >= window then begin
            Condition.wait cv m;
            wait ()
          end
          else `Go
        in
        match wait () with
        | `Exit -> Mutex.unlock m
        | `Go -> (
            (* The producer runs under the lock: it is the one shared
               sequential resource, and its cost per item is a bounded
               slice of input, not an evaluation. *)
            match produce () with
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Hashtbl.replace buffer !next (Sraised (e, bt));
                incr next;
                prod_done := true;
                Condition.broadcast cv;
                Mutex.unlock m
            | Ok None ->
                prod_done := true;
                Condition.broadcast cv;
                Mutex.unlock m
            | Error ds ->
                perror := Some ds;
                prod_done := true;
                Condition.broadcast cv;
                Mutex.unlock m
            | Ok (Some x) ->
                let i = !next in
                incr next;
                Mutex.unlock m;
                let scratch =
                  match obs with
                  | None -> None
                  | Some _ -> Some (Clip_obs.Counters.create ())
                in
                let slot =
                  match attempt ~retries ~into:scratch f x with
                  | r -> Sdone (r, scratch)
                  | exception e -> Sraised (e, Printexc.get_raw_backtrace ())
                in
                Mutex.lock m;
                Hashtbl.replace buffer i slot;
                Condition.broadcast cv;
                Mutex.unlock m;
                loop ())
      in
      loop ()
    in
    let workers = List.init jobs (fun _ -> Domain.spawn worker) in
    let finish r =
      Mutex.lock m;
      stop := true;
      Condition.broadcast cv;
      Mutex.unlock m;
      List.iter Domain.join workers;
      match r with
      | `Ok -> Ok ()
      | `Err ds -> Error ds
      | `Raise (e, bt) -> Printexc.raise_with_backtrace e bt
    in
    (* The calling domain consumes, strictly in production order:
       index [consumed] must be buffered before anything later is
       looked at, so the first Error (or exception) the consumer sees
       is the lowest-index failure, independent of scheduling. *)
    let rec consume_loop () =
      Mutex.lock m;
      let rec wait () =
        if Hashtbl.mem buffer !consumed then `Slot (Hashtbl.find buffer !consumed)
        else if !prod_done && !consumed >= !next then `Drained
        else begin
          Condition.wait cv m;
          wait ()
        end
      in
      match wait () with
      | `Drained ->
          let pe = !perror in
          Mutex.unlock m;
          (match pe with None -> finish `Ok | Some ds -> finish (`Err ds))
      | `Slot slot -> (
          Hashtbl.remove buffer !consumed;
          incr consumed;
          Condition.broadcast cv;
          Mutex.unlock m;
          match slot with
          | Sraised (e, bt) -> finish (`Raise (e, bt))
          | Sdone (Error ds, _) -> finish (`Err ds)
          | Sdone (Ok v, scratch) -> (
              (match obs, scratch with
               | Some into, Some c -> Clip_obs.Counters.add ~into c
               | _ -> ());
              match consume v with
              | () -> consume_loop ()
              | exception Clip_diag.Fail ds -> finish (`Err ds)
              | exception e -> finish (`Raise (e, Printexc.get_raw_backtrace ()))))
    in
    consume_loop ()
  end

let map ?jobs ?obs f items =
  let rs = map_results ?jobs ?obs (fun ~obs x -> Ok (f ~obs x)) items in
  List.map
    (function Ok v -> v | Error ds -> raise (Clip_diag.Fail ds))
    rs
