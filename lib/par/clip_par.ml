(* A Domain.spawn work-pool for evaluating independent tasks in
   parallel with deterministic results.

   Design:
   - tasks are fixed in an array up front; workers claim indices from
     one atomic counter, so scheduling is dynamic (no static striping
     that would let one slow task idle a domain) while results land in
     their input slot — output order is input order, always;
   - each worker owns a fresh counter sink for its whole lifetime; the
     per-domain sinks are merged into the caller's sink with
     {!Clip_obs.Counters.add} after the join. Every counter is a sum
     of per-task increments, so the merged totals are independent of
     which domain ran which task;
   - a task that raises does not kill its worker: the exception (and
     backtrace) is captured in the task's slot and re-raised in the
     caller — deterministically, for the lowest failing input index —
     after every task has run;
   - with one job (or one task) the pool degenerates to a plain
     sequential [List.map] on the calling domain, passing the caller's
     sink straight through — the parallel path is byte-identical to
     this baseline by construction of the layers below (evaluation
     state is fully explicit, see {!Clip_run}). *)

let default_jobs () = Domain.recommended_domain_count ()

type 'b slot = Done of 'b | Raised of exn * Printexc.raw_backtrace | Pending

let map ?jobs ?obs f items =
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then List.map (fun x -> f ~obs x) items
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let c = Clip_obs.Counters.create () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f ~obs:(Some c) tasks.(i) with
              | v -> Done v
              | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ();
      c
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is worker number [jobs]. *)
    let mine = worker () in
    let per_domain = mine :: List.map Domain.join helpers in
    (match obs with
     | Some into -> List.iter (fun c -> Clip_obs.Counters.add ~into c) per_domain
     | None -> ());
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         results)
  end
