(** A [Domain.spawn] work-pool: evaluate independent tasks (documents,
    scenarios) in parallel, deterministically.

    Determinism contract: [map ?jobs f items] returns exactly what
    [List.map] of the sequential closure would — same values, same
    order — for any [jobs]. Tasks are claimed dynamically from an
    atomic counter but results land in their input slots; and because
    every layer below carries its state explicitly ({!Clip_run}
    contexts, per-task sessions, explicit counter sinks, the
    domain-safe {!Clip_xml.Symbol} table), a task computes the same
    value whichever domain runs it.

    Counters merge, they are never shared: each worker domain owns a
    fresh sink, folded into [?obs] with {!Clip_obs.Counters.add} after
    the join. Counters that are deterministic per task (the
    {!Clip_obs.Counters.work_assoc} classes, given per-task sessions)
    therefore sum to exactly the sequential totals, independent of the
    task-to-domain partition.

    A raising task does not abort the batch: every task still runs,
    and the exception of the {e lowest failing input index} is
    re-raised (with its backtrace) after the join — so failure
    behaviour does not depend on scheduling either. *)

(** [Domain.recommended_domain_count ()] — the default worker count. *)
val default_jobs : unit -> int

(** [map ?jobs ?obs f items] — evaluate [f ~obs:sink item] for every
    item, on [jobs] domains (default {!default_jobs}, clamped to the
    task count; [jobs <= 1] runs sequentially on the calling domain
    with [?obs] passed straight through). The calling domain
    participates as one of the [jobs] workers. [f] must be
    self-contained per task: create sessions/contexts inside it, never
    capture another task's. *)
val map :
  ?jobs:int ->
  ?obs:Clip_obs.Counters.t ->
  (obs:Clip_obs.Counters.t option -> 'a -> 'b) ->
  'a list ->
  'b list
