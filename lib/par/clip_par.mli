(** A [Domain.spawn] work-pool: evaluate independent tasks (documents,
    scenarios) in parallel, deterministically, with failure isolated
    to the failing task's slot.

    Determinism contract: [map ?jobs f items] returns exactly what
    [List.map] of the sequential closure would — same values, same
    order — for any [jobs]. Tasks are claimed dynamically from an
    atomic counter but results land in their input slots; and because
    every layer below carries its state explicitly ({!Clip_run}
    contexts, per-task sessions, explicit counter sinks, the
    domain-safe {!Clip_xml.Symbol} table), a task computes the same
    value whichever domain runs it.

    Counters merge, they are never shared: every attempt at a task
    runs against a fresh scratch sink, merged into its worker domain's
    sink only on success, and the per-domain sinks fold into [?obs]
    with {!Clip_obs.Counters.add} after the join. Counters that are
    deterministic per task (the {!Clip_obs.Counters.work_assoc}
    classes, given per-task sessions) therefore sum to exactly the
    sequential totals of the {e successful} tasks, independent of the
    task-to-domain partition — a failing task contributes nothing, not
    even the partial work of its failed attempts.

    Edge cases (pinned by test/test_par.ml): an empty batch returns
    [[]] without spawning a domain; [jobs] larger than the task count
    is clamped to the task count; [jobs <= 0] is clamped to [1]; and
    one job (or one task) runs sequentially on the calling domain. *)

(** [Domain.recommended_domain_count ()] — the default worker count. *)
val default_jobs : unit -> int

(** [map_results ?jobs ?retries ?obs f items] — graceful batch
    degradation: evaluate [f ~obs:sink item] for every item, on [jobs]
    domains, each result landing in its input slot. A task that
    returns [Error ds] or raises {!Clip_diag.Fail} yields [Error ds]
    in its slot and the rest of the batch completes normally — one
    poisoned input never aborts the batch ([clip run --keep-going]).

    [?retries] (default [0]) bounds the retry policy: a failing
    attempt whose diagnostics contain a {e transient} code
    ({!Clip_diag.is_transient} — [CLIP-FLT-001], [CLIP-IO-001]) is
    re-attempted up to [retries] more times, immediately and on the
    same worker (so the schedule stays deterministic), each attempt
    from a fresh scratch sink and fresh per-task state. Deterministic
    failures — parse errors, budget and deadline exhaustion, permanent
    faults — are never retried: the input that failed once fails
    identically every time, so retrying only doubles the bill.

    Exceptions other than [Clip_diag.Fail] are programming errors, not
    data faults: they are re-raised in the caller (with backtrace,
    lowest failing input index first, after every task has run), never
    converted into an [Error] slot. [f] must be self-contained per
    task {e and} per attempt: create sessions/contexts inside it,
    never capture another task's. *)
val map_results :
  ?jobs:int ->
  ?retries:int ->
  ?obs:Clip_obs.Counters.t ->
  (obs:Clip_obs.Counters.t option -> 'a -> ('b, Clip_diag.t list) result) ->
  'a list ->
  ('b, Clip_diag.t list) result list

(** [stream_results ?jobs ?window ?retries ?obs ~produce ~consume f] —
    an ordered streaming pipeline for work that is {e discovered}, not
    listed: a sequential producer yields items one at a time (shard
    documents cut from a byte stream), [jobs] worker domains evaluate
    them in parallel, and the calling domain folds the results through
    [consume] {e strictly in production order} (the shard merger).

    Order and counter contracts (pinned by test/test_par.ml and the
    sharding differential suite): the sequence of [consume] calls — and
    the [?obs] totals — are identical to the [jobs:1] sequential
    produce/evaluate/consume loop, for any [jobs]. Workers pull the
    producer under the pipeline lock with the item index assigned
    atomically, results park in a reorder buffer, and the consumer
    blocks on the next index. Each task's scratch counters ride along
    with its result and merge into [?obs] only when the consumer
    accepts the [Ok] — tasks evaluated speculatively after the
    pipeline stops contribute nothing.

    At most [window] items (default [2 * jobs], clamped to at least
    [jobs]) are in flight — assigned but unconsumed — so memory stays
    bounded by the window even when one shard evaluates slowly.

    Failure: [produce] returning [Error ds] stops production after the
    already-assigned items; if all of those consume cleanly the call
    returns [Error ds]. The first [Error] result in production order
    stops the pipeline and is returned; [consume] raising
    {!Clip_diag.Fail} (a merge conflict) does the same. Exceptions
    other than [Fail] re-raise in the caller, lowest production index
    first, as in {!map_results}. [?retries] follows the
    {!map_results} transient-retry policy per task. *)
val stream_results :
  ?jobs:int ->
  ?window:int ->
  ?retries:int ->
  ?obs:Clip_obs.Counters.t ->
  produce:(unit -> ('a option, Clip_diag.t list) result) ->
  consume:('b -> unit) ->
  (obs:Clip_obs.Counters.t option -> 'a -> ('b, Clip_diag.t list) result) ->
  (unit, Clip_diag.t list) result

(** [map ?jobs ?obs f items] — the strict contract, a thin wrapper
    over {!map_results} (no retries): every task still runs, then the
    failure of the {e lowest failing input index} is re-raised — a
    {!Clip_diag.Fail} for a task that reported diagnostics, the
    original exception (with its backtrace) otherwise — so failure
    behaviour does not depend on scheduling. *)
val map :
  ?jobs:int ->
  ?obs:Clip_obs.Counters.t ->
  (obs:Clip_obs.Counters.t option -> 'a -> 'b) ->
  'a list ->
  'b list
