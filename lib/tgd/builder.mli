(** The shared target-construction core of the tgd semantics.

    Every executor of a nested tgd — the {!Eval} tree-walk and the
    relational backend ([Clip_rel]) — builds the target instance the
    same way: a mutable build tree rooted at the target root, with
    three creation disciplines per target generator ([Driven] — one
    fresh element per binding; [Completion] — memoised once per parent
    context under minimum cardinality; [Grouped] — memoised per
    normalised grouping key), completion singletons materialised along
    intermediate target-path steps, and leaf assignments that reject
    conflicting values. This module owns that construction state plus
    the scalar kernel (functions, comparisons, aggregates), so every
    executor produces byte-identical targets and identical dynamic
    error messages ([CLIP-TGD-001]).

    The emission entry points ({!instantiate_target},
    {!apply_assertion}, {!pre_instantiate}, {!emit_binding}) are
    generic over the executor's environment type: an {!type-ops} record
    supplies variable lookup/binding, scalar evaluation and provenance
    recording, which is all the construction semantics needs from the
    source side. *)

(** A mutable target element under construction. [bprov] accumulates
    the contributing source elements (instance-level lineage, see
    {!Eval.run_traced}); [bseen] is its identity seen-set. *)
type bnode = {
  id : int;
  btag : string;
  mutable battrs : (string * Clip_xml.Atom.t) list; (* reversed *)
  mutable btext : Clip_xml.Atom.t option;
  mutable bchildren : bnode list; (* reversed *)
  mutable bprov : Clip_xml.Node.element list; (* reversed *)
  mutable bseen : unit Clip_xml.Index.Tbl.t option;
}

val fresh_bnode : string -> bnode

(** Freeze a build tree into an immutable {!Clip_xml.Node.t}. *)
val bnode_to_node : bnode -> Clip_xml.Node.t

(** One target instance under construction: the root plus the
    completion and group memo tables ([min_card] selects the paper's
    minimum-cardinality semantics; without it completion generators
    create driven elements). *)
type t

val create : min_card:bool -> target_root:string -> t
val root : t -> bnode
val min_card : t -> bool

val append_child : bnode -> bnode -> unit
val completion_child : t -> bnode -> string -> bnode
val driven_child : bnode -> string -> bnode
val grouped_child : t -> bnode -> string -> Clip_plan.Key.t -> bnode

(** [resolve_target bld ~target_root ~lookup e] — the base build node
    of target expression [e] (the target root, or a bound target
    variable through [lookup]) and its projection steps. [lookup]
    returns [None] for unbound names (reported here) and is expected to
    raise the evaluator's own diagnostic for source-bound names. *)
val resolve_target :
  t ->
  target_root:string ->
  lookup:(string -> bnode option) ->
  Term.expr ->
  bnode * Clip_schema.Path.step list

(** Materialise intermediate child steps as completion singletons. *)
val descend_completion : t -> bnode -> Clip_schema.Path.step list -> bnode

val split_last : 'a list -> ('a list * 'a) option

(** [set_leaf b step atom] — assign an attribute or text value,
    rejecting conflicting reassignment. *)
val set_leaf : bnode -> Clip_schema.Path.step -> Clip_xml.Atom.t -> unit

(** {1 Scalar kernel} *)

(** The scalar function symbols every backend accepts. *)
val scalar_functions : string list

val apply_fn : string -> Clip_xml.Atom.t list -> Clip_xml.Atom.t
val atomize_items : Clip_xquery.Value.item list -> Clip_xml.Atom.t list
val compare_atoms : Tgd.cmp_op -> Clip_xml.Atom.t -> Clip_xml.Atom.t -> bool
val aggregate : Tgd.agg_kind -> Clip_xquery.Value.item list -> Clip_xml.Atom.t option

(** Raise a [CLIP-TGD-001] dynamic-error diagnostic. *)
val error : ('a, unit, string, 'b) format4 -> 'a

(** {1 Env-generic emission} *)

(** The evaluator-side operations emission needs. *)
type 'env ops = {
  lookup_tgt : 'env -> string -> bnode option;
  bind_tgt : 'env -> string -> bnode -> 'env;
  eval_scalar : 'env -> Term.scalar -> Clip_xml.Atom.t list;
  eval_items : 'env -> Term.expr -> Clip_xquery.Value.item list;
  record_provenance : 'env -> bnode -> unit;
}

(** Instantiate one target generator under [env], returning the
    extended environment. *)
val instantiate_target :
  t -> ops:'env ops -> target_root:string -> 'env -> Tgd.target_gen -> 'env

val apply_assertion :
  t -> ops:'env ops -> target_root:string -> 'env -> Tgd.assertion -> unit

(** Instantiate the leading completion generators of [m] once per
    parent context (the paper's constant tags). *)
val pre_instantiate :
  t -> ops:'env ops -> target_root:string -> 'env -> Tgd.t -> unit

(** The per-binding body: instantiate [m]'s target generators, apply
    its assertions, then hand the extended environment to [children]. *)
val emit_binding :
  t ->
  ops:'env ops ->
  target_root:string ->
  ('env -> unit) ->
  'env ->
  Tgd.t ->
  unit
