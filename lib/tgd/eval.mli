(** A data-exchange engine: execute a nested tgd over a source instance
    and materialise the target instance.

    The engine implements the paper's operational reading:
    - [Driven] target generators create a fresh element per binding of
      the universal part of their mapping;
    - [Completion] generators (and intermediate singleton steps on
      target paths) create at most one element per parent context —
      the minimum-cardinality principle of Sec. II-A;
    - [Grouped] generators memoise the created element per distinct
      grouping-key tuple under the parent context — the [group-by]
      Skolem of Sec. IV-B; submappings then run once per member binding
      of the group, so inner builders see the member's full source
      context (this reproduces the Fig. 7 employee placement);
    - aggregate assertions evaluate their argument in the binding
      environment, so the context of aggregation is fixed by the
      variable the argument is rooted in (Sec. IV-B).

    Passing [~minimum_cardinality:false] turns [Completion] generators
    into [Driven] ones, yielding the naive universal-solution behaviour
    the paper contrasts against (one [department] per mapped value in
    the Fig. 3 discussion).

    Every entry point takes [?plan]: [`Auto] (the default) compiles
    each mapping's universal part to a {!Clip_plan} physical plan —
    conditions pushed to their earliest position, equality conditions
    executed as hash joins {e when the cost model says the table pays
    for itself}, bindings streamed — and turns the {!Clip_xml.Index}
    tag index on only for revisit-prone plans over large-enough
    documents. [`Indexed] forces every eligible join and the index
    unconditionally; [`Naive] runs the original interpreter, kept as
    the differential-testing oracle. All modes produce identical
    documents; only error behaviour may differ (pushdown can evaluate
    a failing condition the naive order would never reach, and vice
    versa). [?steps_out], when given, receives the number of budget
    steps consumed, even when evaluation fails. [?obs], when given,
    collects execution counters for the run into the supplied sink —
    counters are explicit per-run state, never ambient. [?ctl], when
    given, is polled at the same budget tick sites (amortised, one
    clock read per 64 steps, plus once at run start): an expired
    deadline reports [CLIP-LIM-005], a set cancellation flag
    [CLIP-LIM-006] — see {!Clip_run.Control}.

    Every run entry point also takes [?repr] (default [`Tree]): the
    document-representation switch of {!Clip_xml.Doc.repr}. [`Columnar]
    converts the source to the struct-of-arrays {!Clip_xml.Doc} (cached
    per document by a session), runs child and value steps as id-vector
    probes / array sweeps, and executes physical plans with the
    vectorized {!Clip_plan.execute_batch}; [`Auto] picks columnar for
    large-enough documents. All representations produce byte-identical
    documents and preserve the counter invariants; [explain] is
    representation-independent.

    A {!Session} pins one source document and carries its per-document
    artifacts — tag index, instance statistics, compiled plans —
    across runs, so repeated execution against the same source pays
    the analysis once. *)

exception Error of string

(** A per-document cache: evaluation context (memoised tag index +
    instance statistics) and compiled physical plans, reused by every
    run handed the session together with the {e same} (physically
    equal) source document. Passing a session with a different source
    is safe — it is simply ignored. Sessions are not thread-safe. *)
module Session : sig
  type t

  val create : Clip_xml.Node.t -> t
  val source : t -> Clip_xml.Node.t

  (** Instance statistics of the session's document (collected on
      first use, then cached). *)
  val stats : t -> Clip_xml.Stats.t
end

(** Scalar function symbols known to the engine (usable in
    [Term.Fn]): [concat], [add], [sub], [mul], [div], [upper],
    [lower]. *)
val scalar_functions : string list

(** [run_result ~source ~target_root m] builds the target document.
    Dynamic errors — unbound variables, conflicting leaf assignments,
    non-singleton grouping keys, unknown scalar functions — are
    reported as [CLIP-TGD-001] diagnostics; exhausting the step budget
    ([limits.max_eval_steps], counting one step per source-expression
    or scalar evaluation) as [CLIP-LIM-004]. *)
val run_result :
  ?limits:Clip_diag.Limits.t ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  source:Clip_xml.Node.t ->
  target_root:string ->
  Tgd.t ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run ~source ~target_root m] — like {!run_result}.
    @raise Error on any reported diagnostic. *)
val run :
  ?limits:Clip_diag.Limits.t ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  source:Clip_xml.Node.t ->
  target_root:string ->
  Tgd.t ->
  Clip_xml.Node.t

(** [explain ~source m] — a static, deterministic EXPLAIN of how
    [?plan] (default [`Auto]) would execute [m] over [source]: a
    header stating the resolved strategy (for [`Auto]: direct
    interpreter below the planning threshold, else cost-based plans
    with the tag-index decision), then one block per mapping rule with
    its physical stages, cardinality estimates and the planner's
    per-equality decision notes (see {!Clip_plan.explain}). Nothing is
    evaluated and no timing appears in the output, so it is stable for
    golden tests. *)
val explain :
  ?plan:Clip_plan.mode ->
  ?session:Session.t ->
  source:Clip_xml.Node.t ->
  Tgd.t ->
  string

(** Instance-level data lineage: for each created target element,
    the source elements that were bound when it was created (completion
    and group elements accumulate the bindings of every contributing
    iteration). [target_path] indexes element children from the root
    ([[]] is the root itself, [[0; 2]] the third element child of the
    first element child). *)
type trace_entry = {
  target_path : int list;
  sources : Clip_xml.Node.t list; (** source elements, in binding order *)
}

(** [run_traced_result ~source ~target_root m] — like {!run_result},
    also returning the lineage of every target element, preorder. *)
val run_traced_result :
  ?limits:Clip_diag.Limits.t ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  source:Clip_xml.Node.t ->
  target_root:string ->
  Tgd.t ->
  (Clip_xml.Node.t * trace_entry list, Clip_diag.t list) result

(** [run_traced ~source ~target_root m] — like {!run}, also returning
    the lineage of every target element, preorder. *)
val run_traced :
  ?limits:Clip_diag.Limits.t ->
  ?minimum_cardinality:bool ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  source:Clip_xml.Node.t ->
  target_root:string ->
  Tgd.t ->
  Clip_xml.Node.t * trace_entry list
