module Xml = Clip_xml
module Path = Clip_schema.Path
module Value = Clip_xquery.Value

exception Error of string

let error fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.tgd_eval s))
    fmt

(* Evaluation context: the source document plus the step budget that
   bounds runaway mappings (CLIP-LIM-004); each source-expression or
   scalar evaluation counts one step, so deep cross products hit the
   budget instead of hanging. In [`Indexed] mode the context also
   carries the per-run tag index over the source document. *)
type ctx = {
  source : Xml.Node.t;
  index : Xml.Index.t option;
  steps : int ref;
  max_steps : int;
}

let tick ctx =
  incr ctx.steps;
  if !(ctx.steps) > ctx.max_steps then
    Clip_diag.fail
      (Clip_diag.error ~code:Clip_diag.Codes.limit_eval_steps
         ~hints:
           [ "raise [limits.max_eval_steps] if the mapping is expected to be this large" ]
         (Printf.sprintf "evaluation exceeded the budget of %d steps" ctx.max_steps))

(* Mutable target tree under construction. [bseen] is the identity
   seen-set backing [bprov], so recording provenance is O(1) per
   binding instead of a [List.memq] scan over everything recorded so
   far. *)
type bnode = {
  id : int;
  btag : string;
  mutable battrs : (string * Xml.Atom.t) list; (* reversed *)
  mutable btext : Xml.Atom.t option;
  mutable bchildren : bnode list; (* reversed *)
  mutable bprov : Xml.Node.element list; (* contributing source elements, reversed *)
  mutable bseen : unit Xml.Index.Tbl.t option;
}

let next_id = ref 0

let fresh_bnode btag =
  incr next_id;
  {
    id = !next_id;
    btag;
    battrs = [];
    btext = None;
    bchildren = [];
    bprov = [];
    bseen = None;
  }

let rec bnode_to_node b =
  let children =
    List.rev_map (fun c -> bnode_to_node c) b.bchildren
  in
  let children =
    match b.btext with
    | Some a -> Xml.Node.text a :: children
    | None -> children
  in
  Xml.Node.elem ~attrs:(List.rev b.battrs) b.btag children

(* Environments bind source variables to items and target variables to
   build nodes. *)
type binding = Src of Value.item | Tgt of bnode

module Env = Map.Make (String)

(* A mapping tree with each universal part compiled to a physical plan
   (condition pushdown + hash joins, see {!Clip_plan}). Planning only
   needs the statically known set of outer variables, so the tree is
   compiled once per [execute]. *)
type planned = {
  pm : Tgd.t;
  pplan : (binding Env.t, Value.item) Clip_plan.t;
  pchildren : planned list;
}

(* --- Source-side evaluation ------------------------------------------ *)

let step_items ctx (item : Value.item) (step : Path.step) : Value.item list =
  match item, step with
  | Value.Node (Xml.Node.Element e), Path.Child tag ->
    (match ctx.index with
     | None ->
       List.filter_map
         (function
           | Xml.Node.Element c when String.equal c.tag tag ->
             Some (Value.Node (Xml.Node.Element c))
           | Xml.Node.Element _ | Xml.Node.Text _ -> None)
         e.children
     | Some idx ->
       List.map (fun n -> Value.Node n) (Xml.Index.children_by_tag idx e tag))
  | Value.Node (Xml.Node.Element e), Path.Attr name ->
    (match Xml.Node.attr e name with Some a -> [ Value.Atomic a ] | None -> [])
  | Value.Node (Xml.Node.Element e), Path.Value ->
    (match Xml.Node.text_value e with Some a -> [ Value.Atomic a ] | None -> [])
  | (Value.Node (Xml.Node.Text _) | Value.Atomic _), _ -> []

let rec eval_src ctx env (e : Term.expr) : Value.item list =
  tick ctx;
  match e with
  | Term.Root s ->
    (match ctx.source with
     | Xml.Node.Element root when String.equal root.tag s -> [ Value.Node ctx.source ]
     | Xml.Node.Element root ->
       error "source root is <%s>, the mapping expects <%s>" root.tag s
     | Xml.Node.Text _ -> error "source document root is a text node")
  | Term.Var x ->
    (match Env.find_opt x env with
     | Some (Src item) -> [ item ]
     | Some (Tgt _) -> error "variable %s is a target variable in a source position" x
     | None -> error "unbound source variable %s" x)
  | Term.Proj (e, step) ->
    List.concat_map (fun item -> step_items ctx item step) (eval_src ctx env e)

let scalar_functions = [ "concat"; "add"; "sub"; "mul"; "div"; "upper"; "lower" ]

let apply_fn name (args : Xml.Atom.t list) : Xml.Atom.t =
  let numeric a =
    match Xml.Atom.to_float a with
    | Some f -> f
    | None -> error "%s: non-numeric argument %s" name (Xml.Atom.to_string a)
  in
  let arith op =
    match args with
    | [ a; b ] ->
      let x = numeric a and y = numeric b in
      let r = op x y in
      if Float.is_integer r && Float.abs r < 1e15 then
        Xml.Atom.Int (int_of_float r)
      else Xml.Atom.Float r
    | _ -> error "%s: expected 2 arguments, got %d" name (List.length args)
  in
  match name with
  | "concat" ->
    Xml.Atom.String (String.concat "" (List.map Xml.Atom.to_string args))
  | "add" -> arith ( +. )
  | "sub" -> arith ( -. )
  | "mul" -> arith ( *. )
  | "div" ->
    arith (fun x y -> if y = 0. then error "div: division by zero" else x /. y)
  | "upper" | "lower" ->
    (match args with
     | [ a ] ->
       let f = if String.equal name "upper" then String.uppercase_ascii else String.lowercase_ascii in
       Xml.Atom.String (f (Xml.Atom.to_string a))
     | _ -> error "%s: expected 1 argument, got %d" name (List.length args))
  | name -> error "unknown scalar function %s" name

let atomize_items items =
  List.map
    (function
      | Value.Atomic a -> a
      | Value.Node n ->
        (match n with
         | Xml.Node.Text a -> a
         | Xml.Node.Element _ ->
           Xml.Atom.of_string (Value.string_value (Value.Node n))))
    items

let rec eval_scalar ctx env (s : Term.scalar) : Xml.Atom.t list =
  tick ctx;
  match s with
  | Term.E e -> atomize_items (eval_src ctx env e)
  | Term.Const a -> [ a ]
  | Term.Fn (name, args) ->
    let arg_atoms =
      List.map
        (fun arg ->
          match eval_scalar ctx env arg with
          | [ a ] -> a
          | [] -> error "%s: an argument evaluates to the empty sequence" name
          | _ -> error "%s: an argument evaluates to multiple values" name)
        args
    in
    [ apply_fn name arg_atoms ]

let compare_atoms op a b =
  let open Xml.Atom in
  match (op : Tgd.cmp_op) with
  | Tgd.Eq | Tgd.In -> equal a b
  | Tgd.Ne -> not (equal a b)
  | Tgd.Lt -> compare a b < 0
  | Tgd.Le -> compare a b <= 0
  | Tgd.Gt -> compare a b > 0
  | Tgd.Ge -> compare a b >= 0

let holds ctx env (c : Tgd.comparison) =
  let ls = eval_scalar ctx env c.left in
  let rs = eval_scalar ctx env c.right in
  List.exists (fun a -> List.exists (compare_atoms c.op a) rs) ls

(* --- Target-side construction ---------------------------------------- *)

type builder = {
  root : bnode;
  completion : (int * string, bnode) Hashtbl.t;
  groups : (int * string * Clip_plan.Key.t, bnode) Hashtbl.t;
  min_card : bool;
}

let append_child parent child = parent.bchildren <- child :: parent.bchildren

let completion_child bld parent tag =
  match Hashtbl.find_opt bld.completion (parent.id, tag) with
  | Some b -> b
  | None ->
    let b = fresh_bnode tag in
    append_child parent b;
    Hashtbl.add bld.completion (parent.id, tag) b;
    b

let driven_child parent tag =
  let b = fresh_bnode tag in
  append_child parent b;
  b

let grouped_child bld parent tag key =
  match Hashtbl.find_opt bld.groups (parent.id, tag, key) with
  | Some b -> b
  | None ->
    let b = fresh_bnode tag in
    append_child parent b;
    Hashtbl.add bld.groups (parent.id, tag, key) b;
    b

(* Resolve the element part of a target expression: the head must be a
   bound target variable or the target root; intermediate child steps
   materialise as singleton (completion) elements. Returns the bnode of
   the last-but-one element and the final step. *)
let resolve_target bld ~target_root env (e : Term.expr) =
  let head = Term.head e in
  let base =
    match head with
    | Term.Root s when String.equal s target_root -> bld.root
    | Term.Root s -> error "unknown target root %s" s
    | Term.Var x ->
      (match Env.find_opt x env with
       | Some (Tgt b) -> b
       | Some (Src _) -> error "variable %s is a source variable in a target position" x
       | None -> error "unbound target variable %s" x)
    | Term.Proj _ -> assert false
  in
  (base, Term.steps e)

let descend_completion bld base steps =
  List.fold_left
    (fun b step ->
      match (step : Path.step) with
      | Path.Child tag -> completion_child bld b tag
      | Path.Attr _ | Path.Value ->
        error "target path traverses a leaf step")
    base steps

let split_last = function
  | [] -> None
  | steps ->
    let rec go acc = function
      | [ last ] -> Some (List.rev acc, last)
      | s :: rest -> go (s :: acc) rest
      | [] -> None
    in
    go [] steps

let set_leaf b (step : Path.step) atom =
  let conflict kind old =
    error "conflicting values for %s of <%s>: %s vs %s" kind b.btag
      (Xml.Atom.to_string old) (Xml.Atom.to_string atom)
  in
  match step with
  | Path.Attr name ->
    (match List.assoc_opt name b.battrs with
     | Some old ->
       if not (Xml.Atom.equal old atom) then conflict ("@" ^ name) old
     | None -> b.battrs <- (name, atom) :: b.battrs)
  | Path.Value ->
    (match b.btext with
     | Some old -> if not (Xml.Atom.equal old atom) then conflict "text" old
     | None -> b.btext <- Some atom)
  | Path.Child _ -> error "a leaf assignment must end on an attribute or value step"

(* --- The engine ------------------------------------------------------- *)

let cartesian_bindings ctx env (gens : Tgd.source_gen list) =
  (* Enumerate environments extending [env] with one item per generator,
     left to right (later generators may reference earlier variables). *)
  let rec go env = function
    | [] -> [ env ]
    | (g : Tgd.source_gen) :: rest ->
      let items = eval_src ctx env g.sexpr in
      List.concat_map (fun item -> go (Env.add g.svar (Src item) env) rest) items
  in
  go env gens

let aggregate kind (items : Value.item list) : Xml.Atom.t option =
  let numeric a =
    match Xml.Atom.to_float a with
    | Some f -> f
    | None -> error "aggregate: non-numeric value %s" (Xml.Atom.to_string a)
  in
  let condense f =
    match List.map numeric (atomize_items items) with
    | [] -> None
    | x :: xs ->
      let r = f x xs in
      if Float.is_integer r && Float.abs r < 1e15 then
        Some (Xml.Atom.Int (int_of_float r))
      else Some (Xml.Atom.Float r)
  in
  match (kind : Tgd.agg_kind) with
  | Tgd.Count -> Some (Xml.Atom.Int (List.length items))
  | Tgd.Sum ->
    (match condense (fun x xs -> List.fold_left ( +. ) x xs) with
     | None -> Some (Xml.Atom.Int 0)
     | some -> some)
  | Tgd.Avg ->
    condense (fun x xs ->
        List.fold_left ( +. ) x xs /. float_of_int (1 + List.length xs))
  | Tgd.Min -> condense (fun x xs -> List.fold_left min x xs)
  | Tgd.Max -> condense (fun x xs -> List.fold_left max x xs)

(* Record which source elements were bound when a target element was
   created (or re-reached, for completion/group elements). The identity
   table mirrors [bprov], keeping each recording O(1). *)
let record_provenance node env =
  let seen =
    match node.bseen with
    | Some t -> t
    | None ->
      let t = Xml.Index.Tbl.create 8 in
      node.bseen <- Some t;
      t
  in
  Env.iter
    (fun _ binding ->
      match binding with
      | Src (Value.Node (Xml.Node.Element e)) ->
        if not (Xml.Index.Tbl.mem seen e) then begin
          Xml.Index.Tbl.add seen e ();
          node.bprov <- e :: node.bprov
        end
      | Src (Value.Node (Xml.Node.Text _) | Value.Atomic _) | Tgt _ -> ())
    env

let execute ?(limits = Clip_diag.Limits.default) ?(minimum_cardinality = true)
    ?(plan = `Indexed) ?steps_out ~source ~target_root (m : Tgd.t) =
  let index =
    match plan with `Indexed -> Some (Xml.Index.build source) | `Naive -> None
  in
  let ctx =
    { source; index; steps = ref 0; max_steps = limits.Clip_diag.Limits.max_eval_steps }
  in
  let record_steps () =
    match steps_out with Some r -> r := !(ctx.steps) | None -> ()
  in
  Fun.protect ~finally:record_steps @@ fun () ->
  let bld =
    {
      root = fresh_bnode target_root;
      completion = Hashtbl.create 64;
      groups = Hashtbl.create 64;
      min_card = minimum_cardinality;
    }
  in
  let instantiate_target env (g : Tgd.target_gen) =
    let base, steps = resolve_target bld ~target_root env g.texpr in
    match split_last steps with
    | None -> error "target generator %s binds the target root itself" g.tvar
    | Some (intermediate, last) ->
      let parent = descend_completion bld base intermediate in
      let tag =
        match last with
        | Path.Child tag -> tag
        | Path.Attr _ | Path.Value ->
          error "target generator %s ends on a leaf step" g.tvar
      in
      let node =
        match g.mode with
        | Tgd.Driven -> driven_child parent tag
        | Tgd.Completion ->
          if bld.min_card then completion_child bld parent tag
          else driven_child parent tag
        | Tgd.Grouped { keys } ->
          let key =
            List.map
              (fun k ->
                match eval_scalar ctx env k with
                | [ a ] -> a
                | [] -> error "grouping key evaluates to the empty sequence"
                | _ -> error "grouping key evaluates to multiple values")
              keys
          in
          (* Keys are normalised so tgd grouping and the generated
             XQuery's value comparisons agree on mixed-type data. *)
          grouped_child bld parent tag (Clip_plan.Key.of_atoms key)
      in
      record_provenance node env;
      Env.add g.tvar (Tgt node) env
  in
  let apply_assertion env (a : Tgd.assertion) =
    match a with
    | Tgd.St_eq (e, s) ->
      (match eval_scalar ctx env s with
       | [] -> () (* optional source data absent: nothing to copy *)
       | [ atom ] ->
         let base, steps = resolve_target bld ~target_root env e in
         (match split_last steps with
          | None -> error "a leaf assignment targets the document root"
          | Some (intermediate, last) ->
            let parent = descend_completion bld base intermediate in
            set_leaf parent last atom)
       | _ :: _ :: _ ->
         error
           "value mapping %s = %s binds multiple values; aggregate or group first"
           (Term.expr_to_string e) (Term.scalar_to_string s))
    | Tgd.Target_cond (e, op, atom) ->
      (match op with
       | Tgd.Eq ->
         let base, steps = resolve_target bld ~target_root env e in
         (match split_last steps with
          | None -> error "a target condition targets the document root"
          | Some (intermediate, last) ->
            let parent = descend_completion bld base intermediate in
            set_leaf parent last atom)
       | _ ->
         error "only equality target conditions are enforceable at build time")
    | Tgd.Agg (e, kind, arg) ->
      let items = eval_src ctx env arg in
      (match aggregate kind items with
       | None -> ()
       | Some atom ->
         let base, steps = resolve_target bld ~target_root env e in
         (match split_last steps with
          | None -> error "an aggregate targets the document root"
          | Some (intermediate, last) ->
            let parent = descend_completion bld base intermediate in
            set_leaf parent last atom))
  in
  (* Leading completion generators are the paper's constant tags: they
     exist once per parent context even when no binding survives, so
     instantiate them before enumerating bindings. (They only depend
     on outer variables; memoisation makes the per-binding
     re-instantiation below a no-op.) *)
  let pre_instantiate env (m : Tgd.t) =
    if bld.min_card then begin
      let rec pre env = function
        | ({ Tgd.mode = Tgd.Completion; _ } as g) :: rest ->
          pre (instantiate_target env g) rest
        | _ -> env
      in
      ignore (pre env m.exists)
    end
  in
  let emit_binding children env (m : Tgd.t) =
    let env = List.fold_left instantiate_target env m.exists in
    List.iter (apply_assertion env) m.assertions;
    children env
  in
  (* The naive interpreter, kept verbatim as the differential-testing
     oracle for the plan-based path below. *)
  let rec eval_mapping env (m : Tgd.t) =
    pre_instantiate env m;
    let bindings = cartesian_bindings ctx env m.foralls in
    List.iter
      (fun env ->
        tick ctx;
        if List.for_all (holds ctx env) m.cond then
          emit_binding (fun env -> List.iter (eval_mapping env) m.children) env m)
      bindings
  in
  (* The plan-based path: compile each mapping's universal part once
     (conditions pushed down, equality conditions turned into hash
     joins where profitable), then stream bindings into the same
     per-binding body the naive interpreter runs. *)
  let gen_of (g : Tgd.source_gen) =
    {
      Clip_plan.var = g.svar;
      deps = Term.expr_vars g.sexpr;
      eval = (fun env -> eval_src ctx env g.sexpr);
      bind = (fun env item -> Env.add g.svar (Src item) env);
    }
  in
  let cond_of (c : Tgd.comparison) =
    let pvars = Term.scalar_vars c.left @ Term.scalar_vars c.right in
    let orig = { Clip_plan.pvars; test = (fun env -> holds ctx env c) } in
    match c.op with
    | Tgd.Eq | Tgd.In ->
      let keyed s =
        {
          Clip_plan.kvars = Term.scalar_vars s;
          keys =
            (fun env -> List.map Clip_plan.Key.of_atom (eval_scalar ctx env s));
        }
      in
      Clip_plan.Eq { left = keyed c.left; right = keyed c.right; orig }
    | Tgd.Ne | Tgd.Lt | Tgd.Le | Tgd.Gt | Tgd.Ge -> Clip_plan.Other orig
  in
  let rec plan_mapping bound (m : Tgd.t) =
    let pplan =
      Clip_plan.plan ~bound
        ~gens:(List.map gen_of m.foralls)
        ~conds:(List.map cond_of m.cond)
    in
    let bound' =
      bound
      @ List.map (fun (g : Tgd.source_gen) -> g.svar) m.foralls
      @ List.map (fun (g : Tgd.target_gen) -> g.tvar) m.exists
    in
    { pm = m; pplan; pchildren = List.map (plan_mapping bound') m.children }
  in
  let rec eval_planned env (p : planned) =
    pre_instantiate env p.pm;
    Clip_plan.execute p.pplan
      ~tick:(fun () -> tick ctx)
      ~env
      ~emit:(fun env ->
        emit_binding
          (fun env -> List.iter (eval_planned env) p.pchildren)
          env p.pm)
  in
  (match plan with
   | `Naive -> eval_mapping Env.empty m
   | `Indexed -> eval_planned Env.empty (plan_mapping [] m));
  bld.root

let reraise_legacy ds =
  let d = match ds with d :: _ -> d | [] -> assert false in
  raise (Error d.Clip_diag.message)

let run_result ?limits ?minimum_cardinality ?plan ?steps_out ~source ~target_root m =
  Clip_diag.guard (fun () ->
    bnode_to_node
      (execute ?limits ?minimum_cardinality ?plan ?steps_out ~source ~target_root m))

let run ?limits ?minimum_cardinality ?plan ?steps_out ~source ~target_root m =
  match run_result ?limits ?minimum_cardinality ?plan ?steps_out ~source ~target_root m with
  | Ok n -> n
  | Error ds -> reraise_legacy ds

type trace_entry = {
  target_path : int list;
  sources : Xml.Node.t list;
}

let run_traced_unguarded ?limits ?minimum_cardinality ?plan ?steps_out ~source
    ~target_root m =
  let root =
    execute ?limits ?minimum_cardinality ?plan ?steps_out ~source ~target_root m
  in
  let trace = ref [] in
  let rec walk path b =
    trace :=
      {
        target_path = List.rev path;
        sources = List.rev_map (fun e -> Xml.Node.Element e) b.bprov;
      }
      :: !trace;
    List.iteri (fun i c -> walk (i :: path) c) (List.rev b.bchildren)
  in
  walk [] root;
  (bnode_to_node root, List.rev !trace)

let run_traced_result ?limits ?minimum_cardinality ?plan ?steps_out ~source
    ~target_root m =
  Clip_diag.guard (fun () ->
    run_traced_unguarded ?limits ?minimum_cardinality ?plan ?steps_out ~source
      ~target_root m)

let run_traced ?limits ?minimum_cardinality ?plan ?steps_out ~source ~target_root m =
  match
    run_traced_result ?limits ?minimum_cardinality ?plan ?steps_out ~source
      ~target_root m
  with
  | Ok r -> r
  | Error ds -> reraise_legacy ds
