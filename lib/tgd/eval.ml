module Xml = Clip_xml
module Path = Clip_schema.Path
module Value = Clip_xquery.Value

exception Error of string

let error fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.tgd_eval s))
    fmt

(* Evaluation context: the source document plus the step budget that
   bounds runaway mappings (CLIP-LIM-004); each source-expression or
   scalar evaluation counts one step, so deep cross products hit the
   budget instead of hanging.

   The context outlives a single run when held by a {!Session}: the
   memoised tag index and instance statistics are per-document, so
   reusing the context lets repeated runs pay the index groupings and
   the stats walk once. [index] is the per-run view — set at run start to
   the shared index ([`Indexed], or [`Auto] when indexing is judged to
   pay) or to [None] — while [xindex] owns the index itself. [steps]
   and [max_steps] are reset per run. *)
(* Per-run columnar view of the source document: [Cnone] runs the
   boxed-tree paths; [Cnaive] sweeps the sibling-chain arrays with
   naive-scan counting (the columnar twin of the unindexed scan);
   [Cindexed] probes the memoised id-vector index. *)
type cview =
  | Cnone
  | Cnaive of Xml.Index.docidx
  | Cindexed of Xml.Index.docidx

type ctx = {
  source : Xml.Node.t;
  mutable index : Xml.Index.t option;
  mutable xindex : Xml.Index.t option; (* resettable memo, see [force_index] *)
  mutable stats : Xml.Stats.t option; (* resettable memo, see [force_stats] *)
  mutable cview : cview; (* per-run view, set by [execute] like [index] *)
  mutable xdoc : (Xml.Doc.t * Xml.Index.docidx) option;
      (* resettable memo: the converted columnar document and its
         id-vector index — per-document, so a session amortises the
         conversion across runs *)
  steps : int ref;
  mutable max_steps : int;
  mutable obs : Clip_obs.sink;
      (* per-run counter sink, set by [execute]; explicit state — the
         evaluator never reaches for an ambient sink *)
  mutable ctl : Clip_run.Control.t;
      (* per-run deadline/cancellation view, polled by [tick] *)
  sbuf_a : Xml.Index.idbuf;
  sbuf_b : Xml.Index.idbuf;
      (* scratch id buffers for the fused projection path, ping-ponged
         between levels. Owning them here makes the steady state
         allocation-free; sound because the fused path never re-enters
         source evaluation while a buffer is live (the base expression
         is evaluated before the first buffer fills, and level
         expansion calls only index sweeps and counters). *)
}

let make_ctx source =
  {
    source;
    index = None;
    xindex = None;
    stats = None;
    cview = Cnone;
    xdoc = None;
    steps = ref 0;
    max_steps = max_int;
    obs = Clip_obs.none;
    ctl = Clip_run.Control.none;
    sbuf_a = Xml.Index.idbuf_make ();
    sbuf_b = Xml.Index.idbuf_make ();
  }

(* Memo slots rather than lazies: a lazy that raises re-raises forever,
   so one injected fault (or an expiring deadline) during the build
   would poison a session-held context for every later run. With the
   slot, a failed build leaves [None] and the next run simply rebuilds. *)
let force_index ctx =
  match ctx.xindex with
  | Some i -> i
  | None ->
    let i = Xml.Index.build ctx.source in
    ctx.xindex <- Some i;
    i

(* The columnar document and its index share one memo slot: the
   conversion is the expensive half, and the index ([build_doc], the
   fault boundary) is O(1) on top of it. *)
let force_doc ctx =
  match ctx.xdoc with
  | Some d -> d
  | None ->
    let doc = Xml.Doc.of_node ctx.source in
    let d = (doc, Xml.Index.build_doc doc) in
    ctx.xdoc <- Some d;
    d

let force_stats ctx =
  match ctx.stats with
  | Some s -> s
  | None ->
    let s =
      (* When the columnar document already exists, collect with the
         array sweep; {!Xml.Stats.collect_doc} agrees exactly with the
         tree walk, so which one ran is unobservable. *)
      match ctx.xdoc with
      | Some (doc, _) -> Xml.Stats.collect_doc doc
      | None -> Xml.Stats.collect ctx.source
    in
    ctx.stats <- Some s;
    s

let check_control ctx =
  Clip_obs.ctl_check ctx.obs;
  match Clip_run.Control.check ctx.ctl with
  | None -> ()
  | Some d -> Clip_diag.fail d

let tick ctx =
  incr ctx.steps;
  Clip_obs.lim_tick ctx.obs;
  if !(ctx.steps) > ctx.max_steps then
    Clip_diag.fail
      (Clip_diag.error ~code:Clip_diag.Codes.limit_eval_steps
         ~hints:
           [ "raise [limits.max_eval_steps] if the mapping is expected to be this large" ]
         (Printf.sprintf "evaluation exceeded the budget of %d steps" ctx.max_steps));
  (* Deadline/cancellation poll, amortised to one clock read per 64
     steps so uncontrolled runs pay one branch per tick. *)
  if !(ctx.steps) land 63 = 0 && not (Clip_run.Control.is_none ctx.ctl) then
    check_control ctx

(* Environments bind source variables to items and target variables to
   build nodes (the shared {!Builder} target-construction core). *)
type binding = Src of Value.item | Tgt of Builder.bnode

module Env = Map.Make (String)

(* A mapping tree with each universal part compiled to a physical plan
   (condition pushdown + hash joins, see {!Clip_plan}). Planning only
   needs the statically known set of outer variables, so the tree is
   compiled once per [execute]. *)
type planned = {
  pm : Tgd.t;
  pplan : (binding Env.t, Value.item) Clip_plan.t;
  pchildren : planned list;
}

(* --- Source-side evaluation ------------------------------------------ *)

(* Naive child scan over the boxed tree: visits every child; the
   [nodes_scanned] counter records exactly that, so indexed runs can
   never report more scanned nodes than this oracle. *)
let scan_child_step ctx (e : Xml.Node.element) sym =
  if Clip_obs.enabled ctx.obs then
    Clip_obs.scanned ctx.obs (List.length e.children);
  List.filter_map
    (function
      | Xml.Node.Element c when Xml.Symbol.equal c.sym sym ->
        Some (Value.Node (Xml.Node.Element c))
      | Xml.Node.Element _ | Xml.Node.Text _ -> None)
    e.children

(* The columnar twin of the naive scan: one sweep down the
   sibling-chain arrays, visiting every child (texts included) like the
   boxed scan — same [nodes_scanned] count, same matches, no
   memoisation. *)
let doc_scan_child_step ctx (doc : Xml.Doc.t) id sym =
  let tagi = (sym : Xml.Symbol.t :> int) in
  let matches = ref [] and n = ref 0 in
  let c = ref doc.Xml.Doc.first_child.(id) in
  while !c >= 0 do
    incr n;
    if doc.Xml.Doc.tags.(!c) = tagi then
      matches := doc.Xml.Doc.nodes.(!c) :: !matches;
    c := doc.Xml.Doc.next_sibling.(!c)
  done;
  Clip_obs.scanned ctx.obs !n;
  List.rev_map (fun nd -> Value.Node nd) !matches

let step_items ctx (item : Value.item) (step : Path.step) : Value.item list =
  match item, step with
  | Value.Node (Xml.Node.Element e), Path.Child tag ->
    (* Intern once per step evaluation; per-child comparisons are then
       int compares instead of string equality. *)
    let sym = Xml.Symbol.intern tag in
    Clip_obs.child_step ctx.obs;
    (match ctx.cview with
     | Cindexed d ->
       let id = Xml.Doc.find_id (Xml.Index.doc_of_index d) e in
       if id >= 0 then begin
         let items =
           Xml.Index.doc_children_map ?obs:ctx.obs d id sym ~f:(fun n ->
               Value.Node n)
         in
         if Clip_obs.enabled ctx.obs then
           Clip_obs.scanned ctx.obs (List.length items);
         items
       end
       else begin
         (* An element constructed during evaluation: not part of the
            converted document. Probe the boxed index (lazy, O(1)
            build) so foreign elements do exactly the work — probes,
            hits, matches-only scans — the boxed-tree indexed path
            reports for them. *)
         let matches =
           Xml.Index.children_by_tag ?obs:ctx.obs (force_index ctx) e sym
         in
         if Clip_obs.enabled ctx.obs then
           Clip_obs.scanned ctx.obs (List.length matches);
         List.map (fun n -> Value.Node n) matches
       end
     | Cnaive d ->
       let doc = Xml.Index.doc_of_index d in
       let id = Xml.Doc.find_id doc e in
       if id >= 0 then doc_scan_child_step ctx doc id sym
       else scan_child_step ctx e sym
     | Cnone ->
       (match ctx.index with
        | None -> scan_child_step ctx e sym
        | Some idx ->
          let matches = Xml.Index.children_by_tag ?obs:ctx.obs idx e sym in
          if Clip_obs.enabled ctx.obs then
            Clip_obs.scanned ctx.obs (List.length matches);
          List.map (fun n -> Value.Node n) matches))
  | Value.Node (Xml.Node.Element e), Path.Attr name ->
    (match Xml.Node.attr e name with Some a -> [ Value.Atomic a ] | None -> [])
  | Value.Node (Xml.Node.Element e), Path.Value ->
    let columnar =
      match ctx.cview with
      | Cnaive d | Cindexed d ->
        (* O(1) read of the precomputed text value instead of a walk
           over the children list. *)
        let doc = Xml.Index.doc_of_index d in
        let id = Xml.Doc.find_id doc e in
        if id >= 0 then Some (Xml.Doc.text_value_of doc id) else None
      | Cnone -> None
    in
    (match columnar with
     | Some (Some a) -> [ Value.Atomic a ]
     | Some None -> []
     | None ->
       (match Xml.Node.text_value e with Some a -> [ Value.Atomic a ] | None -> []))
  | (Value.Node (Xml.Node.Text _) | Value.Atomic _), _ -> []

let rec eval_src ctx env (e : Term.expr) : Value.item list =
  tick ctx;
  match e with
  | Term.Root s ->
    (match ctx.source with
     | Xml.Node.Element root when String.equal root.tag s -> [ Value.Node ctx.source ]
     | Xml.Node.Element root ->
       error "source root is <%s>, the mapping expects <%s>" root.tag s
     | Xml.Node.Text _ -> error "source document root is a text node")
  | Term.Var x ->
    (match Env.find_opt x env with
     | Some (Src item) -> [ item ]
     | Some (Tgt _) -> error "variable %s is a target variable in a source position" x
     | None -> error "unbound source variable %s" x)
  | Term.Proj ((Term.Proj _ as inner), step) as proj ->
    (* chains of ≥ 2 steps amortise the fused path's setup; a lone
       step is cheaper through the per-item fast path below *)
    (match ctx.cview with
     | Cnaive d | Cindexed d -> eval_proj_fused ctx env d proj
     | Cnone ->
       List.concat_map (fun item -> step_items ctx item step) (eval_src ctx env inner))
  | Term.Proj (inner, step) ->
    List.concat_map (fun item -> step_items ctx item step) (eval_src ctx env inner)

(* Fused columnar projection: the whole [Proj] chain runs in node-id
   space — one interned symbol and one growable id buffer per level,
   boxing only the final level — instead of a dispatch, a symbol
   intern and an intermediate boxed list per item per level. Results
   and counters are exactly the generic recursion's: ticks fire once
   per [Proj] node before the base evaluates (the generic unwind
   order), every parent element counts one [child_step], and
   scans/probes go through {!Xml.Index.doc_append_children}'s shared
   counting rules. Any base item outside the document (an
   evaluator-built element, a text node, an atom) falls back to the
   per-item path for the whole chain. *)
and eval_proj_fused ctx env d (e0 : Term.expr) : Value.item list =
  let rec spine acc e =
    match e with Term.Proj (inner, s) -> spine (s :: acc) inner | base -> (base, acc)
  in
  let base, steps = spine [] e0 in
  (* the caller's [tick] covered the outermost node *)
  (match steps with [] -> () | _ :: rest -> List.iter (fun _ -> tick ctx) rest);
  let items = eval_src ctx env base in
  let doc = Xml.Index.doc_of_index d in
  let ok = ref true in
  let buf = ctx.sbuf_a in
  buf.Xml.Index.len <- 0;
  List.iter
    (fun it ->
      if !ok then
        match it with
        | Value.Node (Xml.Node.Element e) ->
          let id = Xml.Doc.find_id doc e in
          if id >= 0 then Xml.Index.idbuf_push buf id else ok := false
        | Value.Node (Xml.Node.Text _) | Value.Atomic _ -> ok := false)
    items;
  if not !ok then
    List.fold_left
      (fun its step -> List.concat_map (fun it -> step_items ctx it step) its)
      items steps
  else begin
    let naive = match ctx.cview with Cnaive _ -> true | _ -> false in
    let boxed (src : int array) n =
      let rec mk i acc =
        if i < 0 then acc
        else mk (i - 1) (Value.Node doc.Xml.Doc.nodes.(src.(i)) :: acc)
      in
      mk (n - 1) []
    in
    let rec levels (cur : Xml.Index.idbuf) (other : Xml.Index.idbuf) = function
      | [] -> boxed cur.Xml.Index.ids cur.Xml.Index.len
      | Path.Child tag :: rest ->
        let sym = Xml.Symbol.intern tag in
        let dst = other in
        dst.Xml.Index.len <- 0;
        let src = cur.Xml.Index.ids and n = cur.Xml.Index.len in
        for j = 0 to n - 1 do
          Clip_obs.child_step ctx.obs;
          Xml.Index.doc_append_children ?obs:ctx.obs d ~naive dst src.(j) sym
        done;
        levels dst cur rest
      | [ Path.Value ] ->
        let src = cur.Xml.Index.ids in
        let rec mk i acc =
          if i < 0 then acc
          else
            let tv = doc.Xml.Doc.text_value.(src.(i)) in
            mk (i - 1)
              (if tv >= 0 then Value.Atomic doc.Xml.Doc.atoms.(tv) :: acc else acc)
        in
        mk (cur.Xml.Index.len - 1) []
      | [ Path.Attr name ] ->
        let src = cur.Xml.Index.ids in
        let rec mk i acc =
          if i < 0 then acc
          else
            let acc =
              match doc.Xml.Doc.nodes.(src.(i)) with
              | Xml.Node.Element e ->
                (match Xml.Node.attr e name with
                 | Some a -> Value.Atomic a :: acc
                 | None -> acc)
              | Xml.Node.Text _ -> acc
            in
            mk (i - 1) acc
        in
        mk (cur.Xml.Index.len - 1) []
      | ((Path.Value | Path.Attr _) :: _ :: _) as all ->
        (* a leaf step mid-chain: box here and let the per-item path
           finish (it answers [] for atoms, like the generic walk) *)
        List.fold_left
          (fun its step -> List.concat_map (fun it -> step_items ctx it step) its)
          (boxed cur.Xml.Index.ids cur.Xml.Index.len)
          all
    in
    levels buf ctx.sbuf_b steps
  end

let scalar_functions = Builder.scalar_functions

let rec eval_scalar ctx env (s : Term.scalar) : Xml.Atom.t list =
  tick ctx;
  match s with
  | Term.E e -> Builder.atomize_items (eval_src ctx env e)
  | Term.Const a -> [ a ]
  | Term.Fn (name, args) ->
    let arg_atoms =
      List.map
        (fun arg ->
          match eval_scalar ctx env arg with
          | [ a ] -> a
          | [] -> error "%s: an argument evaluates to the empty sequence" name
          | _ -> error "%s: an argument evaluates to multiple values" name)
        args
    in
    [ Builder.apply_fn name arg_atoms ]

let holds ctx env (c : Tgd.comparison) =
  let ls = eval_scalar ctx env c.left in
  let rs = eval_scalar ctx env c.right in
  List.exists (fun a -> List.exists (Builder.compare_atoms c.op a) rs) ls

(* --- The engine ------------------------------------------------------- *)

let cartesian_bindings ctx env (gens : Tgd.source_gen list) =
  (* Enumerate environments extending [env] with one item per generator,
     left to right (later generators may reference earlier variables). *)
  let rec go env = function
    | [] -> [ env ]
    | (g : Tgd.source_gen) :: rest ->
      let items = eval_src ctx env g.sexpr in
      List.concat_map (fun item -> go (Env.add g.svar (Src item) env) rest) items
  in
  go env gens

(* Record which source elements were bound when a target element was
   created (or re-reached, for completion/group elements). The identity
   table mirrors [bprov], keeping each recording O(1). *)
let record_provenance (node : Builder.bnode) env =
  let seen =
    match node.Builder.bseen with
    | Some t -> t
    | None ->
      let t = Xml.Index.Tbl.create 8 in
      node.Builder.bseen <- Some t;
      t
  in
  Env.iter
    (fun _ binding ->
      match binding with
      | Src (Value.Node (Xml.Node.Element e)) ->
        if not (Xml.Index.Tbl.mem seen e) then begin
          Xml.Index.Tbl.add seen e ();
          node.Builder.bprov <- e :: node.Builder.bprov
        end
      | Src (Value.Node (Xml.Node.Text _) | Value.Atomic _) | Tgt _ -> ())
    env

(* --- Planning ---------------------------------------------------------- *)

(* Estimated items of one evaluation of [e] under the [`Cost] policy,
   from per-tag cardinalities: a [Child t] step under a parent tagged
   [p] yields ~count(t)/count(p) items (ceil; at least 1 when [t]
   occurs at all, exactly 0 when it never does), attribute and value
   steps yield at most one. [var_tags] maps chain variables to the tag
   of the element they range over; a [Child t] under a variable of
   unknown tag falls back to the global count of [t] — an upper bound.
   Returns the estimate and the result's tag (for threading through
   [var_tags]). *)
let est_expr ctx var_tags (e : Term.expr) : int option * Xml.Symbol.t option =
  let stats = force_stats ctx in
  let cap = Clip_plan.est_cap in
  let rec go = function
    | Term.Root s -> (Some 1, Some (Xml.Symbol.intern s))
    | Term.Var x -> (Some 1, Option.join (List.assoc_opt x var_tags))
    | Term.Proj (e, step) ->
      let est, ptag = go e in
      (match (step : Path.step) with
       | Path.Attr _ | Path.Value -> (est, None)
       | Path.Child t ->
         let sym = Xml.Symbol.intern t in
         let ct = Xml.Stats.tag_count stats sym in
         let est' =
           if ct = 0 then Some 0
           else
             match est, ptag with
             | Some e0, Some p when Xml.Stats.tag_count stats p > 0 ->
               let cp = Xml.Stats.tag_count stats p in
               let fan = max 1 ((ct + cp - 1) / cp) in
               Some (min cap (e0 * fan))
             | Some e0, _ -> Some (min cap (max e0 1 * ct))
             | None, _ -> Some ct
         in
         (est', Some sym))
  in
  go e

let cond_of ctx (c : Tgd.comparison) =
  let pvars = Term.scalar_vars c.left @ Term.scalar_vars c.right in
  let orig = { Clip_plan.pvars; test = (fun env -> holds ctx env c) } in
  match c.op with
  | Tgd.Eq | Tgd.In ->
    let keyed s =
      {
        Clip_plan.kvars = Term.scalar_vars s;
        keys = (fun env -> List.map Clip_plan.Key.of_atom (eval_scalar ctx env s));
      }
    in
    Clip_plan.Eq { left = keyed c.left; right = keyed c.right; orig }
  | Tgd.Ne | Tgd.Lt | Tgd.Le | Tgd.Gt | Tgd.Ge -> Clip_plan.Other orig

(* Compile a mapping tree to physical plans. Planning needs only the
   statically known outer variables (and, under [`Cost], the instance
   statistics), so a compiled tree is a per-(policy, mapping) artifact:
   its closures capture the context but none of a run's builder state,
   which is what lets a {!Session} cache it across runs. *)
let rec plan_mapping ctx policy bound var_tags (m : Tgd.t) =
  let gens_rev, var_tags' =
    List.fold_left
      (fun (acc, vt) (g : Tgd.source_gen) ->
        let est, tag =
          match policy with
          | `Force -> (None, None)
          | `Cost -> est_expr ctx vt g.sexpr
        in
        let gen =
          {
            Clip_plan.var = g.svar;
            deps = Term.expr_vars g.sexpr;
            est;
            eval = (fun env -> eval_src ctx env g.sexpr);
            bind = (fun env item -> Env.add g.svar (Src item) env);
          }
        in
        (gen :: acc, (g.svar, tag) :: vt))
      ([], var_tags) m.foralls
  in
  let pplan =
    Clip_plan.plan ~policy ~bound ~gens:(List.rev gens_rev)
      ~conds:(List.map (cond_of ctx) m.cond) ()
  in
  let bound' =
    bound
    @ List.map (fun (g : Tgd.source_gen) -> g.svar) m.foralls
    @ List.map (fun (g : Tgd.target_gen) -> g.tvar) m.exists
  in
  { pm = m; pplan; pchildren = List.map (plan_mapping ctx policy bound' var_tags') m.children }

(* Can evaluating this tree list some element's children twice? Within
   a chain {!Clip_plan.revisit_prone} answers; across nesting, a child
   chain runs once per parent binding, so its first generator
   re-enumerates the same elements whenever it does not read the
   parent chain's innermost variable. Only then can the lazy tag
   index's memoised groupings ever be reused. *)
let rec tree_revisits ~outer_last (p : planned) =
  let stages = (p.pplan : (_, _) Clip_plan.t).stages in
  let nst = Array.length stages in
  let first_indep =
    nst > 0
    &&
    match outer_last with
    | None -> false
    | Some v ->
      let gens = Clip_plan.stage_gens stages.(0) in
      not (List.mem v gens.(0).Clip_plan.deps)
  in
  let last =
    if nst = 0 then outer_last
    else begin
      let gens = Clip_plan.stage_gens stages.(nst - 1) in
      Some gens.(Array.length gens - 1).Clip_plan.var
    end
  in
  first_indep
  || Clip_plan.revisit_prone p.pplan
  || List.exists (tree_revisits ~outer_last:last) p.pchildren

(* Documents smaller than this never amortise index groupings; [`Auto]
   leaves the index off below the threshold even for revisit-prone
   plans. *)
let index_threshold = 256

(* Documents smaller than this don't repay even the plan layer itself:
   every join the cost model could pick is over segments of a handful
   of nodes, so [`Auto] runs the direct interpreter outright. *)
let naive_threshold = 128

(* --- Sessions ---------------------------------------------------------- *)

(* A session pins one source document and keeps everything that is
   per-document rather than per-run: the evaluation context (whose
   lazy index and statistics then survive across runs) and the
   compiled plan trees, keyed by (policy, mapping). Mapping values are
   pure data, so structural hashing is sound; a mapping containing a
   NaN constant never hits the cache (NaN <> NaN) and is simply
   re-planned. *)
type session = {
  sctx : ctx;
  splans : (bool * Tgd.t, planned) Hashtbl.t; (* key: (cost-policy?, mapping) *)
  (* One-slot physical-identity fast path in front of [splans]: a
     caller re-running the same mapping value skips the structural
     hash and deep equality, which on small documents costs as much as
     the run itself. *)
  mutable slast : (bool * Tgd.t * planned) option;
}

module Session = struct
  type t = session

  let create source =
    { sctx = make_ctx source; splans = Hashtbl.create 8; slast = None }
  let source s = s.sctx.source
  let stats s = force_stats s.sctx
end

(* Documents smaller than this don't repay the one-off columnar
   conversion under [`Auto] representation; the boxed tree runs. *)
let columnar_threshold = 256

let execute ?(limits = Clip_diag.Limits.default) ?(minimum_cardinality = true)
    ?(plan = `Auto) ?(repr = (`Tree : Xml.Doc.repr)) ?(ctl = Clip_run.Control.none)
    ?session ?steps_out ?obs ~source ~target_root (m : Tgd.t) =
  let ctx =
    match session with
    | Some s when s.sctx.source == source -> s.sctx
    | _ -> make_ctx source
  in
  ctx.steps := 0;
  ctx.max_steps <- limits.Clip_diag.Limits.max_eval_steps;
  ctx.obs <- obs;
  ctx.ctl <- ctl;
  let record_steps () =
    match steps_out with Some r -> r := !(ctx.steps) | None -> ()
  in
  Fun.protect ~finally:record_steps @@ fun () ->
  (* One unconditional control poll before any work makes an
     already-lapsed deadline (clip run --timeout-ms 0) or a pre-set
     cancel flag deterministic regardless of the 64-step amortisation. *)
  if not (Clip_run.Control.is_none ctx.ctl) then check_control ctx;
  Clip_fault.hit ~obs Clip_fault.Site.tgd_execute;
  let bld = Builder.create ~min_card:minimum_cardinality ~target_root in
  (* The evaluator-side operations the shared construction core needs:
     variable lookup/binding over this evaluator's [Env], source
     evaluation through [ctx] (so ticks and counters keep firing at
     the same sites), and instance-level provenance. *)
  let ops =
    {
      Builder.lookup_tgt =
        (fun env x ->
          match Env.find_opt x env with
          | Some (Tgt b) -> Some b
          | Some (Src _) ->
            error "variable %s is a source variable in a target position" x
          | None -> None);
      bind_tgt = (fun env x b -> Env.add x (Tgt b) env);
      eval_scalar = (fun env s -> eval_scalar ctx env s);
      eval_items = (fun env e -> eval_src ctx env e);
      record_provenance = (fun env node -> record_provenance node env);
    }
  in
  let pre_instantiate env m = Builder.pre_instantiate bld ~ops ~target_root env m in
  let emit_binding children env m =
    Builder.emit_binding bld ~ops ~target_root children env m
  in
  (* The naive interpreter, kept verbatim as the differential-testing
     oracle for the plan-based path below. *)
  let rec eval_mapping env (m : Tgd.t) =
    pre_instantiate env m;
    let bindings = cartesian_bindings ctx env m.foralls in
    List.iter
      (fun env ->
        tick ctx;
        if List.for_all (holds ctx env) m.cond then
          emit_binding (fun env -> List.iter (eval_mapping env) m.children) env m)
      bindings
  in
  (* The plan-based path: compile each mapping's universal part once
     (conditions pushed down, equality conditions turned into hash
     joins where profitable), then stream bindings into the same
     per-binding body the naive interpreter runs. With a session the
     compiled tree is fetched from (or added to) the per-document
     cache instead of recompiled. *)
  let planned_for policy =
    let build () = plan_mapping ctx policy [] [] m in
    match session with
    | Some s when s.sctx == ctx ->
      let cost = match policy with `Cost -> true | `Force -> false in
      (match s.slast with
       | Some (c, m', p) when c = cost && m' == m ->
         Clip_obs.memo_hit ctx.obs;
         p
       | _ ->
         let p =
           let key = (cost, m) in
           match Hashtbl.find_opt s.splans key with
           | Some p ->
             Clip_obs.memo_hit ctx.obs;
             p
           | None ->
             let p = build () in
             Hashtbl.add s.splans key p;
             p
         in
         s.slast <- Some (cost, m, p);
         p)
    | _ -> build ()
  in
  (* Resolve the document representation for this run. Under columnar
     the boxed tag index is never built: all child steps go through
     the id-vector index (or the array-sweep naive scan), and the
     planned path runs the vectorized frontier executor. *)
  let columnar =
    match repr with
    | `Tree -> false
    | `Columnar -> true
    | `Auto -> Xml.Stats.node_count (force_stats ctx) >= columnar_threshold
  in
  let docidx () = snd (force_doc ctx) in
  let rec eval_planned ~outer env (p : planned) =
    pre_instantiate env p.pm;
    (* Batch only where batching pays: the outermost plan of a mapping
       node, whose frontier actually widens over the document, and only
       when its builds are frontier-uniform (see {!Clip_plan.batchable}).
       Nested plans run once per outer tuple over singleton frontiers,
       where the batch machinery is pure per-invocation overhead — they
       keep the depth-first executor. *)
    let exec =
      if columnar && outer && Clip_plan.batchable p.pplan then
        Clip_plan.execute_batch
      else Clip_plan.execute
    in
    exec ?obs:ctx.obs p.pplan
      ~tick:(fun () -> tick ctx)
      ~env
      ~emit:(fun env ->
        emit_binding
          (fun env -> List.iter (eval_planned ~outer:false env) p.pchildren)
          env p.pm)
  in
  (match plan with
   | `Naive ->
     ctx.index <- None;
     ctx.cview <- (if columnar then Cnaive (docidx ()) else Cnone);
     eval_mapping Env.empty m
   | `Indexed ->
     if columnar then begin
       ctx.index <- None;
       ctx.cview <- Cindexed (docidx ())
     end
     else begin
       ctx.index <- Some (force_index ctx);
       ctx.cview <- Cnone
     end;
     eval_planned ~outer:true Env.empty (planned_for `Force)
   | `Auto ->
     if Xml.Stats.node_count (force_stats ctx) < naive_threshold then begin
       ctx.index <- None;
       ctx.cview <- (if columnar then Cnaive (docidx ()) else Cnone);
       eval_mapping Env.empty m
     end
     else begin
       let p = planned_for `Cost in
       (* The tag index pays only when some element's children are
          listed twice and the document is big enough to amortise the
          groupings; otherwise leave it off and scan. *)
       let use_index =
         tree_revisits ~outer_last:None p
         && Xml.Stats.node_count (force_stats ctx) >= index_threshold
       in
       if columnar then begin
         ctx.index <- None;
         ctx.cview <- (if use_index then Cindexed (docidx ()) else Cnaive (docidx ()))
       end
       else begin
         ctx.index <- (if use_index then Some (force_index ctx) else None);
         ctx.cview <- Cnone
       end;
       eval_planned ~outer:true Env.empty p
     end);
  Builder.root bld

let reraise_legacy ds =
  let d = match ds with d :: _ -> d | [] -> assert false in
  raise (Error d.Clip_diag.message)

let run_result ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session ?steps_out
    ?obs ~source ~target_root m =
  Clip_diag.guard (fun () ->
    Builder.bnode_to_node
      (execute ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session ?steps_out
         ?obs ~source ~target_root m))

let run ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session ?steps_out ?obs
    ~source ~target_root m =
  match
    run_result ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session ?steps_out
      ?obs ~source ~target_root m
  with
  | Ok n -> n
  | Error ds -> reraise_legacy ds

(* --- EXPLAIN ----------------------------------------------------------- *)

(* Static plan rendering: everything here mirrors the dispatch in
   [execute] — same thresholds, same policies, same planner — but only
   plans, never evaluates, so the output is deterministic and free of
   timings (golden-testable). *)
let explain ?(plan = `Auto) ?session ~source (m : Tgd.t) : string =
  let ctx =
    match session with
    | Some s when s.sctx.source == source -> s.sctx
    | _ -> make_ctx source
  in
  let b = Buffer.create 512 in
  let nodes = Xml.Stats.node_count (force_stats ctx) in
  Printf.bprintf b "backend: tgd\nplan: %s\ndocument: %d nodes\n"
    (match plan with `Naive -> "naive" | `Indexed -> "indexed" | `Auto -> "auto")
    nodes;
  let chain (m : Tgd.t) =
    match m.foralls with
    | [] -> "(no source generators)"
    | gens ->
      "for "
      ^ String.concat ", "
          (List.map
             (fun (g : Tgd.source_gen) ->
               Printf.sprintf "%s in %s" g.svar (Term.expr_to_string g.sexpr))
             gens)
  in
  let conds (m : Tgd.t) =
    match m.cond with
    | [] -> ""
    | cs ->
      " where "
      ^ String.concat " and "
          (List.map
             (fun (c : Tgd.comparison) ->
               Printf.sprintf "%s %s %s"
                 (Term.scalar_to_string c.left)
                 (Tgd.cmp_op_to_string c.op)
                 (Term.scalar_to_string c.right))
             cs)
  in
  let rule_header path m =
    Printf.bprintf b "rule %s: %s%s\n"
      (if String.equal path "" then "/" else path)
      (chain m) (conds m)
  in
  let rec naive_rules path (m : Tgd.t) =
    rule_header path m;
    if m.foralls <> [] then
      Buffer.add_string b
        "  every generator: nested-loop scan; conditions checked innermost\n";
    List.iteri
      (fun i c -> naive_rules (Printf.sprintf "%s/%d" path i) c)
      m.children
  in
  let rec planned_rules path (p : planned) =
    rule_header path p.pm;
    if p.pm.foralls <> [] then
      Printf.bprintf b "  plan: %s\n" (Clip_plan.describe p.pplan);
    Buffer.add_string b (Clip_plan.explain p.pplan);
    List.iteri
      (fun i c -> planned_rules (Printf.sprintf "%s/%d" path i) c)
      p.pchildren
  in
  (match plan with
   | `Naive ->
     Buffer.add_string b "strategy: naive interpreter (forced)\n";
     naive_rules "" m
   | `Indexed ->
     Buffer.add_string b
       "strategy: physical plans, forced hash joins, tag index on\n";
     planned_rules "" (plan_mapping ctx `Force [] [] m)
   | `Auto ->
     if nodes < naive_threshold then begin
       Printf.bprintf b
         "strategy: direct interpreter (%d nodes, below the %d-node planning threshold)\n"
         nodes naive_threshold;
       naive_rules "" m
     end
     else begin
       let p = plan_mapping ctx `Cost [] [] m in
       let revisits = tree_revisits ~outer_last:None p in
       let use_index = revisits && nodes >= index_threshold in
       Printf.bprintf b
         "strategy: physical plans, cost-based joins; tag index %s\n"
         (if use_index then "on (revisit-prone plan)"
          else if revisits then
            Printf.sprintf "off (document below the %d-node index threshold)"
              index_threshold
          else "off (straight-line plan, no element revisits)");
       planned_rules "" p
     end);
  Buffer.contents b

type trace_entry = {
  target_path : int list;
  sources : Xml.Node.t list;
}

let run_traced_unguarded ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session
    ?steps_out ?obs ~source ~target_root m =
  let root =
    execute ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session ?steps_out ?obs
      ~source ~target_root m
  in
  let trace = ref [] in
  let rec walk path (b : Builder.bnode) =
    trace :=
      {
        target_path = List.rev path;
        sources = List.rev_map (fun e -> Xml.Node.Element e) b.Builder.bprov;
      }
      :: !trace;
    List.iteri (fun i c -> walk (i :: path) c) (List.rev b.Builder.bchildren)
  in
  walk [] root;
  (Builder.bnode_to_node root, List.rev !trace)

let run_traced_result ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session
    ?steps_out ?obs ~source ~target_root m =
  Clip_diag.guard (fun () ->
    run_traced_unguarded ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session
      ?steps_out ?obs ~source ~target_root m)

let run_traced ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session ?steps_out
    ?obs ~source ~target_root m =
  match
    run_traced_result ?limits ?minimum_cardinality ?plan ?repr ?ctl ?session
      ?steps_out ?obs ~source ~target_root m
  with
  | Ok r -> r
  | Error ds -> reraise_legacy ds
