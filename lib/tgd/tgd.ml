type cmp_op = Eq | Ne | Lt | Le | Gt | Ge | In

type agg_kind = Count | Sum | Avg | Min | Max

type source_gen = { svar : string; sexpr : Term.expr }

type gen_mode =
  | Driven
  | Completion
  | Grouped of { keys : Term.scalar list }

type target_gen = { tvar : string; texpr : Term.expr; mode : gen_mode }

type comparison = { left : Term.scalar; op : cmp_op; right : Term.scalar }

type assertion =
  | St_eq of Term.expr * Term.scalar
  | Target_cond of Term.expr * cmp_op * Clip_xml.Atom.t
  | Agg of Term.expr * agg_kind * Term.expr

type t = {
  foralls : source_gen list;
  cond : comparison list;
  exists : target_gen list;
  assertions : assertion list;
  children : t list;
}

let make ?(foralls = []) ?(cond = []) ?(exists = []) ?(assertions = [])
    ?(children = []) () =
  { foralls; cond; exists; assertions; children }

let source_gen svar sexpr = { svar; sexpr }
let driven tvar texpr = { tvar; texpr; mode = Driven }
let completion tvar texpr = { tvar; texpr; mode = Completion }
let grouped tvar texpr ~keys = { tvar; texpr; mode = Grouped { keys } }
let cmp left op right = { left; op; right }

let cmp_op_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | In -> "in"

let agg_kind_to_string = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let agg_kind_of_string = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let rec mapping_count m =
  1 + List.fold_left (fun n c -> n + mapping_count c) 0 m.children

let function_symbols m =
  let acc = ref [] in
  let add s = if not (List.mem s !acc) then acc := s :: !acc in
  let rec scan_scalar = function
    | Term.E _ | Term.Const _ -> ()
    | Term.Fn (name, args) ->
      add name;
      List.iter scan_scalar args
  in
  let rec go m =
    List.iter
      (fun g ->
        match g.mode with
        | Grouped { keys } ->
          add "group-by";
          List.iter scan_scalar keys
        | Driven | Completion -> ())
      m.exists;
    List.iter (fun c -> scan_scalar c.left; scan_scalar c.right) m.cond;
    List.iter
      (function
        | St_eq (_, s) -> scan_scalar s
        | Target_cond _ -> ()
        | Agg (_, kind, _) -> add (agg_kind_to_string kind))
      m.assertions;
    List.iter go m.children
  in
  go m;
  List.rev !acc

(* Flattening to per-creating-node rules. Each node of the nested tree
   that creates target structure (non-empty [exists]) or asserts values
   (non-empty [assertions]) yields one rule carrying everything in
   scope at that node: the universal generators and conditions of the
   node and all its ancestors, the full target-generator chain from the
   outermost mapping down, and the node's own assertions (an ancestor's
   assertions belong to the ancestor's rule). The nested tgd is the
   conjunction of its rules — rules only forget the {e sharing} of
   target elements between siblings, which is why containment over
   rules is sound but incomplete. *)
type rule = {
  r_foralls : source_gen list;
  r_cond : comparison list;
  r_chain : target_gen list;
  r_assertions : assertion list;
}

let rules m =
  let rec go ~foralls ~cond ~chain acc m =
    let foralls = foralls @ m.foralls in
    let cond = cond @ m.cond in
    let chain = chain @ m.exists in
    let acc =
      if m.exists <> [] || m.assertions <> [] then
        { r_foralls = foralls; r_cond = cond; r_chain = chain;
          r_assertions = m.assertions }
        :: acc
      else acc
    in
    List.fold_left (go ~foralls ~cond ~chain) acc m.children
  in
  List.rev (go ~foralls:[] ~cond:[] ~chain:[] [] m)

(* Alpha-equivalence: canonically rename variables in order of binding
   and compare the results structurally. *)
module Rename = Map.Make (String)

let rec canon_expr map = function
  | Term.Root s -> Term.Root s
  | Term.Var x ->
    Term.Var (match Rename.find_opt x map with Some y -> y | None -> "?" ^ x)
  | Term.Proj (e, s) -> Term.Proj (canon_expr map e, s)

let rec canon_scalar map = function
  | Term.E e -> Term.E (canon_expr map e)
  | Term.Const a -> Term.Const a
  | Term.Fn (name, args) -> Term.Fn (name, List.map (canon_scalar map) args)

let rec canon map counter m =
  let bind map var =
    let fresh = Printf.sprintf "v%d" !counter in
    incr counter;
    (Rename.add var fresh map, fresh)
  in
  let map, foralls =
    List.fold_left
      (fun (map, acc) g ->
        let sexpr = canon_expr map g.sexpr in
        let map, svar = bind map g.svar in
        (map, { svar; sexpr } :: acc))
      (map, []) m.foralls
  in
  let foralls = List.rev foralls in
  let cond =
    List.map
      (fun c -> { c with left = canon_scalar map c.left; right = canon_scalar map c.right })
      m.cond
  in
  let map, exists =
    List.fold_left
      (fun (map, acc) g ->
        let texpr = canon_expr map g.texpr in
        let mode =
          match g.mode with
          | Grouped { keys } -> Grouped { keys = List.map (canon_scalar map) keys }
          | (Driven | Completion) as mode -> mode
        in
        let map, tvar = bind map g.tvar in
        (map, { tvar; texpr; mode } :: acc))
      (map, []) m.exists
  in
  let exists = List.rev exists in
  let assertions =
    List.map
      (function
        | St_eq (e, s) -> St_eq (canon_expr map e, canon_scalar map s)
        | Target_cond (e, op, a) -> Target_cond (canon_expr map e, op, a)
        | Agg (e, kind, arg) -> Agg (canon_expr map e, kind, canon_expr map arg))
      m.assertions
  in
  let children = List.map (canon map counter) m.children in
  { foralls; cond; exists; assertions; children }

let alpha_equal a b =
  let ca = canon Rename.empty (ref 0) a in
  let cb = canon Rename.empty (ref 0) b in
  ca = cb
