module Xml = Clip_xml
module Path = Clip_schema.Path
module Value = Clip_xquery.Value

let error fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.tgd_eval s))
    fmt

(* Mutable target tree under construction. [bseen] is the identity
   seen-set backing [bprov], so recording provenance is O(1) per
   binding instead of a [List.memq] scan over everything recorded so
   far. *)
type bnode = {
  id : int;
  btag : string;
  mutable battrs : (string * Xml.Atom.t) list; (* reversed *)
  mutable btext : Xml.Atom.t option;
  mutable bchildren : bnode list; (* reversed *)
  mutable bprov : Xml.Node.element list; (* contributing source elements, reversed *)
  mutable bseen : unit Xml.Index.Tbl.t option;
}

(* Atomic so parallel batch runs ({!Clip_par}) can never hand two
   build nodes the same id — builder hash tables key on it. *)
let next_id = Atomic.make 0

let fresh_bnode btag =
  {
    id = 1 + Atomic.fetch_and_add next_id 1;
    btag;
    battrs = [];
    btext = None;
    bchildren = [];
    bprov = [];
    bseen = None;
  }

let rec bnode_to_node b =
  let children =
    List.rev_map (fun c -> bnode_to_node c) b.bchildren
  in
  let children =
    match b.btext with
    | Some a -> Xml.Node.text a :: children
    | None -> children
  in
  Xml.Node.elem ~attrs:(List.rev b.battrs) b.btag children

type t = {
  root : bnode;
  completion : (int * string, bnode) Hashtbl.t;
  groups : (int * string * Clip_plan.Key.t, bnode) Hashtbl.t;
  min_card : bool;
}

let create ~min_card ~target_root =
  {
    root = fresh_bnode target_root;
    completion = Hashtbl.create 64;
    groups = Hashtbl.create 64;
    min_card;
  }

let root bld = bld.root
let min_card bld = bld.min_card

let append_child parent child = parent.bchildren <- child :: parent.bchildren

let completion_child bld parent tag =
  match Hashtbl.find_opt bld.completion (parent.id, tag) with
  | Some b -> b
  | None ->
    let b = fresh_bnode tag in
    append_child parent b;
    Hashtbl.add bld.completion (parent.id, tag) b;
    b

let driven_child parent tag =
  let b = fresh_bnode tag in
  append_child parent b;
  b

let grouped_child bld parent tag key =
  match Hashtbl.find_opt bld.groups (parent.id, tag, key) with
  | Some b -> b
  | None ->
    let b = fresh_bnode tag in
    append_child parent b;
    Hashtbl.add bld.groups (parent.id, tag, key) b;
    b

(* Resolve the element part of a target expression: the head must be a
   bound target variable or the target root; intermediate child steps
   materialise as singleton (completion) elements. Returns the bnode of
   the last-but-one element and the final step. *)
let resolve_target bld ~target_root ~lookup (e : Term.expr) =
  let head = Term.head e in
  let base =
    match head with
    | Term.Root s when String.equal s target_root -> bld.root
    | Term.Root s -> error "unknown target root %s" s
    | Term.Var x ->
      (match lookup x with
       | Some b -> b
       | None -> error "unbound target variable %s" x)
    | Term.Proj _ -> assert false
  in
  (base, Term.steps e)

let descend_completion bld base steps =
  List.fold_left
    (fun b step ->
      match (step : Path.step) with
      | Path.Child tag -> completion_child bld b tag
      | Path.Attr _ | Path.Value ->
        error "target path traverses a leaf step")
    base steps

let split_last = function
  | [] -> None
  | steps ->
    let rec go acc = function
      | [ last ] -> Some (List.rev acc, last)
      | s :: rest -> go (s :: acc) rest
      | [] -> None
    in
    go [] steps

let set_leaf b (step : Path.step) atom =
  let conflict kind old =
    error "conflicting values for %s of <%s>: %s vs %s" kind b.btag
      (Xml.Atom.to_string old) (Xml.Atom.to_string atom)
  in
  match step with
  | Path.Attr name ->
    (match List.assoc_opt name b.battrs with
     | Some old ->
       if not (Xml.Atom.equal old atom) then conflict ("@" ^ name) old
     | None -> b.battrs <- (name, atom) :: b.battrs)
  | Path.Value ->
    (match b.btext with
     | Some old -> if not (Xml.Atom.equal old atom) then conflict "text" old
     | None -> b.btext <- Some atom)
  | Path.Child _ -> error "a leaf assignment must end on an attribute or value step"

(* --- Scalar kernel ----------------------------------------------------- *)

let scalar_functions = [ "concat"; "add"; "sub"; "mul"; "div"; "upper"; "lower" ]

let apply_fn name (args : Xml.Atom.t list) : Xml.Atom.t =
  let numeric a =
    match Xml.Atom.to_float a with
    | Some f -> f
    | None -> error "%s: non-numeric argument %s" name (Xml.Atom.to_string a)
  in
  let arith op =
    match args with
    | [ a; b ] ->
      let x = numeric a and y = numeric b in
      let r = op x y in
      if Float.is_integer r && Float.abs r < 1e15 then
        Xml.Atom.Int (int_of_float r)
      else Xml.Atom.Float r
    | _ -> error "%s: expected 2 arguments, got %d" name (List.length args)
  in
  match name with
  | "concat" ->
    Xml.Atom.String (String.concat "" (List.map Xml.Atom.to_string args))
  | "add" -> arith ( +. )
  | "sub" -> arith ( -. )
  | "mul" -> arith ( *. )
  | "div" ->
    arith (fun x y -> if y = 0. then error "div: division by zero" else x /. y)
  | "upper" | "lower" ->
    (match args with
     | [ a ] ->
       let f = if String.equal name "upper" then String.uppercase_ascii else String.lowercase_ascii in
       Xml.Atom.String (f (Xml.Atom.to_string a))
     | _ -> error "%s: expected 1 argument, got %d" name (List.length args))
  | name -> error "unknown scalar function %s" name

let atomize_items items =
  List.map
    (function
      | Value.Atomic a -> a
      | Value.Node n ->
        (match n with
         | Xml.Node.Text a -> a
         | Xml.Node.Element _ ->
           Xml.Atom.of_string (Value.string_value (Value.Node n))))
    items

let compare_atoms op a b =
  let open Xml.Atom in
  match (op : Tgd.cmp_op) with
  | Tgd.Eq | Tgd.In -> equal a b
  | Tgd.Ne -> not (equal a b)
  | Tgd.Lt -> compare a b < 0
  | Tgd.Le -> compare a b <= 0
  | Tgd.Gt -> compare a b > 0
  | Tgd.Ge -> compare a b >= 0

let aggregate kind (items : Value.item list) : Xml.Atom.t option =
  let numeric a =
    match Xml.Atom.to_float a with
    | Some f -> f
    | None -> error "aggregate: non-numeric value %s" (Xml.Atom.to_string a)
  in
  let condense f =
    match List.map numeric (atomize_items items) with
    | [] -> None
    | x :: xs ->
      let r = f x xs in
      if Float.is_integer r && Float.abs r < 1e15 then
        Some (Xml.Atom.Int (int_of_float r))
      else Some (Xml.Atom.Float r)
  in
  match (kind : Tgd.agg_kind) with
  | Tgd.Count -> Some (Xml.Atom.Int (List.length items))
  | Tgd.Sum ->
    (match condense (fun x xs -> List.fold_left ( +. ) x xs) with
     | None -> Some (Xml.Atom.Int 0)
     | some -> some)
  | Tgd.Avg ->
    condense (fun x xs ->
        List.fold_left ( +. ) x xs /. float_of_int (1 + List.length xs))
  | Tgd.Min -> condense (fun x xs -> List.fold_left min x xs)
  | Tgd.Max -> condense (fun x xs -> List.fold_left max x xs)

(* --- Env-generic emission ---------------------------------------------- *)

(* The per-binding body both executors run: instantiate the node's
   target generators, then apply its assertions. The environment type
   is the evaluator's own; [ops] supplies exactly the evaluator-side
   operations the body needs, so the tgd tree-walk and the relational
   executor share one construction semantics (and one set of dynamic
   error messages). *)
type 'env ops = {
  lookup_tgt : 'env -> string -> bnode option;
      (** target-variable lookup; expected to raise the evaluator's own
          diagnostic when the name is bound to a source value *)
  bind_tgt : 'env -> string -> bnode -> 'env;
  eval_scalar : 'env -> Term.scalar -> Xml.Atom.t list;
  eval_items : 'env -> Term.expr -> Value.item list; (* aggregate arguments *)
  record_provenance : 'env -> bnode -> unit;
}

let instantiate_target bld ~ops ~target_root env (g : Tgd.target_gen) =
  let base, steps =
    resolve_target bld ~target_root ~lookup:(ops.lookup_tgt env) g.texpr
  in
  match split_last steps with
  | None -> error "target generator %s binds the target root itself" g.tvar
  | Some (intermediate, last) ->
    let parent = descend_completion bld base intermediate in
    let tag =
      match last with
      | Path.Child tag -> tag
      | Path.Attr _ | Path.Value ->
        error "target generator %s ends on a leaf step" g.tvar
    in
    let node =
      match g.mode with
      | Tgd.Driven -> driven_child parent tag
      | Tgd.Completion ->
        if bld.min_card then completion_child bld parent tag
        else driven_child parent tag
      | Tgd.Grouped { keys } ->
        let key =
          List.map
            (fun k ->
              match ops.eval_scalar env k with
              | [ a ] -> a
              | [] -> error "grouping key evaluates to the empty sequence"
              | _ -> error "grouping key evaluates to multiple values")
            keys
        in
        (* Keys are normalised so tgd grouping and the generated
           XQuery's value comparisons agree on mixed-type data. *)
        grouped_child bld parent tag (Clip_plan.Key.of_atoms key)
    in
    ops.record_provenance env node;
    ops.bind_tgt env g.tvar node

let apply_assertion bld ~ops ~target_root env (a : Tgd.assertion) =
  let resolve e = resolve_target bld ~target_root ~lookup:(ops.lookup_tgt env) e in
  match a with
  | Tgd.St_eq (e, s) ->
    (match ops.eval_scalar env s with
     | [] -> () (* optional source data absent: nothing to copy *)
     | [ atom ] ->
       let base, steps = resolve e in
       (match split_last steps with
        | None -> error "a leaf assignment targets the document root"
        | Some (intermediate, last) ->
          let parent = descend_completion bld base intermediate in
          set_leaf parent last atom)
     | _ :: _ :: _ ->
       error
         "value mapping %s = %s binds multiple values; aggregate or group first"
         (Term.expr_to_string e) (Term.scalar_to_string s))
  | Tgd.Target_cond (e, op, atom) ->
    (match op with
     | Tgd.Eq ->
       let base, steps = resolve e in
       (match split_last steps with
        | None -> error "a target condition targets the document root"
        | Some (intermediate, last) ->
          let parent = descend_completion bld base intermediate in
          set_leaf parent last atom)
     | _ ->
       error "only equality target conditions are enforceable at build time")
  | Tgd.Agg (e, kind, arg) ->
    let items = ops.eval_items env arg in
    (match aggregate kind items with
     | None -> ()
     | Some atom ->
       let base, steps = resolve e in
       (match split_last steps with
        | None -> error "an aggregate targets the document root"
        | Some (intermediate, last) ->
          let parent = descend_completion bld base intermediate in
          set_leaf parent last atom))

(* Leading completion generators are the paper's constant tags: they
   exist once per parent context even when no binding survives, so
   instantiate them before enumerating bindings. (They only depend
   on outer variables; memoisation makes the per-binding
   re-instantiation below a no-op.) *)
let pre_instantiate bld ~ops ~target_root env (m : Tgd.t) =
  if bld.min_card then begin
    let rec pre env = function
      | ({ Tgd.mode = Tgd.Completion; _ } as g) :: rest ->
        pre (instantiate_target bld ~ops ~target_root env g) rest
      | _ -> env
    in
    ignore (pre env m.exists)
  end

let emit_binding bld ~ops ~target_root children env (m : Tgd.t) =
  let env =
    List.fold_left (fun env g -> instantiate_target bld ~ops ~target_root env g)
      env m.exists
  in
  List.iter (apply_assertion bld ~ops ~target_root env) m.assertions;
  children env
