(** Nested (second-order) tgds — the paper's internal mapping language
    (Sec. IV-A):

    {v M ::= ∀ x1∈g1,...,xn∈gn | C1 →
             ∃ y1∈g'1,...,ym∈g'm | (C2 ∧ M1 ∧ ... ∧ Mk) v}

    Beyond the logical form, each target generator carries an
    operational [mode]:

    - [Driven] — the generator came from a builder: one fresh target
      element per binding of the universal part.
    - [Completion] — the element is required by the target schema but
      built by no builder; under the paper's minimum-cardinality
      principle it is created once per parent context (Sec. VI places
      these as constant tags outside the FLWOR return).
    - [Grouped] — a group node: the element is memoised per distinct
      value of the grouping attributes, the second-order [group-by]
      Skolem of Sec. IV-B.

    The mode annotations are exactly the information the paper keeps
    out of the pure tgd text but needs for query generation ("we
    enforce minimum cardinality in the generated XQuery, not in the tgd
    expressions"); carrying them here lets both the direct evaluator
    and the XQuery generator implement the same semantics. *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge | In

type agg_kind = Count | Sum | Avg | Min | Max

(** A source generator [x ∈ e]. *)
type source_gen = { svar : string; sexpr : Term.expr }

type gen_mode =
  | Driven
  | Completion
  | Grouped of { keys : Term.scalar list }

(** A target generator [y ∈ e] with its operational mode. *)
type target_gen = { tvar : string; texpr : Term.expr; mode : gen_mode }

(** A [C1] conjunct: [a1 op a2]. *)
type comparison = { left : Term.scalar; op : cmp_op; right : Term.scalar }

(** A [C2] conjunct. *)
type assertion =
  | St_eq of Term.expr * Term.scalar
    (** source-to-target equality [e_t = t_s]; the scalar may apply
        scalar functions to source expressions *)
  | Target_cond of Term.expr * cmp_op * Clip_xml.Atom.t
    (** target condition [e_t op const] *)
  | Agg of Term.expr * agg_kind * Term.expr
    (** function equality [e_t = F(e_s)] for an aggregate [F]; the
        argument denotes a set rooted in a universally bound variable
        (the context of aggregation, Sec. IV-B) *)

type t = {
  foralls : source_gen list;
  cond : comparison list;
  exists : target_gen list;
  assertions : assertion list;
  children : t list; (** submappings [M1 ... Mk] *)
}

val make :
  ?foralls:source_gen list ->
  ?cond:comparison list ->
  ?exists:target_gen list ->
  ?assertions:assertion list ->
  ?children:t list ->
  unit ->
  t

val source_gen : string -> Term.expr -> source_gen
val driven : string -> Term.expr -> target_gen
val completion : string -> Term.expr -> target_gen
val grouped : string -> Term.expr -> keys:Term.scalar list -> target_gen
val cmp : Term.scalar -> cmp_op -> Term.scalar -> comparison

val cmp_op_to_string : cmp_op -> string
val agg_kind_to_string : agg_kind -> string
val agg_kind_of_string : string -> agg_kind option

(** Count of mappings in the tree (the mapping itself plus all
    descendants) — a size measure used by the flexibility analysis. *)
val mapping_count : t -> int

(** All function symbols used ([group-by], aggregate names, scalar
    function names), for the second-order [∃ F...] prefix. *)
val function_symbols : t -> string list

(** Structural equality up to variable renaming (alpha-equivalence).
    Used to deduplicate enumerated mappings. *)
val alpha_equal : t -> t -> bool

(** One creating node of the nested tree, flattened: everything in
    scope at that node. [r_foralls]/[r_cond] accumulate the node's and
    all ancestors' universal parts, [r_chain] is the full
    target-generator chain from the outermost mapping down to (and
    including) the node's own generators, [r_assertions] are the node's
    own (an ancestor's assertions appear only in the ancestor's rule). *)
type rule = {
  r_foralls : source_gen list;
  r_cond : comparison list;
  r_chain : target_gen list;
  r_assertions : assertion list;
}

(** [rules m] — the flattened rules of [m], preorder. A nested tgd is
    the conjunction of its rules; the flattening forgets only the
    sharing of target elements between sibling submappings, which is
    what makes homomorphism checks over rules (the {!Clip_algebra}
    containment test) sound but incomplete. *)
val rules : t -> rule list
