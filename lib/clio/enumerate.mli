(** The flexibility analysis behind Table I.

    Starting from a set of value mappings, Clio (with the Sec. V-B
    extension) generates one canonical nested mapping — the {e base}.
    Clip's explicit builders allow drawing {e more} mappings from the
    same value mappings. We enumerate them with a documented catalog of
    structural transformations of the base CPT:

    - {e drop-arc}: detach a build node from its context arc — the
      no-context semantics ("repeated within all departments",
      Sec. II-A); filter predicates referencing variables that leave
      scope are dropped;
    - {e group}: turn a build node into a detached group node, grouped
      by an identity value mapping on its own output element (the
      Fig. 7/8 construction). Joins need no operator of their own: they
      enter the base through chased tableaux, as in the paper's Fig. 4
      tgd.

    A variant is {e meaningful} when (i) it is valid (Sec. III), (ii)
    it executes without conflicts (a group variant whose non-key value
    mappings disagree within one group aborts), and (iii) its output on
    the scenario's witness instance differs from the base's and from
    every variant accepted before it. The count of meaningful variants
    is the paper's "extra meaningful mappings with Clip" lower bound. *)

type variant = {
  label : string;
  mapping : Clip_core.Mapping.t;
  outcome : outcome;
}

and outcome =
  | Accepted of Clip_xml.Node.t
  | Invalid of string (** validity errors *)
  | Failed of string (** ran but aborted (e.g. group conflict) *)
  | Duplicate of string (** same output as base or an earlier variant *)

type report = {
  base : Clip_core.Mapping.t; (** the Clio-extension mapping *)
  base_output : Clip_xml.Node.t;
  variants : variant list; (** every candidate, in enumeration order *)
}

(** [flexibility ~instance m] — [m] carries the schemas and value
    mappings (its CPT is ignored; the base is generated).
    @raise Failure when the generated base mapping is invalid or fails
    to run. *)
val flexibility : instance:Clip_xml.Node.t -> Clip_core.Mapping.t -> report

(** [flexibility_result ~instance m] — like {!flexibility}, reporting
    base-mapping failures as [CLIP-GEN-*] diagnostics. *)
val flexibility_result :
  instance:Clip_xml.Node.t ->
  Clip_core.Mapping.t ->
  (report, Clip_diag.t list) result

(** Number of [Accepted] variants — the paper's third column. *)
val extra_count : report -> int

val report_to_string : report -> string
