(** Clio mapping generation (Sec. V) and the Clip extension (Sec. V-B).

    Baseline Clio: activate skeletons with the user's value mappings,
    prune subsumed ones, nest a mapping under another when its source
    tableau extends the other's and its target tableau {e properly}
    extends it (a sub-mapping must build deeper target elements — the
    paper's "not a sub-mapping of AB→FG because the target side is the
    same"). Every target generator is [Driven]: the baseline constructs
    one target element per binding — which is exactly the Fig. 1 defect
    ("encloses each node in a different department element").

    The extension: while at least two nested-mapping roots admit a
    common generalisation — a skeleton [(S0, T0)] with [S0 ⊆ Si] and
    [T0 ⊊ Ti] for each — activate the one with the deepest target and
    then the {e smallest} source (minimum-cardinality: the new root
    must not iterate variables its own target does not need), and
    recompute the nesting. For the paper's Fig. 1 value mappings this
    activates [{dept} → {department}] and yields the Sec. I desired
    output; for Fig. 10 it activates [A → F]. *)

(** A nested mapping: an activated skeleton, the value mappings it
    carries, and its sub-mappings. *)
type nested = {
  skeleton : Skeleton.t;
  vms : Clip_core.Mapping.value_mapping list;
  children : nested list;
}

(** [forest ?extension m] — the nested-mapping forest generated from
    [m]'s schemas and value mappings ([m.roots] is ignored: generation
    starts from value mappings alone). [extension] (default [false])
    switches on the Sec. V-B root-generalisation.
    [extra_source_tableaux] injects user-provided tableaux into the
    skeleton matrix, as in the paper's second Fig. 10 example (the
    [A(B×D)] tableau). *)
val forest :
  ?extension:bool ->
  ?extra_source_tableaux:Tableau.t list ->
  Clip_core.Mapping.t ->
  nested list

(** [to_tgd m forest] — executable nested tgd (all generators driven;
    nesting shares the parents' variables). *)
val to_tgd : Clip_core.Mapping.t -> nested list -> Clip_tgd.Tgd.t

(** [to_tgd_result m forest] — like {!to_tgd}, reporting failures as
    [CLIP-GEN-*] diagnostics. *)
val to_tgd_result :
  Clip_core.Mapping.t -> nested list -> (Clip_tgd.Tgd.t, Clip_diag.t list) result

(** [generate ?extension m] — {!forest} followed by {!to_tgd}. *)
val generate : ?extension:bool -> Clip_core.Mapping.t -> Clip_tgd.Tgd.t

val generate_result :
  ?extension:bool ->
  Clip_core.Mapping.t ->
  (Clip_tgd.Tgd.t, Clip_diag.t list) result

(** [to_clip m forest] — render the generated forest as an explicit
    Clip mapping (build nodes + context arcs), when each nested mapping
    owns exactly one target generator.
    @raise Failure otherwise (baseline mappings with several driven
    target elements per node are not expressible as a single builder —
    the gap Clip's explicit builders close). *)
val to_clip : Clip_core.Mapping.t -> nested list -> Clip_core.Mapping.t

(** [to_clip_result m forest] — like {!to_clip}, reporting the
    inexpressible cases as [CLIP-GEN-002] diagnostics. *)
val to_clip_result :
  Clip_core.Mapping.t ->
  nested list ->
  (Clip_core.Mapping.t, Clip_diag.t list) result

(** Render a forest for diagnostics. *)
val forest_to_string : nested list -> string
