module Path = Clip_schema.Path
module Mapping = Clip_core.Mapping
module Validity = Clip_core.Validity
module Engine = Clip_core.Engine

type variant = {
  label : string;
  mapping : Mapping.t;
  outcome : outcome;
}

and outcome =
  | Accepted of Clip_xml.Node.t
  | Invalid of string
  | Failed of string
  | Duplicate of string

type report = {
  base : Mapping.t;
  base_output : Clip_xml.Node.t;
  variants : variant list;
}

(* --- CPT surgery -------------------------------------------------------- *)

let rec subtree_vars (n : Mapping.build_node) =
  Mapping.node_variables n @ List.concat_map subtree_vars n.bn_children

(* Drop predicates whose variables are no longer in scope once the node
   becomes a CPT root. *)
let scope_conds (n : Mapping.build_node) =
  let vars = subtree_vars n in
  let in_scope = function
    | Mapping.O_path (v, _) -> List.exists (String.equal v) vars
    | Mapping.O_const _ -> true
  in
  {
    n with
    bn_cond =
      List.filter
        (fun (p : Mapping.predicate) -> in_scope p.p_left && in_scope p.p_right)
        n.bn_cond;
  }

(* Remove node [id] wherever it occurs as a child; return the pruned
   forest and the removed node (if found). *)
let detach_node roots id =
  let removed = ref None in
  let rec prune (n : Mapping.build_node) =
    let children =
      List.filter_map
        (fun (c : Mapping.build_node) ->
          if String.equal c.bn_id id then begin
            removed := Some c;
            None
          end
          else Some (prune c))
        n.bn_children
    in
    { n with bn_children = children }
  in
  let roots = List.map prune roots in
  (roots, !removed)

let rec replace_node roots id f =
  List.map
    (fun (n : Mapping.build_node) ->
      if String.equal n.bn_id id then f n
      else { n with bn_children = replace_node n.bn_children id f })
    roots

let non_root_nodes (m : Mapping.t) =
  let rec below (n : Mapping.build_node) =
    n.bn_children @ List.concat_map below n.bn_children
  in
  List.concat_map below m.roots

(* --- The variant catalog ------------------------------------------------ *)

let drop_arc_variants (m : Mapping.t) =
  List.map
    (fun (n : Mapping.build_node) ->
      let roots, removed = detach_node m.roots n.bn_id in
      let roots =
        match removed with
        | Some r -> roots @ [ scope_conds r ]
        | None -> roots
      in
      (Printf.sprintf "drop-arc:%s" n.bn_id, { m with roots }))
    (non_root_nodes m)

(* An identity value mapping on an attribute of [n]'s output whose
   source sits under one of [n]'s inputs gives a grouping key. *)
let group_keys (m : Mapping.t) (n : Mapping.build_node) =
  match n.bn_output with
  | None -> []
  | Some out ->
    List.filter_map
      (fun (vm : Mapping.value_mapping) ->
        match vm.vm_fn, vm.vm_sources with
        | Mapping.Identity, [ src ] ->
          if Path.equal (Path.element_of vm.vm_target) out then
            List.find_map
              (fun (i : Mapping.input) ->
                match i.in_var, Path.strip_prefix ~prefix:i.in_source src with
                | Some v, Some steps -> Some ((v, steps), vm)
                | _ -> None)
              n.bn_inputs
          else None
        | _ -> None)
      m.values

let group_variants (m : Mapping.t) =
  let all = Mapping.all_nodes m in
  List.concat_map
    (fun (n : Mapping.build_node) ->
      List.map
        (fun ((key : Mapping.group_key), (vm : Mapping.value_mapping)) ->
          let is_root = List.exists (fun r -> r == n) m.roots in
          let grouped node = { node with Mapping.bn_group_by = [ key ] } in
          let roots =
            if is_root then replace_node m.roots n.bn_id grouped
            else
              let roots, removed = detach_node m.roots n.bn_id in
              match removed with
              | Some r -> roots @ [ grouped (scope_conds r) ]
              | None -> m.roots
          in
          ( Printf.sprintf "group:%s-by-%s" n.bn_id
              (Path.to_string vm.vm_target),
            { m with roots } ))
        (group_keys m n))
    all

(* --- The analysis ------------------------------------------------------- *)

let try_run ~instance (m : Mapping.t) =
  match Validity.check m with
  | issues
    when List.exists (fun (i : Validity.issue) -> i.severity = Validity.Error) issues
    ->
    Error
      (`Invalid
        (String.concat "; "
           (List.map Validity.issue_to_string
              (List.filter
                 (fun (i : Validity.issue) -> i.severity = Validity.Error)
                 issues))))
  | _ ->
    (match Engine.run m instance with
     | output -> Ok output
     | exception e -> Error (`Failed (Printexc.to_string e)))

let flexibility_unguarded ~instance (m : Mapping.t) =
  let forest = Generate.forest ~extension:true m in
  let base = Generate.to_clip m forest in
  let gen_error fmt =
    Printf.ksprintf
      (fun s ->
        Clip_diag.fail
          (Clip_diag.error ~code:Clip_diag.Codes.clio_not_expressible s))
      fmt
  in
  let base_output =
    match try_run ~instance base with
    | Ok out -> out
    | Error (`Invalid msg) -> gen_error "flexibility: invalid base mapping: %s" msg
    | Error (`Failed msg) -> gen_error "flexibility: base mapping failed: %s" msg
  in
  let seen = ref [ base_output ] in
  let variants =
    List.map
      (fun (label, mapping) ->
        let outcome =
          match try_run ~instance mapping with
          | Error (`Invalid msg) -> Invalid msg
          | Error (`Failed msg) -> Failed msg
          | Ok output ->
            if List.exists (Clip_xml.Node.equal_unordered output) !seen then
              Duplicate "output equals the base's or an earlier variant's"
            else begin
              seen := output :: !seen;
              Accepted output
            end
        in
        { label; mapping; outcome })
      (drop_arc_variants base @ group_variants base)
  in
  { base; base_output; variants }

let flexibility_result ~instance m =
  Clip_diag.guard (fun () -> flexibility_unguarded ~instance m)

let flexibility ~instance m =
  match flexibility_result ~instance m with
  | Ok r -> r
  | Error ds ->
    let d = match ds with d :: _ -> d | [] -> assert false in
    failwith d.Clip_diag.message

let extra_count r =
  List.length
    (List.filter (fun v -> match v.outcome with Accepted _ -> true | _ -> false) r.variants)

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "base mapping (Clio extension output): %d build nodes\n"
       (List.length (Mapping.all_nodes r.base)));
  List.iter
    (fun v ->
      let status =
        match v.outcome with
        | Accepted _ -> "ACCEPTED"
        | Invalid m -> "invalid: " ^ m
        | Failed m -> "failed: " ^ m
        | Duplicate m -> "duplicate: " ^ m
      in
      Buffer.add_string buf (Printf.sprintf "  %-40s %s\n" v.label status))
    r.variants;
  Buffer.add_string buf
    (Printf.sprintf "extra meaningful mappings with Clip: %d\n" (extra_count r));
  Buffer.contents buf
