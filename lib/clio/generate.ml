module Path = Clip_schema.Path
module Schema = Clip_schema.Schema
module Mapping = Clip_core.Mapping
module Tgd = Clip_tgd.Tgd
module Term = Clip_tgd.Term

type nested = {
  skeleton : Skeleton.t;
  vms : Mapping.value_mapping list;
  children : nested list;
}

(* Generation-time errors carry a stable CLIP-GEN-* code; the legacy
   entry points re-raise them as [Failure] (their historical
   behaviour). *)
let gerror code fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code ("clio: " ^ s)))
    fmt

let reraise_failure ds =
  let d = match ds with d :: _ -> d | [] -> assert false in
  failwith d.Clip_diag.message

(* --- Nesting ----------------------------------------------------------- *)

(* [b] may nest under [a]: shared source prefix, strictly deeper target. *)
let nests_under ~parent:(a : Skeleton.t) ~child:(b : Skeleton.t) =
  Tableau.subset a.src b.src
  && Tableau.subset a.tgt b.tgt
  && not (Tableau.equal a.tgt b.tgt)

let skeleton_weight (s : Skeleton.t) = Tableau.size s.src + Tableau.size s.tgt

(* Build the forest: each active entry nests under the deepest
   applicable other entry. *)
let build_forest (actives : (Skeleton.t * Mapping.value_mapping list) list) =
  let parent_of (s, _) =
    List.fold_left
      (fun best (s', _) ->
        if (not (Skeleton.equal s s')) && nests_under ~parent:s' ~child:s then
          match best with
          | Some b when skeleton_weight b >= skeleton_weight s' -> best
          | Some _ | None -> Some s'
        else best)
      None actives
  in
  let parents = List.map (fun entry -> (entry, parent_of entry)) actives in
  let rec node_of (s, vms) =
    let children =
      List.filter_map
        (fun ((s', vms'), parent) ->
          match parent with
          | Some p when Skeleton.equal p s && not (Skeleton.equal s s') ->
            Some (node_of (s', vms'))
          | Some _ | None -> None)
        parents
    in
    { skeleton = s; vms; children }
  in
  List.filter_map
    (fun (entry, parent) -> if parent = None then Some (node_of entry) else None)
    parents

(* --- The extension: activate common root generalisations -------------- *)

(* Closure of a tableau list under the parent relation. *)
let tableau_closure ts =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | t :: rest ->
      let fresh =
        List.filter
          (fun p -> not (List.exists (Tableau.equal p) (seen @ frontier)))
          (Tableau.parents t)
      in
      go (seen @ fresh) (rest @ fresh)
  in
  go ts ts

let extension_step actives =
  let roots = List.map (fun n -> n.skeleton) (build_forest actives) in
  if List.length roots < 2 then None
  else
    let src_closure = tableau_closure (List.map (fun (s : Skeleton.t) -> s.src) roots) in
    let tgt_closure = tableau_closure (List.map (fun (s : Skeleton.t) -> s.tgt) roots) in
    let candidates =
      List.concat_map
        (fun src ->
          List.filter_map
            (fun tgt ->
              let cand = { Skeleton.src; tgt } in
              let generalised =
                List.filter
                  (fun (r : Skeleton.t) ->
                    Tableau.subset cand.src r.src
                    && Tableau.subset cand.tgt r.tgt
                    && not (Tableau.equal cand.tgt r.tgt))
                  roots
              in
              if
                List.length generalised >= 2
                && not
                     (List.exists (fun (s, _) -> Skeleton.equal s cand) actives)
              then Some cand
              else None)
            tgt_closure)
        src_closure
    in
    (* Deepest target first (more sharing), then smallest source
       (minimum cardinality: do not iterate unneeded variables). *)
    let better a b =
      let ta = Tableau.size a.Skeleton.tgt and tb = Tableau.size b.Skeleton.tgt in
      if ta <> tb then ta > tb
      else Tableau.size a.Skeleton.src < Tableau.size b.Skeleton.src
    in
    match candidates with
    | [] -> None
    | first :: rest ->
      Some (List.fold_left (fun best c -> if better c best then c else best) first rest)

let forest ?(extension = false) ?(extra_source_tableaux = []) (m : Mapping.t) =
  let skeletons = Skeleton.matrix m.source m.target in
  let skeletons =
    skeletons
    @ List.concat_map
        (fun src ->
          List.map
            (fun (tgt : Tableau.t) -> { Skeleton.src; tgt })
            (Tableau.compute m.target))
        extra_source_tableaux
  in
  let actives = Skeleton.activate m skeletons in
  let actives =
    if not extension then actives
    else begin
      let rec fixpoint actives =
        match extension_step actives with
        | Some root -> fixpoint ((root, []) :: actives)
        | None -> actives
      in
      fixpoint actives
    end
  in
  build_forest actives

(* --- Emission ---------------------------------------------------------- *)

type emit_state = {
  mutable used : string list;
  source : Schema.t;
  target : Schema.t;
}

let fresh st hint =
  let base = if String.equal hint "" then "x" else hint in
  let rec try_name i =
    let name = if i = 0 then base else Printf.sprintf "%s%d" base (i + 1) in
    if List.exists (String.equal name) st.used then try_name (i + 1)
    else begin
      st.used <- name :: st.used;
      name
    end
  in
  try_name 0

let hint_of_path suffix (p : Path.t) =
  match Path.last_step p with
  | Some (Path.Child name) when String.length name > 0 ->
    String.make 1 (Char.lowercase_ascii name.[0]) ^ suffix
  | Some (Path.Child _ | Path.Attr _ | Path.Value) | None -> "x" ^ suffix

(* [env] maps bound element paths to variables; [None] = schema root. *)
let deepest_bound env p =
  List.fold_left
    (fun best (bp, var) ->
      if Path.is_prefix bp p then
        match best with
        | Some (prev, _) when List.length prev.Path.steps >= List.length bp.Path.steps
          -> best
        | Some _ | None -> Some (bp, var)
      else best)
    None env

let expr_of env p =
  match deepest_bound env p with
  | Some (bp, Some var) ->
    (match Term.reroot ~var ~prefix:bp p with
     | Some e -> e
     | None -> assert false)
  | Some (_, None) | None -> Term.of_path p

(* Emit generators for the tableau gens not already bound. *)
let emit_gens st env hint_suffix gens =
  List.fold_left
    (fun (acc, env) g ->
      if List.exists (fun (bp, _) -> Path.equal bp g) env then (acc, env)
      else
        let var = fresh st (hint_of_path hint_suffix g) in
        let sexpr = expr_of env g in
        (acc @ [ (var, g, sexpr) ], env @ [ (g, Some var) ]))
    ([], env) gens

let rec emit st ~senv ~tenv ~seen_vms (n : nested) : Tgd.t =
  let s = n.skeleton in
  let sgens, senv = emit_gens st senv "" s.src.gens in
  let tgens, tenv = emit_gens st tenv "'" s.tgt.gens in
  let foralls = List.map (fun (var, _, e) -> Tgd.source_gen var e) sgens in
  let exists = List.map (fun (var, _, e) -> Tgd.driven var e) tgens in
  (* A condition is emitted by the node that binds one of its
     generators; a parent with both ends bound emitted it already
     (nesting guarantees the parent's conditions are a subset). *)
  let newly_bound leaf =
    List.exists (fun (_, g, _) -> Path.is_prefix g (Path.element_of leaf)) sgens
  in
  let cond =
    List.filter_map
      (fun (a, b) ->
        if newly_bound a || newly_bound b then
          Some (Tgd.cmp (Term.E (expr_of senv a)) Tgd.Eq (Term.E (expr_of senv b)))
        else None)
      s.src.conds
  in
  (* A value mapping carried by an ancestor is already asserted there
     (nested mappings factor shared assertions to the outermost level). *)
  let own_vms =
    List.filter (fun vm -> not (List.memq vm seen_vms)) n.vms
  in
  let assertions =
    List.map
      (fun (vm : Mapping.value_mapping) ->
        let target_expr = expr_of tenv vm.vm_target in
        match vm.vm_fn with
        | Mapping.Identity ->
          (match vm.vm_sources with
           | [ src ] -> Tgd.St_eq (target_expr, Term.E (expr_of senv src))
           | _ ->
             gerror Clip_diag.Codes.clio_vm_arity
               "identity value mapping needs one source")
        | Mapping.Constant a -> Tgd.St_eq (target_expr, Term.Const a)
        | Mapping.Scalar name ->
          Tgd.St_eq
            ( target_expr,
              Term.Fn (name, List.map (fun p -> Term.E (expr_of senv p)) vm.vm_sources)
            )
        | Mapping.Aggregate kind ->
          (match vm.vm_sources with
           | [ src ] -> Tgd.Agg (target_expr, kind, expr_of senv src)
           | _ ->
             gerror Clip_diag.Codes.clio_vm_arity
               "aggregate value mapping needs one source"))
      own_vms
  in
  let seen_vms = seen_vms @ own_vms in
  let children = List.map (emit st ~senv ~tenv ~seen_vms) n.children in
  Tgd.make ~foralls ~cond ~exists ~assertions ~children ()

let to_tgd (m : Mapping.t) forest =
  let st = { used = []; source = m.source; target = m.target } in
  let mappings = List.map (emit st ~senv:[] ~tenv:[] ~seen_vms:[]) forest in
  match mappings with
  | [ only ] -> only
  | mappings -> Tgd.make ~children:mappings ()

let to_tgd_result (m : Mapping.t) forest = Clip_diag.guard (fun () -> to_tgd m forest)

let to_tgd m forest =
  match to_tgd_result m forest with Ok t -> t | Error ds -> reraise_failure ds

let generate_result ?extension m = to_tgd_result m (forest ?extension m)

let generate ?extension m = to_tgd m (forest ?extension m)

(* --- Rendering a forest as an explicit Clip mapping -------------------- *)

let to_clip (m : Mapping.t) forest =
  let counter = ref 0 in
  (* [senv] maps bound source generator paths to the variable that was
     tagged on the builder that introduced them — conditions of a node
     may reference its ancestors' variables. *)
  let rec node_of ~senv ~bound_tgt (n : nested) =
    let s = n.skeleton in
    let own_src =
      List.filter
        (fun g -> not (List.exists (fun (bp, _) -> Path.equal bp g) senv))
        s.src.gens
    in
    let own_tgt =
      List.filter
        (fun g -> not (List.exists (Path.equal g) bound_tgt))
        s.tgt.gens
    in
    let output =
      match own_tgt with
      | [ t ] -> t
      | [] ->
        gerror Clip_diag.Codes.clio_not_expressible
          "a nested mapping owns no target generator"
      | _ :: _ :: _ ->
        gerror Clip_diag.Codes.clio_not_expressible
          "a nested mapping owns several driven target elements; not \
           expressible as one builder"
    in
    (* Tag every input with a variable so conditions can reference it. *)
    let inputs_with_vars =
      List.map
        (fun g ->
          incr counter;
          (g, Printf.sprintf "v%d" !counter))
        own_src
    in
    let senv = senv @ inputs_with_vars in
    let var_of leaf =
      let elem = Path.element_of leaf in
      List.fold_left
        (fun best (g, v) ->
          if Path.is_prefix g elem then
            match best with
            | Some (bg, _) when List.length bg.Path.steps >= List.length g.Path.steps
              -> best
            | Some _ | None -> Some (g, v)
          else best)
        None senv
    in
    (* A condition belongs to the node that binds one of its ends. *)
    let newly_bound leaf =
      List.exists
        (fun (g, _) -> Path.is_prefix g (Path.element_of leaf))
        inputs_with_vars
    in
    let cond =
      List.filter_map
        (fun (a, b) ->
          if not (newly_bound a || newly_bound b) then None
          else
            match var_of a, var_of b with
            | Some (ga, va), Some (gb, vb) ->
              let steps p g =
                Option.value ~default:[] (Path.strip_prefix ~prefix:g p)
              in
              Some
                {
                  Mapping.p_left = Mapping.O_path (va, steps a ga);
                  p_op = Tgd.Eq;
                  p_right = Mapping.O_path (vb, steps b gb);
                }
            | _ -> None)
        s.src.conds
    in
    let children =
      List.map (node_of ~senv ~bound_tgt:(bound_tgt @ own_tgt)) n.children
    in
    Mapping.node ~output ~cond ~children
      (List.map (fun (g, v) -> Mapping.input ~var:v g) inputs_with_vars)
  in
  let roots = List.map (node_of ~senv:[] ~bound_tgt:[]) forest in
  Mapping.make ~source:m.source ~target:m.target ~roots m.values

let to_clip_result (m : Mapping.t) forest = Clip_diag.guard (fun () -> to_clip m forest)

let to_clip m forest =
  match to_clip_result m forest with Ok c -> c | Error ds -> reraise_failure ds

let forest_to_string forest =
  let buf = Buffer.create 128 in
  let rec go ind n =
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s\n"
         (String.make ind ' ')
         (Skeleton.to_string n.skeleton)
         (match n.vms with
          | [] -> ""
          | vms -> Printf.sprintf "  (%d vm)" (List.length vms)));
    List.iter (go (ind + 2)) n.children
  in
  List.iter (go 0) forest;
  Buffer.contents buf
