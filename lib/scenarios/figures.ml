module Mapping = Clip_core.Mapping
module Path = Clip_schema.Path
module Tgd = Clip_tgd.Tgd

type t = {
  name : string;
  title : string;
  mapping : Mapping.t;
  expected : Clip_xml.Node.t option;
  ordered : bool;
  minimum_cardinality : bool;
}

let p s =
  match Path.of_string s with
  | Ok p -> p
  | Error m -> invalid_arg (Printf.sprintf "bad path %S: %s" s m)

let xml = Clip_xml.Parser.parse_string

let gt_11000 var =
  {
    Mapping.p_left = Mapping.O_path (var, [ Path.Child "sal"; Path.Value ]);
    p_op = Tgd.Gt;
    p_right = Mapping.O_const (Clip_xml.Atom.Int 11000);
  }

let pid_join left right =
  {
    Mapping.p_left = Mapping.O_path (left, [ Path.Attr "pid" ]);
    p_op = Tgd.Eq;
    p_right = Mapping.O_path (right, [ Path.Attr "pid" ]);
  }

(* --- Figure 3: simple mapping with a filter --------------------------- *)

let fig3_mapping =
  Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig3
    ~roots:
      [
        Mapping.node ~id:"emp"
          ~output:(p "target.department.employee")
          ~cond:[ gt_11000 "r" ]
          [ Mapping.input ~var:"r" (p "source.dept.regEmp") ];
      ]
    [
      Mapping.value
        [ p "source.dept.regEmp.ename.value" ]
        (p "target.department.employee.@name");
    ]

let fig3 =
  {
    name = "fig3";
    title = "A simple Clip mapping";
    mapping = fig3_mapping;
    expected =
      Some
        (xml
           {|<target><department>
               <employee name="Andrew Clarence"/>
               <employee name="Richard Dawson"/>
               <employee name="Steven Aiking"/>
             </department></target>|});
    ordered = true;
    minimum_cardinality = true;
  }

let fig3_universal =
  {
    fig3 with
    name = "fig3-universal";
    title = "Fig. 3 without the minimum-cardinality principle";
    expected =
      Some
        (xml
           {|<target>
               <department><employee name="Andrew Clarence"/></department>
               <department><employee name="Richard Dawson"/></department>
               <department><employee name="Steven Aiking"/></department>
             </target>|});
    minimum_cardinality = false;
  }

(* --- Figure 4: context propagation ------------------------------------ *)

let emp_node_dp =
  Mapping.node ~id:"emp"
    ~output:(p "target.department.employee")
    ~cond:[ gt_11000 "r" ]
    [ Mapping.input ~var:"r" (p "source.dept.regEmp") ]

let fig4_values =
  [
    Mapping.value
      [ p "source.dept.regEmp.ename.value" ]
      (p "target.department.employee.@name");
  ]

let fig4 =
  {
    name = "fig4";
    title = "A mapping with context propagation";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_dp
        ~roots:
          [
            Mapping.node ~id:"dept"
              ~output:(p "target.department")
              ~children:[ emp_node_dp ]
              [ Mapping.input ~var:"d" (p "source.dept") ];
          ]
        fig4_values;
    expected =
      Some
        (xml
           {|<target>
               <department><employee name="Andrew Clarence"/></department>
               <department>
                 <employee name="Richard Dawson"/>
                 <employee name="Steven Aiking"/>
               </department>
             </target>|});
    ordered = true;
    minimum_cardinality = true;
  }

let fig4_nocontext =
  {
    name = "fig4-nocontext";
    title = "Fig. 4 with the context arc omitted";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_dp
        ~roots:
          [
            Mapping.node ~id:"dept"
              ~output:(p "target.department")
              [ Mapping.input ~var:"d" (p "source.dept") ];
            emp_node_dp;
          ]
        fig4_values;
    expected =
      Some
        (xml
           {|<target>
               <department>
                 <employee name="Andrew Clarence"/>
                 <employee name="Richard Dawson"/>
                 <employee name="Steven Aiking"/>
               </department>
               <department>
                 <employee name="Andrew Clarence"/>
                 <employee name="Richard Dawson"/>
                 <employee name="Steven Aiking"/>
               </department>
             </target>|});
    ordered = true;
    minimum_cardinality = true;
  }

(* --- Figure 5: a context propagation tree ------------------------------ *)

let fig5 =
  {
    name = "fig5";
    title = "A more complex Clip mapping (CPT, Sec. I desired output)";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_dp
        ~roots:
          [
            Mapping.node ~id:"dept"
              ~output:(p "target.department")
              ~children:
                [
                  Mapping.node ~id:"proj"
                    ~output:(p "target.department.project")
                    [ Mapping.input ~var:"pp" (p "source.dept.Proj") ];
                  Mapping.node ~id:"emp"
                    ~output:(p "target.department.employee")
                    [ Mapping.input ~var:"r" (p "source.dept.regEmp") ];
                ]
              [ Mapping.input ~var:"d" (p "source.dept") ];
          ]
        [
          Mapping.value
            [ p "source.dept.Proj.pname.value" ]
            (p "target.department.project.@name");
          Mapping.value
            [ p "source.dept.regEmp.ename.value" ]
            (p "target.department.employee.@name");
        ];
    expected =
      Some
        (xml
           {|<target>
               <department>
                 <project name="Appliances"/>
                 <project name="Robotics"/>
                 <employee name="John Smith"/>
                 <employee name="Andrew Clarence"/>
                 <employee name="Mark Tane"/>
                 <employee name="Jim Bellish"/>
               </department>
               <department>
                 <project name="Brand promotion"/>
                 <project name="Appliances"/>
                 <employee name="Richard Dawson"/>
                 <employee name="Mark Tane"/>
                 <employee name="Steven Aiking"/>
               </department>
             </target>|});
    ordered = true;
    minimum_cardinality = true;
  }

(* --- Figure 6: join constrained by a CPT ------------------------------- *)

let fig6_node ~join =
  Mapping.node ~id:"pair"
    ~output:(p "target.project-emp")
    ~cond:(if join then [ pid_join "pj" "r" ] else [])
    [
      Mapping.input ~var:"pj" (p "source.dept.Proj");
      Mapping.input ~var:"r" (p "source.dept.regEmp");
    ]

let fig6_values =
  [
    Mapping.value [ p "source.dept.Proj.pname.value" ] (p "target.project-emp.@pname");
    Mapping.value
      [ p "source.dept.regEmp.ename.value" ]
      (p "target.project-emp.@ename");
  ]

let fig6 =
  {
    name = "fig6";
    title = "A join constrained by a CPT";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig6
        ~roots:
          [
            Mapping.node ~id:"dept"
              ~children:[ fig6_node ~join:true ]
              [ Mapping.input ~var:"d" (p "source.dept") ];
          ]
        fig6_values;
    expected =
      Some
        (xml
           {|<target>
               <project-emp pname="Appliances" ename="John Smith"/>
               <project-emp pname="Appliances" ename="Andrew Clarence"/>
               <project-emp pname="Robotics" ename="Jim Bellish"/>
               <project-emp pname="Robotics" ename="Mark Tane"/>
               <project-emp pname="Brand promotion" ename="Richard Dawson"/>
               <project-emp pname="Appliances" ename="Mark Tane"/>
               <project-emp pname="Brand promotion" ename="Steven Aiking"/>
             </target>|});
    ordered = false;
    minimum_cardinality = true;
  }

let fig6_cartesian =
  {
    fig6 with
    name = "fig6-cartesian";
    title = "Fig. 6 without the join condition (per-dept Cartesian product)";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig6
        ~roots:
          [
            Mapping.node ~id:"dept"
              ~children:[ fig6_node ~join:false ]
              [ Mapping.input ~var:"d" (p "source.dept") ];
          ]
        fig6_values;
    expected = None;
  }

let fig6_global =
  {
    fig6 with
    name = "fig6-global";
    title = "Fig. 6 without the top-level build node (global Cartesian product)";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig6
        ~roots:[ fig6_node ~join:false ]
        fig6_values;
    expected = None;
  }

(* The join of Fig. 6 but ranging over every department's projects and
   employees at once: the prose variant whose naive evaluation is a
   full cross product of the two element sets (quadratic in instance
   size), which the physical-plan layer executes as a hash join. *)
let fig6_join_global =
  {
    fig6 with
    name = "fig6-join-global";
    title = "Fig. 6's join without the enclosing build node (global join)";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig6
        ~roots:[ fig6_node ~join:true ]
        fig6_values;
    expected = None;
  }

(* --- Figure 7: grouping and join --------------------------------------- *)

let fig7 =
  {
    name = "fig7";
    title = "A mapping with grouping and join";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig7
        ~roots:
          [
            Mapping.node ~id:"group"
              ~output:(p "target.project")
              ~group_by:[ ("pj", [ Path.Child "pname"; Path.Value ]) ]
              ~children:
                [
                  Mapping.node ~id:"emp"
                    ~output:(p "target.project.employee")
                    ~cond:[ pid_join "p2" "r" ]
                    [
                      Mapping.input ~var:"p2" (p "source.dept.Proj");
                      Mapping.input ~var:"r" (p "source.dept.regEmp");
                    ];
                ]
              [ Mapping.input ~var:"pj" (p "source.dept.Proj") ];
          ]
        [
          Mapping.value [ p "source.dept.Proj.pname.value" ] (p "target.project.@name");
          Mapping.value
            [ p "source.dept.regEmp.ename.value" ]
            (p "target.project.employee.@name");
        ];
    expected =
      Some
        (xml
           {|<target>
               <project name="Appliances">
                 <employee name="John Smith"/>
                 <employee name="Andrew Clarence"/>
                 <employee name="Mark Tane"/>
               </project>
               <project name="Robotics">
                 <employee name="Mark Tane"/>
                 <employee name="Jim Bellish"/>
               </project>
               <project name="Brand promotion">
                 <employee name="Richard Dawson"/>
                 <employee name="Steven Aiking"/>
               </project>
             </target>|});
    ordered = true;
    minimum_cardinality = true;
  }

(* --- Figure 8: inverting the nesting hierarchy ------------------------- *)

let fig8 =
  {
    name = "fig8";
    title = "Inverting the nesting hierarchy";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig8
        ~roots:
          [
            Mapping.node ~id:"group"
              ~output:(p "target.project")
              ~group_by:[ ("pj", [ Path.Child "pname"; Path.Value ]) ]
              ~children:
                [
                  Mapping.node ~id:"dept"
                    ~output:(p "target.project.department")
                    [ Mapping.input ~var:"d2" (p "source.dept") ];
                ]
              [ Mapping.input ~var:"pj" (p "source.dept.Proj") ];
          ]
        [
          Mapping.value [ p "source.dept.Proj.pname.value" ] (p "target.project.@name");
          Mapping.value
            [ p "source.dept.dname.value" ]
            (p "target.project.department.@name");
        ];
    expected =
      Some
        (xml
           {|<target>
               <project name="Appliances">
                 <department name="ICT"/>
                 <department name="Marketing"/>
               </project>
               <project name="Robotics">
                 <department name="ICT"/>
               </project>
               <project name="Brand promotion">
                 <department name="Marketing"/>
               </project>
             </target>|});
    ordered = true;
    minimum_cardinality = true;
  }

(* --- Figure 9: aggregates ---------------------------------------------- *)

let fig9 =
  {
    name = "fig9";
    title = "A mapping with aggregates";
    mapping =
      Mapping.make ~source:Deptdb.source ~target:Deptdb.target_fig9
        ~roots:
          [
            Mapping.node ~id:"dept"
              ~output:(p "target.department")
              [ Mapping.input ~var:"d" (p "source.dept") ];
          ]
        [
          Mapping.value [ p "source.dept.dname.value" ] (p "target.department.@name");
          Mapping.value
            ~fn:(Mapping.Aggregate Tgd.Count)
            [ p "source.dept.Proj" ]
            (p "target.department.@numProj");
          Mapping.value
            ~fn:(Mapping.Aggregate Tgd.Count)
            [ p "source.dept.regEmp" ]
            (p "target.department.@numEmps");
          Mapping.value
            ~fn:(Mapping.Aggregate Tgd.Avg)
            [ p "source.dept.regEmp.sal.value" ]
            (p "target.department.@avg-sal");
        ];
    expected =
      Some
        (xml
           {|<target>
               <department name="ICT" numProj="2" numEmps="4" avg-sal="10875"/>
               <department name="Marketing" numProj="2" numEmps="3" avg-sal="20000"/>
             </target>|});
    ordered = true;
    minimum_cardinality = true;
  }

(* --- Figure 1: the motivating value mappings (no builders) ------------- *)

let fig1_values =
  Mapping.make ~source:Deptdb.source ~target:Deptdb.target_dp
    [
      Mapping.value
        [ p "source.dept.Proj.pname.value" ]
        (p "target.department.project.@name");
      Mapping.value
        [ p "source.dept.regEmp.ename.value" ]
        (p "target.department.employee.@name");
    ]

let fig1_clio_output =
  xml
    {|<target>
        <department><project name="Appliances"/></department>
        <department><project name="Robotics"/></department>
        <department><project name="Brand promotion"/></department>
        <department><project name="Appliances"/></department>
        <department><employee name="John Smith"/></department>
        <department><employee name="Andrew Clarence"/></department>
        <department><employee name="Mark Tane"/></department>
        <department><employee name="Jim Bellish"/></department>
        <department><employee name="Richard Dawson"/></department>
        <department><employee name="Mark Tane"/></department>
        <department><employee name="Steven Aiking"/></department>
      </target>|}

let all =
  [
    fig3;
    fig3_universal;
    fig4;
    fig4_nocontext;
    fig5;
    fig6;
    fig6_cartesian;
    fig6_global;
    fig6_join_global;
    fig7;
    fig8;
    fig9;
  ]
