module Mapping = Clip_core.Mapping
module Path = Clip_schema.Path

let source =
  Clip_schema.Dsl.parse
    {|
    schema ROOT {
      A [0..*] {
        value: string
        B [0..*] {
          value: string
          C [0..*] { value: string }
        }
        D [0..*] {
          value: string
          E [0..*] { value: string }
        }
      }
    }
    |}

let target =
  Clip_schema.Dsl.parse
    {|
    schema ROOT2 {
      F [0..*] {
        @att1: string
        G [0..*] {
          @att2: string
          @att3: string
        }
      }
    }
    |}

let p s =
  match Path.of_string s with
  | Ok p -> p
  | Error m -> invalid_arg m

let mapping =
  Mapping.make ~source ~target
    [
      Mapping.value [ p "ROOT.A.B.value" ] (p "ROOT2.F.G.@att2");
      Mapping.value [ p "ROOT.A.D.value" ] (p "ROOT2.F.G.@att3");
    ]

let abd_gens = [ p "ROOT.A"; p "ROOT.A.B"; p "ROOT.A.D" ]

let instance =
  Clip_xml.Parser.parse_string
    {|
    <ROOT>
      <A>a1
        <B>b11<C>c111</C></B>
        <B>b12</B>
        <D>d11<E>e111</E></D>
        <D>d12</D>
      </A>
      <A>a2
        <B>b21</B>
        <D>d21</D>
      </A>
    </ROOT>
    |}
