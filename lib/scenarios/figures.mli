(** Every mapping worked in the paper (Figs. 3-9 plus the variants the
    prose discusses), with the expected target instances transcribed
    from the paper's printed outputs. *)

type t = {
  name : string; (** short id, e.g. ["fig4"] *)
  title : string; (** what the paper calls it *)
  mapping : Clip_core.Mapping.t;
  expected : Clip_xml.Node.t option;
    (** the output printed in the paper; [None] when the paper prints
        none (the mapping still runs and validates) *)
  ordered : bool;
    (** whether the paper's sibling order is pinned by our engine's
        iteration order (join outputs compare unordered — the paper's
        own listing order differs from generator order there) *)
  minimum_cardinality : bool;
    (** [false] for the universal-solution ablation variant *)
}

val fig3 : t
val fig3_universal : t (** Fig. 3 without the minimum-cardinality principle *)

val fig4 : t
val fig4_nocontext : t (** Fig. 4 with the context arc omitted *)

val fig5 : t
val fig6 : t
val fig6_cartesian : t (** Fig. 6 without the join condition *)

val fig6_global : t (** Fig. 6 without the top-level build node *)

val fig6_join_global : t
(** Fig. 6's join ranging over every department at once — naive
    evaluation is quadratic, the plan layer runs it as a hash join *)

val fig7 : t
val fig8 : t
val fig9 : t

(** The two value mappings of Fig. 1, with no builders (the Clio-style
    input; used by the generation and flexibility experiments). *)
val fig1_values : Clip_core.Mapping.t

(** Clio's problematic output for Fig. 1 ("encloses each node in a
    different department element"). *)
val fig1_clio_output : Clip_xml.Node.t

(** All scenarios above that carry a runnable mapping. *)
val all : t list
