module Mapping = Clip_core.Mapping
module Path = Clip_schema.Path

type scenario = {
  label : string;
  value_mappings : int;
  paper_extra : int;
  mapping : Mapping.t;
  instance : Clip_xml.Node.t;
}

let p s =
  match Path.of_string s with
  | Ok p -> p
  | Error m -> invalid_arg m

let xml = Clip_xml.Parser.parse_string

(* --- "Figure 1 in [2]": a three-level organisation mapping, 7 value
   mappings over company / department / employee / project sets. ------- *)

let nested_fig1 =
  let source =
    Clip_schema.Dsl.parse
      {|
      schema orgs {
        company [0..*] {
          cname: string
          location: string
          dept [0..*] {
            dname: string
            dbudget: int
            emp [0..*] {
              ename: string
              sal: int
            }
          }
          proj [0..*] {
            pname: string
          }
        }
      }
      |}
  in
  let target =
    Clip_schema.Dsl.parse
      {|
      schema corp {
        company [0..*] {
          @name: string
          @loc: string
          department [0..*] {
            @name: string
            @budget: int
            employee [0..*] {
              @name: string
              @sal: int
            }
          }
          project [0..*] {
            @name: string
          }
        }
      }
      |}
  in
  let mapping =
    Mapping.make ~source ~target
      [
        Mapping.value [ p "orgs.company.cname.value" ] (p "corp.company.@name");
        Mapping.value [ p "orgs.company.location.value" ] (p "corp.company.@loc");
        Mapping.value
          [ p "orgs.company.dept.dname.value" ]
          (p "corp.company.department.@name");
        Mapping.value
          [ p "orgs.company.dept.dbudget.value" ]
          (p "corp.company.department.@budget");
        Mapping.value
          [ p "orgs.company.dept.emp.ename.value" ]
          (p "corp.company.department.employee.@name");
        Mapping.value
          [ p "orgs.company.dept.emp.sal.value" ]
          (p "corp.company.department.employee.@sal");
        Mapping.value
          [ p "orgs.company.proj.pname.value" ]
          (p "corp.company.project.@name");
      ]
  in
  (* Duplicate dnames (different budgets) and duplicate enames
     (different salaries) across companies make the department and
     employee group variants abort; project names repeat freely. *)
  let instance =
    xml
      {|
      <orgs>
        <company>
          <cname>Acme</cname><location>Rome</location>
          <dept><dname>Sales</dname><dbudget>100</dbudget>
            <emp><ename>Ann</ename><sal>10</sal></emp>
            <emp><ename>Bob</ename><sal>20</sal></emp>
          </dept>
          <proj><pname>Atlas</pname></proj>
          <proj><pname>Borealis</pname></proj>
        </company>
        <company>
          <cname>Globex</cname><location>Milan</location>
          <dept><dname>Sales</dname><dbudget>200</dbudget>
            <emp><ename>Ann</ename><sal>30</sal></emp>
          </dept>
          <proj><pname>Atlas</pname></proj>
        </company>
      </orgs>
      |}
  in
  {
    label = "Figure 1 in [2]";
    value_mappings = 7;
    paper_extra = 4;
    mapping;
    instance;
  }

(* --- "Figure 3 in [2]": a two-level mapping, 4 value mappings. -------- *)

let nested_fig3 =
  let source =
    Clip_schema.Dsl.parse
      {|
      schema src {
        dept [0..*] {
          dname: string
          budget: int
          emp [0..*] {
            ename: string
            sal: int
          }
        }
      }
      |}
  in
  let target =
    Clip_schema.Dsl.parse
      {|
      schema tgt {
        department [0..*] {
          @name: string
          @budget: int
          employee [0..*] {
            @name: string
            @sal: int
          }
        }
      }
      |}
  in
  let mapping =
    Mapping.make ~source ~target
      [
        Mapping.value [ p "src.dept.dname.value" ] (p "tgt.department.@name");
        Mapping.value [ p "src.dept.budget.value" ] (p "tgt.department.@budget");
        Mapping.value
          [ p "src.dept.emp.ename.value" ]
          (p "tgt.department.employee.@name");
        Mapping.value
          [ p "src.dept.emp.sal.value" ]
          (p "tgt.department.employee.@sal");
      ]
  in
  (* Unique department names (the department group variant collapses to
     the base) and duplicate employee names with different salaries
     (the employee group variant aborts). *)
  let instance =
    xml
      {|
      <src>
        <dept><dname>R&amp;D</dname><budget>100</budget>
          <emp><ename>Ann</ename><sal>10</sal></emp>
          <emp><ename>Bob</ename><sal>20</sal></emp>
        </dept>
        <dept><dname>Ops</dname><budget>50</budget>
          <emp><ename>Ann</ename><sal>15</sal></emp>
        </dept>
      </src>
      |}
  in
  {
    label = "Figure 3 in [2]";
    value_mappings = 4;
    paper_extra = 1;
    mapping;
    instance;
  }

(* --- "Figure 1 in [1]": a flat relational-style source with a foreign
   key, 3 value mappings. ------------------------------------------------ *)

let translating_fig1 =
  let source =
    Clip_schema.Dsl.parse
      {|
      schema db {
        company [0..*] {
          @cid: int
          cname: string
        }
        grant [0..*] {
          @gid: int
          @recipient: int
          amount: int
        }
        ref grant.@recipient -> company.@cid
      }
      |}
  in
  let target =
    Clip_schema.Dsl.parse
      {|
      schema web {
        organization [0..*] {
          @name: string
          funding [0..*] {
            @fid: int
            @amount: int
          }
        }
      }
      |}
  in
  let mapping =
    Mapping.make ~source ~target
      [
        Mapping.value [ p "db.company.cname.value" ] (p "web.organization.@name");
        Mapping.value [ p "db.grant.@gid" ] (p "web.organization.funding.@fid");
        Mapping.value [ p "db.grant.amount.value" ] (p "web.organization.funding.@amount");
      ]
  in
  (* Unique company names: the organization group variant collapses to
     the base; duplicate grant ids with different amounts make the
     funding group variant abort. *)
  let instance =
    xml
      {|
      <db>
        <company cid="1"><cname>Acme</cname></company>
        <company cid="2"><cname>Globex</cname></company>
        <grant gid="7" recipient="1"><amount>100</amount></grant>
        <grant gid="7" recipient="2"><amount>250</amount></grant>
        <grant gid="9" recipient="2"><amount>50</amount></grant>
      </db>
      |}
  in
  {
    label = "Figure 1 in [1]";
    value_mappings = 3;
    paper_extra = 1;
    mapping;
    instance;
  }

(* --- "Figure 1 (this paper)". ------------------------------------------ *)

let this_paper_fig1 =
  {
    label = "Figure 1 (this paper)";
    value_mappings = 2;
    paper_extra = 4;
    mapping = Figures.fig1_values;
    instance = Deptdb.instance;
  }

let all = [ nested_fig1; nested_fig3; translating_fig1; this_paper_fig1 ]
