let schema = Clip_schema.Dsl.parse

let source =
  schema
    {|
    schema source {
      dept [1..*] {
        dname: string
        Proj [0..*] {
          @pid: int
          pname: string
        }
        regEmp [0..*] {
          @pid: int
          ename: string
          sal: int
        }
      }
      ref dept.regEmp.@pid -> dept.Proj.@pid
    }
    |}

let target_dp =
  schema
    {|
    schema target {
      department [1..*] {
        project [0..*] { @name: string }
        employee [0..*] { @name: string }
      }
    }
    |}

let target_fig3 =
  schema
    {|
    schema target {
      department [1..*] {
        employee [0..*] { @name: string }
        works-in [0..1] {
          area [0..*] : int
        }
      }
    }
    |}

let target_fig6 =
  schema
    {|
    schema target {
      project-emp [1..*] {
        @pname: string
        @ename: string
      }
    }
    |}

let target_fig7 =
  schema
    {|
    schema target {
      project [1..*] {
        @name: string
        employee [0..*] { @name: string }
      }
    }
    |}

let target_fig8 =
  schema
    {|
    schema target {
      project [1..*] {
        @name: string
        department [0..*] { @name: string }
      }
    }
    |}

let target_fig9 =
  schema
    {|
    schema target {
      department [1..*] {
        @name: string
        @numProj: int
        @numEmps: int
        # A department may have no employees (avg absent), and an
        # average of ints is not an int in general; the paper's "int"
        # annotation only fits its example instance.
        @avg-sal ?: float
      }
    }
    |}

let instance =
  Clip_xml.Parser.parse_string
    {|
    <source>
      <dept>
        <dname>ICT</dname>
        <Proj pid="1"><pname>Appliances</pname></Proj>
        <Proj pid="2"><pname>Robotics</pname></Proj>
        <regEmp pid="1"><ename>John Smith</ename><sal>10000</sal></regEmp>
        <regEmp pid="1"><ename>Andrew Clarence</ename><sal>12000</sal></regEmp>
        <regEmp pid="2"><ename>Mark Tane</ename><sal>10500</sal></regEmp>
        <regEmp pid="2"><ename>Jim Bellish</ename><sal>11000</sal></regEmp>
      </dept>
      <dept>
        <dname>Marketing</dname>
        <Proj pid="1"><pname>Brand promotion</pname></Proj>
        <Proj pid="32"><pname>Appliances</pname></Proj>
        <regEmp pid="1"><ename>Richard Dawson</ename><sal>30000</sal></regEmp>
        <regEmp pid="32"><ename>Mark Tane</ename><sal>10000</sal></regEmp>
        <regEmp pid="1"><ename>Steven Aiking</ename><sal>20000</sal></regEmp>
      </dept>
    </source>
    |}

let synthetic_instance ~depts ~projs ~emps =
  let open Clip_xml in
  let state = Random.State.make [| depts; projs; emps; 7 |] in
  (* Project ids are globally unique (department [i] owns the pid range
     [i*projs+1 .. (i+1)*projs]) and each employee references a project
     of its own department, so joins on [@pid] — per-department or
     global — produce output linear in instance size. *)
  let dept i =
    let proj j =
      Node.elem
        ~attrs:[ ("pid", Atom.Int j) ]
        "Proj"
        [ Node.leaf "pname" (Atom.String (Printf.sprintf "project-%d" (j mod 17))) ]
    in
    let emp k =
      let pid = (i * projs) + 1 + Random.State.int state (max 1 projs) in
      Node.elem
        ~attrs:[ ("pid", Atom.Int pid) ]
        "regEmp"
        [
          Node.leaf "ename" (Atom.String (Printf.sprintf "emp-%d-%d" i k));
          Node.leaf "sal" (Atom.Int (8000 + Random.State.int state 8000));
        ]
    in
    Node.elem "dept"
      (Node.leaf "dname" (Atom.String (Printf.sprintf "dept-%d" i))
       :: List.init projs (fun j -> proj ((i * projs) + j + 1))
      @ List.init emps (fun k -> emp k))
  in
  Node.elem "source" (List.init depts dept)
