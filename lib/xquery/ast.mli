(** Abstract syntax of the XQuery fragment Clip compiles into (Sec. VI):
    FLWOR expressions, child/attribute/text paths, direct element
    constructors with computed attribute values, general comparisons,
    and the built-in functions the generated queries call
    ([count], [avg], [sum], [min], [max], [distinct-values], [concat],
    ...). The fragment is closed under what {!Clip_core.To_xquery}
    emits, and {!Eval} executes all of it. *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type arith_op = Add | Sub | Mul | Div

type step =
  | Child_step of string (** [/tag] *)
  | Attr_step of string (** [/@name] *)
  | Text_step (** [/text()] *)

type expr =
  | Var of string (** [$x] (name without the dollar) *)
  | Doc of string (** the input document root, referenced by its tag *)
  | Literal of Clip_xml.Atom.t
  | Path of expr * step list (** [e/a/@b] *)
  | Seq of expr list (** [(e1, e2, ...)] — sequence construction *)
  | Elem of elem (** direct element constructor *)
  | Flwor of flwor
  | If of expr * expr * expr
  | Cmp of cmp_op * expr * expr (** general (existential) comparison *)
  | And of expr * expr
  | Or of expr * expr
  | Arith of arith_op * expr * expr
  | Call of string * expr list

and elem = {
  tag : string;
  attrs : (string * expr) list; (** computed attribute values *)
  content : expr list; (** enclosed expressions, concatenated *)
}

and flwor = {
  clauses : clause list;
  where : expr option;
  return : expr;
}

and clause =
  | For of string * expr (** [for $x in e] *)
  | Let of string * expr (** [let $x := e] *)

(** [free_vars e] — the variables [e] reads but does not bind (FLWOR
    clauses bind their variable for the remaining clauses, the [where]
    and the [return]), sorted. Drives the planner's dependency
    analysis. *)
val free_vars : expr -> string list

(** {1 Convenience constructors} *)

val var : string -> expr
val path : expr -> step list -> expr
val flwor : ?where:expr -> clause list -> expr -> expr
val elem : ?attrs:(string * expr) list -> string -> expr list -> expr
val call : string -> expr list -> expr
val str : string -> expr
val int : int -> expr
