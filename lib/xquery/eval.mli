(** Evaluator for the XQuery fragment of {!Ast} over {!Clip_xml} data.

    Evaluation is metered: every expression node visited counts one
    step against [limits.max_eval_steps], so a runaway query (e.g. a
    fuzzed FLWOR over a large cross product) reports [CLIP-LIM-004]
    instead of hanging. *)

exception Error of string

(** [run_result ~input expr] evaluates [expr]; [Ast.Doc tag] resolves
    to [input] when tags match (the generated queries reference the
    source document by its root tag, e.g. [source/dept]). Dynamic
    errors — unbound variables, unknown functions, type errors — are
    reported as [CLIP-XQ-002] diagnostics; exhausting the step budget
    as [CLIP-LIM-004]. *)
val run_result :
  ?limits:Clip_diag.Limits.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  (Value.t, Clip_diag.t list) result

(** [run ~input expr] — like {!run_result}.
    @raise Error on any reported diagnostic. *)
val run : ?limits:Clip_diag.Limits.t -> input:Clip_xml.Node.t -> Ast.expr -> Value.t

(** [run_document_result ~input expr] — like {!run_result} but expects
    the result to be exactly one element node (the constructed target
    document). *)
val run_document_result :
  ?limits:Clip_diag.Limits.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run_document ~input expr] — like {!run_document_result}.
    @raise Error on any reported diagnostic. *)
val run_document :
  ?limits:Clip_diag.Limits.t -> input:Clip_xml.Node.t -> Ast.expr -> Clip_xml.Node.t
