(** Evaluator for the XQuery fragment of {!Ast} over {!Clip_xml} data.

    Evaluation is metered: every expression node visited counts one
    step against [limits.max_eval_steps], so a runaway query (e.g. a
    fuzzed FLWOR over a large cross product) reports [CLIP-LIM-004]
    instead of hanging.

    Every entry point takes [?plan]: [`Indexed] (the default) runs
    FLWOR blocks through the shared {!Clip_plan} physical-plan layer —
    [where] conjuncts pushed to their earliest clause, equality
    conjuncts executed as hash joins, bindings streamed — with child
    path steps answered by a per-run {!Clip_xml.Index}; [`Naive] is
    the original clause-by-clause recursion, kept as the
    differential-testing oracle. The two modes produce identical
    values; only error behaviour may differ (pushdown can evaluate a
    failing conjunct the naive order would never reach, and vice
    versa). [?steps_out], when given, receives the number of budget
    steps consumed, even when evaluation fails. *)

exception Error of string

(** [run_result ~input expr] evaluates [expr]; [Ast.Doc tag] resolves
    to [input] when tags match (the generated queries reference the
    source document by its root tag, e.g. [source/dept]). Dynamic
    errors — unbound variables, unknown functions, type errors — are
    reported as [CLIP-XQ-002] diagnostics; exhausting the step budget
    as [CLIP-LIM-004]. *)
val run_result :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?steps_out:int ref ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  (Value.t, Clip_diag.t list) result

(** [run ~input expr] — like {!run_result}.
    @raise Error on any reported diagnostic. *)
val run :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?steps_out:int ref ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  Value.t

(** [run_document_result ~input expr] — like {!run_result} but expects
    the result to be exactly one element node (the constructed target
    document). *)
val run_document_result :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?steps_out:int ref ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run_document ~input expr] — like {!run_document_result}.
    @raise Error on any reported diagnostic. *)
val run_document :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?steps_out:int ref ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  Clip_xml.Node.t
