(** Evaluator for the XQuery fragment of {!Ast} over {!Clip_xml} data.

    Evaluation is metered: every expression node visited counts one
    step against [limits.max_eval_steps], so a runaway query (e.g. a
    fuzzed FLWOR over a large cross product) reports [CLIP-LIM-004]
    instead of hanging.

    Every entry point takes [?plan]: [`Auto] (the default) runs FLWOR
    blocks through the shared {!Clip_plan} physical-plan layer —
    [where] conjuncts pushed to their earliest clause, equality
    conjuncts executed as hash joins {e when the cost model says the
    table pays for itself} — and switches the {!Clip_xml.Index} tag
    index on adaptively, the moment a revisit-prone plan appears over
    a large-enough document. [`Indexed] forces every eligible join and
    the index unconditionally; [`Naive] is the original
    clause-by-clause recursion, kept as the differential-testing
    oracle. All modes produce identical values; only error behaviour
    may differ (pushdown can evaluate a failing conjunct the naive
    order would never reach, and vice versa). [?steps_out], when
    given, receives the number of budget steps consumed, even when
    evaluation fails. [?obs], when given, collects execution counters
    for the run into the supplied sink — counters are explicit per-run
    state, never ambient. [?ctl], when given, is polled at the same
    budget tick sites (amortised, one clock read per 64 steps, plus
    once at run start): an expired deadline reports [CLIP-LIM-005], a
    set cancellation flag [CLIP-LIM-006] — see {!Clip_run.Control}.

    Every run entry point also takes [?repr] (default [`Tree]): the
    document-representation switch of {!Clip_xml.Doc.repr}. [`Columnar]
    converts the input to the struct-of-arrays {!Clip_xml.Doc} (cached
    per document by a session), runs child steps as id-vector probes /
    array sweeps, and executes FLWOR plans with the vectorized
    {!Clip_plan.execute_batch}; [`Auto] picks columnar for large-enough
    documents. All representations produce identical values and
    preserve the counter invariants; [explain] is
    representation-independent.

    A {!Session} pins one input document and carries its per-document
    artifacts — tag index, instance statistics, compiled FLWOR plans —
    across runs. *)

exception Error of string

(** A per-document cache reused by every run handed the session
    together with the {e same} (physically equal) input document;
    with a different document the session is simply ignored. Sessions
    are not thread-safe. *)
module Session : sig
  type t

  val create : Clip_xml.Node.t -> t
  val input : t -> Clip_xml.Node.t
end

(** [explain ~input expr] — a static, deterministic EXPLAIN of how
    [?plan] (default [`Auto]) would evaluate [expr] over [input]: a
    header stating the resolved strategy (for [`Auto]: direct
    interpreter below the planning threshold), then one block per
    FLWOR (preorder-numbered) with its physical stages, cardinality
    estimates and the planner's per-equality decision notes (see
    {!Clip_plan.explain}). Nothing is evaluated and no timing appears
    in the output, so it is stable for golden tests. *)
val explain :
  ?plan:Clip_plan.mode ->
  ?session:Session.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  string

(** [run_result ~input expr] evaluates [expr]; [Ast.Doc tag] resolves
    to [input] when tags match (the generated queries reference the
    source document by its root tag, e.g. [source/dept]). Dynamic
    errors — unbound variables, unknown functions, type errors — are
    reported as [CLIP-XQ-002] diagnostics; exhausting the step budget
    as [CLIP-LIM-004]. *)
val run_result :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  (Value.t, Clip_diag.t list) result

(** [run ~input expr] — like {!run_result}.
    @raise Error on any reported diagnostic. *)
val run :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  Value.t

(** [run_document_result ~input expr] — like {!run_result} but expects
    the result to be exactly one element node (the constructed target
    document). *)
val run_document_result :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  (Clip_xml.Node.t, Clip_diag.t list) result

(** [run_document ~input expr] — like {!run_document_result}.
    @raise Error on any reported diagnostic. *)
val run_document :
  ?limits:Clip_diag.Limits.t ->
  ?plan:Clip_plan.mode ->
  ?repr:Clip_xml.Doc.repr ->
  ?ctl:Clip_run.Control.t ->
  ?session:Session.t ->
  ?steps_out:int ref ->
  ?obs:Clip_obs.Counters.t ->
  input:Clip_xml.Node.t ->
  Ast.expr ->
  Clip_xml.Node.t
