module Xml = Clip_xml

exception Error of string

let error fmt =
  Printf.ksprintf
    (fun s -> Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.xquery_eval s))
    fmt

module Env = Map.Make (String)

(* Evaluation context: the input document plus the step budget that
   bounds runaway queries (CLIP-LIM-004). Under [`Indexed] and [`Auto]
   FLWOR blocks run through {!Clip_plan} instead of the naive
   recursion.

   The context outlives one run when held by a {!Session}: the
   memoised tag index, the instance statistics and the FLWOR plan memo
   are per-document, so a session pays them once. [index] is the per-run
   (for [`Auto]: adaptive, see [eval_flwor_planned]) view; [xindex]
   owns the index itself. [plans] memoises compiled FLWOR plans keyed
   by the physical identity of the clause list — the same FLWOR block
   re-entered once per outer binding (the hot path of nested queries)
   then replans zero times — plus the outer-variable set and policy,
   which both affect planning. *)
(* Per-run columnar view of the input document: [Cnone] runs the
   boxed-tree paths; [Cnaive] sweeps the sibling-chain arrays with
   naive-scan counting; [Cindexed] probes the memoised id-vector
   index. Under [`Auto] the view upgrades [Cnaive] -> [Cindexed]
   adaptively, mirroring the boxed index switch. *)
type cview =
  | Cnone
  | Cnaive of Xml.Index.docidx
  | Cindexed of Xml.Index.docidx

type ctx = {
  input : Xml.Node.t;
  mutable index : Xml.Index.t option;
  mutable xindex : Xml.Index.t option; (* resettable memo, see [force_index] *)
  mutable stats : Xml.Stats.t option; (* resettable memo, see [force_stats] *)
  mutable cview : cview; (* per-run view, set by [with_ctx] like [index] *)
  mutable xdoc : (Xml.Doc.t * Xml.Index.docidx) option;
      (* resettable memo: the converted columnar document and its
         id-vector index, amortised across a session's runs *)
  mutable plan : Clip_plan.mode;
  plans :
    (Ast.clause list * string list * bool * (Value.t Env.t, Value.t) Clip_plan.t)
    list
    ref;
  steps : int ref;
  mutable max_steps : int;
  mutable obs : Clip_obs.sink;
      (* per-run counter sink, set by [with_ctx]; explicit state — the
         evaluator never reaches for an ambient sink *)
  mutable ctl : Clip_run.Control.t;
      (* per-run deadline/cancellation view, polled by [tick] *)
  sbuf_a : Xml.Index.idbuf;
  sbuf_b : Xml.Index.idbuf;
      (* scratch id buffers for the fused path, ping-ponged between
         levels; sound because the fused walk never re-enters [eval]
         while a buffer is live *)
}

(* Memo slots rather than lazies: a lazy that raises re-raises forever,
   so one injected fault (or an expiring deadline) during the build
   would poison a session-held context for every later run. With the
   slot, a failed build leaves [None] and the next run simply rebuilds. *)
let force_index ctx =
  match ctx.xindex with
  | Some i -> i
  | None ->
    let i = Xml.Index.build ctx.input in
    ctx.xindex <- Some i;
    i

(* The columnar document and its index share one memo slot: the
   conversion is the expensive half, and the index ([build_doc], the
   fault boundary) is O(1) on top of it. *)
let force_doc ctx =
  match ctx.xdoc with
  | Some d -> d
  | None ->
    let doc = Xml.Doc.of_node ctx.input in
    let d = (doc, Xml.Index.build_doc doc) in
    ctx.xdoc <- Some d;
    d

let force_stats ctx =
  match ctx.stats with
  | Some s -> s
  | None ->
    let s =
      (* {!Xml.Stats.collect_doc} agrees exactly with the tree walk,
         so which one ran is unobservable. *)
      match ctx.xdoc with
      | Some (doc, _) -> Xml.Stats.collect_doc doc
      | None -> Xml.Stats.collect ctx.input
    in
    ctx.stats <- Some s;
    s

let check_control ctx =
  Clip_obs.ctl_check ctx.obs;
  match Clip_run.Control.check ctx.ctl with
  | None -> ()
  | Some d -> Clip_diag.fail d

let tick ctx =
  incr ctx.steps;
  Clip_obs.lim_tick ctx.obs;
  if !(ctx.steps) > ctx.max_steps then
    Clip_diag.fail
      (Clip_diag.error ~code:Clip_diag.Codes.limit_eval_steps
         ~hints:[ "raise [limits.max_eval_steps] if the query is expected to be this large" ]
         (Printf.sprintf "evaluation exceeded the budget of %d steps" ctx.max_steps));
  (* Deadline/cancellation poll, amortised to one clock read per 64
     steps so uncontrolled runs pay one branch per tick. *)
  if !(ctx.steps) land 63 = 0 && not (Clip_run.Control.is_none ctx.ctl) then
    check_control ctx

(* Effective boolean value, with the multi-item case reported as a
   dynamic error instead of [Invalid_argument]. *)
let ebool v =
  match Value.effective_bool v with
  | b -> b
  | exception Invalid_argument m -> error "%s" m

(* Naive child scan over the boxed tree: visits every child —
   [nodes_scanned] records exactly that asymmetry against the indexed
   paths (indexed can never exceed naive). *)
let scan_child_step ctx (e : Xml.Node.element) sym =
  if Clip_obs.enabled ctx.obs then
    Clip_obs.scanned ctx.obs (List.length e.children);
  List.filter_map
    (function
      | Xml.Node.Element c when Xml.Symbol.equal c.sym sym ->
        Some (Value.Node (Xml.Node.Element c))
      | Xml.Node.Element _ | Xml.Node.Text _ -> None)
    e.children

(* The columnar twin of the naive scan: one sweep down the
   sibling-chain arrays, visiting every child (texts included) like
   the boxed scan — same [nodes_scanned] count, same matches. *)
let doc_scan_child_step ctx (doc : Xml.Doc.t) id sym =
  let tagi = (sym : Xml.Symbol.t :> int) in
  let matches = ref [] and n = ref 0 in
  let c = ref doc.Xml.Doc.first_child.(id) in
  while !c >= 0 do
    incr n;
    if doc.Xml.Doc.tags.(!c) = tagi then
      matches := doc.Xml.Doc.nodes.(!c) :: !matches;
    c := doc.Xml.Doc.next_sibling.(!c)
  done;
  Clip_obs.scanned ctx.obs !n;
  List.rev_map (fun nd -> Value.Node nd) !matches

let step_nodes ctx (item : Value.item) (step : Ast.step) : Value.t =
  match item, step with
  | Value.Node (Xml.Node.Element e), Ast.Child_step tag ->
    (* Intern once per step evaluation; per-child comparisons are then
       int compares instead of string equality. *)
    let sym = Xml.Symbol.intern tag in
    Clip_obs.child_step ctx.obs;
    (match ctx.cview with
     | Cindexed d ->
       let id = Xml.Doc.find_id (Xml.Index.doc_of_index d) e in
       if id >= 0 then begin
         let items =
           Xml.Index.doc_children_map ?obs:ctx.obs d id sym ~f:(fun n ->
               Value.Node n)
         in
         if Clip_obs.enabled ctx.obs then
           Clip_obs.scanned ctx.obs (List.length items);
         items
       end
       else begin
         (* Constructed during evaluation — not in the converted
            document. Probe the boxed index (lazy, O(1) build) so
            foreign elements do exactly the work — probes, hits,
            matches-only scans — the boxed-tree indexed path reports
            for them. *)
         let matches =
           Xml.Index.children_by_tag ?obs:ctx.obs (force_index ctx) e sym
         in
         if Clip_obs.enabled ctx.obs then
           Clip_obs.scanned ctx.obs (List.length matches);
         List.map (fun n -> Value.Node n) matches
       end
     | Cnaive d ->
       let doc = Xml.Index.doc_of_index d in
       let id = Xml.Doc.find_id doc e in
       if id >= 0 then doc_scan_child_step ctx doc id sym
       else scan_child_step ctx e sym
     | Cnone ->
       (match ctx.index with
        | None -> scan_child_step ctx e sym
        | Some idx ->
          let matches = Xml.Index.children_by_tag ?obs:ctx.obs idx e sym in
          if Clip_obs.enabled ctx.obs then
            Clip_obs.scanned ctx.obs (List.length matches);
          List.map (fun n -> Value.Node n) matches))
  | Value.Node (Xml.Node.Element e), Ast.Attr_step name ->
    (match Xml.Node.attr e name with
     | Some a -> [ Value.Atomic a ]
     | None -> [])
  | Value.Node (Xml.Node.Element e), Ast.Text_step ->
    List.filter_map
      (function Xml.Node.Text a -> Some (Value.Atomic a) | Xml.Node.Element _ -> None)
      e.children
  | (Value.Node (Xml.Node.Text _) | Value.Atomic _), _ -> []

let apply_steps_generic ctx v steps =
  List.fold_left
    (fun items step -> List.concat_map (fun it -> step_nodes ctx it step) items)
    v steps

(* Fused columnar path walk: chains of >= 2 steps run in node-id space
   — one interned symbol and one scratch id buffer per level, boxing
   only the final level — instead of a dispatch and an intermediate
   boxed list per item per level. Counters match the per-item walk
   exactly: one [child_step] per element per child step, and
   {!Xml.Index.doc_append_children} reproduces the probe/hit/scanned
   trace of [step_nodes] in both naive and indexed modes ([attr] and
   [text()] steps touch no counters on either path). Base items
   outside the converted document (evaluator-built elements, texts,
   atoms) send the whole chain down the per-item path. *)
let apply_steps ctx v steps =
  match steps, ctx.cview with
  | ([] | [ _ ]), _ | _, Cnone -> apply_steps_generic ctx v steps
  | _, (Cnaive d | Cindexed d) ->
    let doc = Xml.Index.doc_of_index d in
    let ok = ref true in
    let buf = ctx.sbuf_a in
    buf.Xml.Index.len <- 0;
    List.iter
      (fun it ->
        if !ok then
          match it with
          | Value.Node (Xml.Node.Element e) ->
            let id = Xml.Doc.find_id doc e in
            if id >= 0 then Xml.Index.idbuf_push buf id else ok := false
          | Value.Node (Xml.Node.Text _) | Value.Atomic _ -> ok := false)
      v;
    if not !ok then apply_steps_generic ctx v steps
    else begin
      let naive = match ctx.cview with Cnaive _ -> true | _ -> false in
      let boxed (src : int array) n =
        let rec mk i acc =
          if i < 0 then acc
          else mk (i - 1) (Value.Node doc.Xml.Doc.nodes.(src.(i)) :: acc)
        in
        mk (n - 1) []
      in
      let rec levels (cur : Xml.Index.idbuf) (other : Xml.Index.idbuf) = function
        | [] -> boxed cur.Xml.Index.ids cur.Xml.Index.len
        | Ast.Child_step tag :: rest ->
          let sym = Xml.Symbol.intern tag in
          let dst = other in
          dst.Xml.Index.len <- 0;
          let src = cur.Xml.Index.ids and n = cur.Xml.Index.len in
          for j = 0 to n - 1 do
            Clip_obs.child_step ctx.obs;
            Xml.Index.doc_append_children ?obs:ctx.obs d ~naive dst src.(j) sym
          done;
          levels dst cur rest
        | [ Ast.Text_step ] ->
          (* final text(): the text children straight off the arrays *)
          let src = cur.Xml.Index.ids in
          let acc = ref [] in
          for i = 0 to cur.Xml.Index.len - 1 do
            let c = ref doc.Xml.Doc.first_child.(src.(i)) in
            while !c >= 0 do
              let ta = doc.Xml.Doc.text_atom.(!c) in
              if ta >= 0 then acc := Value.Atomic doc.Xml.Doc.atoms.(ta) :: !acc;
              c := doc.Xml.Doc.next_sibling.(!c)
            done
          done;
          List.rev !acc
        | [ Ast.Attr_step name ] ->
          let src = cur.Xml.Index.ids in
          let rec mk i acc =
            if i < 0 then acc
            else
              let acc =
                match doc.Xml.Doc.nodes.(src.(i)) with
                | Xml.Node.Element e ->
                  (match Xml.Node.attr e name with
                   | Some a -> Value.Atomic a :: acc
                   | None -> acc)
                | Xml.Node.Text _ -> acc
              in
              mk (i - 1) acc
          in
          mk (cur.Xml.Index.len - 1) []
        | ((Ast.Text_step | Ast.Attr_step _) :: _ :: _) as all ->
          (* a leaf step mid-chain: box here and let the per-item walk
             finish (it answers [] for atoms, like the generic fold) *)
          apply_steps_generic ctx (boxed cur.Xml.Index.ids cur.Xml.Index.len) all
      in
      levels buf ctx.sbuf_b steps
    end

let compare_atoms op a b =
  let open Xml.Atom in
  let r =
    match op with
    | Ast.Eq -> equal a b
    | Ast.Ne -> not (equal a b)
    | Ast.Lt -> compare a b < 0
    | Ast.Le -> compare a b <= 0
    | Ast.Gt -> compare a b > 0
    | Ast.Ge -> compare a b >= 0
  in
  r

let numeric name v =
  match Xml.Atom.to_float v with
  | Some f -> f
  | None -> error "%s: non-numeric value %S" name (Xml.Atom.to_string v)

(* Estimated items of one evaluation of [e] under the [`Cost] policy,
   from per-tag cardinalities (see {!Clip_xml.Stats}): a [Child_step t]
   under a parent tagged [p] yields ~count(t)/count(p) items (ceil; at
   least 1 when [t] occurs, exactly 0 when it never does); attribute
   and text steps yield at most one value. [var_tags] maps chain-local
   variables to (estimated items when enumerated, element tag);
   variables bound outside the chain are priced as single items of
   unknown tag, and a child step under an unknown tag falls back to
   the global count of its tag — an upper bound. Returns the estimate
   and the result tag. *)
let est_flwor_expr ctx var_tags (e : Ast.expr) : int option * Xml.Symbol.t option =
  let stats = force_stats ctx in
  let cap = Clip_plan.est_cap in
  let rec go = function
    | Ast.Doc tag -> (Some 1, Some (Xml.Symbol.intern tag))
    | Ast.Var x ->
      (match List.assoc_opt x var_tags with
       | Some (est, tag) -> (est, tag)
       | None -> (Some 1, None))
    | Ast.Path (base, steps) ->
      List.fold_left
        (fun (est, ptag) step ->
          match (step : Ast.step) with
          | Ast.Attr_step _ | Ast.Text_step -> (est, None)
          | Ast.Child_step t ->
            let sym = Xml.Symbol.intern t in
            let ct = Xml.Stats.tag_count stats sym in
            let est' =
              if ct = 0 then Some 0
              else
                match est, ptag with
                | Some e0, Some p when Xml.Stats.tag_count stats p > 0 ->
                  let cp = Xml.Stats.tag_count stats p in
                  let fan = max 1 ((ct + cp - 1) / cp) in
                  Some (min cap (e0 * fan))
                | Some e0, _ -> Some (min cap (max e0 1 * ct))
                | None, _ -> Some ct
            in
            (est', Some sym))
        (go base) steps
    | _ -> (None, None)
  in
  go e

(* Documents smaller than this never amortise index groupings; [`Auto]
   leaves the tag index off below the threshold. *)
let index_threshold = 256

(* Documents smaller than this don't repay even the plan layer itself:
   every join the cost model could pick is over segments of a handful
   of nodes, so [`Auto] downgrades to the direct interpreter. *)
let naive_threshold = 128

let rec eval ctx env (e : Ast.expr) : Value.t =
  tick ctx;
  match e with
  | Ast.Var x ->
    (match Env.find_opt x env with
     | Some v -> v
     | None -> error "unbound variable $%s" x)
  | Ast.Doc tag ->
    (match ctx.input with
     | Xml.Node.Element e when String.equal e.tag tag -> Value.of_node ctx.input
     | Xml.Node.Element e ->
       error "input document root is <%s>, query expects <%s>" e.tag tag
     | Xml.Node.Text _ -> error "input document root is a text node")
  | Ast.Literal a -> Value.of_atom a
  | Ast.Path (base, steps) -> apply_steps ctx (eval ctx env base) steps
  | Ast.Seq es -> List.concat_map (eval ctx env) es
  | Ast.Elem { tag; attrs; content } ->
    let attrs =
      List.filter_map
        (fun (name, e) ->
          match Value.atomize (eval ctx env e) with
          | [] -> None
          | [ a ] -> Some (name, a)
          | many ->
            Some
              ( name,
                Xml.Atom.String
                  (String.concat " " (List.map Xml.Atom.to_string many)) ))
        attrs
    in
    let children =
      List.concat_map
        (fun e ->
          List.map
            (function
              | Value.Node n -> n
              | Value.Atomic a -> Xml.Node.text a)
            (eval ctx env e))
        content
    in
    Value.of_node (Xml.Node.elem ~attrs tag children)
  | Ast.Flwor f -> eval_flwor ctx env f.clauses f.where f.return
  | Ast.If (c, t, e) ->
    if ebool (eval ctx env c) then eval ctx env t
    else eval ctx env e
  | Ast.Cmp (op, l, r) ->
    let ls = Value.atomize (eval ctx env l) in
    let rs = Value.atomize (eval ctx env r) in
    let holds = List.exists (fun a -> List.exists (compare_atoms op a) rs) ls in
    Value.of_atom (Xml.Atom.Bool holds)
  | Ast.And (l, r) ->
    Value.of_atom
      (Xml.Atom.Bool
         (ebool (eval ctx env l)
          && ebool (eval ctx env r)))
  | Ast.Or (l, r) ->
    Value.of_atom
      (Xml.Atom.Bool
         (ebool (eval ctx env l)
          || ebool (eval ctx env r)))
  | Ast.Arith (op, l, r) ->
    let one side e =
      match Value.atomize (eval ctx env e) with
      | [ a ] -> a
      | [] -> error "arithmetic on the empty sequence (%s operand)" side
      | _ -> error "arithmetic on a multi-item sequence (%s operand)" side
    in
    let a = one "left" l and b = one "right" r in
    let result =
      match op, a, b with
      | Ast.Add, Xml.Atom.Int x, Xml.Atom.Int y -> Xml.Atom.Int (x + y)
      | Ast.Sub, Xml.Atom.Int x, Xml.Atom.Int y -> Xml.Atom.Int (x - y)
      | Ast.Mul, Xml.Atom.Int x, Xml.Atom.Int y -> Xml.Atom.Int (x * y)
      | op, a, b ->
        let x = numeric "arithmetic" a and y = numeric "arithmetic" b in
        (match op with
         | Ast.Add -> Xml.Atom.Float (x +. y)
         | Ast.Sub -> Xml.Atom.Float (x -. y)
         | Ast.Mul -> Xml.Atom.Float (x *. y)
         | Ast.Div ->
           if y = 0. then error "division by zero" else Xml.Atom.Float (x /. y))
    in
    Value.of_atom result
  | Ast.Call (name, args) -> eval_call ctx env name args

and eval_flwor ctx env clauses where return =
  match ctx.plan with
  | `Naive -> eval_flwor_naive ctx env clauses where return
  | `Indexed | `Auto -> eval_flwor_planned ctx env clauses where return

(* The original clause-by-clause recursion, kept as the
   differential-testing oracle for the plan-based path below. *)
and eval_flwor_naive ctx env clauses where return =
  match clauses with
  | [] ->
    let keep =
      match where with
      | None -> true
      | Some w -> ebool (eval ctx env w)
    in
    if keep then eval ctx env return else Value.empty
  | Ast.Let (x, e) :: rest ->
    let v = eval ctx env e in
    eval_flwor_naive ctx (Env.add x v env) rest where return
  | Ast.For (x, e) :: rest ->
    let v = eval ctx env e in
    List.concat_map
      (fun item -> eval_flwor_naive ctx (Env.add x [ item ] env) rest where return)
      v

(* Plan-based FLWOR evaluation: the clause chain becomes a generator
   chain ([for] enumerates the items of its sequence, [let] a single
   whole-sequence item), the [where] splits into conjuncts pushed to
   their earliest position ([ebool (And (a, b)) = ebool a && ebool b],
   so the split is exact), and equality conjuncts become hash joins.
   Bindings stream into the [return] in the naive enumeration order. *)
(* Compile one FLWOR block to a physical plan: the clause chain
   becomes a generator chain ([for] enumerates the items of its
   sequence, [let] a single whole-sequence item), the [where] splits
   into conjuncts pushed to their earliest position and equality
   conjuncts become hash-join candidates. Purely static — the
   closures capture [ctx] but nothing is evaluated here — which is
   what lets [explain] below reuse it without running the query. *)
and flwor_plan ctx ~policy ~bound clauses where =
  let cost = match policy with `Cost -> true | `Force -> false in
  let gens_rev, _ =
    List.fold_left
      (fun (acc, vt) (clause : Ast.clause) ->
        match clause with
        | Ast.For (x, e) ->
          let est, tag =
            if cost then est_flwor_expr ctx vt e else (None, None)
          in
          let gen =
            {
              Clip_plan.var = x;
              deps = Ast.free_vars e;
              est;
              eval = (fun env -> List.map (fun it -> [ it ]) (eval ctx env e));
              bind = (fun env v -> Env.add x v env);
            }
          in
          (* The for-variable itself ranges over single items. *)
          (gen :: acc, (x, (Some 1, tag)) :: vt)
        | Ast.Let (x, e) ->
          let seq_est =
            if cost then est_flwor_expr ctx vt e else (None, None)
          in
          let gen =
            {
              Clip_plan.var = x;
              deps = Ast.free_vars e;
              est = Some 1 (* binds the whole sequence as one item *);
              eval = (fun env -> [ eval ctx env e ]);
              bind = (fun env v -> Env.add x v env);
            }
          in
          (gen :: acc, (x, seq_est) :: vt))
      ([], []) clauses
  in
  let rec conjuncts = function
    | Ast.And (a, b) -> conjuncts a @ conjuncts b
    | w -> [ w ]
  in
  let cond_of w =
    let orig =
      { Clip_plan.pvars = Ast.free_vars w; test = (fun env -> ebool (eval ctx env w)) }
    in
    match w with
    | Ast.Cmp (Ast.Eq, l, r) ->
      let keyed e =
        {
          Clip_plan.kvars = Ast.free_vars e;
          keys =
            (fun env ->
              List.map Clip_plan.Key.of_atom (Value.atomize (eval ctx env e)));
        }
      in
      Clip_plan.Eq { left = keyed l; right = keyed r; orig }
    | _ -> Clip_plan.Other orig
  in
  let conds =
    match where with None -> [] | Some w -> List.map cond_of (conjuncts w)
  in
  Clip_plan.plan ~policy ~bound ~gens:(List.rev gens_rev) ~conds ()

and eval_flwor_planned ctx env clauses where return =
  let policy =
    match ctx.plan with `Auto -> `Cost | `Naive | `Indexed -> `Force
  in
  let cost = match policy with `Cost -> true | `Force -> false in
  (* [Env.fold] lists keys in increasing order, so [bound] is
     deterministic for a given environment domain and usable as part
     of the memo key. *)
  let bound = Env.fold (fun x _ acc -> x :: acc) env [] in
  let p =
    let rec find = function
      | [] -> None
      | (cs, b, c, p) :: rest ->
        if cs == clauses && c = cost && List.equal String.equal b bound then Some p
        else find rest
    in
    match find !(ctx.plans) with
    | Some p ->
      Clip_obs.memo_hit ctx.obs;
      p
    | None ->
      let p = flwor_plan ctx ~policy ~bound clauses where in
      ctx.plans := (clauses, bound, cost, p) :: !(ctx.plans);
      p
  in
  (* Adaptive indexing: FLWOR plans materialise lazily during
     evaluation, so [`Auto] turns the tag index on the moment a
     revisit-prone plan shows up over a large-enough document (the
     index's memoised groupings stay sound mid-run — nodes are
     immutable). Straight-line queries never pay for it. On the
     columnar path the same switch upgrades the view to the id-vector
     index instead of building the boxed one. *)
  (match ctx.plan, ctx.index, ctx.cview with
   | `Auto, None, Cnone ->
     if
       Clip_plan.revisit_prone p
       && Xml.Stats.node_count (force_stats ctx) >= index_threshold
     then ctx.index <- Some (force_index ctx)
   | `Auto, _, Cnaive d ->
     if
       Clip_plan.revisit_prone p
       && Xml.Stats.node_count (force_stats ctx) >= index_threshold
     then ctx.cview <- Cindexed d
   | _ -> ());
  let acc = ref [] in
  (* Batch only where batching pays: on this backend that is the
     scan-only plans (pure navigation sweeps, where the frontier sweep
     amortises per-stage dispatch). Plans with hash probes keep the
     depth-first executor — re-walking the materialised frontier costs
     them more than the sweep saves (see also {!Clip_plan.batchable}). *)
  let exec =
    match ctx.cview with
    | Cnone -> Clip_plan.execute
    | Cnaive _ | Cindexed _ ->
      if Clip_plan.scan_only p then Clip_plan.execute_batch
      else Clip_plan.execute
  in
  exec ?obs:ctx.obs p
    ~tick:(fun () -> tick ctx)
    ~env
    ~emit:(fun env -> acc := eval ctx env return :: !acc);
  List.concat (List.rev !acc)

and eval_call ctx env name args =
  let arg i =
    match List.nth_opt args i with
    | Some e -> eval ctx env e
    | None -> error "%s: missing argument %d" name (i + 1)
  in
  let arity n =
    if List.length args <> n then
      error "%s: expected %d argument(s), got %d" name n (List.length args)
  in
  match name with
  | "count" ->
    arity 1;
    Value.of_atom (Xml.Atom.Int (List.length (arg 0)))
  | "sum" | "avg" | "min" | "max" ->
    arity 1;
    let xs = List.map (numeric name) (Value.atomize (arg 0)) in
    (match xs, name with
     | [], "sum" -> Value.of_atom (Xml.Atom.Int 0)
     | [], _ -> Value.empty
     | xs, "sum" -> Value.of_atom (Xml.Atom.Float (List.fold_left ( +. ) 0. xs))
     | xs, "avg" ->
       Value.of_atom
         (Xml.Atom.Float (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)))
     | x :: xs, "min" -> Value.of_atom (Xml.Atom.Float (List.fold_left min x xs))
     | x :: xs, _ -> Value.of_atom (Xml.Atom.Float (List.fold_left max x xs)))
  | "distinct-values" ->
    arity 1;
    (* The seen-set is keyed by normalised atoms ({!Clip_plan.Key}
       agrees with [Xml.Atom.equal]), so dedup is O(n) instead of the
       former O(n²) list scan. First occurrences are kept, in order. *)
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun a ->
        let k = Clip_plan.Key.of_atom a in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (Value.Atomic a)
        end)
      (Value.atomize (arg 0))
  | "concat" ->
    let parts =
      List.map
        (fun e ->
          String.concat "" (List.map Xml.Atom.to_string (Value.atomize (eval ctx env e))))
        args
    in
    Value.of_atom (Xml.Atom.String (String.concat "" parts))
  | "string" ->
    arity 1;
    (match arg 0 with
     | [] -> Value.of_atom (Xml.Atom.String "")
     | [ item ] -> Value.of_atom (Xml.Atom.String (Value.string_value item))
     | _ -> error "string: a sequence of more than one item")
  | "number" ->
    arity 1;
    (match Value.atomize (arg 0) with
     | [ a ] ->
       (* Unlike arithmetic, number() also parses numeric strings. *)
       let a =
         match a with Xml.Atom.String s -> Xml.Atom.of_string s | a -> a
       in
       Value.of_atom (Xml.Atom.Float (numeric "number" a))
     | _ -> error "number: expected exactly one item")
  | "empty" ->
    arity 1;
    Value.of_atom (Xml.Atom.Bool (arg 0 = []))
  | "exists" ->
    arity 1;
    Value.of_atom (Xml.Atom.Bool (arg 0 <> []))
  | "not" ->
    arity 1;
    Value.of_atom (Xml.Atom.Bool (not (ebool (arg 0))))
  | name -> error "unknown function %s#%d" name (List.length args)

let make_ctx input =
  {
    input;
    index = None;
    xindex = None;
    stats = None;
    cview = Cnone;
    xdoc = None;
    plan = `Auto;
    plans = ref [];
    steps = ref 0;
    max_steps = max_int;
    obs = Clip_obs.none;
    ctl = Clip_run.Control.none;
    sbuf_a = Xml.Index.idbuf_make ();
    sbuf_b = Xml.Index.idbuf_make ();
  }

(* A session pins one input document and keeps its per-document
   artifacts — memoised tag index, instance statistics, FLWOR plan memo —
   alive across runs. Ignored (a fresh context is made) when handed a
   different document. *)
type session = { sctx : ctx }

module Session = struct
  type t = session

  let create input = { sctx = make_ctx input }
  let input s = s.sctx.input
end

(* Static plan rendering for every FLWOR block of a query, numbered in
   preorder. Mirrors the dispatch of [with_ctx]/[eval_flwor] — same
   thresholds, same policies, same planner — but never evaluates, so
   the output is deterministic (golden-testable). *)
let explain ?(plan = `Auto) ?session ~input (expr : Ast.expr) : string =
  let ctx =
    match session with
    | Some s when s.sctx.input == input -> s.sctx
    | _ -> make_ctx input
  in
  let b = Buffer.create 512 in
  let nodes = Xml.Stats.node_count (force_stats ctx) in
  Printf.bprintf b "backend: xquery\nplan: %s\ndocument: %d nodes\n"
    (match plan with `Naive -> "naive" | `Indexed -> "indexed" | `Auto -> "auto")
    nodes;
  let resolved =
    match plan with
    | `Auto when nodes < naive_threshold -> `Naive
    | p -> p
  in
  (match plan, resolved with
   | `Auto, `Naive ->
     Printf.bprintf b
       "strategy: direct interpreter (%d nodes, below the %d-node planning threshold)\n"
       nodes naive_threshold
   | _, `Naive ->
     Buffer.add_string b "strategy: naive interpreter (forced)\n"
   | _, `Indexed ->
     Buffer.add_string b
       "strategy: physical plans, forced hash joins, tag index on\n"
   | _, `Auto ->
     Printf.bprintf b
       "strategy: physical plans, cost-based joins; tag index adaptive (on at the first revisit-prone plan over >= %d nodes)\n"
       index_threshold);
  (match resolved with
   | `Naive ->
     Buffer.add_string b
       "every FLWOR block: clause-by-clause recursion, conditions checked innermost\n"
   | (`Indexed | `Auto) as r ->
     let policy = match r with `Auto -> `Cost | `Indexed -> `Force in
     let counter = ref 0 in
     let rec walk bound (e : Ast.expr) =
       match e with
       | Ast.Var _ | Ast.Doc _ | Ast.Literal _ -> ()
       | Ast.Path (base, _) -> walk bound base
       | Ast.Seq es -> List.iter (walk bound) es
       | Ast.Elem { attrs; content; _ } ->
         List.iter (fun (_, e) -> walk bound e) attrs;
         List.iter (walk bound) content
       | Ast.If (c, t, e) ->
         walk bound c;
         walk bound t;
         walk bound e
       | Ast.Cmp (_, l, r) | Ast.And (l, r) | Ast.Or (l, r) | Ast.Arith (_, l, r) ->
         walk bound l;
         walk bound r
       | Ast.Call (_, args) -> List.iter (walk bound) args
       | Ast.Flwor { clauses; where; return } ->
         incr counter;
         let header =
           String.concat ", "
             (List.map
                (function
                  | Ast.For (x, e) ->
                    Printf.sprintf "for $%s in %s" x (Pretty.expr_to_string e)
                  | Ast.Let (x, e) ->
                    Printf.sprintf "let $%s := %s" x (Pretty.expr_to_string e))
                clauses)
         in
         Printf.bprintf b "flwor #%d: %s%s\n" !counter header
           (match where with
            | None -> ""
            | Some w -> " where " ^ Pretty.expr_to_string w);
         let p = flwor_plan ctx ~policy ~bound clauses where in
         Printf.bprintf b "  plan: %s\n" (Clip_plan.describe p);
         Buffer.add_string b (Clip_plan.explain p);
         let bound' =
           List.fold_left
             (fun bd clause ->
               match (clause : Ast.clause) with
               | Ast.For (x, e) | Ast.Let (x, e) ->
                 walk bd e;
                 x :: bd)
             bound clauses
         in
         (match where with Some w -> walk bound' w | None -> ());
         walk bound' return
     in
     walk [] expr);
  Buffer.contents b

(* Documents smaller than this don't repay the one-off columnar
   conversion under [`Auto] representation; the boxed tree runs. *)
let columnar_threshold = 256

let with_ctx ?(ctl = Clip_run.Control.none) ?session ?obs
    ?(repr = (`Tree : Xml.Doc.repr)) plan limits steps_out input f =
  let ctx =
    match session with
    | Some s when s.sctx.input == input -> s.sctx
    | _ -> make_ctx input
  in
  ctx.obs <- obs;
  ctx.ctl <- ctl;
  (* Tiny documents don't repay planning: run [`Auto] as [`Naive]. *)
  let plan =
    match plan with
    | `Auto when Xml.Stats.node_count (force_stats ctx) < naive_threshold
      -> `Naive
    | p -> p
  in
  ctx.plan <- plan;
  let columnar =
    match repr with
    | `Tree -> false
    | `Columnar -> true
    | `Auto -> Xml.Stats.node_count (force_stats ctx) >= columnar_threshold
  in
  (* Under columnar the boxed tag index is never built: child steps go
     through the id-vector index (or the array-sweep scan). *)
  ctx.cview <-
    (if not columnar then Cnone
     else
       let didx = snd (force_doc ctx) in
       match plan with
       | `Indexed -> Cindexed didx
       | `Naive | `Auto -> Cnaive didx (* [`Auto] upgrades adaptively *));
  ctx.index <-
    (match plan with
     | `Indexed when not columnar -> Some (force_index ctx)
     | _ -> None (* [`Auto] switches it on adaptively *));
  ctx.steps := 0;
  ctx.max_steps <- limits.Clip_diag.Limits.max_eval_steps;
  let record_steps () =
    match steps_out with Some r -> r := !(ctx.steps) | None -> ()
  in
  Fun.protect ~finally:record_steps (fun () ->
      (* One unconditional control poll before any work makes an
         already-lapsed deadline or a pre-set cancel flag deterministic
         regardless of the 64-step amortisation. *)
      if not (Clip_run.Control.is_none ctx.ctl) then check_control ctx;
      Clip_fault.hit ~obs:ctx.obs Clip_fault.Site.xquery_execute;
      f ctx)

let run_result ?(limits = Clip_diag.Limits.default) ?(plan = `Auto) ?repr ?ctl
    ?session ?steps_out ?obs ~input expr =
  Clip_diag.guard (fun () ->
    with_ctx ?ctl ?session ?obs ?repr plan limits steps_out input (fun ctx ->
        eval ctx Env.empty expr))

let reraise_legacy ds =
  let d = match ds with d :: _ -> d | [] -> assert false in
  raise (Error d.Clip_diag.message)

let run ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~input expr =
  match
    run_result ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~input expr
  with
  | Ok v -> v
  | Error ds -> reraise_legacy ds

let run_document_result ?(limits = Clip_diag.Limits.default) ?(plan = `Auto)
    ?repr ?ctl ?session ?steps_out ?obs ~input expr =
  Clip_diag.guard (fun () ->
    with_ctx ?ctl ?session ?obs ?repr plan limits steps_out input (fun ctx ->
      match eval ctx Env.empty expr with
      | [ Value.Node (Xml.Node.Element _ as n) ] -> n
      | v ->
        error "query result is not a single element: %s"
          (Format.asprintf "%a" Value.pp v)))

let run_document ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~input expr =
  match
    run_document_result ?limits ?plan ?repr ?ctl ?session ?steps_out ?obs ~input
      expr
  with
  | Ok n -> n
  | Error ds -> reraise_legacy ds
