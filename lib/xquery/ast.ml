type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type arith_op = Add | Sub | Mul | Div

type step =
  | Child_step of string
  | Attr_step of string
  | Text_step

type expr =
  | Var of string
  | Doc of string
  | Literal of Clip_xml.Atom.t
  | Path of expr * step list
  | Seq of expr list
  | Elem of elem
  | Flwor of flwor
  | If of expr * expr * expr
  | Cmp of cmp_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Arith of arith_op * expr * expr
  | Call of string * expr list

and elem = {
  tag : string;
  attrs : (string * expr) list;
  content : expr list;
}

and flwor = {
  clauses : clause list;
  where : expr option;
  return : expr;
}

and clause =
  | For of string * expr
  | Let of string * expr

let var x = Var x

let path e steps =
  match e with
  | Path (b, s) -> Path (b, s @ steps)
  | e -> Path (e, steps)

let flwor ?where clauses return = Flwor { clauses; where; return }

module Vars = Set.Make (String)

let free_vars e =
  let rec go bound acc e =
    match e with
    | Var x -> if Vars.mem x bound then acc else Vars.add x acc
    | Doc _ | Literal _ -> acc
    | Path (b, _) -> go bound acc b
    | Seq es -> List.fold_left (go bound) acc es
    | Elem { tag = _; attrs; content } ->
      let acc = List.fold_left (fun acc (_, e) -> go bound acc e) acc attrs in
      List.fold_left (go bound) acc content
    | Flwor { clauses; where; return } ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) clause ->
            match clause with
            | For (x, e) | Let (x, e) ->
              let acc = go bound acc e in
              (Vars.add x bound, acc))
          (bound, acc) clauses
      in
      let acc = match where with None -> acc | Some w -> go bound acc w in
      go bound acc return
    | If (c, t, e) -> go bound (go bound (go bound acc c) t) e
    | Cmp (_, l, r) | And (l, r) | Or (l, r) | Arith (_, l, r) ->
      go bound (go bound acc l) r
    | Call (_, args) -> List.fold_left (go bound) acc args
  in
  Vars.elements (go Vars.empty Vars.empty e)
let elem ?(attrs = []) tag content = Elem { tag; attrs; content }
let call name args = Call (name, args)
let str s = Literal (Clip_xml.Atom.String s)
let int i = Literal (Clip_xml.Atom.Int i)
