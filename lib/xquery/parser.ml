exception Parse_error of { position : int; message : string }

let error_to_string = function
  | Parse_error { position; message } ->
    Printf.sprintf "XQuery parse error at offset %d: %s" position message
  | e -> Printexc.to_string e

type state = { src : string; mutable pos : int; mutable depth : int; max_depth : int }

let error_code code st fmt =
  Printf.ksprintf
    (fun message ->
      Clip_diag.fail
        (Clip_diag.error ~code ~span:(Clip_diag.span_of_offset st.src st.pos) message))
    fmt

let error st fmt = error_code Clip_diag.Codes.xquery_syntax st fmt

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    error_code Clip_diag.Codes.limit_recursion st
      "expression nesting exceeds the limit of %d" st.max_depth

let leave st = st.depth <- st.depth - 1

let eof st = st.pos >= String.length st.src
let peek_at st k = if st.pos + k >= String.length st.src then '\000' else st.src.[st.pos + k]
let peek st = peek_at st 0

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_ws st =
  while (not (eof st)) && is_space (peek st) do
    st.pos <- st.pos + 1
  done;
  (* XQuery comments: (: ... :) *)
  if peek st = '(' && peek_at st 1 = ':' then begin
    st.pos <- st.pos + 2;
    let rec close depth =
      if eof st then error st "unterminated comment"
      else if peek st = ':' && peek_at st 1 = ')' then begin
        st.pos <- st.pos + 2;
        if depth > 0 then close (depth - 1)
      end
      else if peek st = '(' && peek_at st 1 = ':' then begin
        st.pos <- st.pos + 2;
        close (depth + 1)
      end
      else begin
        st.pos <- st.pos + 1;
        close depth
      end
    in
    close 0;
    skip_ws st
  end

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '.'

(* A dash belongs to the name when glued between name characters. *)
let read_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  let continue = ref true in
  while !continue && not (eof st) do
    let c = peek st in
    if is_name_char c then st.pos <- st.pos + 1
    else if c = '-' && is_name_char (peek_at st 1) then st.pos <- st.pos + 1
    else continue := false
  done;
  String.sub st.src start (st.pos - start)

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

(* A keyword must not be a prefix of a longer name. *)
let looking_at_kw st kw =
  looking_at st kw
  &&
  let k = st.pos + String.length kw in
  k >= String.length st.src
  || not (is_name_char st.src.[k] || st.src.[k] = '-')

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st "expected %S" s

let eat_kw st kw =
  if looking_at_kw st kw then st.pos <- st.pos + String.length kw
  else error st "expected keyword %S" kw

let read_string_literal st =
  let quote = peek st in
  st.pos <- st.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated string literal"
    else if peek st = quote then
      if peek_at st 1 = quote then begin
        (* doubled quote escape *)
        Buffer.add_char buf quote;
        st.pos <- st.pos + 2;
        go ()
      end
      else st.pos <- st.pos + 1
    else begin
      Buffer.add_char buf (peek st);
      st.pos <- st.pos + 1;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let read_number st =
  let start = st.pos in
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do
    st.pos <- st.pos + 1
  done;
  if peek st = '.' && peek_at st 1 >= '0' && peek_at st 1 <= '9' then begin
    st.pos <- st.pos + 1;
    while (not (eof st)) && peek st >= '0' && peek st <= '9' do
      st.pos <- st.pos + 1
    done;
    Clip_xml.Atom.Float (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else begin
    let digits = String.sub st.src start (st.pos - start) in
    match int_of_string_opt digits with
    | Some n -> Clip_xml.Atom.Int n
    | None -> error st "integer literal out of range: %s" digits
  end

(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr =
  enter st;
  let e = parse_expr_guarded st in
  leave st;
  e

and parse_expr_guarded st : Ast.expr =
  skip_ws st;
  if looking_at_kw st "for" || looking_at_kw st "let" then parse_flwor st
  else if looking_at_kw st "if" then parse_if st
  else parse_or st

and parse_flwor st =
  let clauses = ref [] in
  let rec clause_loop () =
    skip_ws st;
    if looking_at_kw st "for" then begin
      eat_kw st "for";
      let rec vars () =
        skip_ws st;
        eat st "$";
        let name = read_name st in
        skip_ws st;
        eat_kw st "in";
        let e = parse_expr st in
        clauses := Ast.For (name, e) :: !clauses;
        skip_ws st;
        if peek st = ',' then begin
          st.pos <- st.pos + 1;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    end
    else if looking_at_kw st "let" then begin
      eat_kw st "let";
      let rec vars () =
        skip_ws st;
        eat st "$";
        let name = read_name st in
        skip_ws st;
        eat st ":=";
        let e = parse_expr st in
        clauses := Ast.Let (name, e) :: !clauses;
        skip_ws st;
        if peek st = ',' then begin
          st.pos <- st.pos + 1;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    end
  in
  clause_loop ();
  skip_ws st;
  let where =
    if looking_at_kw st "where" then begin
      eat_kw st "where";
      Some (parse_expr st)
    end
    else None
  in
  skip_ws st;
  eat_kw st "return";
  let return = parse_expr st in
  Ast.Flwor { clauses = List.rev !clauses; where; return }

and parse_if st =
  eat_kw st "if";
  skip_ws st;
  eat st "(";
  let c = parse_expr st in
  skip_ws st;
  eat st ")";
  skip_ws st;
  eat_kw st "then";
  let t = parse_expr st in
  skip_ws st;
  eat_kw st "else";
  let e = parse_expr st in
  Ast.If (c, t, e)

and parse_or st =
  let left = parse_and st in
  skip_ws st;
  if looking_at_kw st "or" then begin
    eat_kw st "or";
    Ast.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_cmp st in
  skip_ws st;
  if looking_at_kw st "and" then begin
    eat_kw st "and";
    Ast.And (left, parse_and st)
  end
  else left

and parse_cmp st =
  let left = parse_add st in
  skip_ws st;
  let op =
    if looking_at st "!=" then Some Ast.Ne
    else if looking_at st "<=" then Some Ast.Le
    else if looking_at st ">=" then Some Ast.Ge
    else if looking_at st "=" then Some Ast.Eq
    (* a bare [<] here is a comparison: constructors only open at
       expression-start positions, which parse_primary handles *)
    else if looking_at st "<" then Some Ast.Lt
    else if looking_at st ">" then Some Ast.Gt
    else None
  in
  match op with
  | None -> left
  | Some op ->
    (match op with
     | Ast.Ne | Ast.Le | Ast.Ge -> st.pos <- st.pos + 2
     | Ast.Eq | Ast.Lt | Ast.Gt -> st.pos <- st.pos + 1);
    Ast.Cmp (op, left, parse_add st)

and parse_add st =
  let left = parse_mul st in
  skip_ws st;
  if looking_at st "+" then begin
    st.pos <- st.pos + 1;
    Ast.Arith (Ast.Add, left, parse_add st)
  end
  else if looking_at st "- " then begin
    st.pos <- st.pos + 1;
    Ast.Arith (Ast.Sub, left, parse_add st)
  end
  else left

and parse_mul st =
  let left = parse_path st in
  skip_ws st;
  if looking_at st "* " then begin
    st.pos <- st.pos + 1;
    Ast.Arith (Ast.Mul, left, parse_mul st)
  end
  else if looking_at_kw st "div" then begin
    eat_kw st "div";
    Ast.Arith (Ast.Div, left, parse_mul st)
  end
  else left

and parse_path st =
  let base = parse_primary st in
  let steps = ref [] in
  let rec go () =
    if peek st = '/' && peek_at st 1 <> '/' then begin
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = '@' then begin
        st.pos <- st.pos + 1;
        steps := Ast.Attr_step (read_name st) :: !steps
      end
      else begin
        let name = read_name st in
        if String.equal name "text" then begin
          skip_ws st;
          eat st "()";
          steps := Ast.Text_step :: !steps
        end
        else steps := Ast.Child_step name :: !steps
      end;
      go ()
    end
  in
  go ();
  if !steps = [] then base else Ast.path base (List.rev !steps)

and parse_primary st =
  skip_ws st;
  let c = peek st in
  if c = '$' then begin
    st.pos <- st.pos + 1;
    Ast.Var (read_name st)
  end
  else if c = '"' || c = '\'' then Ast.Literal (Clip_xml.Atom.String (read_string_literal st))
  else if c >= '0' && c <= '9' then Ast.Literal (read_number st)
  else if c = '(' then begin
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = ')' then begin
      st.pos <- st.pos + 1;
      Ast.Seq []
    end
    else begin
      let first = parse_expr st in
      let items = ref [ first ] in
      skip_ws st;
      while peek st = ',' do
        st.pos <- st.pos + 1;
        items := parse_expr st :: !items;
        skip_ws st
      done;
      eat st ")";
      match !items with [ only ] -> only | items -> Ast.Seq (List.rev items)
    end
  end
  else if c = '<' && is_name_start (peek_at st 1) then parse_constructor st
  else if is_name_start c then begin
    let save = st.pos in
    let name = read_name st in
    skip_ws st;
    if peek st = '(' then begin
      (* function call *)
      st.pos <- st.pos + 1;
      skip_ws st;
      let args = ref [] in
      if peek st <> ')' then begin
        args := [ parse_expr st ];
        skip_ws st;
        while peek st = ',' do
          st.pos <- st.pos + 1;
          args := parse_expr st :: !args;
          skip_ws st
        done
      end;
      eat st ")";
      (match name with
       | "true" when !args = [] -> Ast.Literal (Clip_xml.Atom.Bool true)
       | "false" when !args = [] -> Ast.Literal (Clip_xml.Atom.Bool false)
       | name -> Ast.Call (name, List.rev !args))
    end
    else begin
      (* a bare name: the input document root *)
      st.pos <- save + String.length name;
      Ast.Doc name
    end
  end
  else error st "unexpected character %C" c

(* Direct element constructors, accepting both [attr={expr}] (the
   paper's notation) and [attr="literal"] / [attr="{expr}"]. *)
and parse_constructor st =
  enter st;
  let e = parse_constructor_guarded st in
  leave st;
  e

and parse_constructor_guarded st =
  eat st "<";
  let tag = read_name st in
  let attrs = ref [] in
  let rec attr_loop () =
    skip_ws st;
    if is_name_start (peek st) then begin
      let name = read_name st in
      skip_ws st;
      eat st "=";
      skip_ws st;
      let value =
        if peek st = '{' then begin
          st.pos <- st.pos + 1;
          let e = parse_expr st in
          skip_ws st;
          eat st "}";
          e
        end
        else if peek st = '"' || peek st = '\'' then begin
          let quote = peek st in
          (* peek inside: a braced template or a literal *)
          let save = st.pos in
          st.pos <- st.pos + 1;
          skip_ws st;
          if peek st = '{' then begin
            st.pos <- st.pos + 1;
            let e = parse_expr st in
            skip_ws st;
            eat st "}";
            skip_ws st;
            if peek st <> quote then error st "expected closing quote";
            st.pos <- st.pos + 1;
            e
          end
          else begin
            st.pos <- save;
            Ast.Literal (Clip_xml.Atom.of_string (read_string_literal st))
          end
        end
        else error st "expected an attribute value"
      in
      attrs := (name, value) :: !attrs;
      attr_loop ()
    end
  in
  attr_loop ();
  skip_ws st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Ast.Elem { tag; attrs = List.rev !attrs; content = [] }
  end
  else begin
    eat st ">";
    let content = ref [] in
    let buf = Buffer.create 16 in
    let flush_text () =
      let s = String.trim (Buffer.contents buf) in
      Buffer.clear buf;
      if s <> "" then content := Ast.Literal (Clip_xml.Atom.of_string s) :: !content
    in
    let rec content_loop () =
      if eof st then error st "unterminated element <%s>" tag
      else if looking_at st "</" then begin
        flush_text ();
        st.pos <- st.pos + 2;
        let closing = read_name st in
        skip_ws st;
        eat st ">";
        if not (String.equal closing tag) then
          error st "mismatched constructor: <%s> closed by </%s>" tag closing
      end
      else if peek st = '{' then begin
        flush_text ();
        st.pos <- st.pos + 1;
        let e = parse_expr st in
        skip_ws st;
        eat st "}";
        content := e :: !content;
        content_loop ()
      end
      else if peek st = '<' then begin
        flush_text ();
        content := parse_constructor st :: !content;
        content_loop ()
      end
      else begin
        Buffer.add_char buf (peek st);
        st.pos <- st.pos + 1;
        content_loop ()
      end
    in
    content_loop ();
    Ast.Elem { tag; attrs = List.rev !attrs; content = List.rev !content }
  end

let parse_string_result ?(limits = Clip_diag.Limits.default) s =
  Clip_diag.guard (fun () ->
    let st =
      { src = s;
        pos = 0;
        depth = 0;
        max_depth = limits.Clip_diag.Limits.max_parser_recursion }
    in
    if String.length s > limits.Clip_diag.Limits.max_input_bytes then
      error_code Clip_diag.Codes.limit_input_bytes st
        "input is %d bytes, which exceeds the limit of %d bytes"
        (String.length s) limits.Clip_diag.Limits.max_input_bytes;
    let e = parse_expr st in
    skip_ws st;
    if not (eof st) then error st "trailing input after the expression";
    e)

let parse_string ?limits s =
  match parse_string_result ?limits s with
  | Ok e -> e
  | Error ds ->
    let d = match ds with d :: _ -> d | [] -> assert false in
    let position =
      match d.Clip_diag.span with Some sp -> sp.Clip_diag.offset | None -> 0
    in
    raise (Parse_error { position; message = d.Clip_diag.message })

let parse_string_opt ?limits s =
  match parse_string_result ?limits s with Ok e -> Some e | Error _ -> None
