(** A parser for the XQuery fragment {!Pretty} emits (and the paper
    prints): FLWOR expressions, paths, direct element constructors,
    comparisons, boolean connectives, arithmetic and function calls.

    The concrete syntax follows the paper's listings: computed
    attribute values may be written with bare braces
    ([<department name={$d/dname/text()}/>], as in Sec. VI) as well as
    the standard quoted form ([name="{...}"]). Names may contain
    dashes ([avg-sal], [distinct-values]); a dash is part of a name
    when glued to it, so [a - b] is still a subtraction (the printer
    always spaces binary operators).

    [parse_string (Pretty.query_to_string q)] evaluates like [q] for
    every query the generator emits — the test suite checks this
    round-trip on all scenarios. *)

exception Parse_error of { position : int; message : string }

(** [parse_string_result s] parses one expression, or reports spanned
    diagnostics: [CLIP-XQ-001] for syntax errors, [CLIP-LIM-001] for
    oversized inputs and [CLIP-LIM-003] when expression nesting
    exceeds [limits.max_parser_recursion]. Never raises on any
    input. *)
val parse_string_result :
  ?limits:Clip_diag.Limits.t -> string -> (Ast.expr, Clip_diag.t list) result

(** [parse_string s] parses one expression.
    @raise Parse_error on malformed input (thin wrapper over
    {!parse_string_result}). *)
val parse_string : ?limits:Clip_diag.Limits.t -> string -> Ast.expr

val parse_string_opt : ?limits:Clip_diag.Limits.t -> string -> Ast.expr option

val error_to_string : exn -> string
