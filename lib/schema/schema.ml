type attribute = {
  attr_name : string;
  attr_type : Atomic_type.t;
  attr_required : bool;
}

type element = {
  name : string;
  card : Cardinality.t;
  attrs : attribute list;
  value : Atomic_type.t option;
  children : element list;
}

type reference = { ref_from : Path.t; ref_to : Path.t }

type t = { root : element; refs : reference list }

let attribute ?(required = true) attr_name attr_type =
  { attr_name; attr_type; attr_required = required }

let element ?(card = Cardinality.required) ?(attrs = []) ?value name children =
  { name; card; attrs; value; children }

let rec check_element path e =
  let dup names kind =
    let sorted = List.sort String.compare names in
    let rec first_dup = function
      | a :: (b :: _ as rest) ->
        if String.equal a b then Some a else first_dup rest
      | [ _ ] | [] -> None
    in
    match first_dup sorted with
    | Some n ->
      invalid_arg
        (Printf.sprintf "Schema.make: duplicate %s %S under %s" kind n path)
    | None -> ()
  in
  dup (List.map (fun a -> a.attr_name) e.attrs) "attribute";
  dup (List.map (fun c -> c.name) e.children) "child element";
  List.iter (fun c -> check_element (path ^ "." ^ c.name) c) e.children

(* Resolution --------------------------------------------------------- *)

type node_ref =
  | Element_ref of element
  | Attr_ref of element * attribute
  | Value_ref of element * Atomic_type.t

let find t (p : Path.t) =
  if not (String.equal p.root t.root.name) then None
  else
    let rec go e = function
      | [] -> Some (Element_ref e)
      | Path.Child n :: rest ->
        (match List.find_opt (fun c -> String.equal c.name n) e.children with
         | Some c -> go c rest
         | None -> None)
      | [ Path.Attr n ] ->
        (match List.find_opt (fun a -> String.equal a.attr_name n) e.attrs with
         | Some a -> Some (Attr_ref (e, a))
         | None -> None)
      | [ Path.Value ] ->
        (match e.value with
         | Some ty -> Some (Value_ref (e, ty))
         | None -> None)
      | (Path.Attr _ | Path.Value) :: _ :: _ -> None
    in
    go t.root p.steps

let find_element t p =
  match find t p with
  | Some (Element_ref e) -> Some e
  | Some (Attr_ref _ | Value_ref _) | None -> None

let mem t p = Option.is_some (find t p)

let leaf_type t p =
  match find t p with
  | Some (Attr_ref (_, a)) -> Some a.attr_type
  | Some (Value_ref (_, ty)) -> Some ty
  | Some (Element_ref _) | None -> None

let root_path t = Path.root t.root.name

(* Structural equality. Schemas are pure data (no functions, no
   cycles), so the polymorphic comparison is exact; spelled out per
   constituent so a future non-structural field turns this into a
   compile error rather than a silent wrong answer. *)
let equal_attribute (a : attribute) (b : attribute) =
  String.equal a.attr_name b.attr_name
  && a.attr_type = b.attr_type
  && Bool.equal a.attr_required b.attr_required

let rec equal_element (a : element) (b : element) =
  String.equal a.name b.name
  && a.card = b.card
  && List.equal equal_attribute a.attrs b.attrs
  && a.value = b.value
  && List.equal equal_element a.children b.children

let equal_reference (a : reference) (b : reference) =
  Path.equal a.ref_from b.ref_from && Path.equal a.ref_to b.ref_to

let equal (a : t) (b : t) =
  equal_element a.root b.root && List.equal equal_reference a.refs b.refs

let make ?(refs = []) root =
  check_element root.name root;
  let t = { root; refs } in
  List.iter
    (fun r ->
      let check p =
        match find t p with
        | Some (Attr_ref _ | Value_ref _) -> ()
        | Some (Element_ref _) ->
          invalid_arg
            (Printf.sprintf "Schema.make: reference end %s is not a leaf"
               (Path.to_string p))
        | None ->
          invalid_arg
            (Printf.sprintf "Schema.make: reference end %s does not resolve"
               (Path.to_string p))
      in
      check r.ref_from;
      check r.ref_to)
    refs;
  t

(* Enumeration -------------------------------------------------------- *)

let element_paths t =
  let rec go acc path e =
    let acc = path :: acc in
    List.fold_left (fun acc c -> go acc (Path.child path c.name) c) acc e.children
  in
  List.rev (go [] (root_path t) t.root)

let leaf_paths t =
  let rec go acc path e =
    let acc =
      List.fold_left (fun acc a -> Path.attr path a.attr_name :: acc) acc e.attrs
    in
    let acc = if Option.is_some e.value then Path.value path :: acc else acc in
    List.fold_left (fun acc c -> go acc (Path.child path c.name) c) acc e.children
  in
  List.rev (go [] (root_path t) t.root)

let is_repeating t p =
  match find_element t p with
  | Some e -> p.Path.steps <> [] && Cardinality.is_repeating e.card
  | None -> false

let repeating_paths t =
  List.filter (is_repeating t) (element_paths t)

let repeating_ancestors t p =
  List.filter (is_repeating t) (Path.element_prefixes p)

let repeating_strictly_between t ~above ~below =
  let above_chain = Path.element_prefixes above in
  let on_above q = List.exists (Path.equal q) above_chain in
  List.filter
    (fun q -> not (on_above q))
    (repeating_ancestors t below)

let reference_between t a b =
  let under ctx leaf = Path.is_prefix ctx (Path.element_of leaf) in
  List.find_opt
    (fun r ->
      (under a r.ref_from && under b r.ref_to)
      || (under b r.ref_from && under a r.ref_to))
    t.refs

(* Display ------------------------------------------------------------ *)

let to_tree_string t =
  let buf = Buffer.create 256 in
  let rec go indent e =
    let pad = String.make indent ' ' in
    let card =
      if e.card = Cardinality.required && indent = 0 then ""
      else " " ^ Cardinality.to_string e.card
    in
    Buffer.add_string buf (Printf.sprintf "%s%s%s\n" pad e.name card);
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "%s  @%s: %s%s\n" pad a.attr_name
             (Atomic_type.to_string a.attr_type)
             (if a.attr_required then "" else " ?")))
      e.attrs;
    (match e.value with
     | Some ty ->
       Buffer.add_string buf
         (Printf.sprintf "%s  value: %s\n" pad (Atomic_type.to_string ty))
     | None -> ());
    List.iter (go (indent + 2)) e.children
  in
  go 0 t.root;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "ref %s -> %s\n" (Path.to_string r.ref_from)
           (Path.to_string r.ref_to)))
    t.refs;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_tree_string t)
