exception Syntax_error of { line : int; column : int; message : string }

let error_to_string = function
  | Syntax_error { line; column; message } ->
    Printf.sprintf "schema syntax error at line %d, column %d: %s" line column message
  | Lexer.Lex_error { line; column; message } ->
    Printf.sprintf "schema lexical error at line %d, column %d: %s" line column message
  | e -> Printexc.to_string e

type state = { mutable toks : Lexer.spanned list; mutable depth : int; max_depth : int }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* the stream always ends with Eof *)

let next st =
  let t = peek st in
  (match st.toks with _ :: rest when t.token <> Lexer.Eof -> st.toks <- rest | _ -> ());
  t

let span_of_token (t : Lexer.spanned) =
  let width = max 1 (String.length (Lexer.token_to_string t.token)) in
  Clip_diag.span ~line:t.line ~col:t.column ~end_col:(t.column + width) ()

let fail_code code (t : Lexer.spanned) message =
  Clip_diag.fail (Clip_diag.error ~code ~span:(span_of_token t) message)

let fail t message = fail_code Clip_diag.Codes.schema_syntax t message

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    fail_code Clip_diag.Codes.limit_recursion (peek st)
      (Printf.sprintf "schema nesting exceeds the limit of %d" st.max_depth)

let leave st = st.depth <- st.depth - 1

(* Re-raise tokenizer diagnostics through the same channel. *)
let tokens_exn src =
  match Lexer.tokenize_result src with
  | Ok toks -> toks
  | Error ds -> Clip_diag.fail_all ds

let state_of ?(limits = Clip_diag.Limits.default) toks =
  { toks; depth = 0; max_depth = limits.Clip_diag.Limits.max_parser_recursion }

(* Raise the pre-diagnostics exceptions for the compatibility wrappers. *)
let raise_legacy (ds : Clip_diag.t list) =
  let d = List.hd ds in
  let line, column =
    match d.Clip_diag.span with
    | Some sp -> (sp.Clip_diag.line, sp.Clip_diag.col)
    | None -> (1, 1)
  in
  if String.equal d.Clip_diag.code Clip_diag.Codes.schema_lexical then
    raise (Lexer.Lex_error { line; column; message = d.Clip_diag.message })
  else raise (Syntax_error { line; column; message = d.Clip_diag.message })

let expect_sym st s =
  let t = next st in
  match t.token with
  | Lexer.Sym x when String.equal x s -> ()
  | tok -> fail t (Printf.sprintf "expected %S, found %s" s (Lexer.token_to_string tok))

let expect_ident st =
  let t = next st in
  match t.token with
  | Lexer.Ident s -> s
  | tok -> fail t (Printf.sprintf "expected an identifier, found %s" (Lexer.token_to_string tok))

let expect_keyword st kw =
  let t = next st in
  match t.token with
  | Lexer.Ident s when String.equal s kw -> ()
  | tok -> fail t (Printf.sprintf "expected %S, found %s" kw (Lexer.token_to_string tok))

let skip_semis st =
  let rec go () =
    match (peek st).token with
    | Lexer.Sym ";" ->
      ignore (next st);
      go ()
    | _ -> ()
  in
  go ()

let parse_type st =
  let t = next st in
  match t.token with
  | Lexer.Ident s ->
    (match Atomic_type.of_string s with
     | Some ty -> ty
     | None -> fail t (Printf.sprintf "unknown atomic type %S" s))
  | tok -> fail t (Printf.sprintf "expected a type, found %s" (Lexer.token_to_string tok))

let parse_card st =
  match (peek st).token with
  | Lexer.Sym "?" ->
    ignore (next st);
    Cardinality.optional
  | Lexer.Sym "*" ->
    ignore (next st);
    Cardinality.star
  | Lexer.Sym "+" ->
    ignore (next st);
    Cardinality.plus
  | Lexer.Sym "[" ->
    ignore (next st);
    let t = next st in
    let min =
      match t.token with
      | Lexer.Int_lit i -> i
      | tok -> fail t (Printf.sprintf "expected a minimum cardinality, found %s"
                         (Lexer.token_to_string tok))
    in
    expect_sym st "..";
    let t = next st in
    let max =
      match t.token with
      | Lexer.Int_lit i -> Cardinality.Bounded i
      | Lexer.Sym "*" -> Cardinality.Unbounded
      | tok -> fail t (Printf.sprintf "expected a maximum cardinality, found %s"
                         (Lexer.token_to_string tok))
    in
    expect_sym st "]";
    (match Cardinality.make min max with
     | card -> card
     | exception Invalid_argument _ ->
       fail t
         (Printf.sprintf "invalid cardinality [%d..%s]" min
            (match max with
             | Cardinality.Bounded m -> string_of_int m
             | Cardinality.Unbounded -> "*")))
  | _ -> Cardinality.required

(* A relative path written without the schema root: [dept.regEmp.@pid]. *)
let parse_rel_path st root_name =
  let rec go acc =
    match (peek st).token with
    | Lexer.Sym "@" ->
      ignore (next st);
      let name = expect_ident st in
      List.rev (Path.Attr name :: acc)
    | Lexer.Ident "value" ->
      ignore (next st);
      List.rev (Path.Value :: acc)
    | Lexer.Ident name ->
      ignore (next st);
      let acc = Path.Child name :: acc in
      (match (peek st).token with
       | Lexer.Sym "." ->
         ignore (next st);
         go acc
       | _ -> List.rev acc)
    | tok -> fail (peek st) (Printf.sprintf "expected a path step, found %s"
                               (Lexer.token_to_string tok))
  in
  Path.make root_name (go [])

type item =
  | I_attr of Schema.attribute
  | I_value of Atomic_type.t
  | I_child of Schema.element
  | I_ref of Schema.reference

let rec parse_items st root_name =
  skip_semis st;
  match (peek st).token with
  | Lexer.Sym "}" -> []
  | Lexer.Sym "@" ->
    ignore (next st);
    let name = expect_ident st in
    let required =
      match (peek st).token with
      | Lexer.Sym "?" ->
        ignore (next st);
        false
      | _ -> true
    in
    expect_sym st ":";
    let ty = parse_type st in
    I_attr (Schema.attribute ~required name ty) :: parse_items st root_name
  | Lexer.Ident "value" ->
    ignore (next st);
    expect_sym st ":";
    let ty = parse_type st in
    I_value ty :: parse_items st root_name
  | Lexer.Ident "ref" ->
    ignore (next st);
    let ref_from = parse_rel_path st root_name in
    expect_sym st "->";
    let ref_to = parse_rel_path st root_name in
    I_ref { Schema.ref_from; ref_to } :: parse_items st root_name
  | Lexer.Ident name ->
    ignore (next st);
    let child = parse_element_tail st root_name name in
    I_child child :: parse_items st root_name
  | tok ->
    fail (peek st)
      (Printf.sprintf "expected a schema item, found %s" (Lexer.token_to_string tok))

and parse_element_tail st root_name name =
  let card = parse_card st in
  let value =
    match (peek st).token with
    | Lexer.Sym ":" ->
      ignore (next st);
      Some (parse_type st)
    | _ -> None
  in
  let items =
    match (peek st).token with
    | Lexer.Sym "{" ->
      enter st;
      ignore (next st);
      let items = parse_items st root_name in
      expect_sym st "}";
      leave st;
      items
    | _ -> []
  in
  let attrs =
    List.filter_map (function I_attr a -> Some a | _ -> None) items
  in
  let inner_value =
    List.find_map (function I_value ty -> Some ty | _ -> None) items
  in
  let children =
    List.filter_map (function I_child c -> Some c | _ -> None) items
  in
  (match List.find_opt (function I_ref _ -> true | _ -> false) items with
   | Some _ ->
     fail (peek st) "ref declarations are only allowed at the top level of a schema"
   | None -> ());
  let value =
    match value, inner_value with
    | Some _, Some _ -> fail (peek st) (Printf.sprintf "element %s has two value declarations" name)
    | Some v, None | None, Some v -> Some v
    | None, None -> None
  in
  Schema.element ~card ~attrs ?value name children

let parse_schema st =
  expect_keyword st "schema";
  let name = expect_ident st in
  expect_sym st "{";
  let items = parse_items st name in
  expect_sym st "}";
  skip_semis st;
  let attrs = List.filter_map (function I_attr a -> Some a | _ -> None) items in
  let value = List.find_map (function I_value ty -> Some ty | _ -> None) items in
  let children = List.filter_map (function I_child c -> Some c | _ -> None) items in
  let refs = List.filter_map (function I_ref r -> Some r | _ -> None) items in
  match Schema.make ~refs (Schema.element ~attrs ?value name children) with
  | s -> s
  | exception Invalid_argument msg ->
    Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.schema_invalid msg)

let parse_tokens ?limits toks =
  let st = state_of ?limits toks in
  let s = parse_schema st in
  (s, st.toks)

let parse_result ?limits src =
  Clip_diag.guard (fun () ->
      let st = state_of ?limits (tokens_exn src) in
      let s = parse_schema st in
      (match (peek st).token with
       | Lexer.Eof -> ()
       | tok ->
         fail (peek st)
           (Printf.sprintf "trailing input after the schema: %s"
              (Lexer.token_to_string tok)));
      s)

let parse ?limits src =
  match parse_result ?limits src with Ok s -> s | Error ds -> raise_legacy ds

let to_string (s : Schema.t) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec element ind (e : Schema.element) =
    let pad = String.make ind ' ' in
    let card =
      if e.card = Cardinality.required then ""
      else " " ^ Cardinality.to_string e.card
    in
    let value =
      match e.value with
      | Some ty -> ": " ^ Atomic_type.to_string ty
      | None -> ""
    in
    if e.attrs = [] && e.children = [] then add "%s%s%s%s\n" pad e.name card value
    else begin
      add "%s%s%s%s {\n" pad e.name card value;
      List.iter
        (fun (a : Schema.attribute) ->
          add "%s  @%s%s: %s\n" pad a.attr_name
            (if a.attr_required then "" else " ?")
            (Atomic_type.to_string a.attr_type))
        e.attrs;
      List.iter (element (ind + 2)) e.children;
      add "%s}\n" pad
    end
  in
  add "schema %s {\n" s.root.name;
  List.iter
    (fun (a : Schema.attribute) ->
      add "  @%s%s: %s\n" a.attr_name
        (if a.attr_required then "" else " ?")
        (Atomic_type.to_string a.attr_type))
    s.root.attrs;
  (match s.root.value with
   | Some ty -> add "  value: %s\n" (Atomic_type.to_string ty)
   | None -> ());
  List.iter (element 2) s.root.children;
  let rel p =
    match Path.strip_prefix ~prefix:(Path.root s.root.name) p with
    | Some steps -> String.concat "." (List.map Path.step_to_string steps)
    | None -> Path.to_string p
  in
  List.iter
    (fun (r : Schema.reference) -> add "  ref %s -> %s\n" (rel r.ref_from) (rel r.ref_to))
    s.refs;
  add "}\n";
  Buffer.contents buf

let parse_many_result ?limits src =
  Clip_diag.guard (fun () ->
      let st = state_of ?limits (tokens_exn src) in
      let rec go acc =
        skip_semis st;
        match (peek st).token with
        | Lexer.Eof -> List.rev acc
        | _ -> go (parse_schema st :: acc)
      in
      go [])

let parse_many ?limits src =
  match parse_many_result ?limits src with Ok s -> s | Error ds -> raise_legacy ds
