(** Schema trees — the paper's visual XML Schema model (Sec. I-A).

    An element has a name, a cardinality, attributes (black circles), an
    optional typed text node (white circle) and child elements.
    Referential-integrity constraints (the dashed lines, e.g.
    [regEmp.@pid → Proj.@pid]) are carried alongside the root. *)

type attribute = {
  attr_name : string;
  attr_type : Atomic_type.t;
  attr_required : bool;
}

type element = {
  name : string;
  card : Cardinality.t;
  attrs : attribute list;
  value : Atomic_type.t option;
  children : element list;
}

(** A referential constraint: values of [ref_from] refer to values of
    [ref_to]. Both are absolute leaf paths in the same schema. *)
type reference = { ref_from : Path.t; ref_to : Path.t }

type t = { root : element; refs : reference list }

(** {1 Construction} *)

val attribute : ?required:bool -> string -> Atomic_type.t -> attribute

val element :
  ?card:Cardinality.t ->
  ?attrs:attribute list ->
  ?value:Atomic_type.t ->
  string ->
  element list ->
  element

val make : ?refs:reference list -> element -> t
(** @raise Invalid_argument when two siblings, two attributes of one
    element, or a reference path do not resolve / clash by name. *)

(** {1 Resolution} *)

type node_ref =
  | Element_ref of element
  | Attr_ref of element * attribute
  | Value_ref of element * Atomic_type.t

val find : t -> Path.t -> node_ref option

(** [find_element s p] resolves [p] when it names an element. *)
val find_element : t -> Path.t -> element option

(** [mem s p] — does [p] name a node of [s]? *)
val mem : t -> Path.t -> bool

(** [leaf_type s p] — the atomic type of leaf path [p], if [p] names an
    attribute or value node. *)
val leaf_type : t -> Path.t -> Atomic_type.t option

val root_path : t -> Path.t

(** Structural equality: same element tree (names, cardinalities,
    attributes, value types, child order) and same references. Used by
    the mapping algebra to check that one mapping's target schema is
    another's source. *)
val equal : t -> t -> bool

(** {1 Enumeration} *)

(** All element paths, preorder, root first. *)
val element_paths : t -> Path.t list

(** All leaf (attribute and value) paths, preorder. *)
val leaf_paths : t -> Path.t list

(** Element paths whose cardinality is repeating, preorder. This is the
    set of iteration units for builders and tableaux. *)
val repeating_paths : t -> Path.t list

(** {1 Structural queries} *)

(** [is_repeating s p] — is the element at [p] repeating? The root is
    never repeating (a document has one root). *)
val is_repeating : t -> Path.t -> bool

(** [repeating_ancestors s p] — repeating element paths on the chain
    from the root down to {!Path.element_of}[ p], outermost first,
    including [p]'s own element when repeating. *)
val repeating_ancestors : t -> Path.t -> Path.t list

(** [repeating_strictly_between s ~above ~below] — repeating elements on
    [below]'s chain that are not on [above]'s chain. This is the paper's
    [path(sv) \ path(sb)] test for valid value mappings (Sec. III-B):
    the mapping is invalid when this list is non-empty. [above] need not
    be an ancestor of [below]. *)
val repeating_strictly_between : t -> above:Path.t -> below:Path.t -> Path.t list

(** [reference_between s a b] — a referential constraint whose two leaf
    ends live under repeating elements [a] and [b] (in either
    direction), used to suggest join conditions. *)
val reference_between : t -> Path.t -> Path.t -> reference option

(** {1 Display} *)

(** Render the schema as an indented tree with the paper's labels
    ([dept \[1..*\]], [@pid: int], [value: String]). *)
val to_tree_string : t -> string

val pp : Format.formatter -> t -> unit
