type column = { col_name : string; col_type : Atomic_type.t }

type foreign_key = {
  fk_table : string;
  fk_columns : string list;
  pk_table : string;
  pk_columns : string list;
}

type table = {
  table_name : string;
  columns : column list;
  primary_key : string list;
}

type database = {
  db_name : string;
  tables : table list;
  foreign_keys : foreign_key list;
}

let column col_name col_type = { col_name; col_type }

let table ?(primary_key = []) table_name columns =
  List.iter
    (fun k ->
      if not (List.exists (fun c -> String.equal c.col_name k) columns) then
        invalid_arg
          (Printf.sprintf "Relational.table: key column %S is not a column of %s" k
             table_name))
    primary_key;
  { table_name; columns; primary_key }

let database ?(foreign_keys = []) db_name tables =
  { db_name; tables; foreign_keys }

let find_table db name =
  match List.find_opt (fun t -> String.equal t.table_name name) db.tables with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Relational: unknown table %S" name)

(* Exception-free validation of the foreign keys: each failure becomes
   a stable diagnostic instead of an [Invalid_argument]. Every problem
   is reported (not just the first), so one pass over a hand-written
   database surfaces the whole repair list. *)
let to_schema_result db =
  let errors = ref [] in
  let err code fmt =
    Printf.ksprintf
      (fun msg -> errors := Clip_diag.error ~code msg :: !errors)
      fmt
  in
  let lookup_table name =
    match List.find_opt (fun t -> String.equal t.table_name name) db.tables with
    | Some t -> Some t
    | None ->
      err Clip_diag.Codes.rel_fk_unknown
        "foreign key references unknown table %S" name;
      None
  in
  let table_element t =
    let attrs =
      List.map (fun c -> Schema.attribute c.col_name c.col_type) t.columns
    in
    Schema.element ~card:Cardinality.star ~attrs t.table_name []
  in
  let refs =
    List.concat_map
      (fun fk ->
        match (lookup_table fk.fk_table, lookup_table fk.pk_table) with
        | Some ft, Some pt ->
          if List.length fk.fk_columns <> List.length fk.pk_columns then begin
            err Clip_diag.Codes.rel_fk_arity
              "foreign key %s -> %s: %d referencing column(s) against %d key \
               column(s)"
              fk.fk_table fk.pk_table
              (List.length fk.fk_columns)
              (List.length fk.pk_columns);
            []
          end
          else begin
            let ok = ref true in
            let check t cols =
              List.iter
                (fun c ->
                  if
                    not
                      (List.exists
                         (fun col -> String.equal col.col_name c)
                         t.columns)
                  then begin
                    ok := false;
                    err Clip_diag.Codes.rel_fk_unknown
                      "foreign key %s -> %s: %S is not a column of %s"
                      fk.fk_table fk.pk_table c t.table_name
                  end)
                cols
            in
            check ft fk.fk_columns;
            check pt fk.pk_columns;
            if not !ok then []
            else
              List.map2
                (fun fc pc ->
                  {
                    Schema.ref_from =
                      Path.attr
                        (Path.child (Path.root db.db_name) fk.fk_table)
                        fc;
                    ref_to =
                      Path.attr
                        (Path.child (Path.root db.db_name) fk.pk_table)
                        pc;
                  })
                fk.fk_columns fk.pk_columns
          end
        | _ -> [])
      db.foreign_keys
  in
  match List.rev !errors with
  | [] ->
    Ok
      (Schema.make ~refs
         (Schema.element db.db_name (List.map table_element db.tables)))
  | ds -> Error ds

(* Legacy raising entry point, kept as a thin wrapper over the
   diagnostic twin. *)
let to_schema db =
  match to_schema_result db with
  | Ok s -> s
  | Error (d :: _) ->
    invalid_arg (Printf.sprintf "Relational.to_schema: %s" d.Clip_diag.message)
  | Error [] -> assert false

type row = Clip_xml.Atom.t list

let instance db contents =
  let table_nodes =
    List.concat_map
      (fun t ->
        let rows =
          match List.assoc_opt t.table_name contents with
          | Some rows -> rows
          | None -> []
        in
        List.map
          (fun row ->
            if List.length row <> List.length t.columns then
              invalid_arg
                (Printf.sprintf "Relational.instance: row arity mismatch in %s"
                   t.table_name);
            let attrs = List.map2 (fun c v -> (c.col_name, v)) t.columns row in
            Clip_xml.Node.elem ~attrs t.table_name [])
          rows)
      db.tables
  in
  List.iter
    (fun (name, _) -> ignore (find_table db name))
    contents;
  Clip_xml.Node.elem db.db_name table_nodes
