(** Textual surface syntax for schemas — the stand-in for loading XSD
    files. Example (the paper's source schema):

    {v
    schema source {
      dept [1..*] {
        dname: string
        Proj [0..*] {
          @pid: int
          pname: string
        }
        regEmp [0..*] {
          @pid: int
          ename: string
          sal: int
        }
      }
      ref dept.regEmp.@pid -> dept.Proj.@pid
    }
    v}

    Grammar notes: an element is [name card? (":" type)? body?] where
    [card] is [\[m..n\]], [\[m..*\]] or the shorthands [?] = [0..1],
    [*] = [0..*], [+] = [1..*] (default [1..1]); [": type"] gives the
    element a text value node; [@name ?? ":" type] declares a (optional
    with [?]) attribute; [value: type] inside a body also sets the text
    node; [ref p -> q] declares a referential constraint with paths
    written relative to the schema root. [;] separators are optional,
    [#] starts a comment. *)

exception Syntax_error of { line : int; column : int; message : string }

(** [parse_result s] parses one [schema name { ... }] declaration, or
    reports spanned diagnostics: [CLIP-SCH-001] (lexical),
    [CLIP-SCH-002] (syntax), [CLIP-SCH-004] (ill-formed schema) or
    [CLIP-LIM-003] (nesting deeper than
    [limits.max_parser_recursion]). *)
val parse_result :
  ?limits:Clip_diag.Limits.t -> string -> (Schema.t, Clip_diag.t list) result

(** [parse s] parses one [schema name { ... }] declaration.
    @raise Syntax_error on malformed input (thin wrapper over
    {!parse_result}; lexical errors raise {!Lexer.Lex_error}). *)
val parse : ?limits:Clip_diag.Limits.t -> string -> Schema.t

(** [parse_many s] parses any number of schema declarations — a mapping
    file typically carries a source and a target schema. *)
val parse_many : ?limits:Clip_diag.Limits.t -> string -> Schema.t list

val parse_many_result :
  ?limits:Clip_diag.Limits.t -> string -> (Schema.t list, Clip_diag.t list) result

(** [parse_tokens toks] parses one schema declaration from a token
    stream and returns the remaining tokens — used by the mapping DSL,
    whose files embed schema declarations. Raises {!Clip_diag.Fail} on
    error; callers are expected to run under {!Clip_diag.guard}. *)
val parse_tokens :
  ?limits:Clip_diag.Limits.t -> Lexer.spanned list -> Schema.t * Lexer.spanned list

val error_to_string : exn -> string

(** [to_string s] renders a schema back to the surface syntax;
    [parse (to_string s) = s]. *)
val to_string : Schema.t -> string
