(** The canonical relational → XML encoding the paper relies on: "Clip
    also works with relational schemas, as long as they are converted in
    a canonical way into XML Schemas". A table becomes a repeating
    element under the database root, columns become attributes, foreign
    keys become referential constraints; rows convert likewise. *)

type column = { col_name : string; col_type : Atomic_type.t }

type foreign_key = {
  fk_table : string;
  fk_columns : string list;
  pk_table : string;
  pk_columns : string list;
}

type table = {
  table_name : string;
  columns : column list;
  primary_key : string list;
}

type database = {
  db_name : string;
  tables : table list;
  foreign_keys : foreign_key list;
}

val column : string -> Atomic_type.t -> column

val table : ?primary_key:string list -> string -> column list -> table

val database :
  ?foreign_keys:foreign_key list -> string -> table list -> database

(** [to_schema_result db] — the canonical XML Schema: root [db_name],
    one [\[0..*\]] child element per table carrying one attribute per
    column; each foreign key becomes a {!Schema.reference}. Ill-formed
    foreign keys are reported exception-free, every problem at once:
    [CLIP-REL-001] for a referencing/key column-count mismatch,
    [CLIP-REL-002] for an unknown table or column. *)
val to_schema_result : database -> (Schema.t, Clip_diag.t list) result

(** [to_schema db] — like {!to_schema_result}.
    @raise Invalid_argument on the first reported diagnostic. *)
val to_schema : database -> Schema.t

(** A row, in table column order. *)
type row = Clip_xml.Atom.t list

(** [instance db rows] — the canonical XML instance for the given table
    contents ([rows] maps table name to its rows).
    @raise Invalid_argument on unknown table names or arity mismatch. *)
val instance : database -> (string * row list) list -> Clip_xml.Node.t
