module Xml = Clip_xml
module Node = Clip_xml.Node

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* --- Import -------------------------------------------------------------- *)

let strip_prefix name =
  match String.index_opt name ':' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let is_tag name (e : Node.element) = String.equal (strip_prefix e.tag) name

let children_tagged (e : Node.element) name =
  List.filter (is_tag name) (Node.child_elements e)

let attr_string e name =
  Option.map Xml.Atom.to_string (Node.attr e name)

let atomic_of_xsd_type ty =
  match strip_prefix ty with
  | "string" | "token" | "normalizedString" | "anyURI" | "ID" | "IDREF" ->
    Atomic_type.T_string
  | "int" | "integer" | "long" | "short" | "byte" | "positiveInteger"
  | "nonNegativeInteger" ->
    Atomic_type.T_int
  | "float" | "double" | "decimal" -> Atomic_type.T_float
  | "boolean" -> Atomic_type.T_bool
  | other -> unsupported "unsupported XSD type %s" other

let xsd_of_atomic = function
  | Atomic_type.T_string -> "xs:string"
  | Atomic_type.T_int -> "xs:int"
  | Atomic_type.T_float -> "xs:float"
  | Atomic_type.T_bool -> "xs:boolean"

let cardinality_of e =
  let min =
    match attr_string e "minOccurs" with
    | Some s ->
      (match int_of_string_opt s with
       | Some i -> i
       | None -> unsupported "bad minOccurs %S" s)
    | None -> 1
  in
  let max =
    match attr_string e "maxOccurs" with
    | Some "unbounded" -> Cardinality.Unbounded
    | Some s ->
      (match int_of_string_opt s with
       | Some i -> Cardinality.Bounded i
       | None -> unsupported "bad maxOccurs %S" s)
    | None -> Cardinality.Bounded 1
  in
  Cardinality.make min max

let parse_attribute (a : Node.element) : Schema.attribute =
  let name =
    match attr_string a "name" with
    | Some n -> n
    | None -> unsupported "xs:attribute without a name"
  in
  let ty =
    match attr_string a "type" with
    | Some t -> atomic_of_xsd_type t
    | None -> Atomic_type.T_string
  in
  let required =
    match attr_string a "use" with
    | Some "required" -> true
    | Some "optional" | Some "prohibited" | None -> false
    | Some u -> unsupported "unsupported attribute use %S" u
  in
  Schema.attribute ~required name ty

let rec parse_element (e : Node.element) : Schema.element =
  let name =
    match attr_string e "name" with
    | Some n -> n
    | None -> unsupported "xs:element without a name (references are unsupported)"
  in
  let card = cardinality_of e in
  match attr_string e "type" with
  | Some ty ->
    (* a leaf element with simple content *)
    Schema.element ~card ~value:(atomic_of_xsd_type ty) name []
  | None ->
    (match children_tagged e "complexType" with
     | [ ct ] ->
       let attrs, value, children = parse_complex_type ct in
       Schema.element ~card ~attrs ?value name children
     | [] -> Schema.element ~card name []
     | _ :: _ :: _ -> unsupported "element %s has several complexType children" name)

and parse_complex_type ct =
  match children_tagged ct "simpleContent" with
  | [ sc ] ->
    (match children_tagged sc "extension" with
     | [ ext ] ->
       let base =
         match attr_string ext "base" with
         | Some b -> atomic_of_xsd_type b
         | None -> unsupported "xs:extension without a base"
       in
       let attrs = List.map parse_attribute (children_tagged ext "attribute") in
       (attrs, Some base, [])
     | _ -> unsupported "simpleContent without a single xs:extension")
  | [] ->
    let attrs = List.map parse_attribute (children_tagged ct "attribute") in
    let children =
      match children_tagged ct "sequence" with
      | [ seq ] -> List.map parse_element (children_tagged seq "element")
      | [] -> []
      | _ -> unsupported "complexType with several xs:sequence children"
    in
    (* mixed content carries untyped (string) text alongside children *)
    let value =
      match attr_string ct "mixed" with
      | Some "true" -> Some Atomic_type.T_string
      | Some "false" | None -> None
      | Some m -> unsupported "bad mixed attribute %S" m
    in
    (attrs, value, children)
  | _ -> unsupported "complexType with several simpleContent children"

(* Selector/field paths of xs:key and xs:keyref: slash-separated child
   steps, optionally starting with ".//" (resolved to the unique
   element of that name), with fields "@attr" or "leaf/text()". *)
let resolve_selector schema (sel : string) : Path.t =
  let root = Schema.root_path schema in
  if String.length sel >= 3 && String.sub sel 0 3 = ".//" then begin
    let name = String.sub sel 3 (String.length sel - 3) in
    if String.contains name '/' then unsupported "unsupported selector %S" sel;
    match
      List.filter
        (fun p ->
          match Path.last_step p with
          | Some (Path.Child n) -> String.equal n name
          | _ -> false)
        (Schema.element_paths schema)
    with
    | [ p ] -> p
    | [] -> unsupported "selector %S matches no element" sel
    | _ -> unsupported "selector %S is ambiguous" sel
  end
  else
    List.fold_left
      (fun p step ->
        if String.equal step "." then p else Path.child p step)
      root
      (String.split_on_char '/' sel)

let resolve_field schema base (field : string) : Path.t =
  let parts = String.split_on_char '/' field in
  let rec go p = function
    | [] -> p
    | [ "text()" ] -> Path.value p
    | [ s ] when String.length s > 0 && s.[0] = '@' ->
      Path.attr p (String.sub s 1 (String.length s - 1))
    | s :: rest -> go (Path.child p s) rest
  in
  let leaf = go base parts in
  if not (Schema.mem schema leaf) then
    unsupported "field %S does not resolve" field;
  leaf

let parse_identity (root_elem : Node.element) schema =
  let read_sel_field (c : Node.element) =
    let sel =
      match children_tagged c "selector" with
      | [ s ] ->
        (match attr_string s "xpath" with
         | Some x -> x
         | None -> unsupported "selector without xpath")
      | _ -> unsupported "expected one xs:selector"
    in
    let field =
      match children_tagged c "field" with
      | [ f ] ->
        (match attr_string f "xpath" with
         | Some x -> x
         | None -> unsupported "field without xpath")
      | _ -> unsupported "expected one xs:field"
    in
    (resolve_field schema (resolve_selector schema sel) field)
  in
  let keys =
    List.map
      (fun k ->
        match attr_string k "name" with
        | Some name -> (name, read_sel_field k)
        | None -> unsupported "xs:key without a name")
      (children_tagged root_elem "key")
  in
  List.map
    (fun kr ->
      let refer =
        match attr_string kr "refer" with
        | Some r -> strip_prefix r
        | None -> unsupported "xs:keyref without refer"
      in
      let ref_to =
        match List.assoc_opt refer keys with
        | Some p -> p
        | None -> unsupported "keyref refers to unknown key %S" refer
      in
      { Schema.ref_from = read_sel_field kr; ref_to })
    (children_tagged root_elem "keyref")

let of_doc doc =
  let root = Node.as_element doc in
  if not (is_tag "schema" root) then unsupported "root element is not xs:schema";
  match children_tagged root "element" with
  | [ root_elem ] ->
    let element = parse_element root_elem in
    let schema0 = Schema.make element in
    let refs = parse_identity root_elem schema0 in
    Schema.make ~refs element
  | [] -> unsupported "no global xs:element"
  | _ -> unsupported "several global elements (Clip schemas have one root)"

let of_string_result ?limits text =
  Clip_diag.guard (fun () ->
      match Xml.Parser.parse_string_result ?limits text with
      | Error ds -> Clip_diag.fail_all ds
      | Ok doc ->
        (match of_doc doc with
         | s -> s
         | exception Unsupported msg ->
           Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.xsd_unsupported msg)
         | exception Invalid_argument msg ->
           Clip_diag.fail (Clip_diag.error ~code:Clip_diag.Codes.schema_invalid msg)))

let of_string ?limits text =
  match of_string_result ?limits text with
  | Ok s -> s
  | Error ds ->
    let d = List.hd ds in
    if
      String.length d.Clip_diag.code >= 8
      && String.equal (String.sub d.Clip_diag.code 0 8) "CLIP-XML"
      || Clip_diag.is_resource_limit d
    then begin
      let line, column =
        match d.Clip_diag.span with
        | Some sp -> (sp.Clip_diag.line, sp.Clip_diag.col)
        | None -> (1, 1)
      in
      raise (Xml.Parser.Parse_error { line; column; message = d.Clip_diag.message })
    end
    else raise (Unsupported d.Clip_diag.message)

(* --- Export -------------------------------------------------------------- *)

let to_string (s : Schema.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let occurs (c : Cardinality.t) =
    let min = if c.min = 1 then "" else Printf.sprintf " minOccurs=\"%d\"" c.min in
    let max =
      match c.max with
      | Cardinality.Bounded 1 -> ""
      | Cardinality.Bounded m -> Printf.sprintf " maxOccurs=\"%d\"" m
      | Cardinality.Unbounded -> " maxOccurs=\"unbounded\""
    in
    min ^ max
  in
  let attribute ind (a : Schema.attribute) =
    add "%s<xs:attribute name=\"%s\" type=\"%s\" use=\"%s\"/>\n" ind a.attr_name
      (xsd_of_atomic a.attr_type)
      (if a.attr_required then "required" else "optional")
  in
  let rec element ind ~top (e : Schema.element) =
    let occ = if top then "" else occurs e.card in
    match e.attrs, e.value, e.children with
    | [], Some ty, [] ->
      add "%s<xs:element name=\"%s\" type=\"%s\"%s/>\n" ind e.name
        (xsd_of_atomic ty) occ
    | [], None, [] -> add "%s<xs:element name=\"%s\"%s/>\n" ind e.name occ
    | attrs, Some ty, [] ->
      add "%s<xs:element name=\"%s\"%s>\n" ind e.name occ;
      add "%s  <xs:complexType><xs:simpleContent>\n" ind;
      add "%s    <xs:extension base=\"%s\">\n" ind (xsd_of_atomic ty);
      List.iter (attribute (ind ^ "      ")) attrs;
      add "%s    </xs:extension>\n" ind;
      add "%s  </xs:simpleContent></xs:complexType>\n" ind;
      add "%s</xs:element>\n" ind
    | attrs, value, children ->
      let mixed =
        match value with
        | None -> ""
        | Some Atomic_type.T_string -> " mixed=\"true\""
        | Some ty ->
          unsupported
            "element %s mixes %s text with child elements; XSD mixed content \
             is untyped"
            e.name (Atomic_type.to_string ty)
      in
      add "%s<xs:element name=\"%s\"%s>\n" ind e.name occ;
      add "%s  <xs:complexType%s>\n" ind mixed;
      if children <> [] then begin
        add "%s    <xs:sequence>\n" ind;
        List.iter (element (ind ^ "      ") ~top:false) children;
        add "%s    </xs:sequence>\n" ind
      end;
      List.iter (attribute (ind ^ "    ")) attrs;
      add "%s  </xs:complexType>\n" ind;
      add "%s</xs:element>\n" ind
  in
  add "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";
  (* Keys/keyrefs hang off the root element; emit a wrapper that can
     carry them. *)
  let has_refs = s.refs <> [] in
  if not has_refs then element "  " ~top:true s.root
  else begin
    (* Re-render the root element opening by hand so the identity
       constraints can be appended inside it. *)
    add "  <xs:element name=\"%s\">\n" s.root.name;
    add "    <xs:complexType>\n";
    if s.root.children <> [] then begin
      add "      <xs:sequence>\n";
      List.iter (element "        " ~top:false) s.root.children;
      add "      </xs:sequence>\n"
    end;
    List.iter (attribute "      ") s.root.attrs;
    add "    </xs:complexType>\n";
    let rel (p : Path.t) =
      (* selector: the element path below the root; field: the leaf *)
      let elem = Path.element_of p in
      let selector =
        match Path.strip_prefix ~prefix:(Schema.root_path s) elem with
        | Some steps ->
          String.concat "/"
            (List.map (function Path.Child c -> c | _ -> assert false) steps)
        | None -> "."
      in
      let field =
        match Path.last_step p with
        | Some (Path.Attr a) -> "@" ^ a
        | Some Path.Value -> "text()"
        | _ -> unsupported "reference end %s is not a leaf" (Path.to_string p)
      in
      (selector, field)
    in
    List.iteri
      (fun i (r : Schema.reference) ->
        let to_sel, to_field = rel r.ref_to in
        let from_sel, from_field = rel r.ref_from in
        add "      <xs:key name=\"key%d\">\n" i;
        add "        <xs:selector xpath=\"%s\"/>\n" to_sel;
        add "        <xs:field xpath=\"%s\"/>\n" to_field;
        add "      </xs:key>\n";
        add "      <xs:keyref name=\"keyref%d\" refer=\"key%d\">\n" i i;
        add "        <xs:selector xpath=\"%s\"/>\n" from_sel;
        add "        <xs:field xpath=\"%s\"/>\n" from_field;
        add "      </xs:keyref>\n")
      s.refs;
    add "  </xs:element>\n"
  end;
  add "</xs:schema>\n";
  Buffer.contents buf
